//! Shared fixtures for the benchmark harness: each paper experiment as a
//! ready-to-run bundle of (machine, observed signal, property suite,
//! options).
//!
//! The binaries (`table2`, `figures`) and the criterion benches all pull
//! from here so the workloads stay identical across harnesses.

pub mod corebench;
pub mod oldcore;

use covest_bdd::BddManager;
use covest_circuits::{circular_queue, counter, pipeline, priority_buffer};
use covest_core::{CoverageAnalysis, CoverageEstimator, CoverageOptions};
use covest_ctl::Formula;
use covest_smv::CompiledModel;

// The report bins measure wall-clock through the telemetry stopwatch,
// not hand-rolled `Instant::now()` pairs — CI greps the workspace to
// keep raw `Instant` confined to `covest-telemetry` (and this harness).
pub use covest_telemetry::Stopwatch;

/// Milliseconds elapsed on `sw`, in the form the report bins' `*_ms`
/// JSON fields use. Wall-clock by definition — never parity-checked.
pub fn elapsed_ms(sw: &Stopwatch) -> f64 {
    sw.elapsed().as_secs_f64() * 1e3
}

/// Runs `f` on a fresh [`Stopwatch`], returning its result together
/// with the elapsed milliseconds.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let sw = Stopwatch::start();
    let value = f();
    let ms = elapsed_ms(&sw);
    (value, ms)
}

/// One Table-2 row workload: a circuit, an observed signal and its suite.
pub struct Workload {
    /// Circuit display name (Table 2's first column).
    pub circuit: &'static str,
    /// Observed signal.
    pub signal: &'static str,
    /// Property suite.
    pub properties: Vec<Formula>,
    /// Analysis options (fairness for the pipeline).
    pub options: CoverageOptions,
    /// Expected coverage percentage from the paper, for the report.
    pub paper_percent: f64,
    /// Builder for the circuit model.
    pub build: fn(&BddManager) -> CompiledModel,
}

fn build_buffer(bdd: &BddManager) -> CompiledModel {
    priority_buffer::build(bdd, 4, false).expect("compiles")
}

fn build_queue(bdd: &BddManager) -> CompiledModel {
    circular_queue::build(bdd, 4).expect("compiles")
}

fn build_pipeline(bdd: &BddManager) -> CompiledModel {
    pipeline::build(bdd, 4).expect("compiles")
}

fn build_counter(bdd: &BddManager) -> CompiledModel {
    counter::build(bdd).expect("compiles")
}

/// The six observed-signal workloads of the paper's Table 2, plus the
/// introduction's counter as a seventh row.
pub fn table2_workloads() -> Vec<Workload> {
    let default = CoverageOptions::default;
    let fair_opts = || CoverageOptions {
        fairness: vec![pipeline::fairness()],
        ..Default::default()
    };
    let mut lo_full = priority_buffer::lo_suite_initial(4);
    lo_full.push(priority_buffer::lo_missing_case());
    let mut wrap_initial = circular_queue::wrap_suite_initial();
    let _ = &mut wrap_initial;
    vec![
        Workload {
            circuit: "Circuit 1 (priority buffer)",
            signal: "hi_cnt",
            properties: priority_buffer::hi_suite(4),
            options: default(),
            paper_percent: 100.00,
            build: build_buffer,
        },
        Workload {
            circuit: "Circuit 1 (priority buffer)",
            signal: "lo_cnt",
            properties: priority_buffer::lo_suite_initial(4),
            options: default(),
            paper_percent: 99.98,
            build: build_buffer,
        },
        Workload {
            circuit: "Circuit 2 (circular queue)",
            signal: "wrap",
            properties: circular_queue::wrap_suite_initial(),
            options: default(),
            paper_percent: 60.08,
            build: build_queue,
        },
        Workload {
            circuit: "Circuit 2 (circular queue)",
            signal: "full",
            properties: circular_queue::full_suite(),
            options: default(),
            paper_percent: 100.00,
            build: build_queue,
        },
        Workload {
            circuit: "Circuit 2 (circular queue)",
            signal: "empty",
            properties: circular_queue::empty_suite(),
            options: default(),
            paper_percent: 100.00,
            build: build_queue,
        },
        Workload {
            circuit: "Circuit 3 (pipeline)",
            signal: "out",
            properties: pipeline::out_suite_initial(4),
            options: fair_opts(),
            paper_percent: 74.36,
            build: build_pipeline,
        },
        Workload {
            circuit: "Intro (modulo-5 counter)",
            signal: "count",
            properties: counter::increment_properties(),
            options: default(),
            paper_percent: f64::NAN, // illustrative only in the paper
            build: build_counter,
        },
    ]
}

/// Runs one workload end to end on a fresh manager.
pub fn run_workload(w: &Workload) -> CoverageAnalysis {
    let bdd = BddManager::new();
    let model = (w.build)(&bdd);
    let estimator = CoverageEstimator::new(&model.fsm);
    estimator
        .analyze(w.signal, &w.properties, &w.options)
        .expect("workload analyzes")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_workloads_run_and_match_paper_shape() {
        for w in table2_workloads() {
            let a = run_workload(&w);
            assert!(a.all_hold(), "{}/{} suite verifies", w.circuit, w.signal);
            if w.paper_percent.is_nan() {
                continue;
            }
            if (w.paper_percent - 100.0).abs() < f64::EPSILON {
                assert_eq!(
                    a.percent(),
                    100.0,
                    "{}/{} fully covered in the paper",
                    w.circuit,
                    w.signal
                );
            } else {
                assert!(
                    a.percent() < 100.0,
                    "{}/{} has a hole in the paper",
                    w.circuit,
                    w.signal
                );
            }
        }
    }
}
