//! Shared fixtures for the benchmark harness: each paper experiment as a
//! ready-to-run bundle of (machine, observed signal, property suite,
//! options).
//!
//! The binaries (`table2`, `figures`) and the criterion benches all pull
//! from here so the workloads stay identical across harnesses.

pub mod corebench;
pub mod oldcore;

use covest_bdd::BddManager;
use covest_circuits::{circular_queue, counter, pipeline, priority_buffer};
use covest_core::{CoverageAnalysis, CoverageEstimator, CoverageOptions};
use covest_ctl::Formula;
use covest_smv::CompiledModel;

// The report bins measure wall-clock through the telemetry stopwatch,
// not hand-rolled `Instant::now()` pairs — CI greps the workspace to
// keep raw `Instant` confined to `covest-telemetry` (and this harness).
pub use covest_telemetry::Stopwatch;

/// Milliseconds elapsed on `sw`, in the form the report bins' `*_ms`
/// JSON fields use. Wall-clock by definition — never parity-checked.
pub fn elapsed_ms(sw: &Stopwatch) -> f64 {
    sw.elapsed().as_secs_f64() * 1e3
}

/// Runs `f` on a fresh [`Stopwatch`], returning its result together
/// with the elapsed milliseconds.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let sw = Stopwatch::start();
    let value = f();
    let ms = elapsed_ms(&sw);
    (value, ms)
}

/// Appends `SPEC` lines for `specs` to a deck source.
pub fn with_specs(mut deck: String, specs: &[Formula]) -> String {
    use std::fmt::Write as _;
    for spec in specs {
        writeln!(deck, "SPEC {spec};").expect("write to string");
    }
    deck
}

/// The **bundled fleet**: every bundled circuit (generated deck +
/// Table-2 suite) plus every checked-in `models/*.smv` deck, in a fixed
/// order. Shared by the `parallel_report` and `profile_report` bins so
/// their gates run over identical work.
pub fn bundled_fleet() -> Vec<covest_par::DeckJob> {
    use covest_par::DeckJob;

    let mut queue_suite = circular_queue::wrap_suite_initial();
    queue_suite.extend(circular_queue::full_suite());
    queue_suite.extend(circular_queue::empty_suite());
    let mut buffer_suite = priority_buffer::lo_suite_initial(4);
    buffer_suite.push(priority_buffer::lo_missing_case());
    buffer_suite.extend(priority_buffer::hi_suite(4));
    let mut pipeline_suite = pipeline::out_suite_initial(4);
    pipeline_suite.extend(pipeline::out_suite_hold());

    let mut decks = vec![
        DeckJob::new(
            "circuit:circular_queue",
            with_specs(circular_queue::deck(4), &queue_suite),
        ),
        DeckJob::new(
            "circuit:priority_buffer",
            with_specs(priority_buffer::deck(4, false), &buffer_suite),
        ),
        DeckJob::new(
            "circuit:counter",
            with_specs(counter::deck(), &counter::increment_properties()),
        ),
        DeckJob::new(
            "circuit:pipeline",
            with_specs(pipeline::deck(4), &pipeline_suite),
        ),
    ];

    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../models");
    let mut model_decks: Vec<DeckJob> = std::fs::read_dir(&dir)
        .expect("models directory")
        .filter_map(|e| {
            let path = e.expect("dir entry").path();
            if path.extension().is_some_and(|x| x == "smv") {
                let name = format!("models/{}", path.file_name().unwrap().to_string_lossy());
                Some(DeckJob::new(
                    name,
                    std::fs::read_to_string(&path).expect("readable deck"),
                ))
            } else {
                None
            }
        })
        .collect();
    model_decks.sort_by(|a, b| a.name.cmp(&b.name));
    decks.extend(model_decks);
    decks
}

/// One Table-2 row workload: a circuit, an observed signal and its suite.
pub struct Workload {
    /// Circuit display name (Table 2's first column).
    pub circuit: &'static str,
    /// Observed signal.
    pub signal: &'static str,
    /// Property suite.
    pub properties: Vec<Formula>,
    /// Analysis options (fairness for the pipeline).
    pub options: CoverageOptions,
    /// Expected coverage percentage from the paper, for the report.
    pub paper_percent: f64,
    /// Builder for the circuit model.
    pub build: fn(&BddManager) -> CompiledModel,
}

fn build_buffer(bdd: &BddManager) -> CompiledModel {
    priority_buffer::build(bdd, 4, false).expect("compiles")
}

fn build_queue(bdd: &BddManager) -> CompiledModel {
    circular_queue::build(bdd, 4).expect("compiles")
}

fn build_pipeline(bdd: &BddManager) -> CompiledModel {
    pipeline::build(bdd, 4).expect("compiles")
}

fn build_counter(bdd: &BddManager) -> CompiledModel {
    counter::build(bdd).expect("compiles")
}

/// The six observed-signal workloads of the paper's Table 2, plus the
/// introduction's counter as a seventh row.
pub fn table2_workloads() -> Vec<Workload> {
    let default = CoverageOptions::default;
    let fair_opts = || CoverageOptions {
        fairness: vec![pipeline::fairness()],
        ..Default::default()
    };
    let mut lo_full = priority_buffer::lo_suite_initial(4);
    lo_full.push(priority_buffer::lo_missing_case());
    let mut wrap_initial = circular_queue::wrap_suite_initial();
    let _ = &mut wrap_initial;
    vec![
        Workload {
            circuit: "Circuit 1 (priority buffer)",
            signal: "hi_cnt",
            properties: priority_buffer::hi_suite(4),
            options: default(),
            paper_percent: 100.00,
            build: build_buffer,
        },
        Workload {
            circuit: "Circuit 1 (priority buffer)",
            signal: "lo_cnt",
            properties: priority_buffer::lo_suite_initial(4),
            options: default(),
            paper_percent: 99.98,
            build: build_buffer,
        },
        Workload {
            circuit: "Circuit 2 (circular queue)",
            signal: "wrap",
            properties: circular_queue::wrap_suite_initial(),
            options: default(),
            paper_percent: 60.08,
            build: build_queue,
        },
        Workload {
            circuit: "Circuit 2 (circular queue)",
            signal: "full",
            properties: circular_queue::full_suite(),
            options: default(),
            paper_percent: 100.00,
            build: build_queue,
        },
        Workload {
            circuit: "Circuit 2 (circular queue)",
            signal: "empty",
            properties: circular_queue::empty_suite(),
            options: default(),
            paper_percent: 100.00,
            build: build_queue,
        },
        Workload {
            circuit: "Circuit 3 (pipeline)",
            signal: "out",
            properties: pipeline::out_suite_initial(4),
            options: fair_opts(),
            paper_percent: 74.36,
            build: build_pipeline,
        },
        Workload {
            circuit: "Intro (modulo-5 counter)",
            signal: "count",
            properties: counter::increment_properties(),
            options: default(),
            paper_percent: f64::NAN, // illustrative only in the paper
            build: build_counter,
        },
    ]
}

/// Runs one workload end to end on a fresh manager.
pub fn run_workload(w: &Workload) -> CoverageAnalysis {
    let bdd = BddManager::new();
    let model = (w.build)(&bdd);
    let estimator = CoverageEstimator::new(&model.fsm);
    estimator
        .analyze(w.signal, &w.properties, &w.options)
        .expect("workload analyzes")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_workloads_run_and_match_paper_shape() {
        for w in table2_workloads() {
            let a = run_workload(&w);
            assert!(a.all_hold(), "{}/{} suite verifies", w.circuit, w.signal);
            if w.paper_percent.is_nan() {
                continue;
            }
            if (w.paper_percent - 100.0).abs() < f64::EPSILON {
                assert_eq!(
                    a.percent(),
                    100.0,
                    "{}/{} fully covered in the paper",
                    w.circuit,
                    w.signal
                );
            } else {
                assert!(
                    a.percent() < 100.0,
                    "{}/{} has a hole in the paper",
                    w.circuit,
                    w.signal
                );
            }
        }
    }
}
