//! Regenerates the paper's Table 2: per observed signal, the number of
//! properties, the coverage percentage, and the BDD/table statistics for
//! verification and coverage estimation.
//!
//! Run with `cargo run -p covest-bench --bin table2 [--release]`.
//!
//! Absolute node counts and times differ from the 1999 HP9000 numbers;
//! what reproduces is the *shape*: which signals are fully covered,
//! where the holes are, and coverage estimation costing the same order
//! as verification.

use covest_bench::{run_workload, table2_workloads};
use covest_core::{CoverageTable, ReportRow};

fn main() {
    let mut table = CoverageTable::new();
    println!("TABLE 2 reproduction (paper values in parentheses)\n");
    for w in table2_workloads() {
        let analysis = run_workload(&w);
        let paper = if w.paper_percent.is_nan() {
            "n/a".to_owned()
        } else {
            format!("{:.2}", w.paper_percent)
        };
        println!(
            "{:<28} {:<8} measured {:>7.2}%   (paper {paper}%)",
            w.circuit,
            w.signal,
            analysis.percent()
        );
        table.push(ReportRow::from_analysis(w.circuit, &analysis));
    }
    println!("\n{table}");
    println!(
        "note: the lo-pri / wrap / out rows use the *initial* property \
         suites, i.e. the\npre-hole-closing stage the paper reports; see \
         EXPERIMENTS.md for the staged runs."
    );
}
