//! Measures what the sharded parallel coverage engine buys, on two
//! fleets:
//!
//! - the **bundled fleet** (every bundled circuit + `models/*.smv`) —
//!   parity is cross-checked bit for bit, the phase attribution is
//!   collected from a profiled run, and the *overhead gate* holds
//!   unconditionally: at `jobs = 1` the pool may cost at most 15% over
//!   the sequential estimator (threads can't help at one job, so the
//!   pool must at least not hurt — this gate cannot silently pass on a
//!   1-core CI runner the way a speedup gate would);
//! - a **sized fleet** (the `gen-models --size` scaling decks at several
//!   sizes) — large enough that compile/reachability dominate, where the
//!   *speedup gate* applies: with ≥ 2 cores visible, `--jobs 4` must
//!   beat sequential (speedup > 1.0).
//!
//! Phase attribution comes from per-shard profiles. Queue wait is
//! attributed per shard as (dequeue − enqueue), so the **max** is
//! bounded by the pool's wall-clock; the **total** may legitimately
//! exceed wall-clock because many shards wait concurrently (see
//! DESIGN.md), which is why the mean is reported alongside it.
//!
//! Writes `BENCH_parallel.json` at the workspace root (or the path
//! given as the first argument).

use std::fmt::Write as _;

use covest_bdd::BddManager;
use covest_par::{run_batch, run_sequential, BatchReport, DeckJob, ParConfig};

use covest_bench::{bundled_fleet as fleet, with_specs};

/// The scaling fleet: the `gen-models --size` decks (sized counters and
/// pipelines with their property suites) at several sizes, generated
/// in-process. Each deck is one heavyweight shard, so the fleet gives
/// `--jobs 4` real independent work to spread across cores.
fn sized_fleet() -> Vec<DeckJob> {
    use covest_circuits::{counter, pipeline};

    let mut decks = Vec::new();
    for n in [48u32, 64, 96, 128] {
        decks.push(DeckJob::new(
            format!("sized:counter_m{n}"),
            with_specs(
                counter::deck_sized(n),
                &counter::increment_properties_sized(n),
            ),
        ));
    }
    for stages in [10usize, 12, 14] {
        let mut suite = pipeline::out_suite_initial(stages);
        suite.extend(pipeline::out_suite_hold());
        decks.push(DeckJob::new(
            format!("sized:pipeline_d{stages}"),
            with_specs(pipeline::deck_sized(stages), &suite),
        ));
    }
    decks
}

/// Best-of-`n` wall-clock, to keep the gates out of reach of scheduler
/// noise on small fleets.
fn best_of<T>(n: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    let (mut out, mut best) = covest_bench::timed(&mut f);
    for _ in 1..n {
        let (v, ms) = covest_bench::timed(&mut f);
        if ms < best {
            best = ms;
            out = v;
        }
    }
    (out, best)
}

/// Asserts the parallel report agrees with the sequential baseline on
/// every deterministic result (the acceptance contract; node counts and
/// timings legitimately differ between per-shard and shared managers).
fn assert_parity(label: &str, seq: &BatchReport, par: &BatchReport) {
    assert_eq!(seq.decks.len(), par.decks.len(), "{label}: deck count");
    for (sd, pd) in seq.decks.iter().zip(&par.decks) {
        assert_eq!(sd.name, pd.name, "{label}: deck order drifted");
        assert_eq!(
            sd.verdicts, pd.verdicts,
            "{label}/{}: verdicts drifted",
            sd.name
        );
        for (so, po) in sd.signals.iter().zip(&pd.signals) {
            assert_eq!(
                so.row.percent.to_bits(),
                po.row.percent.to_bits(),
                "{label}/{}/{}: coverage must be bit-identical (seq {} vs par {})",
                sd.name,
                so.signal,
                so.row.percent,
                po.row.percent
            );
            assert_eq!(
                so.row.uncovered_sample, po.row.uncovered_sample,
                "{label}/{}/{}: uncovered sample drifted",
                sd.name, so.signal
            );
            let probe = BddManager::new();
            let s = probe.import_bdd(&so.uncovered).expect("seq dump imports");
            let p = probe.import_bdd(&po.uncovered).expect("par dump imports");
            assert_eq!(
                s, p,
                "{label}/{}/{}: uncovered set drifted",
                sd.name, so.signal
            );
        }
    }
}

fn main() {
    // Usage: parallel_report [OUT.json] [--jobs N]. The jobs override
    // pins the bundled-fleet pool width (CI passes `--jobs 4` so the
    // artifact is comparable across runners); the overhead gate always
    // runs at jobs=1 and the sized fleet always at jobs=4 regardless.
    let mut out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel.json").to_owned();
    let mut jobs_override = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        if arg == "--jobs" {
            let n = argv.next().expect("--jobs needs a value");
            jobs_override = Some(n.parse::<usize>().expect("--jobs value parses"));
        } else {
            out_path = arg;
        }
    }
    let decks = fleet();
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let jobs = jobs_override.unwrap_or(cores.min(4)).max(1);
    let config = |jobs: usize, profile: bool| ParConfig {
        jobs,
        profile,
        ..Default::default()
    };

    // ---- Bundled fleet: parity, overhead gate, phase attribution ----
    let (seq, seq_ms) = best_of(3, || {
        run_sequential(&decks, &config(jobs, false)).expect("sequential baseline runs")
    });
    let (par, par_ms) = best_of(3, || {
        run_batch(&decks, &config(jobs, false)).expect("parallel batch runs")
    });
    let (par1, par1_ms) = best_of(3, || {
        run_batch(&decks, &config(1, false)).expect("jobs=1 batch runs")
    });
    assert_parity("bundled", &seq, &par);
    assert_parity("bundled jobs=1", &seq, &par1);
    let speedup = seq_ms / par_ms;
    let overhead_ratio = par1_ms / seq_ms;
    let tasks = par.outcomes().count();

    // Phase attribution from a separate profiled run: where the pool's
    // CPU time went, summed across shards. Compile + reachability are
    // paid once per *shard* (cone-disjoint signal group), not once per
    // signal — that, plus spreading them over the cores, is the whole
    // speedup story. Queue wait is NOT compute — a queued shard occupies
    // no core — so it is reported separately: the max bounds any single
    // shard's latency (and can never exceed the pool's wall-clock), the
    // mean is the honest per-shard figure, and the total may exceed
    // wall-clock because shards wait concurrently (see DESIGN.md).
    let prof = run_batch(&decks, &config(jobs, true)).expect("profiled batch runs");
    let profiles: Vec<_> = prof.decks.iter().flat_map(|d| d.profiles.iter()).collect();
    let sum_ms = |f: fn(&covest_par::ShardProfile) -> std::time::Duration| -> f64 {
        profiles.iter().map(|p| f(p).as_secs_f64() * 1e3).sum()
    };
    let plan_ms: f64 = prof
        .decks
        .iter()
        .map(|d| d.plan_time.as_secs_f64() * 1e3)
        .sum();
    let queue_ms_total = sum_ms(|p| p.queue_wait);
    let queue_ms_mean = queue_ms_total / profiles.len().max(1) as f64;
    let queue_ms_max = profiles
        .iter()
        .map(|p| p.queue_wait.as_secs_f64() * 1e3)
        .fold(0.0f64, f64::max);
    let compile_ms = sum_ms(|p| p.compile);
    let reach_ms = sum_ms(|p| p.reach);
    let solve_ms = sum_ms(|p| p.solve);

    // ---- Sized fleet: the speedup gate ----
    let sized = sized_fleet();
    let sized_jobs = 4;
    let (sized_seq, sized_seq_ms) = covest_bench::timed(|| {
        run_sequential(&sized, &config(sized_jobs, false)).expect("sized sequential runs")
    });
    let (sized_par, sized_par_ms) = covest_bench::timed(|| {
        run_batch(&sized, &config(sized_jobs, false)).expect("sized batch runs")
    });
    assert_parity("sized", &sized_seq, &sized_par);
    let sized_speedup = sized_seq_ms / sized_par_ms;
    let sized_tasks = sized_par.outcomes().count();

    // Gate 1 (unconditional — meaningful even on a 1-core runner): at
    // jobs=1 the pool is the sequential algorithm plus scheduling, so it
    // may cost at most 15% over the sequential baseline.
    println!(
        "gate overhead  (bundled fleet, jobs=1, {cores} cores): pool {par1_ms:.1} ms vs \
         sequential {seq_ms:.1} ms -> ratio {overhead_ratio:.3} (limit 1.150) — {}",
        if overhead_ratio <= 1.15 {
            "PASS"
        } else {
            "FAIL"
        }
    );
    assert!(
        overhead_ratio <= 1.15,
        "jobs=1 pool overhead gate: {par1_ms:.1} ms > 1.15 x {seq_ms:.1} ms"
    );
    // Gate 2 (needs real parallelism): on the sized fleet, `--jobs 4`
    // must actually pay.
    if cores >= 2 {
        println!(
            "gate speedup   (sized fleet, jobs={sized_jobs}, {cores} cores): sequential \
             {sized_seq_ms:.1} ms, parallel {sized_par_ms:.1} ms -> {sized_speedup:.2}x — {}",
            if sized_speedup > 1.0 { "PASS" } else { "FAIL" }
        );
        assert!(
            sized_speedup > 1.0,
            "sized-fleet speedup gate: {sized_par_ms:.1} ms on {sized_jobs} jobs is not \
             faster than sequential {sized_seq_ms:.1} ms with {cores} cores visible"
        );
    } else {
        println!(
            "gate speedup   (sized fleet, jobs={sized_jobs}, {cores} core): SKIPPED — \
             a single-core runner can only lose to thread overhead"
        );
    }

    let mut json = String::from(
        "{\n  \"description\": \"Whole-fleet wall-clock: the sequential estimator \
         (one manager per deck, signals in series) vs the covest-par worker pool \
         (cone-disjoint shards on private managers, whole-shard work stealing, one \
         thread budget across all decks x signals). Parity is asserted bit for bit \
         before timing is even reported. Gates: jobs=1 pool overhead <= 1.15x \
         sequential (unconditional), and sized-fleet jobs=4 speedup > 1.0 when \
         >= 2 cores are visible.\",\n",
    );
    let _ = writeln!(json, "  \"cores\": {cores},");
    let _ = writeln!(json, "  \"jobs\": {jobs},");
    let _ = writeln!(json, "  \"decks\": {},", decks.len());
    let _ = writeln!(json, "  \"signal_tasks\": {tasks},");
    let _ = writeln!(json, "  \"shards\": {},", prof.sched.shards);
    let _ = writeln!(json, "  \"steals\": {},", prof.sched.steals);
    let _ = writeln!(json, "  \"sequential_ms\": {seq_ms:.2},");
    let _ = writeln!(json, "  \"parallel_ms\": {par_ms:.2},");
    let _ = writeln!(json, "  \"speedup\": {speedup:.3},");
    let _ = writeln!(json, "  \"jobs1_parallel_ms\": {par1_ms:.2},");
    let _ = writeln!(json, "  \"jobs1_overhead_ratio\": {overhead_ratio:.3},");
    let _ = writeln!(json, "  \"phase_plan_ms\": {plan_ms:.2},");
    let _ = writeln!(json, "  \"phase_queue_ms_total\": {queue_ms_total:.2},");
    let _ = writeln!(json, "  \"phase_queue_ms_mean\": {queue_ms_mean:.2},");
    let _ = writeln!(json, "  \"phase_queue_ms_max\": {queue_ms_max:.2},");
    let _ = writeln!(json, "  \"phase_compile_ms\": {compile_ms:.2},");
    let _ = writeln!(json, "  \"phase_reach_ms\": {reach_ms:.2},");
    let _ = writeln!(json, "  \"phase_solve_ms\": {solve_ms:.2},");
    let _ = writeln!(json, "  \"sized_decks\": {},", sized.len());
    let _ = writeln!(json, "  \"sized_signal_tasks\": {sized_tasks},");
    let _ = writeln!(json, "  \"sized_jobs\": {sized_jobs},");
    let _ = writeln!(json, "  \"sized_sequential_ms\": {sized_seq_ms:.2},");
    let _ = writeln!(json, "  \"sized_parallel_ms\": {sized_par_ms:.2},");
    let _ = writeln!(json, "  \"sized_speedup\": {sized_speedup:.3},");
    json.push_str("  \"rows\": [\n");
    let all: Vec<_> = par.outcomes().collect();
    for (i, o) in all.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"deck\": {}, \"signal\": {}, \"percent\": {}, \"holds\": {}}}",
            covest_core::json_string(&o.deck),
            covest_core::json_string(&o.signal),
            o.row.percent,
            o.row.all_hold()
        );
        json.push_str(if i + 1 == all.len() { "\n" } else { ",\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write report");

    println!(
        "bundled fleet: {} decks, {} signal tasks, {} shards ({} stolen): sequential \
         {seq_ms:.1} ms, parallel {par_ms:.1} ms ({jobs} jobs, {cores} cores) -> {speedup:.2}x",
        decks.len(),
        tasks,
        prof.sched.shards,
        prof.sched.steals,
    );
    println!(
        "sized fleet:   {} decks, {} signal tasks: sequential {sized_seq_ms:.1} ms, \
         parallel {sized_par_ms:.1} ms ({sized_jobs} jobs, {cores} cores) -> {sized_speedup:.2}x",
        sized.len(),
        sized_tasks,
    );
    println!(
        "phase attribution (cpu-ms across shards): plan {plan_ms:.1}, \
         compile {compile_ms:.1}, reach {reach_ms:.1}, solve {solve_ms:.1}; \
         queue wait (not compute): total {queue_ms_total:.1}, mean {queue_ms_mean:.1}, \
         max {queue_ms_max:.1}"
    );
    println!("wrote {out_path}");
}
