//! Measures what the parallel coverage engine buys on the bundled
//! circuits and `models/*.smv` decks: wall-clock of the sequential
//! estimator (one manager per deck, signals in series) versus the
//! signal-sharded worker pool (`covest-par`) running the whole fleet —
//! every deck × every observed signal — under one thread budget, with
//! every deterministic result (coverage percentages, verdicts,
//! uncovered-state sets) cross-checked bit for bit. Parity is asserted
//! unconditionally; the speedup gate (parallel ≥ sequential) applies
//! only when at least two cores are visible, since a single-core runner
//! can only lose to thread overhead.
//!
//! Writes `BENCH_parallel.json` at the workspace root (or the path
//! given as the first argument).

use std::fmt::Write as _;

use covest_bdd::BddManager;
use covest_par::{run_batch, run_sequential, BatchReport, DeckJob, ParConfig};

/// Every bundled circuit (generated deck + Table-2 suite) plus every
/// checked-in `models/*.smv` deck.
fn fleet() -> Vec<DeckJob> {
    use covest_circuits::{circular_queue, counter, pipeline, priority_buffer};

    let with_specs = |mut deck: String, specs: &[covest_ctl::Formula]| -> String {
        for spec in specs {
            writeln!(deck, "SPEC {spec};").expect("write to string");
        }
        deck
    };

    let mut queue_suite = circular_queue::wrap_suite_initial();
    queue_suite.extend(circular_queue::full_suite());
    queue_suite.extend(circular_queue::empty_suite());
    let mut buffer_suite = priority_buffer::lo_suite_initial(4);
    buffer_suite.push(priority_buffer::lo_missing_case());
    buffer_suite.extend(priority_buffer::hi_suite(4));
    let mut pipeline_suite = pipeline::out_suite_initial(4);
    pipeline_suite.extend(pipeline::out_suite_hold());

    let mut decks = vec![
        DeckJob::new(
            "circuit:circular_queue",
            with_specs(circular_queue::deck(4), &queue_suite),
        ),
        DeckJob::new(
            "circuit:priority_buffer",
            with_specs(priority_buffer::deck(4, false), &buffer_suite),
        ),
        DeckJob::new(
            "circuit:counter",
            with_specs(counter::deck(), &counter::increment_properties()),
        ),
        DeckJob::new(
            "circuit:pipeline",
            with_specs(pipeline::deck(4), &pipeline_suite),
        ),
    ];

    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../models");
    let mut model_decks: Vec<DeckJob> = std::fs::read_dir(&dir)
        .expect("models directory")
        .filter_map(|e| {
            let path = e.expect("dir entry").path();
            if path.extension().is_some_and(|x| x == "smv") {
                let name = format!("models/{}", path.file_name().unwrap().to_string_lossy());
                Some(DeckJob::new(
                    name,
                    std::fs::read_to_string(&path).expect("readable deck"),
                ))
            } else {
                None
            }
        })
        .collect();
    model_decks.sort_by(|a, b| a.name.cmp(&b.name));
    decks.extend(model_decks);
    decks
}

/// Asserts the parallel report agrees with the sequential baseline on
/// every deterministic result (the acceptance contract; node counts and
/// timings legitimately differ between per-task and shared managers).
fn assert_parity(seq: &BatchReport, par: &BatchReport) {
    assert_eq!(seq.decks.len(), par.decks.len(), "deck count drifted");
    for (sd, pd) in seq.decks.iter().zip(&par.decks) {
        assert_eq!(sd.name, pd.name, "deck order drifted");
        assert_eq!(sd.verdicts, pd.verdicts, "{}: verdicts drifted", sd.name);
        for (so, po) in sd.signals.iter().zip(&pd.signals) {
            assert_eq!(
                so.row.percent.to_bits(),
                po.row.percent.to_bits(),
                "{}/{}: coverage must be bit-identical (seq {} vs par {})",
                sd.name,
                so.signal,
                so.row.percent,
                po.row.percent
            );
            assert_eq!(
                so.row.uncovered_sample, po.row.uncovered_sample,
                "{}/{}: uncovered sample drifted",
                sd.name, so.signal
            );
            let probe = BddManager::new();
            let s = probe.import_bdd(&so.uncovered).expect("seq dump imports");
            let p = probe.import_bdd(&po.uncovered).expect("par dump imports");
            assert_eq!(s, p, "{}/{}: uncovered set drifted", sd.name, so.signal);
        }
    }
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel.json").to_owned()
    });
    let decks = fleet();
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let jobs = cores.min(4);
    // Profiling on: the pool collects per-task phase durations, which
    // the report aggregates into the wall-clock attribution below.
    let config = ParConfig {
        jobs,
        profile: true,
        ..Default::default()
    };

    let (seq, seq_ms) =
        covest_bench::timed(|| run_sequential(&decks, &config).expect("sequential baseline runs"));
    let (par, par_ms) =
        covest_bench::timed(|| run_batch(&decks, &config).expect("parallel batch runs"));

    assert_parity(&seq, &par);
    let speedup = seq_ms / par_ms;
    let tasks = par.outcomes().count();

    // Where the parallel run's CPU time went, summed across tasks: the
    // planner's per-deck compile + reachability (serial, on the calling
    // thread), then each task's recompile, reachable-set import, and
    // analysis. Solve is the only phase the sequential baseline also
    // pays per signal; plan and compile are the parallelization overhead
    // (the per-task recompiles), which is what caps the speedup well
    // below the job count. Queue wait is NOT compute — a task sitting in
    // the queue occupies no core — so it is reported separately, as a
    // total (how much waiting the whole fleet accumulated) and a max
    // (the worst any single task waited, the number that bounds latency).
    let profiles: Vec<_> = par.decks.iter().flat_map(|d| d.profiles.iter()).collect();
    let sum_ms = |f: fn(&covest_par::TaskProfile) -> std::time::Duration| -> f64 {
        profiles.iter().map(|p| f(p).as_secs_f64() * 1e3).sum()
    };
    let plan_ms: f64 = par
        .decks
        .iter()
        .map(|d| d.plan_time.as_secs_f64() * 1e3)
        .sum();
    let queue_ms_total = sum_ms(|p| p.queue_wait);
    let queue_ms_max = profiles
        .iter()
        .map(|p| p.queue_wait.as_secs_f64() * 1e3)
        .fold(0.0f64, f64::max);
    let compile_ms = sum_ms(|p| p.compile);
    let import_ms = sum_ms(|p| p.import);
    let solve_ms = sum_ms(|p| p.solve);

    // Acceptance gate: with real parallelism available, the pool must
    // not lose to the sequential baseline on the whole-fleet wall clock
    // (it pays per-task recompiles, but spreads them over the cores).
    if cores >= 2 {
        assert!(
            speedup >= 1.0,
            "parallel fleet run ({par_ms:.1} ms on {jobs} jobs) must not be slower than \
             sequential ({seq_ms:.1} ms) with {cores} cores visible"
        );
    }

    let mut json = String::from(
        "{\n  \"description\": \"Whole-fleet wall-clock: the sequential estimator \
         (one manager per deck, signals in series) vs the covest-par worker pool \
         (per-task managers, planner-exported reachable sets, one thread budget \
         across all decks x signals). Coverage percentages, verdicts, uncovered \
         samples and uncovered sets are asserted bit-identical before timing is \
         even reported; the speedup gate applies when >= 2 cores are visible.\",\n",
    );
    let _ = writeln!(json, "  \"cores\": {cores},");
    let _ = writeln!(json, "  \"jobs\": {jobs},");
    let _ = writeln!(json, "  \"decks\": {},", decks.len());
    let _ = writeln!(json, "  \"signal_tasks\": {tasks},");
    let _ = writeln!(json, "  \"sequential_ms\": {seq_ms:.2},");
    let _ = writeln!(json, "  \"parallel_ms\": {par_ms:.2},");
    let _ = writeln!(json, "  \"speedup\": {speedup:.3},");
    let _ = writeln!(json, "  \"phase_plan_ms\": {plan_ms:.2},");
    let _ = writeln!(json, "  \"phase_queue_ms_total\": {queue_ms_total:.2},");
    let _ = writeln!(json, "  \"phase_queue_ms_max\": {queue_ms_max:.2},");
    let _ = writeln!(json, "  \"phase_compile_ms\": {compile_ms:.2},");
    let _ = writeln!(json, "  \"phase_import_ms\": {import_ms:.2},");
    let _ = writeln!(json, "  \"phase_solve_ms\": {solve_ms:.2},");
    json.push_str("  \"rows\": [\n");
    let all: Vec<_> = par.outcomes().collect();
    for (i, o) in all.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"deck\": {}, \"signal\": {}, \"percent\": {}, \"holds\": {}}}",
            covest_core::json_string(&o.deck),
            covest_core::json_string(&o.signal),
            o.row.percent,
            o.row.all_hold()
        );
        json.push_str(if i + 1 == all.len() { "\n" } else { ",\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write report");

    println!(
        "{} decks, {} signal tasks: sequential {:.1} ms, parallel {:.1} ms \
         ({} jobs, {} cores) -> {:.2}x",
        decks.len(),
        tasks,
        seq_ms,
        par_ms,
        jobs,
        cores,
        speedup
    );
    println!(
        "phase attribution (cpu-ms across tasks): plan {plan_ms:.1}, \
         compile {compile_ms:.1}, import {import_ms:.1}, solve {solve_ms:.1}; \
         queue wait (not compute): total {queue_ms_total:.1}, max {queue_ms_max:.1}"
    );
    println!("wrote {out_path}");
}
