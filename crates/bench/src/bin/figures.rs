//! Regenerates the paper's Figures 1–3 as textual state listings:
//! which states of each example graph are covered / traversed /
//! first-reached.
//!
//! Run with `cargo run -p covest-bench --bin figures`.

use covest_bdd::{BddManager, Func};
use covest_circuits::toys;
use covest_core::{reference_covered_set, CoveredSets, ReferenceMode, DEFAULT_STATE_LIMIT};
use covest_ctl::parse_formula;
use covest_fsm::{Stg, SymbolicFsm};

fn decode_states(stg: &Stg, fsm: &SymbolicFsm, set: &Func) -> Vec<usize> {
    let vars = fsm.current_vars();
    let mut ids: Vec<usize> = set
        .minterms_over(&vars)
        .map(|m| stg.decode_state(&m, fsm))
        .collect();
    ids.sort_unstable();
    ids.dedup();
    ids
}

fn main() {
    // ---- Figure 1 -------------------------------------------------------
    let bdd = BddManager::new();
    let stg = toys::figure1();
    let fsm = stg.compile(&bdd).expect("compiles");
    let prop = parse_formula("AG (p1 -> AX AX q)").expect("subset");
    let mut cs = CoveredSets::new(&fsm, "q").expect("q exists");
    assert!(cs.verify(&prop).expect("verifies"));
    let covered = cs.covered_from_init(&prop).expect("covered");
    println!("Figure 1: covered states for AG (p1 -> AX AX q)");
    println!("  q-labelled states : {:?}", stg.labelled_states("q"));
    println!(
        "  covered states    : {:?}  (paper: only the states the property demands)",
        decode_states(&stg, &fsm, &covered)
    );

    // ---- Figure 2 -------------------------------------------------------
    let bdd = BddManager::new();
    let stg = toys::figure2();
    let fsm = stg.compile(&bdd).expect("compiles");
    let prop = parse_formula("A[p1 U q]").expect("subset");
    let raw = reference_covered_set(
        &fsm,
        "q",
        &prop,
        ReferenceMode::Raw,
        &[],
        DEFAULT_STATE_LIMIT,
    )
    .expect("reference runs");
    let mut cs = CoveredSets::new(&fsm, "q").expect("q exists");
    let covered = cs.covered_from_init(&prop).expect("covered");
    println!("\nFigure 2: covered states for A[p1 U q]");
    println!(
        "  raw Definition 3  : {:?}  (paper: zero — the unintuitive case)",
        decode_states(&stg, &fsm, &raw)
    );
    println!(
        "  transformed       : {:?}  (paper: the first q state)",
        decode_states(&stg, &fsm, &covered)
    );

    // ---- Figure 3 -------------------------------------------------------
    let bdd = BddManager::new();
    let stg = toys::figure3();
    let fsm = stg.compile(&bdd).expect("compiles");
    let mut cs = CoveredSets::new(&fsm, "f2").expect("f2 exists");
    let f1 = parse_formula("f1").expect("subset");
    let f2 = parse_formula("f2").expect("subset");
    let trav = cs.traverse(fsm.init(), &f1, &f2).expect("traverse");
    let first = cs.firstreached(fsm.init(), &f2).expect("firstreached");
    println!("\nFigure 3: state labelling for A[f1 U f2]");
    println!(
        "  traverse(S0,f1,f2)     : {:?}  (f1-prefix states)",
        decode_states(&stg, &fsm, &trav)
    );
    println!(
        "  firstreached(S0,f2)    : {:?}  (first f2 state per path)",
        decode_states(&stg, &fsm, &first)
    );
}
