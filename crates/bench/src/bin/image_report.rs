//! Measures what the partitioned image engine buys on the Table-2
//! circuits: peak live BDD node counts and wall time for the monolithic
//! versus the clustered early-quantification path, with the coverage
//! results cross-checked bit for bit (the CI gate fails on any drift).
//!
//! Writes `BENCH_image.json` at the workspace root (or the path given
//! as the first argument).

use std::fmt::Write as _;

use covest_bdd::BddManager;
use covest_bench::{table2_workloads, Workload};
use covest_core::CoverageEstimator;
use covest_fsm::{ImageConfig, ImageMethod, SimplifyConfig};

struct Measurement {
    peak_live: usize,
    millis: f64,
    percent: f64,
    clusters: usize,
}

struct Row {
    circuit: String,
    signal: String,
    mono: Measurement,
    part: Measurement,
}

impl Row {
    fn reduction(&self) -> f64 {
        if self.mono.peak_live == 0 {
            0.0
        } else {
            1.0 - self.part.peak_live as f64 / self.mono.peak_live as f64
        }
    }
}

/// Runs one workload with the given image method. Peak live nodes are
/// measured from the moment the method-specific engine is built (so the
/// partitioned arm's clustering transients are counted, symmetrically
/// with the monolithic arm's lazy `T` conjunction landing in its first
/// image call) through an explicit reachability sweep with a garbage
/// collection after every image step: each sample is the true working
/// size at a high-water mark, not cumulative allocation. Wall time
/// covers engine build, sweep and the full coverage analysis.
fn measure(w: &Workload, method: ImageMethod) -> Measurement {
    let bdd = BddManager::new();
    let model = (w.build)(&bdd);
    let mut fsm = model.fsm;
    // Drop compile garbage (identical for both arms) before the window;
    // the machine's owned handles are the live set.
    bdd.gc();

    let start = covest_bench::Stopwatch::start();
    let mut peak_live = bdd.live_nodes();
    // Measure the image method in isolation: don't-care simplification
    // (on by default) has its own report, and its care-simplified
    // cluster copies would otherwise skew both arms' live counts.
    fsm.set_image_config(ImageConfig {
        method,
        simplify: SimplifyConfig::Off,
        ..Default::default()
    });
    peak_live = peak_live.max(bdd.live_nodes());
    let clusters = fsm.image_engine().clusters().len();
    // The default-config clusters from the build above (common to both
    // arms) and any rejected trial merges are garbage now.
    bdd.gc();
    let mut reached = fsm.init().clone();
    let mut frontier = fsm.init().clone();
    loop {
        let img = fsm.image(&frontier);
        peak_live = peak_live.max(bdd.live_nodes());
        let fresh = img.diff(&reached);
        let done = fresh.is_false();
        reached = reached.or(&fresh);
        frontier = fresh;
        // `reached`/`frontier` pin themselves; everything else is swept.
        bdd.gc();
        if done {
            break;
        }
    }

    let estimator = CoverageEstimator::new(&fsm);
    let analysis = estimator
        .analyze(w.signal, &w.properties, &w.options)
        .expect("workload analyzes");
    let millis = covest_bench::elapsed_ms(&start);

    Measurement {
        peak_live,
        millis,
        percent: analysis.percent(),
        clusters,
    }
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_image.json").to_owned()
    });
    let mut rows = Vec::new();
    for w in table2_workloads() {
        let mono = measure(&w, ImageMethod::Monolithic);
        let part = measure(&w, ImageMethod::Partitioned);
        assert_eq!(
            mono.percent.to_bits(),
            part.percent.to_bits(),
            "{}/{}: coverage must be bit-identical across image methods \
             (mono {} vs part {})",
            w.circuit,
            w.signal,
            mono.percent,
            part.percent
        );
        rows.push(Row {
            circuit: w.circuit.to_owned(),
            signal: w.signal.to_owned(),
            mono,
            part,
        });
    }

    // Acceptance gate: on the priority-buffer circuit the partitioned
    // path must beat the monolith on peak live nodes.
    let mut gated = 0usize;
    for r in rows
        .iter()
        .filter(|r| r.circuit.contains("priority buffer"))
    {
        assert!(
            r.part.peak_live < r.mono.peak_live,
            "{}/{}: partitioned peak ({}) must stay below monolithic peak ({})",
            r.circuit,
            r.signal,
            r.part.peak_live,
            r.mono.peak_live
        );
        gated += 1;
    }
    assert!(
        gated > 0,
        "no priority-buffer rows found — the acceptance gate would pass vacuously \
         (did the workload's circuit label change?)"
    );

    let mut json = String::from("{\n  \"description\": \"Peak live BDD nodes from method-specific engine construction (clustering transients included) through a reachability sweep with GC after every image step (true working-set high-water marks, not cumulative allocation), and wall time of engine build + sweep + full coverage analysis, monolithic vs partitioned image computation; coverage percentages are asserted bit-identical.\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"circuit\": {:?}, \"signal\": {:?}, \"mono_peak_live\": {}, \"part_peak_live\": {}, \"peak_reduction\": {:.4}, \"mono_ms\": {:.2}, \"part_ms\": {:.2}, \"clusters\": {}, \"coverage_percent\": {:.4}}}",
            r.circuit,
            r.signal,
            r.mono.peak_live,
            r.part.peak_live,
            r.reduction(),
            r.mono.millis,
            r.part.millis,
            r.part.clusters,
            r.part.percent
        );
        json.push_str(if i + 1 == rows.len() { "\n" } else { ",\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write report");

    println!(
        "{:<34} {:<8} {:>10} {:>10} {:>7} {:>9}",
        "circuit", "signal", "mono peak", "part peak", "gain", "clusters"
    );
    for r in &rows {
        println!(
            "{:<34} {:<8} {:>10} {:>10} {:>6.1}% {:>9}",
            r.circuit,
            r.signal,
            r.mono.peak_live,
            r.part.peak_live,
            100.0 * r.reduction(),
            r.part.clusters
        );
    }
    println!("wrote {out_path}");
}
