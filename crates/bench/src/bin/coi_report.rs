//! Measures what cone-of-influence reduction buys: the worker pool
//! running the bundled decks plus sized pipeline decks (which carry a
//! cone-prunable debug register chain) with `coi` on versus off.
//!
//! For every `(deck, signal)` task the report records the static cone
//! width against the deck's total state bits, the worker manager's peak
//! live node count in both modes, and the whole-fleet wall-clock.
//! Before any number is reported, the two modes' reports are asserted
//! identical on every deterministic field — percentages bit-for-bit,
//! verdicts, uncovered samples, and the uncovered sets themselves
//! (imported into one shared manager). The acceptance gate on top:
//! at least one sized pipeline deck must show a peak-live-node
//! reduction, since COI prunes its debug chain away entirely.
//!
//! Writes `BENCH_coi.json` at the workspace root (or the path given as
//! the first argument).

use std::fmt::Write as _;

use covest_analyze::{cone_bit_names, task_cone, DepGraph};
use covest_bdd::BddManager;
use covest_par::{run_batch, BatchReport, DeckJob, ParConfig};
use covest_smv::decl_bit_names;

/// The four fixed bundled decks plus sized pipeline decks whose debug
/// register chains give the reduction something real to cut away.
fn fleet() -> Vec<DeckJob> {
    use covest_circuits::{circular_queue, counter, pipeline, priority_buffer};

    let with_specs = |mut deck: String, specs: &[covest_ctl::Formula]| -> String {
        for spec in specs {
            writeln!(deck, "SPEC {spec};").expect("write to string");
        }
        deck
    };

    let mut queue_suite = circular_queue::wrap_suite_initial();
    queue_suite.extend(circular_queue::full_suite());
    queue_suite.extend(circular_queue::empty_suite());
    let mut buffer_suite = priority_buffer::lo_suite_initial(4);
    buffer_suite.push(priority_buffer::lo_missing_case());
    buffer_suite.extend(priority_buffer::hi_suite(4));

    let mut decks = vec![
        DeckJob::new(
            "circuit:circular_queue",
            with_specs(circular_queue::deck(4), &queue_suite),
        ),
        DeckJob::new(
            "circuit:priority_buffer",
            with_specs(priority_buffer::deck(4, false), &buffer_suite),
        ),
        DeckJob::new(
            "circuit:counter",
            with_specs(counter::deck(), &counter::increment_properties()),
        ),
    ];
    for stages in [4usize, 8] {
        let mut suite = pipeline::out_suite_initial(stages);
        suite.extend(pipeline::out_suite_hold());
        decks.push(DeckJob::new(
            format!("sized:pipeline_d{stages}"),
            with_specs(pipeline::deck_sized(stages), &suite),
        ));
    }
    decks
}

/// Asserts the two modes agree on every deterministic report field (the
/// exact-parity contract; node counts and timings legitimately differ).
fn assert_parity(on: &BatchReport, off: &BatchReport) {
    assert_eq!(on.decks.len(), off.decks.len(), "deck count drifted");
    for (a, b) in on.decks.iter().zip(&off.decks) {
        assert_eq!(a.name, b.name, "deck order drifted");
        assert_eq!(a.verdicts, b.verdicts, "{}: verdicts drifted", a.name);
        assert_eq!(
            a.signals.len(),
            b.signals.len(),
            "{}: signal count drifted",
            a.name
        );
        for (sa, sb) in a.signals.iter().zip(&b.signals) {
            assert_eq!(
                sa.row.percent.to_bits(),
                sb.row.percent.to_bits(),
                "{}/{}: coverage must be bit-identical (on {} vs off {})",
                a.name,
                sa.signal,
                sa.row.percent,
                sb.row.percent
            );
            assert_eq!(
                sa.row.covered_states.to_bits(),
                sb.row.covered_states.to_bits(),
                "{}/{}: covered count drifted",
                a.name,
                sa.signal
            );
            assert_eq!(
                sa.row.space_states.to_bits(),
                sb.row.space_states.to_bits(),
                "{}/{}: space count drifted",
                a.name,
                sa.signal
            );
            assert_eq!(
                sa.row.verdicts, sb.row.verdicts,
                "{}/{}: verdicts drifted",
                a.name, sa.signal
            );
            assert_eq!(
                sa.row.uncovered_sample, sb.row.uncovered_sample,
                "{}/{}: uncovered sample drifted",
                a.name, sa.signal
            );
            let probe = BddManager::new();
            let s = probe.import_bdd(&sa.uncovered).expect("on dump imports");
            let p = probe.import_bdd(&sb.uncovered).expect("off dump imports");
            assert_eq!(s, p, "{}/{}: uncovered set drifted", a.name, sa.signal);
        }
    }
}

/// The peak live node count of the shard that analyzed `signal` on
/// `deck`. With cone-disjoint sharding this attributes the whole
/// shard's peak to each of its signals — identical for coi on and off,
/// since shard grouping is a pure function of the deck's static cones.
fn peak_live(report: &BatchReport, deck: &str, signal: &str) -> u64 {
    report
        .decks
        .iter()
        .filter(|d| d.name == deck)
        .flat_map(|d| d.profiles.iter())
        .find(|p| p.signals.iter().any(|s| s == signal))
        .map(|p| p.counters.get("bdd_peak_live_nodes"))
        .expect("profiled shard")
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_coi.json").to_owned());
    let decks = fleet();
    let jobs = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(4);
    let config = |coi: bool| ParConfig {
        jobs,
        profile: true,
        coi,
        ..Default::default()
    };

    let (on, on_ms) = covest_bench::timed(|| run_batch(&decks, &config(true)).expect("coi on"));
    let (off, off_ms) = covest_bench::timed(|| run_batch(&decks, &config(false)).expect("coi off"));
    assert_parity(&on, &off);

    // Static cone geometry per task, straight from the analyzer.
    struct Row {
        deck: String,
        signal: String,
        cone_bits: usize,
        total_bits: usize,
        peak_on: u64,
        peak_off: u64,
    }
    let mut rows: Vec<Row> = Vec::new();
    for job in &decks {
        let module = covest_smv::parse_module(&job.source).expect("deck parses");
        let graph = DepGraph::new(&module);
        let total_bits: usize = module.vars.iter().map(|d| decl_bit_names(d).len()).sum();
        let deck_report = on
            .decks
            .iter()
            .find(|d| d.name == job.name)
            .expect("deck in report");
        for outcome in &deck_report.signals {
            let cone = task_cone(&module, &graph, &outcome.signal).expect("cone computes");
            rows.push(Row {
                deck: job.name.clone(),
                signal: outcome.signal.clone(),
                cone_bits: cone_bit_names(&module, &cone).len(),
                total_bits,
                peak_on: peak_live(&on, &job.name, &outcome.signal),
                peak_off: peak_live(&off, &job.name, &outcome.signal),
            });
        }
    }

    // Acceptance gate: parity held above; on top, COI must show a peak
    // live-node reduction on at least one sized pipeline deck, whose
    // debug chain exists precisely to be pruned.
    let reduced = rows
        .iter()
        .any(|r| r.deck.starts_with("sized:pipeline") && r.peak_on < r.peak_off);
    assert!(
        reduced,
        "expected a peak-live-node reduction on at least one sized pipeline deck:\n{}",
        rows.iter()
            .map(|r| format!(
                "  {}/{}: cone {}/{} bits, peak live on {} vs off {}",
                r.deck, r.signal, r.cone_bits, r.total_bits, r.peak_on, r.peak_off
            ))
            .collect::<Vec<_>>()
            .join("\n")
    );

    let mut json = String::from(
        "{\n  \"description\": \"Cone-of-influence reduction: the worker pool running \
         the bundled decks plus sized pipeline decks (debug register chains outside \
         every property's cone) with coi on vs off. Reports are asserted identical on \
         every deterministic field before timing is reported; the gate requires a \
         peak-live-node reduction on at least one sized pipeline deck.\",\n",
    );
    let _ = writeln!(json, "  \"jobs\": {jobs},");
    let _ = writeln!(json, "  \"decks\": {},", decks.len());
    let _ = writeln!(json, "  \"coi_on_ms\": {on_ms:.2},");
    let _ = writeln!(json, "  \"coi_off_ms\": {off_ms:.2},");
    let _ = writeln!(json, "  \"parity\": \"asserted\",");
    json.push_str("  \"tasks\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"deck\": {}, \"signal\": {}, \"cone_bits\": {}, \"total_bits\": {}, \
             \"peak_live_on\": {}, \"peak_live_off\": {}}}",
            covest_core::json_string(&r.deck),
            covest_core::json_string(&r.signal),
            r.cone_bits,
            r.total_bits,
            r.peak_on,
            r.peak_off
        );
        json.push_str(if i + 1 == rows.len() { "\n" } else { ",\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write report");

    for r in &rows {
        println!(
            "{}/{}: cone {}/{} bits, peak live {} (on) vs {} (off)",
            r.deck, r.signal, r.cone_bits, r.total_bits, r.peak_on, r.peak_off
        );
    }
    println!(
        "fleet wall-clock: coi on {on_ms:.1} ms, coi off {off_ms:.1} ms ({jobs} jobs); \
         parity asserted"
    );
    println!("wrote {out_path}");
}
