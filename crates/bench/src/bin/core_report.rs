//! Measures what the packed-arena BDD core buys over the pre-rewrite
//! HashMap engine on three seeded microbench workloads — an ITE-heavy
//! random netlist, fused relational products (`and_exists`), and
//! `set_order` permutation round-trips — with every result cross-checked
//! by evaluation checksum before any timing is reported. Also reports a
//! heap-footprint proxy (packed arena + tables vs `HashMap` capacity)
//! and size-vs-time curves for the sized counter and pipeline circuit
//! families on the full coverage stack.
//!
//! Acceptance gate: the new core must not be slower than the old one on
//! the ITE netlist (ops/sec, equal checksums). The rewrite's target —
//! and what the checked-in `BENCH_core.json` shows — is >= 2x there.
//!
//! Writes `BENCH_core.json` at the workspace root (or the path given as
//! the first argument).

use std::fmt::Write as _;

use covest_bdd::BddManager;
use covest_bench::corebench::{
    netlist, netlist_footprint_new, netlist_footprint_old, run_and_exists_new, run_and_exists_old,
    run_netlist_new, run_netlist_old, run_reorder_new, run_reorder_old, Netlist,
};
use covest_circuits::{counter, pipeline};
use covest_core::{CoverageEstimator, CoverageOptions};

/// One old-vs-new workload measurement (checksums already asserted
/// equal).
struct Comparison {
    name: &'static str,
    ops: u64,
    old_ms: f64,
    new_ms: f64,
}

impl Comparison {
    fn old_ops_per_sec(&self) -> f64 {
        self.ops as f64 / (self.old_ms / 1e3)
    }

    fn new_ops_per_sec(&self) -> f64 {
        self.ops as f64 / (self.new_ms / 1e3)
    }

    fn speedup(&self) -> f64 {
        self.old_ms / self.new_ms
    }
}

/// Times `rounds` repetitions of a workload on each engine (fresh
/// manager per round), asserting checksum parity on every round.
fn compare(
    name: &'static str,
    ops_per_round: u64,
    rounds: u32,
    old: impl Fn() -> u64,
    new: impl Fn() -> u64,
) -> Comparison {
    // One untimed warmup round each, which also performs the parity
    // check before any measurement exists to be trusted.
    let expect = old();
    assert_eq!(
        expect,
        new(),
        "{name}: old and new cores disagree — no timing is meaningful"
    );
    let (_, old_ms) = covest_bench::timed(|| {
        for _ in 0..rounds {
            assert_eq!(old(), expect, "{name}: old-core checksum drifted");
        }
    });
    let (_, new_ms) = covest_bench::timed(|| {
        for _ in 0..rounds {
            assert_eq!(new(), expect, "{name}: new-core checksum drifted");
        }
    });
    Comparison {
        name,
        ops: ops_per_round * u64::from(rounds),
        old_ms,
        new_ms,
    }
}

/// One point of a size-vs-time curve on the full coverage stack.
struct ScalePoint {
    size: u32,
    vars: usize,
    ms: f64,
    percent: f64,
}

fn counter_curve(sizes: &[u32]) -> Vec<ScalePoint> {
    sizes
        .iter()
        .map(|&max| {
            let bdd = BddManager::new();
            let (a, ms) = covest_bench::timed(|| {
                let model = counter::build_sized(&bdd, max).expect("compiles");
                let est = CoverageEstimator::new(&model.fsm);
                est.analyze(
                    "count",
                    &counter::increment_properties_sized(max),
                    &CoverageOptions::default(),
                )
                .expect("analyzes")
            });
            ScalePoint {
                size: max,
                vars: bdd.num_vars(),
                ms,
                percent: a.percent(),
            }
        })
        .collect()
}

fn pipeline_curve(sizes: &[u32]) -> Vec<ScalePoint> {
    sizes
        .iter()
        .map(|&stages| {
            let bdd = BddManager::new();
            let (a, ms) = covest_bench::timed(|| {
                let model = pipeline::build(&bdd, stages as usize).expect("compiles");
                let est = CoverageEstimator::new(&model.fsm);
                let opts = CoverageOptions {
                    fairness: vec![pipeline::fairness()],
                    ..Default::default()
                };
                est.analyze("out", &pipeline::out_suite_initial(stages as usize), &opts)
                    .expect("analyzes")
            });
            ScalePoint {
                size: stages,
                vars: bdd.num_vars(),
                ms,
                percent: a.percent(),
            }
        })
        .collect()
}

fn write_comparison(json: &mut String, c: &Comparison, trailing_comma: bool) {
    let _ = writeln!(json, "  \"{}\": {{", c.name);
    let _ = writeln!(json, "    \"ops\": {},", c.ops);
    let _ = writeln!(json, "    \"old_ms\": {:.2},", c.old_ms);
    let _ = writeln!(json, "    \"new_ms\": {:.2},", c.new_ms);
    let _ = writeln!(json, "    \"old_ops_per_sec\": {:.0},", c.old_ops_per_sec());
    let _ = writeln!(json, "    \"new_ops_per_sec\": {:.0},", c.new_ops_per_sec());
    let _ = writeln!(json, "    \"speedup\": {:.3}", c.speedup());
    let _ = writeln!(json, "  }}{}", if trailing_comma { "," } else { "" });
}

fn write_curve(json: &mut String, name: &str, axis: &str, points: &[ScalePoint], last: bool) {
    let _ = writeln!(json, "    \"{name}\": [");
    for (i, p) in points.iter().enumerate() {
        let _ = write!(
            json,
            "      {{\"{axis}\": {}, \"vars\": {}, \"ms\": {:.2}, \"percent\": {:.2}}}",
            p.size, p.vars, p.ms, p.percent
        );
        json.push_str(if i + 1 == points.len() { "\n" } else { ",\n" });
    }
    let _ = writeln!(json, "    ]{}", if last { "" } else { "," });
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_core.json").to_owned()
    });

    // The three seeded programs. Sizes are chosen so each old-core side
    // runs for a fraction of a second in release mode — long enough to
    // measure, short enough for CI.
    let ite_prog: Netlist = netlist(0x5EED_0001, 20, 12, 60);
    let ae_prog: Netlist = netlist(0x5EED_0002, 22, 10, 48);
    let ro_prog: Netlist = netlist(0x5EED_0003, 18, 8, 40);

    let ite = compare(
        "ite",
        ite_prog.gates.len() as u64,
        4,
        || run_netlist_old(&ite_prog),
        || run_netlist_new(&ite_prog),
    );
    let ae_pairs = 256u64;
    let ae = compare(
        "and_exists",
        ae_pairs,
        4,
        || run_and_exists_old(&ae_prog, ae_pairs as usize, 0xABCD),
        || run_and_exists_new(&ae_prog, ae_pairs as usize, 0xABCD),
    );
    let ro_flips = 2u64; // reverse + restore per inner round
    let ro_rounds = 3usize;
    let ro = compare(
        "reorder",
        ro_flips * ro_rounds as u64,
        4,
        || run_reorder_old(&ro_prog, ro_rounds),
        || run_reorder_new(&ro_prog, ro_rounds),
    );

    // Heap-footprint proxy after building the ITE netlist once: packed
    // arena + open-addressing tables + fixed caches, vs node vec +
    // HashMap capacities.
    let bytes_new = netlist_footprint_new(&ite_prog);
    let bytes_old = netlist_footprint_old(&ite_prog);

    // Acceptance gate: equal results (asserted above, per round) and no
    // regression on the ITE-heavy workload. The 2x target is visible in
    // the checked-in report rather than asserted, so a slow shared CI
    // runner cannot turn measurement noise into a red build.
    assert!(
        ite.new_ops_per_sec() >= ite.old_ops_per_sec(),
        "packed-arena core must not lose to the HashMap core on the ITE netlist \
         (old {:.0} ops/s vs new {:.0} ops/s)",
        ite.old_ops_per_sec(),
        ite.new_ops_per_sec()
    );

    let counter_points = counter_curve(&[5, 9, 17, 33]);
    let pipeline_points = pipeline_curve(&[2, 4, 6]);

    let mut json = String::from(
        "{\n  \"description\": \"Old-vs-new BDD core on seeded microbench programs \
         interpreted by both engines: the packed-arena / open-addressing / \
         direct-mapped-cache core vs a faithful HashMap replica of the pre-rewrite \
         engine. Evaluation checksums are asserted equal on every round before any \
         ops/sec is reported. arena_bytes are the engines' own heap-footprint \
         proxies after the ITE netlist. The scaling section runs the full coverage \
         stack on the sized counter (counts 0..=size) and pipeline (size stages) \
         families.\",\n",
    );
    write_comparison(&mut json, &ite, true);
    write_comparison(&mut json, &ae, true);
    write_comparison(&mut json, &ro, true);
    let _ = writeln!(json, "  \"arena_bytes_new\": {bytes_new},");
    let _ = writeln!(json, "  \"arena_bytes_old\": {bytes_old},");
    json.push_str("  \"scaling\": {\n");
    write_curve(&mut json, "counter", "size", &counter_points, false);
    write_curve(&mut json, "pipeline", "stages", &pipeline_points, true);
    json.push_str("  }\n}\n");
    std::fs::write(&out_path, &json).expect("write report");

    for c in [&ite, &ae, &ro] {
        println!(
            "{:>10}: {} ops, old {:.1} ms ({:.0} ops/s), new {:.1} ms ({:.0} ops/s) -> {:.2}x",
            c.name,
            c.ops,
            c.old_ms,
            c.old_ops_per_sec(),
            c.new_ms,
            c.new_ops_per_sec(),
            c.speedup()
        );
    }
    println!("footprint after ite netlist: new {bytes_new} B, old {bytes_old} B");
    println!("wrote {out_path}");
}
