//! The deep-profiling acceptance gate: run the bundled fleet through
//! the worker pool with profiling on and check that the memory
//! timeline's books balance.
//!
//! For every shard the gate asserts, exactly:
//!
//! - the per-phase **peak-live attribution table** (the fold of the
//!   memory samples stamped on the shard's span forest — see
//!   [`covest_telemetry::memory::peak_by_phase`]) is non-empty, and its
//!   maximum equals the shard manager's `bdd_peak_live_nodes` counter.
//!   This reconciliation is the whole point of the attribution rule: no
//!   allocation escapes the table, and no phase is credited with nodes
//!   that never existed;
//! - the surfaced reorder sizes are coherent: `bdd_reorder_size_before`
//!   and `_after` are both zero (reordering never ran) or both nonzero.
//!
//! Writes `BENCH_profile.json` at the workspace root (or the path given
//! as the first argument): per-shard peak tables plus the fleet-wide
//! merged table. With `--trace FILE` the run additionally streams a
//! Chrome trace-event file (one track per pool worker) — CI uploads it
//! as the Perfetto artifact.
//!
//! Usage: `profile_report [OUT.json] [--jobs N] [--trace FILE]`.

use std::fmt::Write as _;

use covest_core::json_string;
use covest_par::{run_batch, run_batch_with_trace, ParConfig};
use covest_telemetry::chrome::{TraceFormat, TraceWriter};
use covest_telemetry::{memory, Counters};

fn counters_json(c: &Counters) -> String {
    let mut out = String::from("{");
    for (i, (name, value)) in c.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{}: {value}", json_string(name));
    }
    out.push('}');
    out
}

fn main() {
    let mut out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_profile.json").to_owned();
    let mut jobs = 4usize;
    let mut trace_path: Option<String> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--jobs" => {
                let n = argv.next().expect("--jobs needs a value");
                jobs = n.parse().expect("--jobs value parses");
            }
            "--trace" => trace_path = Some(argv.next().expect("--trace needs a path")),
            _ => out_path = arg,
        }
    }

    let decks = covest_bench::bundled_fleet();
    let config = ParConfig {
        jobs,
        profile: true,
        ..Default::default()
    };
    let report = match &trace_path {
        Some(path) => {
            let file = std::fs::File::create(path).expect("trace file creates");
            let mut writer = TraceWriter::new(std::io::BufWriter::new(file), TraceFormat::Chrome);
            let report =
                run_batch_with_trace(&decks, &config, &mut writer).expect("profiled batch runs");
            writer.finish().expect("trace file writes");
            report
        }
        None => run_batch(&decks, &config).expect("profiled batch runs"),
    };

    let profiles: Vec<_> = report
        .decks
        .iter()
        .flat_map(|d| d.profiles.iter())
        .collect();
    assert!(!profiles.is_empty(), "profiled run must collect profiles");

    // The reconciliation gate, per shard.
    let mut merged = Counters::new();
    for p in &profiles {
        let label = format!("{} [{}]", p.deck, p.signals.join("+"));
        assert!(
            !p.peak_by_phase.is_empty(),
            "{label}: profiled shard has no memory samples"
        );
        let table_peak = memory::table_peak(&p.peak_by_phase);
        assert_eq!(
            table_peak,
            p.peak_live_nodes(),
            "{label}: peak attribution table (max {table_peak}) must reconcile \
             exactly with bdd_peak_live_nodes ({})",
            p.peak_live_nodes()
        );
        let (before, after) = p.reorder_sizes();
        assert_eq!(
            before == 0,
            after == 0,
            "{label}: reorder sizes must be both unset or both set \
             (before {before}, after {after})"
        );
        for (phase, value) in p.peak_by_phase.iter() {
            merged.set_max(phase, value);
        }
    }
    let fleet_peak = profiles.iter().map(|p| p.peak_live_nodes()).max().unwrap();
    assert_eq!(
        memory::table_peak(&merged),
        fleet_peak,
        "merged table peak must equal the largest per-shard high-water mark"
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"jobs\": {jobs},");
    let _ = writeln!(json, "  \"shards\": [");
    for (i, p) in profiles.iter().enumerate() {
        let signals: Vec<String> = p.signals.iter().map(|s| json_string(s)).collect();
        let (before, after) = p.reorder_sizes();
        let _ = write!(
            json,
            "    {{\"deck\": {}, \"signals\": [{}], \"peak_live_nodes\": {}, \
             \"reorder_size_before\": {before}, \"reorder_size_after\": {after}, \
             \"peak_by_phase\": {}}}",
            json_string(&p.deck),
            signals.join(", "),
            p.peak_live_nodes(),
            counters_json(&p.peak_by_phase),
        );
        json.push_str(if i + 1 < profiles.len() { ",\n" } else { "\n" });
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"peak_by_phase\": {},", counters_json(&merged));
    let _ = writeln!(json, "  \"peak_live_nodes\": {fleet_peak}");
    json.push_str("}\n");
    std::fs::write(&out_path, json).expect("report written");

    println!(
        "profile gate: {} shards reconciled (fleet peak {fleet_peak} live nodes, {jobs} jobs)",
        profiles.len()
    );
    if let Some(path) = &trace_path {
        println!("wrote {path}");
    }
    println!("wrote {out_path}");
}
