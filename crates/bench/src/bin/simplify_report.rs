//! Measures what don't-care simplification buys on the Table-2
//! circuits: peak live BDD node counts and wall time for `--simplify
//! off` versus `restrict` versus `constrain` (on the default partitioned
//! image engine), with the coverage results cross-checked bit for bit
//! (the CI gate fails on any drift).
//!
//! Writes `BENCH_simplify.json` at the workspace root (or the path given
//! as the first argument).

use std::fmt::Write as _;

use covest_bdd::BddManager;
use covest_bench::{table2_workloads, Workload};
use covest_core::CoverageEstimator;
use covest_fsm::{ImageConfig, SimplifyConfig};

struct Measurement {
    peak_live: usize,
    millis: f64,
    percent: f64,
}

struct Row {
    circuit: String,
    signal: String,
    off: Measurement,
    restrict: Measurement,
    constrain: Measurement,
}

impl Row {
    fn reduction(&self) -> f64 {
        if self.off.peak_live == 0 {
            0.0
        } else {
            1.0 - self.restrict.peak_live as f64 / self.off.peak_live as f64
        }
    }
}

/// Runs one workload with the given simplification mode. Peak live
/// nodes are sampled through the phases the simplification targets,
/// with a garbage collection after every fixpoint step so each sample
/// is a true working-set high-water mark, not cumulative allocation:
///
/// 1. reachability (frontier-simplified per mode) and care installation
///    (cluster simplification — its duplicated simplified clusters are
///    an honest cost the simplified arms carry from here on);
/// 2. a forward re-sweep on the care-installed engine;
/// 3. an `AG`-shaped backward sweep — `EF(viol)` for a violation-style
///    set (the complement of a prefix of the onion rings, exactly the
///    junk-heavy full-space shape `¬p` takes in `AG p = ¬EF ¬p`), with
///    each preimage operand simplified modulo the reachable states the
///    way the model checker's fixpoints do it.
///
/// Wall time additionally covers the full coverage analysis (whose
/// fixpoints run iterate-simplified under the installed care set).
fn measure(w: &Workload, simplify: SimplifyConfig) -> Measurement {
    let bdd = BddManager::new();
    let model = (w.build)(&bdd);
    let mut fsm = model.fsm;
    fsm.set_image_config(ImageConfig {
        simplify,
        ..Default::default()
    });
    // Drop compile garbage (identical for all arms) before the window.
    bdd.gc();

    let start = covest_bench::Stopwatch::start();
    let mut peak_live = bdd.live_nodes();
    // Phase 1: reachability (mode-gated frontier simplification inside)
    // and care installation (mode-gated cluster simplification).
    let reach = fsm.install_reachable_care();
    bdd.gc();
    peak_live = peak_live.max(bdd.live_nodes());

    // Phase 2: forward re-sweep on the care-installed engine, gc per
    // step, the frontier discipline mirroring `reach.rs`.
    let mut reached = fsm.init().clone();
    let mut frontier = fsm.init().clone();
    loop {
        let img = fsm.image(&frontier);
        peak_live = peak_live.max(bdd.live_nodes());
        let fresh = img.diff(&reached);
        let done = fresh.is_false();
        frontier = simplify.apply(&fresh, &reached.not());
        reached = reached.or(&fresh);
        bdd.gc();
        peak_live = peak_live.max(bdd.live_nodes());
        if done {
            break;
        }
    }
    assert_eq!(reached, reach, "re-sweep must reproduce the reachable set");

    // Phase 3: AG-shaped backward sweep with iterate simplification.
    let rings = fsm.onion_rings(fsm.init());
    let mut prefix = bdd.constant(false);
    for r in rings.iter().take(rings.len() / 2 + 1) {
        prefix = prefix.or(r);
    }
    let viol = prefix.not();
    drop((rings, prefix));
    bdd.gc();
    let mut z = viol;
    loop {
        let zs = simplify.apply(&z, &reach);
        let pre = fsm.preimage(&zs);
        peak_live = peak_live.max(bdd.live_nodes());
        let next = z.or(&pre);
        let done = next == z;
        z = next;
        drop((pre, zs));
        bdd.gc();
        peak_live = peak_live.max(bdd.live_nodes());
        if done {
            break;
        }
    }
    drop(z);

    // Phase 4: the full analysis (verification + coverage).
    let estimator = CoverageEstimator::new(&fsm);
    let analysis = estimator
        .analyze(w.signal, &w.properties, &w.options)
        .expect("workload analyzes");
    let millis = covest_bench::elapsed_ms(&start);
    bdd.gc();
    peak_live = peak_live.max(bdd.live_nodes());

    Measurement {
        peak_live,
        millis,
        percent: analysis.percent(),
    }
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_simplify.json").to_owned()
    });
    let mut rows = Vec::new();
    for w in table2_workloads() {
        let off = measure(&w, SimplifyConfig::Off);
        let restrict = measure(&w, SimplifyConfig::Restrict);
        let constrain = measure(&w, SimplifyConfig::Constrain);
        for (mode, m) in [("restrict", &restrict), ("constrain", &constrain)] {
            assert_eq!(
                off.percent.to_bits(),
                m.percent.to_bits(),
                "{}/{}: coverage must be bit-identical across simplify modes \
                 (off {} vs {mode} {})",
                w.circuit,
                w.signal,
                off.percent,
                m.percent
            );
        }
        rows.push(Row {
            circuit: w.circuit.to_owned(),
            signal: w.signal.to_owned(),
            off,
            restrict,
            constrain,
        });
    }

    // Acceptance gate: on the priority-buffer circuit (where only ~7% of
    // the state space is reachable, so the don't-care region has real
    // mass), restriction must strictly beat the unsimplified run on peak
    // live nodes.
    let mut gated = 0usize;
    for r in rows
        .iter()
        .filter(|r| r.circuit.contains("priority buffer"))
    {
        assert!(
            r.restrict.peak_live < r.off.peak_live,
            "{}/{}: restrict peak ({}) must stay below the \
             unsimplified peak ({})",
            r.circuit,
            r.signal,
            r.restrict.peak_live,
            r.off.peak_live
        );
        gated += 1;
    }
    assert!(
        gated > 0,
        "no priority-buffer rows found — the acceptance gate would pass vacuously \
         (did the workload's circuit label change?)"
    );

    let mut json = String::from("{\n  \"description\": \"Peak live BDD nodes through reachability, care installation, a care-installed forward re-sweep and an AG-shaped backward sweep with iterate simplification, GC after every fixpoint step (true working-set high-water marks, not cumulative allocation), plus wall time of all that and the full coverage analysis, for --simplify off vs restrict vs constrain on the partitioned image engine; coverage percentages are asserted bit-identical across all three modes.\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"circuit\": {:?}, \"signal\": {:?}, \"off_peak_live\": {}, \"restrict_peak_live\": {}, \"constrain_peak_live\": {}, \"restrict_peak_reduction\": {:.4}, \"off_ms\": {:.2}, \"restrict_ms\": {:.2}, \"constrain_ms\": {:.2}, \"coverage_percent\": {:.4}}}",
            r.circuit,
            r.signal,
            r.off.peak_live,
            r.restrict.peak_live,
            r.constrain.peak_live,
            r.reduction(),
            r.off.millis,
            r.restrict.millis,
            r.constrain.millis,
            r.off.percent
        );
        json.push_str(if i + 1 == rows.len() { "\n" } else { ",\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write report");

    println!(
        "{:<34} {:<8} {:>9} {:>9} {:>10} {:>7}",
        "circuit", "signal", "off peak", "restrict", "constrain", "gain"
    );
    for r in &rows {
        println!(
            "{:<34} {:<8} {:>9} {:>9} {:>10} {:>6.1}%",
            r.circuit,
            r.signal,
            r.off.peak_live,
            r.restrict.peak_live,
            r.constrain.peak_live,
            100.0 * r.reduction()
        );
    }
    println!("wrote {out_path}");
}
