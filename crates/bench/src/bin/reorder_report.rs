//! Measures what dynamic variable reordering buys on the Table-2
//! circuits: live BDD node counts with the fixed seed order versus after
//! sifting, with the coverage results cross-checked bit for bit.
//!
//! Writes `BENCH_reorder.json` at the workspace root (or the path given
//! as the first argument).

use std::fmt::Write as _;

use covest_bdd::{BddManager, ReorderConfig, ReorderMode};
use covest_bench::{table2_workloads, Workload};
use covest_core::CoverageEstimator;
use covest_fsm::{ImageConfig, SimplifyConfig};

struct Row {
    circuit: String,
    signal: String,
    fixed_live: usize,
    sifted_live: usize,
    swaps: usize,
    sifted_percent: f64,
}

impl Row {
    fn reduction(&self) -> f64 {
        if self.fixed_live == 0 {
            0.0
        } else {
            1.0 - self.sifted_live as f64 / self.fixed_live as f64
        }
    }
}

/// Runs one workload and returns (live node count of the final working
/// set, coverage percent, sift stats if sifting was on).
fn measure(w: &Workload, mode: ReorderMode) -> (usize, f64, usize) {
    let bdd = BddManager::new();
    bdd.set_reorder_config(ReorderConfig {
        mode,
        ..Default::default()
    });
    let model = (w.build)(&bdd);
    let mut fsm = model.fsm;
    // This report measures reordering in isolation: pin don't-care
    // simplification off so the default mode's care-simplified cluster
    // copies don't leak into the live-node counts (simplification has
    // its own report, `simplify_report`).
    fsm.set_image_config(ImageConfig {
        simplify: SimplifyConfig::Off,
        ..fsm.image_config()
    });
    let mut swaps = 0;
    if mode != ReorderMode::Off {
        swaps += bdd.reduce_heap().swaps;
    }
    let estimator = CoverageEstimator::new(&fsm);
    let analysis = estimator
        .analyze(w.signal, &w.properties, &w.options)
        .expect("workload analyzes");
    if mode != ReorderMode::Off {
        // Final sift so the measured size reflects the reordered heap.
        swaps += bdd.reduce_heap().swaps;
    }
    // Live nodes of the final working set: after a rootless collection,
    // exactly the machine and the analysis handles remain.
    bdd.gc();
    let live = bdd.live_nodes() - 2;
    (live, analysis.percent(), swaps)
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_reorder.json").to_owned()
    });
    let mut rows = Vec::new();
    for w in table2_workloads() {
        let (fixed_live, fixed_percent, _) = measure(&w, ReorderMode::Off);
        let (sifted_live, sifted_percent, swaps) = measure(&w, ReorderMode::Sift);
        assert_eq!(
            fixed_percent.to_bits(),
            sifted_percent.to_bits(),
            "{}/{}: coverage must be bit-identical under reordering",
            w.circuit,
            w.signal
        );
        rows.push(Row {
            circuit: w.circuit.to_owned(),
            signal: w.signal.to_owned(),
            fixed_live,
            sifted_live,
            swaps,
            sifted_percent,
        });
    }

    let mut json = String::from("{\n  \"description\": \"Live BDD nodes of the final working set (machine + analysis handles, measured after a rootless gc) with the fixed seed order vs after sifting; coverage percentages are asserted bit-identical.\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"circuit\": {:?}, \"signal\": {:?}, \"fixed_live_nodes\": {}, \"sifted_live_nodes\": {}, \"reduction\": {:.4}, \"swaps\": {}, \"coverage_percent\": {:.4}}}",
            r.circuit,
            r.signal,
            r.fixed_live,
            r.sifted_live,
            r.reduction(),
            r.swaps,
            r.sifted_percent
        );
        json.push_str(if i + 1 == rows.len() { "\n" } else { ",\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write report");

    println!(
        "{:<34} {:<8} {:>9} {:>9} {:>7}",
        "circuit", "signal", "fixed", "sifted", "gain"
    );
    for r in &rows {
        println!(
            "{:<34} {:<8} {:>9} {:>9} {:>6.1}%",
            r.circuit,
            r.signal,
            r.fixed_live,
            r.sifted_live,
            100.0 * r.reduction()
        );
    }
    println!("wrote {out_path}");
}
