//! Deterministic core-engine microbench workloads, shared by the
//! `core_report` acceptance bin and the `core` criterion bench.
//!
//! Each workload is generated once as a seeded *program* (a flat list of
//! gate/quantifier operations) and then interpreted on both engines —
//! the current packed-arena core behind [`BddManager`] and the
//! [`crate::oldcore`] HashMap replica of the pre-rewrite engine — so the
//! two sides do byte-for-byte the same logical work. Every interpreter
//! returns an evaluation checksum (64 seeded assignments per probed
//! function, bit-packed and folded), and the report asserts old and new
//! checksums agree before it prints a single number: a faster engine
//! that computes something else is a failure, not a speedup.

use covest_bdd::{BddManager, Func, VarId};

use crate::oldcore::{ORef, OldEngine};

/// Xorshift64* — tiny, deterministic, dependency-free.
pub struct Xorshift(u64);

impl Xorshift {
    pub fn new(seed: u64) -> Self {
        Xorshift(seed.max(1))
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// One gate of a netlist program; operand indices are taken modulo the
/// current pool length at interpretation time.
#[derive(Debug, Clone, Copy)]
pub enum Gate {
    Ite(usize, usize, usize),
    And(usize, usize),
    Or(usize, usize),
    Xor(usize, usize),
    Not(usize),
}

/// A seeded netlist over `nvars` variables: the operand pool starts with
/// the `2 * nvars` literals, and every gate appends its result.
#[derive(Debug, Clone)]
pub struct Netlist {
    pub nvars: usize,
    pub gates: Vec<Gate>,
    /// 64 assignment vectors (bit `v` = value of variable `v`) probed to
    /// build the checksum.
    pub probes: Vec<u64>,
}

/// Generates a layered random netlist: `layers * width` gates, each
/// drawing operands from everything built so far.
pub fn netlist(seed: u64, nvars: usize, layers: usize, width: usize) -> Netlist {
    let mut rng = Xorshift::new(seed);
    let mut gates = Vec::with_capacity(layers * width);
    let mut pool = 2 * nvars;
    for _ in 0..layers {
        for _ in 0..width {
            let a = rng.below(pool);
            let b = rng.below(pool);
            let c = rng.below(pool);
            gates.push(match rng.below(5) {
                0 => Gate::Ite(a, b, c),
                1 => Gate::And(a, b),
                2 => Gate::Or(a, b),
                3 => Gate::Xor(a, b),
                _ => Gate::Not(a),
            });
            pool += 1;
        }
    }
    let probes = (0..64).map(|_| rng.next_u64()).collect();
    Netlist {
        nvars,
        gates,
        probes,
    }
}

/// Folds one function's 64 probe evaluations into the running checksum.
fn fold(checksum: u64, signature: u64) -> u64 {
    (checksum ^ signature).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

// ---- the new core (covest-bdd, packed arena) --------------------------

fn literal_pool(mgr: &BddManager, vars: &[VarId]) -> Vec<Func> {
    let mut pool: Vec<Func> = vars.iter().map(|&v| mgr.var(v)).collect();
    pool.extend(vars.iter().map(|&v| mgr.var(v).not()));
    pool
}

fn signature_new(f: &Func, probes: &[u64]) -> u64 {
    let mut sig = 0u64;
    for (j, &bits) in probes.iter().enumerate() {
        if f.eval(&|v: VarId| bits >> v.index() & 1 == 1) {
            sig |= 1 << j;
        }
    }
    sig
}

/// How many of the newest pool entries the checksum probes. Bounded so
/// the (engine-independent) evaluation cost stays a small fraction of
/// the timed work while still witnessing the whole dependency cone of
/// the final layers.
pub const PROBED_TAIL: usize = 48;

/// Interprets the netlist on a fresh packed-arena manager; returns the
/// checksum over the newest [`PROBED_TAIL`] pool entries.
pub fn run_netlist_new(prog: &Netlist) -> u64 {
    let mgr = BddManager::new();
    let vars = mgr.new_vars(prog.nvars);
    let mut pool = literal_pool(&mgr, &vars);
    for g in &prog.gates {
        let r = apply_new(&pool, *g);
        pool.push(r);
    }
    let mut checksum = 0u64;
    for f in pool.iter().rev().take(PROBED_TAIL) {
        checksum = fold(checksum, signature_new(f, &prog.probes));
    }
    checksum
}

fn apply_new(pool: &[Func], g: Gate) -> Func {
    let at = |i: usize| &pool[i % pool.len()];
    match g {
        Gate::Ite(a, b, c) => at(a).ite(at(b), at(c)),
        Gate::And(a, b) => at(a).and(at(b)),
        Gate::Or(a, b) => at(a).or(at(b)),
        Gate::Xor(a, b) => at(a).xor(at(b)),
        Gate::Not(a) => at(a).not(),
    }
}

/// Interprets the netlist, then runs `pairs` fused relational products
/// `∃ first-half-vars. (f ∧ g)` over seeded pool picks.
pub fn run_and_exists_new(prog: &Netlist, pairs: usize, seed: u64) -> u64 {
    let mgr = BddManager::new();
    let vars = mgr.new_vars(prog.nvars);
    let mut pool = literal_pool(&mgr, &vars);
    for g in &prog.gates {
        let r = apply_new(&pool, *g);
        pool.push(r);
    }
    let quantified = &vars[..prog.nvars / 2];
    let mut rng = Xorshift::new(seed);
    let mut checksum = 0u64;
    for _ in 0..pairs {
        let f = &pool[rng.below(pool.len())];
        let g = &pool[rng.below(pool.len())];
        let r = f.and_exists(g, quantified);
        checksum = fold(checksum, signature_new(&r, &prog.probes));
    }
    checksum
}

/// Interprets the netlist, then applies `rounds` reverse/identity order
/// flips via `set_order`. After every flip the live-node count is folded
/// into the checksum (a structural witness — a wrong swap changes node
/// counts); a full evaluation checksum over the newest [`PROBED_TAIL`]
/// pool entries seals the run semantically. Evaluation is kept out of
/// the per-flip loop because its cost is engine-independent work that
/// would otherwise swamp the `set_order` time being measured.
pub fn run_reorder_new(prog: &Netlist, rounds: usize) -> u64 {
    let mgr = BddManager::new();
    let vars = mgr.new_vars(prog.nvars);
    let mut pool = literal_pool(&mgr, &vars);
    for g in &prog.gates {
        let r = apply_new(&pool, *g);
        pool.push(r);
    }
    let reversed: Vec<VarId> = vars.iter().rev().copied().collect();
    let mut checksum = 0u64;
    for _ in 0..rounds {
        for order in [&reversed, &vars] {
            mgr.set_order(order);
            checksum = fold(checksum, mgr.live_nodes() as u64);
        }
    }
    for f in pool.iter().rev().take(PROBED_TAIL) {
        checksum = fold(checksum, signature_new(f, &prog.probes));
    }
    checksum
}

/// Runs the netlist and reports the new core's heap footprint (packed
/// arena + unique tables + compute caches) when the build is done.
pub fn netlist_footprint_new(prog: &Netlist) -> usize {
    let mgr = BddManager::new();
    let vars = mgr.new_vars(prog.nvars);
    let mut pool = literal_pool(&mgr, &vars);
    for g in &prog.gates {
        let r = apply_new(&pool, *g);
        pool.push(r);
    }
    mgr.arena_bytes()
}

// ---- the old core (HashMap replica) -----------------------------------

fn old_literal_pool(e: &mut OldEngine, vars: &[u32]) -> Vec<ORef> {
    let mut pool: Vec<ORef> = vars.iter().map(|&v| e.var(v)).collect();
    pool.extend(vars.iter().map(|&v| e.nvar(v)).collect::<Vec<_>>());
    pool
}

fn signature_old(e: &OldEngine, f: ORef, probes: &[u64]) -> u64 {
    let mut sig = 0u64;
    for (j, &bits) in probes.iter().enumerate() {
        if e.eval(f, bits) {
            sig |= 1 << j;
        }
    }
    sig
}

/// Old-engine interpreter for [`run_netlist_new`]'s program.
pub fn run_netlist_old(prog: &Netlist) -> u64 {
    let mut e = OldEngine::new();
    let vars = e.new_vars(prog.nvars);
    let mut pool = old_literal_pool(&mut e, &vars);
    for g in &prog.gates {
        let r = apply_old(&mut e, &pool, *g);
        pool.push(r);
    }
    let mut checksum = 0u64;
    for &f in pool.iter().rev().take(PROBED_TAIL) {
        checksum = fold(checksum, signature_old(&e, f, &prog.probes));
    }
    checksum
}

fn apply_old(e: &mut OldEngine, pool: &[ORef], g: Gate) -> ORef {
    let at = |i: usize| pool[i % pool.len()];
    match g {
        Gate::Ite(a, b, c) => e.ite(at(a), at(b), at(c)),
        Gate::And(a, b) => e.and(at(a), at(b)),
        Gate::Or(a, b) => e.or(at(a), at(b)),
        Gate::Xor(a, b) => e.xor(at(a), at(b)),
        Gate::Not(a) => e.not(at(a)),
    }
}

/// Old-engine interpreter for [`run_and_exists_new`]'s program.
pub fn run_and_exists_old(prog: &Netlist, pairs: usize, seed: u64) -> u64 {
    let mut e = OldEngine::new();
    let vars = e.new_vars(prog.nvars);
    let mut pool = old_literal_pool(&mut e, &vars);
    for g in &prog.gates {
        let r = apply_old(&mut e, &pool, *g);
        pool.push(r);
    }
    let quantified = &vars[..prog.nvars / 2];
    let mut rng = Xorshift::new(seed);
    let mut checksum = 0u64;
    for _ in 0..pairs {
        let f = pool[rng.below(pool.len())];
        let g = pool[rng.below(pool.len())];
        let r = e.and_exists(f, g, quantified);
        checksum = fold(checksum, signature_old(&e, r, &prog.probes));
    }
    checksum
}

/// Old-engine interpreter for [`run_reorder_new`]'s program.
pub fn run_reorder_old(prog: &Netlist, rounds: usize) -> u64 {
    let mut e = OldEngine::new();
    let vars = e.new_vars(prog.nvars);
    let mut pool = old_literal_pool(&mut e, &vars);
    for g in &prog.gates {
        let r = apply_old(&mut e, &pool, *g);
        pool.push(r);
    }
    let reversed: Vec<u32> = vars.iter().rev().copied().collect();
    let mut checksum = 0u64;
    for _ in 0..rounds {
        for order in [&reversed, &vars] {
            e.set_order(order);
            checksum = fold(checksum, e.live_nodes() as u64);
        }
    }
    for &f in pool.iter().rev().take(PROBED_TAIL) {
        checksum = fold(checksum, signature_old(&e, f, &prog.probes));
    }
    checksum
}

/// Old-engine counterpart of [`netlist_footprint_new`].
pub fn netlist_footprint_old(prog: &Netlist) -> usize {
    let mut e = OldEngine::new();
    let vars = e.new_vars(prog.nvars);
    let mut pool = old_literal_pool(&mut e, &vars);
    for g in &prog.gates {
        let r = apply_old(&mut e, &pool, *g);
        pool.push(r);
    }
    e.arena_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn netlist_checksums_agree_across_engines() {
        let prog = netlist(0xC0FFEE, 12, 4, 12);
        assert_eq!(run_netlist_new(&prog), run_netlist_old(&prog));
    }

    #[test]
    fn and_exists_checksums_agree_across_engines() {
        let prog = netlist(0xBEEF, 12, 3, 10);
        assert_eq!(
            run_and_exists_new(&prog, 16, 7),
            run_and_exists_old(&prog, 16, 7)
        );
    }

    #[test]
    fn reorder_checksums_agree_across_engines() {
        let prog = netlist(0xFACADE, 10, 3, 8);
        assert_eq!(run_reorder_new(&prog, 2), run_reorder_old(&prog, 2));
    }

    #[test]
    fn programs_are_deterministic() {
        let a = netlist(42, 8, 2, 4);
        let b = netlist(42, 8, 2, 4);
        assert_eq!(a.probes, b.probes);
        assert_eq!(run_netlist_new(&a), run_netlist_new(&b));
    }
}
