//! A compact replica of the pre-rewrite BDD core, kept as the baseline
//! for `core_report`'s old-vs-new comparison.
//!
//! This is the engine covest-bdd shipped before the packed-arena
//! rewrite, reduced to the operations the microbenchmarks exercise:
//! `Vec<Node>` with boxed-key hashing everywhere — per-level
//! `HashMap<(lo, hi), Ref>` unique tables, a `HashMap` ITE memo, and
//! per-call `HashMap` memos for quantification and the fused relational
//! product — plus the refcount-based adjacent-level swap machinery
//! behind `set_order`. Algorithms, normalizations and terminal cases are
//! copied from the old engine verbatim so the comparison isolates the
//! data-structure change; only the removed features (GC, groups,
//! external roots, stats) are stripped.
//!
//! Results are cross-checked against the new core by evaluation
//! checksums before any timing is reported, so a speedup can never hide
//! a semantic drift.

use std::collections::HashMap;

/// Node handle; slots 0/1 are the terminals, like the real engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ORef(pub u32);

impl ORef {
    pub const FALSE: ORef = ORef(0);
    pub const TRUE: ORef = ORef(1);

    fn is_const(self) -> bool {
        self.0 < 2
    }

    fn is_true(self) -> bool {
        self.0 == 1
    }

    fn is_false(self) -> bool {
        self.0 == 0
    }

    fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone, Copy)]
struct ONode {
    var: u32,
    lo: ORef,
    hi: ORef,
}

const TERMINAL_VAR: u32 = u32::MAX;

/// The pre-rewrite engine: hash maps all the way down.
pub struct OldEngine {
    nodes: Vec<ONode>,
    unique: Vec<HashMap<(ORef, ORef), ORef>>,
    ite_cache: HashMap<(ORef, ORef, ORef), ORef>,
    quant_memo: HashMap<ORef, ORef>,
    pair_memo: HashMap<(ORef, ORef), ORef>,
    var2level: Vec<u32>,
    level2var: Vec<u32>,
    free: Vec<u32>,
}

impl Default for OldEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl OldEngine {
    pub fn new() -> Self {
        let terminal = ONode {
            var: TERMINAL_VAR,
            lo: ORef::FALSE,
            hi: ORef::TRUE,
        };
        OldEngine {
            nodes: vec![terminal, terminal],
            unique: Vec::new(),
            ite_cache: HashMap::new(),
            quant_memo: HashMap::new(),
            pair_memo: HashMap::new(),
            var2level: Vec::new(),
            level2var: Vec::new(),
            free: Vec::new(),
        }
    }

    pub fn new_vars(&mut self, n: usize) -> Vec<u32> {
        (0..n)
            .map(|_| {
                let id = self.var2level.len() as u32;
                self.var2level.push(id);
                self.level2var.push(id);
                self.unique.push(HashMap::new());
                id
            })
            .collect()
    }

    pub fn num_vars(&self) -> usize {
        self.var2level.len()
    }

    pub fn live_nodes(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    /// Heap footprint proxy, mirroring the new core's `arena_bytes`:
    /// node storage plus the hash tables' bucket arrays (estimated at
    /// `HashMap` capacity times entry size).
    pub fn arena_bytes(&self) -> usize {
        let node = std::mem::size_of::<ONode>();
        let uniq_entry = std::mem::size_of::<((ORef, ORef), ORef)>();
        let ite_entry = std::mem::size_of::<((ORef, ORef, ORef), ORef)>();
        self.nodes.capacity() * node
            + self
                .unique
                .iter()
                .map(|t| t.capacity() * uniq_entry)
                .sum::<usize>()
            + self.ite_cache.capacity() * ite_entry
    }

    #[inline]
    fn level(&self, r: ORef) -> u32 {
        if r.is_const() {
            u32::MAX
        } else {
            self.var2level[self.nodes[r.index()].var as usize]
        }
    }

    fn mk(&mut self, var: u32, lo: ORef, hi: ORef) -> ORef {
        if lo == hi {
            return lo;
        }
        if let Some(&r) = self.unique[var as usize].get(&(lo, hi)) {
            return r;
        }
        let node = ONode { var, lo, hi };
        let r = if let Some(slot) = self.free.pop() {
            self.nodes[slot as usize] = node;
            ORef(slot)
        } else {
            let slot = self.nodes.len() as u32;
            self.nodes.push(node);
            ORef(slot)
        };
        self.unique[var as usize].insert((lo, hi), r);
        r
    }

    pub fn var(&mut self, var: u32) -> ORef {
        self.mk(var, ORef::FALSE, ORef::TRUE)
    }

    pub fn nvar(&mut self, var: u32) -> ORef {
        self.mk(var, ORef::TRUE, ORef::FALSE)
    }

    #[inline]
    fn cofactors_at(&self, r: ORef, level: u32) -> (ORef, ORef) {
        if self.level(r) == level {
            let n = self.nodes[r.index()];
            (n.lo, n.hi)
        } else {
            (r, r)
        }
    }

    pub fn ite(&mut self, f: ORef, g: ORef, h: ORef) -> ORef {
        if f.is_true() {
            return g;
        }
        if f.is_false() {
            return h;
        }
        if g == h {
            return g;
        }
        if g.is_true() && h.is_false() {
            return f;
        }
        if let Some(&r) = self.ite_cache.get(&(f, g, h)) {
            return r;
        }
        let top = self.level(f).min(self.level(g)).min(self.level(h));
        let var = self.level2var[top as usize];
        let (f0, f1) = self.cofactors_at(f, top);
        let (g0, g1) = self.cofactors_at(g, top);
        let (h0, h1) = self.cofactors_at(h, top);
        let lo = self.ite(f0, g0, h0);
        let hi = self.ite(f1, g1, h1);
        let r = self.mk(var, lo, hi);
        self.ite_cache.insert((f, g, h), r);
        r
    }

    pub fn not(&mut self, f: ORef) -> ORef {
        self.ite(f, ORef::FALSE, ORef::TRUE)
    }

    pub fn and(&mut self, f: ORef, g: ORef) -> ORef {
        self.ite(f, g, ORef::FALSE)
    }

    pub fn or(&mut self, f: ORef, g: ORef) -> ORef {
        self.ite(f, ORef::TRUE, g)
    }

    pub fn xor(&mut self, f: ORef, g: ORef) -> ORef {
        let ng = self.not(g);
        self.ite(f, ng, g)
    }

    pub fn exists(&mut self, f: ORef, vars: &[u32]) -> ORef {
        let mut mask = vec![false; self.num_vars()];
        for &v in vars {
            mask[v as usize] = true;
        }
        let mut memo = std::mem::take(&mut self.quant_memo);
        memo.clear();
        let r = self.quant_rec(f, &mask, &mut memo);
        self.quant_memo = memo;
        r
    }

    fn quant_rec(&mut self, f: ORef, mask: &[bool], memo: &mut HashMap<ORef, ORef>) -> ORef {
        if f.is_const() {
            return f;
        }
        if let Some(&r) = memo.get(&f) {
            return r;
        }
        let n = self.nodes[f.index()];
        let lo = self.quant_rec(n.lo, mask, memo);
        let hi = self.quant_rec(n.hi, mask, memo);
        let r = if mask[n.var as usize] {
            self.or(lo, hi)
        } else {
            self.mk(n.var, lo, hi)
        };
        memo.insert(f, r);
        r
    }

    pub fn and_exists(&mut self, f: ORef, g: ORef, vars: &[u32]) -> ORef {
        let mut mask = vec![false; self.num_vars()];
        for &v in vars {
            mask[v as usize] = true;
        }
        let mut memo = std::mem::take(&mut self.pair_memo);
        memo.clear();
        let r = self.and_exists_rec(f, g, &mask, &mut memo);
        self.pair_memo = memo;
        r
    }

    fn and_exists_rec(
        &mut self,
        f: ORef,
        g: ORef,
        mask: &[bool],
        memo: &mut HashMap<(ORef, ORef), ORef>,
    ) -> ORef {
        if f.is_false() || g.is_false() {
            return ORef::FALSE;
        }
        if f.is_true() && g.is_true() {
            return ORef::TRUE;
        }
        let (f, g) = if f <= g { (f, g) } else { (g, f) };
        if let Some(&r) = memo.get(&(f, g)) {
            return r;
        }
        let top = self.level(f).min(self.level(g));
        let var = self.level2var[top as usize];
        let (f0, f1) = self.cofactors_at(f, top);
        let (g0, g1) = self.cofactors_at(g, top);
        let r = if mask[var as usize] {
            let lo = self.and_exists_rec(f0, g0, mask, memo);
            if lo.is_true() {
                memo.insert((f, g), ORef::TRUE);
                return ORef::TRUE;
            }
            let hi = self.and_exists_rec(f1, g1, mask, memo);
            self.or(lo, hi)
        } else {
            let lo = self.and_exists_rec(f0, g0, mask, memo);
            let hi = self.and_exists_rec(f1, g1, mask, memo);
            self.mk(var, lo, hi)
        };
        memo.insert((f, g), r);
        r
    }

    pub fn eval(&self, f: ORef, assignment: u64) -> bool {
        let mut cur = f;
        while !cur.is_const() {
            let n = self.nodes[cur.index()];
            cur = if assignment >> n.var & 1 == 1 {
                n.hi
            } else {
                n.lo
            };
        }
        cur.is_true()
    }

    // ---- refcount-based reordering (pin-all mode) ---------------------

    /// Applies an explicit variable order by adjacent-level swaps, exactly
    /// like the old engine's public `set_order` path: every allocated
    /// node is pinned, so all handles stay valid.
    pub fn set_order(&mut self, order: &[u32]) {
        assert_eq!(order.len(), self.num_vars());
        self.ite_cache.clear();
        let mut rc = vec![0u32; self.nodes.len()];
        let free: std::collections::HashSet<u32> = self.free.iter().copied().collect();
        for slot in 2..self.nodes.len() as u32 {
            if free.contains(&slot) {
                continue;
            }
            rc[slot as usize] += 1; // pin-all
            let n = self.nodes[slot as usize];
            for child in [n.lo, n.hi] {
                if !child.is_const() {
                    rc[child.index()] += 1;
                }
            }
        }
        for (target, &var) in order.iter().enumerate() {
            let mut lvl = self.var2level[var as usize] as usize;
            while lvl > target {
                self.swap_levels(lvl as u32 - 1, &mut rc);
                lvl -= 1;
            }
        }
    }

    fn dec_ref(&mut self, r: ORef, rc: &mut Vec<u32>) {
        if r.is_const() {
            return;
        }
        rc[r.index()] -= 1;
        if rc[r.index()] == 0 {
            let n = self.nodes[r.index()];
            self.unique[n.var as usize].remove(&(n.lo, n.hi));
            self.free.push(r.0);
            self.dec_ref(n.lo, rc);
            self.dec_ref(n.hi, rc);
        }
    }

    fn reorder_mk(&mut self, var: u32, lo: ORef, hi: ORef, rc: &mut Vec<u32>) -> ORef {
        if lo == hi {
            if !lo.is_const() {
                rc[lo.index()] += 1;
            }
            return lo;
        }
        if let Some(&r) = self.unique[var as usize].get(&(lo, hi)) {
            rc[r.index()] += 1;
            return r;
        }
        let node = ONode { var, lo, hi };
        let r = if let Some(slot) = self.free.pop() {
            self.nodes[slot as usize] = node;
            ORef(slot)
        } else {
            let slot = self.nodes.len() as u32;
            self.nodes.push(node);
            rc.push(0);
            ORef(slot)
        };
        rc[r.index()] = 1;
        if !lo.is_const() {
            rc[lo.index()] += 1;
        }
        if !hi.is_const() {
            rc[hi.index()] += 1;
        }
        self.unique[var as usize].insert((lo, hi), r);
        r
    }

    fn swap_levels(&mut self, level: u32, rc: &mut Vec<u32>) {
        let xv = self.level2var[level as usize];
        let yv = self.level2var[level as usize + 1];
        let moved: Vec<ORef> = self.unique[xv as usize]
            .values()
            .copied()
            .filter(|&r| {
                let n = self.nodes[r.index()];
                self.nodes[n.lo.index()].var == yv || self.nodes[n.hi.index()].var == yv
            })
            .collect();
        for &r in &moved {
            let n = self.nodes[r.index()];
            self.unique[xv as usize].remove(&(n.lo, n.hi));
        }
        self.level2var.swap(level as usize, level as usize + 1);
        self.var2level[xv as usize] = level + 1;
        self.var2level[yv as usize] = level;
        for &r in &moved {
            let n = self.nodes[r.index()];
            let (f00, f01) = if self.nodes[n.lo.index()].var == yv {
                let c = self.nodes[n.lo.index()];
                (c.lo, c.hi)
            } else {
                (n.lo, n.lo)
            };
            let (f10, f11) = if self.nodes[n.hi.index()].var == yv {
                let c = self.nodes[n.hi.index()];
                (c.lo, c.hi)
            } else {
                (n.hi, n.hi)
            };
            let new_lo = self.reorder_mk(xv, f00, f10, rc);
            let new_hi = self.reorder_mk(xv, f01, f11, rc);
            self.dec_ref(n.lo, rc);
            self.dec_ref(n.hi, rc);
            self.nodes[r.index()] = ONode {
                var: yv,
                lo: new_lo,
                hi: new_hi,
            };
            self.unique[yv as usize].insert((new_lo, new_hi), r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ite_is_canonical_and_correct() {
        let mut e = OldEngine::new();
        let vs = e.new_vars(3);
        let a = e.var(vs[0]);
        let b = e.var(vs[1]);
        let c = e.var(vs[2]);
        let ab = e.and(a, b);
        let f = e.or(ab, c);
        let ab2 = e.and(a, b);
        let f2 = e.or(ab2, c);
        assert_eq!(f, f2);
        for bits in 0..8u64 {
            let expect = (bits & 1 == 1 && bits >> 1 & 1 == 1) || bits >> 2 & 1 == 1;
            assert_eq!(e.eval(f, bits), expect);
        }
    }

    #[test]
    fn exists_and_and_exists_agree() {
        let mut e = OldEngine::new();
        let vs = e.new_vars(4);
        let a = e.var(vs[0]);
        let b = e.var(vs[1]);
        let c = e.var(vs[2]);
        let d = e.nvar(vs[3]);
        let f = e.xor(a, b);
        let g = e.or(c, d);
        let fg = e.and(f, g);
        let direct = e.exists(fg, &[vs[0], vs[2]]);
        let fused = e.and_exists(f, g, &[vs[0], vs[2]]);
        assert_eq!(direct, fused);
    }

    #[test]
    fn set_order_preserves_denotation() {
        let mut e = OldEngine::new();
        let vs = e.new_vars(6);
        let mut f = ORef::FALSE;
        for pair in vs.chunks(2) {
            let a = e.var(pair[0]);
            let b = e.var(pair[1]);
            let ab = e.and(a, b);
            f = e.or(f, ab);
        }
        let before: Vec<bool> = (0..64u64).map(|bits| e.eval(f, bits)).collect();
        let reversed: Vec<u32> = vs.iter().rev().copied().collect();
        e.set_order(&reversed);
        let after: Vec<bool> = (0..64u64).map(|bits| e.eval(f, bits)).collect();
        assert_eq!(before, after);
        e.set_order(&vs);
        let back: Vec<bool> = (0..64u64).map(|bits| e.eval(f, bits)).collect();
        assert_eq!(before, back);
    }
}
