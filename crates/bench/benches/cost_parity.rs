//! The paper's Section 3 claim: coverage estimation "is of the same
//! order of complexity as a model checking algorithm" — in practice it
//! can be slightly more expensive because it needs the reachable-state
//! fixpoint. This bench times the verification phase and the coverage
//! phase separately for each Table-2 workload so the ratio can be read
//! off directly. Run `cargo bench -p covest-bench --bench cost_parity`.

use criterion::{criterion_group, criterion_main, Criterion};

use covest_bdd::BddManager;
use covest_bench::table2_workloads;
use covest_core::CoveredSets;
use covest_mc::ModelChecker;

fn bench_cost_parity(c: &mut Criterion) {
    let mut group = c.benchmark_group("cost_parity");
    for w in table2_workloads() {
        let verify_label = format!("verify/{}/{}", w.circuit, w.signal);
        group.bench_function(&verify_label, |b| {
            b.iter(|| {
                let bdd = BddManager::new();
                let model = (w.build)(&bdd);
                let mut mc = ModelChecker::new(&model.fsm);
                for fair in &w.options.fairness {
                    mc.add_fairness(fair).expect("lowers");
                }
                let mut all = true;
                for p in &w.properties {
                    all &= mc.holds(&p.clone().into()).expect("checks");
                }
                std::hint::black_box(all)
            })
        });
        let coverage_label = format!("coverage/{}/{}", w.circuit, w.signal);
        group.bench_function(&coverage_label, |b| {
            b.iter(|| {
                let bdd = BddManager::new();
                let model = (w.build)(&bdd);
                let mut mc = ModelChecker::new(&model.fsm);
                for fair in &w.options.fairness {
                    mc.add_fairness(fair).expect("lowers");
                }
                let mut cs = CoveredSets::with_checker(mc, w.signal).expect("signal exists");
                // Coverage phase: covered sets + the reachability fixpoint
                // the paper calls out as the extra cost.
                let mut covered = bdd.constant(false);
                for p in &w.properties {
                    let c = cs.covered_from_init(p).expect("covers");
                    covered = covered.or(&c);
                }
                let reach = model.fsm.reachable();
                let space = reach;
                std::hint::black_box((covered, space))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_cost_parity
}
criterion_main!(benches);
