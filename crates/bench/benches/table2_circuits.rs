//! Criterion bench regenerating Table 2: one benchmark per observed
//! signal, timing the full verify-plus-estimate analysis that produces
//! the row. Run `cargo bench -p covest-bench --bench table2_circuits`.

use criterion::{criterion_group, criterion_main, Criterion};

use covest_bench::{run_workload, table2_workloads};

fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2");
    for w in table2_workloads() {
        let label = format!("{}/{}", w.circuit, w.signal);
        group.bench_function(&label, |b| {
            b.iter(|| {
                let analysis = run_workload(&w);
                std::hint::black_box(analysis.percent())
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_table2
}
criterion_main!(benches);
