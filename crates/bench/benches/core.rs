//! Old-vs-new core engines on the seeded microbench programs behind
//! `BENCH_core.json`: the packed-arena / open-addressing /
//! direct-mapped-cache core against the `oldcore` HashMap replica of
//! the pre-rewrite engine, interpreting byte-identical gate programs.
//! Run `cargo bench -p covest-bench --bench core`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use covest_bench::corebench::{
    netlist, run_and_exists_new, run_and_exists_old, run_netlist_new, run_netlist_old,
    run_reorder_new, run_reorder_old, Netlist,
};

/// Criterion-sized siblings of the `core_report` programs — same seeds
/// and shapes, smaller layer counts so each iteration stays in the
/// millisecond range.
fn programs() -> (Netlist, Netlist, Netlist) {
    (
        netlist(0x5EED_0001, 18, 6, 30),
        netlist(0x5EED_0002, 18, 5, 20),
        netlist(0x5EED_0003, 14, 4, 12),
    )
}

fn bench_ite_netlist(c: &mut Criterion) {
    let (ite_prog, _, _) = programs();
    assert_eq!(
        run_netlist_old(&ite_prog),
        run_netlist_new(&ite_prog),
        "engines disagree on the ITE netlist — timings are meaningless"
    );
    let mut group = c.benchmark_group("core/ite-netlist");
    for (engine, run) in [
        ("old", run_netlist_old as fn(&Netlist) -> u64),
        ("new", run_netlist_new as fn(&Netlist) -> u64),
    ] {
        group.bench_with_input(
            BenchmarkId::new(engine, ite_prog.gates.len()),
            &ite_prog,
            |b, prog| b.iter(|| std::hint::black_box(run(prog))),
        );
    }
    group.finish();
}

fn bench_and_exists(c: &mut Criterion) {
    let (_, ae_prog, _) = programs();
    const PAIRS: usize = 48;
    const SEED: u64 = 0xABCD;
    assert_eq!(
        run_and_exists_old(&ae_prog, PAIRS, SEED),
        run_and_exists_new(&ae_prog, PAIRS, SEED),
        "engines disagree on and_exists — timings are meaningless"
    );
    let mut group = c.benchmark_group("core/and-exists");
    for (engine, run) in [
        ("old", run_and_exists_old as fn(&Netlist, usize, u64) -> u64),
        ("new", run_and_exists_new as fn(&Netlist, usize, u64) -> u64),
    ] {
        group.bench_with_input(BenchmarkId::new(engine, PAIRS), &ae_prog, |b, prog| {
            b.iter(|| std::hint::black_box(run(prog, PAIRS, SEED)))
        });
    }
    group.finish();
}

fn bench_reorder(c: &mut Criterion) {
    let (_, _, ro_prog) = programs();
    const ROUNDS: usize = 2;
    assert_eq!(
        run_reorder_old(&ro_prog, ROUNDS),
        run_reorder_new(&ro_prog, ROUNDS),
        "engines disagree after reordering — timings are meaningless"
    );
    let mut group = c.benchmark_group("core/reorder");
    for (engine, run) in [
        ("old", run_reorder_old as fn(&Netlist, usize) -> u64),
        ("new", run_reorder_new as fn(&Netlist, usize) -> u64),
    ] {
        group.bench_with_input(BenchmarkId::new(engine, ROUNDS), &ro_prog, |b, prog| {
            b.iter(|| std::hint::black_box(run(prog, ROUNDS)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ite_netlist, bench_and_exists, bench_reorder);
criterion_main!(benches);
