//! Fixed variable order versus dynamic sifting on the Table-2 circuits:
//! wall-clock for the full verify-plus-coverage workload, and the sift
//! itself in isolation. The companion binary `reorder_report` records the
//! node-count deltas in `BENCH_reorder.json`.

use covest_bdd::{BddManager, ReorderConfig, ReorderMode};
use covest_bench::table2_workloads;
use covest_core::CoverageEstimator;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// The two circuits the reordering bench contrasts (the buffer has real
/// slack for sifting; the queue's seed order is already close to good).
const CIRCUITS: &[&str] = &["hi_cnt", "wrap"];

fn run_workload_with_mode(signal: &str, mode: ReorderMode) {
    let w = table2_workloads()
        .into_iter()
        .find(|w| w.signal == signal)
        .expect("workload exists");
    let bdd = BddManager::new();
    bdd.set_reorder_config(ReorderConfig {
        mode,
        ..Default::default()
    });
    let model = (w.build)(&bdd);
    if mode != ReorderMode::Off {
        bdd.reduce_heap();
    }
    let estimator = CoverageEstimator::new(&model.fsm);
    let analysis = estimator
        .analyze(w.signal, &w.properties, &w.options)
        .expect("workload analyzes");
    std::hint::black_box(analysis.percent());
}

fn bench_fixed_vs_sift(c: &mut Criterion) {
    let mut group = c.benchmark_group("reordering/workload");
    for &signal in CIRCUITS {
        group.bench_with_input(BenchmarkId::new("fixed", signal), &signal, |b, &signal| {
            b.iter(|| run_workload_with_mode(signal, ReorderMode::Off))
        });
        group.bench_with_input(BenchmarkId::new("sift", signal), &signal, |b, &signal| {
            b.iter(|| run_workload_with_mode(signal, ReorderMode::Sift))
        });
    }
    group.finish();
}

fn bench_sift_alone(c: &mut Criterion) {
    let mut group = c.benchmark_group("reordering/reduce_heap");
    for &signal in CIRCUITS {
        group.bench_with_input(
            BenchmarkId::from_parameter(signal),
            &signal,
            |b, &signal| {
                b.iter(|| {
                    let w = table2_workloads()
                        .into_iter()
                        .find(|w| w.signal == signal)
                        .expect("workload exists");
                    let bdd = BddManager::new();
                    // Keep the model alive: its handles are the live set
                    // sifting measures.
                    let _model = (w.build)(&bdd);
                    std::hint::black_box(bdd.reduce_heap())
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fixed_vs_sift, bench_sift_alone
}
criterion_main!(benches);
