//! Ablation for the paper's Section 3 remark: "results for sub-formulas
//! computed during verification can be memoized and used during coverage
//! estimation for a more efficient implementation."
//!
//! Compares running coverage with a checker that already verified the
//! suite (warm memo table) against a cold checker.
//! Run `cargo bench -p covest-bench --bench memoization`.

use criterion::{criterion_group, criterion_main, Criterion};

use covest_bdd::BddManager;
use covest_circuits::pipeline;
use covest_core::CoveredSets;
use covest_mc::ModelChecker;

fn bench_memoization(c: &mut Criterion) {
    let mut group = c.benchmark_group("memoization");
    let suite = pipeline::out_suite_initial(4);

    group.bench_function("verify_then_cover_shared_cache", |b| {
        b.iter(|| {
            let bdd = BddManager::new();
            let model = pipeline::build(&bdd, 4).expect("compiles");
            let mut mc = ModelChecker::new(&model.fsm);
            mc.add_fairness(&pipeline::fairness()).expect("lowers");
            let mut cs = CoveredSets::with_checker(mc, "out").expect("signal");
            // Verification warms the memo table …
            for p in &suite {
                assert!(cs.verify(p).expect("checks"));
            }
            // … which coverage estimation then reuses.
            let mut acc = bdd.constant(false);
            for p in &suite {
                let cset = cs.covered_from_init(p).expect("covers");
                acc = acc.or(&cset);
            }
            std::hint::black_box(acc)
        })
    });

    group.bench_function("verify_then_cover_cold_cache", |b| {
        b.iter(|| {
            let bdd = BddManager::new();
            let model = pipeline::build(&bdd, 4).expect("compiles");
            // Verify with one checker …
            let mut mc = ModelChecker::new(&model.fsm);
            mc.add_fairness(&pipeline::fairness()).expect("lowers");
            for p in &suite {
                assert!(mc.holds(&p.clone().into()).expect("checks"));
            }
            // … then throw the memo table away and cover from scratch.
            let mut mc2 = ModelChecker::new(&model.fsm);
            mc2.add_fairness(&pipeline::fairness()).expect("lowers");
            let mut cs = CoveredSets::with_checker(mc2, "out").expect("signal");
            let mut acc = bdd.constant(false);
            for p in &suite {
                let cset = cs.covered_from_init(p).expect("covers");
                acc = acc.or(&cset);
            }
            std::hint::black_box(acc)
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_memoization
}
criterion_main!(benches);
