//! Substrate ablation: BDD-engine design choices called out in
//! DESIGN.md. The fused relational product (`and_exists`) versus the
//! two-step conjoin-then-quantify pipeline, and image computation on a
//! real transition relation.
//! Run `cargo bench -p covest-bench --bench bdd_ops`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use covest_bdd::{Bdd, Ref, VarId};
use covest_circuits::circular_queue;

/// Builds the queue model once per iteration and returns the pieces an
/// image computation needs.
fn queue_parts(depth: i64) -> (Bdd, Ref, Ref, Vec<VarId>, Vec<(VarId, VarId)>) {
    let mut bdd = Bdd::new();
    let model = circular_queue::build(&mut bdd, depth).expect("compiles");
    let trans = model.fsm.trans();
    let init = model.fsm.init();
    let mut quantified = model.fsm.current_vars();
    quantified.extend(model.fsm.input_vars());
    let renames = model.fsm.next_to_cur();
    (bdd, trans, init, quantified, renames)
}

fn bench_relational_product(c: &mut Criterion) {
    let mut group = c.benchmark_group("bdd/relational_product");
    for depth in [4i64, 16] {
        group.bench_with_input(BenchmarkId::new("fused", depth), &depth, |b, &depth| {
            b.iter(|| {
                let (mut bdd, trans, init, quantified, renames) = queue_parts(depth);
                let img = bdd.and_exists(trans, init, &quantified);
                std::hint::black_box(bdd.rename(img, &renames))
            })
        });
        group.bench_with_input(BenchmarkId::new("two_step", depth), &depth, |b, &depth| {
            b.iter(|| {
                let (mut bdd, trans, init, quantified, renames) = queue_parts(depth);
                let conj = bdd.and(trans, init);
                let img = bdd.exists(conj, &quantified);
                std::hint::black_box(bdd.rename(img, &renames))
            })
        });
    }
    group.finish();
}

fn bench_reachability(c: &mut Criterion) {
    let mut group = c.benchmark_group("bdd/reachability");
    for depth in [4i64, 16, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &depth| {
            b.iter(|| {
                let mut bdd = Bdd::new();
                let model = circular_queue::build(&mut bdd, depth).expect("compiles");
                std::hint::black_box(model.fsm.reachable(&mut bdd))
            })
        });
    }
    group.finish();
}

fn bench_sat_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("bdd/sat_count");
    group.bench_function("float_vs_exact", |b| {
        let mut bdd = Bdd::new();
        let model = circular_queue::build(&mut bdd, 16).expect("compiles");
        let reach = model.fsm.reachable(&mut bdd);
        let vars = model.fsm.current_vars();
        b.iter(|| {
            let f = bdd.sat_count_over(reach, &vars);
            let e = bdd.sat_count_exact(reach, &vars);
            std::hint::black_box((f, e))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_relational_product,
    bench_reachability,
    bench_sat_count
}
criterion_main!(benches);
