//! Substrate ablation: BDD-engine design choices called out in
//! DESIGN.md. Partitioned (clustered + early quantification) versus
//! monolithic image computation, the fused relational product
//! (`and_exists`) versus the two-step conjoin-then-quantify pipeline,
//! and full reachability under both image methods.
//! Run `cargo bench -p covest-bench --bench bdd_ops`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use covest_bdd::BddManager;
use covest_circuits::circular_queue;
use covest_fsm::{ImageConfig, ImageMethod, SymbolicFsm};

/// Builds the queue model configured for the given image method — via
/// `compile_with`, so each arm pays only its own engine construction
/// (the monolithic arm does no clustering work).
fn queue_fsm(depth: i64, method: ImageMethod) -> (BddManager, SymbolicFsm) {
    let bdd = BddManager::new();
    let model = covest_smv::compile_with(
        &bdd,
        &circular_queue::deck(depth),
        ImageConfig {
            method,
            ..Default::default()
        },
    )
    .expect("compiles");
    (bdd, model.fsm)
}

fn bench_image_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("bdd/image");
    for depth in [4i64, 16] {
        for method in [ImageMethod::Monolithic, ImageMethod::Partitioned] {
            group.bench_with_input(
                BenchmarkId::new(method.to_string(), depth),
                &depth,
                |b, &depth| {
                    b.iter(|| {
                        let (_bdd, fsm) = queue_fsm(depth, method);
                        let img = fsm.image(fsm.init());
                        std::hint::black_box(fsm.preimage(&img))
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_relational_product(c: &mut Criterion) {
    let mut group = c.benchmark_group("bdd/relational_product");
    for depth in [4i64, 16] {
        group.bench_with_input(BenchmarkId::new("fused", depth), &depth, |b, &depth| {
            b.iter(|| {
                let (_bdd, fsm) = queue_fsm(depth, ImageMethod::Monolithic);
                let trans = fsm.trans();
                let mut quantified = fsm.current_vars();
                quantified.extend(fsm.input_vars());
                let img = trans.and_exists(fsm.init(), &quantified);
                std::hint::black_box(img.rename(&fsm.next_to_cur()))
            })
        });
        group.bench_with_input(BenchmarkId::new("two_step", depth), &depth, |b, &depth| {
            b.iter(|| {
                let (_bdd, fsm) = queue_fsm(depth, ImageMethod::Monolithic);
                let trans = fsm.trans();
                let mut quantified = fsm.current_vars();
                quantified.extend(fsm.input_vars());
                let conj = trans.and(fsm.init());
                let img = conj.exists(&quantified);
                std::hint::black_box(img.rename(&fsm.next_to_cur()))
            })
        });
    }
    group.finish();
}

fn bench_reachability(c: &mut Criterion) {
    let mut group = c.benchmark_group("bdd/reachability");
    for depth in [4i64, 16, 32] {
        for method in [ImageMethod::Monolithic, ImageMethod::Partitioned] {
            group.bench_with_input(
                BenchmarkId::new(method.to_string(), depth),
                &depth,
                |b, &depth| {
                    b.iter(|| {
                        let (_bdd, fsm) = queue_fsm(depth, method);
                        std::hint::black_box(fsm.reachable())
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_sat_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("bdd/sat_count");
    group.bench_function("float_vs_exact", |b| {
        let bdd = BddManager::new();
        let model = circular_queue::build(&bdd, 16).expect("compiles");
        let reach = model.fsm.reachable();
        let vars = model.fsm.current_vars();
        b.iter(|| {
            let f = reach.sat_count_over(&vars);
            let e = reach.sat_count_exact(&vars);
            std::hint::black_box((f, e))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_image_methods,
    bench_relational_product,
    bench_reachability,
    bench_sat_count
}
criterion_main!(benches);
