//! Ablation: the paper's symbolic Table-1 algorithm versus the naive
//! application of Definition 3 (one dual-FSM model-checking run per
//! reachable state). The naive baseline grows with the number of states;
//! the symbolic algorithm does not — this is the reason the paper's
//! algorithm matters.
//! Run `cargo bench -p covest-bench --bench naive_vs_symbolic`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use covest_bdd::BddManager;
use covest_circuits::circular_queue;
use covest_core::{reference_covered_set, CoveredSets, ReferenceMode};
use covest_ctl::{parse_formula, Formula};
use covest_fsm::Stg;

/// A chain STG of `n` states (generalized Figure 2).
fn chain(n: usize) -> (Stg, Formula) {
    let mut stg = Stg::new("chain");
    stg.add_states(n);
    let path: Vec<usize> = (0..n).collect();
    stg.add_path(&path);
    stg.add_edge(n - 1, n - 1);
    stg.mark_initial(0);
    for s in 0..n - 1 {
        stg.label(s, "p1");
    }
    stg.label(n - 1, "q");
    (stg, parse_formula("A[p1 U q]").expect("subset"))
}

fn bench_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("naive_vs_symbolic/chain");
    for n in [8usize, 16, 32, 64] {
        let (stg, prop) = chain(n);
        group.bench_with_input(BenchmarkId::new("symbolic", n), &n, |b, _| {
            b.iter(|| {
                let bdd = BddManager::new();
                let fsm = stg.compile(&bdd).expect("compiles");
                let mut cs = CoveredSets::new(&fsm, "q").expect("q exists");
                std::hint::black_box(cs.covered_from_init(&prop).expect("covers"))
            })
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| {
                let bdd = BddManager::new();
                let fsm = stg.compile(&bdd).expect("compiles");
                std::hint::black_box(
                    reference_covered_set(
                        &fsm,
                        "q",
                        &prop,
                        ReferenceMode::Transformed,
                        &[],
                        1 << 20,
                    )
                    .expect("reference runs"),
                )
            })
        });
    }
    group.finish();
}

fn bench_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("naive_vs_symbolic/queue_wrap");
    group.sample_size(10);
    for depth in [2i64, 4] {
        let suite = circular_queue::wrap_suite_initial();
        group.bench_with_input(BenchmarkId::new("symbolic", depth), &depth, |b, &depth| {
            b.iter(|| {
                let bdd = BddManager::new();
                let model = circular_queue::build(&bdd, depth).expect("compiles");
                let mut cs = CoveredSets::new(&model.fsm, "wrap").expect("wrap exists");
                let mut acc = bdd.constant(false);
                for p in &suite {
                    let cset = cs.covered_from_init(p).expect("covers");
                    acc = acc.or(&cset);
                }
                std::hint::black_box(acc)
            })
        });
        group.bench_with_input(BenchmarkId::new("naive", depth), &depth, |b, &depth| {
            b.iter(|| {
                let bdd = BddManager::new();
                let model = circular_queue::build(&bdd, depth).expect("compiles");
                let mut acc = bdd.constant(false);
                for p in &suite {
                    let cset = reference_covered_set(
                        &model.fsm,
                        "wrap",
                        p,
                        ReferenceMode::Transformed,
                        &[],
                        1 << 20,
                    )
                    .expect("reference runs");
                    acc = acc.or(&cset);
                }
                std::hint::black_box(acc)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_chain, bench_queue
}
criterion_main!(benches);
