//! Parameter sweeps: how verification and coverage estimation scale with
//! circuit size (queue depth, buffer capacity, pipeline stages). The
//! paper's implicit claim — same order of growth for both phases —
//! should be visible across the sweep.
//! Run `cargo bench -p covest-bench --bench scaling`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use covest_bdd::BddManager;
use covest_circuits::{circular_queue, pipeline, priority_buffer};
use covest_core::{CoverageEstimator, CoverageOptions};

fn bench_queue_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling/queue_depth");
    for depth in [4i64, 8, 16, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &depth| {
            let mut suite = circular_queue::wrap_suite_initial();
            suite.extend(circular_queue::wrap_suite_additional());
            suite.extend(circular_queue::wrap_suite_final());
            b.iter(|| {
                let bdd = BddManager::new();
                let model = circular_queue::build(&bdd, depth).expect("compiles");
                let est = CoverageEstimator::new(&model.fsm);
                let a = est
                    .analyze("wrap", &suite, &CoverageOptions::default())
                    .expect("analyzes");
                std::hint::black_box(a.percent())
            })
        });
    }
    group.finish();
}

fn bench_buffer_capacity(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling/buffer_capacity");
    for capacity in [4i64, 8, 12, 16] {
        group.bench_with_input(
            BenchmarkId::from_parameter(capacity),
            &capacity,
            |b, &capacity| {
                let suite = priority_buffer::hi_suite(capacity);
                b.iter(|| {
                    let bdd = BddManager::new();
                    let model = priority_buffer::build(&bdd, capacity, false).expect("compiles");
                    let est = CoverageEstimator::new(&model.fsm);
                    let a = est
                        .analyze("hi_cnt", &suite, &CoverageOptions::default())
                        .expect("analyzes");
                    std::hint::black_box(a.percent())
                })
            },
        );
    }
    group.finish();
}

fn bench_pipeline_stages(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling/pipeline_stages");
    for stages in [3usize, 5, 7, 9] {
        group.bench_with_input(
            BenchmarkId::from_parameter(stages),
            &stages,
            |b, &stages| {
                let mut suite = pipeline::out_suite_initial(stages);
                suite.extend(pipeline::out_suite_hold());
                let opts = CoverageOptions {
                    fairness: vec![pipeline::fairness()],
                    ..Default::default()
                };
                b.iter(|| {
                    let bdd = BddManager::new();
                    let model = pipeline::build(&bdd, stages).expect("compiles");
                    let est = CoverageEstimator::new(&model.fsm);
                    let a = est.analyze("out", &suite, &opts).expect("analyzes");
                    std::hint::black_box(a.percent())
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_queue_depth,
    bench_buffer_capacity,
    bench_pipeline_stages
}
criterion_main!(benches);
