//! Cross-method parity: `image`, `preimage` and `preimage_univ` must be
//! **bit-identical** between [`ImageMethod::Monolithic`] and
//! [`ImageMethod::Partitioned`] on every bundled circuit and every
//! `models/*.smv` deck — on a shared manager (where BDD canonicity makes
//! semantic equality literal `Ref` equality) and end-to-end through
//! coverage analysis under `--reorder auto`.

use covest_bdd::{Bdd, Ref, ReorderConfig, ReorderMode};
use covest_bench::table2_workloads;
use covest_core::{CoverageEstimator, CoverageOptions};
use covest_fsm::{ImageConfig, ImageMethod, SymbolicFsm};
use covest_smv::CompiledModel;

/// Every bundled circuit, by Table-2 workload (deduplicated by circuit).
fn circuit_models(bdd: &mut Bdd) -> Vec<(String, CompiledModel)> {
    let mut out: Vec<(String, CompiledModel)> = Vec::new();
    for w in table2_workloads() {
        if out.iter().any(|(name, _)| name == w.circuit) {
            continue;
        }
        out.push((w.circuit.to_owned(), (w.build)(bdd)));
    }
    out
}

/// Every deck under `models/`.
fn deck_sources() -> Vec<(String, String)> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../models");
    let mut decks: Vec<(String, String)> = std::fs::read_dir(&dir)
        .expect("models directory")
        .filter_map(|e| {
            let path = e.expect("dir entry").path();
            if path.extension().is_some_and(|x| x == "smv") {
                let name = path.file_name().unwrap().to_string_lossy().into_owned();
                let src = std::fs::read_to_string(&path).expect("readable deck");
                Some((name, src))
            } else {
                None
            }
        })
        .collect();
    decks.sort();
    assert!(!decks.is_empty(), "no decks found under {}", dir.display());
    decks
}

/// Asserts the three image operations agree between the machine's
/// partitioned engine and a monolithic twin, over a ladder of state sets
/// grown from the initial states.
fn assert_image_parity(bdd: &mut Bdd, name: &str, fsm: &SymbolicFsm) {
    assert_eq!(
        fsm.image_config().method,
        ImageMethod::Partitioned,
        "{name}: partitioned must be the default"
    );
    let mut mono = fsm.clone();
    mono.set_image_config(bdd, ImageConfig::monolithic());

    // State sets: the BFS onion rings, their running union, and the
    // complement of the reachable set (exercises sets far from `init`).
    let mut sets = vec![fsm.init(), Ref::TRUE, Ref::FALSE];
    let rings = fsm.onion_rings(bdd, fsm.init());
    let mut union = Ref::FALSE;
    for &r in &rings {
        union = bdd.or(union, r);
        sets.push(r);
        sets.push(union);
    }
    sets.push(bdd.not(union));

    for (i, &s) in sets.iter().enumerate() {
        let img_p = fsm.image(bdd, s);
        let img_m = mono.image(bdd, s);
        assert_eq!(img_p, img_m, "{name}: image diverges on set {i}");
        let pre_p = fsm.preimage(bdd, s);
        let pre_m = mono.preimage(bdd, s);
        assert_eq!(pre_p, pre_m, "{name}: preimage diverges on set {i}");
        let unv_p = fsm.preimage_univ(bdd, s);
        let unv_m = mono.preimage_univ(bdd, s);
        assert_eq!(unv_p, unv_m, "{name}: preimage_univ diverges on set {i}");
    }
}

#[test]
fn circuits_image_ops_bit_identical() {
    let mut bdd = Bdd::new();
    for (name, model) in circuit_models(&mut bdd) {
        assert_image_parity(&mut bdd, &name, &model.fsm);
    }
}

#[test]
fn decks_image_ops_bit_identical() {
    for (name, src) in deck_sources() {
        let mut bdd = Bdd::new();
        let model = covest_smv::compile(&mut bdd, &src).expect("deck compiles");
        assert_image_parity(&mut bdd, &name, &model.fsm);
    }
}

/// Runs a full coverage analysis of `deck` with the given image method
/// under aggressive automatic reordering, returning the per-signal
/// coverage percentages.
fn analyze_deck(src: &str, method: ImageMethod, reorder: ReorderMode) -> Vec<(String, f64)> {
    let mut bdd = Bdd::new();
    bdd.set_reorder_config(ReorderConfig {
        mode: reorder,
        auto_threshold: 256, // fire at essentially every checkpoint
        ..Default::default()
    });
    let model = covest_smv::compile_with(
        &mut bdd,
        src,
        ImageConfig {
            method,
            ..Default::default()
        },
    )
    .expect("deck compiles");
    let estimator = CoverageEstimator::new(&model.fsm);
    let options = CoverageOptions {
        fairness: model.fairness.clone(),
        ..Default::default()
    };
    model
        .observed
        .iter()
        .map(|sig| {
            let a = estimator
                .analyze(&mut bdd, sig, &model.specs, &options)
                .expect("analyzes");
            (sig.clone(), a.percent())
        })
        .collect()
}

#[test]
fn decks_coverage_bit_identical_under_auto_reorder() {
    for (name, src) in deck_sources() {
        for reorder in [ReorderMode::Off, ReorderMode::Auto] {
            let mono = analyze_deck(&src, ImageMethod::Monolithic, reorder);
            let part = analyze_deck(&src, ImageMethod::Partitioned, reorder);
            assert_eq!(mono.len(), part.len(), "{name}: signal sets differ");
            for ((sig_m, pct_m), (sig_p, pct_p)) in mono.iter().zip(&part) {
                assert_eq!(sig_m, sig_p);
                assert_eq!(
                    pct_m.to_bits(),
                    pct_p.to_bits(),
                    "{name}/{sig_m} ({reorder:?}): coverage diverges \
                     (mono {pct_m} vs part {pct_p})"
                );
            }
        }
    }
}

#[test]
fn workloads_coverage_bit_identical_under_auto_reorder() {
    for w in table2_workloads() {
        let run = |method: ImageMethod| -> f64 {
            let mut bdd = Bdd::new();
            bdd.set_reorder_config(ReorderConfig {
                mode: ReorderMode::Auto,
                auto_threshold: 256,
                ..Default::default()
            });
            let model = (w.build)(&mut bdd);
            let mut fsm = model.fsm;
            fsm.set_image_config(
                &mut bdd,
                ImageConfig {
                    method,
                    ..Default::default()
                },
            );
            let estimator = CoverageEstimator::new(&fsm);
            estimator
                .analyze(&mut bdd, w.signal, &w.properties, &w.options)
                .expect("workload analyzes")
                .percent()
        };
        let mono = run(ImageMethod::Monolithic);
        let part = run(ImageMethod::Partitioned);
        assert_eq!(
            mono.to_bits(),
            part.to_bits(),
            "{}/{}: coverage diverges under auto reorder (mono {mono} vs part {part})",
            w.circuit,
            w.signal
        );
    }
}
