//! Cross-method parity: `image`, `preimage` and `preimage_univ` must be
//! **bit-identical** between [`ImageMethod::Monolithic`] and
//! [`ImageMethod::Partitioned`] on every bundled circuit and every
//! `models/*.smv` deck — on a shared manager (where BDD canonicity makes
//! semantic equality literal `Ref` equality) and end-to-end through
//! coverage analysis under `--reorder auto`.

use covest_bdd::{BddManager, ReorderConfig, ReorderMode};
use covest_bench::table2_workloads;
use covest_core::{CoverageEstimator, CoverageOptions};
use covest_fsm::{ImageConfig, ImageMethod, SymbolicFsm};
use covest_smv::CompiledModel;

/// Every bundled circuit, by Table-2 workload (deduplicated by circuit).
fn circuit_models(bdd: &BddManager) -> Vec<(String, CompiledModel)> {
    let mut out: Vec<(String, CompiledModel)> = Vec::new();
    for w in table2_workloads() {
        if out.iter().any(|(name, _)| name == w.circuit) {
            continue;
        }
        out.push((w.circuit.to_owned(), (w.build)(bdd)));
    }
    out
}

/// Every deck under `models/`.
fn deck_sources() -> Vec<(String, String)> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../models");
    let mut decks: Vec<(String, String)> = std::fs::read_dir(&dir)
        .expect("models directory")
        .filter_map(|e| {
            let path = e.expect("dir entry").path();
            if path.extension().is_some_and(|x| x == "smv") {
                let name = path.file_name().unwrap().to_string_lossy().into_owned();
                let src = std::fs::read_to_string(&path).expect("readable deck");
                Some((name, src))
            } else {
                None
            }
        })
        .collect();
    decks.sort();
    assert!(!decks.is_empty(), "no decks found under {}", dir.display());
    decks
}

/// Asserts the three image operations agree between the machine's
/// partitioned engine and a monolithic twin, over a ladder of state sets
/// grown from the initial states.
fn assert_image_parity(bdd: &BddManager, name: &str, fsm: &SymbolicFsm) {
    assert_eq!(
        fsm.image_config().method,
        ImageMethod::Partitioned,
        "{name}: partitioned must be the default"
    );
    let mut mono = fsm.clone();
    mono.set_image_config(ImageConfig::monolithic());

    // State sets: the BFS onion rings, their running union, and the
    // complement of the reachable set (exercises sets far from `init`).
    let mut sets = vec![fsm.init().clone(), bdd.constant(true), bdd.constant(false)];
    let rings = fsm.onion_rings(fsm.init());
    let mut union = bdd.constant(false);
    for r in &rings {
        union = union.or(r);
        sets.push(r.clone());
        sets.push(union.clone());
    }
    sets.push(union.not());

    for (i, s) in sets.iter().enumerate() {
        let img_p = fsm.image(s);
        let img_m = mono.image(s);
        assert_eq!(img_p, img_m, "{name}: image diverges on set {i}");
        let pre_p = fsm.preimage(s);
        let pre_m = mono.preimage(s);
        assert_eq!(pre_p, pre_m, "{name}: preimage diverges on set {i}");
        let unv_p = fsm.preimage_univ(s);
        let unv_m = mono.preimage_univ(s);
        assert_eq!(unv_p, unv_m, "{name}: preimage_univ diverges on set {i}");
    }
}

#[test]
fn circuits_image_ops_bit_identical() {
    let bdd = BddManager::new();
    for (name, model) in circuit_models(&bdd) {
        assert_image_parity(&bdd, &name, &model.fsm);
    }
}

#[test]
fn decks_image_ops_bit_identical() {
    for (name, src) in deck_sources() {
        let bdd = BddManager::new();
        let model = covest_smv::compile(&bdd, &src).expect("deck compiles");
        assert_image_parity(&bdd, &name, &model.fsm);
    }
}

/// Runs a full coverage analysis of `deck` with the given image method
/// under aggressive automatic reordering, returning the per-signal
/// coverage percentages.
fn analyze_deck(src: &str, method: ImageMethod, reorder: ReorderMode) -> Vec<(String, f64)> {
    let bdd = BddManager::new();
    bdd.set_reorder_config(ReorderConfig {
        mode: reorder,
        auto_threshold: 256, // fire at essentially every checkpoint
        ..Default::default()
    });
    let model = covest_smv::compile_with(
        &bdd,
        src,
        ImageConfig {
            method,
            ..Default::default()
        },
    )
    .expect("deck compiles");
    let estimator = CoverageEstimator::new(&model.fsm);
    let options = CoverageOptions {
        fairness: model.fairness.clone(),
        ..Default::default()
    };
    model
        .observed
        .iter()
        .map(|sig| {
            let a = estimator
                .analyze(sig, &model.specs, &options)
                .expect("analyzes");
            (sig.clone(), a.percent())
        })
        .collect()
}

#[test]
fn decks_coverage_bit_identical_under_auto_reorder() {
    for (name, src) in deck_sources() {
        let mut per_mode = Vec::new();
        for reorder in [ReorderMode::Off, ReorderMode::Auto] {
            let mono = analyze_deck(&src, ImageMethod::Monolithic, reorder);
            let part = analyze_deck(&src, ImageMethod::Partitioned, reorder);
            assert_eq!(mono.len(), part.len(), "{name}: signal sets differ");
            for ((sig_m, pct_m), (sig_p, pct_p)) in mono.iter().zip(&part) {
                assert_eq!(sig_m, sig_p);
                assert_eq!(
                    pct_m.to_bits(),
                    pct_p.to_bits(),
                    "{name}/{sig_m} ({reorder:?}): coverage diverges \
                     (mono {pct_m} vs part {pct_p})"
                );
            }
            per_mode.push(part);
        }
        // Off vs Auto must also agree bit for bit: reordering (with its
        // rootless collections) is a pure representation change.
        for ((sig_off, pct_off), (sig_auto, pct_auto)) in per_mode[0].iter().zip(&per_mode[1]) {
            assert_eq!(sig_off, sig_auto);
            assert_eq!(
                pct_off.to_bits(),
                pct_auto.to_bits(),
                "{name}/{sig_off}: coverage diverges across reorder modes \
                 (off {pct_off} vs auto {pct_auto})"
            );
        }
    }
}

/// Golden coverage percentages for the Table-2 workloads, pinned at
/// 1e-4 precision (the exact values the pre-handle-API implementation
/// produced, as recorded in `BENCH_reorder.json`/`BENCH_image.json`).
/// Guards the API redesign — and any future one — against semantic
/// drift in the analyses themselves.
#[test]
fn workloads_match_golden_coverage_percentages() {
    let golden: &[(&str, u64)] = &[
        ("hi_cnt", 1_000_000),
        ("lo_cnt", 935_484),
        ("wrap", 560_000),
        ("full", 1_000_000),
        ("empty", 1_000_000),
        ("out", 651_042),
        ("count", 833_333),
    ];
    for w in table2_workloads() {
        let expect = golden
            .iter()
            .find(|(sig, _)| *sig == w.signal)
            .unwrap_or_else(|| panic!("no golden value for {}", w.signal))
            .1;
        let bdd = BddManager::new();
        let model = (w.build)(&bdd);
        let estimator = CoverageEstimator::new(&model.fsm);
        let analysis = estimator
            .analyze(w.signal, &w.properties, &w.options)
            .expect("workload analyzes");
        let scaled = (analysis.percent() * 10_000.0).round() as u64;
        assert_eq!(
            scaled,
            expect,
            "{}/{}: coverage drifted from the golden value ({}%)",
            w.circuit,
            w.signal,
            analysis.percent()
        );
    }
}

#[test]
fn workloads_coverage_bit_identical_under_auto_reorder() {
    for w in table2_workloads() {
        let run = |method: ImageMethod| -> f64 {
            let bdd = BddManager::new();
            bdd.set_reorder_config(ReorderConfig {
                mode: ReorderMode::Auto,
                auto_threshold: 256,
                ..Default::default()
            });
            let model = (w.build)(&bdd);
            let mut fsm = model.fsm;
            fsm.set_image_config(ImageConfig {
                method,
                ..Default::default()
            });
            let estimator = CoverageEstimator::new(&fsm);
            estimator
                .analyze(w.signal, &w.properties, &w.options)
                .expect("workload analyzes")
                .percent()
        };
        let mono = run(ImageMethod::Monolithic);
        let part = run(ImageMethod::Partitioned);
        assert_eq!(
            mono.to_bits(),
            part.to_bits(),
            "{}/{}: coverage diverges under auto reorder (mono {mono} vs part {part})",
            w.circuit,
            w.signal
        );
    }
}
