//! Cross-method parity: `image`, `preimage` and `preimage_univ` must be
//! **bit-identical** between [`ImageMethod::Monolithic`] and
//! [`ImageMethod::Partitioned`] on every bundled circuit and every
//! `models/*.smv` deck — on a shared manager (where BDD canonicity makes
//! semantic equality literal `Ref` equality), with and without an
//! installed reachable care set — and end-to-end through coverage
//! analysis: coverage percentages, per-property verdicts and the
//! uncovered state sets must be bit-identical across the full
//! `--simplify off|restrict|constrain` × `--image mono|part` ×
//! `--reorder off|auto` cross-product. Don't-care simplification (like
//! partitioning and reordering before it) is a pure representation
//! change; any observable drift is a bug.

use covest_bdd::{BddManager, ReorderConfig, ReorderMode};
use covest_bench::table2_workloads;
use covest_core::{CoverageAnalysis, CoverageEstimator, CoverageOptions};
use covest_fsm::{ImageConfig, ImageMethod, SimplifyConfig, SymbolicFsm};
use covest_smv::CompiledModel;

/// Every bundled circuit, by Table-2 workload (deduplicated by circuit).
fn circuit_models(bdd: &BddManager) -> Vec<(String, CompiledModel)> {
    let mut out: Vec<(String, CompiledModel)> = Vec::new();
    for w in table2_workloads() {
        if out.iter().any(|(name, _)| name == w.circuit) {
            continue;
        }
        out.push((w.circuit.to_owned(), (w.build)(bdd)));
    }
    out
}

/// Every deck under `models/`.
fn deck_sources() -> Vec<(String, String)> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../models");
    let mut decks: Vec<(String, String)> = std::fs::read_dir(&dir)
        .expect("models directory")
        .filter_map(|e| {
            let path = e.expect("dir entry").path();
            if path.extension().is_some_and(|x| x == "smv") {
                let name = path.file_name().unwrap().to_string_lossy().into_owned();
                let src = std::fs::read_to_string(&path).expect("readable deck");
                Some((name, src))
            } else {
                None
            }
        })
        .collect();
    decks.sort();
    assert!(!decks.is_empty(), "no decks found under {}", dir.display());
    decks
}

/// Asserts the three image operations agree between the machine's
/// partitioned engine and a monolithic twin, over a ladder of state sets
/// grown from the initial states.
fn assert_image_parity(bdd: &BddManager, name: &str, fsm: &SymbolicFsm) {
    assert_eq!(
        fsm.image_config().method,
        ImageMethod::Partitioned,
        "{name}: partitioned must be the default"
    );
    let mut mono = fsm.clone();
    mono.set_image_config(ImageConfig::monolithic());

    // State sets: the BFS onion rings, their running union, and the
    // complement of the reachable set (exercises sets far from `init`).
    let mut sets = vec![fsm.init().clone(), bdd.constant(true), bdd.constant(false)];
    let rings = fsm.onion_rings(fsm.init());
    let mut union = bdd.constant(false);
    for r in &rings {
        union = union.or(r);
        sets.push(r.clone());
        sets.push(union.clone());
    }
    sets.push(union.not());

    for (i, s) in sets.iter().enumerate() {
        let img_p = fsm.image(s);
        let img_m = mono.image(s);
        assert_eq!(img_p, img_m, "{name}: image diverges on set {i}");
        let pre_p = fsm.preimage(s);
        let pre_m = mono.preimage(s);
        assert_eq!(pre_p, pre_m, "{name}: preimage diverges on set {i}");
        let unv_p = fsm.preimage_univ(s);
        let unv_m = mono.preimage_univ(s);
        assert_eq!(unv_p, unv_m, "{name}: preimage_univ diverges on set {i}");
    }

    // Install the reachable care set (simplified transition clusters,
    // re-derived schedules) and re-check against the care-free monolithic
    // twin: the simplified relation must be invisible for every argument,
    // inside the care set (where it is actually consulted) and outside
    // (where the containment guard must route around it).
    let _reach = fsm.install_reachable_care();
    for (i, s) in sets.iter().enumerate() {
        assert_eq!(
            fsm.image(s),
            mono.image(s),
            "{name}: image diverges under installed care on set {i}"
        );
        assert_eq!(
            fsm.preimage(s),
            mono.preimage(s),
            "{name}: preimage diverges under installed care on set {i}"
        );
        assert_eq!(
            fsm.preimage_univ(s),
            mono.preimage_univ(s),
            "{name}: preimage_univ diverges under installed care on set {i}"
        );
    }
}

#[test]
fn circuits_image_ops_bit_identical() {
    let bdd = BddManager::new();
    for (name, model) in circuit_models(&bdd) {
        assert_image_parity(&bdd, &name, &model.fsm);
    }
}

#[test]
fn decks_image_ops_bit_identical() {
    for (name, src) in deck_sources() {
        let bdd = BddManager::new();
        let model = covest_smv::compile(&bdd, &src).expect("deck compiles");
        assert_image_parity(&bdd, &name, &model.fsm);
    }
}

/// Everything the paper-facing analysis reports, in a form comparable
/// across managers (and variable orders): the coverage percentage's bit
/// pattern, the per-property verdicts, and the uncovered state set as
/// sorted named minterms.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SignalOutcome {
    signal: String,
    percent_bits: u64,
    holds: Vec<bool>,
    uncovered: Vec<Vec<(String, bool)>>,
}

fn outcome_of(estimator: &CoverageEstimator, analysis: &CoverageAnalysis) -> SignalOutcome {
    let mut uncovered = estimator.uncovered_states(analysis, usize::MAX);
    // Minterm enumeration order follows the (possibly resifted) variable
    // order; sort for a representation-independent comparison.
    uncovered.sort();
    SignalOutcome {
        signal: analysis.observed.clone(),
        percent_bits: analysis.percent().to_bits(),
        holds: analysis.properties.iter().map(|p| p.holds).collect(),
        uncovered,
    }
}

/// The full simplify × image × reorder configuration matrix.
fn config_matrix() -> Vec<(ReorderMode, ImageMethod, SimplifyConfig)> {
    let mut out = Vec::new();
    for reorder in [ReorderMode::Off, ReorderMode::Auto] {
        for image in [ImageMethod::Monolithic, ImageMethod::Partitioned] {
            for simplify in [
                SimplifyConfig::Off,
                SimplifyConfig::Restrict,
                SimplifyConfig::Constrain,
            ] {
                out.push((reorder, image, simplify));
            }
        }
    }
    out
}

/// Runs a full coverage analysis of `deck` under one configuration,
/// returning the per-signal outcomes.
fn analyze_deck(
    src: &str,
    method: ImageMethod,
    reorder: ReorderMode,
    simplify: SimplifyConfig,
) -> Vec<SignalOutcome> {
    let bdd = BddManager::new();
    bdd.set_reorder_config(ReorderConfig {
        mode: reorder,
        auto_threshold: 256, // fire at essentially every checkpoint
        ..Default::default()
    });
    let model = covest_smv::compile_with(
        &bdd,
        src,
        ImageConfig {
            method,
            simplify,
            ..Default::default()
        },
    )
    .expect("deck compiles");
    let estimator = CoverageEstimator::new(&model.fsm);
    let options = CoverageOptions {
        fairness: model.fairness.clone(),
        ..Default::default()
    };
    model
        .observed
        .iter()
        .map(|sig| {
            let a = estimator
                .analyze(sig, &model.specs, &options)
                .expect("analyzes");
            outcome_of(&estimator, &a)
        })
        .collect()
}

#[test]
fn decks_outcomes_bit_identical_across_simplify_image_reorder() {
    for (name, src) in deck_sources() {
        let mut baseline: Option<Vec<SignalOutcome>> = None;
        for (reorder, image, simplify) in config_matrix() {
            let got = analyze_deck(&src, image, reorder, simplify);
            match &baseline {
                None => baseline = Some(got),
                Some(want) => assert_eq!(
                    &got, want,
                    "{name}: outcomes diverge at reorder={reorder:?} \
                     image={image} simplify={simplify}"
                ),
            }
        }
    }
}

/// Golden coverage percentages for the Table-2 workloads, pinned at
/// 1e-4 precision (the exact values the pre-handle-API implementation
/// produced, as recorded in `BENCH_reorder.json`/`BENCH_image.json`).
/// Guards the API redesign — and any future one — against semantic
/// drift in the analyses themselves.
#[test]
fn workloads_match_golden_coverage_percentages() {
    let golden: &[(&str, u64)] = &[
        ("hi_cnt", 1_000_000),
        ("lo_cnt", 935_484),
        ("wrap", 560_000),
        ("full", 1_000_000),
        ("empty", 1_000_000),
        ("out", 651_042),
        ("count", 833_333),
    ];
    for w in table2_workloads() {
        let expect = golden
            .iter()
            .find(|(sig, _)| *sig == w.signal)
            .unwrap_or_else(|| panic!("no golden value for {}", w.signal))
            .1;
        let bdd = BddManager::new();
        let model = (w.build)(&bdd);
        let estimator = CoverageEstimator::new(&model.fsm);
        let analysis = estimator
            .analyze(w.signal, &w.properties, &w.options)
            .expect("workload analyzes");
        let scaled = (analysis.percent() * 10_000.0).round() as u64;
        assert_eq!(
            scaled,
            expect,
            "{}/{}: coverage drifted from the golden value ({}%)",
            w.circuit,
            w.signal,
            analysis.percent()
        );
    }
}

#[test]
fn workloads_outcomes_bit_identical_across_simplify_image_reorder() {
    for w in table2_workloads() {
        let run = |method: ImageMethod,
                   reorder: ReorderMode,
                   simplify: SimplifyConfig|
         -> SignalOutcome {
            let bdd = BddManager::new();
            bdd.set_reorder_config(ReorderConfig {
                mode: reorder,
                auto_threshold: 256,
                ..Default::default()
            });
            let model = (w.build)(&bdd);
            let mut fsm = model.fsm;
            fsm.set_image_config(ImageConfig {
                method,
                simplify,
                ..Default::default()
            });
            let estimator = CoverageEstimator::new(&fsm);
            let analysis = estimator
                .analyze(w.signal, &w.properties, &w.options)
                .expect("workload analyzes");
            outcome_of(&estimator, &analysis)
        };
        let mut baseline: Option<SignalOutcome> = None;
        for (reorder, image, simplify) in config_matrix() {
            let got = run(image, reorder, simplify);
            match &baseline {
                None => baseline = Some(got),
                Some(want) => assert_eq!(
                    &got, want,
                    "{}/{}: outcomes diverge at reorder={reorder:?} \
                     image={image} simplify={simplify}",
                    w.circuit, w.signal
                ),
            }
        }
    }
}
