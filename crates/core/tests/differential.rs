//! Differential validation of the Correctness Theorem (Section 3):
//! the symbolic covered-set algorithm of Table 1 must compute exactly the
//! Definition-3 covered set of the observability-transformed formula.
//!
//! We generate hundreds of random explicit-state machines and random
//! properties from the acceptable ACTL subset; whenever a property holds,
//! both implementations must agree on the covered set, state for state.

use covest_bdd::{BddManager, Func};
use covest_core::{
    reference_covered_set, CoverageError, CoveredSets, ReferenceMode, DEFAULT_STATE_LIMIT,
};
use covest_ctl::{parse_formula, Formula};
use covest_fsm::{Stg, SymbolicFsm};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Builds a random strongly-connected-ish STG with labels p, q, r.
fn random_stg(rng: &mut StdRng) -> Stg {
    let n = rng.gen_range(3..=7);
    let mut stg = Stg::new("random");
    stg.add_states(n);
    // A random spanning path keeps most states reachable.
    for i in 0..n - 1 {
        stg.add_edge(i, i + 1);
    }
    // Extra random edges.
    let extra = rng.gen_range(1..=n);
    for _ in 0..extra {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        stg.add_edge(a, b);
    }
    // Close the end so paths do not dead-end into self-loops too often.
    let back = rng.gen_range(0..n);
    stg.add_edge(n - 1, back);
    stg.mark_initial(0);
    for s in 0..n {
        if rng.gen_bool(0.5) {
            stg.label(s, "p");
        }
        if rng.gen_bool(0.5) {
            stg.label(s, "q");
        }
        if rng.gen_bool(0.3) {
            stg.label(s, "r");
        }
    }
    // Ensure every label exists somewhere so lowering never fails.
    stg.label(rng.gen_range(0..n), "p");
    stg.label(rng.gen_range(0..n), "q");
    stg.label(rng.gen_range(0..n), "r");
    stg
}

/// Formula templates over atoms drawn from {p, q, r, !p, !q, p|q, p&q}.
fn random_formula(rng: &mut StdRng) -> Formula {
    let atoms = ["p", "q", "r", "!p", "!q", "(p | q)", "(p & q)", "TRUE"];
    let mut a = || atoms[rng.gen_range(0..atoms.len())];
    let templates: Vec<String> = vec![
        format!("{}", a()),
        format!("{} -> {}", a(), a()),
        format!("AX {}", a()),
        format!("AX AX {}", a()),
        format!("AG {}", a()),
        format!("AG ({} -> AX {})", a(), a()),
        format!("AG ({} -> AX AX {})", a(), a()),
        format!("A[{} U {}]", a(), a()),
        format!("AF {}", a()),
        format!("AG ({} -> A[{} U {}])", a(), a(), a()),
        format!("A[{} U A[{} U {}]]", a(), a(), a()),
        format!("(AG {} & AX {})", a(), a()),
        format!("{} -> AG ({} -> AX {})", a(), a(), a()),
        format!("AG AX {}", a()),
        format!("A[{} U {}] & AF {}", a(), a(), a()),
    ];
    let pick = rng.gen_range(0..templates.len());
    parse_formula(&templates[pick]).expect("templates are in the subset")
}

fn symbolic_covered(
    fsm: &SymbolicFsm,
    observed: &str,
    f: &Formula,
) -> Result<Option<Func>, CoverageError> {
    let mut cs = CoveredSets::new(fsm, observed)?;
    if !cs.verify(f)? {
        return Ok(None);
    }
    Ok(Some(cs.covered_from_init(f)?))
}

#[test]
fn symbolic_algorithm_matches_definition3_of_transformed_formula() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let mut verified_cases = 0usize;
    let mut attempts = 0usize;
    while verified_cases < 120 && attempts < 3000 {
        attempts += 1;
        let bdd = BddManager::new();
        let stg = random_stg(&mut rng);
        let fsm = stg.compile(&bdd).expect("compiles");
        let formula = random_formula(&mut rng);
        let observed = if rng.gen_bool(0.7) { "q" } else { "p" };

        let symbolic = match symbolic_covered(&fsm, observed, &formula) {
            Ok(Some(c)) => c,
            Ok(None) => continue, // property fails: coverage undefined
            Err(e) => panic!("symbolic failed: {e}"),
        };
        let reference = reference_covered_set(
            &fsm,
            observed,
            &formula,
            ReferenceMode::Transformed,
            &[],
            DEFAULT_STATE_LIMIT,
        )
        .expect("reference runs");

        assert_eq!(
            symbolic,
            reference,
            "covered sets diverge\n  formula: {formula}\n  observed: {observed}\n  \
             model: {} states, case {attempts}",
            stg.num_states()
        );
        verified_cases += 1;
    }
    assert!(
        verified_cases >= 120,
        "only {verified_cases} verified cases in {attempts} attempts"
    );
}

#[test]
fn raw_definition3_is_a_subset_of_reachable() {
    let mut rng = StdRng::seed_from_u64(42);
    let mut checked = 0usize;
    let mut attempts = 0usize;
    while checked < 40 && attempts < 1200 {
        attempts += 1;
        let bdd = BddManager::new();
        let stg = random_stg(&mut rng);
        let fsm = stg.compile(&bdd).expect("compiles");
        let formula = random_formula(&mut rng);
        let raw = match reference_covered_set(
            &fsm,
            "q",
            &formula,
            ReferenceMode::Raw,
            &[],
            DEFAULT_STATE_LIMIT,
        ) {
            Ok(c) => c,
            Err(CoverageError::PropertyFails(_)) => continue,
            Err(e) => panic!("reference failed: {e}"),
        };
        let reach = fsm.reachable();
        assert!(raw.leq(&reach), "raw covered ⊆ reachable");
        checked += 1;
    }
    assert!(checked >= 40, "only {checked} cases in {attempts} attempts");
}

#[test]
fn covered_set_is_within_reachable_states() {
    let mut rng = StdRng::seed_from_u64(7);
    let mut checked = 0usize;
    let mut attempts = 0usize;
    while checked < 60 && attempts < 1500 {
        attempts += 1;
        let bdd = BddManager::new();
        let stg = random_stg(&mut rng);
        let fsm = stg.compile(&bdd).expect("compiles");
        let formula = random_formula(&mut rng);
        let covered = match symbolic_covered(&fsm, "q", &formula) {
            Ok(Some(c)) => c,
            Ok(None) => continue,
            Err(e) => panic!("symbolic failed: {e}"),
        };
        let reach = fsm.reachable();
        assert!(covered.leq(&reach), "covered ⊆ reachable\n{formula}");
        checked += 1;
    }
    assert!(checked >= 60, "only {checked} cases in {attempts} attempts");
}

#[test]
fn properties_not_mentioning_observed_signal_cover_nothing() {
    let mut rng = StdRng::seed_from_u64(99);
    let mut checked = 0usize;
    let mut attempts = 0usize;
    while checked < 30 && attempts < 1000 {
        attempts += 1;
        let bdd = BddManager::new();
        let stg = random_stg(&mut rng);
        let fsm = stg.compile(&bdd).expect("compiles");
        let formula = random_formula(&mut rng);
        if formula.mentions("r") {
            continue;
        }
        // Observe r: the property never constrains it.
        let covered = match symbolic_covered(&fsm, "r", &formula) {
            Ok(Some(c)) => c,
            Ok(None) => continue,
            Err(e) => panic!("symbolic failed: {e}"),
        };
        assert!(
            covered.is_false(),
            "property {formula} does not mention r but covered it"
        );
        checked += 1;
    }
    assert!(checked >= 30, "only {checked} cases in {attempts} attempts");
}
