//! Algebraic laws of the covered-set computation, checked on random
//! machines: properties the paper states or that follow directly from
//! the definitions.

use covest_bdd::BddManager;
use covest_core::{CoverageEstimator, CoverageOptions, CoveredSets};
use covest_ctl::{parse_formula, Formula};
use covest_fsm::Stg;
use rand::{rngs::StdRng, Rng, SeedableRng};

fn random_stg(rng: &mut StdRng) -> Stg {
    let n = rng.gen_range(3..=7);
    let mut stg = Stg::new("random");
    stg.add_states(n);
    for i in 0..n - 1 {
        stg.add_edge(i, i + 1);
    }
    for _ in 0..rng.gen_range(1..=n) {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        stg.add_edge(a, b);
    }
    stg.add_edge(n - 1, rng.gen_range(0..n));
    stg.mark_initial(0);
    for s in 0..n {
        if rng.gen_bool(0.5) {
            stg.label(s, "p");
        }
        if rng.gen_bool(0.5) {
            stg.label(s, "q");
        }
    }
    stg.label(rng.gen_range(0..n), "p");
    stg.label(rng.gen_range(0..n), "q");
    stg
}

fn random_formula(rng: &mut StdRng) -> Formula {
    let atoms = ["p", "q", "!p", "!q", "(p | q)", "(p & q)", "TRUE"];
    let mut a = || atoms[rng.gen_range(0..atoms.len())];
    let templates: Vec<String> = vec![
        format!("AG ({} -> AX {})", a(), a()),
        format!("A[{} U {}]", a(), a()),
        format!("AF {}", a()),
        format!("AG {}", a()),
        format!("AX {}", a()),
        format!("AG ({} -> A[{} U {}])", a(), a(), a()),
    ];
    parse_formula(&templates[rng.gen_range(0..templates.len())]).expect("in subset")
}

/// Runs `k` random (machine, formula) cases where the formula holds and
/// feeds each to `check`.
fn verified_cases(
    seed: u64,
    k: usize,
    mut check: impl FnMut(&BddManager, &Stg, &covest_fsm::SymbolicFsm, &Formula),
) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut done = 0;
    let mut attempts = 0;
    while done < k && attempts < 50 * k {
        attempts += 1;
        let bdd = BddManager::new();
        let stg = random_stg(&mut rng);
        let fsm = stg.compile(&bdd).expect("compiles");
        let formula = random_formula(&mut rng);
        let mut cs = CoveredSets::new(&fsm, "q").expect("q exists");
        if !cs.verify(&formula).expect("checks") {
            continue;
        }
        check(&bdd, &stg, &fsm, &formula);
        done += 1;
    }
    assert!(done >= k, "only {done} verified cases");
}

#[test]
fn conjunction_covered_set_is_the_union() {
    // Table 1: C(S0, f1 ∧ f2) = C(S0, f1) ∪ C(S0, f2). Check it at the
    // API level by comparing `analyze` on [f, g] against [f ∧ g].
    let mut rng = StdRng::seed_from_u64(1);
    let mut done = 0;
    while done < 30 {
        let bdd = BddManager::new();
        let stg = random_stg(&mut rng);
        let fsm = stg.compile(&bdd).expect("compiles");
        let f = random_formula(&mut rng);
        let g = random_formula(&mut rng);
        let mut cs = CoveredSets::new(&fsm, "q").expect("q exists");
        if !cs.verify(&f).expect("checks") || !cs.verify(&g).expect("checks") {
            continue;
        }
        let cf = cs.covered_from_init(&f).expect("covers");
        let cg = cs.covered_from_init(&g).expect("covers");
        let conj = f.clone().and(g.clone());
        let cfg = cs.covered_from_init(&conj).expect("covers");
        assert_eq!(cfg, cf.or(&cg), "f={f} g={g}");
        done += 1;
    }
}

#[test]
fn coverage_is_monotone_in_the_property_set() {
    let mut rng = StdRng::seed_from_u64(2);
    let mut done = 0;
    while done < 20 {
        let bdd = BddManager::new();
        let stg = random_stg(&mut rng);
        let fsm = stg.compile(&bdd).expect("compiles");
        let props: Vec<Formula> = (0..4).map(|_| random_formula(&mut rng)).collect();
        let est = CoverageEstimator::new(&fsm);
        let mut last = bdd.constant(false);
        let mut ok = true;
        for k in 1..=props.len() {
            let a = match est.analyze("q", &props[..k], &CoverageOptions::default()) {
                Ok(a) => a,
                Err(_) => {
                    ok = false;
                    break;
                }
            };
            assert!(
                last.leq(&a.covered),
                "covered set grows with more properties"
            );
            last = a.covered.clone();
        }
        if ok {
            done += 1;
        }
    }
}

#[test]
fn covered_is_always_within_the_space() {
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..40 {
        let bdd = BddManager::new();
        let stg = random_stg(&mut rng);
        let fsm = stg.compile(&bdd).expect("compiles");
        let props: Vec<Formula> = (0..3).map(|_| random_formula(&mut rng)).collect();
        let est = CoverageEstimator::new(&fsm);
        let a = est
            .analyze("q", &props, &CoverageOptions::default())
            .expect("analyzes");
        assert!(a.covered.leq(&a.space));
        assert!(a.covered_count <= a.space_count);
        let pct = a.percent();
        assert!((0.0..=100.0).contains(&pct));
    }
}

#[test]
fn union_analysis_covers_at_least_each_signal() {
    let mut rng = StdRng::seed_from_u64(4);
    let mut done = 0;
    while done < 20 {
        let bdd = BddManager::new();
        let stg = random_stg(&mut rng);
        let fsm = stg.compile(&bdd).expect("compiles");
        let props = vec![random_formula(&mut rng), random_formula(&mut rng)];
        let est = CoverageEstimator::new(&fsm);
        let opts = CoverageOptions::default();
        let (ap, aq, aunion) = (
            est.analyze("p", &props, &opts).expect("analyzes"),
            est.analyze("q", &props, &opts).expect("analyzes"),
            est.analyze_union(&["p", "q"], &props, &opts)
                .expect("analyzes"),
        );
        assert_eq!(aunion.covered, ap.covered.or(&aq.covered));
        assert!(aunion.covered_count >= ap.covered_count.max(aq.covered_count));
        done += 1;
    }
}

#[test]
fn covered_states_of_ax_live_one_step_ahead() {
    // C(S0, AX f) = C(forward(S0), f): every covered state of an AX
    // property is an image of the start states.
    verified_cases(5, 25, |_bdd, _stg, fsm, formula| {
        if let Formula::Ax(_) = formula {
            let mut cs = CoveredSets::new(fsm, "q").expect("q exists");
            let covered = cs.covered_from_init(formula).expect("covers");
            let img = fsm.image(fsm.init());
            assert!(covered.leq(&img), "{formula}");
        }
    });
}
