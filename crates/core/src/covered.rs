//! The symbolic covered-set algorithm — Table 1 of the DAC'99 paper.
//!
//! Coverage for a formula `g` (in the acceptable ACTL subset) and observed
//! signal `q` is computed recursively over the syntactic structure of `g`,
//! threading a set of *start states* `S0` downward:
//!
//! | formula           | covered set `C(S0, g)`                                    |
//! |-------------------|-----------------------------------------------------------|
//! | `b`               | `S0 ∩ depend(b)`                                          |
//! | `b → f`           | `C(S0 ∩ T(b), f)`                                         |
//! | `AX f`            | `C(forward(S0), f)`                                       |
//! | `AG f`            | `C(reachable(S0), f)`                                     |
//! | `A[f1 U f2]`      | `C(traverse(S0,f1,f2), f1) ∪ C(firstreached(S0,f2), f2)` |
//! | `f1 ∧ f2`         | `C(S0, f1) ∪ C(S0, f2)`                                   |
//!
//! with `depend(b) = T(b) ∩ ¬T(b[q := ¬q])`. The computed set equals the
//! covered set (per Definition 3) of the *observability-transformed*
//! formula `φ(g)` for observed signal `q'` — the algorithm never has to
//! build the transformed formula (Correctness Theorem, Section 3).

use covest_bdd::Func;
use covest_ctl::{Ctl, Formula, PropExpr, SignalRef};
use covest_fsm::{SignalValue, SymbolicFsm};
use covest_mc::ModelChecker;

use crate::error::CoverageError;

/// The covered-set computation engine for one machine and one observed
/// signal.
///
/// Wraps a [`ModelChecker`] whose memoized satisfaction sets are shared
/// between verification and coverage estimation, as the paper suggests.
/// All held state sets are owned [`Func`] handles, so the engine stays
/// valid across garbage collection and automatic reordering.
#[derive(Debug)]
pub struct CoveredSets<'m> {
    mc: ModelChecker<'m>,
    observed: String,
    /// Single-change interpretations of the observed signal. For a
    /// boolean signal there is one (its complement); for a numeric signal
    /// there is one per bit (that bit complemented). A state is covered
    /// when *some* single change there falsifies the property — the
    /// paper's multi-signal union semantics applied to the bits.
    flip_variants: Vec<SignalValue>,
}

impl<'m> CoveredSets<'m> {
    /// Creates the engine for `fsm` observing signal `observed`.
    ///
    /// Boolean observed signals follow Definition 2's duality directly;
    /// numeric (multi-bit) observed signals are handled as the union of
    /// their bits, per the paper's multiple-observable-signals remark.
    ///
    /// # Errors
    ///
    /// Returns [`CoverageError::UnknownObserved`] if the signal is not
    /// defined on the machine.
    pub fn new(fsm: &'m SymbolicFsm, observed: impl Into<String>) -> Result<Self, CoverageError> {
        Self::with_checker(ModelChecker::new(fsm), observed)
    }

    /// Creates the engine reusing an existing checker (keeping its
    /// fairness constraints and memoized results).
    ///
    /// # Errors
    ///
    /// Same as [`CoveredSets::new`].
    pub fn with_checker(
        mc: ModelChecker<'m>,
        observed: impl Into<String>,
    ) -> Result<Self, CoverageError> {
        let observed = observed.into();
        let flip_variants = flip_variants_of(mc.fsm(), &observed)?;
        Ok(CoveredSets {
            mc,
            observed,
            flip_variants,
        })
    }

    /// The observed signal's name.
    pub fn observed(&self) -> &str {
        &self.observed
    }

    /// The underlying model checker.
    pub fn checker_mut(&mut self) -> &mut ModelChecker<'m> {
        &mut self.mc
    }

    /// The machine under analysis.
    pub fn fsm(&self) -> &SymbolicFsm {
        self.mc.fsm()
    }

    /// `depend(b) = T(b) ∩ ¬T(b[q := ¬q])`: start states where the truth
    /// of `b` hinges on the value of the observed signal.
    ///
    /// # Errors
    ///
    /// Returns [`CoverageError::Lower`] for unresolvable atoms.
    pub fn depend(&mut self, b: &PropExpr) -> Result<Func, CoverageError> {
        let fsm = self.mc.fsm();
        let mgr = fsm.manager();
        let normal = fsm.signals().lower(mgr, b)?;
        let mut acc = mgr.constant(false);
        for variant in &self.flip_variants {
            let overrides = [(SignalRef::new(self.observed.clone()), variant.clone())];
            let flipped = fsm.signals().lower_with(mgr, b, &overrides)?;
            acc = acc.or(&normal.diff(&flipped));
        }
        Ok(acc)
    }

    /// `traverse(S0, f1, f2)`: states on paths from `S0` satisfying `f1`
    /// and not `f2`, up to but not including the first `f2` state.
    ///
    /// # Errors
    ///
    /// Returns [`CoverageError::Lower`] for unresolvable atoms.
    pub fn traverse(
        &mut self,
        s0: &Func,
        f1: &Formula,
        f2: &Formula,
    ) -> Result<Func, CoverageError> {
        let t1 = self.sat(f1)?;
        let t2 = self.sat(f2)?;
        let keep = t1.diff(&t2);
        let mut acc = s0.manager().constant(false);
        let mut cur = s0.clone();
        loop {
            let layer = cur.and(&keep);
            let fresh = layer.diff(&acc);
            if fresh.is_false() {
                return Ok(acc);
            }
            acc = acc.or(&fresh);
            cur = self.mc.fsm().image(&fresh);
        }
    }

    /// `firstreached(S0, f2)`: the first `f2`-satisfying states
    /// encountered while traversing forward from `S0`.
    ///
    /// # Errors
    ///
    /// Returns [`CoverageError::Lower`] for unresolvable atoms.
    pub fn firstreached(&mut self, s0: &Func, f2: &Formula) -> Result<Func, CoverageError> {
        let t2 = self.sat(f2)?;
        let nt2 = t2.not();
        let mgr = s0.manager();
        let mut acc = mgr.constant(false);
        let mut visited = mgr.constant(false);
        let mut cur = s0.clone();
        loop {
            acc = acc.or(&cur.and(&t2));
            let cont = cur.and(&nt2);
            let fresh = cont.diff(&visited);
            if fresh.is_false() {
                return Ok(acc);
            }
            visited = visited.or(&fresh);
            cur = self.mc.fsm().image(&fresh);
        }
    }

    /// The recursive covered-set computation `C(S0, g)` of Table 1.
    ///
    /// `AF` sugar is normalized away first.
    ///
    /// # Errors
    ///
    /// Returns [`CoverageError::Lower`] for unresolvable atoms.
    pub fn covered(&mut self, s0: &Func, g: &Formula) -> Result<Func, CoverageError> {
        let g = g.normalize();
        self.covered_rec(s0, &g)
    }

    fn covered_rec(&mut self, s0: &Func, g: &Formula) -> Result<Func, CoverageError> {
        match g {
            Formula::Prop(b) => {
                let d = self.depend(b)?;
                Ok(s0.and(&d))
            }
            Formula::Implies(b, f) => {
                let fsm = self.mc.fsm();
                let tb = fsm.signals().lower(fsm.manager(), b)?;
                self.covered_rec(&s0.and(&tb), f)
            }
            Formula::Ax(f) => {
                let s = self.mc.fsm().image(s0);
                self.covered_rec(&s, f)
            }
            Formula::Ag(f) => {
                let s = self.mc.fsm().reachable_from(s0);
                self.covered_rec(&s, f)
            }
            Formula::Au(f1, f2) => {
                let trav = self.traverse(s0, f1, f2)?;
                let c1 = self.covered_rec(&trav, f1)?;
                let first = self.firstreached(s0, f2)?;
                let c2 = self.covered_rec(&first, f2)?;
                Ok(c1.or(&c2))
            }
            Formula::And(f1, f2) => {
                let c1 = self.covered_rec(s0, f1)?;
                let c2 = self.covered_rec(s0, f2)?;
                Ok(c1.or(&c2))
            }
            Formula::Af(_) => unreachable!("normalize() removes AF"),
        }
    }

    /// Covered set of `g` from the machine's initial states: `C(S_I, g)`.
    ///
    /// # Errors
    ///
    /// Returns [`CoverageError::Lower`] for unresolvable atoms.
    pub fn covered_from_init(&mut self, g: &Formula) -> Result<Func, CoverageError> {
        let init = self.mc.fsm().init().clone();
        self.covered(&init, g)
    }

    /// Vacuity check: does some implication inside `g` never trigger
    /// along the start-set flow of the covered-set recursion?
    ///
    /// A property like `AG (b -> AX q)` with `b` unsatisfiable on the
    /// reachable states passes *vacuously*: it verifies, covers nothing,
    /// and usually indicates a typo in the antecedent. This is the
    /// antecedent-based vacuity notion that later literature pairs with
    /// the paper's coverage metric.
    ///
    /// # Errors
    ///
    /// Returns [`CoverageError::Lower`] for unresolvable atoms.
    pub fn vacuous(&mut self, g: &Formula) -> Result<bool, CoverageError> {
        let init = self.mc.fsm().init().clone();
        let g = g.normalize();
        self.vacuous_rec(&init, &g)
    }

    fn vacuous_rec(&mut self, s0: &Func, g: &Formula) -> Result<bool, CoverageError> {
        match g {
            Formula::Prop(_) => Ok(false),
            Formula::Implies(b, f) => {
                let fsm = self.mc.fsm();
                let tb = fsm.signals().lower(fsm.manager(), b)?;
                let trigger = s0.and(&tb);
                if trigger.is_false() {
                    return Ok(true);
                }
                self.vacuous_rec(&trigger, f)
            }
            Formula::Ax(f) => {
                let s = self.mc.fsm().image(s0);
                self.vacuous_rec(&s, f)
            }
            Formula::Ag(f) => {
                let s = self.mc.fsm().reachable_from(s0);
                self.vacuous_rec(&s, f)
            }
            Formula::Au(f1, f2) => {
                let trav = self.traverse(s0, f1, f2)?;
                let left = self.vacuous_rec(&trav, f1)?;
                let first = self.firstreached(s0, f2)?;
                let right = self.vacuous_rec(&first, f2)?;
                Ok(left || right)
            }
            Formula::And(f1, f2) => {
                let left = self.vacuous_rec(s0, f1)?;
                let right = self.vacuous_rec(s0, f2)?;
                Ok(left || right)
            }
            Formula::Af(_) => unreachable!("normalize() removes AF"),
        }
    }

    /// Satisfaction set of an acceptable-subset formula (delegates to the
    /// model checker, sharing its memo table).
    fn sat(&mut self, f: &Formula) -> Result<Func, CoverageError> {
        let ctl: Ctl = f.into();
        Ok(self.mc.sat(&ctl)?)
    }

    /// Verifies `g` from the initial states.
    ///
    /// # Errors
    ///
    /// Returns [`CoverageError::Lower`] for unresolvable atoms.
    pub fn verify(&mut self, g: &Formula) -> Result<bool, CoverageError> {
        let ctl: Ctl = g.into();
        Ok(self.mc.holds(&ctl)?)
    }
}

/// Computes the single-change interpretations of an observed signal:
/// its complement for boolean signals, one bit-complemented copy per bit
/// for numeric signals.
///
/// # Errors
///
/// Returns [`CoverageError::UnknownObserved`] if the signal is not
/// defined on the machine.
pub(crate) fn flip_variants_of(
    fsm: &SymbolicFsm,
    observed: &str,
) -> Result<Vec<SignalValue>, CoverageError> {
    match fsm.signals().get(observed).cloned() {
        Some(SignalValue::Bool(r)) => Ok(vec![SignalValue::Bool(r.not())]),
        Some(SignalValue::Num(sig)) => Ok((0..sig.bits.len())
            .map(|i| {
                let mut flipped = sig.clone();
                flipped.bits[i] = sig.bits[i].not();
                SignalValue::Num(flipped)
            })
            .collect()),
        None => Err(CoverageError::UnknownObserved(observed.to_owned())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use covest_bdd::BddManager;
    use covest_ctl::parse_formula;
    use covest_fsm::Stg;

    fn f(s: &str) -> Formula {
        parse_formula(s).expect(s)
    }

    #[test]
    fn broken_figure1_variant_fails_verification() {
        // Same shape as Figure 1 but with q missing on one of the 2-step
        // successors: verification must fail, confirming that coverage is
        // only meaningful after a successful check.
        let mgr = BddManager::new();
        let mut stg = Stg::new("figure1broken");
        stg.add_states(7);
        stg.add_path(&[0, 1, 2]);
        stg.add_path(&[0, 3, 4]); // state 4 lacks q
        stg.add_edge(2, 5);
        stg.add_edge(4, 5);
        stg.add_edge(5, 6);
        stg.add_edge(6, 5);
        stg.mark_initial(0);
        stg.label(0, "p1");
        stg.label(2, "q");
        stg.label(6, "q");
        let fsm = stg.compile(&mgr).expect("compiles");
        let prop = f("AG (p1 -> AX AX q)");
        let mut cs = CoveredSets::new(&fsm, "q").expect("q exists");
        assert!(!cs.verify(&prop).expect("verifies"));
    }

    /// Figure 1 variant where the property holds: both 2-step successors
    /// of the p1-state carry q, a third q state is incidental.
    fn figure1_ok(mgr: &BddManager) -> (Stg, SymbolicFsm) {
        let mut stg = Stg::new("figure1ok");
        stg.add_states(7);
        stg.add_path(&[0, 1, 2]);
        stg.add_path(&[0, 3, 4]);
        stg.add_edge(2, 5);
        stg.add_edge(4, 5);
        stg.add_edge(5, 6);
        stg.add_edge(6, 5);
        stg.mark_initial(0);
        stg.label(0, "p1");
        stg.label(2, "q");
        stg.label(4, "q");
        stg.label(6, "q");
        (stg.clone(), stg.compile(mgr).expect("compiles"))
    }

    #[test]
    fn figure1_covered_states_are_the_ax_ax_targets() {
        let mgr = BddManager::new();
        let (stg, fsm) = figure1_ok(&mgr);
        let prop = f("AG (p1 -> AX AX q)");
        let mut cs = CoveredSets::new(&fsm, "q").expect("q exists");
        assert!(cs.verify(&prop).expect("verifies"));
        let covered = cs.covered_from_init(&prop).expect("covered");
        let s2 = stg.state_fn(&fsm, 2);
        let s4 = stg.state_fn(&fsm, 4);
        assert_eq!(covered, s2.or(&s4), "exactly the demanded q-states");
        // State 6's q is incidental: not covered.
        let s6 = stg.state_fn(&fsm, 6);
        assert!(covered.and(&s6).is_false());
    }

    /// Figure 2: chain of p1 states ending in the first q state.
    fn figure2(mgr: &BddManager) -> (Stg, SymbolicFsm) {
        let mut stg = Stg::new("figure2");
        stg.add_states(6);
        stg.add_path(&[0, 1, 2, 3, 4, 5]);
        stg.add_edge(5, 5);
        stg.mark_initial(0);
        for s in 0..4 {
            stg.label(s, "p1");
        }
        stg.label(4, "q");
        stg.label(5, "q");
        (stg.clone(), stg.compile(mgr).expect("compiles"))
    }

    #[test]
    fn figure2_until_covers_first_q_and_p1_prefix() {
        let mgr = BddManager::new();
        let (stg, fsm) = figure2(&mgr);
        let prop = f("A[p1 U q]");
        let mut cs = CoveredSets::new(&fsm, "q").expect("q exists");
        assert!(cs.verify(&prop).expect("verifies"));
        let covered = cs.covered_from_init(&prop).expect("covered");
        // firstreached marks state 4 (the first q state); the traverse
        // part contributes coverage of p1 w.r.t. observed q — but p1 does
        // not mention q, so its depend() is empty. Covered = {4}.
        let s4 = stg.state_fn(&fsm, 4);
        assert_eq!(covered, s4);
    }

    #[test]
    fn figure2_observing_p1_covers_the_prefix() {
        let mgr = BddManager::new();
        let (stg, fsm) = figure2(&mgr);
        let prop = f("A[p1 U q]");
        let mut cs = CoveredSets::new(&fsm, "p1").expect("p1 exists");
        assert!(cs.verify(&prop).expect("verifies"));
        let covered = cs.covered_from_init(&prop).expect("covered");
        // Observing p1: the traverse part covers the p1-prefix 0..=3.
        let mut expect = mgr.constant(false);
        for sid in 0..4 {
            expect = expect.or(&stg.state_fn(&fsm, sid));
        }
        assert_eq!(covered, expect);
    }

    #[test]
    fn implication_restricts_start_states() {
        let mgr = BddManager::new();
        // Two initial states: one with p, one without; q everywhere next.
        let mut stg = Stg::new("imp");
        stg.add_states(4);
        stg.add_edge(0, 2);
        stg.add_edge(1, 3);
        stg.add_edge(2, 2);
        stg.add_edge(3, 3);
        stg.mark_initial(0);
        stg.mark_initial(1);
        stg.label(0, "p");
        stg.label(2, "q");
        stg.label(3, "q");
        let fsm = stg.compile(&mgr).expect("compiles");
        let prop = f("p -> AX q");
        let mut cs = CoveredSets::new(&fsm, "q").expect("q exists");
        assert!(cs.verify(&prop).expect("verifies"));
        let covered = cs.covered_from_init(&prop).expect("covered");
        // Only successor of the p-initial-state is covered: state 2.
        let s2 = stg.state_fn(&fsm, 2);
        assert_eq!(covered, s2);
    }

    #[test]
    fn conjunction_unions_coverage() {
        let mgr = BddManager::new();
        let (stg, fsm) = figure2(&mgr);
        let prop = f("A[p1 U q] & AG (q -> AX q)");
        let mut cs = CoveredSets::new(&fsm, "q").expect("q exists");
        assert!(cs.verify(&prop).expect("verifies"));
        let covered = cs.covered_from_init(&prop).expect("covered");
        // First conjunct covers state 4; second covers successors of
        // q-states reachable: states 5 (from 4) and 5 (self-loop).
        let s4 = stg.state_fn(&fsm, 4);
        let s5 = stg.state_fn(&fsm, 5);
        assert_eq!(covered, s4.or(&s5));
    }

    #[test]
    fn depend_ignores_insensitive_states() {
        let mgr = BddManager::new();
        let (_, fsm) = figure2(&mgr);
        let mut cs = CoveredSets::new(&fsm, "q").expect("q exists");
        // b = q | p1 : in states where p1 holds, q's value is irrelevant.
        let b = PropExpr::atom("q").or(PropExpr::atom("p1"));
        let d = cs.depend(&b).expect("lowers");
        // Depend = states where b true AND flipping q falsifies it
        // = (q ∨ p1) ∧ ¬(¬q ∨ p1) = q ∧ ¬p1.
        let fsm_sigs = fsm.signals();
        let q = match fsm_sigs.get("q") {
            Some(SignalValue::Bool(r)) => r.clone(),
            _ => unreachable!(),
        };
        let p1 = match fsm_sigs.get("p1") {
            Some(SignalValue::Bool(r)) => r.clone(),
            _ => unreachable!(),
        };
        assert_eq!(d, q.and(&p1.not()));
    }

    #[test]
    fn observed_signal_validation() {
        let mgr = BddManager::new();
        let (_, fsm) = figure2(&mgr);
        assert!(matches!(
            CoveredSets::new(&fsm, "zzz").unwrap_err(),
            CoverageError::UnknownObserved(_)
        ));
    }

    #[test]
    fn vacuity_detection() {
        let mgr = BddManager::new();
        let (_, fsm) = figure2(&mgr);
        let mut cs = CoveredSets::new(&fsm, "q").expect("q exists");
        // p1 & q is unreachable before state 4... actually state 4 has
        // q but not p1 in this fixture, so `p1 & q` never holds.
        let vac = f("AG (p1 & q -> AX q)");
        assert!(cs.verify(&vac).expect("verifies"));
        assert!(cs.vacuous(&vac).expect("checks"), "never triggers");
        let cov = cs.covered_from_init(&vac).expect("covers");
        assert!(cov.is_false(), "vacuous properties cover nothing");
        // A triggering implication is not vacuous.
        let real = f("AG (p1 -> !q)");
        assert!(!cs.vacuous(&real).expect("checks"));
        // Propositional formulas are never flagged.
        assert!(!cs.vacuous(&f("!q")).expect("checks"));
        // Nested: outer triggers, inner does not.
        let nested = f("AG (p1 -> AX (q -> AX q))");
        let nested_vac = cs.vacuous(&nested).expect("checks");
        // Successors of p1-states include state 4 (q holds) → triggers.
        assert!(!nested_vac);
    }

    #[test]
    fn af_normalizes_into_until_coverage() {
        let mgr = BddManager::new();
        let (stg, fsm) = figure2(&mgr);
        let prop = f("AF q");
        let mut cs = CoveredSets::new(&fsm, "q").expect("q exists");
        assert!(cs.verify(&prop).expect("verifies"));
        let covered = cs.covered_from_init(&prop).expect("covered");
        let s4 = stg.state_fn(&fsm, 4);
        assert_eq!(covered, s4, "AF q behaves like A[TRUE U q]");
    }
}
