//! Table-2-style reporting, plus the machine-readable JSON rendering
//! batch consumers use.
//!
//! The paper's experimental section reports, per observed signal: the
//! number of verified properties, the coverage percentage, and the BDD
//! node count and runtime of verification vs. coverage estimation. This
//! module renders [`CoverageAnalysis`] values in the same layout, and —
//! for the `--json` front-ends — as line-oriented JSON with one row per
//! line, deterministic fields first and timing fields last.

use std::fmt;
use std::fmt::Write as _;
use std::time::Duration;

use crate::estimator::CoverageAnalysis;

/// Renders `s` as a JSON string literal, escaping per RFC 8259 (`"`,
/// `\`, and control characters as `\uXXXX`/short escapes). Rust's
/// `{:?}` is *not* a substitute — its `\u{7f}` brace form is invalid
/// JSON — so every string the JSON renderers emit goes through here.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// One property's outcome inside a report row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropertyVerdict {
    /// The property, rendered (parseable by `covest-ctl`).
    pub formula: String,
    /// Whether the model satisfies it.
    pub holds: bool,
    /// Whether it passes only vacuously (see
    /// [`crate::PropertyResult::vacuous`]).
    pub vacuous: bool,
}

/// One row of a Table-2-style report.
#[derive(Debug, Clone)]
pub struct ReportRow {
    /// Circuit name (e.g. "Circuit 1 (priority buffer)").
    pub circuit: String,
    /// Observed signal.
    pub signal: String,
    /// Number of properties in the suite.
    pub num_properties: usize,
    /// Coverage percentage.
    pub percent: f64,
    /// Number of covered states.
    pub covered_states: f64,
    /// Number of states in the coverage space.
    pub space_states: f64,
    /// Per-property verdicts, in suite order.
    pub verdicts: Vec<PropertyVerdict>,
    /// Canonical sample of uncovered states (named bit assignments, in
    /// the deterministic declaration-order enumeration — see
    /// [`crate::CoverageEstimator::uncovered_states`]). Filled by the
    /// front-ends; empty when not sampled.
    pub uncovered_sample: Vec<Vec<(String, bool)>>,
    /// BDD table size after verification.
    pub verify_nodes: usize,
    /// Verification wall-clock time.
    pub verify_time: Duration,
    /// BDD table size after coverage estimation.
    pub coverage_nodes: usize,
    /// Coverage-estimation wall-clock time.
    pub coverage_time: Duration,
}

impl ReportRow {
    /// Builds a row from an analysis (the uncovered sample starts empty;
    /// use [`ReportRow::with_uncovered_sample`] to attach one).
    pub fn from_analysis(circuit: impl Into<String>, a: &CoverageAnalysis) -> Self {
        ReportRow {
            circuit: circuit.into(),
            signal: a.observed.clone(),
            num_properties: a.properties.len(),
            percent: a.percent(),
            covered_states: a.covered_count,
            space_states: a.space_count,
            verdicts: a
                .properties
                .iter()
                .map(|p| PropertyVerdict {
                    formula: p.formula.to_string(),
                    holds: p.holds,
                    vacuous: p.vacuous,
                })
                .collect(),
            uncovered_sample: Vec::new(),
            verify_nodes: a.verify_nodes,
            verify_time: a.verify_time,
            coverage_nodes: a.coverage_nodes,
            coverage_time: a.coverage_time,
        }
    }

    /// Attaches a canonical uncovered-state sample.
    pub fn with_uncovered_sample(mut self, sample: Vec<Vec<(String, bool)>>) -> Self {
        self.uncovered_sample = sample;
        self
    }

    /// `true` if every property in the row's suite holds.
    pub fn all_hold(&self) -> bool {
        self.verdicts.iter().all(|v| v.holds)
    }

    /// Renders one uncovered state as the CLI does: `a=0 b=1 …`.
    pub fn render_state(state: &[(String, bool)]) -> String {
        state
            .iter()
            .map(|(name, v)| format!("{name}={}", u8::from(*v)))
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// The row as one JSON object on a single line. Deterministic fields
    /// (identity, percentages, verdicts, uncovered sample) come first;
    /// run-dependent fields (node counts, milliseconds) come last, so
    /// diff-based parity checks can strip them by suffix.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"circuit\": {}, \"signal\": {}, \"num_properties\": {}, \
             \"percent\": {}, \"covered_states\": {}, \"space_states\": {}",
            json_string(&self.circuit),
            json_string(&self.signal),
            self.num_properties,
            self.percent,
            self.covered_states,
            self.space_states
        );
        out.push_str(", \"properties\": [");
        for (i, v) in self.verdicts.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{\"formula\": {}, \"holds\": {}, \"vacuous\": {}}}",
                json_string(&v.formula),
                v.holds,
                v.vacuous
            );
        }
        out.push_str("], \"uncovered\": [");
        for (i, s) in self.uncovered_sample.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_string(&Self::render_state(s)));
        }
        let _ = write!(
            out,
            "], \"verify_nodes\": {}, \"coverage_nodes\": {}, \
             \"verify_ms\": {:.3}, \"coverage_ms\": {:.3}}}",
            self.verify_nodes,
            self.coverage_nodes,
            self.verify_time.as_secs_f64() * 1e3,
            self.coverage_time.as_secs_f64() * 1e3
        );
        out
    }
}

/// A collection of rows rendered like the paper's Table 2 (or as JSON).
#[derive(Debug, Clone, Default)]
pub struct CoverageTable {
    rows: Vec<ReportRow>,
}

impl CoverageTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a row.
    pub fn push(&mut self, row: ReportRow) {
        self.rows.push(row);
    }

    /// The rows in insertion order.
    pub fn rows(&self) -> &[ReportRow] {
        &self.rows
    }

    /// The whole table as a JSON document, one row object per line:
    ///
    /// ```json
    /// {
    ///   "rows": [
    ///     {"circuit": "...", "signal": "...", ...},
    ///     ...
    ///   ]
    /// }
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"rows\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            out.push_str("    ");
            out.push_str(&r.to_json());
            out.push_str(if i + 1 == self.rows.len() {
                "\n"
            } else {
                ",\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn fmt_nodes(n: usize) -> String {
    if n >= 1000 {
        format!("{}k", n / 1000)
    } else {
        n.to_string()
    }
}

impl fmt::Display for CoverageTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<28} {:<10} {:>6} {:>8} {:>16} {:>16}",
            "Circuit", "Signal", "#Prop", "%COV", "Verification", "Coverage"
        )?;
        writeln!(
            f,
            "{:<28} {:<10} {:>6} {:>8} {:>16} {:>16}",
            "", "", "", "", "BDDs - time", "BDDs - time"
        )?;
        let mut last_circuit = None;
        for r in &self.rows {
            let circuit = if last_circuit == Some(&r.circuit) {
                String::new()
            } else {
                r.circuit.clone()
            };
            writeln!(
                f,
                "{:<28} {:<10} {:>6} {:>8.2} {:>16} {:>16}",
                circuit,
                r.signal,
                r.num_properties,
                r.percent,
                format!("{} - {:.2?}", fmt_nodes(r.verify_nodes), r.verify_time),
                format!("{} - {:.2?}", fmt_nodes(r.coverage_nodes), r.coverage_time),
            )?;
            last_circuit = Some(&r.circuit);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(circuit: &str, signal: &str, pct: f64) -> ReportRow {
        ReportRow {
            circuit: circuit.to_owned(),
            signal: signal.to_owned(),
            num_properties: 5,
            percent: pct,
            covered_states: 120.0,
            space_states: 144.0,
            verdicts: vec![PropertyVerdict {
                formula: "AG (p -> AX q)".to_owned(),
                holds: true,
                vacuous: false,
            }],
            uncovered_sample: vec![vec![("a".to_owned(), false), ("b".to_owned(), true)]],
            verify_nodes: 124_000,
            verify_time: Duration::from_millis(59_280),
            coverage_nodes: 150_000,
            coverage_time: Duration::from_millis(60_410),
        }
    }

    #[test]
    fn table_renders_rows_with_headers() {
        let mut t = CoverageTable::new();
        t.push(row("Circuit 1 (priority buffer)", "hi-pri", 100.0));
        t.push(row("Circuit 1 (priority buffer)", "lo-pri", 99.98));
        let s = t.to_string();
        assert!(s.contains("%COV"));
        assert!(s.contains("hi-pri"));
        assert!(s.contains("99.98"));
        assert!(s.contains("124k"));
        // Circuit name shown once per group.
        assert_eq!(s.matches("Circuit 1").count(), 1);
    }

    #[test]
    fn small_node_counts_not_abbreviated() {
        assert_eq!(fmt_nodes(999), "999");
        assert_eq!(fmt_nodes(26_000), "26k");
    }

    #[test]
    fn json_rendering_is_line_oriented_with_timings_last() {
        let mut t = CoverageTable::new();
        t.push(row("Circuit 2 (circular queue)", "wrap", 60.08));
        let json = t.to_json();
        assert!(json.starts_with("{\n  \"rows\": [\n"));
        assert!(json.ends_with("  ]\n}\n"));
        // One row object per line.
        let row_lines: Vec<&str> = json
            .lines()
            .filter(|l| l.trim_start().starts_with('{'))
            .collect();
        assert_eq!(row_lines.len(), 2); // document brace + one row
        let line = row_lines[1];
        assert!(line.contains("\"signal\": \"wrap\""));
        assert!(line.contains("\"percent\": 60.08"));
        assert!(line.contains("\"formula\": \"AG (p -> AX q)\""));
        assert!(line.contains("\"uncovered\": [\"a=0 b=1\"]"));
        // Timing fields come after every deterministic field.
        let t_pos = line.find("\"verify_ms\"").expect("has timings");
        for key in ["\"percent\"", "\"properties\"", "\"uncovered\""] {
            assert!(line.find(key).expect(key) < t_pos, "{key} after timings");
        }
    }

    #[test]
    fn json_string_escapes_per_rfc8259() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), r#""a\"b\\c""#);
        assert_eq!(json_string("tab\there"), "\"tab\\there\"");
        // Control characters take the four-digit form, not Rust's
        // brace-delimited `\u{7}` debug escape.
        assert_eq!(json_string("\u{7}"), "\"\\u0007\"");
        assert!(!json_string("\u{7}").contains('{'));
    }

    #[test]
    fn render_state_formats_bits() {
        assert_eq!(
            ReportRow::render_state(&[("x".to_owned(), true), ("y".to_owned(), false)]),
            "x=1 y=0"
        );
    }

    #[test]
    fn all_hold_reflects_verdicts() {
        let mut r = row("c", "s", 1.0);
        assert!(r.all_hold());
        r.verdicts[0].holds = false;
        assert!(!r.all_hold());
    }
}
