//! Table-2-style reporting.
//!
//! The paper's experimental section reports, per observed signal: the
//! number of verified properties, the coverage percentage, and the BDD
//! node count and runtime of verification vs. coverage estimation. This
//! module renders [`CoverageAnalysis`] values in the same layout.

use std::fmt;
use std::time::Duration;

use crate::estimator::CoverageAnalysis;

/// One row of a Table-2-style report.
#[derive(Debug, Clone)]
pub struct ReportRow {
    /// Circuit name (e.g. "Circuit 1 (priority buffer)").
    pub circuit: String,
    /// Observed signal.
    pub signal: String,
    /// Number of properties in the suite.
    pub num_properties: usize,
    /// Coverage percentage.
    pub percent: f64,
    /// BDD table size after verification.
    pub verify_nodes: usize,
    /// Verification wall-clock time.
    pub verify_time: Duration,
    /// BDD table size after coverage estimation.
    pub coverage_nodes: usize,
    /// Coverage-estimation wall-clock time.
    pub coverage_time: Duration,
}

impl ReportRow {
    /// Builds a row from an analysis.
    pub fn from_analysis(circuit: impl Into<String>, a: &CoverageAnalysis) -> Self {
        ReportRow {
            circuit: circuit.into(),
            signal: a.observed.clone(),
            num_properties: a.properties.len(),
            percent: a.percent(),
            verify_nodes: a.verify_nodes,
            verify_time: a.verify_time,
            coverage_nodes: a.coverage_nodes,
            coverage_time: a.coverage_time,
        }
    }
}

/// A collection of rows rendered like the paper's Table 2.
#[derive(Debug, Clone, Default)]
pub struct CoverageTable {
    rows: Vec<ReportRow>,
}

impl CoverageTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a row.
    pub fn push(&mut self, row: ReportRow) {
        self.rows.push(row);
    }

    /// The rows in insertion order.
    pub fn rows(&self) -> &[ReportRow] {
        &self.rows
    }
}

fn fmt_nodes(n: usize) -> String {
    if n >= 1000 {
        format!("{}k", n / 1000)
    } else {
        n.to_string()
    }
}

impl fmt::Display for CoverageTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<28} {:<10} {:>6} {:>8} {:>16} {:>16}",
            "Circuit", "Signal", "#Prop", "%COV", "Verification", "Coverage"
        )?;
        writeln!(
            f,
            "{:<28} {:<10} {:>6} {:>8} {:>16} {:>16}",
            "", "", "", "", "BDDs - time", "BDDs - time"
        )?;
        let mut last_circuit = None;
        for r in &self.rows {
            let circuit = if last_circuit == Some(&r.circuit) {
                String::new()
            } else {
                r.circuit.clone()
            };
            writeln!(
                f,
                "{:<28} {:<10} {:>6} {:>8.2} {:>16} {:>16}",
                circuit,
                r.signal,
                r.num_properties,
                r.percent,
                format!("{} - {:.2?}", fmt_nodes(r.verify_nodes), r.verify_time),
                format!("{} - {:.2?}", fmt_nodes(r.coverage_nodes), r.coverage_time),
            )?;
            last_circuit = Some(&r.circuit);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(circuit: &str, signal: &str, pct: f64) -> ReportRow {
        ReportRow {
            circuit: circuit.to_owned(),
            signal: signal.to_owned(),
            num_properties: 5,
            percent: pct,
            verify_nodes: 124_000,
            verify_time: Duration::from_millis(59_280),
            coverage_nodes: 150_000,
            coverage_time: Duration::from_millis(60_410),
        }
    }

    #[test]
    fn table_renders_rows_with_headers() {
        let mut t = CoverageTable::new();
        t.push(row("Circuit 1 (priority buffer)", "hi-pri", 100.0));
        t.push(row("Circuit 1 (priority buffer)", "lo-pri", 99.98));
        let s = t.to_string();
        assert!(s.contains("%COV"));
        assert!(s.contains("hi-pri"));
        assert!(s.contains("99.98"));
        assert!(s.contains("124k"));
        // Circuit name shown once per group.
        assert_eq!(s.matches("Circuit 1").count(), 1);
    }

    #[test]
    fn small_node_counts_not_abbreviated() {
        assert_eq!(fmt_nodes(999), "999");
        assert_eq!(fmt_nodes(26_000), "26k");
    }
}
