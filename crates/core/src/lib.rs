//! # covest-core
//!
//! The primary contribution of the DAC'99 paper *"Coverage Estimation for
//! Symbolic Model Checking"* (Hoskote, Kam, Ho, Zhao): a coverage metric
//! for formally verified properties, and the symbolic algorithm that
//! computes it.
//!
//! Given a machine `M`, an *observed signal* `q`, and a property suite in
//! the acceptable ACTL subset, the estimator computes the set of reachable
//! states in which the value of `q` is actually constrained by the
//! verified properties — the **covered set** — and reports coverage as the
//! fraction of reachable states covered (Definition 4).
//!
//! - [`CoveredSets`]: the recursive Table-1 algorithm (`depend`,
//!   `traverse`, `firstreached`, `C(S0, g)`), whose output equals the
//!   Definition-3 covered set of the observability-transformed formula;
//! - [`CoverageEstimator`] / [`CoverageAnalysis`]: multi-property,
//!   multi-signal analysis with don't-cares (Section 4.2), fairness
//!   (Section 4.3), uncovered-state listing and traces to uncovered
//!   states (Section 3);
//! - [`reference_covered_set`]: the brute-force dual-FSM implementation
//!   of Definition 3 — ground truth for tests and the ablation baseline;
//! - [`CoverageTable`]: Table-2-style reporting.
//!
//! # Example
//!
//! ```
//! use covest_bdd::BddManager;
//! use covest_fsm::Stg;
//! use covest_core::{CoverageEstimator, CoverageOptions};
//! use covest_ctl::parse_formula;
//!
//! // The paper's Figure 2: a chain of p1-states reaching q.
//! let mut stg = Stg::new("figure2");
//! stg.add_states(4);
//! stg.add_path(&[0, 1, 2, 3]);
//! stg.add_edge(3, 3);
//! stg.mark_initial(0);
//! for s in 0..3 { stg.label(s, "p1"); }
//! stg.label(3, "q");
//! let mgr = BddManager::new();
//! let fsm = stg.compile(&mgr)?;
//!
//! let est = CoverageEstimator::new(&fsm);
//! let props = vec![parse_formula("A[p1 U q]").unwrap()];
//! let a = est.analyze("q", &props, &CoverageOptions::default())?;
//! // Exactly the first q-state is covered: 1 of 4 reachable states.
//! assert_eq!(a.percent(), 25.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod covered;
mod error;
mod estimator;
mod reference;
mod report;

pub use covered::CoveredSets;
pub use error::CoverageError;
pub use estimator::{CoverageAnalysis, CoverageEstimator, CoverageOptions, PropertyResult};
pub use reference::{reference_covered_set, ReferenceMode, DEFAULT_STATE_LIMIT};
pub use report::{json_string, CoverageTable, PropertyVerdict, ReportRow};
