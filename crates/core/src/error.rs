//! Error types for coverage estimation.

use std::error::Error;
use std::fmt;

use covest_fsm::LowerError;

/// Errors produced by the coverage estimator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoverageError {
    /// A propositional atom could not be lowered against the model.
    Lower(LowerError),
    /// The observed signal is not defined on the model.
    UnknownObserved(String),
    /// The observed signal is numeric; the paper's duality (Definition 2)
    /// is defined for boolean observed signals. Observe individual bits or
    /// a derived boolean proposition instead.
    ObservedNotBoolean(String),
    /// Coverage was requested for a property the model does not satisfy
    /// (Definition 3 presupposes `M, S_I ⊨ f`).
    PropertyFails(String),
    /// The enumerative reference implementation refused to run because the
    /// reachable state space exceeds its limit.
    StateSpaceTooLarge {
        /// Number of reachable states found.
        reachable: usize,
        /// Configured enumeration limit.
        limit: usize,
    },
}

impl fmt::Display for CoverageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoverageError::Lower(e) => write!(f, "{e}"),
            CoverageError::UnknownObserved(s) => {
                write!(f, "unknown observed signal `{s}`")
            }
            CoverageError::ObservedNotBoolean(s) => {
                write!(
                    f,
                    "observed signal `{s}` is not boolean; observe its bits instead"
                )
            }
            CoverageError::PropertyFails(p) => {
                write!(
                    f,
                    "coverage is defined for verified properties, but `{p}` fails"
                )
            }
            CoverageError::StateSpaceTooLarge { reachable, limit } => {
                write!(
                    f,
                    "reference implementation limited to {limit} states, model has {reachable}"
                )
            }
        }
    }
}

impl Error for CoverageError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoverageError::Lower(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LowerError> for CoverageError {
    fn from(e: LowerError) -> Self {
        CoverageError::Lower(e)
    }
}
