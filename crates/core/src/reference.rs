//! Enumerative reference implementation of the coverage definition.
//!
//! Definition 3 of the paper characterizes the covered set directly: a
//! state `s` is covered iff the *dual FSM* `M̂s` — identical to `M` except
//! that the observed signal's value is complemented in `s` (Definition 2)
//! — violates the property.
//!
//! This module implements that characterization by brute force: enumerate
//! the reachable states, build the dual interpretation for each, and
//! re-run the model checker. It is exponentially slower than the symbolic
//! algorithm of Table 1 (one full model-checking run *per state*), which
//! is exactly why the paper's algorithm matters; here it serves as
//!
//! - the ground truth for differential tests of the Correctness Theorem,
//!   and
//! - the baseline of the `naive_vs_symbolic` ablation benchmark.

use covest_bdd::{Func, VarId};
use covest_ctl::{observability_transform, Ctl, Formula, SignalRef};
use covest_fsm::{SignalValue, SymbolicFsm};
use covest_mc::ModelChecker;

use crate::error::CoverageError;

/// Safety limit on enumerated states.
pub const DEFAULT_STATE_LIMIT: usize = 4096;

/// Which formula the dual-FSM test is applied to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReferenceMode {
    /// Apply Definition 3 to the raw formula (flipping `q` itself). This
    /// is the "faithful application" the paper discusses — and the one
    /// that yields the unintuitive 0% coverage for `A[p1 U q]` (Figure 2).
    Raw,
    /// Apply Definition 3 to the observability-transformed formula
    /// `φ(f)`, flipping the primed copy `q'`. Per the Correctness
    /// Theorem this matches the symbolic algorithm of Table 1.
    Transformed,
}

/// Computes the covered set by per-state dual-FSM model checking.
///
/// `fairness` carries already-lowered fairness state sets, applied to
/// every per-state check.
///
/// # Errors
///
/// - [`CoverageError::UnknownObserved`] / `ObservedNotBoolean` for bad
///   observed signals;
/// - [`CoverageError::PropertyFails`] if `M ⊭ f` (the definition
///   presupposes a verified property);
/// - [`CoverageError::StateSpaceTooLarge`] if the reachable space exceeds
///   `limit` (use the symbolic algorithm instead);
/// - [`CoverageError::Lower`] for unresolvable atoms.
pub fn reference_covered_set(
    fsm: &SymbolicFsm,
    observed: &str,
    formula: &Formula,
    mode: ReferenceMode,
    fairness: &[Func],
    limit: usize,
) -> Result<Func, CoverageError> {
    let mgr = fsm.manager().clone();
    let observed_value = fsm
        .signals()
        .get(observed)
        .cloned()
        .ok_or_else(|| CoverageError::UnknownObserved(observed.to_owned()))?;

    // The property must hold on the original machine.
    let mut mc = ModelChecker::new(fsm);
    for c in fairness {
        mc.add_fairness_set(c.clone());
    }
    let ctl: Ctl = formula.into();
    if !mc.holds(&ctl)? {
        return Err(CoverageError::PropertyFails(formula.to_string()));
    }

    let check_formula: Ctl = match mode {
        ReferenceMode::Raw => ctl,
        ReferenceMode::Transformed => observability_transform(formula, observed),
    };

    // Enumerate reachable states.
    let reach = fsm.reachable();
    let cur = fsm.current_vars();
    let states: Vec<Vec<(VarId, bool)>> = reach.minterms_over(&cur).collect();
    if states.len() > limit {
        return Err(CoverageError::StateSpaceTooLarge {
            reachable: states.len(),
            limit,
        });
    }

    let mut covered = mgr.constant(false);
    for assignment in &states {
        // Characteristic function of this single state.
        let mut cube = mgr.constant(true);
        for &(v, val) in assignment {
            cube = cube.and(&mgr.literal(v, val));
        }
        // Dual interpretations: flip the observed signal on this state.
        // Boolean signals have one flip; numeric signals have one per bit
        // (the paper's multi-signal union semantics applied to the bits).
        let duals: Vec<SignalValue> = match &observed_value {
            SignalValue::Bool(r) => vec![SignalValue::Bool(r.xor(&cube))],
            SignalValue::Num(sig) => (0..sig.bits.len())
                .map(|i| {
                    let mut flipped = sig.clone();
                    flipped.bits[i] = sig.bits[i].xor(&cube);
                    SignalValue::Num(flipped)
                })
                .collect(),
        };
        let pattern = match mode {
            ReferenceMode::Raw => SignalRef::new(observed),
            ReferenceMode::Transformed => SignalRef::primed(observed),
        };
        for dual in duals {
            let mut dual_mc = ModelChecker::new(fsm);
            for c in fairness {
                dual_mc.add_fairness_set(c.clone());
            }
            dual_mc.set_overrides(vec![(pattern.clone(), dual)]);
            if !dual_mc.holds(&check_formula)? {
                covered = covered.or(&cube);
                break;
            }
        }
    }
    Ok(covered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use covest_bdd::BddManager;
    use covest_ctl::parse_formula;
    use covest_fsm::Stg;

    fn f(s: &str) -> Formula {
        parse_formula(s).expect(s)
    }

    /// Figure 2's chain. As drawn in the paper, `p1` also holds in the
    /// first `q` state — that is precisely why the raw Definition 3
    /// yields zero coverage for `A[p1 U q]`.
    fn figure2(mgr: &BddManager) -> (Stg, SymbolicFsm) {
        let mut stg = Stg::new("figure2");
        stg.add_states(6);
        stg.add_path(&[0, 1, 2, 3, 4, 5]);
        stg.add_edge(5, 5);
        stg.mark_initial(0);
        for s in 0..5 {
            stg.label(s, "p1");
        }
        stg.label(4, "q");
        stg.label(5, "q");
        (stg.clone(), stg.compile(mgr).expect("compiles"))
    }

    #[test]
    fn raw_until_coverage_is_zero_as_paper_observes() {
        // Section 2.1: "the coverage for this property will be zero" when
        // Definition 3 is applied without the transformation.
        let mgr = BddManager::new();
        let (_, fsm) = figure2(&mgr);
        let covered = reference_covered_set(
            &fsm,
            "q",
            &f("A[p1 U q]"),
            ReferenceMode::Raw,
            &[],
            DEFAULT_STATE_LIMIT,
        )
        .expect("runs");
        assert!(covered.is_false());
    }

    #[test]
    fn transformed_until_covers_first_q_state() {
        let mgr = BddManager::new();
        let (stg, fsm) = figure2(&mgr);
        let covered = reference_covered_set(
            &fsm,
            "q",
            &f("A[p1 U q]"),
            ReferenceMode::Transformed,
            &[],
            DEFAULT_STATE_LIMIT,
        )
        .expect("runs");
        let s4 = stg.state_fn(&fsm, 4);
        assert_eq!(covered, s4);
    }

    #[test]
    fn unverified_property_is_rejected() {
        let mgr = BddManager::new();
        let (_, fsm) = figure2(&mgr);
        let err = reference_covered_set(
            &fsm,
            "q",
            &f("AG q"),
            ReferenceMode::Raw,
            &[],
            DEFAULT_STATE_LIMIT,
        )
        .unwrap_err();
        assert!(matches!(err, CoverageError::PropertyFails(_)));
    }

    #[test]
    fn state_limit_enforced() {
        let mgr = BddManager::new();
        let (_, fsm) = figure2(&mgr);
        let err = reference_covered_set(&fsm, "q", &f("A[p1 U q]"), ReferenceMode::Raw, &[], 3)
            .unwrap_err();
        assert!(matches!(err, CoverageError::StateSpaceTooLarge { .. }));
    }
}
