//! The user-facing coverage estimator: multi-property analysis,
//! don't-cares, fairness, uncovered-state reporting and traces.
//!
//! This is the workflow of the paper's Section 4: verify a property
//! suite, compute the covered set per property, union them, relate the
//! result to the coverage space (reachable states, restricted to fair
//! paths and excluding user don't-cares), and help the user inspect the
//! holes.

use std::time::Duration;

use covest_bdd::{Func, VarId};
use covest_ctl::{Formula, PropExpr};
use covest_fsm::{SymbolicFsm, Trace};
use covest_mc::ModelChecker;
use covest_telemetry::{self as telemetry, Stopwatch};

use crate::covered::CoveredSets;
use crate::error::CoverageError;

/// Per-property outcome within an analysis.
#[derive(Debug, Clone)]
pub struct PropertyResult {
    /// The property.
    pub formula: Formula,
    /// Whether the model satisfies it.
    pub holds: bool,
    /// Whether the property passes *vacuously*: some implication inside
    /// it never triggers, so it constrains nothing (and covers nothing
    /// there). Usually a specification bug.
    pub vacuous: bool,
    /// Covered set contributed by this property (empty if it fails).
    /// An owned handle: the set stays valid for as long as the result is
    /// held, across any GC or reordering.
    pub covered: Func,
}

/// The result of a coverage analysis for one observed signal.
///
/// The state sets are owned [`Func`] handles, so a finished analysis can
/// be held across further analyses on the same manager — automatic
/// reordering checkpoints inside those later runs cannot invalidate it.
#[derive(Debug, Clone)]
pub struct CoverageAnalysis {
    /// Observed signal name.
    pub observed: String,
    /// Per-property results, in input order.
    pub properties: Vec<PropertyResult>,
    /// Union of covered sets (intersected with the coverage space).
    pub covered: Func,
    /// The coverage space: reachable (fair) states minus don't-cares.
    pub space: Func,
    /// Number of states in `covered`.
    pub covered_count: f64,
    /// Number of states in `space`.
    pub space_count: f64,
    /// Wall-clock time spent verifying the properties.
    pub verify_time: Duration,
    /// BDD table size after verification (paper's "BDDs" column).
    pub verify_nodes: usize,
    /// Wall-clock time spent computing covered sets + the space.
    pub coverage_time: Duration,
    /// BDD table size after coverage estimation.
    pub coverage_nodes: usize,
}

impl CoverageAnalysis {
    /// Coverage percentage per Definition 4.
    ///
    /// An empty coverage space yields 100% (nothing to cover).
    pub fn percent(&self) -> f64 {
        if self.space_count == 0.0 {
            100.0
        } else {
            100.0 * self.covered_count / self.space_count
        }
    }

    /// The uncovered portion of the coverage space.
    pub fn uncovered(&self) -> Func {
        self.space.diff(&self.covered)
    }

    /// `true` if every property in the suite holds.
    pub fn all_hold(&self) -> bool {
        self.properties.iter().all(|p| p.holds)
    }

    /// Properties that pass only vacuously (see
    /// [`PropertyResult::vacuous`]).
    pub fn vacuous_properties(&self) -> Vec<&Formula> {
        self.properties
            .iter()
            .filter(|p| p.vacuous)
            .map(|p| &p.formula)
            .collect()
    }
}

/// Options controlling an analysis.
#[derive(Debug, Clone, Default)]
pub struct CoverageOptions {
    /// Propositional don't-care predicate: states where the observed
    /// signal's value is irrelevant, excluded from the coverage space
    /// (Section 4.2).
    pub dont_cares: Option<PropExpr>,
    /// Fairness constraints (Section 4.3); coverage is then computed over
    /// states reachable along fair paths.
    pub fairness: Vec<PropExpr>,
    /// If `true`, failing properties abort the analysis with
    /// [`CoverageError::PropertyFails`]; if `false` (default), failing
    /// properties contribute no coverage but are reported.
    pub strict: bool,
    /// Cone-of-influence restriction: the state-bit *names* (declaration
    /// order) that span the coverage universe. When set, the covered set
    /// and the space are projected onto these bits (existentially
    /// quantifying everything else) after they are intersected, and
    /// counting/sampling runs over exactly these bits. Projection at that
    /// point is exact — see DESIGN.md "Static deck analysis &
    /// cone-of-influence" for the argument. `None` (default) keeps the
    /// full state-bit universe.
    pub cone: Option<Vec<String>>,
}

/// The coverage estimator for one machine.
///
/// # Examples
///
/// ```
/// use covest_bdd::BddManager;
/// use covest_fsm::Stg;
/// use covest_core::{CoverageEstimator, CoverageOptions};
/// use covest_ctl::parse_formula;
///
/// let mut stg = Stg::new("chain");
/// stg.add_states(4);
/// stg.add_path(&[0, 1, 2, 3]);
/// stg.add_edge(3, 3);
/// stg.mark_initial(0);
/// stg.label(0, "p1");
/// stg.label(1, "p1");
/// stg.label(2, "p1");
/// stg.label(3, "q");
/// let mgr = BddManager::new();
/// let fsm = stg.compile(&mgr)?;
/// let estimator = CoverageEstimator::new(&fsm);
/// let props = vec![parse_formula("A[p1 U q]").unwrap()];
/// let analysis = estimator.analyze("q", &props, &CoverageOptions::default())?;
/// assert!(analysis.all_hold());
/// assert_eq!(analysis.percent(), 25.0); // only the first q-state covered
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct CoverageEstimator<'m> {
    fsm: &'m SymbolicFsm,
}

impl<'m> CoverageEstimator<'m> {
    /// Creates an estimator for `fsm`.
    pub fn new(fsm: &'m SymbolicFsm) -> Self {
        CoverageEstimator { fsm }
    }

    /// Runs the full analysis for `observed` over a property suite.
    ///
    /// Every reachability and CTL fixpoint underneath runs on the
    /// machine's image engine, so the default partitioned method (and
    /// any [`covest_fsm::ImageConfig`] installed with
    /// [`covest_fsm::SymbolicFsm::set_image_config`]) applies to the
    /// whole analysis.
    ///
    /// With [`covest_bdd::ReorderMode::Auto`] configured on the manager,
    /// this method sifts at its phase boundaries via the zero-argument
    /// [`covest_bdd::BddManager::maybe_reduce_heap`]. Every live handle —
    /// this machine, its checker state, and anything else the caller
    /// holds on the same manager — survives automatically; there is no
    /// root set to enumerate and nothing to protect.
    ///
    /// # Errors
    ///
    /// Returns [`CoverageError`] for unknown/non-boolean observed signals,
    /// lowering failures, or (in strict mode) failing properties.
    pub fn analyze(
        &self,
        observed: &str,
        properties: &[Formula],
        options: &CoverageOptions,
    ) -> Result<CoverageAnalysis, CoverageError> {
        let reach = self.prepare();
        self.analyze_prepared(&reach, observed, properties, options)
    }

    /// The machine-wide (signal-independent) prefix of an analysis:
    /// computes the reachable states and installs them as the care set.
    /// Reachability comes first: the reachable set is both the
    /// coverage-space denominator and the don't-care boundary. Per the
    /// configured [`covest_fsm::SimplifyConfig`] it is installed as the
    /// image engine's care set (transition clusters simplified, forward
    /// schedules re-derived) and as the checker's
    /// iterate-simplification boundary, so verification and coverage
    /// both fixpoint over don't-care-simplified BDDs.
    ///
    /// Idempotent (the fixpoint is cached on the machine, the install
    /// compares care handles), so callers that analyze several signals
    /// on one machine — the sharded worker pool — pay for it once and
    /// pass the returned set to each
    /// [`CoverageEstimator::analyze_prepared`] call.
    pub fn prepare(&self) -> Func {
        self.fsm.install_reachable_care()
    }

    /// Runs one signal's analysis on an already-prepared machine:
    /// `reach` must be the set returned by
    /// [`CoverageEstimator::prepare`] on this machine (with the care
    /// set it installed still in place). Everything after this point is
    /// per-signal; [`CoverageEstimator::analyze`] is exactly `prepare`
    /// followed by this.
    ///
    /// # Errors
    ///
    /// See [`CoverageEstimator::analyze`].
    pub fn analyze_prepared(
        &self,
        reach: &Func,
        observed: &str,
        properties: &[Formula],
        options: &CoverageOptions,
    ) -> Result<CoverageAnalysis, CoverageError> {
        let _span = telemetry::span(format!("signal:{observed}"));
        let mgr = self.fsm.manager().clone();
        let reach = reach.clone();
        let mut mc = ModelChecker::new(self.fsm);
        for fair in &options.fairness {
            mc.add_fairness(fair)?;
        }
        mc.set_care(reach.clone());
        let mut cs = CoveredSets::with_checker(mc, observed)?;

        // Phase 1: verification.
        let t0 = Stopwatch::start();
        let verify_span = telemetry::span("verify");
        let mut verdicts = Vec::with_capacity(properties.len());
        for p in properties {
            let holds = cs.verify(p)?;
            if options.strict && !holds {
                return Err(CoverageError::PropertyFails(p.to_string()));
            }
            verdicts.push(holds);
        }
        telemetry::span_field("properties", properties.len() as u64);
        drop(verify_span);
        let verify_time = t0.elapsed();
        let verify_nodes = mgr.table_size();

        // Safe point between the verification and coverage phases: in
        // auto-reorder mode, sift against the live working set — which is
        // exactly the handles still alive (the machine, the covered-set
        // engine with its memoized satisfaction sets, and the caller's).
        mgr.maybe_reduce_heap();

        // Phase 2: covered sets + coverage space.
        let t1 = Stopwatch::start();
        let coverage_span = telemetry::span("coverage");
        let mut property_results = Vec::with_capacity(properties.len());
        let mut covered = mgr.constant(false);
        for (p, &holds) in properties.iter().zip(&verdicts) {
            let c = if holds {
                cs.covered_from_init(p)?
            } else {
                mgr.constant(false)
            };
            let vacuous = holds && cs.vacuous(p)?;
            covered = covered.or(&c);
            property_results.push(PropertyResult {
                formula: p.clone(),
                holds,
                vacuous,
                covered: c,
            });
        }

        let fair = cs.checker_mut().fair_states();
        let mut space = reach.and(&fair);
        if let Some(dc) = &options.dont_cares {
            let dcf = self.fsm.signals().lower(&mgr, dc)?;
            space = space.diff(&dcf);
        }
        let covered = covered.and(&space);
        // Cone-of-influence restriction: project *after* intersecting the
        // covered set with the space — `covered` is then a cone predicate
        // conjoined with `space`, which makes ∃-projection exact (the
        // uncovered set derived from the projected pair equals the
        // projection of the full uncovered set; DESIGN.md).
        let (covered, space) = if let Some(bits) = &options.cone {
            let keep: std::collections::HashSet<&str> = bits.iter().map(String::as_str).collect();
            let outside: Vec<VarId> = self
                .fsm
                .state_bits()
                .iter()
                .filter(|b| !keep.contains(b.name.as_str()))
                .map(|b| b.current)
                .collect();
            (covered.exists(&outside), space.exists(&outside))
        } else {
            (covered, space)
        };
        // Deterministic coverage-span payload: BDD sizes of the two
        // result sets, pure functions of (deck source, config) like the
        // counters — gathered only under a recorder, since node_count is
        // a traversal.
        if telemetry::is_active() {
            telemetry::span_field("covered_nodes", covered.node_count() as u64);
            telemetry::span_field("space_nodes", space.node_count() as u64);
        }
        drop(coverage_span);
        let coverage_time = t1.elapsed();
        let coverage_nodes = mgr.table_size();

        mgr.maybe_reduce_heap();

        let vars = self.state_universe(&covered, &space, options.cone.as_deref());
        let covered_count = covered.sat_count_over(&vars);
        let space_count = space.sat_count_over(&vars);

        Ok(CoverageAnalysis {
            observed: observed.to_owned(),
            properties: property_results,
            covered,
            space,
            covered_count,
            space_count,
            verify_time,
            verify_nodes,
            coverage_time,
            coverage_nodes,
        })
    }

    /// Analyzes one property suite against **several observed signals at
    /// once**, returning a single analysis whose covered set is the union
    /// of the per-signal covered sets — the paper's Section 2 semantics
    /// for properties with multiple observable signals.
    ///
    /// # Errors
    ///
    /// See [`CoverageEstimator::analyze`].
    pub fn analyze_union(
        &self,
        observed: &[&str],
        properties: &[Formula],
        options: &CoverageOptions,
    ) -> Result<CoverageAnalysis, CoverageError> {
        assert!(!observed.is_empty(), "need at least one observed signal");
        let suites: Vec<(&str, Vec<Formula>)> = observed
            .iter()
            .map(|&sig| (sig, properties.to_vec()))
            .collect();
        let mut analyses = self.analyze_signals(&suites, options)?;
        // The analyses hold their sets as owned handles, so merging after
        // any number of intervening reorder checkpoints is sound.
        let mut merged = analyses.pop().expect("nonempty");
        for a in &analyses {
            merged.covered = merged.covered.or(&a.covered);
            for (mine, theirs) in merged.properties.iter_mut().zip(&a.properties) {
                mine.covered = mine.covered.or(&theirs.covered);
                mine.holds &= theirs.holds;
            }
        }
        let vars = self.state_universe(&merged.covered, &merged.space, options.cone.as_deref());
        merged.covered_count = merged.covered.sat_count_over(&vars);
        merged.observed = observed.join("+");
        Ok(merged)
    }

    /// Analyzes several observed signals over their own property suites
    /// and returns the per-signal analyses in input order.
    ///
    /// Completed analyses survive the later calls' automatic-reorder
    /// collection points by ownership alone — the old protect/unprotect
    /// bracketing around this loop is gone with the roots contract.
    ///
    /// # Errors
    ///
    /// See [`CoverageEstimator::analyze`].
    pub fn analyze_signals(
        &self,
        suites: &[(&str, Vec<Formula>)],
        options: &CoverageOptions,
    ) -> Result<Vec<CoverageAnalysis>, CoverageError> {
        let mut analyses = Vec::with_capacity(suites.len());
        for (sig, props) in suites {
            analyses.push(self.analyze(sig, props, options)?);
        }
        Ok(analyses)
    }

    /// Samples up to `limit` states of `set` as *canonical* minterms
    /// over an explicit variable universe (a cone-restricted analysis
    /// samples over the cone bits only): the lexicographically smallest
    /// assignments with respect to `vars`' order — for state sets, the
    /// machine's **declaration order** (false before true) — extracted
    /// by a cofactor walk and returned in ascending order.
    ///
    /// The sample is a pure function of the state set and the universe
    /// order — independent of the manager's variable order, reordering
    /// history, or which manager the set was computed on — so sequential
    /// and parallel runs print byte-identical reports.
    fn canonical_minterms_over(
        &self,
        set: &Func,
        vars: &[VarId],
        limit: usize,
    ) -> Vec<Vec<(VarId, bool)>> {
        let mgr = self.fsm.manager();
        // When the caller wants the whole set, lazy enumeration plus a
        // sort beats the one-BDD-diff-per-state walk below (which would
        // be quadratic in the set size) and yields the same canonical
        // declaration-order listing.
        if limit as f64 >= set.sat_count_over(vars) {
            let mut all: Vec<Vec<(VarId, bool)>> = set.minterms_over(vars).collect();
            all.sort_by(|a, b| {
                let key = |m: &[(VarId, bool)]| m.iter().map(|&(_, v)| v).collect::<Vec<_>>();
                key(a).cmp(&key(b))
            });
            return all;
        }
        let mut rest = set.clone();
        let mut out = Vec::new();
        while out.len() < limit && !rest.is_false() {
            let mut cube_f = mgr.constant(true);
            let mut cube = Vec::with_capacity(vars.len());
            let mut cur = rest.clone();
            for &v in vars {
                let lo = cur.cofactor(v, false);
                let (val, next) = if lo.is_false() {
                    (true, cur.cofactor(v, true))
                } else {
                    (false, lo)
                };
                cube.push((v, val));
                cube_f = cube_f.and(&mgr.literal(v, val));
                cur = next;
            }
            rest = rest.diff(&cube_f);
            out.push(cube);
        }
        out
    }

    /// Lists up to `limit` states of an arbitrary state set (over current
    /// variables) as named bit assignments, in the canonical
    /// declaration-order lexicographic order (see
    /// [`CoverageEstimator::uncovered_states`] for the determinism
    /// contract). This is the entry point the parallel front-end uses
    /// after importing an uncovered set from a worker.
    pub fn sample_states(&self, set: &Func, limit: usize) -> Vec<Vec<(String, bool)>> {
        self.sample_states_over(set, &self.fsm.current_vars(), limit)
    }

    /// [`CoverageEstimator::sample_states`] over an explicit variable
    /// universe (see [`CoverageEstimator::universe`]); a cone-restricted
    /// analysis samples its sets over the cone bits only.
    pub fn sample_states_over(
        &self,
        set: &Func,
        vars: &[VarId],
        limit: usize,
    ) -> Vec<Vec<(String, bool)>> {
        self.canonical_minterms_over(set, vars, limit)
            .into_iter()
            .map(|m| {
                m.into_iter()
                    .map(|(v, val)| (self.bit_name(v).to_owned(), val))
                    .collect()
            })
            .collect()
    }

    /// The counting/sampling universe selected by an optional cone of
    /// state-bit names: the matching current-state [`VarId`]s in
    /// declaration order, or every state bit for `None`.
    ///
    /// # Panics
    ///
    /// Panics if a cone name does not name a state bit of this machine.
    pub fn universe(&self, cone: Option<&[String]>) -> Vec<VarId> {
        match cone {
            None => self.fsm.current_vars(),
            Some(bits) => {
                let vars: Vec<VarId> = self
                    .fsm
                    .state_bits()
                    .iter()
                    .filter(|b| bits.contains(&b.name))
                    .map(|b| b.current)
                    .collect();
                assert_eq!(
                    vars.len(),
                    bits.len(),
                    "every cone entry must name a distinct state bit"
                );
                vars
            }
        }
    }

    /// Lists up to `limit` uncovered states as named bit assignments.
    ///
    /// The sample is deterministic: states come out sorted by their bit
    /// values in declaration order (false < true), regardless of the
    /// current variable order or any reordering history — so two runs
    /// that agree on the uncovered *set* (e.g. a sequential and a
    /// parallel analysis) produce diff-identical listings.
    pub fn uncovered_states(
        &self,
        analysis: &CoverageAnalysis,
        limit: usize,
    ) -> Vec<Vec<(String, bool)>> {
        self.sample_states(&analysis.uncovered(), limit)
    }

    /// Generates shortest traces from the initial states to up to
    /// `limit` states of `set`, targeting the same canonical state
    /// sample as [`CoverageEstimator::sample_states`].
    pub fn traces_to_states(&self, set: &Func, limit: usize) -> Vec<Trace> {
        self.traces_to_states_over(set, &self.fsm.current_vars(), limit)
    }

    /// [`CoverageEstimator::traces_to_states`] over an explicit variable
    /// universe: traces target the canonical sample over `vars` (for a
    /// cone-restricted set, any reachable completion of the cone cube).
    pub fn traces_to_states_over(&self, set: &Func, vars: &[VarId], limit: usize) -> Vec<Trace> {
        let mgr = self.fsm.manager();
        let mut traces = Vec::new();
        for t in self.canonical_minterms_over(set, vars, limit) {
            let mut cube = mgr.constant(true);
            for (v, val) in t {
                cube = cube.and(&mgr.literal(v, val));
            }
            if let Some(trace) = self.fsm.trace_to(&cube) {
                traces.push(trace);
            }
        }
        traces
    }

    /// Generates shortest traces from the initial states to up to `limit`
    /// uncovered states (Section 3's aid for strengthening properties).
    pub fn traces_to_uncovered(&self, analysis: &CoverageAnalysis, limit: usize) -> Vec<Trace> {
        self.traces_to_states(&analysis.uncovered(), limit)
    }

    fn bit_name(&self, v: VarId) -> &str {
        self.fsm
            .state_bits()
            .iter()
            .find(|b| b.current == v)
            .map(|b| b.name.as_str())
            .unwrap_or("?")
    }

    fn state_universe(&self, covered: &Func, space: &Func, cone: Option<&[String]>) -> Vec<VarId> {
        // Counting universe: the state bits (or the cone bits). Signals
        // over inputs can leak input variables into covered sets; guard
        // against that in debug.
        let vars = self.universe(cone);
        debug_assert!(
            {
                let set: std::collections::HashSet<VarId> = vars.iter().copied().collect();
                covered.support().iter().all(|v| set.contains(v))
                    && space.support().iter().all(|v| set.contains(v))
            },
            "covered/space must be state predicates"
        );
        vars
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use covest_bdd::BddManager;
    use covest_ctl::parse_formula;
    use covest_fsm::Stg;

    fn f(s: &str) -> Formula {
        parse_formula(s).expect(s)
    }

    fn figure2(mgr: &BddManager) -> (Stg, SymbolicFsm) {
        let mut stg = Stg::new("figure2");
        stg.add_states(6);
        stg.add_path(&[0, 1, 2, 3, 4, 5]);
        stg.add_edge(5, 5);
        stg.mark_initial(0);
        for s in 0..4 {
            stg.label(s, "p1");
        }
        stg.label(4, "q");
        stg.label(5, "q");
        (stg.clone(), stg.compile(mgr).expect("compiles"))
    }

    #[test]
    fn analysis_reports_percent_and_holes() {
        let mgr = BddManager::new();
        let (_, fsm) = figure2(&mgr);
        let est = CoverageEstimator::new(&fsm);
        let analysis = est
            .analyze("q", &[f("A[p1 U q]")], &CoverageOptions::default())
            .expect("analyzes");
        assert!(analysis.all_hold());
        assert_eq!(analysis.space_count, 6.0);
        assert_eq!(analysis.covered_count, 1.0);
        assert!((analysis.percent() - 100.0 / 6.0).abs() < 1e-9);
        let holes = est.uncovered_states(&analysis, 10);
        assert_eq!(holes.len(), 5);
    }

    #[test]
    fn additional_property_closes_holes() {
        let mgr = BddManager::new();
        let (_, fsm) = figure2(&mgr);
        let est = CoverageEstimator::new(&fsm);
        // Add a property checking q persists: AG(q -> AX q) covers state 5
        // (successor of q states); plus one checking ¬q on the prefix.
        let props = vec![f("A[p1 U q]"), f("AG (q -> AX q)"), f("AG (p1 -> !q)")];
        let analysis = est
            .analyze("q", &props, &CoverageOptions::default())
            .expect("analyzes");
        assert!(analysis.all_hold());
        assert_eq!(analysis.percent(), 100.0);
    }

    #[test]
    fn failing_property_contributes_nothing_by_default() {
        let mgr = BddManager::new();
        let (_, fsm) = figure2(&mgr);
        let est = CoverageEstimator::new(&fsm);
        let analysis = est
            .analyze("q", &[f("AG q")], &CoverageOptions::default())
            .expect("analyzes");
        assert!(!analysis.all_hold());
        assert_eq!(analysis.covered_count, 0.0);
    }

    #[test]
    fn strict_mode_rejects_failing_properties() {
        let mgr = BddManager::new();
        let (_, fsm) = figure2(&mgr);
        let est = CoverageEstimator::new(&fsm);
        let err = est
            .analyze(
                "q",
                &[f("AG q")],
                &CoverageOptions {
                    strict: true,
                    ..Default::default()
                },
            )
            .unwrap_err();
        assert!(matches!(err, CoverageError::PropertyFails(_)));
    }

    #[test]
    fn dont_cares_shrink_the_space() {
        let mgr = BddManager::new();
        let (_, fsm) = figure2(&mgr);
        let est = CoverageEstimator::new(&fsm);
        // Declare the p1-prefix as don't-care for q.
        let analysis = est
            .analyze(
                "q",
                &[f("A[p1 U q]"), f("AG (q -> AX q)")],
                &CoverageOptions {
                    dont_cares: Some(PropExpr::atom("p1")),
                    ..Default::default()
                },
            )
            .expect("analyzes");
        assert_eq!(analysis.space_count, 2.0); // states 4 and 5
        assert_eq!(analysis.percent(), 100.0);
    }

    #[test]
    fn traces_lead_to_uncovered_states() {
        let mgr = BddManager::new();
        let (_, fsm) = figure2(&mgr);
        let est = CoverageEstimator::new(&fsm);
        let analysis = est
            .analyze("q", &[f("A[p1 U q]")], &CoverageOptions::default())
            .expect("analyzes");
        let traces = est.traces_to_uncovered(&analysis, 3);
        assert_eq!(traces.len(), 3);
        for t in &traces {
            assert!(!t.steps.is_empty());
        }
    }

    /// Regression: `analyze_union`/`analyze_signals` hold results from
    /// earlier `analyze` calls across later ones; with aggressive
    /// automatic reordering those later calls collect internally, and the
    /// accumulated sets must survive. Under the RAII API this holds by
    /// ownership — the old explicit protect/unprotect bracketing is gone.
    #[test]
    fn union_is_stable_under_aggressive_auto_reordering() {
        use covest_bdd::{ReorderConfig, ReorderMode};

        let run = |mode: ReorderMode| -> (f64, f64) {
            let mgr = BddManager::new();
            mgr.set_reorder_config(ReorderConfig {
                mode,
                auto_threshold: 8, // fire at every checkpoint
                ..Default::default()
            });
            let (_, fsm) = figure2(&mgr);
            let est = CoverageEstimator::new(&fsm);
            let union = est
                .analyze_union(&["q", "p1"], &[f("A[p1 U q]")], &CoverageOptions::default())
                .expect("analyzes");
            let signals = est
                .analyze_signals(
                    &[("q", vec![f("A[p1 U q]")]), ("p1", vec![f("A[p1 U q]")])],
                    &CoverageOptions::default(),
                )
                .expect("analyzes");
            let first_again = signals[0].covered_count;
            (union.covered_count, first_again)
        };

        let (union_off, first_off) = run(ReorderMode::Off);
        let (union_auto, first_auto) = run(ReorderMode::Auto);
        assert_eq!(union_off.to_bits(), union_auto.to_bits());
        assert_eq!(first_off.to_bits(), first_auto.to_bits());
    }

    /// The uncovered-state sample must be canonical: sorted by bit
    /// values in declaration order and invariant under reordering
    /// history — the property that makes sequential and parallel runs
    /// print diff-identical reports.
    #[test]
    fn uncovered_states_are_canonical_across_reorder_histories() {
        use covest_bdd::{ReorderConfig, ReorderMode};

        let run = |mode: ReorderMode| -> Vec<Vec<(String, bool)>> {
            let mgr = BddManager::new();
            mgr.set_reorder_config(ReorderConfig {
                mode,
                auto_threshold: 8,
                ..Default::default()
            });
            let (_, fsm) = figure2(&mgr);
            let est = CoverageEstimator::new(&fsm);
            let analysis = est
                .analyze("q", &[f("A[p1 U q]")], &CoverageOptions::default())
                .expect("analyzes");
            est.uncovered_states(&analysis, 10)
        };

        let off = run(ReorderMode::Off);
        assert_eq!(off.len(), 5);
        // Sorted ascending by declaration-order bit values (false < true).
        let keys: Vec<Vec<bool>> = off
            .iter()
            .map(|s| s.iter().map(|&(_, v)| v).collect())
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "sample must come out sorted");
        // Identical under a different (aggressive) reordering history.
        assert_eq!(off, run(ReorderMode::Auto));
    }

    #[test]
    fn multi_signal_analysis() {
        let mgr = BddManager::new();
        let (_, fsm) = figure2(&mgr);
        let est = CoverageEstimator::new(&fsm);
        let suites = vec![("q", vec![f("A[p1 U q]")]), ("p1", vec![f("A[p1 U q]")])];
        let results = est
            .analyze_signals(&suites, &CoverageOptions::default())
            .expect("analyzes");
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].covered_count, 1.0); // first q state
        assert_eq!(results[1].covered_count, 4.0); // p1 prefix
    }
}
