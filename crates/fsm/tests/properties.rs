//! Property-based tests on symbolic FSM operations: image/preimage
//! adjunction, reachability invariants, and trace validity on random
//! explicit graphs.

use std::collections::HashSet;

use covest_bdd::{BddManager, Func};
use covest_fsm::Stg;
use rand::{rngs::StdRng, Rng, SeedableRng};

fn random_stg(rng: &mut StdRng) -> Stg {
    let n = rng.gen_range(2..=9);
    let mut stg = Stg::new("random");
    stg.add_states(n);
    for i in 0..n - 1 {
        stg.add_edge(i, i + 1);
    }
    for _ in 0..rng.gen_range(0..=2 * n) {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        stg.add_edge(a, b);
    }
    stg.mark_initial(0);
    if n > 2 {
        stg.mark_initial(rng.gen_range(1..n));
    }
    stg
}

/// Explicit reachability oracle on the graph.
fn explicit_reachable(stg: &Stg) -> HashSet<usize> {
    let mut seen: HashSet<usize> = stg.initial_states().iter().copied().collect();
    let mut work: Vec<usize> = seen.iter().copied().collect();
    while let Some(s) = work.pop() {
        for t in stg.successors(s) {
            if seen.insert(t) {
                work.push(t);
            }
        }
    }
    seen
}

#[test]
fn symbolic_reachability_matches_explicit_bfs() {
    let mut rng = StdRng::seed_from_u64(11);
    for _ in 0..60 {
        let mgr = BddManager::new();
        let stg = random_stg(&mut rng);
        let fsm = stg.compile(&mgr).expect("compiles");
        let reach = fsm.reachable();
        let vars = fsm.current_vars();
        let mut got: Vec<usize> = reach
            .minterms_over(&vars)
            .map(|m| stg.decode_state(&m, &fsm))
            .collect();
        got.sort_unstable();
        got.dedup();
        let mut expect: Vec<usize> = explicit_reachable(&stg).into_iter().collect();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }
}

#[test]
fn image_preimage_adjunction() {
    // S ∩ preimage(T) ≠ ∅  ⇔  image(S) ∩ T ≠ ∅ (on random state sets).
    let mut rng = StdRng::seed_from_u64(12);
    for _ in 0..40 {
        let mgr = BddManager::new();
        let stg = random_stg(&mut rng);
        let fsm = stg.compile(&mgr).expect("compiles");
        let n = stg.num_states();
        let pick_set = |mgr: &BddManager, rng: &mut StdRng| -> Func {
            let mut acc = mgr.constant(false);
            for s in 0..n {
                if rng.gen_bool(0.4) {
                    acc = acc.or(&stg.state_fn(&fsm, s));
                }
            }
            acc
        };
        let s = pick_set(&mgr, &mut rng);
        let t = pick_set(&mgr, &mut rng);
        let pre_t = fsm.preimage(&t);
        let img_s = fsm.image(&s);
        let lhs = !s.and(&pre_t).is_false();
        let rhs = !img_s.and(&t).is_false();
        assert_eq!(lhs, rhs);
    }
}

#[test]
fn universal_preimage_is_dual_of_existential() {
    let mut rng = StdRng::seed_from_u64(13);
    for _ in 0..40 {
        let mgr = BddManager::new();
        let stg = random_stg(&mut rng);
        let fsm = stg.compile(&mgr).expect("compiles");
        let n = stg.num_states();
        let mut set = mgr.constant(false);
        for s in 0..n {
            if rng.gen_bool(0.5) {
                set = set.or(&stg.state_fn(&fsm, s));
            }
        }
        let univ = fsm.preimage_univ(&set);
        let dual = fsm.preimage(&set.not()).not();
        assert_eq!(univ, dual);
        // Universal ⊆ existential wherever the relation is total and the
        // set is nonempty on the successor side.
        let ex = fsm.preimage(&set);
        assert!(univ.leq(&ex), "total relations: AX ⊆ EX");
    }
}

#[test]
fn traces_always_follow_real_edges() {
    let mut rng = StdRng::seed_from_u64(14);
    for _ in 0..40 {
        let mgr = BddManager::new();
        let stg = random_stg(&mut rng);
        let fsm = stg.compile(&mgr).expect("compiles");
        let n = stg.num_states();
        let target_id = rng.gen_range(0..n);
        let target = stg.state_fn(&fsm, target_id);
        let reachable = explicit_reachable(&stg);
        match fsm.trace_to(&target) {
            Some(trace) => {
                assert!(reachable.contains(&target_id));
                // Decode the state sequence and check edges.
                let ids: Vec<usize> = trace
                    .steps
                    .iter()
                    .map(|step| {
                        let bits: Vec<(covest_bdd::VarId, bool)> = fsm
                            .state_bits()
                            .iter()
                            .map(|b| {
                                let v = step
                                    .state
                                    .iter()
                                    .find(|(n, _)| *n == b.name)
                                    .map(|(_, v)| *v)
                                    .unwrap_or(false);
                                (b.current, v)
                            })
                            .collect();
                        stg.decode_state(&bits, &fsm)
                    })
                    .collect();
                assert_eq!(*ids.last().expect("nonempty"), target_id);
                assert!(stg.initial_states().contains(&ids[0]));
                for w in ids.windows(2) {
                    assert!(
                        stg.successors(w[0]).contains(&w[1]),
                        "trace edge {} → {} not in graph",
                        w[0],
                        w[1]
                    );
                }
            }
            None => assert!(!reachable.contains(&target_id)),
        }
    }
}

#[test]
fn onion_rings_give_shortest_distances() {
    let mut rng = StdRng::seed_from_u64(15);
    for _ in 0..30 {
        let mgr = BddManager::new();
        let stg = random_stg(&mut rng);
        let fsm = stg.compile(&mgr).expect("compiles");
        let rings = fsm.onion_rings(fsm.init());
        // Explicit BFS distances.
        let mut dist: std::collections::HashMap<usize, usize> =
            stg.initial_states().iter().map(|&s| (s, 0usize)).collect();
        let mut frontier: Vec<usize> = stg.initial_states().to_vec();
        let mut d = 0usize;
        while !frontier.is_empty() {
            d += 1;
            let mut next = Vec::new();
            for &s in &frontier {
                for t in stg.successors(s) {
                    if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(t) {
                        e.insert(d);
                        next.push(t);
                    }
                }
            }
            frontier = next;
        }
        for (k, ring) in rings.iter().enumerate() {
            let vars = fsm.current_vars();
            for m in ring.minterms_over(&vars) {
                let id = stg.decode_state(&m, &fsm);
                assert_eq!(dist[&id], k, "state {id} in ring {k}");
            }
        }
    }
}
