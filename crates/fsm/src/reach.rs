//! Reachability analysis: fixpoints and breadth-first onion rings.

use covest_bdd::{Bdd, Ref};

use crate::fsm::SymbolicFsm;

impl SymbolicFsm {
    /// All states reachable from `from` in any number of steps, including
    /// `from` itself (the paper's `reachable(S0)`).
    pub fn reachable_from(&self, bdd: &mut Bdd, from: Ref) -> Ref {
        let mut reached = from;
        let mut frontier = from;
        loop {
            let img = self.image(bdd, frontier);
            let fresh = bdd.diff(img, reached);
            if fresh.is_false() {
                return reached;
            }
            reached = bdd.or(reached, fresh);
            frontier = fresh;
        }
    }

    /// All states reachable from the initial states.
    pub fn reachable(&self, bdd: &mut Bdd) -> Ref {
        self.reachable_from(bdd, self.init)
    }

    /// Breadth-first *onion rings* from `from`: `rings[0] = from`, and
    /// `rings[k]` holds the states first reached at distance `k`.
    /// The union of all rings is [`SymbolicFsm::reachable_from`].
    pub fn onion_rings(&self, bdd: &mut Bdd, from: Ref) -> Vec<Ref> {
        let mut rings = vec![from];
        let mut reached = from;
        let mut frontier = from;
        loop {
            let img = self.image(bdd, frontier);
            let fresh = bdd.diff(img, reached);
            if fresh.is_false() {
                return rings;
            }
            rings.push(fresh);
            reached = bdd.or(reached, fresh);
            frontier = fresh;
        }
    }

    /// Number of reachable states (the denominator of Definition 4).
    pub fn reachable_count(&self, bdd: &mut Bdd) -> f64 {
        let r = self.reachable(bdd);
        let vars = self.current_vars();
        bdd.sat_count_over(r, &vars)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fsm::FsmBuilder;

    /// A 3-bit counter with no inputs that increments and wraps at 6
    /// (states 6 and 7 unreachable from 0).
    fn mod6_counter(bdd: &mut Bdd) -> SymbolicFsm {
        let mut b = FsmBuilder::new("mod6");
        let bits: Vec<_> = (0..3)
            .map(|i| b.add_state_bit(bdd, format!("c{i}")))
            .collect();
        let f: Vec<Ref> = bits.iter().map(|s| bdd.var(s.current)).collect();
        // value == 5 detector
        let n1 = bdd.not(f[1]);
        let is5 = {
            let a = bdd.and(f[0], n1);
            bdd.and(a, f[2])
        };
        // incremented value
        let inc0 = bdd.not(f[0]);
        let inc1 = bdd.xor(f[1], f[0]);
        let carry01 = bdd.and(f[0], f[1]);
        let inc2 = bdd.xor(f[2], carry01);
        // next = is5 ? 0 : inc
        let n0 = bdd.ite(is5, Ref::FALSE, inc0);
        let n1b = bdd.ite(is5, Ref::FALSE, inc1);
        let n2 = bdd.ite(is5, Ref::FALSE, inc2);
        b.set_next(bdd, "c0", n0);
        b.set_next(bdd, "c1", n1b);
        b.set_next(bdd, "c2", n2);
        let zeros: Vec<Ref> = bits.iter().map(|s| bdd.nvar(s.current)).collect();
        let init = bdd.and_many(zeros);
        b.set_init(init);
        b.build(bdd).expect("valid")
    }

    #[test]
    fn reachable_excludes_unreachable_codes() {
        let mut bdd = Bdd::new();
        let fsm = mod6_counter(&mut bdd);
        assert_eq!(fsm.reachable_count(&mut bdd), 6.0);
    }

    #[test]
    fn rings_partition_reachable() {
        let mut bdd = Bdd::new();
        let fsm = mod6_counter(&mut bdd);
        let rings = fsm.onion_rings(&mut bdd, fsm.init());
        assert_eq!(rings.len(), 6); // distances 0..5
                                    // Pairwise disjoint and union equals reachable.
        let mut union = Ref::FALSE;
        for (i, &ri) in rings.iter().enumerate() {
            for &rj in rings.iter().skip(i + 1) {
                assert!(bdd.and(ri, rj).is_false());
            }
            union = bdd.or(union, ri);
        }
        let reach = fsm.reachable(&mut bdd);
        assert_eq!(union, reach);
    }

    #[test]
    fn reachable_from_subset() {
        let mut bdd = Bdd::new();
        let fsm = mod6_counter(&mut bdd);
        // Starting at value 4 we can still reach all six states (wraps).
        let s4 = fsm.state_cube(&mut bdd, &[("c2", true)]);
        let r = fsm.reachable_from(&mut bdd, s4);
        let vars = fsm.current_vars();
        assert_eq!(bdd.sat_count_over(r, &vars), 6.0);
    }

    #[test]
    fn reachable_is_fixpoint() {
        let mut bdd = Bdd::new();
        let fsm = mod6_counter(&mut bdd);
        let r = fsm.reachable(&mut bdd);
        let img = fsm.image(&mut bdd, r);
        assert!(bdd.leq(img, r));
    }
}
