//! Reachability analysis: fixpoints and breadth-first onion rings.

use covest_bdd::Func;

use crate::fsm::SymbolicFsm;

impl SymbolicFsm {
    /// All states reachable from `from` in any number of steps, including
    /// `from` itself (the paper's `reachable(S0)`).
    pub fn reachable_from(&self, from: &Func) -> Func {
        let mut reached = from.clone();
        let mut frontier = from.clone();
        loop {
            let img = self.image(&frontier);
            let fresh = img.diff(&reached);
            if fresh.is_false() {
                return reached;
            }
            reached = reached.or(&fresh);
            frontier = fresh;
        }
    }

    /// All states reachable from the initial states.
    pub fn reachable(&self) -> Func {
        self.reachable_from(&self.init)
    }

    /// Breadth-first *onion rings* from `from`: `rings[0] = from`, and
    /// `rings[k]` holds the states first reached at distance `k`.
    /// The union of all rings is [`SymbolicFsm::reachable_from`].
    pub fn onion_rings(&self, from: &Func) -> Vec<Func> {
        let mut rings = vec![from.clone()];
        let mut reached = from.clone();
        let mut frontier = from.clone();
        loop {
            let img = self.image(&frontier);
            let fresh = img.diff(&reached);
            if fresh.is_false() {
                return rings;
            }
            rings.push(fresh.clone());
            reached = reached.or(&fresh);
            frontier = fresh;
        }
    }

    /// Number of reachable states (the denominator of Definition 4).
    pub fn reachable_count(&self) -> f64 {
        self.reachable().sat_count_over(&self.current_vars())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fsm::FsmBuilder;
    use covest_bdd::BddManager;

    /// A 3-bit counter with no inputs that increments and wraps at 6
    /// (states 6 and 7 unreachable from 0).
    fn mod6_counter(mgr: &BddManager) -> SymbolicFsm {
        let mut b = FsmBuilder::new(mgr, "mod6");
        let bits: Vec<_> = (0..3).map(|i| b.add_state_bit(format!("c{i}"))).collect();
        let f: Vec<Func> = bits.iter().map(|s| mgr.var(s.current)).collect();
        // value == 5 detector
        let is5 = f[0].and(&f[1].not()).and(&f[2]);
        // incremented value
        let inc0 = f[0].not();
        let inc1 = f[1].xor(&f[0]);
        let inc2 = f[2].xor(&f[0].and(&f[1]));
        // next = is5 ? 0 : inc
        let zero = mgr.constant(false);
        b.set_next("c0", is5.ite(&zero, &inc0));
        b.set_next("c1", is5.ite(&zero, &inc1));
        b.set_next("c2", is5.ite(&zero, &inc2));
        let zeros: Vec<Func> = bits.iter().map(|s| mgr.nvar(s.current)).collect();
        b.set_init(mgr.and_many(&zeros));
        b.build().expect("valid")
    }

    #[test]
    fn reachable_excludes_unreachable_codes() {
        let mgr = BddManager::new();
        let fsm = mod6_counter(&mgr);
        assert_eq!(fsm.reachable_count(), 6.0);
    }

    #[test]
    fn rings_partition_reachable() {
        let mgr = BddManager::new();
        let fsm = mod6_counter(&mgr);
        let rings = fsm.onion_rings(fsm.init());
        assert_eq!(rings.len(), 6); // distances 0..5
                                    // Pairwise disjoint and union equals reachable.
        let mut union = mgr.constant(false);
        for (i, ri) in rings.iter().enumerate() {
            for rj in rings.iter().skip(i + 1) {
                assert!(ri.and(rj).is_false());
            }
            union = union.or(ri);
        }
        assert_eq!(union, fsm.reachable());
    }

    #[test]
    fn reachable_from_subset() {
        let mgr = BddManager::new();
        let fsm = mod6_counter(&mgr);
        // Starting at value 4 we can still reach all six states (wraps).
        let s4 = fsm.state_cube(&[("c2", true)]);
        let r = fsm.reachable_from(&s4);
        assert_eq!(r.sat_count_over(&fsm.current_vars()), 6.0);
    }

    #[test]
    fn reachable_is_fixpoint() {
        let mgr = BddManager::new();
        let fsm = mod6_counter(&mgr);
        let r = fsm.reachable();
        assert!(fsm.image(&r).leq(&r));
        let _ = mgr;
    }
}
