//! Reachability analysis: fixpoints and breadth-first onion rings.
//!
//! The BFS loops run *frontier-simplified*: the set handed to the next
//! image computation is the new layer simplified modulo the complement
//! of the already-visited states (per the machine's
//! [`crate::SimplifyConfig`]). Any set `F` with `fresh ⊆ F ⊆ reached`
//! yields the same next layer — extra already-visited states contribute
//! only already-visited successors — and simplifying `fresh` against
//! `¬visited` produces exactly such an `F`, usually a much smaller BDD.
//! The reached sets and rings themselves are untouched, so every result
//! is bit-identical across simplification modes.

use covest_bdd::Func;
use covest_telemetry as telemetry;

use crate::fsm::SymbolicFsm;

impl SymbolicFsm {
    /// All states reachable from `from` in any number of steps, including
    /// `from` itself (the paper's `reachable(S0)`).
    pub fn reachable_from(&self, from: &Func) -> Func {
        let _span = telemetry::span("reachability");
        let simplify = self.image_config().simplify;
        let mut reached = from.clone();
        let mut frontier = from.clone();
        let mut steps = 0u64;
        loop {
            let img = self.image(&frontier);
            let fresh = img.diff(&reached);
            steps += 1;
            telemetry::count("bfs_steps", 1);
            if fresh.is_false() {
                telemetry::span_field("bfs_steps", steps);
                return reached;
            }
            // Care = ¬visited (before absorbing the new layer): the
            // simplified frontier agrees with `fresh` on the unvisited
            // region and is free to absorb visited states elsewhere.
            frontier = simplify.apply(&fresh, &reached.not());
            reached = reached.or(&fresh);
            // Per-step BDD sizes are deterministic but cost a node-count
            // traversal each, so they are gathered only under a recorder.
            if telemetry::is_active() {
                telemetry::event(
                    "bfs_step",
                    &[
                        ("step", steps),
                        ("frontier_nodes", frontier.node_count() as u64),
                        ("visited_nodes", reached.node_count() as u64),
                    ],
                );
            }
            // Same gating for the heartbeat/watchdog channel: the size
            // and support reads are only worth paying when someone
            // listens.
            if telemetry::progress::progress_active() {
                telemetry::progress::fixpoint_progress(
                    "reach",
                    steps,
                    reached.node_count() as u64,
                    reached.support().len() as u64,
                );
            }
        }
    }

    /// All states reachable from the initial states.
    ///
    /// Cached on the image engine after the first computation (the
    /// initial states never change post-build, and the cache shares the
    /// engine's lifecycle — rebuilding via
    /// [`crate::SymbolicFsm::set_image_config`] or
    /// [`crate::SymbolicFsm::constrain`] drops it), so the per-signal
    /// analyses of a multi-signal run pay for the BFS once.
    pub fn reachable(&self) -> Func {
        if let Some(r) = self.engine.cached_reach() {
            return r;
        }
        let r = self.reachable_from(&self.init);
        self.engine.cache_reach(r.clone());
        r
    }

    /// Installs an externally computed reachable-states set into the
    /// engine's reachability cache, so [`SymbolicFsm::reachable`] (and
    /// everything above it — care installation, the coverage-space
    /// denominator) returns it without re-running the BFS.
    ///
    /// This is the worker-side half of the parallel coverage engine's
    /// handoff: the planner computes reachability once per deck, exports
    /// the set as a name-keyed [`covest_bdd::BddDump`], and each worker
    /// imports it into its own manager and seeds its own recompiled
    /// machine. The caller asserts that `reach` **is** this machine's
    /// reachable set — i.e. `init ⊆ reach` and `image(reach) ⊆ reach`
    /// with no smaller such set containing `init`; the closure half of
    /// the contract is checked in debug builds. Like every cached
    /// derivative, the seed is dropped when the engine is rebuilt
    /// ([`SymbolicFsm::set_image_config`], [`SymbolicFsm::constrain`]).
    pub fn seed_reachable(&self, reach: Func) {
        debug_assert!(
            self.init.leq(&reach) && self.image(&reach).leq(&reach),
            "seeded set must contain init and be closed under image"
        );
        self.engine.cache_reach(reach);
    }

    /// Computes the reachable states and installs them as the image
    /// engine's care set (per the configured [`crate::SimplifyConfig`]),
    /// so subsequent forward fixpoints sweep don't-care-simplified
    /// transition clusters. Returns the reachable set.
    ///
    /// A no-op installation under [`crate::SimplifyConfig::Off`]; also a
    /// no-op when the engine already carries this exact care set
    /// (canonicity makes that a cheap handle comparison), so repeated
    /// calls — e.g. one per observed signal in a multi-signal analysis —
    /// don't re-simplify the clusters or re-derive the schedules.
    pub fn install_reachable_care(&self) -> Func {
        let reach = self.reachable();
        if self.engine.care_set().as_ref() != Some(&reach) {
            let _span = telemetry::span("care_install");
            self.engine
                .install_care(&reach, self.image_config().simplify);
        }
        reach
    }

    /// Breadth-first *onion rings* from `from`: `rings[0] = from`, and
    /// `rings[k]` holds the states first reached at distance `k`.
    /// The union of all rings is [`SymbolicFsm::reachable_from`].
    pub fn onion_rings(&self, from: &Func) -> Vec<Func> {
        let simplify = self.image_config().simplify;
        let mut rings = vec![from.clone()];
        let mut reached = from.clone();
        let mut frontier = from.clone();
        loop {
            let img = self.image(&frontier);
            let fresh = img.diff(&reached);
            if fresh.is_false() {
                return rings;
            }
            rings.push(fresh.clone());
            frontier = simplify.apply(&fresh, &reached.not());
            reached = reached.or(&fresh);
        }
    }

    /// Number of reachable states (the denominator of Definition 4).
    pub fn reachable_count(&self) -> f64 {
        self.reachable().sat_count_over(&self.current_vars())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fsm::FsmBuilder;
    use covest_bdd::BddManager;

    /// A 3-bit counter with no inputs that increments and wraps at 6
    /// (states 6 and 7 unreachable from 0).
    fn mod6_counter(mgr: &BddManager) -> SymbolicFsm {
        let mut b = FsmBuilder::new(mgr, "mod6");
        let bits: Vec<_> = (0..3).map(|i| b.add_state_bit(format!("c{i}"))).collect();
        let f: Vec<Func> = bits.iter().map(|s| mgr.var(s.current)).collect();
        // value == 5 detector
        let is5 = f[0].and(&f[1].not()).and(&f[2]);
        // incremented value
        let inc0 = f[0].not();
        let inc1 = f[1].xor(&f[0]);
        let inc2 = f[2].xor(&f[0].and(&f[1]));
        // next = is5 ? 0 : inc
        let zero = mgr.constant(false);
        b.set_next("c0", is5.ite(&zero, &inc0));
        b.set_next("c1", is5.ite(&zero, &inc1));
        b.set_next("c2", is5.ite(&zero, &inc2));
        let zeros: Vec<Func> = bits.iter().map(|s| mgr.nvar(s.current)).collect();
        b.set_init(mgr.and_many(&zeros));
        b.build().expect("valid")
    }

    #[test]
    fn reachable_excludes_unreachable_codes() {
        let mgr = BddManager::new();
        let fsm = mod6_counter(&mgr);
        assert_eq!(fsm.reachable_count(), 6.0);
    }

    #[test]
    fn rings_partition_reachable() {
        let mgr = BddManager::new();
        let fsm = mod6_counter(&mgr);
        let rings = fsm.onion_rings(fsm.init());
        assert_eq!(rings.len(), 6); // distances 0..5
                                    // Pairwise disjoint and union equals reachable.
        let mut union = mgr.constant(false);
        for (i, ri) in rings.iter().enumerate() {
            for rj in rings.iter().skip(i + 1) {
                assert!(ri.and(rj).is_false());
            }
            union = union.or(ri);
        }
        assert_eq!(union, fsm.reachable());
    }

    #[test]
    fn reachable_from_subset() {
        let mgr = BddManager::new();
        let fsm = mod6_counter(&mgr);
        // Starting at value 4 we can still reach all six states (wraps).
        let s4 = fsm.state_cube(&[("c2", true)]);
        let r = fsm.reachable_from(&s4);
        assert_eq!(r.sat_count_over(&fsm.current_vars()), 6.0);
    }

    #[test]
    fn reachable_is_fixpoint() {
        let mgr = BddManager::new();
        let fsm = mod6_counter(&mgr);
        let r = fsm.reachable();
        assert!(fsm.image(&r).leq(&r));
        let _ = mgr;
    }
}
