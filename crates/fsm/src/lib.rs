//! # covest-fsm
//!
//! Symbolic finite state machines for the `covest` workspace — the model
//! layer of the DAC'99 paper *"Coverage Estimation for Symbolic Model
//! Checking"* (Definition 1's `M = <S, T_M, P, S_I>`).
//!
//! - [`SymbolicFsm`] / [`FsmBuilder`]: Mealy machines over BDD variables,
//!   with image/preimage, `forward`, reachability fixpoints and onion
//!   rings;
//! - [`ImageEngine`]: partitioned image computation — the transition
//!   relation kept as size-bounded clusters swept with an
//!   early-quantification schedule ([`ImageMethod::Partitioned`], the
//!   default), with the monolithic relation available lazily behind
//!   [`ImageMethod::Monolithic`] for A/B comparison;
//! - [`SignalTable`]: named boolean and numeric signals with lowering of
//!   [`covest_ctl::PropExpr`] atoms (including integer comparisons) to
//!   BDDs, plus interpretation *overrides* — the hook used by `depend(b)`,
//!   the dual FSM, and the primed signal `q'` of the paper;
//! - [`SymbolicFsm::dual`]: Definition 2's dual machine `M̂s`;
//! - [`Trace`] generation: shortest input sequences to target states
//!   (Section 3's "traces to uncovered states");
//! - [`Stg`]: explicit state-transition graphs (the paper's Figures 1–3)
//!   compiled to symbolic machines.
//!
//! Every machine stores owned [`covest_bdd::Func`] handles, so models pin
//! their own BDD state across garbage collection and dynamic reordering —
//! there is no roots contract to maintain.
//!
//! # Example
//!
//! ```
//! use covest_bdd::BddManager;
//! use covest_fsm::Stg;
//!
//! // Figure 2's chain of p1-states ending in a q-state.
//! let mut stg = Stg::new("figure2");
//! stg.add_states(4);
//! stg.add_path(&[0, 1, 2, 3]);
//! stg.mark_initial(0);
//! stg.label(3, "q");
//! let mgr = BddManager::new();
//! let fsm = stg.compile(&mgr)?;
//! let target = stg.state_fn(&fsm, 3);
//! let trace = fsm.trace_to(&target).expect("reachable");
//! assert_eq!(trace.len(), 3);
//! # Ok::<(), covest_fsm::BuildFsmError>(())
//! ```

mod error;
mod fsm;
mod image;
mod reach;
mod signal;
mod stg;
mod trace;

pub use error::{BuildFsmError, LowerError};
pub use fsm::{FsmBuilder, InputBit, StateBit, SymbolicFsm};
pub use image::{ImageConfig, ImageEngine, ImageMethod, SimplifyConfig};
pub use signal::{NumericSignal, SignalTable, SignalValue};
pub use stg::Stg;
pub use trace::{Trace, TraceStep};
