//! Error types for symbolic FSM construction and property lowering.

use std::error::Error;
use std::fmt;

/// Error produced when lowering a propositional formula against a model's
/// signal table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LowerError {
    /// The formula references a signal the model does not define.
    UnknownSignal(String),
    /// A boolean signal was used where a numeric one is required, or vice
    /// versa.
    TypeMismatch {
        /// The offending signal.
        signal: String,
        /// What the context required.
        expected: &'static str,
    },
    /// A symbolic comparison right-hand side is neither a signal nor an
    /// enumeration literal of the left-hand variable.
    UnknownLiteral {
        /// The left-hand variable.
        lhs: String,
        /// The unresolved name.
        name: String,
    },
    /// Two numeric signals with different encodings were compared.
    IncompatibleEncodings(String, String),
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::UnknownSignal(s) => write!(f, "unknown signal `{s}`"),
            LowerError::TypeMismatch { signal, expected } => {
                write!(
                    f,
                    "signal `{signal}` used where a {expected} signal is required"
                )
            }
            LowerError::UnknownLiteral { lhs, name } => {
                write!(
                    f,
                    "`{name}` is neither a signal nor an enumeration literal of `{lhs}`"
                )
            }
            LowerError::IncompatibleEncodings(a, b) => {
                write!(
                    f,
                    "signals `{a}` and `{b}` have incompatible numeric encodings"
                )
            }
        }
    }
}

impl Error for LowerError {}

/// Error produced by [`crate::FsmBuilder`](crate::FsmBuilder) when the
/// machine description is inconsistent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildFsmError {
    /// A state bit was declared twice.
    DuplicateStateBit(String),
    /// An input was declared twice.
    DuplicateInput(String),
    /// A signal name collides with an existing signal.
    DuplicateSignal(String),
    /// A state bit was never given a next-state function or relation.
    MissingNext(String),
    /// The transition relation is not total: some reachable state/input
    /// combination has no successor.
    NotTotal,
}

impl fmt::Display for BuildFsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildFsmError::DuplicateStateBit(s) => write!(f, "duplicate state bit `{s}`"),
            BuildFsmError::DuplicateInput(s) => write!(f, "duplicate input `{s}`"),
            BuildFsmError::DuplicateSignal(s) => write!(f, "duplicate signal `{s}`"),
            BuildFsmError::MissingNext(s) => {
                write!(f, "state bit `{s}` has no next-state function")
            }
            BuildFsmError::NotTotal => {
                write!(f, "transition relation is not total")
            }
        }
    }
}

impl Error for BuildFsmError {}
