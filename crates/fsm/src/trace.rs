//! Trace generation: shortest input sequences witnessing reachability.
//!
//! The paper (Section 3) reports *traces to uncovered states*: a breadth
//! first reachability analysis finds the shortest path from the initial
//! states to a target state, and an input sequence is extracted along the
//! path (following Cho/Hachtel/Somenzi's implicit enumeration technique,
//! the paper's reference [8]).

use std::collections::HashMap;

use covest_bdd::{BddManager, Func, VarId};

use crate::fsm::SymbolicFsm;

/// One step of a concrete trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStep {
    /// Values of all state bits, in declaration order.
    pub state: Vec<(String, bool)>,
    /// Values of the inputs consumed to move to the *next* step
    /// (empty for the final step).
    pub inputs: Vec<(String, bool)>,
}

/// A concrete execution from an initial state to a target state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// The steps, starting at an initial state and ending in the target.
    pub steps: Vec<TraceStep>,
}

impl Trace {
    /// Number of transitions in the trace.
    pub fn len(&self) -> usize {
        self.steps.len().saturating_sub(1)
    }

    /// `true` if the trace is a single (initial) state.
    pub fn is_empty(&self) -> bool {
        self.steps.len() <= 1
    }
}

impl std::fmt::Display for Trace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, step) in self.steps.iter().enumerate() {
            write!(f, "step {i}: ")?;
            for (name, v) in &step.state {
                write!(f, "{name}={} ", u8::from(*v))?;
            }
            if !step.inputs.is_empty() {
                write!(f, "/ inputs: ")?;
                for (name, v) in &step.inputs {
                    write!(f, "{name}={} ", u8::from(*v))?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

impl SymbolicFsm {
    /// Finds a shortest trace from the initial states to any state in
    /// `target`, or `None` if `target` is unreachable.
    pub fn trace_to(&self, target: &Func) -> Option<Trace> {
        let init = self.init().clone();
        self.trace_from_to(&init, target)
    }

    /// Finds a shortest trace from a state in `from` to a state in
    /// `target`.
    pub fn trace_from_to(&self, from: &Func, target: &Func) -> Option<Trace> {
        // Forward BFS until the target is hit.
        let mut rings = vec![from.clone()];
        let mut reached = from.clone();
        let mut hit_ring = None;
        if !from.and(target).is_false() {
            hit_ring = Some(0);
        }
        while hit_ring.is_none() {
            let frontier = rings.last().expect("nonempty").clone();
            let img = self.image(&frontier);
            let fresh = img.diff(&reached);
            if fresh.is_false() {
                return None; // target unreachable
            }
            reached = reached.or(&fresh);
            rings.push(fresh.clone());
            if !fresh.and(target).is_false() {
                hit_ring = Some(rings.len() - 1);
            }
        }
        let k = hit_ring.expect("set above");

        // Pick the final state, then walk backwards through the rings,
        // at each step choosing a predecessor and an input justifying
        // the transition.
        let mgr = self.manager().clone();
        let cur_vars = self.current_vars();
        let in_vars = self.input_vars();
        let hit = rings[k].and(target);
        let mut state_cube = minterm_to_cube(&mgr, &hit, &cur_vars);
        let mut rev_states = vec![state_cube.clone()];
        let mut rev_inputs: Vec<Vec<(VarId, bool)>> = Vec::new();
        for ring in rings[..k].iter().rev() {
            // Predecessors of `state_cube` within `ring`, with the inputs
            // justifying the transition: ∃next. T ∧ next(state), computed
            // through the image engine so replay never forces the
            // monolithic T to exist, then restricted to the ring.
            let state_next = state_cube.rename(&self.cur_to_next());
            let preds = self.engine.backward_with_inputs(&state_next);
            let step = preds.and(ring);
            // Choose one (state, input) pair.
            let mut pick_vars = cur_vars.clone();
            pick_vars.extend(in_vars.iter().copied());
            let choice = step
                .pick_minterm(&pick_vars)
                .expect("ring guarantees a predecessor");
            let (st, inp) = split_choice(&choice, &cur_vars, &in_vars);
            state_cube = cube_of(&mgr, &st);
            rev_states.push(state_cube.clone());
            rev_inputs.push(inp);
        }

        // Assemble forward.
        rev_states.reverse();
        rev_inputs.reverse();
        let mut steps = Vec::with_capacity(rev_states.len());
        for (i, scube) in rev_states.iter().enumerate() {
            let sm = scube.pick_minterm(&cur_vars).expect("state cube nonempty");
            let state = sm
                .iter()
                .map(|&(v, val)| (self.bit_name(v).to_owned(), val))
                .collect();
            let inputs = if i < rev_inputs.len() {
                rev_inputs[i]
                    .iter()
                    .map(|&(v, val)| (self.input_name(v).to_owned(), val))
                    .collect()
            } else {
                Vec::new()
            };
            steps.push(TraceStep { state, inputs });
        }
        Some(Trace { steps })
    }

    fn bit_name(&self, v: VarId) -> &str {
        self.state_bits
            .iter()
            .find(|b| b.current == v)
            .map(|b| b.name.as_str())
            .unwrap_or("?")
    }

    fn input_name(&self, v: VarId) -> &str {
        self.input_bits
            .iter()
            .find(|b| b.var == v)
            .map(|b| b.name.as_str())
            .unwrap_or("?")
    }
}

fn minterm_to_cube(mgr: &BddManager, set: &Func, vars: &[VarId]) -> Func {
    let m = set.pick_minterm(vars).expect("nonempty set");
    cube_of(mgr, &m)
}

fn cube_of(mgr: &BddManager, literals: &[(VarId, bool)]) -> Func {
    let mut cube = mgr.constant(true);
    for &(v, val) in literals {
        cube = cube.and(&mgr.literal(v, val));
    }
    cube
}

/// A partial assignment as `(variable, value)` pairs.
type Assignment = Vec<(VarId, bool)>;

fn split_choice(
    choice: &[(VarId, bool)],
    cur_vars: &[VarId],
    in_vars: &[VarId],
) -> (Assignment, Assignment) {
    let lookup: HashMap<VarId, bool> = choice.iter().copied().collect();
    let st = cur_vars
        .iter()
        .map(|&v| (v, lookup.get(&v).copied().unwrap_or(false)))
        .collect();
    let inp = in_vars
        .iter()
        .map(|&v| (v, lookup.get(&v).copied().unwrap_or(false)))
        .collect();
    (st, inp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fsm::FsmBuilder;

    /// Counter with stall input (see fsm.rs tests).
    fn counter2(mgr: &BddManager) -> SymbolicFsm {
        let mut b = FsmBuilder::new(mgr, "counter2");
        let b0 = b.add_state_bit("b0");
        let b1 = b.add_state_bit("b1");
        let stall = b.add_input_bit("stall");
        let f0 = mgr.var(b0.current);
        let f1 = mgr.var(b1.current);
        let fs = mgr.var(stall.var);
        b.set_next("b0", fs.ite(&f0, &f0.not()));
        b.set_next("b1", fs.ite(&f1, &f1.xor(&f0)));
        b.set_init(mgr.nvar(b0.current).and(&mgr.nvar(b1.current)));
        b.build().expect("valid machine")
    }

    fn simulate(fsm: &SymbolicFsm, trace: &Trace) -> bool {
        // Check every consecutive pair is a real transition.
        for w in trace.steps.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            let mut t = fsm.trans();
            for (name, val) in &a.state {
                let bit = fsm
                    .state_bits()
                    .iter()
                    .find(|s| &s.name == name)
                    .expect("bit");
                t = t.cofactor(bit.current, *val);
            }
            for (name, val) in &a.inputs {
                let bit = fsm
                    .input_bits()
                    .iter()
                    .find(|s| &s.name == name)
                    .expect("input");
                t = t.cofactor(bit.var, *val);
            }
            for (name, val) in &b.state {
                let bit = fsm
                    .state_bits()
                    .iter()
                    .find(|s| &s.name == name)
                    .expect("bit");
                t = t.cofactor(bit.next, *val);
            }
            if t.is_false() {
                return false;
            }
        }
        true
    }

    #[test]
    fn trace_reaches_target_via_valid_transitions() {
        let mgr = BddManager::new();
        let fsm = counter2(&mgr);
        let target = fsm.state_cube(&[("b0", true), ("b1", true)]);
        let trace = fsm.trace_to(&target).expect("reachable");
        assert_eq!(trace.len(), 3); // shortest: 00 → 01 → 10 → 11
        assert!(simulate(&fsm, &trace));
        let last = trace.steps.last().expect("nonempty");
        assert_eq!(
            last.state,
            vec![("b0".to_owned(), true), ("b1".to_owned(), true)]
        );
    }

    #[test]
    fn trace_to_initial_state_is_trivial() {
        let mgr = BddManager::new();
        let fsm = counter2(&mgr);
        let trace = fsm.trace_to(fsm.init()).expect("trivial");
        assert!(trace.is_empty());
        assert_eq!(trace.len(), 0);
    }

    #[test]
    fn unreachable_target_yields_none() {
        let mgr = BddManager::new();
        let fsm = counter2(&mgr);
        assert!(fsm.trace_to(&mgr.constant(false)).is_none());
    }

    #[test]
    fn trace_display_mentions_inputs() {
        let mgr = BddManager::new();
        let fsm = counter2(&mgr);
        let target = fsm.state_cube(&[("b0", true)]);
        let trace = fsm.trace_to(&target).expect("reachable");
        let s = trace.to_string();
        assert!(s.contains("step 0"));
        assert!(s.contains("stall"), "{s}");
    }
}
