//! Named signal tables and lowering of propositional formulas to BDDs.
//!
//! A [`SignalTable`] maps signal names to their semantic functions over the
//! *current-state* (and input) BDD variables. The coverage machinery of the
//! DAC'99 paper manipulates signal interpretations directly:
//!
//! - `depend(b)` re-lowers `b` with the observed signal interpreted as its
//!   complement;
//! - the dual FSM of Definition 2 flips the observed signal's function on a
//!   single state;
//! - the observability transformation introduces a primed copy `q'` whose
//!   default interpretation equals `q`.
//!
//! All three are expressed through the `overrides` parameter of
//! [`SignalTable::lower_with`].

use std::collections::HashMap;

use covest_bdd::{Bdd, Ref};
use covest_ctl::{CmpOp, CmpRhs, PropExpr, SignalRef};

use crate::error::LowerError;

/// A multi-bit (range or enumeration) signal: an unsigned binary value,
/// LSB first, plus an additive offset and optional enumeration literals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NumericSignal {
    /// Bit functions, least significant first.
    pub bits: Vec<Ref>,
    /// Value represented = binary(bits) + offset.
    pub offset: i64,
    /// Enumeration literals naming particular values (e.g. `idle ↦ 0`).
    pub literals: HashMap<String, i64>,
}

impl NumericSignal {
    /// A plain unsigned signal with the given bit functions (LSB first).
    pub fn unsigned(bits: Vec<Ref>) -> Self {
        NumericSignal {
            bits,
            offset: 0,
            literals: HashMap::new(),
        }
    }

    /// Inclusive range of representable values.
    pub fn value_range(&self) -> (i64, i64) {
        let span = if self.bits.len() >= 63 {
            i64::MAX
        } else {
            (1i64 << self.bits.len()) - 1
        };
        (self.offset, self.offset.saturating_add(span))
    }
}

/// The semantic value of a signal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SignalValue {
    /// A boolean signal: a single BDD over state/input variables.
    Bool(Ref),
    /// A multi-bit numeric signal.
    Num(NumericSignal),
}

impl SignalValue {
    /// Appends every BDD handle this value holds to `out`. The single
    /// source of truth for root enumeration over signal values — used by
    /// all `protected_refs` implementations, so adding a variant (or a
    /// handle to an existing one) updates every root set at once.
    pub fn push_refs(&self, out: &mut Vec<Ref>) {
        match self {
            SignalValue::Bool(r) => out.push(*r),
            SignalValue::Num(n) => out.extend(n.bits.iter().copied()),
        }
    }
}

/// A table of named signals with lowering of [`PropExpr`] to BDDs.
#[derive(Debug, Clone, Default)]
pub struct SignalTable {
    entries: HashMap<String, SignalValue>,
}

impl SignalTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a boolean signal. Returns the previous value, if any.
    pub fn insert_bool(&mut self, name: impl Into<String>, f: Ref) -> Option<SignalValue> {
        self.entries.insert(name.into(), SignalValue::Bool(f))
    }

    /// Registers a numeric signal. Returns the previous value, if any.
    pub fn insert_num(
        &mut self,
        name: impl Into<String>,
        sig: NumericSignal,
    ) -> Option<SignalValue> {
        self.entries.insert(name.into(), SignalValue::Num(sig))
    }

    /// Looks up a signal by name.
    pub fn get(&self, name: &str) -> Option<&SignalValue> {
        self.entries.get(name)
    }

    /// Returns `true` if `name` is a registered signal.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.contains_key(name)
    }

    /// Iterates over `(name, value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &SignalValue)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Every BDD handle stored in the table (boolean signals and all bits
    /// of numeric signals); used to pin signals across GC/reordering.
    pub fn refs(&self) -> Vec<Ref> {
        let mut out = Vec::new();
        for value in self.entries.values() {
            value.push_refs(&mut out);
        }
        out
    }

    /// Names of all signals, sorted.
    pub fn names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.entries.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }

    /// Lowers a propositional formula to a BDD over the table's variables.
    ///
    /// # Errors
    ///
    /// See [`LowerError`].
    pub fn lower(&self, bdd: &mut Bdd, e: &PropExpr) -> Result<Ref, LowerError> {
        self.lower_with(bdd, e, &[])
    }

    /// Lowers `e` with interpretation overrides.
    ///
    /// Each override maps an exact occurrence pattern (name + primed flag)
    /// to a replacement value. Primed occurrences without an override fall
    /// back to the unprimed signal (Definition 5: `q'` is defined by the
    /// same function as `q`).
    ///
    /// # Errors
    ///
    /// See [`LowerError`].
    pub fn lower_with(
        &self,
        bdd: &mut Bdd,
        e: &PropExpr,
        overrides: &[(SignalRef, SignalValue)],
    ) -> Result<Ref, LowerError> {
        match e {
            PropExpr::Const(c) => Ok(bdd.constant(*c)),
            PropExpr::Atom(s) => match self.resolve(s, overrides)? {
                SignalValue::Bool(r) => Ok(r),
                SignalValue::Num(_) => Err(LowerError::TypeMismatch {
                    signal: s.name.clone(),
                    expected: "boolean",
                }),
            },
            PropExpr::Cmp { lhs, op, rhs } => self.lower_cmp(bdd, lhs, *op, rhs, overrides),
            PropExpr::Not(a) => {
                let fa = self.lower_with(bdd, a, overrides)?;
                Ok(bdd.not(fa))
            }
            PropExpr::And(a, b) => {
                let fa = self.lower_with(bdd, a, overrides)?;
                let fb = self.lower_with(bdd, b, overrides)?;
                Ok(bdd.and(fa, fb))
            }
            PropExpr::Or(a, b) => {
                let fa = self.lower_with(bdd, a, overrides)?;
                let fb = self.lower_with(bdd, b, overrides)?;
                Ok(bdd.or(fa, fb))
            }
            PropExpr::Implies(a, b) => {
                let fa = self.lower_with(bdd, a, overrides)?;
                let fb = self.lower_with(bdd, b, overrides)?;
                Ok(bdd.implies(fa, fb))
            }
            PropExpr::Iff(a, b) => {
                let fa = self.lower_with(bdd, a, overrides)?;
                let fb = self.lower_with(bdd, b, overrides)?;
                Ok(bdd.iff(fa, fb))
            }
        }
    }

    fn resolve(
        &self,
        s: &SignalRef,
        overrides: &[(SignalRef, SignalValue)],
    ) -> Result<SignalValue, LowerError> {
        if let Some((_, v)) = overrides.iter().find(|(pat, _)| pat == s) {
            return Ok(v.clone());
        }
        // Primed occurrences default to the unprimed interpretation.
        self.entries
            .get(&s.name)
            .cloned()
            .ok_or_else(|| LowerError::UnknownSignal(s.name.clone()))
    }

    fn lower_cmp(
        &self,
        bdd: &mut Bdd,
        lhs: &SignalRef,
        op: CmpOp,
        rhs: &CmpRhs,
        overrides: &[(SignalRef, SignalValue)],
    ) -> Result<Ref, LowerError> {
        let lv = self.resolve(lhs, overrides)?;
        let lnum = match lv {
            SignalValue::Num(n) => n,
            SignalValue::Bool(_) => {
                return Err(LowerError::TypeMismatch {
                    signal: lhs.name.clone(),
                    expected: "numeric",
                })
            }
        };
        match rhs {
            CmpRhs::Int(c) => Ok(cmp_const(bdd, &lnum, op, *c)),
            CmpRhs::Sym(r) => {
                // A signal name takes precedence; otherwise try an
                // enumeration literal of the lhs variable.
                let rhs_resolved = if overrides.iter().any(|(pat, _)| pat == r)
                    || self.entries.contains_key(&r.name)
                {
                    Some(self.resolve(r, overrides)?)
                } else {
                    None
                };
                match rhs_resolved {
                    Some(SignalValue::Num(rnum)) => {
                        if lnum.offset != rnum.offset {
                            return Err(LowerError::IncompatibleEncodings(
                                lhs.name.clone(),
                                r.name.clone(),
                            ));
                        }
                        Ok(cmp_vars(bdd, &lnum.bits, op, &rnum.bits))
                    }
                    Some(SignalValue::Bool(_)) => Err(LowerError::TypeMismatch {
                        signal: r.name.clone(),
                        expected: "numeric",
                    }),
                    None => {
                        let lit = lnum.literals.get(&r.name).copied().ok_or_else(|| {
                            LowerError::UnknownLiteral {
                                lhs: lhs.name.clone(),
                                name: r.name.clone(),
                            }
                        })?;
                        Ok(cmp_const(bdd, &lnum, op, lit))
                    }
                }
            }
        }
    }
}

/// Builds the BDD for `sig op constant`.
fn cmp_const(bdd: &mut Bdd, sig: &NumericSignal, op: CmpOp, c: i64) -> Ref {
    let raw = c - sig.offset;
    let width = sig.bits.len();
    let max_raw: i64 = if width >= 63 {
        i64::MAX
    } else {
        (1 << width) - 1
    };
    // Handle out-of-range constants by the mathematical truth value.
    if raw < 0 {
        return match op {
            CmpOp::Eq => Ref::FALSE,
            CmpOp::Ne => Ref::TRUE,
            CmpOp::Lt | CmpOp::Le => Ref::FALSE,
            CmpOp::Gt | CmpOp::Ge => Ref::TRUE,
        };
    }
    if raw > max_raw {
        return match op {
            CmpOp::Eq => Ref::FALSE,
            CmpOp::Ne => Ref::TRUE,
            CmpOp::Lt | CmpOp::Le => Ref::TRUE,
            CmpOp::Gt | CmpOp::Ge => Ref::FALSE,
        };
    }
    let raw = raw as u64;
    match op {
        CmpOp::Eq => eq_const(bdd, &sig.bits, raw),
        CmpOp::Ne => {
            let e = eq_const(bdd, &sig.bits, raw);
            bdd.not(e)
        }
        CmpOp::Lt => lt_const(bdd, &sig.bits, raw),
        CmpOp::Le => lt_const(bdd, &sig.bits, raw + 1),
        CmpOp::Ge => {
            let l = lt_const(bdd, &sig.bits, raw);
            bdd.not(l)
        }
        CmpOp::Gt => {
            let l = lt_const(bdd, &sig.bits, raw + 1);
            bdd.not(l)
        }
    }
}

fn eq_const(bdd: &mut Bdd, bits: &[Ref], c: u64) -> Ref {
    let mut acc = Ref::TRUE;
    for (i, &bit) in bits.iter().enumerate() {
        let want = (c >> i) & 1 == 1;
        let term = if want { bit } else { bdd.not(bit) };
        acc = bdd.and(acc, term);
    }
    acc
}

/// `value(bits) < c` for an unsigned constant `c` (which may be `2^width`).
fn lt_const(bdd: &mut Bdd, bits: &[Ref], c: u64) -> Ref {
    let width = bits.len() as u32;
    if c == 0 {
        return Ref::FALSE;
    }
    if width < 64 && c >= (1u64 << width) {
        return Ref::TRUE;
    }
    // MSB-first ripple: lt = (bit < c_i) | (bit == c_i) & lt_rest
    let mut lt = Ref::FALSE;
    for (i, &bit) in bits.iter().enumerate() {
        let ci = (c >> i) & 1 == 1;
        if ci {
            // bit < 1 when bit = 0; otherwise equal here, defer to rest
            let nb = bdd.not(bit);
            let keep = bdd.and(bit, lt);
            lt = bdd.or(nb, keep);
        } else {
            // bit < 0 impossible; equal when bit = 0
            let nb = bdd.not(bit);
            lt = bdd.and(nb, lt);
        }
    }
    lt
}

/// `value(a) op value(b)` bitwise (widths may differ; shorter padded).
fn cmp_vars(bdd: &mut Bdd, a: &[Ref], op: CmpOp, b: &[Ref]) -> Ref {
    let width = a.len().max(b.len());
    let bit = |bits: &[Ref], i: usize| -> Ref { bits.get(i).copied().unwrap_or(Ref::FALSE) };
    match op {
        CmpOp::Eq | CmpOp::Ne => {
            let mut acc = Ref::TRUE;
            for i in 0..width {
                let (ai, bi) = (bit(a, i), bit(b, i));
                let e = bdd.iff(ai, bi);
                acc = bdd.and(acc, e);
            }
            if op == CmpOp::Eq {
                acc
            } else {
                bdd.not(acc)
            }
        }
        CmpOp::Lt | CmpOp::Ge => {
            // LSB-first ripple: lt_i = (a_i < b_i) | (a_i == b_i) & lt_{i-1}
            let mut lt = Ref::FALSE;
            for i in 0..width {
                let (ai, bi) = (bit(a, i), bit(b, i));
                let na = bdd.not(ai);
                let strictly = bdd.and(na, bi);
                let eq = bdd.iff(ai, bi);
                let keep = bdd.and(eq, lt);
                lt = bdd.or(strictly, keep);
            }
            if op == CmpOp::Lt {
                lt
            } else {
                bdd.not(lt)
            }
        }
        CmpOp::Gt | CmpOp::Le => {
            let gt = cmp_vars(bdd, b, CmpOp::Lt, a);
            if op == CmpOp::Gt {
                gt
            } else {
                bdd.not(gt)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use covest_ctl::PropExpr;

    /// Builds a table with a boolean `p`, and a 3-bit counter `count`
    /// (range 0..7) made of raw variables.
    fn table(bdd: &mut Bdd) -> (SignalTable, Vec<covest_bdd::VarId>) {
        let p = bdd.new_named_var("p");
        let bits: Vec<_> = (0..3).map(|i| bdd.new_named_var(format!("c{i}"))).collect();
        let mut t = SignalTable::new();
        let fp = bdd.var(p);
        t.insert_bool("p", fp);
        let bit_fns: Vec<Ref> = bits.iter().map(|&v| bdd.var(v)).collect();
        t.insert_num("count", NumericSignal::unsigned(bit_fns));
        let mut all = vec![p];
        all.extend(bits);
        (t, all)
    }

    fn count_assignments(bdd: &Bdd, f: Ref, vars: &[covest_bdd::VarId]) -> u128 {
        bdd.sat_count_exact(f, vars)
    }

    #[test]
    fn lower_atom_and_connectives() {
        let mut bdd = Bdd::new();
        let (t, _vars) = table(&mut bdd);
        let e = PropExpr::atom("p").not().or(PropExpr::atom("p"));
        let f = t.lower(&mut bdd, &e).expect("lowers");
        assert!(f.is_true());
    }

    #[test]
    fn lower_eq_and_ne() {
        let mut bdd = Bdd::new();
        let (t, vars) = table(&mut bdd);
        let f = t
            .lower(&mut bdd, &PropExpr::cmp_int("count", CmpOp::Eq, 5))
            .expect("lowers");
        // p free (2) * 1 assignment of count bits
        assert_eq!(count_assignments(&bdd, f, &vars), 2);
        let g = t
            .lower(&mut bdd, &PropExpr::cmp_int("count", CmpOp::Ne, 5))
            .expect("lowers");
        assert_eq!(count_assignments(&bdd, g, &vars), 14);
    }

    #[test]
    fn lower_orderings_match_semantics() {
        let mut bdd = Bdd::new();
        let (t, vars) = table(&mut bdd);
        for c in 0..=7i64 {
            for (op, expect) in [
                (CmpOp::Lt, (0..8).filter(|v| *v < c).count()),
                (CmpOp::Le, (0..8).filter(|v| *v <= c).count()),
                (CmpOp::Gt, (0..8).filter(|v| *v > c).count()),
                (CmpOp::Ge, (0..8).filter(|v| *v >= c).count()),
            ] {
                let f = t
                    .lower(&mut bdd, &PropExpr::cmp_int("count", op, c))
                    .expect("lowers");
                assert_eq!(
                    count_assignments(&bdd, f, &vars),
                    2 * expect as u128,
                    "count {op:?} {c}"
                );
            }
        }
    }

    #[test]
    fn out_of_range_constants() {
        let mut bdd = Bdd::new();
        let (t, _) = table(&mut bdd);
        let f = t
            .lower(&mut bdd, &PropExpr::cmp_int("count", CmpOp::Lt, 100))
            .expect("lowers");
        assert!(f.is_true());
        let g = t
            .lower(&mut bdd, &PropExpr::cmp_int("count", CmpOp::Eq, -1))
            .expect("lowers");
        assert!(g.is_false());
        let h = t
            .lower(&mut bdd, &PropExpr::cmp_int("count", CmpOp::Ge, -1))
            .expect("lowers");
        assert!(h.is_true());
    }

    #[test]
    fn var_var_comparisons() {
        let mut bdd = Bdd::new();
        let a_vars = bdd.new_vars(2);
        let b_vars = bdd.new_vars(2);
        let a_bits: Vec<Ref> = a_vars.iter().map(|&v| bdd.var(v)).collect();
        let b_bits: Vec<Ref> = b_vars.iter().map(|&v| bdd.var(v)).collect();
        let mut t = SignalTable::new();
        t.insert_num("a", NumericSignal::unsigned(a_bits));
        t.insert_num("b", NumericSignal::unsigned(b_bits));
        let vars: Vec<_> = (0..4).map(covest_bdd::VarId::from_index).collect();
        // a = b has 4 solutions out of 16; a < b has 6.
        let eq = t
            .lower(&mut bdd, &PropExpr::cmp_sym("a", CmpOp::Eq, "b"))
            .expect("lowers");
        assert_eq!(bdd.sat_count_exact(eq, &vars), 4);
        let lt = t
            .lower(&mut bdd, &PropExpr::cmp_sym("a", CmpOp::Lt, "b"))
            .expect("lowers");
        assert_eq!(bdd.sat_count_exact(lt, &vars), 6);
        let le = t
            .lower(&mut bdd, &PropExpr::cmp_sym("a", CmpOp::Le, "b"))
            .expect("lowers");
        assert_eq!(bdd.sat_count_exact(le, &vars), 10);
    }

    #[test]
    fn enum_literals_resolve() {
        let mut bdd = Bdd::new();
        let bit = bdd.new_var();
        let fbit = bdd.var(bit);
        let mut t = SignalTable::new();
        let mut sig = NumericSignal::unsigned(vec![fbit]);
        sig.literals.insert("idle".to_owned(), 0);
        sig.literals.insert("busy".to_owned(), 1);
        t.insert_num("state", sig);
        let f = t
            .lower(&mut bdd, &PropExpr::cmp_sym("state", CmpOp::Eq, "busy"))
            .expect("lowers");
        assert_eq!(f, fbit);
        let e = t
            .lower(&mut bdd, &PropExpr::cmp_sym("state", CmpOp::Eq, "bogus"))
            .unwrap_err();
        assert!(matches!(e, LowerError::UnknownLiteral { .. }));
    }

    #[test]
    fn offsets_shift_constants() {
        let mut bdd = Bdd::new();
        let vars2 = bdd.new_vars(2);
        let bits: Vec<Ref> = vars2.iter().map(|&v| bdd.var(v)).collect();
        let mut t = SignalTable::new();
        t.insert_num(
            "x",
            NumericSignal {
                bits,
                offset: 10,
                literals: HashMap::new(),
            },
        );
        let vars: Vec<_> = (0..2).map(covest_bdd::VarId::from_index).collect();
        // x ranges over 10..13; x <= 11 has 2 solutions.
        let f = t
            .lower(&mut bdd, &PropExpr::cmp_int("x", CmpOp::Le, 11))
            .expect("lowers");
        assert_eq!(bdd.sat_count_exact(f, &vars), 2);
    }

    #[test]
    fn overrides_replace_interpretation() {
        let mut bdd = Bdd::new();
        let (t, _) = table(&mut bdd);
        let q = PropExpr::atom("p");
        let normal = t.lower(&mut bdd, &q).expect("lowers");
        let flipped = bdd.not(normal);
        let via_override = t
            .lower_with(
                &mut bdd,
                &q,
                &[(SignalRef::new("p"), SignalValue::Bool(flipped))],
            )
            .expect("lowers");
        assert_eq!(via_override, flipped);
        // Primed occurrences default to the unprimed meaning...
        let primed_expr = PropExpr::Atom(SignalRef::primed("p"));
        let primed_default = t.lower(&mut bdd, &primed_expr).expect("lowers");
        assert_eq!(primed_default, normal);
        // ...but can be overridden independently.
        let primed_override = t
            .lower_with(
                &mut bdd,
                &primed_expr,
                &[(SignalRef::primed("p"), SignalValue::Bool(flipped))],
            )
            .expect("lowers");
        assert_eq!(primed_override, flipped);
    }

    #[test]
    fn errors_are_reported() {
        let mut bdd = Bdd::new();
        let (t, _) = table(&mut bdd);
        assert!(matches!(
            t.lower(&mut bdd, &PropExpr::atom("nope")).unwrap_err(),
            LowerError::UnknownSignal(_)
        ));
        assert!(matches!(
            t.lower(&mut bdd, &PropExpr::atom("count")).unwrap_err(),
            LowerError::TypeMismatch { .. }
        ));
        assert!(matches!(
            t.lower(&mut bdd, &PropExpr::cmp_int("p", CmpOp::Eq, 1))
                .unwrap_err(),
            LowerError::TypeMismatch { .. }
        ));
    }
}
