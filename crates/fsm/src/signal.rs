//! Named signal tables and lowering of propositional formulas to BDDs.
//!
//! A [`SignalTable`] maps signal names to their semantic functions over the
//! *current-state* (and input) BDD variables. The coverage machinery of the
//! DAC'99 paper manipulates signal interpretations directly:
//!
//! - `depend(b)` re-lowers `b` with the observed signal interpreted as its
//!   complement;
//! - the dual FSM of Definition 2 flips the observed signal's function on a
//!   single state;
//! - the observability transformation introduces a primed copy `q'` whose
//!   default interpretation equals `q`.
//!
//! All three are expressed through the `overrides` parameter of
//! [`SignalTable::lower_with`].
//!
//! Signal functions are owned [`Func`] handles: storing a table keeps its
//! functions rooted across garbage collection and dynamic reordering, so
//! there is no separate root enumeration to maintain.

use std::collections::HashMap;

use covest_bdd::{BddManager, Func};
use covest_ctl::{CmpOp, CmpRhs, PropExpr, SignalRef};

use crate::error::LowerError;

/// A multi-bit (range or enumeration) signal: an unsigned binary value,
/// LSB first, plus an additive offset and optional enumeration literals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NumericSignal {
    /// Bit functions, least significant first.
    pub bits: Vec<Func>,
    /// Value represented = binary(bits) + offset.
    pub offset: i64,
    /// Enumeration literals naming particular values (e.g. `idle ↦ 0`).
    pub literals: HashMap<String, i64>,
}

impl NumericSignal {
    /// A plain unsigned signal with the given bit functions (LSB first).
    pub fn unsigned(bits: Vec<Func>) -> Self {
        NumericSignal {
            bits,
            offset: 0,
            literals: HashMap::new(),
        }
    }

    /// Inclusive range of representable values.
    pub fn value_range(&self) -> (i64, i64) {
        let span = if self.bits.len() >= 63 {
            i64::MAX
        } else {
            (1i64 << self.bits.len()) - 1
        };
        (self.offset, self.offset.saturating_add(span))
    }
}

/// The semantic value of a signal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SignalValue {
    /// A boolean signal: a single owned BDD handle over state/input
    /// variables.
    Bool(Func),
    /// A multi-bit numeric signal.
    Num(NumericSignal),
}

/// A table of named signals with lowering of [`PropExpr`] to BDDs.
#[derive(Debug, Clone, Default)]
pub struct SignalTable {
    entries: HashMap<String, SignalValue>,
}

impl SignalTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a boolean signal. Returns the previous value, if any.
    pub fn insert_bool(&mut self, name: impl Into<String>, f: Func) -> Option<SignalValue> {
        self.entries.insert(name.into(), SignalValue::Bool(f))
    }

    /// Registers a numeric signal. Returns the previous value, if any.
    pub fn insert_num(
        &mut self,
        name: impl Into<String>,
        sig: NumericSignal,
    ) -> Option<SignalValue> {
        self.entries.insert(name.into(), SignalValue::Num(sig))
    }

    /// Looks up a signal by name.
    pub fn get(&self, name: &str) -> Option<&SignalValue> {
        self.entries.get(name)
    }

    /// Returns `true` if `name` is a registered signal.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.contains_key(name)
    }

    /// Iterates over `(name, value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &SignalValue)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Names of all signals, sorted.
    pub fn names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.entries.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }

    /// Lowers a propositional formula to a BDD over the table's variables.
    ///
    /// # Errors
    ///
    /// See [`LowerError`].
    pub fn lower(&self, bdd: &BddManager, e: &PropExpr) -> Result<Func, LowerError> {
        self.lower_with(bdd, e, &[])
    }

    /// Lowers `e` with interpretation overrides.
    ///
    /// Each override maps an exact occurrence pattern (name + primed flag)
    /// to a replacement value. Primed occurrences without an override fall
    /// back to the unprimed signal (Definition 5: `q'` is defined by the
    /// same function as `q`).
    ///
    /// # Errors
    ///
    /// See [`LowerError`].
    pub fn lower_with(
        &self,
        bdd: &BddManager,
        e: &PropExpr,
        overrides: &[(SignalRef, SignalValue)],
    ) -> Result<Func, LowerError> {
        match e {
            PropExpr::Const(c) => Ok(bdd.constant(*c)),
            PropExpr::Atom(s) => match self.resolve(s, overrides)? {
                SignalValue::Bool(r) => Ok(r),
                SignalValue::Num(_) => Err(LowerError::TypeMismatch {
                    signal: s.name.clone(),
                    expected: "boolean",
                }),
            },
            PropExpr::Cmp { lhs, op, rhs } => self.lower_cmp(bdd, lhs, *op, rhs, overrides),
            PropExpr::Not(a) => Ok(self.lower_with(bdd, a, overrides)?.not()),
            PropExpr::And(a, b) => {
                let fa = self.lower_with(bdd, a, overrides)?;
                let fb = self.lower_with(bdd, b, overrides)?;
                Ok(fa.and(&fb))
            }
            PropExpr::Or(a, b) => {
                let fa = self.lower_with(bdd, a, overrides)?;
                let fb = self.lower_with(bdd, b, overrides)?;
                Ok(fa.or(&fb))
            }
            PropExpr::Implies(a, b) => {
                let fa = self.lower_with(bdd, a, overrides)?;
                let fb = self.lower_with(bdd, b, overrides)?;
                Ok(fa.implies(&fb))
            }
            PropExpr::Iff(a, b) => {
                let fa = self.lower_with(bdd, a, overrides)?;
                let fb = self.lower_with(bdd, b, overrides)?;
                Ok(fa.iff(&fb))
            }
        }
    }

    fn resolve(
        &self,
        s: &SignalRef,
        overrides: &[(SignalRef, SignalValue)],
    ) -> Result<SignalValue, LowerError> {
        if let Some((_, v)) = overrides.iter().find(|(pat, _)| pat == s) {
            return Ok(v.clone());
        }
        // Primed occurrences default to the unprimed interpretation.
        self.entries
            .get(&s.name)
            .cloned()
            .ok_or_else(|| LowerError::UnknownSignal(s.name.clone()))
    }

    fn lower_cmp(
        &self,
        bdd: &BddManager,
        lhs: &SignalRef,
        op: CmpOp,
        rhs: &CmpRhs,
        overrides: &[(SignalRef, SignalValue)],
    ) -> Result<Func, LowerError> {
        let lv = self.resolve(lhs, overrides)?;
        let lnum = match lv {
            SignalValue::Num(n) => n,
            SignalValue::Bool(_) => {
                return Err(LowerError::TypeMismatch {
                    signal: lhs.name.clone(),
                    expected: "numeric",
                })
            }
        };
        match rhs {
            CmpRhs::Int(c) => Ok(cmp_const(bdd, &lnum, op, *c)),
            CmpRhs::Sym(r) => {
                // A signal name takes precedence; otherwise try an
                // enumeration literal of the lhs variable.
                let rhs_resolved = if overrides.iter().any(|(pat, _)| pat == r)
                    || self.entries.contains_key(&r.name)
                {
                    Some(self.resolve(r, overrides)?)
                } else {
                    None
                };
                match rhs_resolved {
                    Some(SignalValue::Num(rnum)) => {
                        if lnum.offset != rnum.offset {
                            return Err(LowerError::IncompatibleEncodings(
                                lhs.name.clone(),
                                r.name.clone(),
                            ));
                        }
                        Ok(cmp_vars(bdd, &lnum.bits, op, &rnum.bits))
                    }
                    Some(SignalValue::Bool(_)) => Err(LowerError::TypeMismatch {
                        signal: r.name.clone(),
                        expected: "numeric",
                    }),
                    None => {
                        let lit = lnum.literals.get(&r.name).copied().ok_or_else(|| {
                            LowerError::UnknownLiteral {
                                lhs: lhs.name.clone(),
                                name: r.name.clone(),
                            }
                        })?;
                        Ok(cmp_const(bdd, &lnum, op, lit))
                    }
                }
            }
        }
    }
}

/// Builds the BDD for `sig op constant`.
fn cmp_const(bdd: &BddManager, sig: &NumericSignal, op: CmpOp, c: i64) -> Func {
    let raw = c - sig.offset;
    let width = sig.bits.len();
    let max_raw: i64 = if width >= 63 {
        i64::MAX
    } else {
        (1 << width) - 1
    };
    // Handle out-of-range constants by the mathematical truth value.
    if raw < 0 {
        return match op {
            CmpOp::Eq => bdd.constant(false),
            CmpOp::Ne => bdd.constant(true),
            CmpOp::Lt | CmpOp::Le => bdd.constant(false),
            CmpOp::Gt | CmpOp::Ge => bdd.constant(true),
        };
    }
    if raw > max_raw {
        return match op {
            CmpOp::Eq => bdd.constant(false),
            CmpOp::Ne => bdd.constant(true),
            CmpOp::Lt | CmpOp::Le => bdd.constant(true),
            CmpOp::Gt | CmpOp::Ge => bdd.constant(false),
        };
    }
    let raw = raw as u64;
    match op {
        CmpOp::Eq => eq_const(bdd, &sig.bits, raw),
        CmpOp::Ne => eq_const(bdd, &sig.bits, raw).not(),
        CmpOp::Lt => lt_const(bdd, &sig.bits, raw),
        CmpOp::Le => lt_const(bdd, &sig.bits, raw + 1),
        CmpOp::Ge => lt_const(bdd, &sig.bits, raw).not(),
        CmpOp::Gt => lt_const(bdd, &sig.bits, raw + 1).not(),
    }
}

fn eq_const(bdd: &BddManager, bits: &[Func], c: u64) -> Func {
    let mut acc = bdd.constant(true);
    for (i, bit) in bits.iter().enumerate() {
        let want = (c >> i) & 1 == 1;
        let term = if want { bit.clone() } else { bit.not() };
        acc = acc.and(&term);
    }
    acc
}

/// `value(bits) < c` for an unsigned constant `c` (which may be `2^width`).
fn lt_const(bdd: &BddManager, bits: &[Func], c: u64) -> Func {
    let width = bits.len() as u32;
    if c == 0 {
        return bdd.constant(false);
    }
    if width < 64 && c >= (1u64 << width) {
        return bdd.constant(true);
    }
    // LSB-first ripple: lt = (bit < c_i) | (bit == c_i) & lt_rest
    let mut lt = bdd.constant(false);
    for (i, bit) in bits.iter().enumerate() {
        let ci = (c >> i) & 1 == 1;
        if ci {
            // bit < 1 when bit = 0; otherwise equal here, defer to rest
            lt = bit.not().or(&bit.and(&lt));
        } else {
            // bit < 0 impossible; equal when bit = 0
            lt = bit.not().and(&lt);
        }
    }
    lt
}

/// `value(a) op value(b)` bitwise (widths may differ; shorter padded).
fn cmp_vars(bdd: &BddManager, a: &[Func], op: CmpOp, b: &[Func]) -> Func {
    let width = a.len().max(b.len());
    let bit = |bits: &[Func], i: usize| -> Func {
        bits.get(i).cloned().unwrap_or_else(|| bdd.constant(false))
    };
    match op {
        CmpOp::Eq | CmpOp::Ne => {
            let mut acc = bdd.constant(true);
            for i in 0..width {
                let (ai, bi) = (bit(a, i), bit(b, i));
                acc = acc.and(&ai.iff(&bi));
            }
            if op == CmpOp::Eq {
                acc
            } else {
                acc.not()
            }
        }
        CmpOp::Lt | CmpOp::Ge => {
            // LSB-first ripple: lt_i = (a_i < b_i) | (a_i == b_i) & lt_{i-1}
            let mut lt = bdd.constant(false);
            for i in 0..width {
                let (ai, bi) = (bit(a, i), bit(b, i));
                let strictly = ai.not().and(&bi);
                let keep = ai.iff(&bi).and(&lt);
                lt = strictly.or(&keep);
            }
            if op == CmpOp::Lt {
                lt
            } else {
                lt.not()
            }
        }
        CmpOp::Gt | CmpOp::Le => {
            let gt = cmp_vars(bdd, b, CmpOp::Lt, a);
            if op == CmpOp::Gt {
                gt
            } else {
                gt.not()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use covest_bdd::VarId;
    use covest_ctl::PropExpr;

    /// Builds a table with a boolean `p`, and a 3-bit counter `count`
    /// (range 0..7) made of raw variables.
    fn table(bdd: &BddManager) -> (SignalTable, Vec<VarId>) {
        let p = bdd.new_named_var("p");
        let bits: Vec<_> = (0..3).map(|i| bdd.new_named_var(format!("c{i}"))).collect();
        let mut t = SignalTable::new();
        t.insert_bool("p", bdd.var(p));
        let bit_fns: Vec<Func> = bits.iter().map(|&v| bdd.var(v)).collect();
        t.insert_num("count", NumericSignal::unsigned(bit_fns));
        let mut all = vec![p];
        all.extend(bits);
        (t, all)
    }

    #[test]
    fn lower_atom_and_connectives() {
        let bdd = BddManager::new();
        let (t, _vars) = table(&bdd);
        let e = PropExpr::atom("p").not().or(PropExpr::atom("p"));
        let f = t.lower(&bdd, &e).expect("lowers");
        assert!(f.is_true());
    }

    #[test]
    fn lower_eq_and_ne() {
        let bdd = BddManager::new();
        let (t, vars) = table(&bdd);
        let f = t
            .lower(&bdd, &PropExpr::cmp_int("count", CmpOp::Eq, 5))
            .expect("lowers");
        // p free (2) * 1 assignment of count bits
        assert_eq!(f.sat_count_exact(&vars), 2);
        let g = t
            .lower(&bdd, &PropExpr::cmp_int("count", CmpOp::Ne, 5))
            .expect("lowers");
        assert_eq!(g.sat_count_exact(&vars), 14);
    }

    #[test]
    fn lower_orderings_match_semantics() {
        let bdd = BddManager::new();
        let (t, vars) = table(&bdd);
        for c in 0..=7i64 {
            for (op, expect) in [
                (CmpOp::Lt, (0..8).filter(|v| *v < c).count()),
                (CmpOp::Le, (0..8).filter(|v| *v <= c).count()),
                (CmpOp::Gt, (0..8).filter(|v| *v > c).count()),
                (CmpOp::Ge, (0..8).filter(|v| *v >= c).count()),
            ] {
                let f = t
                    .lower(&bdd, &PropExpr::cmp_int("count", op, c))
                    .expect("lowers");
                assert_eq!(
                    f.sat_count_exact(&vars),
                    2 * expect as u128,
                    "count {op:?} {c}"
                );
            }
        }
    }

    #[test]
    fn out_of_range_constants() {
        let bdd = BddManager::new();
        let (t, _) = table(&bdd);
        let f = t
            .lower(&bdd, &PropExpr::cmp_int("count", CmpOp::Lt, 100))
            .expect("lowers");
        assert!(f.is_true());
        let g = t
            .lower(&bdd, &PropExpr::cmp_int("count", CmpOp::Eq, -1))
            .expect("lowers");
        assert!(g.is_false());
        let h = t
            .lower(&bdd, &PropExpr::cmp_int("count", CmpOp::Ge, -1))
            .expect("lowers");
        assert!(h.is_true());
    }

    #[test]
    fn var_var_comparisons() {
        let bdd = BddManager::new();
        let a_vars = bdd.new_vars(2);
        let b_vars = bdd.new_vars(2);
        let a_bits: Vec<Func> = a_vars.iter().map(|&v| bdd.var(v)).collect();
        let b_bits: Vec<Func> = b_vars.iter().map(|&v| bdd.var(v)).collect();
        let mut t = SignalTable::new();
        t.insert_num("a", NumericSignal::unsigned(a_bits));
        t.insert_num("b", NumericSignal::unsigned(b_bits));
        let vars: Vec<_> = (0..4).map(VarId::from_index).collect();
        // a = b has 4 solutions out of 16; a < b has 6.
        let eq = t
            .lower(&bdd, &PropExpr::cmp_sym("a", CmpOp::Eq, "b"))
            .expect("lowers");
        assert_eq!(eq.sat_count_exact(&vars), 4);
        let lt = t
            .lower(&bdd, &PropExpr::cmp_sym("a", CmpOp::Lt, "b"))
            .expect("lowers");
        assert_eq!(lt.sat_count_exact(&vars), 6);
        let le = t
            .lower(&bdd, &PropExpr::cmp_sym("a", CmpOp::Le, "b"))
            .expect("lowers");
        assert_eq!(le.sat_count_exact(&vars), 10);
    }

    #[test]
    fn enum_literals_resolve() {
        let bdd = BddManager::new();
        let bit = bdd.new_var();
        let fbit = bdd.var(bit);
        let mut t = SignalTable::new();
        let mut sig = NumericSignal::unsigned(vec![fbit.clone()]);
        sig.literals.insert("idle".to_owned(), 0);
        sig.literals.insert("busy".to_owned(), 1);
        t.insert_num("state", sig);
        let f = t
            .lower(&bdd, &PropExpr::cmp_sym("state", CmpOp::Eq, "busy"))
            .expect("lowers");
        assert_eq!(f, fbit);
        let e = t
            .lower(&bdd, &PropExpr::cmp_sym("state", CmpOp::Eq, "bogus"))
            .unwrap_err();
        assert!(matches!(e, LowerError::UnknownLiteral { .. }));
    }

    #[test]
    fn offsets_shift_constants() {
        let bdd = BddManager::new();
        let vars2 = bdd.new_vars(2);
        let bits: Vec<Func> = vars2.iter().map(|&v| bdd.var(v)).collect();
        let mut t = SignalTable::new();
        t.insert_num(
            "x",
            NumericSignal {
                bits,
                offset: 10,
                literals: HashMap::new(),
            },
        );
        let vars: Vec<_> = (0..2).map(VarId::from_index).collect();
        // x ranges over 10..13; x <= 11 has 2 solutions.
        let f = t
            .lower(&bdd, &PropExpr::cmp_int("x", CmpOp::Le, 11))
            .expect("lowers");
        assert_eq!(f.sat_count_exact(&vars), 2);
    }

    #[test]
    fn overrides_replace_interpretation() {
        let bdd = BddManager::new();
        let (t, _) = table(&bdd);
        let q = PropExpr::atom("p");
        let normal = t.lower(&bdd, &q).expect("lowers");
        let flipped = normal.not();
        let via_override = t
            .lower_with(
                &bdd,
                &q,
                &[(SignalRef::new("p"), SignalValue::Bool(flipped.clone()))],
            )
            .expect("lowers");
        assert_eq!(via_override, flipped);
        // Primed occurrences default to the unprimed meaning...
        let primed_expr = PropExpr::Atom(SignalRef::primed("p"));
        let primed_default = t.lower(&bdd, &primed_expr).expect("lowers");
        assert_eq!(primed_default, normal);
        // ...but can be overridden independently.
        let primed_override = t
            .lower_with(
                &bdd,
                &primed_expr,
                &[(SignalRef::primed("p"), SignalValue::Bool(flipped.clone()))],
            )
            .expect("lowers");
        assert_eq!(primed_override, flipped);
    }

    #[test]
    fn errors_are_reported() {
        let bdd = BddManager::new();
        let (t, _) = table(&bdd);
        assert!(matches!(
            t.lower(&bdd, &PropExpr::atom("nope")).unwrap_err(),
            LowerError::UnknownSignal(_)
        ));
        assert!(matches!(
            t.lower(&bdd, &PropExpr::atom("count")).unwrap_err(),
            LowerError::TypeMismatch { .. }
        ));
        assert!(matches!(
            t.lower(&bdd, &PropExpr::cmp_int("p", CmpOp::Eq, 1))
                .unwrap_err(),
            LowerError::TypeMismatch { .. }
        ));
    }
}
