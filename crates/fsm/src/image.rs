//! Partitioned image computation: clustered transition relations with
//! early quantification.
//!
//! Every fixpoint in the workspace — `reachable(S0)`, the EX/EU/EG
//! fixpoints behind observability, the covered-set traversals — reduces
//! to image/preimage computation. Building the transition relation `T`
//! as one monolithic BDD is the dominant memory spike, so the default
//! engine keeps `T` as a *conjunctive partition* instead: the per-bit
//! parts are greedily merged into size-bounded clusters, and each
//! image/preimage is computed as a schedule-driven conjoin-and-quantify
//! (Burch–Clarke–Long early quantification) that eliminates every
//! variable at the earliest cluster where its support ends. The
//! monolithic path survives behind [`ImageMethod::Monolithic`] for A/B
//! comparison and is built lazily, only when actually requested.
//!
//! The clusters and the cached monolith are owned [`Func`] handles, so
//! the engine's transition relation pins itself across garbage collection
//! and reordering — no root enumeration is needed or possible.

use std::cell::RefCell;
use std::collections::BTreeSet;

use covest_bdd::{BddManager, Func, QuantSchedule, VarId};

/// How images and preimages are computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ImageMethod {
    /// Conjoin all transition parts into one BDD and use the two-operand
    /// fused relational product. Simple, but the monolith is usually the
    /// largest BDD in the system.
    Monolithic,
    /// Keep the transition relation as size-bounded clusters and sweep
    /// them with an early-quantification schedule (the default).
    #[default]
    Partitioned,
}

impl std::str::FromStr for ImageMethod {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "mono" | "monolithic" => Ok(ImageMethod::Monolithic),
            "part" | "partitioned" => Ok(ImageMethod::Partitioned),
            other => Err(format!(
                "unknown image method `{other}` (expected `mono` or `part`)"
            )),
        }
    }
}

impl std::fmt::Display for ImageMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImageMethod::Monolithic => write!(f, "mono"),
            ImageMethod::Partitioned => write!(f, "part"),
        }
    }
}

/// Configuration for [`ImageEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImageConfig {
    /// Image computation method.
    pub method: ImageMethod,
    /// Maximum node count of a merged cluster: a transition part is
    /// folded into an existing cluster only while the conjunction stays
    /// at or below this bound. Small thresholds keep peak memory low;
    /// large ones converge on the monolith.
    pub cluster_threshold: usize,
}

impl Default for ImageConfig {
    fn default() -> Self {
        ImageConfig {
            method: ImageMethod::default(),
            cluster_threshold: 500,
        }
    }
}

impl ImageConfig {
    /// The monolithic configuration (clustering threshold is unused).
    pub fn monolithic() -> Self {
        ImageConfig {
            method: ImageMethod::Monolithic,
            ..Default::default()
        }
    }
}

/// The image computation engine owned by a
/// [`SymbolicFsm`](crate::SymbolicFsm).
///
/// Holds a manager handle, the clustered transition relation, the three
/// early-quantification schedules (forward image, backward preimage, and
/// backward keeping inputs — the trace-replay variant), and a lazily
/// built monolithic `T` for [`ImageMethod::Monolithic`]. All BDD state is
/// owned [`Func`] handles: the engine keeps itself alive across
/// collection and reordering, and the schedules hold only variable ids.
#[derive(Debug, Clone)]
pub struct ImageEngine {
    config: ImageConfig,
    mgr: BddManager,
    clusters: Vec<Func>,
    /// Current-state + input variables (forward quantification set).
    fwd_vars: Vec<VarId>,
    /// Next-state + input variables (backward quantification set).
    bwd_vars: Vec<VarId>,
    /// Next-state variables only (backward, inputs kept).
    next_vars: Vec<VarId>,
    fwd: QuantSchedule,
    bwd: QuantSchedule,
    bwd_keep_inputs: QuantSchedule,
    /// Lazily conjoined monolithic transition relation.
    mono: RefCell<Option<Func>>,
}

impl ImageEngine {
    /// Builds an engine over the conjunctive partition `parts`.
    ///
    /// In partitioned mode, clusters are formed by greedy affinity
    /// merging: each part joins the existing cluster sharing the most
    /// support variables, unless the merged BDD would exceed
    /// `config.cluster_threshold` nodes, in which case it starts a new
    /// cluster. In monolithic mode the parts are kept as-is (no merge
    /// work): only the lazy full conjunction is ever formed.
    pub fn build(
        mgr: &BddManager,
        parts: &[Func],
        current_vars: &[VarId],
        input_vars: &[VarId],
        next_vars: &[VarId],
        config: ImageConfig,
    ) -> ImageEngine {
        let clusters = match config.method {
            ImageMethod::Partitioned => cluster_parts(parts, config.cluster_threshold),
            ImageMethod::Monolithic => parts.iter().filter(|p| !p.is_true()).cloned().collect(),
        };
        let mut fwd_vars = current_vars.to_vec();
        fwd_vars.extend_from_slice(input_vars);
        let mut bwd_vars = next_vars.to_vec();
        bwd_vars.extend_from_slice(input_vars);
        // The monolithic path quantifies over the lazy full conjunction
        // and never replays a schedule, so build them (sharing one
        // support computation) only when partitioning.
        let (fwd, bwd, bwd_keep_inputs) = match config.method {
            ImageMethod::Partitioned => {
                let mut schedules =
                    mgr.quant_schedule_many(&clusters, &[&fwd_vars, &bwd_vars, next_vars]);
                let bwd_keep_inputs = schedules.pop().expect("three lists in");
                let bwd = schedules.pop().expect("three lists in");
                let fwd = schedules.pop().expect("three lists in");
                (fwd, bwd, bwd_keep_inputs)
            }
            ImageMethod::Monolithic => Default::default(),
        };
        ImageEngine {
            config,
            mgr: mgr.clone(),
            clusters,
            fwd_vars,
            bwd_vars,
            next_vars: next_vars.to_vec(),
            fwd,
            bwd,
            bwd_keep_inputs,
            mono: RefCell::new(None),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> ImageConfig {
        self.config
    }

    /// The image method in use.
    pub fn method(&self) -> ImageMethod {
        self.config.method
    }

    /// The transition-relation clusters, in sweep order.
    pub fn clusters(&self) -> &[Func] {
        &self.clusters
    }

    /// The monolithic transition relation, conjoined (and cached) on
    /// first request. Partitioned-mode callers never pay for this.
    pub fn monolithic_trans(&self) -> Func {
        if let Some(t) = self.mono.borrow().as_ref() {
            return t.clone();
        }
        let t = self.mgr.and_many(&self.clusters);
        *self.mono.borrow_mut() = Some(t.clone());
        t
    }

    /// Seeds the monolith cache (used by `constrain` to extend an
    /// already-built monolith instead of re-conjoining all clusters).
    pub(crate) fn seed_mono(&self, trans: Func) {
        *self.mono.borrow_mut() = Some(trans);
    }

    /// The cached monolith, if it has been built.
    pub(crate) fn cached_mono(&self) -> Option<Func> {
        self.mono.borrow().clone()
    }

    /// `∃ current, inputs. T ∧ set` — the forward image of a state set
    /// (over current variables), as a BDD over **next** variables.
    pub fn forward(&self, set: &Func) -> Func {
        match self.config.method {
            ImageMethod::Monolithic => self.monolithic_trans().and_exists(set, &self.fwd_vars),
            ImageMethod::Partitioned => {
                self.mgr.and_exists_schedule(set, &self.clusters, &self.fwd)
            }
        }
    }

    /// `∃ next, inputs. T ∧ set_next` — the existential preimage of a
    /// state set already renamed to **next** variables, as a BDD over
    /// current variables.
    pub fn backward(&self, set_next: &Func) -> Func {
        match self.config.method {
            ImageMethod::Monolithic => self.monolithic_trans().and_exists(set_next, &self.bwd_vars),
            ImageMethod::Partitioned => {
                self.mgr
                    .and_exists_schedule(set_next, &self.clusters, &self.bwd)
            }
        }
    }

    /// `∃ next. T ∧ set_next` — like [`ImageEngine::backward`] but keeping
    /// the input variables free: the result relates each predecessor
    /// state to the inputs justifying the transition. This is what trace
    /// replay needs, and it never forces the monolith to exist.
    pub fn backward_with_inputs(&self, set_next: &Func) -> Func {
        match self.config.method {
            ImageMethod::Monolithic => self
                .monolithic_trans()
                .and_exists(set_next, &self.next_vars),
            ImageMethod::Partitioned => {
                self.mgr
                    .and_exists_schedule(set_next, &self.clusters, &self.bwd_keep_inputs)
            }
        }
    }
}

/// Greedy affinity clustering: each part merges into the existing
/// cluster with the largest shared support (falling back to the most
/// recent cluster when no support overlaps), unless the merged BDD would
/// exceed `threshold` nodes — then it starts a new cluster.
fn cluster_parts(parts: &[Func], threshold: usize) -> Vec<Func> {
    let mut clusters: Vec<Func> = Vec::new();
    let mut supports: Vec<BTreeSet<VarId>> = Vec::new();
    for p in parts {
        if p.is_true() {
            continue;
        }
        let psup: BTreeSet<VarId> = p.support().into_iter().collect();
        let best = supports
            .iter()
            .enumerate()
            .map(|(i, csup)| (csup.intersection(&psup).count(), i))
            .filter(|&(shared, _)| shared > 0)
            .max_by_key(|&(shared, i)| (shared, std::cmp::Reverse(i)))
            .map(|(_, i)| i)
            .or(if clusters.is_empty() {
                None
            } else {
                Some(clusters.len() - 1)
            });
        if let Some(i) = best {
            let merged = clusters[i].and(p);
            if merged.node_count() <= threshold {
                clusters[i] = merged;
                supports[i].extend(psup);
                continue;
            }
        }
        clusters.push(p.clone());
        supports.push(psup);
    }
    clusters
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three-bit shifter: b0' = inp, b1' = b0, b2' = b1. Each part's
    /// support is disjoint enough to exercise the schedule.
    fn shifter_parts(mgr: &BddManager) -> (Vec<Func>, Vec<VarId>, Vec<VarId>, Vec<VarId>) {
        let mut cur = Vec::new();
        let mut next = Vec::new();
        for i in 0..3 {
            cur.push(mgr.new_named_var(format!("b{i}")));
            next.push(mgr.new_named_var(format!("b{i}'")));
        }
        let inp = vec![mgr.new_named_var("inp")];
        let mut parts = Vec::new();
        let srcs = [inp[0], cur[0], cur[1]];
        for (i, &src) in srcs.iter().enumerate() {
            parts.push(mgr.var(next[i]).iff(&mgr.var(src)));
        }
        (parts, cur, inp, next)
    }

    fn engines(
        mgr: &BddManager,
        threshold: usize,
    ) -> (ImageEngine, ImageEngine, Vec<VarId>, Vec<VarId>) {
        let (parts, cur, inp, next) = shifter_parts(mgr);
        let part = ImageEngine::build(
            mgr,
            &parts,
            &cur,
            &inp,
            &next,
            ImageConfig {
                method: ImageMethod::Partitioned,
                cluster_threshold: threshold,
            },
        );
        let mono = ImageEngine::build(mgr, &parts, &cur, &inp, &next, ImageConfig::monolithic());
        (part, mono, cur, next)
    }

    #[test]
    fn forward_and_backward_match_monolithic() {
        for threshold in [1, 4, 64, 10_000] {
            let mgr = BddManager::new();
            let (part, mono, cur, next) = engines(&mgr, threshold);
            // A handful of state sets over current vars.
            let c0 = mgr.var(cur[0]);
            let c1 = mgr.var(cur[1]);
            let c2 = mgr.var(cur[2]);
            let s1 = c0.and(&c1);
            let s2 = s1.or(&c2);
            let s3 = s2.not();
            for set in [mgr.constant(true), mgr.constant(false), c0, s1, s2, s3] {
                assert_eq!(
                    part.forward(&set),
                    mono.forward(&set),
                    "forward diverges at threshold {threshold}"
                );
            }
            // Preimage operands live over next vars.
            let n0 = mgr.var(next[0]);
            let n2 = mgr.var(next[2]);
            let t1 = n0.xor(&n2);
            for set_next in [mgr.constant(true), n0.clone(), t1] {
                assert_eq!(
                    part.backward(&set_next),
                    mono.backward(&set_next),
                    "backward diverges at threshold {threshold}"
                );
                assert_eq!(
                    part.backward_with_inputs(&set_next),
                    mono.backward_with_inputs(&set_next),
                    "backward_with_inputs diverges at threshold {threshold}"
                );
            }
        }
    }

    #[test]
    fn threshold_bounds_cluster_count() {
        let mgr = BddManager::new();
        let (part_tiny, ..) = engines(&mgr, 1);
        // Threshold 1 cannot merge anything: one cluster per part.
        assert_eq!(part_tiny.clusters().len(), 3);
        let mgr2 = BddManager::new();
        let (part_big, ..) = engines(&mgr2, 10_000);
        // A huge threshold merges every affine part.
        assert!(part_big.clusters().len() < 3);
    }

    #[test]
    fn monolith_is_lazy_and_cached() {
        let mgr = BddManager::new();
        let (part, ..) = engines(&mgr, 4);
        assert!(part.cached_mono().is_none());
        let t1 = part.monolithic_trans();
        let t2 = part.monolithic_trans();
        assert_eq!(t1, t2);
        assert_eq!(part.cached_mono(), Some(t1.clone()));
        // The cached monolith is an owned handle: it survives a rootless
        // collection without any explicit protection.
        mgr.gc();
        assert_eq!(part.monolithic_trans(), t1);
    }

    #[test]
    fn method_parses_round_trip() {
        for (s, m) in [
            ("mono", ImageMethod::Monolithic),
            ("monolithic", ImageMethod::Monolithic),
            ("part", ImageMethod::Partitioned),
            ("partitioned", ImageMethod::Partitioned),
        ] {
            assert_eq!(s.parse::<ImageMethod>().unwrap(), m);
        }
        assert!("hybrid".parse::<ImageMethod>().is_err());
        assert_eq!(ImageMethod::Partitioned.to_string(), "part");
    }
}
