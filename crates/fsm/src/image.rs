//! Partitioned image computation: clustered transition relations with
//! early quantification.
//!
//! Every fixpoint in the workspace — `reachable(S0)`, the EX/EU/EG
//! fixpoints behind observability, the covered-set traversals — reduces
//! to image/preimage computation. Building the transition relation `T`
//! as one monolithic BDD is the dominant memory spike, so the default
//! engine keeps `T` as a *conjunctive partition* instead: the per-bit
//! parts are greedily merged into size-bounded clusters, and each
//! image/preimage is computed as a schedule-driven conjoin-and-quantify
//! (Burch–Clarke–Long early quantification) that eliminates every
//! variable at the earliest cluster where its support ends. The
//! monolithic path survives behind [`ImageMethod::Monolithic`] for A/B
//! comparison and is built lazily, only when actually requested.

use std::cell::Cell;
use std::collections::BTreeSet;

use covest_bdd::{Bdd, QuantSchedule, Ref, VarId};

/// How images and preimages are computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ImageMethod {
    /// Conjoin all transition parts into one BDD and use the two-operand
    /// fused relational product. Simple, but the monolith is usually the
    /// largest BDD in the system.
    Monolithic,
    /// Keep the transition relation as size-bounded clusters and sweep
    /// them with an early-quantification schedule (the default).
    #[default]
    Partitioned,
}

impl std::str::FromStr for ImageMethod {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "mono" | "monolithic" => Ok(ImageMethod::Monolithic),
            "part" | "partitioned" => Ok(ImageMethod::Partitioned),
            other => Err(format!(
                "unknown image method `{other}` (expected `mono` or `part`)"
            )),
        }
    }
}

impl std::fmt::Display for ImageMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImageMethod::Monolithic => write!(f, "mono"),
            ImageMethod::Partitioned => write!(f, "part"),
        }
    }
}

/// Configuration for [`ImageEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImageConfig {
    /// Image computation method.
    pub method: ImageMethod,
    /// Maximum node count of a merged cluster: a transition part is
    /// folded into an existing cluster only while the conjunction stays
    /// at or below this bound. Small thresholds keep peak memory low;
    /// large ones converge on the monolith.
    pub cluster_threshold: usize,
}

impl Default for ImageConfig {
    fn default() -> Self {
        ImageConfig {
            method: ImageMethod::default(),
            cluster_threshold: 500,
        }
    }
}

impl ImageConfig {
    /// The monolithic configuration (clustering threshold is unused).
    pub fn monolithic() -> Self {
        ImageConfig {
            method: ImageMethod::Monolithic,
            ..Default::default()
        }
    }
}

/// The image computation engine owned by a
/// [`SymbolicFsm`](crate::SymbolicFsm).
///
/// Holds the clustered transition relation, the three early-quantification
/// schedules (forward image, backward preimage, and backward keeping
/// inputs — the trace-replay variant), and a lazily built monolithic `T`
/// for [`ImageMethod::Monolithic`].
///
/// # Roots / GC contract
///
/// The clusters (and the cached monolith, once built) are BDD handles:
/// they must be passed as roots to [`Bdd::gc`] / [`Bdd::reduce_heap`] or
/// they dangle. [`ImageEngine::push_refs`] appends them to a root list;
/// `SymbolicFsm::protected_refs` includes them automatically. The
/// schedules hold only variable ids and survive collection and
/// reordering untouched.
#[derive(Debug, Clone)]
pub struct ImageEngine {
    config: ImageConfig,
    clusters: Vec<Ref>,
    /// Current-state + input variables (forward quantification set).
    fwd_vars: Vec<VarId>,
    /// Next-state + input variables (backward quantification set).
    bwd_vars: Vec<VarId>,
    /// Next-state variables only (backward, inputs kept).
    next_vars: Vec<VarId>,
    fwd: QuantSchedule,
    bwd: QuantSchedule,
    bwd_keep_inputs: QuantSchedule,
    /// Lazily conjoined monolithic transition relation.
    mono: Cell<Option<Ref>>,
}

impl ImageEngine {
    /// Builds an engine over the conjunctive partition `parts`.
    ///
    /// In partitioned mode, clusters are formed by greedy affinity
    /// merging: each part joins the existing cluster sharing the most
    /// support variables, unless the merged BDD would exceed
    /// `config.cluster_threshold` nodes, in which case it starts a new
    /// cluster. In monolithic mode the parts are kept as-is (no merge
    /// work): only the lazy full conjunction is ever formed.
    pub fn build(
        bdd: &mut Bdd,
        parts: &[Ref],
        current_vars: &[VarId],
        input_vars: &[VarId],
        next_vars: &[VarId],
        config: ImageConfig,
    ) -> ImageEngine {
        let clusters = match config.method {
            ImageMethod::Partitioned => cluster_parts(bdd, parts, config.cluster_threshold),
            ImageMethod::Monolithic => parts.iter().copied().filter(|p| !p.is_true()).collect(),
        };
        let mut fwd_vars = current_vars.to_vec();
        fwd_vars.extend_from_slice(input_vars);
        let mut bwd_vars = next_vars.to_vec();
        bwd_vars.extend_from_slice(input_vars);
        // The monolithic path quantifies over the lazy full conjunction
        // and never replays a schedule, so build them (sharing one
        // support computation) only when partitioning.
        let (fwd, bwd, bwd_keep_inputs) = match config.method {
            ImageMethod::Partitioned => {
                let mut schedules =
                    bdd.quant_schedule_many(&clusters, &[&fwd_vars, &bwd_vars, next_vars]);
                let bwd_keep_inputs = schedules.pop().expect("three lists in");
                let bwd = schedules.pop().expect("three lists in");
                let fwd = schedules.pop().expect("three lists in");
                (fwd, bwd, bwd_keep_inputs)
            }
            ImageMethod::Monolithic => Default::default(),
        };
        ImageEngine {
            config,
            clusters,
            fwd_vars,
            bwd_vars,
            next_vars: next_vars.to_vec(),
            fwd,
            bwd,
            bwd_keep_inputs,
            mono: Cell::new(None),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> ImageConfig {
        self.config
    }

    /// The image method in use.
    pub fn method(&self) -> ImageMethod {
        self.config.method
    }

    /// The transition-relation clusters, in sweep order.
    pub fn clusters(&self) -> &[Ref] {
        &self.clusters
    }

    /// The monolithic transition relation, conjoined (and cached) on
    /// first request. Partitioned-mode callers never pay for this.
    pub fn monolithic_trans(&self, bdd: &mut Bdd) -> Ref {
        if let Some(t) = self.mono.get() {
            return t;
        }
        let t = bdd.and_many(self.clusters.iter().copied());
        self.mono.set(Some(t));
        t
    }

    /// Seeds the monolith cache (used by `constrain` to extend an
    /// already-built monolith instead of re-conjoining all clusters).
    pub(crate) fn seed_mono(&self, trans: Ref) {
        self.mono.set(Some(trans));
    }

    /// The cached monolith, if it has been built.
    pub(crate) fn cached_mono(&self) -> Option<Ref> {
        self.mono.get()
    }

    /// `∃ current, inputs. T ∧ set` — the forward image of a state set
    /// (over current variables), as a BDD over **next** variables.
    pub fn forward(&self, bdd: &mut Bdd, set: Ref) -> Ref {
        match self.config.method {
            ImageMethod::Monolithic => {
                let t = self.monolithic_trans(bdd);
                bdd.and_exists(t, set, &self.fwd_vars)
            }
            ImageMethod::Partitioned => bdd.and_exists_schedule(set, &self.clusters, &self.fwd),
        }
    }

    /// `∃ next, inputs. T ∧ set_next` — the existential preimage of a
    /// state set already renamed to **next** variables, as a BDD over
    /// current variables.
    pub fn backward(&self, bdd: &mut Bdd, set_next: Ref) -> Ref {
        match self.config.method {
            ImageMethod::Monolithic => {
                let t = self.monolithic_trans(bdd);
                bdd.and_exists(t, set_next, &self.bwd_vars)
            }
            ImageMethod::Partitioned => {
                bdd.and_exists_schedule(set_next, &self.clusters, &self.bwd)
            }
        }
    }

    /// `∃ next. T ∧ set_next` — like [`ImageEngine::backward`] but keeping
    /// the input variables free: the result relates each predecessor
    /// state to the inputs justifying the transition. This is what trace
    /// replay needs, and it never forces the monolith to exist.
    pub fn backward_with_inputs(&self, bdd: &mut Bdd, set_next: Ref) -> Ref {
        match self.config.method {
            ImageMethod::Monolithic => {
                let t = self.monolithic_trans(bdd);
                bdd.and_exists(t, set_next, &self.next_vars)
            }
            ImageMethod::Partitioned => {
                bdd.and_exists_schedule(set_next, &self.clusters, &self.bwd_keep_inputs)
            }
        }
    }

    /// Appends every BDD handle the engine owns (clusters and the cached
    /// monolith) to `roots`.
    pub fn push_refs(&self, roots: &mut Vec<Ref>) {
        roots.extend(self.clusters.iter().copied());
        if let Some(t) = self.mono.get() {
            roots.push(t);
        }
    }
}

/// Greedy affinity clustering: each part merges into the existing
/// cluster with the largest shared support (falling back to the most
/// recent cluster when no support overlaps), unless the merged BDD would
/// exceed `threshold` nodes — then it starts a new cluster.
fn cluster_parts(bdd: &mut Bdd, parts: &[Ref], threshold: usize) -> Vec<Ref> {
    let mut clusters: Vec<Ref> = Vec::new();
    let mut supports: Vec<BTreeSet<VarId>> = Vec::new();
    for &p in parts {
        if p.is_true() {
            continue;
        }
        let psup: BTreeSet<VarId> = bdd.support(p).into_iter().collect();
        let best = supports
            .iter()
            .enumerate()
            .map(|(i, csup)| (csup.intersection(&psup).count(), i))
            .filter(|&(shared, _)| shared > 0)
            .max_by_key(|&(shared, i)| (shared, std::cmp::Reverse(i)))
            .map(|(_, i)| i)
            .or(if clusters.is_empty() {
                None
            } else {
                Some(clusters.len() - 1)
            });
        if let Some(i) = best {
            let merged = bdd.and(clusters[i], p);
            if bdd.node_count(merged) <= threshold {
                clusters[i] = merged;
                supports[i].extend(psup);
                continue;
            }
        }
        clusters.push(p);
        supports.push(psup);
    }
    clusters
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three-bit shifter: b0' = inp, b1' = b0, b2' = b1. Each part's
    /// support is disjoint enough to exercise the schedule.
    fn shifter_parts(bdd: &mut Bdd) -> (Vec<Ref>, Vec<VarId>, Vec<VarId>, Vec<VarId>) {
        let mut cur = Vec::new();
        let mut next = Vec::new();
        for i in 0..3 {
            cur.push(bdd.new_named_var(format!("b{i}")));
            next.push(bdd.new_named_var(format!("b{i}'")));
        }
        let inp = vec![bdd.new_named_var("inp")];
        let mut parts = Vec::new();
        let srcs = [inp[0], cur[0], cur[1]];
        for (i, &src) in srcs.iter().enumerate() {
            let nv = bdd.var(next[i]);
            let sv = bdd.var(src);
            parts.push(bdd.iff(nv, sv));
        }
        (parts, cur, inp, next)
    }

    fn engines(
        bdd: &mut Bdd,
        threshold: usize,
    ) -> (ImageEngine, ImageEngine, Vec<VarId>, Vec<VarId>) {
        let (parts, cur, inp, next) = shifter_parts(bdd);
        let part = ImageEngine::build(
            bdd,
            &parts,
            &cur,
            &inp,
            &next,
            ImageConfig {
                method: ImageMethod::Partitioned,
                cluster_threshold: threshold,
            },
        );
        let mono = ImageEngine::build(bdd, &parts, &cur, &inp, &next, ImageConfig::monolithic());
        (part, mono, cur, next)
    }

    #[test]
    fn forward_and_backward_match_monolithic() {
        for threshold in [1, 4, 64, 10_000] {
            let mut bdd = Bdd::new();
            let (part, mono, cur, next) = engines(&mut bdd, threshold);
            // A handful of state sets over current vars.
            let c0 = bdd.var(cur[0]);
            let c1 = bdd.var(cur[1]);
            let c2 = bdd.var(cur[2]);
            let s1 = bdd.and(c0, c1);
            let s2 = bdd.or(s1, c2);
            let s3 = bdd.not(s2);
            for set in [Ref::TRUE, Ref::FALSE, c0, s1, s2, s3] {
                assert_eq!(
                    part.forward(&mut bdd, set),
                    mono.forward(&mut bdd, set),
                    "forward diverges at threshold {threshold}"
                );
            }
            // Preimage operands live over next vars.
            let n0 = bdd.var(next[0]);
            let n2 = bdd.var(next[2]);
            let t1 = bdd.xor(n0, n2);
            for set_next in [Ref::TRUE, n0, t1] {
                assert_eq!(
                    part.backward(&mut bdd, set_next),
                    mono.backward(&mut bdd, set_next),
                    "backward diverges at threshold {threshold}"
                );
                assert_eq!(
                    part.backward_with_inputs(&mut bdd, set_next),
                    mono.backward_with_inputs(&mut bdd, set_next),
                    "backward_with_inputs diverges at threshold {threshold}"
                );
            }
        }
    }

    #[test]
    fn threshold_bounds_cluster_count() {
        let mut bdd = Bdd::new();
        let (part_tiny, ..) = engines(&mut bdd, 1);
        // Threshold 1 cannot merge anything: one cluster per part.
        assert_eq!(part_tiny.clusters().len(), 3);
        let mut bdd2 = Bdd::new();
        let (part_big, ..) = engines(&mut bdd2, 10_000);
        // A huge threshold merges every affine part.
        assert!(part_big.clusters().len() < 3);
    }

    #[test]
    fn monolith_is_lazy_and_cached() {
        let mut bdd = Bdd::new();
        let (part, ..) = engines(&mut bdd, 4);
        assert!(part.cached_mono().is_none());
        let t1 = part.monolithic_trans(&mut bdd);
        let t2 = part.monolithic_trans(&mut bdd);
        assert_eq!(t1, t2);
        assert_eq!(part.cached_mono(), Some(t1));
        let mut roots = Vec::new();
        part.push_refs(&mut roots);
        assert!(roots.contains(&t1));
    }

    #[test]
    fn method_parses_round_trip() {
        for (s, m) in [
            ("mono", ImageMethod::Monolithic),
            ("monolithic", ImageMethod::Monolithic),
            ("part", ImageMethod::Partitioned),
            ("partitioned", ImageMethod::Partitioned),
        ] {
            assert_eq!(s.parse::<ImageMethod>().unwrap(), m);
        }
        assert!("hybrid".parse::<ImageMethod>().is_err());
        assert_eq!(ImageMethod::Partitioned.to_string(), "part");
    }
}
