//! Partitioned image computation: clustered transition relations with
//! early quantification.
//!
//! Every fixpoint in the workspace — `reachable(S0)`, the EX/EU/EG
//! fixpoints behind observability, the covered-set traversals — reduces
//! to image/preimage computation. Building the transition relation `T`
//! as one monolithic BDD is the dominant memory spike, so the default
//! engine keeps `T` as a *conjunctive partition* instead: the per-bit
//! parts are greedily merged into size-bounded clusters, and each
//! image/preimage is computed as a schedule-driven conjoin-and-quantify
//! (Burch–Clarke–Long early quantification) that eliminates every
//! variable at the earliest cluster where its support ends. The
//! monolithic path survives behind [`ImageMethod::Monolithic`] for A/B
//! comparison and is built lazily, only when actually requested.
//!
//! The clusters and the cached monolith are owned [`Func`] handles, so
//! the engine's transition relation pins itself across garbage collection
//! and reordering — no root enumeration is needed or possible.

use std::cell::RefCell;
use std::collections::BTreeSet;

use covest_bdd::{BddManager, Func, QuantSchedule, VarId};

/// How images and preimages are computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ImageMethod {
    /// Conjoin all transition parts into one BDD and use the two-operand
    /// fused relational product. Simple, but the monolith is usually the
    /// largest BDD in the system.
    Monolithic,
    /// Keep the transition relation as size-bounded clusters and sweep
    /// them with an early-quantification schedule (the default).
    #[default]
    Partitioned,
}

impl std::str::FromStr for ImageMethod {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "mono" | "monolithic" => Ok(ImageMethod::Monolithic),
            "part" | "partitioned" => Ok(ImageMethod::Partitioned),
            other => Err(format!(
                "unknown image method `{other}` (expected `mono` or `part`)"
            )),
        }
    }
}

impl std::fmt::Display for ImageMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImageMethod::Monolithic => write!(f, "mono"),
            ImageMethod::Partitioned => write!(f, "part"),
        }
    }
}

/// How (and whether) BDDs are simplified against don't-care sets —
/// unreachable states above all. Every mode is observationally
/// equivalent: coverage percentages, verdicts and uncovered-state sets
/// are bit-identical across them (the parity suite asserts it); only
/// intermediate BDD sizes differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SimplifyConfig {
    /// No simplification anywhere.
    Off,
    /// Coudert–Madre `restrict` (sibling substitution): size-safe — a
    /// simplified BDD is never bigger than the original (the default).
    #[default]
    Restrict,
    /// Coudert–Madre `constrain` (generalized cofactor): stronger
    /// simplification that can, however, grow BDDs and pull care-set
    /// variables into supports.
    Constrain,
}

impl SimplifyConfig {
    /// Simplifies `f` modulo `care` per the mode. The identity
    /// `apply(f, c) & c == f & c` holds for every mode.
    pub fn apply(&self, f: &Func, care: &Func) -> Func {
        match self {
            SimplifyConfig::Off => f.clone(),
            SimplifyConfig::Restrict => f.restrict(care),
            SimplifyConfig::Constrain => f.constrain(care),
        }
    }
}

impl std::str::FromStr for SimplifyConfig {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(SimplifyConfig::Off),
            "restrict" => Ok(SimplifyConfig::Restrict),
            "constrain" => Ok(SimplifyConfig::Constrain),
            other => Err(format!(
                "unknown simplify mode `{other}` (expected off|restrict|constrain)"
            )),
        }
    }
}

impl std::fmt::Display for SimplifyConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimplifyConfig::Off => write!(f, "off"),
            SimplifyConfig::Restrict => write!(f, "restrict"),
            SimplifyConfig::Constrain => write!(f, "constrain"),
        }
    }
}

/// Configuration for [`ImageEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImageConfig {
    /// Image computation method.
    pub method: ImageMethod,
    /// Maximum node count of a merged cluster: a transition part is
    /// folded into an existing cluster only while the conjunction stays
    /// at or below this bound. Small thresholds keep peak memory low;
    /// large ones converge on the monolith.
    pub cluster_threshold: usize,
    /// Don't-care simplification mode used by the fixpoint machinery:
    /// BFS frontiers, model-checker iterates, and — once a reachable
    /// care set is installed via [`ImageEngine::install_care`] — the
    /// transition clusters themselves.
    pub simplify: SimplifyConfig,
}

impl Default for ImageConfig {
    fn default() -> Self {
        ImageConfig {
            method: ImageMethod::default(),
            cluster_threshold: 500,
            simplify: SimplifyConfig::default(),
        }
    }
}

impl ImageConfig {
    /// The monolithic configuration (clustering threshold is unused).
    pub fn monolithic() -> Self {
        ImageConfig {
            method: ImageMethod::Monolithic,
            ..Default::default()
        }
    }
}

/// The image computation engine owned by a
/// [`SymbolicFsm`](crate::SymbolicFsm).
///
/// Holds a manager handle, the clustered transition relation, the three
/// early-quantification schedules (forward image, backward preimage, and
/// backward keeping inputs — the trace-replay variant), and a lazily
/// built monolithic `T` for [`ImageMethod::Monolithic`]. All BDD state is
/// owned [`Func`] handles: the engine keeps itself alive across
/// collection and reordering, and the schedules hold only variable ids.
#[derive(Debug, Clone)]
pub struct ImageEngine {
    config: ImageConfig,
    mgr: BddManager,
    clusters: Vec<Func>,
    /// Current-state + input variables (forward quantification set).
    fwd_vars: Vec<VarId>,
    /// Next-state + input variables (backward quantification set).
    bwd_vars: Vec<VarId>,
    /// Next-state variables only (backward, inputs kept).
    next_vars: Vec<VarId>,
    fwd: QuantSchedule,
    bwd: QuantSchedule,
    bwd_keep_inputs: QuantSchedule,
    /// Lazily conjoined monolithic transition relation.
    mono: RefCell<Option<Func>>,
    /// Care-simplified transition relation, installed once a reachable
    /// care set is known (see [`ImageEngine::install_care`]).
    care: RefCell<Option<CareState>>,
    /// Cached reachable-from-init set (computed by
    /// [`crate::SymbolicFsm::reachable`]). Like `mono` and `care`, it is
    /// derived from the transition relation and therefore shares the
    /// engine's lifecycle: rebuilding the engine (`set_image_config`,
    /// `constrain`) drops it.
    reach: RefCell<Option<Func>>,
}

/// The simplified transition relation derived from a care set: the
/// clusters simplified modulo the care states (over current variables)
/// and the forward quantification schedule re-derived for their — now
/// smaller — supports. A variable simplified out of every cluster lands
/// in the schedule's pre-quantification list, so it is still eliminated.
#[derive(Debug, Clone)]
struct CareState {
    /// The care set (over current-state variables) the clusters were
    /// simplified against — forward images route through this state only
    /// for argument sets contained in it, which is exactly the region
    /// where the simplification is invisible.
    care: Func,
    /// Simplified clusters (partitioned method) or the simplified
    /// monolith as a single element (monolithic method).
    clusters: Vec<Func>,
    /// Forward schedule over the simplified clusters (partitioned only).
    fwd: QuantSchedule,
}

impl ImageEngine {
    /// Builds an engine over the conjunctive partition `parts`.
    ///
    /// In partitioned mode, clusters are formed by greedy affinity
    /// merging: each part joins the existing cluster sharing the most
    /// support variables, unless the merged BDD would exceed
    /// `config.cluster_threshold` nodes, in which case it starts a new
    /// cluster. In monolithic mode the parts are kept as-is (no merge
    /// work): only the lazy full conjunction is ever formed.
    pub fn build(
        mgr: &BddManager,
        parts: &[Func],
        current_vars: &[VarId],
        input_vars: &[VarId],
        next_vars: &[VarId],
        config: ImageConfig,
    ) -> ImageEngine {
        let clusters = match config.method {
            ImageMethod::Partitioned => cluster_parts(parts, config.cluster_threshold),
            ImageMethod::Monolithic => parts.iter().filter(|p| !p.is_true()).cloned().collect(),
        };
        let mut fwd_vars = current_vars.to_vec();
        fwd_vars.extend_from_slice(input_vars);
        let mut bwd_vars = next_vars.to_vec();
        bwd_vars.extend_from_slice(input_vars);
        // The monolithic path quantifies over the lazy full conjunction
        // and never replays a schedule, so build them (sharing one
        // support computation) only when partitioning.
        let (fwd, bwd, bwd_keep_inputs) = match config.method {
            ImageMethod::Partitioned => {
                let mut schedules =
                    mgr.quant_schedule_many(&clusters, &[&fwd_vars, &bwd_vars, next_vars]);
                let bwd_keep_inputs = schedules.pop().expect("three lists in");
                let bwd = schedules.pop().expect("three lists in");
                let fwd = schedules.pop().expect("three lists in");
                (fwd, bwd, bwd_keep_inputs)
            }
            ImageMethod::Monolithic => Default::default(),
        };
        ImageEngine {
            config,
            mgr: mgr.clone(),
            clusters,
            fwd_vars,
            bwd_vars,
            next_vars: next_vars.to_vec(),
            fwd,
            bwd,
            bwd_keep_inputs,
            mono: RefCell::new(None),
            care: RefCell::new(None),
            reach: RefCell::new(None),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> ImageConfig {
        self.config
    }

    /// The image method in use.
    pub fn method(&self) -> ImageMethod {
        self.config.method
    }

    /// The transition-relation clusters, in sweep order.
    pub fn clusters(&self) -> &[Func] {
        &self.clusters
    }

    /// The monolithic transition relation, conjoined (and cached) on
    /// first request. Partitioned-mode callers never pay for this.
    pub fn monolithic_trans(&self) -> Func {
        if let Some(t) = self.mono.borrow().as_ref() {
            return t.clone();
        }
        let t = self.mgr.and_many(&self.clusters);
        *self.mono.borrow_mut() = Some(t.clone());
        t
    }

    /// Seeds the monolith cache (used by `constrain` to extend an
    /// already-built monolith instead of re-conjoining all clusters).
    pub(crate) fn seed_mono(&self, trans: Func) {
        *self.mono.borrow_mut() = Some(trans);
    }

    /// The cached monolith, if it has been built.
    pub(crate) fn cached_mono(&self) -> Option<Func> {
        self.mono.borrow().clone()
    }

    /// The cached reachable-from-init set, if it has been computed.
    pub(crate) fn cached_reach(&self) -> Option<Func> {
        self.reach.borrow().clone()
    }

    /// Caches the reachable-from-init set.
    pub(crate) fn cache_reach(&self, reach: Func) {
        *self.reach.borrow_mut() = Some(reach);
    }

    /// Installs `care` (a set over current-state variables — in practice
    /// the reachable states) as the engine's don't-care region: every
    /// transition cluster is simplified modulo it and the forward
    /// quantification schedule is re-derived for the shrunken supports.
    ///
    /// Forward images consult the simplified relation only when the
    /// argument set is contained in `care` — precisely the region where
    /// `simplify(T, c) ∧ S = T ∧ S` makes the substitution invisible —
    /// so [`ImageEngine::forward`] (and everything above it) stays exact
    /// for **every** argument, in or out of the care set. Backward images
    /// always use the unsimplified clusters: a preimage is a function of
    /// the *current* variables and would only be trustworthy inside the
    /// care region.
    ///
    /// With [`SimplifyConfig::Off`] (or a trivial care set) any installed
    /// state is cleared instead. Rebuilding the engine
    /// ([`crate::SymbolicFsm::set_image_config`], `constrain`) drops the
    /// installed state with it — it is derived data, never carried over.
    pub fn install_care(&self, care: &Func, simplify: SimplifyConfig) {
        if simplify == SimplifyConfig::Off || care.is_const() {
            *self.care.borrow_mut() = None;
            return;
        }
        let (clusters, fwd) = match self.config.method {
            ImageMethod::Partitioned => {
                let clusters: Vec<Func> = self
                    .clusters
                    .iter()
                    .map(|t| simplify.apply(t, care))
                    .collect();
                let fwd = self.mgr.quant_schedule(&clusters, &self.fwd_vars);
                (clusters, fwd)
            }
            ImageMethod::Monolithic => (
                vec![simplify.apply(&self.monolithic_trans(), care)],
                QuantSchedule::default(),
            ),
        };
        *self.care.borrow_mut() = Some(CareState {
            care: care.clone(),
            clusters,
            fwd,
        });
    }

    /// The installed care set, if any.
    pub fn care_set(&self) -> Option<Func> {
        self.care.borrow().as_ref().map(|cs| cs.care.clone())
    }

    /// Forward image through the care-simplified relation, if one is
    /// installed and provably applicable (`set ⊆ care`).
    fn forward_care(&self, set: &Func) -> Option<Func> {
        let guard = self.care.borrow();
        let cs = guard.as_ref()?;
        if !set.leq(&cs.care) {
            return None;
        }
        Some(match self.config.method {
            ImageMethod::Partitioned => self.mgr.and_exists_schedule(set, &cs.clusters, &cs.fwd),
            ImageMethod::Monolithic => cs.clusters[0].and_exists(set, &self.fwd_vars),
        })
    }

    /// `∃ current, inputs. T ∧ set` — the forward image of a state set
    /// (over current variables), as a BDD over **next** variables.
    ///
    /// Exact for every argument set regardless of the installed care
    /// state (see [`ImageEngine::install_care`]).
    pub fn forward(&self, set: &Func) -> Func {
        covest_telemetry::count("image_calls", 1);
        if let Some(img) = self.forward_care(set) {
            return img;
        }
        match self.config.method {
            ImageMethod::Monolithic => self.monolithic_trans().and_exists(set, &self.fwd_vars),
            ImageMethod::Partitioned => {
                self.mgr.and_exists_schedule(set, &self.clusters, &self.fwd)
            }
        }
    }

    /// `∃ next, inputs. T ∧ set_next` — the existential preimage of a
    /// state set already renamed to **next** variables, as a BDD over
    /// current variables.
    pub fn backward(&self, set_next: &Func) -> Func {
        covest_telemetry::count("preimage_calls", 1);
        match self.config.method {
            ImageMethod::Monolithic => self.monolithic_trans().and_exists(set_next, &self.bwd_vars),
            ImageMethod::Partitioned => {
                self.mgr
                    .and_exists_schedule(set_next, &self.clusters, &self.bwd)
            }
        }
    }

    /// `∃ next. T ∧ set_next` — like [`ImageEngine::backward`] but keeping
    /// the input variables free: the result relates each predecessor
    /// state to the inputs justifying the transition. This is what trace
    /// replay needs, and it never forces the monolith to exist.
    pub fn backward_with_inputs(&self, set_next: &Func) -> Func {
        covest_telemetry::count("preimage_calls", 1);
        match self.config.method {
            ImageMethod::Monolithic => self
                .monolithic_trans()
                .and_exists(set_next, &self.next_vars),
            ImageMethod::Partitioned => {
                self.mgr
                    .and_exists_schedule(set_next, &self.clusters, &self.bwd_keep_inputs)
            }
        }
    }
}

/// Greedy affinity clustering: each part merges into the existing
/// cluster with the largest shared support (falling back to the most
/// recent cluster when no support overlaps), unless the merged BDD would
/// exceed `threshold` nodes — then it starts a new cluster.
fn cluster_parts(parts: &[Func], threshold: usize) -> Vec<Func> {
    let mut clusters: Vec<Func> = Vec::new();
    let mut supports: Vec<BTreeSet<VarId>> = Vec::new();
    for p in parts {
        if p.is_true() {
            continue;
        }
        let psup: BTreeSet<VarId> = p.support().into_iter().collect();
        let best = supports
            .iter()
            .enumerate()
            .map(|(i, csup)| (csup.intersection(&psup).count(), i))
            .filter(|&(shared, _)| shared > 0)
            .max_by_key(|&(shared, i)| (shared, std::cmp::Reverse(i)))
            .map(|(_, i)| i)
            .or(if clusters.is_empty() {
                None
            } else {
                Some(clusters.len() - 1)
            });
        if let Some(i) = best {
            let merged = clusters[i].and(p);
            if merged.node_count() <= threshold {
                clusters[i] = merged;
                supports[i].extend(psup);
                continue;
            }
        }
        clusters.push(p.clone());
        supports.push(psup);
    }
    clusters
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three-bit shifter: b0' = inp, b1' = b0, b2' = b1. Each part's
    /// support is disjoint enough to exercise the schedule.
    fn shifter_parts(mgr: &BddManager) -> (Vec<Func>, Vec<VarId>, Vec<VarId>, Vec<VarId>) {
        let mut cur = Vec::new();
        let mut next = Vec::new();
        for i in 0..3 {
            cur.push(mgr.new_named_var(format!("b{i}")));
            next.push(mgr.new_named_var(format!("b{i}'")));
        }
        let inp = vec![mgr.new_named_var("inp")];
        let mut parts = Vec::new();
        let srcs = [inp[0], cur[0], cur[1]];
        for (i, &src) in srcs.iter().enumerate() {
            parts.push(mgr.var(next[i]).iff(&mgr.var(src)));
        }
        (parts, cur, inp, next)
    }

    fn engines(
        mgr: &BddManager,
        threshold: usize,
    ) -> (ImageEngine, ImageEngine, Vec<VarId>, Vec<VarId>) {
        let (parts, cur, inp, next) = shifter_parts(mgr);
        let part = ImageEngine::build(
            mgr,
            &parts,
            &cur,
            &inp,
            &next,
            ImageConfig {
                method: ImageMethod::Partitioned,
                cluster_threshold: threshold,
                ..Default::default()
            },
        );
        let mono = ImageEngine::build(mgr, &parts, &cur, &inp, &next, ImageConfig::monolithic());
        (part, mono, cur, next)
    }

    #[test]
    fn forward_and_backward_match_monolithic() {
        for threshold in [1, 4, 64, 10_000] {
            let mgr = BddManager::new();
            let (part, mono, cur, next) = engines(&mgr, threshold);
            // A handful of state sets over current vars.
            let c0 = mgr.var(cur[0]);
            let c1 = mgr.var(cur[1]);
            let c2 = mgr.var(cur[2]);
            let s1 = c0.and(&c1);
            let s2 = s1.or(&c2);
            let s3 = s2.not();
            for set in [mgr.constant(true), mgr.constant(false), c0, s1, s2, s3] {
                assert_eq!(
                    part.forward(&set),
                    mono.forward(&set),
                    "forward diverges at threshold {threshold}"
                );
            }
            // Preimage operands live over next vars.
            let n0 = mgr.var(next[0]);
            let n2 = mgr.var(next[2]);
            let t1 = n0.xor(&n2);
            for set_next in [mgr.constant(true), n0.clone(), t1] {
                assert_eq!(
                    part.backward(&set_next),
                    mono.backward(&set_next),
                    "backward diverges at threshold {threshold}"
                );
                assert_eq!(
                    part.backward_with_inputs(&set_next),
                    mono.backward_with_inputs(&set_next),
                    "backward_with_inputs diverges at threshold {threshold}"
                );
            }
        }
    }

    #[test]
    fn threshold_bounds_cluster_count() {
        let mgr = BddManager::new();
        let (part_tiny, ..) = engines(&mgr, 1);
        // Threshold 1 cannot merge anything: one cluster per part.
        assert_eq!(part_tiny.clusters().len(), 3);
        let mgr2 = BddManager::new();
        let (part_big, ..) = engines(&mgr2, 10_000);
        // A huge threshold merges every affine part.
        assert!(part_big.clusters().len() < 3);
    }

    #[test]
    fn monolith_is_lazy_and_cached() {
        let mgr = BddManager::new();
        let (part, ..) = engines(&mgr, 4);
        assert!(part.cached_mono().is_none());
        let t1 = part.monolithic_trans();
        let t2 = part.monolithic_trans();
        assert_eq!(t1, t2);
        assert_eq!(part.cached_mono(), Some(t1.clone()));
        // The cached monolith is an owned handle: it survives a rootless
        // collection without any explicit protection.
        mgr.gc();
        assert_eq!(part.monolithic_trans(), t1);
    }

    #[test]
    fn care_install_keeps_forward_exact() {
        for simplify in [SimplifyConfig::Restrict, SimplifyConfig::Constrain] {
            let mgr = BddManager::new();
            let (part, mono, cur, _next) = engines(&mgr, 4);
            let c0 = mgr.var(cur[0]);
            let c1 = mgr.var(cur[1]);
            // A nontrivial care set and argument sets inside and outside it.
            let care = c0.or(&c1);
            part.install_care(&care, simplify);
            assert_eq!(part.care_set(), Some(care.clone()));
            let inside = c0.and(&c1);
            let outside = care.not();
            let straddling = mgr.constant(true);
            for set in [inside, outside, straddling, care.clone()] {
                assert_eq!(
                    part.forward(&set),
                    mono.forward(&set),
                    "forward diverges under {simplify} care"
                );
            }
            // Off clears the installed state.
            part.install_care(&care, SimplifyConfig::Off);
            assert!(part.care_set().is_none());
        }
    }

    #[test]
    fn care_install_on_monolithic_engine() {
        let mgr = BddManager::new();
        let (part, mono, cur, _next) = engines(&mgr, 4);
        let care = mgr.var(cur[0]).or(&mgr.var(cur[2]));
        mono.install_care(&care, SimplifyConfig::Constrain);
        let sub = mgr.var(cur[0]);
        assert_eq!(mono.forward(&sub), part.forward(&sub));
    }

    #[test]
    fn simplify_parses_round_trip() {
        for (s, m) in [
            ("off", SimplifyConfig::Off),
            ("restrict", SimplifyConfig::Restrict),
            ("constrain", SimplifyConfig::Constrain),
        ] {
            assert_eq!(s.parse::<SimplifyConfig>().unwrap(), m);
            assert_eq!(m.to_string(), s);
        }
        assert!("licorice".parse::<SimplifyConfig>().is_err());
    }

    #[test]
    fn method_parses_round_trip() {
        for (s, m) in [
            ("mono", ImageMethod::Monolithic),
            ("monolithic", ImageMethod::Monolithic),
            ("part", ImageMethod::Partitioned),
            ("partitioned", ImageMethod::Partitioned),
        ] {
            assert_eq!(s.parse::<ImageMethod>().unwrap(), m);
        }
        assert!("hybrid".parse::<ImageMethod>().is_err());
        assert_eq!(ImageMethod::Partitioned.to_string(), "part");
    }
}
