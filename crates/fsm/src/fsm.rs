//! Symbolic Mealy machines: the FSM model of Definition 1.
//!
//! A machine `M = <S, T_M, P, S_I>` is represented symbolically:
//! states are assignments to boolean *state bits* (each with a current and
//! a next BDD variable, interleaved in the order), inputs are free BDD
//! variables, the transition relation `T_M` is a BDD over
//! (current, input, next), and the signal set `P` is a [`SignalTable`]
//! mapping names to functions of the current state (and inputs).
//!
//! Every BDD the machine stores — the initial states, the transition
//! parts, the image engine's clusters, the signal functions — is an owned
//! [`Func`] handle, so the machine pins its own state across garbage
//! collection and dynamic reordering. No root enumeration exists anymore;
//! there is nothing to enumerate.

use covest_bdd::{BddManager, Func, VarId};

use crate::error::BuildFsmError;
use crate::image::{ImageConfig, ImageEngine};
use crate::signal::{SignalTable, SignalValue};

/// A state bit with its current- and next-state BDD variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateBit {
    /// Bit name (unique within the machine).
    pub name: String,
    /// Current-state variable.
    pub current: VarId,
    /// Next-state variable.
    pub next: VarId,
}

/// A primary-input bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InputBit {
    /// Input name (unique within the machine).
    pub name: String,
    /// The input's BDD variable.
    pub var: VarId,
}

/// A symbolic finite state machine (Mealy machine).
///
/// Construct with [`FsmBuilder`]; query and traverse with the methods here
/// and in the reachability/trace modules. The machine carries its
/// [`BddManager`] handle, so traversal methods need no manager argument.
#[derive(Debug, Clone)]
pub struct SymbolicFsm {
    pub(crate) name: String,
    pub(crate) mgr: BddManager,
    pub(crate) state_bits: Vec<StateBit>,
    pub(crate) input_bits: Vec<InputBit>,
    pub(crate) init: Func,
    pub(crate) trans_parts: Vec<Func>,
    pub(crate) engine: ImageEngine,
    pub(crate) signals: SignalTable,
}

impl SymbolicFsm {
    /// The machine's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The manager the machine's BDDs live on.
    pub fn manager(&self) -> &BddManager {
        &self.mgr
    }

    /// The declared state bits, in declaration order.
    pub fn state_bits(&self) -> &[StateBit] {
        &self.state_bits
    }

    /// The declared input bits, in declaration order.
    pub fn input_bits(&self) -> &[InputBit] {
        &self.input_bits
    }

    /// Current-state variables, in declaration order.
    pub fn current_vars(&self) -> Vec<VarId> {
        self.state_bits.iter().map(|b| b.current).collect()
    }

    /// Next-state variables, in declaration order.
    pub fn next_vars(&self) -> Vec<VarId> {
        self.state_bits.iter().map(|b| b.next).collect()
    }

    /// Input variables, in declaration order.
    pub fn input_vars(&self) -> Vec<VarId> {
        self.input_bits.iter().map(|b| b.var).collect()
    }

    /// The set of initial states `S_I` (a BDD over current variables).
    pub fn init(&self) -> &Func {
        &self.init
    }

    /// The monolithic transition relation over (current, input, next),
    /// conjoined lazily on first request and cached. The fixpoint
    /// machinery never calls this in partitioned mode — only explicit
    /// monolith consumers (e.g. differential tests, `--image mono`) pay
    /// for it.
    pub fn trans(&self) -> Func {
        self.engine.monolithic_trans()
    }

    /// The conjunctive partition of the transition relation, one part per
    /// state bit plus any raw constraints, as emitted by the builder.
    pub fn trans_parts(&self) -> &[Func] {
        &self.trans_parts
    }

    /// The image engine computing every image/preimage for this machine.
    pub fn image_engine(&self) -> &ImageEngine {
        &self.engine
    }

    /// The image configuration in use.
    pub fn image_config(&self) -> ImageConfig {
        self.engine.config()
    }

    /// Rebuilds the image engine with a new configuration (method,
    /// cluster threshold and/or simplification mode). Reclustering
    /// happens immediately; the monolithic relation stays lazy. Any
    /// cached monolith — and any installed care-simplified relation —
    /// is dropped: both are derived from the parts, which may have
    /// changed, so they are recomputed on demand rather than risked
    /// stale.
    pub fn set_image_config(&mut self, config: ImageConfig) {
        self.engine = ImageEngine::build(
            &self.mgr,
            &self.trans_parts,
            &self.current_vars(),
            &self.input_vars(),
            &self.next_vars(),
            config,
        );
    }

    /// The machine's signal table (the paper's signal set `P`).
    pub fn signals(&self) -> &SignalTable {
        &self.signals
    }

    /// Mutable access to the signal table. Used by the dual-FSM
    /// construction, which re-interprets the observed signal.
    pub fn signals_mut(&mut self) -> &mut SignalTable {
        &mut self.signals
    }

    /// Number of state bits (the paper's "variables" count in Table 2
    /// corresponds to state + input bits of the model).
    pub fn num_state_bits(&self) -> usize {
        self.state_bits.len()
    }

    /// Current→next renaming pairs.
    pub fn cur_to_next(&self) -> Vec<(VarId, VarId)> {
        self.state_bits
            .iter()
            .map(|b| (b.current, b.next))
            .collect()
    }

    /// Next→current renaming pairs.
    pub fn next_to_cur(&self) -> Vec<(VarId, VarId)> {
        self.state_bits
            .iter()
            .map(|b| (b.next, b.current))
            .collect()
    }

    /// All states reachable in **exactly one step** from `set`
    /// (the paper's `forward(S0)`), as a BDD over current variables.
    pub fn image(&self, set: &Func) -> Func {
        self.engine.forward(set).rename(&self.next_to_cur())
    }

    /// All states with **some** successor in `set` under **some** input
    /// (existential preimage, the `EX` operation).
    pub fn preimage(&self, set: &Func) -> Func {
        let set_next = set.rename(&self.cur_to_next());
        self.engine.backward(&set_next)
    }

    /// All states whose **every** successor (under every input) lies in
    /// `set` (universal preimage, the `AX` operation).
    pub fn preimage_univ(&self, set: &Func) -> Func {
        self.preimage(&set.not()).not()
    }

    /// Checks that the transition relation is *total*: every state/input
    /// combination has at least one successor. CTL semantics (and the
    /// paper's path-based definitions) assume totality.
    pub fn is_total(&self) -> bool {
        // ∃next. T, without building T: sweep the clusters eliminating
        // next variables early, keeping current and input variables free.
        self.engine
            .backward_with_inputs(&self.mgr.constant(true))
            .is_true()
    }

    /// Restricts the machine's inputs with an additional constraint over
    /// (current, input) variables, e.g. to model an environment assumption.
    /// Returns a machine whose transition relation is `T ∧ c`.
    ///
    /// The constraint joins the conjunctive partition and the image
    /// engine (clusters and quantification schedules) is rebuilt, so the
    /// constrained machine's partitioned and monolithic paths stay
    /// consistent. Any care-simplified relation installed on the source
    /// engine is **not** carried over: it was derived from the old
    /// transition relation (and the old machine's reachable set), so the
    /// constrained machine starts with no care state — re-derive one
    /// with [`SymbolicFsm::install_reachable_care`] if wanted.
    ///
    /// Note: the result may not be total; check [`SymbolicFsm::is_total`].
    pub fn constrain(&self, constraint: &Func) -> SymbolicFsm {
        let mut out = self.clone();
        out.trans_parts.push(constraint.clone());
        out.set_image_config(self.engine.config());
        // An already-built monolith extends by one conjunction instead of
        // being re-conjoined from scratch on next demand.
        if let Some(t) = self.engine.cached_mono() {
            out.engine.seed_mono(t.and(constraint));
        }
        out
    }

    /// The characteristic function of a single state given as bit values
    /// (missing bits default to `false`).
    pub fn state_cube(&self, assignment: &[(&str, bool)]) -> Func {
        let mut cube = self.mgr.constant(true);
        for bit in &self.state_bits {
            let value = assignment
                .iter()
                .find(|(n, _)| *n == bit.name)
                .map(|(_, v)| *v)
                .unwrap_or(false);
            cube = cube.and(&self.mgr.literal(bit.current, value));
        }
        cube
    }

    /// Builds the *dual FSM* of Definition 2 for observed signal `q` and
    /// the single state (or state set) `states`: identical machine except
    /// that the value of `q` is complemented on `states`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not a boolean signal of this machine (the paper's
    /// duality is defined for boolean observed signals).
    pub fn dual(&self, q: &str, states: &Func) -> SymbolicFsm {
        let current = match self.signals.get(q) {
            Some(SignalValue::Bool(r)) => r.clone(),
            Some(SignalValue::Num(_)) => {
                panic!("dual FSM requires a boolean observed signal, `{q}` is numeric")
            }
            None => panic!("unknown observed signal `{q}`"),
        };
        let flipped = current.xor(states);
        let mut out = self.clone();
        out.signals.insert_bool(q, flipped);
        out
    }
}

/// Builder for [`SymbolicFsm`].
///
/// Variables are allocated interleaved (`bit0`, `bit0'`, `bit1`, `bit1'`,
/// …) which is the standard good ordering for transition relations; input
/// variables are allocated after the state variables by default, or
/// interleaved on request.
///
/// # Examples
///
/// ```
/// use covest_bdd::BddManager;
/// use covest_fsm::FsmBuilder;
///
/// let mgr = BddManager::new();
/// let mut b = FsmBuilder::new(&mgr, "toggler");
/// let t = b.add_state_bit("t");
/// b.set_next("t", mgr.var(t.current).not());
/// b.set_init(mgr.nvar(t.current));
/// let fsm = b.build()?;
/// assert!(fsm.is_total());
/// # Ok::<(), covest_fsm::BuildFsmError>(())
/// ```
#[derive(Debug)]
pub struct FsmBuilder {
    name: String,
    mgr: BddManager,
    state_bits: Vec<StateBit>,
    input_bits: Vec<InputBit>,
    init: Func,
    nexts: Vec<Option<Func>>,
    frees: Vec<bool>,
    raw_constraints: Vec<Func>,
    signals: SignalTable,
    image_config: ImageConfig,
}

impl FsmBuilder {
    /// Creates a builder for a machine called `name` on `mgr`.
    pub fn new(mgr: &BddManager, name: impl Into<String>) -> Self {
        FsmBuilder {
            name: name.into(),
            mgr: mgr.clone(),
            state_bits: Vec::new(),
            input_bits: Vec::new(),
            init: mgr.constant(true),
            nexts: Vec::new(),
            frees: Vec::new(),
            raw_constraints: Vec::new(),
            signals: SignalTable::new(),
            image_config: ImageConfig::default(),
        }
    }

    /// The manager the machine is being built on.
    pub fn manager(&self) -> &BddManager {
        &self.mgr
    }

    /// Selects the image configuration for the built machine (default:
    /// partitioned).
    pub fn with_image_config(mut self, config: ImageConfig) -> Self {
        self.image_config = config;
        self
    }

    /// Sets the image configuration in place.
    pub fn set_image_config(&mut self, config: ImageConfig) {
        self.image_config = config;
    }

    /// Declares a state bit, allocating its current/next variables
    /// (interleaved). Also registers the bit as a boolean signal and
    /// declares the pair as a reorder group, so dynamic reordering keeps
    /// current and next adjacent — the invariant the transition-relation
    /// encoding relies on.
    pub fn add_state_bit(&mut self, name: impl Into<String>) -> StateBit {
        let name = name.into();
        let current = self.mgr.new_named_var(name.clone());
        let next = self.mgr.new_named_var(format!("{name}'"));
        self.mgr.group_vars(&[current, next]);
        let bit = StateBit {
            name: name.clone(),
            current,
            next,
        };
        self.state_bits.push(bit.clone());
        self.nexts.push(None);
        self.frees.push(false);
        let f = self.mgr.var(current);
        self.signals.insert_bool(name, f);
        bit
    }

    /// Declares a *free* state bit: its next value is completely
    /// unconstrained. This is how original SMV models primary inputs —
    /// as unconstrained variables of the machine — and it is what makes
    /// properties that mention inputs (like the paper's counter formula,
    /// whose antecedent tests `stall` and `reset`) well-defined: the
    /// input valuation is part of the state.
    pub fn add_free_bit(&mut self, name: impl Into<String>) -> StateBit {
        let bit = self.add_state_bit(name);
        *self.frees.last_mut().expect("just pushed") = true;
        bit
    }

    /// Declares an input bit and registers it as a boolean signal.
    pub fn add_input_bit(&mut self, name: impl Into<String>) -> InputBit {
        let name = name.into();
        let var = self.mgr.new_named_var(name.clone());
        let bit = InputBit {
            name: name.clone(),
            var,
        };
        self.input_bits.push(bit.clone());
        let f = self.mgr.var(var);
        self.signals.insert_bool(name, f);
        bit
    }

    /// Sets the next-state function of bit `name` to `delta` (a function
    /// of current-state and input variables). The transition part becomes
    /// `name' ↔ delta`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a declared state bit.
    pub fn set_next(&mut self, name: &str, delta: Func) {
        let idx = self
            .state_bits
            .iter()
            .position(|b| b.name == name)
            .unwrap_or_else(|| panic!("unknown state bit `{name}`"));
        self.nexts[idx] = Some(delta);
    }

    /// Adds a raw relational constraint over (current, input, next)
    /// variables, conjoined into the transition relation. Use this for
    /// nondeterministic transitions (e.g. explicit state graphs).
    pub fn add_trans_constraint(&mut self, constraint: Func) {
        self.raw_constraints.push(constraint);
    }

    /// Sets the initial-state predicate (over current variables).
    pub fn set_init(&mut self, init: Func) {
        self.init = init;
    }

    /// Registers a named boolean signal (a function of current/input vars).
    pub fn add_signal(&mut self, name: impl Into<String>, f: Func) {
        self.signals.insert_bool(name, f);
    }

    /// Registers a named numeric signal.
    pub fn add_numeric_signal(
        &mut self,
        name: impl Into<String>,
        sig: crate::signal::NumericSignal,
    ) {
        self.signals.insert_num(name, sig);
    }

    /// Finalizes the machine.
    ///
    /// # Errors
    ///
    /// Returns [`BuildFsmError::MissingNext`] if a state bit has neither a
    /// next-state function nor any raw constraint mentioning its next
    /// variable, and [`BuildFsmError::NotTotal`] if the resulting relation
    /// has a state/input combination with no successor.
    pub fn build(self) -> Result<SymbolicFsm, BuildFsmError> {
        let mut parts = Vec::new();
        for (idx, bit) in self.state_bits.iter().enumerate() {
            if self.frees[idx] {
                continue; // free bit: next value unconstrained
            }
            match &self.nexts[idx] {
                Some(delta) => {
                    parts.push(self.mgr.var(bit.next).iff(delta));
                }
                None => {
                    // Allowed only if some raw constraint mentions the bit.
                    let mentioned = self
                        .raw_constraints
                        .iter()
                        .any(|c| c.support().contains(&bit.next));
                    if !mentioned {
                        return Err(BuildFsmError::MissingNext(bit.name.clone()));
                    }
                }
            }
        }
        parts.extend(self.raw_constraints.iter().cloned());
        // No monolithic conjunction here: the machine's transition
        // relation lives as clusters in the image engine, and the
        // monolith is built lazily only if someone asks for it.
        let engine = ImageEngine::build(
            &self.mgr,
            &parts,
            &self
                .state_bits
                .iter()
                .map(|b| b.current)
                .collect::<Vec<_>>(),
            &self.input_bits.iter().map(|b| b.var).collect::<Vec<_>>(),
            &self.state_bits.iter().map(|b| b.next).collect::<Vec<_>>(),
            self.image_config,
        );
        let fsm = SymbolicFsm {
            name: self.name,
            mgr: self.mgr,
            state_bits: self.state_bits,
            input_bits: self.input_bits,
            init: self.init,
            trans_parts: parts,
            engine,
            signals: self.signals,
        };
        if !fsm.is_total() {
            return Err(BuildFsmError::NotTotal);
        }
        Ok(fsm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 2-bit counter that increments each step unless `stall` is high.
    pub(crate) fn counter2(mgr: &BddManager) -> SymbolicFsm {
        let mut b = FsmBuilder::new(mgr, "counter2");
        let b0 = b.add_state_bit("b0");
        let b1 = b.add_state_bit("b1");
        let stall = b.add_input_bit("stall");
        let f0 = mgr.var(b0.current);
        let f1 = mgr.var(b1.current);
        let fs = mgr.var(stall.var);
        // next b0 = stall ? b0 : !b0
        let n0 = fs.ite(&f0, &f0.not());
        // next b1 = stall ? b1 : b1 ^ b0
        let n1 = fs.ite(&f1, &f1.xor(&f0));
        b.set_next("b0", n0);
        b.set_next("b1", n1);
        b.set_init(mgr.nvar(b0.current).and(&mgr.nvar(b1.current)));
        b.build().expect("valid machine")
    }

    #[test]
    fn builder_interleaves_variables() {
        let mgr = BddManager::new();
        let fsm = counter2(&mgr);
        let cur = fsm.current_vars();
        let next = fsm.next_vars();
        assert_eq!(mgr.level_of(cur[0]) + 1, mgr.level_of(next[0]));
        assert_eq!(mgr.level_of(cur[1]) + 1, mgr.level_of(next[1]));
    }

    #[test]
    fn image_steps_the_counter() {
        let mgr = BddManager::new();
        let fsm = counter2(&mgr);
        // From state 00, one step reaches {00 (stall), 01}.
        let s00 = fsm.state_cube(&[("b0", false), ("b1", false)]);
        let img = fsm.image(&s00);
        let s01 = fsm.state_cube(&[("b0", true), ("b1", false)]);
        assert_eq!(img, s00.or(&s01));
    }

    #[test]
    fn preimage_inverts_image() {
        let mgr = BddManager::new();
        let fsm = counter2(&mgr);
        let s01 = fsm.state_cube(&[("b0", true), ("b1", false)]);
        let pre = fsm.preimage(&s01);
        // Predecessors of 01: 00 (increment) and 01 itself (stall).
        let s00 = fsm.state_cube(&[("b0", false), ("b1", false)]);
        assert_eq!(pre, s00.or(&s01));
    }

    #[test]
    fn preimage_univ_requires_all_inputs() {
        let mgr = BddManager::new();
        let fsm = counter2(&mgr);
        let s01 = fsm.state_cube(&[("b0", true), ("b1", false)]);
        // No state goes to 01 under *both* stall values except none
        // (00 stays at 00 when stalled; 01 moves to 10 when not stalled).
        let pre_univ = fsm.preimage_univ(&s01);
        assert!(pre_univ.is_false());
        // Universal preimage of {00, 01}: 00 (either stays or increments).
        let s00 = fsm.state_cube(&[("b0", false), ("b1", false)]);
        let set = s00.or(&s01);
        assert_eq!(fsm.preimage_univ(&set), s00);
    }

    #[test]
    fn totality_detected() {
        let mgr = BddManager::new();
        let fsm = counter2(&mgr);
        assert!(fsm.is_total());
        // Constrain away all transitions out of state 11 → not total.
        let f0 = mgr.var(fsm.state_bits()[0].current);
        let f1 = mgr.var(fsm.state_bits()[1].current);
        let not11 = f0.and(&f1).not();
        let constrained = fsm.constrain(&not11);
        assert!(!constrained.is_total());
    }

    /// Regression for the stale-derived-state class: a machine with an
    /// installed care-simplified relation (and a cached monolith) is
    /// `constrain`ed; the rebuilt engine must carry neither the old care
    /// state nor a monolith missing the constraint, and the constrained
    /// machine's analyses must match a from-scratch build bit for bit.
    #[test]
    fn constrain_drops_care_state_and_stays_consistent() {
        use crate::image::SimplifyConfig;

        let mgr = BddManager::new();
        // A modulo-3 counter: 00 → 01 → 10 → 00, state 11 unreachable, so
        // the reachable care set is nontrivial.
        let fsm = {
            let mut b = FsmBuilder::new(&mgr, "mod3");
            let b0 = b.add_state_bit("b0");
            let b1 = b.add_state_bit("b1");
            let f0 = mgr.var(b0.current);
            let f1 = mgr.var(b1.current);
            let is2 = f1.and(&f0.not());
            let zero = mgr.constant(false);
            b.set_next("b0", is2.ite(&zero, &f0.not()));
            b.set_next("b1", is2.ite(&zero, &f1.xor(&f0)));
            b.set_init(mgr.nvar(b0.current).and(&mgr.nvar(b1.current)));
            b.build().expect("valid machine")
        };
        // Force both derived artifacts to exist.
        let _t = fsm.trans();
        let reach = fsm.install_reachable_care();
        assert!(fsm.image_engine().care_set().is_some());

        // Cut all transitions out of state 01, shrinking the reachable set.
        let f0 = mgr.var(fsm.state_bits()[0].current);
        let f1 = mgr.var(fsm.state_bits()[1].current);
        let cut = f0.and(&f1.not()).not();
        assert!(
            fsm.image_engine().cached_reach().is_some(),
            "reachable() must land in the engine cache"
        );
        let constrained = fsm.constrain(&cut);
        assert!(
            constrained.image_engine().care_set().is_none(),
            "constrain must not inherit a care set derived from the old relation"
        );
        assert!(
            constrained.image_engine().cached_reach().is_none(),
            "constrain must not inherit the old machine's reachable set"
        );
        // The extended monolith really carries the constraint.
        let fresh_t = mgr.and_many(constrained.trans_parts());
        assert_eq!(constrained.trans(), fresh_t);

        // Reinstalling care on the constrained machine leaves every image
        // exact (compared against a simplification-free twin).
        let new_reach = constrained.install_reachable_care();
        assert!(new_reach.leq(&reach));
        let mut off = constrained.clone();
        off.set_image_config(ImageConfig {
            simplify: SimplifyConfig::Off,
            ..constrained.image_config()
        });
        for set in [
            constrained.init().clone(),
            new_reach.clone(),
            new_reach.not(),
            mgr.constant(true),
        ] {
            assert_eq!(constrained.image(&set), off.image(&set));
            assert_eq!(constrained.preimage(&set), off.preimage(&set));
        }
    }

    #[test]
    fn dual_flips_signal_on_one_state() {
        let mgr = BddManager::new();
        let fsm = counter2(&mgr);
        let s00 = fsm.state_cube(&[("b0", false), ("b1", false)]);
        let dual = fsm.dual("b0", &s00);
        let orig = match fsm.signals().get("b0") {
            Some(SignalValue::Bool(r)) => r.clone(),
            _ => unreachable!(),
        };
        let flipped = match dual.signals().get("b0") {
            Some(SignalValue::Bool(r)) => r.clone(),
            _ => unreachable!(),
        };
        assert_ne!(orig, flipped);
        // They agree outside s00 and disagree on it.
        assert_eq!(orig.xor(&flipped), s00);
    }

    #[test]
    fn missing_next_is_an_error() {
        let mgr = BddManager::new();
        let mut b = FsmBuilder::new(&mgr, "broken");
        b.add_state_bit("x");
        let err = b.build().unwrap_err();
        assert!(matches!(err, BuildFsmError::MissingNext(_)));
    }

    #[test]
    fn raw_constraints_allow_nondeterminism() {
        let mgr = BddManager::new();
        let mut b = FsmBuilder::new(&mgr, "nondet");
        let x = b.add_state_bit("x");
        let pick = b.add_input_bit("pick");
        // x' = x xor pick: from any state both successors are possible.
        let constraint = mgr
            .var(x.next)
            .iff(&mgr.var(x.current).xor(&mgr.var(pick.var)));
        b.add_trans_constraint(constraint);
        b.set_init(mgr.constant(true));
        let fsm = b.build().expect("total");
        let s0 = fsm.state_cube(&[("x", false)]);
        assert!(fsm.image(&s0).is_true());
    }
}
