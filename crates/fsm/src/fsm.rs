//! Symbolic Mealy machines: the FSM model of Definition 1.
//!
//! A machine `M = <S, T_M, P, S_I>` is represented symbolically:
//! states are assignments to boolean *state bits* (each with a current and
//! a next BDD variable, interleaved in the order), inputs are free BDD
//! variables, the transition relation `T_M` is a BDD over
//! (current, input, next), and the signal set `P` is a [`SignalTable`]
//! mapping names to functions of the current state (and inputs).

use covest_bdd::{Bdd, Ref, VarId};

use crate::error::BuildFsmError;
use crate::image::{ImageConfig, ImageEngine};
use crate::signal::{SignalTable, SignalValue};

/// A state bit with its current- and next-state BDD variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateBit {
    /// Bit name (unique within the machine).
    pub name: String,
    /// Current-state variable.
    pub current: VarId,
    /// Next-state variable.
    pub next: VarId,
}

/// A primary-input bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InputBit {
    /// Input name (unique within the machine).
    pub name: String,
    /// The input's BDD variable.
    pub var: VarId,
}

/// A symbolic finite state machine (Mealy machine).
///
/// Construct with [`FsmBuilder`]; query and traverse with the methods here
/// and in the reachability/trace modules.
#[derive(Debug, Clone)]
pub struct SymbolicFsm {
    pub(crate) name: String,
    pub(crate) state_bits: Vec<StateBit>,
    pub(crate) input_bits: Vec<InputBit>,
    pub(crate) init: Ref,
    pub(crate) trans_parts: Vec<Ref>,
    pub(crate) engine: ImageEngine,
    pub(crate) signals: SignalTable,
}

impl SymbolicFsm {
    /// The machine's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The declared state bits, in declaration order.
    pub fn state_bits(&self) -> &[StateBit] {
        &self.state_bits
    }

    /// The declared input bits, in declaration order.
    pub fn input_bits(&self) -> &[InputBit] {
        &self.input_bits
    }

    /// Current-state variables, in declaration order.
    pub fn current_vars(&self) -> Vec<VarId> {
        self.state_bits.iter().map(|b| b.current).collect()
    }

    /// Next-state variables, in declaration order.
    pub fn next_vars(&self) -> Vec<VarId> {
        self.state_bits.iter().map(|b| b.next).collect()
    }

    /// Input variables, in declaration order.
    pub fn input_vars(&self) -> Vec<VarId> {
        self.input_bits.iter().map(|b| b.var).collect()
    }

    /// The set of initial states `S_I` (a BDD over current variables).
    pub fn init(&self) -> Ref {
        self.init
    }

    /// The monolithic transition relation over (current, input, next),
    /// conjoined lazily on first request and cached. The fixpoint
    /// machinery never calls this in partitioned mode — only explicit
    /// monolith consumers (e.g. differential tests, `--image mono`) pay
    /// for it.
    pub fn trans(&self, bdd: &mut Bdd) -> Ref {
        self.engine.monolithic_trans(bdd)
    }

    /// The conjunctive partition of the transition relation, one part per
    /// state bit plus any raw constraints, as emitted by the builder.
    pub fn trans_parts(&self) -> &[Ref] {
        &self.trans_parts
    }

    /// The image engine computing every image/preimage for this machine.
    pub fn image_engine(&self) -> &ImageEngine {
        &self.engine
    }

    /// The image configuration in use.
    pub fn image_config(&self) -> ImageConfig {
        self.engine.config()
    }

    /// Rebuilds the image engine with a new configuration (method and/or
    /// cluster threshold). Reclustering happens immediately; the
    /// monolithic relation stays lazy. Any cached monolith is dropped —
    /// the parts may have changed since it was conjoined, so it is
    /// recomputed on next demand rather than risked stale.
    pub fn set_image_config(&mut self, bdd: &mut Bdd, config: ImageConfig) {
        self.engine = ImageEngine::build(
            bdd,
            &self.trans_parts,
            &self.current_vars(),
            &self.input_vars(),
            &self.next_vars(),
            config,
        );
    }

    /// The machine's signal table (the paper's signal set `P`).
    pub fn signals(&self) -> &SignalTable {
        &self.signals
    }

    /// Mutable access to the signal table. Used by the dual-FSM
    /// construction, which re-interprets the observed signal.
    pub fn signals_mut(&mut self) -> &mut SignalTable {
        &mut self.signals
    }

    /// Number of state bits (the paper's "variables" count in Table 2
    /// corresponds to state + input bits of the model).
    pub fn num_state_bits(&self) -> usize {
        self.state_bits.len()
    }

    /// Every BDD handle the machine owns: initial states, the transition
    /// parts, the image engine's clusters (plus the cached monolith, if
    /// one was ever requested), and all signal functions.
    ///
    /// Pass these as roots to [`covest_bdd::Bdd::gc`] (where they gate
    /// validity) and to [`covest_bdd::Bdd::reduce_heap`] /
    /// [`covest_bdd::Bdd::maybe_reduce_heap`] (where they define the size
    /// metric sifting minimizes).
    pub fn protected_refs(&self) -> Vec<Ref> {
        let mut roots = vec![self.init];
        roots.extend(self.trans_parts.iter().copied());
        self.engine.push_refs(&mut roots);
        roots.extend(self.signals.refs());
        roots
    }

    /// Current→next renaming pairs.
    pub fn cur_to_next(&self) -> Vec<(VarId, VarId)> {
        self.state_bits
            .iter()
            .map(|b| (b.current, b.next))
            .collect()
    }

    /// Next→current renaming pairs.
    pub fn next_to_cur(&self) -> Vec<(VarId, VarId)> {
        self.state_bits
            .iter()
            .map(|b| (b.next, b.current))
            .collect()
    }

    /// All states reachable in **exactly one step** from `set`
    /// (the paper's `forward(S0)`), as a BDD over current variables.
    pub fn image(&self, bdd: &mut Bdd, set: Ref) -> Ref {
        let img_next = self.engine.forward(bdd, set);
        bdd.rename(img_next, &self.next_to_cur())
    }

    /// All states with **some** successor in `set` under **some** input
    /// (existential preimage, the `EX` operation).
    pub fn preimage(&self, bdd: &mut Bdd, set: Ref) -> Ref {
        let set_next = bdd.rename(set, &self.cur_to_next());
        self.engine.backward(bdd, set_next)
    }

    /// All states whose **every** successor (under every input) lies in
    /// `set` (universal preimage, the `AX` operation).
    pub fn preimage_univ(&self, bdd: &mut Bdd, set: Ref) -> Ref {
        let nset = bdd.not(set);
        let some_bad = self.preimage(bdd, nset);
        bdd.not(some_bad)
    }

    /// Checks that the transition relation is *total*: every state/input
    /// combination has at least one successor. CTL semantics (and the
    /// paper's path-based definitions) assume totality.
    pub fn is_total(&self, bdd: &mut Bdd) -> bool {
        // ∃next. T, without building T: sweep the clusters eliminating
        // next variables early, keeping current and input variables free.
        let some_succ = self.engine.backward_with_inputs(bdd, Ref::TRUE);
        some_succ.is_true()
    }

    /// Restricts the machine's inputs with an additional constraint over
    /// (current, input) variables, e.g. to model an environment assumption.
    /// Returns a machine whose transition relation is `T ∧ c`.
    ///
    /// The constraint joins the conjunctive partition and the image
    /// engine (clusters and quantification schedules) is rebuilt, so the
    /// constrained machine's partitioned and monolithic paths stay
    /// consistent.
    ///
    /// Note: the result may not be total; check [`SymbolicFsm::is_total`].
    pub fn constrain(&self, bdd: &mut Bdd, constraint: Ref) -> SymbolicFsm {
        let mut out = self.clone();
        out.trans_parts.push(constraint);
        out.set_image_config(bdd, self.engine.config());
        // An already-built monolith extends by one conjunction instead of
        // being re-conjoined from scratch on next demand.
        if let Some(t) = self.engine.cached_mono() {
            out.engine.seed_mono(bdd.and(t, constraint));
        }
        out
    }

    /// The characteristic function of a single state given as bit values
    /// (missing bits default to `false`).
    pub fn state_cube(&self, bdd: &mut Bdd, assignment: &[(&str, bool)]) -> Ref {
        let mut cube = Ref::TRUE;
        for bit in &self.state_bits {
            let value = assignment
                .iter()
                .find(|(n, _)| *n == bit.name)
                .map(|(_, v)| *v)
                .unwrap_or(false);
            let lit = bdd.literal(bit.current, value);
            cube = bdd.and(cube, lit);
        }
        cube
    }

    /// Builds the *dual FSM* of Definition 2 for observed signal `q` and
    /// the single state (or state set) `states`: identical machine except
    /// that the value of `q` is complemented on `states`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not a boolean signal of this machine (the paper's
    /// duality is defined for boolean observed signals).
    pub fn dual(&self, bdd: &mut Bdd, q: &str, states: Ref) -> SymbolicFsm {
        let current = match self.signals.get(q) {
            Some(SignalValue::Bool(r)) => *r,
            Some(SignalValue::Num(_)) => {
                panic!("dual FSM requires a boolean observed signal, `{q}` is numeric")
            }
            None => panic!("unknown observed signal `{q}`"),
        };
        let flipped = bdd.xor(current, states);
        let mut out = self.clone();
        out.signals.insert_bool(q, flipped);
        out
    }
}

/// Builder for [`SymbolicFsm`].
///
/// Variables are allocated interleaved (`bit0`, `bit0'`, `bit1`, `bit1'`,
/// …) which is the standard good ordering for transition relations; input
/// variables are allocated after the state variables by default, or
/// interleaved on request.
///
/// # Examples
///
/// ```
/// use covest_bdd::Bdd;
/// use covest_fsm::FsmBuilder;
///
/// let mut bdd = Bdd::new();
/// let mut b = FsmBuilder::new("toggler");
/// let t = b.add_state_bit(&mut bdd, "t");
/// let fl = bdd.var(t.current);
/// let next = bdd.not(fl);
/// b.set_next(&mut bdd, "t", next);
/// let init = bdd.nvar(t.current);
/// b.set_init(init);
/// let fsm = b.build(&mut bdd)?;
/// assert!(fsm.is_total(&mut bdd));
/// # Ok::<(), covest_fsm::BuildFsmError>(())
/// ```
#[derive(Debug)]
pub struct FsmBuilder {
    name: String,
    state_bits: Vec<StateBit>,
    input_bits: Vec<InputBit>,
    init: Ref,
    nexts: Vec<Option<Ref>>,
    frees: Vec<bool>,
    raw_constraints: Vec<Ref>,
    signals: SignalTable,
    image_config: ImageConfig,
}

impl FsmBuilder {
    /// Creates a builder for a machine called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        FsmBuilder {
            name: name.into(),
            state_bits: Vec::new(),
            input_bits: Vec::new(),
            init: Ref::TRUE,
            nexts: Vec::new(),
            frees: Vec::new(),
            raw_constraints: Vec::new(),
            signals: SignalTable::new(),
            image_config: ImageConfig::default(),
        }
    }

    /// Selects the image configuration for the built machine (default:
    /// partitioned).
    pub fn with_image_config(mut self, config: ImageConfig) -> Self {
        self.image_config = config;
        self
    }

    /// Sets the image configuration in place.
    pub fn set_image_config(&mut self, config: ImageConfig) {
        self.image_config = config;
    }

    /// Declares a state bit, allocating its current/next variables
    /// (interleaved). Also registers the bit as a boolean signal and
    /// declares the pair as a reorder group, so dynamic reordering keeps
    /// current and next adjacent — the invariant the transition-relation
    /// encoding relies on.
    pub fn add_state_bit(&mut self, bdd: &mut Bdd, name: impl Into<String>) -> StateBit {
        let name = name.into();
        let current = bdd.new_named_var(name.clone());
        let next = bdd.new_named_var(format!("{name}'"));
        bdd.group_vars(&[current, next]);
        let bit = StateBit {
            name: name.clone(),
            current,
            next,
        };
        self.state_bits.push(bit.clone());
        self.nexts.push(None);
        self.frees.push(false);
        let f = bdd.var(current);
        self.signals.insert_bool(name, f);
        bit
    }

    /// Declares a *free* state bit: its next value is completely
    /// unconstrained. This is how original SMV models primary inputs —
    /// as unconstrained variables of the machine — and it is what makes
    /// properties that mention inputs (like the paper's counter formula,
    /// whose antecedent tests `stall` and `reset`) well-defined: the
    /// input valuation is part of the state.
    pub fn add_free_bit(&mut self, bdd: &mut Bdd, name: impl Into<String>) -> StateBit {
        let bit = self.add_state_bit(bdd, name);
        *self.frees.last_mut().expect("just pushed") = true;
        bit
    }

    /// Declares an input bit and registers it as a boolean signal.
    pub fn add_input_bit(&mut self, bdd: &mut Bdd, name: impl Into<String>) -> InputBit {
        let name = name.into();
        let var = bdd.new_named_var(name.clone());
        let bit = InputBit {
            name: name.clone(),
            var,
        };
        self.input_bits.push(bit.clone());
        let f = bdd.var(var);
        self.signals.insert_bool(name, f);
        bit
    }

    /// Sets the next-state function of bit `name` to `delta` (a function
    /// of current-state and input variables). The transition part becomes
    /// `name' ↔ delta`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a declared state bit.
    pub fn set_next(&mut self, _bdd: &mut Bdd, name: &str, delta: Ref) {
        let idx = self
            .state_bits
            .iter()
            .position(|b| b.name == name)
            .unwrap_or_else(|| panic!("unknown state bit `{name}`"));
        self.nexts[idx] = Some(delta);
    }

    /// Adds a raw relational constraint over (current, input, next)
    /// variables, conjoined into the transition relation. Use this for
    /// nondeterministic transitions (e.g. explicit state graphs).
    pub fn add_trans_constraint(&mut self, constraint: Ref) {
        self.raw_constraints.push(constraint);
    }

    /// Sets the initial-state predicate (over current variables).
    pub fn set_init(&mut self, init: Ref) {
        self.init = init;
    }

    /// Registers a named boolean signal (a function of current/input vars).
    pub fn add_signal(&mut self, name: impl Into<String>, f: Ref) {
        self.signals.insert_bool(name, f);
    }

    /// Registers a named numeric signal.
    pub fn add_numeric_signal(
        &mut self,
        name: impl Into<String>,
        sig: crate::signal::NumericSignal,
    ) {
        self.signals.insert_num(name, sig);
    }

    /// Finalizes the machine.
    ///
    /// # Errors
    ///
    /// Returns [`BuildFsmError::MissingNext`] if a state bit has neither a
    /// next-state function nor any raw constraint mentioning its next
    /// variable, and [`BuildFsmError::NotTotal`] if the resulting relation
    /// has a state/input combination with no successor.
    pub fn build(self, bdd: &mut Bdd) -> Result<SymbolicFsm, BuildFsmError> {
        let mut parts = Vec::new();
        for (idx, bit) in self.state_bits.iter().enumerate() {
            if self.frees[idx] {
                continue; // free bit: next value unconstrained
            }
            match self.nexts[idx] {
                Some(delta) => {
                    let nv = bdd.var(bit.next);
                    parts.push(bdd.iff(nv, delta));
                }
                None => {
                    // Allowed only if some raw constraint mentions the bit.
                    let mentioned = self
                        .raw_constraints
                        .iter()
                        .any(|&c| bdd.support(c).contains(&bit.next));
                    if !mentioned {
                        return Err(BuildFsmError::MissingNext(bit.name.clone()));
                    }
                }
            }
        }
        parts.extend(self.raw_constraints.iter().copied());
        // No monolithic conjunction here: the machine's transition
        // relation lives as clusters in the image engine, and the
        // monolith is built lazily only if someone asks for it.
        let engine = ImageEngine::build(
            bdd,
            &parts,
            &self
                .state_bits
                .iter()
                .map(|b| b.current)
                .collect::<Vec<_>>(),
            &self.input_bits.iter().map(|b| b.var).collect::<Vec<_>>(),
            &self.state_bits.iter().map(|b| b.next).collect::<Vec<_>>(),
            self.image_config,
        );
        let fsm = SymbolicFsm {
            name: self.name,
            state_bits: self.state_bits,
            input_bits: self.input_bits,
            init: self.init,
            trans_parts: parts,
            engine,
            signals: self.signals,
        };
        if !fsm.is_total(bdd) {
            return Err(BuildFsmError::NotTotal);
        }
        Ok(fsm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 2-bit counter that increments each step unless `stall` is high.
    pub(crate) fn counter2(bdd: &mut Bdd) -> SymbolicFsm {
        let mut b = FsmBuilder::new("counter2");
        let b0 = b.add_state_bit(bdd, "b0");
        let b1 = b.add_state_bit(bdd, "b1");
        let stall = b.add_input_bit(bdd, "stall");
        let f0 = bdd.var(b0.current);
        let f1 = bdd.var(b1.current);
        let fs = bdd.var(stall.var);
        // next b0 = stall ? b0 : !b0
        let n0 = {
            let nf0 = bdd.not(f0);
            bdd.ite(fs, f0, nf0)
        };
        // next b1 = stall ? b1 : b1 ^ b0
        let n1 = {
            let x = bdd.xor(f1, f0);
            bdd.ite(fs, f1, x)
        };
        b.set_next(bdd, "b0", n0);
        b.set_next(bdd, "b1", n1);
        let i0 = bdd.nvar(b0.current);
        let i1 = bdd.nvar(b1.current);
        let init = bdd.and(i0, i1);
        b.set_init(init);
        b.build(bdd).expect("valid machine")
    }

    #[test]
    fn builder_interleaves_variables() {
        let mut bdd = Bdd::new();
        let fsm = counter2(&mut bdd);
        let cur = fsm.current_vars();
        let next = fsm.next_vars();
        assert_eq!(bdd.level_of(cur[0]) + 1, bdd.level_of(next[0]));
        assert_eq!(bdd.level_of(cur[1]) + 1, bdd.level_of(next[1]));
    }

    #[test]
    fn image_steps_the_counter() {
        let mut bdd = Bdd::new();
        let fsm = counter2(&mut bdd);
        // From state 00, one step reaches {00 (stall), 01}.
        let s00 = fsm.state_cube(&mut bdd, &[("b0", false), ("b1", false)]);
        let img = fsm.image(&mut bdd, s00);
        let s01 = fsm.state_cube(&mut bdd, &[("b0", true), ("b1", false)]);
        let expect = bdd.or(s00, s01);
        assert_eq!(img, expect);
    }

    #[test]
    fn preimage_inverts_image() {
        let mut bdd = Bdd::new();
        let fsm = counter2(&mut bdd);
        let s01 = fsm.state_cube(&mut bdd, &[("b0", true), ("b1", false)]);
        let pre = fsm.preimage(&mut bdd, s01);
        // Predecessors of 01: 00 (increment) and 01 itself (stall).
        let s00 = fsm.state_cube(&mut bdd, &[("b0", false), ("b1", false)]);
        let expect = bdd.or(s00, s01);
        assert_eq!(pre, expect);
    }

    #[test]
    fn preimage_univ_requires_all_inputs() {
        let mut bdd = Bdd::new();
        let fsm = counter2(&mut bdd);
        let s01 = fsm.state_cube(&mut bdd, &[("b0", true), ("b1", false)]);
        // No state goes to 01 under *both* stall values except none
        // (00 stays at 00 when stalled; 01 moves to 10 when not stalled).
        let pre_univ = fsm.preimage_univ(&mut bdd, s01);
        assert!(pre_univ.is_false());
        // Universal preimage of {00, 01}: 00 (either stays or increments).
        let s00 = fsm.state_cube(&mut bdd, &[("b0", false), ("b1", false)]);
        let set = bdd.or(s00, s01);
        let pre_univ2 = fsm.preimage_univ(&mut bdd, set);
        assert_eq!(pre_univ2, s00);
    }

    #[test]
    fn totality_detected() {
        let mut bdd = Bdd::new();
        let fsm = counter2(&mut bdd);
        assert!(fsm.is_total(&mut bdd));
        // Constrain away all transitions out of state 11 → not total.
        let f0 = {
            let b = &fsm.state_bits()[0];
            bdd.var(b.current)
        };
        let f1 = {
            let b = &fsm.state_bits()[1];
            bdd.var(b.current)
        };
        let in11 = bdd.and(f0, f1);
        let not11 = bdd.not(in11);
        let constrained = fsm.constrain(&mut bdd, not11);
        assert!(!constrained.is_total(&mut bdd));
    }

    #[test]
    fn dual_flips_signal_on_one_state() {
        let mut bdd = Bdd::new();
        let fsm = counter2(&mut bdd);
        let s00 = fsm.state_cube(&mut bdd, &[("b0", false), ("b1", false)]);
        let dual = fsm.dual(&mut bdd, "b0", s00);
        let orig = match fsm.signals().get("b0") {
            Some(SignalValue::Bool(r)) => *r,
            _ => unreachable!(),
        };
        let flipped = match dual.signals().get("b0") {
            Some(SignalValue::Bool(r)) => *r,
            _ => unreachable!(),
        };
        assert_ne!(orig, flipped);
        // They agree outside s00 and disagree on it.
        let diff = bdd.xor(orig, flipped);
        assert_eq!(diff, s00);
    }

    #[test]
    fn missing_next_is_an_error() {
        let mut bdd = Bdd::new();
        let mut b = FsmBuilder::new("broken");
        b.add_state_bit(&mut bdd, "x");
        let err = b.build(&mut bdd).unwrap_err();
        assert!(matches!(err, BuildFsmError::MissingNext(_)));
    }

    #[test]
    fn raw_constraints_allow_nondeterminism() {
        let mut bdd = Bdd::new();
        let mut b = FsmBuilder::new("nondet");
        let x = b.add_state_bit(&mut bdd, "x");
        let pick = b.add_input_bit(&mut bdd, "pick");
        // x' = x xor pick: from any state both successors are possible.
        let constraint = {
            let nv = bdd.var(x.next);
            let fx = bdd.var(x.current);
            let fp = bdd.var(pick.var);
            let xp = bdd.xor(fx, fp);
            bdd.iff(nv, xp)
        };
        b.add_trans_constraint(constraint);
        b.set_init(Ref::TRUE);
        let fsm = b.build(&mut bdd).expect("total");
        let s0 = fsm.state_cube(&mut bdd, &[("x", false)]);
        let img = fsm.image(&mut bdd, s0);
        assert!(img.is_true());
    }
}
