//! Explicit state-transition-graph models.
//!
//! The paper's Figures 1–3 are drawn as small explicit graphs. This module
//! builds a [`SymbolicFsm`] from an explicit description: numbered states,
//! directed edges, boolean signal labels per state. It is also the bridge
//! to the enumerative *reference* implementation of Definition 3 used for
//! differential testing.
//!
//! States are binary-encoded; nondeterministic choice among a state's
//! successors is resolved by fresh input bits (making the machine a Mealy
//! machine with a total transition relation). States without successors
//! receive a self-loop, as CTL semantics require totality.

use std::collections::BTreeMap;

use covest_bdd::{BddManager, Func, VarId};

use crate::error::BuildFsmError;
use crate::fsm::{FsmBuilder, SymbolicFsm};

/// An explicit state-transition graph with labelled states.
///
/// # Examples
///
/// ```
/// use covest_bdd::BddManager;
/// use covest_fsm::Stg;
///
/// // Two states flip-flopping; signal `q` holds in state 1.
/// let mut stg = Stg::new("toggle");
/// stg.add_states(2);
/// stg.add_edge(0, 1);
/// stg.add_edge(1, 0);
/// stg.mark_initial(0);
/// stg.label(1, "q");
/// let mgr = BddManager::new();
/// let fsm = stg.compile(&mgr)?;
/// assert_eq!(fsm.num_state_bits(), 1);
/// # Ok::<(), covest_fsm::BuildFsmError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Stg {
    name: String,
    num_states: usize,
    edges: Vec<(usize, usize)>,
    initial: Vec<usize>,
    labels: BTreeMap<String, Vec<usize>>,
}

impl Stg {
    /// Creates an empty graph called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Stg {
            name: name.into(),
            ..Self::default()
        }
    }

    /// Adds `n` states, returning the id of the first new state.
    pub fn add_states(&mut self, n: usize) -> usize {
        let first = self.num_states;
        self.num_states += n;
        first
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Adds a directed edge.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is not a state.
    pub fn add_edge(&mut self, from: usize, to: usize) {
        assert!(
            from < self.num_states && to < self.num_states,
            "unknown state"
        );
        self.edges.push((from, to));
    }

    /// Adds a chain of edges `path[0] → path[1] → …`.
    pub fn add_path(&mut self, path: &[usize]) {
        for w in path.windows(2) {
            self.add_edge(w[0], w[1]);
        }
    }

    /// Marks a state as initial.
    pub fn mark_initial(&mut self, state: usize) {
        assert!(state < self.num_states, "unknown state");
        self.initial.push(state);
    }

    /// Asserts boolean signal `name` in `state` (signals default to false).
    pub fn label(&mut self, state: usize, name: impl Into<String>) {
        assert!(state < self.num_states, "unknown state");
        self.labels.entry(name.into()).or_default().push(state);
    }

    /// The explicit successor list of `state` (with the implicit self-loop
    /// for sink states, mirroring [`Stg::compile`]).
    pub fn successors(&self, state: usize) -> Vec<usize> {
        let mut succ: Vec<usize> = self
            .edges
            .iter()
            .filter(|(f, _)| *f == state)
            .map(|(_, t)| *t)
            .collect();
        if succ.is_empty() {
            succ.push(state);
        }
        succ
    }

    /// States in which `signal` is asserted.
    pub fn labelled_states(&self, signal: &str) -> Vec<usize> {
        self.labels.get(signal).cloned().unwrap_or_default()
    }

    /// All signal names, sorted.
    pub fn signal_names(&self) -> Vec<&str> {
        self.labels.keys().map(String::as_str).collect()
    }

    /// Initial state ids.
    pub fn initial_states(&self) -> &[usize] {
        &self.initial
    }

    /// Compiles the graph to a symbolic Mealy machine.
    ///
    /// State `i` is encoded in binary over ⌈log₂ n⌉ bits named `s0…`;
    /// `k = ⌈log₂ maxdeg⌉` input bits named `choice0…` select among each
    /// state's successors (input values beyond the out-degree wrap around,
    /// keeping the relation total).
    ///
    /// # Errors
    ///
    /// Propagates [`BuildFsmError`] from the underlying builder.
    pub fn compile(&self, mgr: &BddManager) -> Result<SymbolicFsm, BuildFsmError> {
        assert!(self.num_states > 0, "graph must have at least one state");
        let nbits = bits_for(self.num_states);
        let maxdeg = (0..self.num_states)
            .map(|s| self.successors(s).len())
            .max()
            .unwrap_or(1);
        let cbits = bits_for(maxdeg);

        let mut b = FsmBuilder::new(mgr, self.name.clone());
        let state_bits: Vec<_> = (0..nbits)
            .map(|i| b.add_state_bit(format!("s{i}")))
            .collect();
        let choice_bits: Vec<_> = (0..cbits)
            .map(|i| b.add_input_bit(format!("choice{i}")))
            .collect();

        let cur_vars: Vec<VarId> = state_bits.iter().map(|s| s.current).collect();
        let next_vars: Vec<VarId> = state_bits.iter().map(|s| s.next).collect();
        let choice_vars: Vec<VarId> = choice_bits.iter().map(|c| c.var).collect();

        // T = ∨_s ∨_j (cur=s ∧ choice≡j (mod deg) ∧ next=succ_j(s))
        let mut trans = mgr.constant(false);
        for s in 0..self.num_states {
            let succ = self.successors(s);
            let cur = encode(mgr, &cur_vars, s);
            for j in 0..(1usize << cbits).max(1) {
                let target = succ[j % succ.len()];
                let choice = encode(mgr, &choice_vars, j);
                let next = encode(mgr, &next_vars, target);
                trans = trans.or(&cur.and(&choice).and(&next));
            }
        }
        // Invalid binary codes (beyond num_states) self-loop so the
        // relation stays total; they are unreachable from valid states.
        for s in self.num_states..(1usize << nbits) {
            let cur = encode(mgr, &cur_vars, s);
            let next = encode(mgr, &next_vars, s);
            trans = trans.or(&cur.and(&next));
        }
        b.add_trans_constraint(trans);

        let mut init = mgr.constant(false);
        for &s in &self.initial {
            init = init.or(&encode(mgr, &cur_vars, s));
        }
        b.set_init(init);

        for (name, states) in &self.labels {
            let mut f = mgr.constant(false);
            for &s in states {
                f = f.or(&encode(mgr, &cur_vars, s));
            }
            b.add_signal(name.clone(), f);
        }

        b.build()
    }

    /// The characteristic BDD of state `id` on a machine compiled from
    /// this graph.
    pub fn state_fn(&self, fsm: &SymbolicFsm, id: usize) -> Func {
        encode(fsm.manager(), &fsm.current_vars(), id)
    }

    /// Decodes a current-state minterm of a compiled machine back to the
    /// explicit state id.
    pub fn decode_state(&self, assignment: &[(VarId, bool)], fsm: &SymbolicFsm) -> usize {
        let mut id = 0usize;
        for (i, bit) in fsm.state_bits().iter().enumerate() {
            let v = assignment
                .iter()
                .find(|(var, _)| *var == bit.current)
                .map(|(_, val)| *val)
                .unwrap_or(false);
            if v {
                id |= 1 << i;
            }
        }
        id
    }
}

fn bits_for(n: usize) -> usize {
    if n <= 1 {
        1
    } else {
        (usize::BITS - (n - 1).leading_zeros()) as usize
    }
}

fn encode(mgr: &BddManager, vars: &[VarId], value: usize) -> Func {
    let mut cube = mgr.constant(true);
    for (i, &v) in vars.iter().enumerate() {
        let bit = (value >> i) & 1 == 1;
        cube = cube.and(&mgr.literal(v, bit));
    }
    cube
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 2's chain: p1-labelled states leading to a q state.
    fn chain() -> Stg {
        let mut stg = Stg::new("chain");
        stg.add_states(4);
        stg.add_path(&[0, 1, 2, 3]);
        stg.mark_initial(0);
        for s in 0..3 {
            stg.label(s, "p1");
        }
        stg.label(3, "q");
        stg
    }

    #[test]
    fn compile_chain_reaches_all_states() {
        let mgr = BddManager::new();
        let stg = chain();
        let fsm = stg.compile(&mgr).expect("compiles");
        assert!(fsm.is_total());
        let r = fsm.reachable();
        assert_eq!(r.sat_count_over(&fsm.current_vars()), 4.0);
    }

    #[test]
    fn sink_states_get_self_loops() {
        let mgr = BddManager::new();
        let stg = chain();
        let fsm = stg.compile(&mgr).expect("compiles");
        let s3 = stg.state_fn(&fsm, 3);
        assert_eq!(fsm.image(&s3), s3);
    }

    #[test]
    fn branching_uses_choice_inputs() {
        let mgr = BddManager::new();
        let mut stg = Stg::new("branch");
        stg.add_states(3);
        stg.add_edge(0, 1);
        stg.add_edge(0, 2);
        stg.add_edge(1, 0);
        stg.add_edge(2, 0);
        stg.mark_initial(0);
        let fsm = stg.compile(&mgr).expect("compiles");
        assert_eq!(fsm.input_bits().len(), 1);
        let s0 = stg.state_fn(&fsm, 0);
        let img = fsm.image(&s0);
        let s1 = stg.state_fn(&fsm, 1);
        let s2 = stg.state_fn(&fsm, 2);
        assert_eq!(img, s1.or(&s2));
    }

    #[test]
    fn labels_become_signals() {
        let mgr = BddManager::new();
        let stg = chain();
        let fsm = stg.compile(&mgr).expect("compiles");
        let q = match fsm.signals().get("q") {
            Some(crate::signal::SignalValue::Bool(r)) => r.clone(),
            other => panic!("bad signal {other:?}"),
        };
        let s3 = stg.state_fn(&fsm, 3);
        assert_eq!(q, s3);
        assert_eq!(stg.labelled_states("q"), vec![3]);
        assert_eq!(stg.signal_names(), vec!["p1", "q"]);
    }

    #[test]
    fn unreachable_island_detected() {
        let mgr = BddManager::new();
        let mut stg = Stg::new("island");
        stg.add_states(4);
        stg.add_edge(0, 1);
        stg.add_edge(1, 0);
        stg.add_edge(2, 3); // island
        stg.add_edge(3, 2);
        stg.mark_initial(0);
        let fsm = stg.compile(&mgr).expect("compiles");
        let r = fsm.reachable();
        assert_eq!(r.sat_count_over(&fsm.current_vars()), 2.0);
    }

    #[test]
    fn decode_roundtrip() {
        let mgr = BddManager::new();
        let stg = chain();
        let fsm = stg.compile(&mgr).expect("compiles");
        for id in 0..4 {
            let f = stg.state_fn(&fsm, id);
            let m = f.pick_minterm(&fsm.current_vars()).expect("state");
            assert_eq!(stg.decode_state(&m, &fsm), id);
        }
    }
}
