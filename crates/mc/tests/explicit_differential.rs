//! Differential validation of the symbolic model checker against an
//! explicit-state CTL evaluator on random graphs: for every state and
//! every random formula, the symbolic satisfaction set must agree with
//! direct fixpoint evaluation over the explicit transition lists.

use std::collections::HashSet;

use covest_bdd::BddManager;
use covest_ctl::{parse_ast, Ast, CmpRhs};
use covest_fsm::Stg;
use covest_mc::ModelChecker;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Explicit-state CTL evaluation: returns the set of states satisfying
/// the formula, given successor lists and per-state labels.
fn eval_explicit(
    ast: &Ast,
    succ: &[Vec<usize>],
    labels: &dyn Fn(&str, usize) -> bool,
) -> HashSet<usize> {
    let n = succ.len();
    let all: HashSet<usize> = (0..n).collect();
    match ast {
        Ast::Const(true) => all,
        Ast::Const(false) => HashSet::new(),
        Ast::Atom(name) => (0..n).filter(|&s| labels(name, s)).collect(),
        Ast::Cmp(..) => unreachable!("no comparisons in these tests"),
        Ast::Not(a) => {
            let sa = eval_explicit(a, succ, labels);
            all.difference(&sa).copied().collect()
        }
        Ast::And(a, b) => {
            let sa = eval_explicit(a, succ, labels);
            let sb = eval_explicit(b, succ, labels);
            sa.intersection(&sb).copied().collect()
        }
        Ast::Or(a, b) => {
            let sa = eval_explicit(a, succ, labels);
            let sb = eval_explicit(b, succ, labels);
            sa.union(&sb).copied().collect()
        }
        Ast::Implies(a, b) => {
            let na = Ast::Not(a.clone());
            let or = Ast::Or(Box::new(na), b.clone());
            eval_explicit(&or, succ, labels)
        }
        Ast::Iff(a, b) => {
            let sa = eval_explicit(a, succ, labels);
            let sb = eval_explicit(b, succ, labels);
            (0..n)
                .filter(|s| sa.contains(s) == sb.contains(s))
                .collect()
        }
        Ast::Ex(a) => {
            let sa = eval_explicit(a, succ, labels);
            (0..n)
                .filter(|&s| succ[s].iter().any(|t| sa.contains(t)))
                .collect()
        }
        Ast::Ax(a) => {
            let sa = eval_explicit(a, succ, labels);
            (0..n)
                .filter(|&s| succ[s].iter().all(|t| sa.contains(t)))
                .collect()
        }
        Ast::Ef(a) => {
            // lfp: sa ∪ EX Z
            let sa = eval_explicit(a, succ, labels);
            lfp(succ, sa, |z, s| succ[s].iter().any(|t| z.contains(t)))
        }
        Ast::Eu(a, b) => {
            let sa = eval_explicit(a, succ, labels);
            let sb = eval_explicit(b, succ, labels);
            lfp(succ, sb, |z, s| {
                sa.contains(&s) && succ[s].iter().any(|t| z.contains(t))
            })
        }
        Ast::Af(a) => {
            // AF a = ¬EG ¬a
            let na = Ast::Not(a.clone());
            let eg = Ast::Eg(Box::new(na));
            let s = eval_explicit(&eg, succ, labels);
            all.difference(&s).copied().collect()
        }
        Ast::Eg(a) => {
            // gfp: sa ∩ EX Z
            let sa = eval_explicit(a, succ, labels);
            gfp(succ, sa)
        }
        Ast::Ag(a) => {
            // AG a = ¬EF ¬a
            let na = Ast::Not(a.clone());
            let ef = Ast::Ef(Box::new(na));
            let s = eval_explicit(&ef, succ, labels);
            all.difference(&s).copied().collect()
        }
        Ast::Au(a, b) => {
            // A[a U b] = ¬(E[¬b U ¬a∧¬b] ∨ EG ¬b)
            let na = Ast::Not(a.clone());
            let nb = Ast::Not(b.clone());
            let conj = Ast::And(Box::new(na), Box::new(nb.clone()));
            let eu = Ast::Eu(Box::new(nb.clone()), Box::new(conj));
            let eg = Ast::Eg(Box::new(nb));
            let bad = Ast::Or(Box::new(eu), Box::new(eg));
            let s = eval_explicit(&bad, succ, labels);
            all.difference(&s).copied().collect()
        }
    }
}

/// Least fixpoint: start from `seed`, add states where `step` fires.
fn lfp(
    succ: &[Vec<usize>],
    seed: HashSet<usize>,
    step: impl Fn(&HashSet<usize>, usize) -> bool,
) -> HashSet<usize> {
    let mut z = seed;
    loop {
        let mut grew = false;
        for s in 0..succ.len() {
            if !z.contains(&s) && step(&z, s) {
                z.insert(s);
                grew = true;
            }
        }
        if !grew {
            return z;
        }
    }
}

/// Greatest fixpoint of `sa ∩ EX Z`.
fn gfp(succ: &[Vec<usize>], sa: HashSet<usize>) -> HashSet<usize> {
    let mut z = sa;
    loop {
        let next: HashSet<usize> = z
            .iter()
            .copied()
            .filter(|&s| succ[s].iter().any(|t| z.contains(t)))
            .collect();
        if next == z {
            return z;
        }
        z = next;
    }
}

fn random_stg(rng: &mut StdRng) -> (Stg, Vec<Vec<usize>>) {
    let n = rng.gen_range(2..=8);
    let mut stg = Stg::new("random");
    stg.add_states(n);
    for i in 0..n - 1 {
        stg.add_edge(i, i + 1);
    }
    for _ in 0..rng.gen_range(0..=2 * n) {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        stg.add_edge(a, b);
    }
    stg.mark_initial(0);
    for s in 0..n {
        if rng.gen_bool(0.5) {
            stg.label(s, "p");
        }
        if rng.gen_bool(0.5) {
            stg.label(s, "q");
        }
    }
    stg.label(rng.gen_range(0..n), "p");
    stg.label(rng.gen_range(0..n), "q");
    let succ: Vec<Vec<usize>> = (0..n).map(|s| stg.successors(s)).collect();
    (stg, succ)
}

fn random_formula_text(rng: &mut StdRng) -> String {
    let atoms = ["p", "q", "!p", "!q", "(p & q)", "(p | q)", "TRUE", "FALSE"];
    let mut a = || atoms[rng.gen_range(0..atoms.len())].to_owned();
    let templates: Vec<String> = vec![
        format!("EX {}", a()),
        format!("AX {}", a()),
        format!("EF {}", a()),
        format!("AF {}", a()),
        format!("EG {}", a()),
        format!("AG {}", a()),
        format!("E[{} U {}]", a(), a()),
        format!("A[{} U {}]", a(), a()),
        format!("AG ({} -> AX {})", a(), a()),
        format!("EF EG {}", a()),
        format!("AG EF {}", a()),
        format!("A[{} U E[{} U {}]]", a(), a(), a()),
        format!("!EF ({} & EX {})", a(), a()),
        format!("AF AG {}", a()),
    ];
    templates[rng.gen_range(0..templates.len())].clone()
}

/// Converts a parsed general AST into the checker's `Ctl` type.
fn to_ctl(ast: &Ast) -> covest_ctl::Ctl {
    use covest_ctl::{Ctl, PropExpr, SignalRef};
    match ast {
        Ast::Const(c) => Ctl::Prop(PropExpr::Const(*c)),
        Ast::Atom(n) => Ctl::Prop(PropExpr::Atom(SignalRef::new(n.clone()))),
        Ast::Cmp(l, op, r) => Ctl::Prop(PropExpr::Cmp {
            lhs: SignalRef::new(l.clone()),
            op: *op,
            rhs: match r {
                CmpRhs::Int(i) => CmpRhs::Int(*i),
                CmpRhs::Sym(s) => CmpRhs::Sym(s.clone()),
            },
        }),
        Ast::Not(a) => Ctl::Not(Box::new(to_ctl(a))),
        Ast::And(a, b) => Ctl::And(Box::new(to_ctl(a)), Box::new(to_ctl(b))),
        Ast::Or(a, b) => Ctl::Or(Box::new(to_ctl(a)), Box::new(to_ctl(b))),
        Ast::Implies(a, b) => Ctl::Implies(Box::new(to_ctl(a)), Box::new(to_ctl(b))),
        Ast::Iff(a, b) => {
            let l = Ctl::Implies(Box::new(to_ctl(a)), Box::new(to_ctl(b)));
            let r = Ctl::Implies(Box::new(to_ctl(b)), Box::new(to_ctl(a)));
            Ctl::And(Box::new(l), Box::new(r))
        }
        Ast::Ax(a) => Ctl::Ax(Box::new(to_ctl(a))),
        Ast::Ex(a) => Ctl::Ex(Box::new(to_ctl(a))),
        Ast::Ag(a) => Ctl::Ag(Box::new(to_ctl(a))),
        Ast::Eg(a) => Ctl::Eg(Box::new(to_ctl(a))),
        Ast::Af(a) => Ctl::Af(Box::new(to_ctl(a))),
        Ast::Ef(a) => Ctl::Ef(Box::new(to_ctl(a))),
        Ast::Au(a, b) => Ctl::Au(Box::new(to_ctl(a)), Box::new(to_ctl(b))),
        Ast::Eu(a, b) => Ctl::Eu(Box::new(to_ctl(a)), Box::new(to_ctl(b))),
    }
}

#[test]
fn symbolic_sat_sets_match_explicit_evaluation() {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    for case in 0..250 {
        let bdd = BddManager::new();
        let (stg, succ) = random_stg(&mut rng);
        let fsm = stg.compile(&bdd).expect("compiles");
        let text = random_formula_text(&mut rng);
        let ast = parse_ast(&text).expect("parses");
        let labels = |name: &str, s: usize| stg.labelled_states(name).contains(&s);
        let expect = eval_explicit(&ast, &succ, &labels);
        let ctl = to_ctl(&ast);
        let mut mc = ModelChecker::new(&fsm);
        let sat = mc.sat(&ctl).expect("sat");
        // Compare on the *valid* state codes only (invalid binary codes
        // self-loop and are unreachable; their satisfaction is irrelevant).
        let vars = fsm.current_vars();
        let mut got: HashSet<usize> = sat
            .minterms_over(&vars)
            .map(|m| stg.decode_state(&m, &fsm))
            .filter(|&s| s < stg.num_states())
            .collect();
        // Invalid-code self-loop states can appear in sat sets of
        // formulas like AG TRUE; restrict both sides to real states.
        got.retain(|&s| s < stg.num_states());
        assert_eq!(
            got,
            expect,
            "case {case}: formula `{text}` on a {}-state graph",
            stg.num_states()
        );
    }
}
