//! The symbolic CTL model-checking engine.

use std::collections::HashMap;

use covest_bdd::Func;
use covest_ctl::{Ctl, PropExpr, SignalRef};
use covest_fsm::{ImageMethod, LowerError, SignalValue, SimplifyConfig, SymbolicFsm};

use crate::verdict::Verdict;

/// A symbolic CTL model checker for one machine.
///
/// The checker borrows the machine and owns a memo table of satisfying
/// state sets keyed by sub-formula; re-checking related properties (and
/// running coverage estimation afterwards) reuses the cached fixpoints.
///
/// Every cached state set is an owned [`Func`], so the checker's memo
/// table (like the machine itself) survives garbage collection and
/// dynamic reordering without any root bookkeeping.
///
/// # Don't-care simplification
///
/// With a care set installed ([`ModelChecker::set_care`], normally the
/// reachable states), every preimage *operand* inside the EX/EU/EG and
/// fair-states fixpoints is simplified modulo the care set first. This
/// is sound because successors of care states are care states (the
/// reachable set is closed under the transition relation), so a preimage
/// evaluated at a care state only inspects the operand at care states —
/// where the simplified iterate agrees with the original. Cached
/// satisfaction sets are therefore exact **on the care set** and
/// unconstrained off it; every observable answer ([`ModelChecker::holds`],
/// [`ModelChecker::check`], coverage sets intersected with the coverage
/// space) is bit-identical to the simplification-free run, because all of
/// them evaluate the cached sets only inside the care region.
#[derive(Debug)]
pub struct ModelChecker<'m> {
    fsm: &'m SymbolicFsm,
    fairness: Vec<Func>,
    overrides: Vec<(SignalRef, SignalValue)>,
    cache: HashMap<Ctl, Func>,
    fair_states: Option<Func>,
    /// Care set for iterate simplification (with the active mode), if
    /// installed. The mode is read from the machine's image
    /// configuration at install time.
    care: Option<(Func, SimplifyConfig)>,
}

/// Reports one CTL fixpoint iteration to the progress/watchdog channel
/// (see [`covest_telemetry::progress`]): the iterate's node count and
/// support width are what the heartbeat prints and the stall detector
/// watches. Both reads cost a traversal, so unmonitored runs pay only
/// one thread-local check per iteration.
fn fixpoint_tick(phase: &str, iteration: u64, iterate: &Func) {
    if covest_telemetry::progress::progress_active() {
        covest_telemetry::progress::fixpoint_progress(
            phase,
            iteration,
            iterate.node_count() as u64,
            iterate.support().len() as u64,
        );
    }
}

impl<'m> ModelChecker<'m> {
    /// Creates a checker with no fairness constraints.
    pub fn new(fsm: &'m SymbolicFsm) -> Self {
        ModelChecker {
            fsm,
            fairness: Vec::new(),
            overrides: Vec::new(),
            cache: HashMap::new(),
            fair_states: None,
            care: None,
        }
    }

    /// Installs `care` (normally the machine's reachable states) as the
    /// don't-care boundary for fixpoint iterate simplification, using the
    /// mode from the machine's [`covest_fsm::ImageConfig`]. A
    /// [`SimplifyConfig::Off`] mode (or a constant care set) uninstalls
    /// instead. Cached results are dropped either way: sets computed
    /// under a different care discipline are exact on a different
    /// region.
    ///
    /// # Care-set contract
    ///
    /// `care` must be **closed under the transition relation**
    /// (successors of care states are care states) — the soundness of
    /// simplifying preimage operands rests on it. The reachable states
    /// satisfy it by definition; an arbitrary state set does not, and
    /// would silently corrupt verdicts. Debug builds assert closure.
    pub fn set_care(&mut self, care: Func) {
        let mode = self.fsm.image_config().simplify;
        self.care = if mode == SimplifyConfig::Off || care.is_const() {
            None
        } else {
            debug_assert!(
                self.fsm.image(&care).leq(&care),
                "care set must be closed under successors (use reachable states)"
            );
            Some((care, mode))
        };
        self.cache.clear();
        self.fair_states = None;
    }

    /// The installed care set, if any.
    pub fn care(&self) -> Option<&Func> {
        self.care.as_ref().map(|(c, _)| c)
    }

    /// Simplifies a fixpoint iterate modulo the installed care set (a
    /// clone when none is installed).
    fn shrink(&self, f: &Func) -> Func {
        match &self.care {
            Some((care, mode)) => mode.apply(f, care),
            None => f.clone(),
        }
    }

    /// The machine under check.
    pub fn fsm(&self) -> &SymbolicFsm {
        self.fsm
    }

    /// The image method every EX/EU/EG fixpoint of this checker runs on
    /// (inherited from the machine's image engine).
    pub fn image_method(&self) -> ImageMethod {
        self.fsm.image_config().method
    }

    /// Adds a fairness constraint: paths must satisfy `constraint`
    /// infinitely often (Section 4.3 of the paper). Invalidate-on-add:
    /// cached results are dropped.
    ///
    /// # Errors
    ///
    /// Returns [`LowerError`] if the constraint mentions unknown signals.
    pub fn add_fairness(&mut self, constraint: &PropExpr) -> Result<(), LowerError> {
        let f = self.fsm.signals().lower(self.fsm.manager(), constraint)?;
        self.fairness.push(f);
        self.cache.clear();
        self.fair_states = None;
        Ok(())
    }

    /// Adds a raw (already lowered) fairness constraint.
    pub fn add_fairness_set(&mut self, states: Func) {
        self.fairness.push(states);
        self.cache.clear();
        self.fair_states = None;
    }

    /// Installs signal-interpretation overrides (used by the reference
    /// coverage implementation to evaluate primed/dual signals). Cached
    /// results are dropped.
    pub fn set_overrides(&mut self, overrides: Vec<(SignalRef, SignalValue)>) {
        self.overrides = overrides;
        self.cache.clear();
        self.fair_states = None;
    }

    /// The fairness constraints currently installed.
    pub fn fairness(&self) -> &[Func] {
        &self.fairness
    }

    /// States from which some fair path starts (`EG_fair TRUE`). With no
    /// constraints this is the whole state space.
    pub fn fair_states(&mut self) -> Func {
        if let Some(f) = &self.fair_states {
            return f.clone();
        }
        let f = if self.fairness.is_empty() {
            self.fsm.manager().constant(true)
        } else {
            let t = self.fsm.manager().constant(true);
            self.eg_fair(&t)
        };
        self.fair_states = Some(f.clone());
        f
    }

    /// The set of states satisfying `f` (over current-state variables).
    ///
    /// # Errors
    ///
    /// Returns [`LowerError`] if a propositional atom cannot be resolved
    /// against the machine's signals.
    pub fn sat(&mut self, f: &Ctl) -> Result<Func, LowerError> {
        if let Some(r) = self.cache.get(f) {
            return Ok(r.clone());
        }
        let result = match f {
            Ctl::Prop(p) => {
                self.fsm
                    .signals()
                    .lower_with(self.fsm.manager(), p, &self.overrides)?
            }
            Ctl::Not(a) => self.sat(a)?.not(),
            Ctl::And(a, b) => self.sat(a)?.and(&self.sat(b)?),
            Ctl::Or(a, b) => self.sat(a)?.or(&self.sat(b)?),
            Ctl::Implies(a, b) => self.sat(a)?.implies(&self.sat(b)?),
            Ctl::Ex(a) => {
                let sa = self.sat(a)?;
                self.ex_fair(&sa)
            }
            Ctl::Ax(a) => {
                // AX p = ¬EX ¬p (over fair paths).
                let nsa = self.sat(a)?.not();
                self.ex_fair(&nsa).not()
            }
            Ctl::Ef(a) => {
                let sa = self.sat(a)?;
                let t = self.fsm.manager().constant(true);
                self.eu_fair(&t, &sa)
            }
            Ctl::Ag(a) => {
                // AG p = ¬EF ¬p.
                let nsa = self.sat(a)?.not();
                let t = self.fsm.manager().constant(true);
                self.eu_fair(&t, &nsa).not()
            }
            Ctl::Eg(a) => {
                let sa = self.sat(a)?;
                self.eg_fair(&sa)
            }
            Ctl::Af(a) => {
                // AF p = ¬EG ¬p.
                let nsa = self.sat(a)?.not();
                self.eg_fair(&nsa).not()
            }
            Ctl::Eu(a, b) => {
                let sa = self.sat(a)?;
                let sb = self.sat(b)?;
                self.eu_fair(&sa, &sb)
            }
            Ctl::Au(a, b) => {
                // A[p U q] = ¬(E[¬q U ¬p∧¬q] ∨ EG ¬q).
                let sa = self.sat(a)?;
                let sb = self.sat(b)?;
                let nq = sb.not();
                let npq = sa.not().and(&nq);
                let escape = self.eu_fair(&nq, &npq);
                let stuck = self.eg_fair(&nq);
                escape.or(&stuck).not()
            }
        };
        self.cache.insert(f.clone(), result.clone());
        Ok(result)
    }

    /// `EX p` over fair paths: `EX (p ∧ fair)`.
    fn ex_fair(&mut self, p: &Func) -> Func {
        let fair = self.fair_states();
        self.fsm.preimage(&self.shrink(&p.and(&fair)))
    }

    /// `E[p U q]` over fair paths: `E[p U (q ∧ fair)]`.
    fn eu_fair(&mut self, p: &Func, q: &Func) -> Func {
        let fair = self.fair_states();
        self.eu_raw(p, &q.and(&fair))
    }

    /// Plain least-fixpoint `E[p U q]`.
    ///
    /// Each preimage operand is simplified modulo the care set: the
    /// iterates (and the result) then agree with the unsimplified run on
    /// the care states, which is all any observable consumer reads.
    fn eu_raw(&self, p: &Func, q: &Func) -> Func {
        let mut z = q.clone();
        let mut iters = 0u64;
        loop {
            let pre = self.fsm.preimage(&self.shrink(&z));
            let next = z.or(&p.and(&pre));
            iters += 1;
            fixpoint_tick("eu", iters, &next);
            if next == z {
                covest_telemetry::count("eu_iterations", iters);
                return z;
            }
            z = next;
        }
    }

    /// `EG p` under the installed fairness constraints (Emerson–Lei).
    fn eg_fair(&mut self, p: &Func) -> Func {
        if self.fairness.is_empty() {
            return self.eg_raw(p);
        }
        // νZ. p ∧ ⋀_c EX E[p U (Z ∧ c)]
        let constraints = self.fairness.clone();
        let mut z = self.fsm.manager().constant(true);
        let mut fair_iters = 0u64;
        loop {
            // Seed with z ∧ p rather than p: unsimplified, the iterates
            // form a decreasing chain anyway (z ∧ F(z) = F(z)), but with
            // care-simplified preimage operands the off-care part of
            // F(z) is free to oscillate between iterations — without the
            // explicit intersection the `next == z` test might never
            // hold. Forcing next ⊆ z restores guaranteed termination
            // and leaves the on-care value (all anyone observes)
            // unchanged.
            let mut next = z.and(p);
            for c in &constraints {
                let zc = z.and(c);
                let reach = self.eu_raw(p, &zc);
                let pre = self.fsm.preimage(&self.shrink(&reach));
                next = next.and(&pre);
            }
            covest_telemetry::count("eg_fair_iterations", 1);
            fair_iters += 1;
            fixpoint_tick("eg_fair", fair_iters, &next);
            if next == z {
                return z;
            }
            z = next;
        }
    }

    /// Plain greatest-fixpoint `EG p`.
    fn eg_raw(&self, p: &Func) -> Func {
        let mut z = p.clone();
        let mut iters = 0u64;
        loop {
            let pre = self.fsm.preimage(&self.shrink(&z));
            let next = z.and(&pre);
            iters += 1;
            fixpoint_tick("eg", iters, &next);
            if next == z {
                covest_telemetry::count("eg_iterations", iters);
                return z;
            }
            z = next;
        }
    }

    /// `true` iff every fair initial state satisfies `f`
    /// (`M, S_I ⊨ f`). Initial states with no fair path are vacuous.
    ///
    /// # Errors
    ///
    /// See [`ModelChecker::sat`].
    pub fn holds(&mut self, f: &Ctl) -> Result<bool, LowerError> {
        let sat = self.sat(f)?;
        let fair = self.fair_states();
        let init_fair = self.fsm.init().and(&fair);
        Ok(init_fair.leq(&sat))
    }

    /// Full check with verdict and counterexample construction.
    ///
    /// For a failing top-level `AG f` (possibly under conjunctions) the
    /// counterexample is a shortest trace from the initial states to a
    /// reachable state violating `f`; otherwise only the bad initial
    /// state is reported.
    ///
    /// # Errors
    ///
    /// See [`ModelChecker::sat`].
    pub fn check(&mut self, f: &Ctl) -> Result<Verdict, LowerError> {
        let sat = self.sat(f)?;
        let fair = self.fair_states();
        let init_fair = self.fsm.init().and(&fair);
        let bad = init_fair.diff(&sat);
        if bad.is_false() {
            return Ok(Verdict::Holds);
        }
        let cur = self.fsm.current_vars();
        let pick = bad.pick_minterm(&cur).expect("bad is nonempty");
        let bad_initial: Vec<(String, bool)> = self
            .fsm
            .state_bits()
            .iter()
            .zip(pick.iter())
            .map(|(b, &(_, v))| (b.name.clone(), v))
            .collect();
        let counterexample = self.counterexample(f)?;
        Ok(Verdict::Fails {
            bad_initial,
            counterexample,
        })
    }

    /// Attempts to build a trace witnessing the failure of `f`.
    fn counterexample(&mut self, f: &Ctl) -> Result<Option<Trace0>, LowerError> {
        match f {
            Ctl::Ag(inner) => {
                // Shortest path from the initial states to a reachable
                // violation of the body.
                let viol = self.sat(inner)?.not();
                let fair = self.fair_states();
                let viol_fair = viol.and(&fair);
                Ok(self.fsm.trace_to(&viol_fair))
            }
            Ctl::And(a, b) => {
                if !self.holds(a)? {
                    self.counterexample(a)
                } else {
                    self.counterexample(b)
                }
            }
            Ctl::Implies(a, b) => {
                // Failing initial state satisfies `a` but not `b`; if `b`
                // is itself traceable, recurse from the restricted start.
                let sa = self.sat(a)?;
                let init_a = self.fsm.init().and(&sa);
                self.counterexample_from(&init_a, b)
            }
            Ctl::Ax(inner) => {
                // One step to a successor violating the body.
                let viol = self.sat(inner)?.not();
                let fair = self.fair_states();
                let img = self.fsm.image(self.fsm.init());
                let target = img.and(&viol.and(&fair));
                Ok(self.fsm.trace_to(&target))
            }
            _ => Ok(None),
        }
    }

    /// Like [`ModelChecker::counterexample`] but starting from `from`
    /// instead of the initial states (used to thread implication
    /// antecedent restrictions).
    fn counterexample_from(&mut self, from: &Func, f: &Ctl) -> Result<Option<Trace0>, LowerError> {
        match f {
            Ctl::Ag(inner) => {
                let viol = self.sat(inner)?.not();
                let reach = self.fsm.reachable_from(from);
                Ok(self.fsm.trace_from_to(from, &reach.and(&viol)))
            }
            Ctl::Ax(inner) => {
                let viol = self.sat(inner)?.not();
                let img = self.fsm.image(from);
                Ok(self.fsm.trace_from_to(from, &img.and(&viol)))
            }
            _ => {
                // Fall back: the failing start state itself.
                let sf = self.sat(f)?;
                let bad = from.diff(&sf);
                if bad.is_false() {
                    return Ok(None);
                }
                Ok(self.fsm.trace_from_to(&bad, &bad))
            }
        }
    }

    /// Clears every cached state set: the per-formula memo table **and**
    /// the cached fair-states set (e.g. after unrelated work on the
    /// shared manager, to bound memory). Historically `fair_states`
    /// survived this call; with care-dependent simplification in the
    /// fixpoints, a cached set outliving "clear everything cached" is a
    /// staleness hazard, so it is dropped too. The installed care set
    /// itself is configuration, not cache, and stays.
    pub fn clear_cache(&mut self) {
        self.cache.clear();
        self.fair_states = None;
    }
}

type Trace0 = covest_fsm::Trace;

#[cfg(test)]
mod tests {
    use super::*;
    use covest_bdd::BddManager;
    use covest_ctl::parse_formula;
    use covest_fsm::Stg;

    fn parse(s: &str) -> Ctl {
        parse_formula(s).expect(s).into()
    }

    /// 0 → 1 → 2 → 0 ring; q on state 2, p on states 0 and 1.
    fn ring3(mgr: &BddManager) -> (Stg, SymbolicFsm) {
        let mut stg = Stg::new("ring3");
        stg.add_states(3);
        stg.add_edge(0, 1);
        stg.add_edge(1, 2);
        stg.add_edge(2, 0);
        stg.mark_initial(0);
        stg.label(2, "q");
        stg.label(0, "p");
        stg.label(1, "p");
        let fsm = stg.compile(mgr).expect("compiles");
        (stg, fsm)
    }

    #[test]
    fn propositional_and_ax() {
        let mgr = BddManager::new();
        let (_, fsm) = ring3(&mgr);
        let mut mc = ModelChecker::new(&fsm);
        assert!(mc.holds(&parse("p")).unwrap());
        assert!(!mc.holds(&parse("q")).unwrap());
        assert!(mc.holds(&parse("AX p")).unwrap());
        assert!(mc.holds(&parse("AX AX q")).unwrap());
        assert!(!mc.holds(&parse("AX q")).unwrap());
    }

    #[test]
    fn ag_au_af() {
        let mgr = BddManager::new();
        let (_, fsm) = ring3(&mgr);
        let mut mc = ModelChecker::new(&fsm);
        assert!(mc.holds(&parse("AG (q -> AX p)")).unwrap());
        assert!(mc.holds(&parse("A[p U q]")).unwrap());
        assert!(mc.holds(&parse("AF q")).unwrap());
        assert!(!mc.holds(&parse("AG p")).unwrap());
    }

    #[test]
    fn au_requires_eventual_goal() {
        let mgr = BddManager::new();
        // 0 → 0 self-loop with p: A[p U q] must fail (q never comes).
        // State 1 (unreachable) defines the q signal.
        let mut stg = Stg::new("loop");
        stg.add_states(2);
        stg.add_edge(0, 0);
        stg.mark_initial(0);
        stg.label(0, "p");
        stg.label(1, "q");
        let fsm = stg.compile(&mgr).expect("compiles");
        let mut mc = ModelChecker::new(&fsm);
        assert!(!mc.holds(&parse("A[p U q]")).unwrap());
        assert!(mc.holds(&parse("AG p")).unwrap());
    }

    #[test]
    fn general_ctl_negation_and_e_ops() {
        let mgr = BddManager::new();
        let (_, fsm) = ring3(&mgr);
        let mut mc = ModelChecker::new(&fsm);
        // EF q holds; EG p fails on the ring (q-state always reached).
        let efq = Ctl::Ef(Box::new(Ctl::prop(PropExpr::atom("q"))));
        assert!(mc.holds(&efq).unwrap());
        let egp = Ctl::Eg(Box::new(Ctl::prop(PropExpr::atom("p"))));
        assert!(!mc.holds(&egp).unwrap());
        // ¬EG p is AF ¬p.
        let not_egp = Ctl::Not(Box::new(egp));
        assert!(mc.holds(&not_egp).unwrap());
    }

    #[test]
    fn fairness_restricts_paths() {
        let mgr = BddManager::new();
        // Two branches from 0: loop at 1 (no q), loop at 2 (q).
        let mut stg = Stg::new("branch");
        stg.add_states(3);
        stg.add_edge(0, 1);
        stg.add_edge(0, 2);
        stg.add_edge(1, 1);
        stg.add_edge(2, 2);
        stg.mark_initial(0);
        stg.label(2, "q");
        stg.label(2, "fair_here");
        let fsm = stg.compile(&mgr).expect("compiles");
        // Without fairness, AF q fails (path through 1 never sees q).
        let mut mc = ModelChecker::new(&fsm);
        assert!(!mc.holds(&parse("AF q")).unwrap());
        // With fairness "infinitely often fair_here", only the 2-branch
        // is a fair path, so AF q holds.
        let mut mc2 = ModelChecker::new(&fsm);
        mc2.add_fairness(&PropExpr::atom("fair_here")).unwrap();
        assert!(mc2.holds(&parse("AF q")).unwrap());
        // fair states exclude the 1-loop.
        let fair = mc2.fair_states();
        assert_eq!(fair.sat_count_over(&fsm.current_vars()), 2.0); // states 0 and 2
    }

    #[test]
    fn verdict_includes_counterexample_for_ag() {
        let mgr = BddManager::new();
        let (_, fsm) = ring3(&mgr);
        let mut mc = ModelChecker::new(&fsm);
        let v = mc.check(&parse("AG p")).unwrap();
        match v {
            Verdict::Fails {
                counterexample: Some(t),
                ..
            } => {
                // Shortest path to the q-state (distance 2).
                assert_eq!(t.len(), 2);
            }
            other => panic!("expected failure with trace, got {other:?}"),
        }
        let v2 = mc.check(&parse("AG (p | q)")).unwrap();
        assert!(v2.holds());
    }

    #[test]
    fn memoization_reuses_results() {
        let mgr = BddManager::new();
        let (_, fsm) = ring3(&mgr);
        let mut mc = ModelChecker::new(&fsm);
        let f = parse("AG (p -> AX AX q)");
        let s1 = mc.sat(&f).unwrap();
        let nodes_before = mgr.live_nodes();
        let s2 = mc.sat(&f).unwrap();
        assert_eq!(s1, s2);
        assert_eq!(mgr.live_nodes(), nodes_before);
    }

    #[test]
    fn counterexample_for_implication_and_ax() {
        let mgr = BddManager::new();
        let (_, fsm) = ring3(&mgr);
        let mut mc = ModelChecker::new(&fsm);
        // AX q fails: the one-step counterexample lands on a ¬q state.
        let v = mc.check(&parse("AX q")).unwrap();
        match v {
            Verdict::Fails {
                counterexample: Some(t),
                ..
            } => assert_eq!(t.len(), 1),
            other => panic!("expected traced failure, got {other:?}"),
        }
        // p -> AG q fails; the trace starts at a p-state.
        let v = mc.check(&parse("p -> AG q")).unwrap();
        match v {
            Verdict::Fails {
                counterexample: Some(t),
                ..
            } => assert!(!t.steps.is_empty()),
            other => panic!("expected traced failure, got {other:?}"),
        }
    }

    /// Regression: `clear_cache` used to leave the cached `fair_states`
    /// set alive. The cached set owns a root slot, so dropping it is
    /// directly observable through the manager's root count.
    #[test]
    fn clear_cache_drops_fair_states() {
        let mgr = BddManager::new();
        let mut stg = Stg::new("branch");
        stg.add_states(3);
        stg.add_edge(0, 1);
        stg.add_edge(0, 2);
        stg.add_edge(1, 1);
        stg.add_edge(2, 2);
        stg.mark_initial(0);
        stg.label(2, "q");
        let fsm = stg.compile(&mgr).expect("compiles");
        let mut mc = ModelChecker::new(&fsm);
        mc.add_fairness(&PropExpr::atom("q")).unwrap();
        let baseline = mgr.live_roots();
        let fair = mc.fair_states();
        assert!(
            !fair.is_const(),
            "fixture needs a nontrivial fair set for the root count to move"
        );
        drop(fair);
        assert_eq!(mgr.live_roots(), baseline + 1, "the cached set remains");
        mc.clear_cache();
        assert_eq!(mgr.live_roots(), baseline, "clear_cache must drop it");
    }

    /// With a care set installed, every cached satisfaction set must
    /// agree with the care-free run on the care states, and verdicts
    /// must be identical outright.
    #[test]
    fn care_simplified_fixpoints_agree_on_care_states() {
        use covest_fsm::{ImageConfig, SimplifyConfig};

        let formulas = [
            "AG (q -> AX p)",
            "A[p U q]",
            "AF q",
            "AG p",
            "AX AX q",
            "p -> AG (q -> AX p)",
        ];
        for mode in [SimplifyConfig::Restrict, SimplifyConfig::Constrain] {
            let mgr = BddManager::new();
            let (_, mut fsm) = ring3(&mgr);
            fsm.set_image_config(ImageConfig {
                simplify: mode,
                ..fsm.image_config()
            });
            // ring3 compiles 3 states onto 2 bits: state 11 is unreachable,
            // so the care set is nontrivial.
            let reach = fsm.install_reachable_care();
            assert!(!reach.is_const());
            let mut plain = ModelChecker::new(&fsm);
            let mut cared = ModelChecker::new(&fsm);
            cared.set_care(reach.clone());
            assert!(cared.care().is_some());
            for f in formulas {
                let ctl = parse(f);
                let sp = plain.sat(&ctl).unwrap();
                let sc = cared.sat(&ctl).unwrap();
                assert_eq!(
                    sp.and(&reach),
                    sc.and(&reach),
                    "{f}: satisfaction sets diverge on the care states ({mode})"
                );
                assert_eq!(
                    plain.holds(&ctl).unwrap(),
                    cared.holds(&ctl).unwrap(),
                    "{f}: verdicts diverge ({mode})"
                );
            }
        }
    }

    #[test]
    fn overrides_flip_interpretation() {
        let mgr = BddManager::new();
        let (stg, fsm) = ring3(&mgr);
        let mut mc = ModelChecker::new(&fsm);
        // Override q to be true in state 0 instead of state 2.
        let s0 = stg.state_fn(&fsm, 0);
        mc.set_overrides(vec![(SignalRef::new("q"), SignalValue::Bool(s0))]);
        assert!(mc.holds(&parse("q")).unwrap());
    }
}
