//! The symbolic CTL model-checking engine.

use std::collections::HashMap;

use covest_bdd::{Bdd, Ref};
use covest_ctl::{Ctl, PropExpr, SignalRef};
use covest_fsm::{ImageMethod, LowerError, SignalValue, SymbolicFsm};

use crate::verdict::Verdict;

/// A symbolic CTL model checker for one machine.
///
/// The checker borrows the machine and owns a memo table of satisfying
/// state sets keyed by sub-formula; re-checking related properties (and
/// running coverage estimation afterwards) reuses the cached fixpoints.
#[derive(Debug)]
pub struct ModelChecker<'m> {
    fsm: &'m SymbolicFsm,
    fairness: Vec<Ref>,
    overrides: Vec<(SignalRef, SignalValue)>,
    cache: HashMap<Ctl, Ref>,
    fair_states: Option<Ref>,
}

impl<'m> ModelChecker<'m> {
    /// Creates a checker with no fairness constraints.
    pub fn new(fsm: &'m SymbolicFsm) -> Self {
        ModelChecker {
            fsm,
            fairness: Vec::new(),
            overrides: Vec::new(),
            cache: HashMap::new(),
            fair_states: None,
        }
    }

    /// The machine under check.
    pub fn fsm(&self) -> &SymbolicFsm {
        self.fsm
    }

    /// The image method every EX/EU/EG fixpoint of this checker runs on
    /// (inherited from the machine's image engine).
    pub fn image_method(&self) -> ImageMethod {
        self.fsm.image_config().method
    }

    /// Every BDD handle the checker holds: the machine's refs (including
    /// the transition-relation clusters and any cached monolith) plus
    /// fairness sets, override interpretations, the fair-state cache, and
    /// all memoized satisfaction sets. Pass these as roots to
    /// `Bdd::gc` / `Bdd::reduce_heap` to keep the checker usable across
    /// collection or reordering.
    pub fn protected_refs(&self) -> Vec<Ref> {
        let mut roots = self.fsm.protected_refs();
        roots.extend(self.fairness.iter().copied());
        for (_, value) in &self.overrides {
            value.push_refs(&mut roots);
        }
        roots.extend(self.cache.values().copied());
        roots.extend(self.fair_states);
        roots
    }

    /// Adds a fairness constraint: paths must satisfy `constraint`
    /// infinitely often (Section 4.3 of the paper). Invalidate-on-add:
    /// cached results are dropped.
    ///
    /// # Errors
    ///
    /// Returns [`LowerError`] if the constraint mentions unknown signals.
    pub fn add_fairness(&mut self, bdd: &mut Bdd, constraint: &PropExpr) -> Result<(), LowerError> {
        let f = self.fsm.signals().lower(bdd, constraint)?;
        self.fairness.push(f);
        self.cache.clear();
        self.fair_states = None;
        Ok(())
    }

    /// Adds a raw (already lowered) fairness constraint.
    pub fn add_fairness_set(&mut self, states: Ref) {
        self.fairness.push(states);
        self.cache.clear();
        self.fair_states = None;
    }

    /// Installs signal-interpretation overrides (used by the reference
    /// coverage implementation to evaluate primed/dual signals). Cached
    /// results are dropped.
    pub fn set_overrides(&mut self, overrides: Vec<(SignalRef, SignalValue)>) {
        self.overrides = overrides;
        self.cache.clear();
        self.fair_states = None;
    }

    /// The fairness constraints currently installed.
    pub fn fairness(&self) -> &[Ref] {
        &self.fairness
    }

    /// States from which some fair path starts (`EG_fair TRUE`). With no
    /// constraints this is the whole state space.
    pub fn fair_states(&mut self, bdd: &mut Bdd) -> Ref {
        if let Some(f) = self.fair_states {
            return f;
        }
        let f = if self.fairness.is_empty() {
            Ref::TRUE
        } else {
            self.eg_fair(bdd, Ref::TRUE)
        };
        self.fair_states = Some(f);
        f
    }

    /// The set of states satisfying `f` (over current-state variables).
    ///
    /// # Errors
    ///
    /// Returns [`LowerError`] if a propositional atom cannot be resolved
    /// against the machine's signals.
    pub fn sat(&mut self, bdd: &mut Bdd, f: &Ctl) -> Result<Ref, LowerError> {
        if let Some(&r) = self.cache.get(f) {
            return Ok(r);
        }
        let result = match f {
            Ctl::Prop(p) => self.fsm.signals().lower_with(bdd, p, &self.overrides)?,
            Ctl::Not(a) => {
                let sa = self.sat(bdd, a)?;
                bdd.not(sa)
            }
            Ctl::And(a, b) => {
                let sa = self.sat(bdd, a)?;
                let sb = self.sat(bdd, b)?;
                bdd.and(sa, sb)
            }
            Ctl::Or(a, b) => {
                let sa = self.sat(bdd, a)?;
                let sb = self.sat(bdd, b)?;
                bdd.or(sa, sb)
            }
            Ctl::Implies(a, b) => {
                let sa = self.sat(bdd, a)?;
                let sb = self.sat(bdd, b)?;
                bdd.implies(sa, sb)
            }
            Ctl::Ex(a) => {
                let sa = self.sat(bdd, a)?;
                self.ex_fair(bdd, sa)
            }
            Ctl::Ax(a) => {
                // AX p = ¬EX ¬p (over fair paths).
                let sa = self.sat(bdd, a)?;
                let nsa = bdd.not(sa);
                let e = self.ex_fair(bdd, nsa);
                bdd.not(e)
            }
            Ctl::Ef(a) => {
                let sa = self.sat(bdd, a)?;
                self.eu_fair(bdd, Ref::TRUE, sa)
            }
            Ctl::Ag(a) => {
                // AG p = ¬EF ¬p.
                let sa = self.sat(bdd, a)?;
                let nsa = bdd.not(sa);
                let e = self.eu_fair(bdd, Ref::TRUE, nsa);
                bdd.not(e)
            }
            Ctl::Eg(a) => {
                let sa = self.sat(bdd, a)?;
                self.eg_fair(bdd, sa)
            }
            Ctl::Af(a) => {
                // AF p = ¬EG ¬p.
                let sa = self.sat(bdd, a)?;
                let nsa = bdd.not(sa);
                let e = self.eg_fair(bdd, nsa);
                bdd.not(e)
            }
            Ctl::Eu(a, b) => {
                let sa = self.sat(bdd, a)?;
                let sb = self.sat(bdd, b)?;
                self.eu_fair(bdd, sa, sb)
            }
            Ctl::Au(a, b) => {
                // A[p U q] = ¬(E[¬q U ¬p∧¬q] ∨ EG ¬q).
                let sa = self.sat(bdd, a)?;
                let sb = self.sat(bdd, b)?;
                let nq = bdd.not(sb);
                let np = bdd.not(sa);
                let npq = bdd.and(np, nq);
                let escape = self.eu_fair(bdd, nq, npq);
                let stuck = self.eg_fair(bdd, nq);
                let bad = bdd.or(escape, stuck);
                bdd.not(bad)
            }
        };
        self.cache.insert(f.clone(), result);
        Ok(result)
    }

    /// `EX p` over fair paths: `EX (p ∧ fair)`.
    fn ex_fair(&mut self, bdd: &mut Bdd, p: Ref) -> Ref {
        let fair = self.fair_states(bdd);
        let pf = bdd.and(p, fair);
        self.fsm.preimage(bdd, pf)
    }

    /// `E[p U q]` over fair paths: `E[p U (q ∧ fair)]`.
    fn eu_fair(&mut self, bdd: &mut Bdd, p: Ref, q: Ref) -> Ref {
        let fair = self.fair_states(bdd);
        let goal = bdd.and(q, fair);
        self.eu_raw(bdd, p, goal)
    }

    /// Plain least-fixpoint `E[p U q]`.
    fn eu_raw(&self, bdd: &mut Bdd, p: Ref, q: Ref) -> Ref {
        let mut z = q;
        loop {
            let pre = self.fsm.preimage(bdd, z);
            let step = bdd.and(p, pre);
            let next = bdd.or(z, step);
            if next == z {
                return z;
            }
            z = next;
        }
    }

    /// `EG p` under the installed fairness constraints (Emerson–Lei).
    fn eg_fair(&mut self, bdd: &mut Bdd, p: Ref) -> Ref {
        if self.fairness.is_empty() {
            return self.eg_raw(bdd, p);
        }
        // νZ. p ∧ ⋀_c EX E[p U (Z ∧ c)]
        let constraints = self.fairness.clone();
        let mut z = Ref::TRUE;
        loop {
            let mut next = p;
            for &c in &constraints {
                let zc = bdd.and(z, c);
                let reach = self.eu_raw(bdd, p, zc);
                let pre = self.fsm.preimage(bdd, reach);
                next = bdd.and(next, pre);
            }
            if next == z {
                return z;
            }
            z = next;
        }
    }

    /// Plain greatest-fixpoint `EG p`.
    fn eg_raw(&self, bdd: &mut Bdd, p: Ref) -> Ref {
        let mut z = p;
        loop {
            let pre = self.fsm.preimage(bdd, z);
            let next = bdd.and(z, pre);
            if next == z {
                return z;
            }
            z = next;
        }
    }

    /// `true` iff every fair initial state satisfies `f`
    /// (`M, S_I ⊨ f`). Initial states with no fair path are vacuous.
    ///
    /// # Errors
    ///
    /// See [`ModelChecker::sat`].
    pub fn holds(&mut self, bdd: &mut Bdd, f: &Ctl) -> Result<bool, LowerError> {
        let sat = self.sat(bdd, f)?;
        let fair = self.fair_states(bdd);
        let init_fair = bdd.and(self.fsm.init(), fair);
        Ok(bdd.leq(init_fair, sat))
    }

    /// Full check with verdict and counterexample construction.
    ///
    /// For a failing top-level `AG f` (possibly under conjunctions) the
    /// counterexample is a shortest trace from the initial states to a
    /// reachable state violating `f`; otherwise only the bad initial
    /// state is reported.
    ///
    /// # Errors
    ///
    /// See [`ModelChecker::sat`].
    pub fn check(&mut self, bdd: &mut Bdd, f: &Ctl) -> Result<Verdict, LowerError> {
        let sat = self.sat(bdd, f)?;
        let fair = self.fair_states(bdd);
        let init_fair = bdd.and(self.fsm.init(), fair);
        let bad = bdd.diff(init_fair, sat);
        if bad.is_false() {
            return Ok(Verdict::Holds);
        }
        let cur = self.fsm.current_vars();
        let pick = bdd.pick_minterm(bad, &cur).expect("bad is nonempty");
        let bad_initial: Vec<(String, bool)> = self
            .fsm
            .state_bits()
            .iter()
            .zip(pick.iter())
            .map(|(b, &(_, v))| (b.name.clone(), v))
            .collect();
        let counterexample = self.counterexample(bdd, f)?;
        Ok(Verdict::Fails {
            bad_initial,
            counterexample,
        })
    }

    /// Attempts to build a trace witnessing the failure of `f`.
    fn counterexample(&mut self, bdd: &mut Bdd, f: &Ctl) -> Result<Option<Trace0>, LowerError> {
        match f {
            Ctl::Ag(inner) => {
                // Shortest path from the initial states to a reachable
                // violation of the body.
                let si = self.sat(bdd, inner)?;
                let viol = bdd.not(si);
                let fair = self.fair_states(bdd);
                let viol_fair = bdd.and(viol, fair);
                Ok(self.fsm.trace_to(bdd, viol_fair))
            }
            Ctl::And(a, b) => {
                if !self.holds(bdd, a)? {
                    self.counterexample(bdd, a)
                } else {
                    self.counterexample(bdd, b)
                }
            }
            Ctl::Implies(a, b) => {
                // Failing initial state satisfies `a` but not `b`; if `b`
                // is itself traceable, recurse from the restricted start.
                let sa = self.sat(bdd, a)?;
                let init_a = {
                    let i = self.fsm.init();
                    bdd.and(i, sa)
                };
                self.counterexample_from(bdd, init_a, b)
            }
            Ctl::Ax(inner) => {
                // One step to a successor violating the body.
                let si = self.sat(bdd, inner)?;
                let viol = bdd.not(si);
                let fair = self.fair_states(bdd);
                let viol_fair = bdd.and(viol, fair);
                let img = self.fsm.image(bdd, self.fsm.init());
                let target = bdd.and(img, viol_fair);
                Ok(self.fsm.trace_to(bdd, target))
            }
            _ => Ok(None),
        }
    }

    /// Like [`ModelChecker::counterexample`] but starting from `from`
    /// instead of the initial states (used to thread implication
    /// antecedent restrictions).
    fn counterexample_from(
        &mut self,
        bdd: &mut Bdd,
        from: Ref,
        f: &Ctl,
    ) -> Result<Option<Trace0>, LowerError> {
        match f {
            Ctl::Ag(inner) => {
                let si = self.sat(bdd, inner)?;
                let viol = bdd.not(si);
                let reach = self.fsm.reachable_from(bdd, from);
                let target = bdd.and(reach, viol);
                Ok(self.fsm.trace_from_to(bdd, from, target))
            }
            Ctl::Ax(inner) => {
                let si = self.sat(bdd, inner)?;
                let viol = bdd.not(si);
                let img = self.fsm.image(bdd, from);
                let target = bdd.and(img, viol);
                Ok(self.fsm.trace_from_to(bdd, from, target))
            }
            _ => {
                // Fall back: the failing start state itself.
                let sf = self.sat(bdd, f)?;
                let bad = bdd.diff(from, sf);
                if bad.is_false() {
                    return Ok(None);
                }
                Ok(self.fsm.trace_from_to(bdd, bad, bad))
            }
        }
    }

    /// Clears the memo cache (e.g. after mutating the shared manager with
    /// unrelated work, to bound memory).
    pub fn clear_cache(&mut self) {
        self.cache.clear();
    }
}

type Trace0 = covest_fsm::Trace;

#[cfg(test)]
mod tests {
    use super::*;
    use covest_ctl::parse_formula;
    use covest_fsm::Stg;

    fn parse(s: &str) -> Ctl {
        parse_formula(s).expect(s).into()
    }

    /// 0 → 1 → 2 → 0 ring; q on state 2, p on states 0 and 1.
    fn ring3(bdd: &mut Bdd) -> (Stg, SymbolicFsm) {
        let mut stg = Stg::new("ring3");
        stg.add_states(3);
        stg.add_edge(0, 1);
        stg.add_edge(1, 2);
        stg.add_edge(2, 0);
        stg.mark_initial(0);
        stg.label(2, "q");
        stg.label(0, "p");
        stg.label(1, "p");
        let fsm = stg.compile(bdd).expect("compiles");
        (stg, fsm)
    }

    #[test]
    fn propositional_and_ax() {
        let mut bdd = Bdd::new();
        let (_, fsm) = ring3(&mut bdd);
        let mut mc = ModelChecker::new(&fsm);
        assert!(mc.holds(&mut bdd, &parse("p")).unwrap());
        assert!(!mc.holds(&mut bdd, &parse("q")).unwrap());
        assert!(mc.holds(&mut bdd, &parse("AX p")).unwrap());
        assert!(mc.holds(&mut bdd, &parse("AX AX q")).unwrap());
        assert!(!mc.holds(&mut bdd, &parse("AX q")).unwrap());
    }

    #[test]
    fn ag_au_af() {
        let mut bdd = Bdd::new();
        let (_, fsm) = ring3(&mut bdd);
        let mut mc = ModelChecker::new(&fsm);
        assert!(mc.holds(&mut bdd, &parse("AG (q -> AX p)")).unwrap());
        assert!(mc.holds(&mut bdd, &parse("A[p U q]")).unwrap());
        assert!(mc.holds(&mut bdd, &parse("AF q")).unwrap());
        assert!(!mc.holds(&mut bdd, &parse("AG p")).unwrap());
    }

    #[test]
    fn au_requires_eventual_goal() {
        let mut bdd = Bdd::new();
        // 0 → 0 self-loop with p: A[p U q] must fail (q never comes).
        // State 1 (unreachable) defines the q signal.
        let mut stg = Stg::new("loop");
        stg.add_states(2);
        stg.add_edge(0, 0);
        stg.mark_initial(0);
        stg.label(0, "p");
        stg.label(1, "q");
        let fsm = stg.compile(&mut bdd).expect("compiles");
        let mut mc = ModelChecker::new(&fsm);
        assert!(!mc.holds(&mut bdd, &parse("A[p U q]")).unwrap());
        assert!(mc.holds(&mut bdd, &parse("AG p")).unwrap());
    }

    #[test]
    fn general_ctl_negation_and_e_ops() {
        let mut bdd = Bdd::new();
        let (_, fsm) = ring3(&mut bdd);
        let mut mc = ModelChecker::new(&fsm);
        // EF q holds; EG p fails on the ring (q-state always reached).
        let efq = Ctl::Ef(Box::new(Ctl::prop(PropExpr::atom("q"))));
        assert!(mc.holds(&mut bdd, &efq).unwrap());
        let egp = Ctl::Eg(Box::new(Ctl::prop(PropExpr::atom("p"))));
        assert!(!mc.holds(&mut bdd, &egp).unwrap());
        // ¬EG p is AF ¬p.
        let not_egp = Ctl::Not(Box::new(egp));
        assert!(mc.holds(&mut bdd, &not_egp).unwrap());
    }

    #[test]
    fn fairness_restricts_paths() {
        let mut bdd = Bdd::new();
        // Two branches from 0: loop at 1 (no q), loop at 2 (q).
        let mut stg = Stg::new("branch");
        stg.add_states(3);
        stg.add_edge(0, 1);
        stg.add_edge(0, 2);
        stg.add_edge(1, 1);
        stg.add_edge(2, 2);
        stg.mark_initial(0);
        stg.label(2, "q");
        stg.label(2, "fair_here");
        let fsm = stg.compile(&mut bdd).expect("compiles");
        // Without fairness, AF q fails (path through 1 never sees q).
        let mut mc = ModelChecker::new(&fsm);
        assert!(!mc.holds(&mut bdd, &parse("AF q")).unwrap());
        // With fairness "infinitely often fair_here", only the 2-branch
        // is a fair path, so AF q holds.
        let mut mc2 = ModelChecker::new(&fsm);
        mc2.add_fairness(&mut bdd, &PropExpr::atom("fair_here"))
            .unwrap();
        assert!(mc2.holds(&mut bdd, &parse("AF q")).unwrap());
        // fair states exclude the 1-loop.
        let fair = mc2.fair_states(&mut bdd);
        let vars = fsm.current_vars();
        assert_eq!(bdd.sat_count_over(fair, &vars), 2.0); // states 0 and 2
    }

    #[test]
    fn verdict_includes_counterexample_for_ag() {
        let mut bdd = Bdd::new();
        let (_, fsm) = ring3(&mut bdd);
        let mut mc = ModelChecker::new(&fsm);
        let v = mc.check(&mut bdd, &parse("AG p")).unwrap();
        match v {
            Verdict::Fails {
                counterexample: Some(t),
                ..
            } => {
                // Shortest path to the q-state (distance 2).
                assert_eq!(t.len(), 2);
            }
            other => panic!("expected failure with trace, got {other:?}"),
        }
        let v2 = mc.check(&mut bdd, &parse("AG (p | q)")).unwrap();
        assert!(v2.holds());
    }

    #[test]
    fn memoization_reuses_results() {
        let mut bdd = Bdd::new();
        let (_, fsm) = ring3(&mut bdd);
        let mut mc = ModelChecker::new(&fsm);
        let f = parse("AG (p -> AX AX q)");
        let s1 = mc.sat(&mut bdd, &f).unwrap();
        let nodes_before = bdd.live_nodes();
        let s2 = mc.sat(&mut bdd, &f).unwrap();
        assert_eq!(s1, s2);
        assert_eq!(bdd.live_nodes(), nodes_before);
    }

    #[test]
    fn counterexample_for_implication_and_ax() {
        let mut bdd = Bdd::new();
        let (_, fsm) = ring3(&mut bdd);
        let mut mc = ModelChecker::new(&fsm);
        // AX q fails: the one-step counterexample lands on a ¬q state.
        let v = mc.check(&mut bdd, &parse("AX q")).unwrap();
        match v {
            Verdict::Fails {
                counterexample: Some(t),
                ..
            } => assert_eq!(t.len(), 1),
            other => panic!("expected traced failure, got {other:?}"),
        }
        // p -> AG q fails; the trace starts at a p-state.
        let v = mc.check(&mut bdd, &parse("p -> AG q")).unwrap();
        match v {
            Verdict::Fails {
                counterexample: Some(t),
                ..
            } => assert!(!t.steps.is_empty()),
            other => panic!("expected traced failure, got {other:?}"),
        }
    }

    #[test]
    fn overrides_flip_interpretation() {
        let mut bdd = Bdd::new();
        let (stg, fsm) = ring3(&mut bdd);
        let mut mc = ModelChecker::new(&fsm);
        // Override q to be true in state 0 instead of state 2.
        let s0 = stg.state_fn(&mut bdd, &fsm, 0);
        mc.set_overrides(vec![(SignalRef::new("q"), SignalValue::Bool(s0))]);
        assert!(mc.holds(&mut bdd, &parse("q")).unwrap());
    }
}
