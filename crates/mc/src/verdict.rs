//! Verification verdicts.

use covest_fsm::Trace;

/// The outcome of checking a property against a machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// All (fair) initial states satisfy the property.
    Holds,
    /// Some initial state violates the property.
    Fails {
        /// A violating initial state, as bit assignments.
        bad_initial: Vec<(String, bool)>,
        /// A counterexample trace when one could be constructed (e.g. a
        /// path to a state violating the body of a top-level `AG`).
        counterexample: Option<Trace>,
    },
}

impl Verdict {
    /// `true` if the property holds.
    pub fn holds(&self) -> bool {
        matches!(self, Verdict::Holds)
    }
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Verdict::Holds => write!(f, "holds"),
            Verdict::Fails {
                bad_initial,
                counterexample,
            } => {
                write!(f, "fails in initial state ")?;
                for (name, v) in bad_initial {
                    write!(f, "{name}={} ", u8::from(*v))?;
                }
                if let Some(t) = counterexample {
                    writeln!(f, "\ncounterexample:")?;
                    write!(f, "{t}")?;
                }
                Ok(())
            }
        }
    }
}
