//! # covest-mc
//!
//! A symbolic CTL model checker over [`covest_fsm::SymbolicFsm`] — the
//! verification engine beneath the DAC'99 coverage estimator (the paper's
//! estimator was "implemented on top of SMV"; this crate plays SMV's
//! role).
//!
//! - [`ModelChecker::sat`] evaluates any [`covest_ctl::Ctl`] formula to
//!   the BDD of satisfying states, with memoization shared across
//!   sub-formulas (the paper notes results "can be memoized and used
//!   during coverage estimation");
//! - universal operators are computed by duality from the existential
//!   fixpoints `EX`, `EU`, `EG`;
//! - fairness constraints (Section 4.3) are honoured via the
//!   Emerson–Lei algorithm: `A`-quantifiers range over paths on which
//!   every constraint holds infinitely often;
//! - [`ModelChecker::check`] returns a [`Verdict`] with a counterexample
//!   trace for the common failure shapes.
//!
//! # Example
//!
//! ```
//! use covest_bdd::BddManager;
//! use covest_fsm::Stg;
//! use covest_mc::ModelChecker;
//! use covest_ctl::parse_formula;
//!
//! let mut stg = Stg::new("toggle");
//! stg.add_states(2);
//! stg.add_edge(0, 1);
//! stg.add_edge(1, 0);
//! stg.mark_initial(0);
//! stg.label(1, "q");
//! let mgr = BddManager::new();
//! let fsm = stg.compile(&mgr)?;
//! let mut mc = ModelChecker::new(&fsm);
//! let f = parse_formula("AG AX q").unwrap();
//! // q holds only on odd steps, so AG AX q fails (AX q is false in odd
//! // states, which are reachable).
//! assert!(!mc.holds(&f.into()).unwrap());
//! let g = parse_formula("AX q").unwrap();
//! assert!(mc.holds(&g.into()).unwrap());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod checker;
mod verdict;

pub use checker::ModelChecker;
pub use verdict::Verdict;
