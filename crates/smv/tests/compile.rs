//! End-to-end tests of the deck compiler: semantics of the compiled
//! machine are checked via reachability and model checking.

use covest_bdd::BddManager;
use covest_ctl::parse_formula;
use covest_mc::ModelChecker;
use covest_smv::compile;

fn check(deck: &str, spec: &str) -> bool {
    let bdd = BddManager::new();
    let model = compile(&bdd, deck).expect("compiles");
    let mut mc = ModelChecker::new(&model.fsm);
    for fair in &model.fairness {
        mc.add_fairness(fair).expect("fairness lowers");
    }
    let f = parse_formula(spec).expect(spec);
    mc.holds(&f.into()).expect("checks")
}

const COUNTER: &str = r#"
MODULE main
VAR count : 0..4;
IVAR stall : boolean;
ASSIGN
  init(count) := 0;
  next(count) := case
    stall : count;
    count < 4 : count + 1;
    TRUE : 0;
  esac;
"#;

#[test]
fn counter_increments_and_wraps() {
    assert!(check(COUNTER, "AG (!stall & count = 2 -> AX count = 3)"));
    assert!(check(COUNTER, "AG (!stall & count = 4 -> AX count = 0)"));
    assert!(check(COUNTER, "AG (stall & count = 2 -> AX count = 2)"));
    assert!(!check(COUNTER, "AG (count = 2 -> AX count = 3)")); // stall may hold
    assert!(check(COUNTER, "AG count <= 4"));
}

#[test]
fn reachable_counts_respect_ranges() {
    let bdd = BddManager::new();
    let model = compile(&bdd, COUNTER).expect("compiles");
    // 5 values of count reachable; 3 bits allocated → codes 5..7 excluded.
    // The stall input is a free state bit (SMV-style), so the model has
    // 4 variables and each count value pairs with both stall values.
    let vars = model.fsm.current_vars();
    assert_eq!(vars.len(), 4);
    let r = model.fsm.reachable();
    assert_eq!(r.sat_count_over(&vars), 10.0);
}

#[test]
fn enums_and_defines() {
    let deck = r#"
VAR state : {idle, busy, done};
IVAR go : boolean;
ASSIGN
  init(state) := idle;
  next(state) := case
    state = idle & go : busy;
    state = busy : done;
    state = done : idle;
    TRUE : state;
  esac;
DEFINE working := state = busy;
"#;
    assert!(check(deck, "AG (working -> AX state = done)"));
    assert!(check(deck, "AG (state = done -> AX state = idle)"));
    assert!(!check(deck, "AG (state = idle -> AX state = busy)"));
    assert!(check(deck, "AG (state = idle & go -> AX working)"));
}

#[test]
fn subtraction_and_mod() {
    let deck = r#"
VAR p : 0..3;
ASSIGN
  init(p) := 3;
  next(p) := (p + 1) mod 4;
DEFINE prev := (p - 1 + 4) mod 4;
"#;
    assert!(check(deck, "AG (p = 3 -> AX p = 0)"));
    assert!(check(deck, "AG (p = 1 -> prev = 0)"));
    assert!(check(deck, "AG (p = 0 -> prev = 3)"));
}

#[test]
fn negative_range_arithmetic() {
    let deck = r#"
VAR t : -2..2;
ASSIGN
  init(t) := -2;
  next(t) := case
    t < 2 : t + 1;
    TRUE : -2;
  esac;
"#;
    assert!(check(deck, "AG (t = -2 -> AX t = -1)"));
    assert!(check(deck, "AG (t = 2 -> AX t = -2)"));
    assert!(check(deck, "AG (t >= -2 & t <= 2)"));
}

#[test]
fn bool_var_and_uninitialized_vars() {
    let deck = r#"
VAR x : boolean;
    y : boolean;
ASSIGN
  next(x) := !x;
  next(y) := y;
  init(y) := TRUE;
"#;
    // x uninitialized: both initial values possible.
    assert!(!check(deck, "x"));
    assert!(!check(deck, "!x"));
    assert!(check(deck, "y"));
    assert!(check(deck, "AG (x -> AX !x)"));
}

#[test]
fn fairness_section_applies() {
    let deck = r#"
VAR c : 0..2;
IVAR stall : boolean;
ASSIGN
  init(c) := 0;
  next(c) := case
    stall : c;
    c < 2 : c + 1;
    TRUE : c;
  esac;
FAIRNESS !stall;
"#;
    // Without fairness AF (c = 2) would fail (always-stall path);
    // the deck's fairness makes it hold.
    assert!(check(deck, "AF c = 2"));
}

#[test]
fn specs_and_observed_are_compiled() {
    let deck = r#"
VAR b : boolean;
ASSIGN
  init(b) := FALSE;
  next(b) := !b;
SPEC AG (b -> AX !b);
SPEC AX b;
OBSERVED b;
"#;
    let bdd = BddManager::new();
    let model = compile(&bdd, deck).expect("compiles");
    assert_eq!(model.specs.len(), 2);
    assert_eq!(model.observed, vec!["b".to_owned()]);
    let mut mc = ModelChecker::new(&model.fsm);
    for s in &model.specs {
        assert!(mc.holds(&s.clone().into()).expect("checks"));
    }
}

#[test]
fn error_cases() {
    let bdd = BddManager::new();
    // Out-of-range assignment.
    let e = compile(&bdd, "VAR c : 0..3; ASSIGN init(c) := 0; next(c) := c + 1;").unwrap_err();
    assert!(e.message.contains("out-of-range"), "{e}");
    // Missing next().
    let e = compile(&bdd, "VAR c : 0..3; ASSIGN init(c) := 0;").unwrap_err();
    assert!(e.message.contains("no next()"), "{e}");
    // Non-exhaustive case.
    let e = compile(
        &bdd,
        "VAR b : boolean; ASSIGN next(b) := case b : FALSE; esac;",
    )
    .unwrap_err();
    assert!(e.message.contains("exhaustive"), "{e}");
    // Type errors.
    let e = compile(&bdd, "VAR b : boolean; ASSIGN next(b) := b + 1;").unwrap_err();
    assert!(e.message.contains("arithmetic"), "{e}");
    // Unknown name.
    let e = compile(&bdd, "VAR b : boolean; ASSIGN next(b) := nope;").unwrap_err();
    assert!(e.message.contains("unknown name"), "{e}");
    // Assigning an input.
    let e = compile(
        &bdd,
        "VAR b : boolean; IVAR i : boolean; ASSIGN next(b) := b; next(i) := b;",
    )
    .unwrap_err();
    assert!(e.message.contains("input"), "{e}");
    // Cyclic DEFINE.
    let e = compile(
        &bdd,
        "VAR b : boolean; ASSIGN next(b) := d1; DEFINE d1 := d2; DEFINE d2 := d1;",
    )
    .unwrap_err();
    assert!(e.message.contains("cyclic"), "{e}");
    // Bad SPEC (outside subset).
    let e = compile(&bdd, "VAR b : boolean; ASSIGN next(b) := b; SPEC EF b;").unwrap_err();
    assert!(e.message.contains("SPEC"), "{e}");
    // Temporal FAIRNESS.
    let e = compile(&bdd, "VAR b : boolean; ASSIGN next(b) := b; FAIRNESS AX b;").unwrap_err();
    assert!(e.message.contains("propositional"), "{e}");
    // Unknown OBSERVED.
    let e = compile(&bdd, "VAR b : boolean; ASSIGN next(b) := b; OBSERVED zz;").unwrap_err();
    assert!(e.message.contains("OBSERVED"), "{e}");
}

#[test]
fn enum_literal_conflicts_rejected() {
    let bdd = BddManager::new();
    let e = compile(
        &bdd,
        "VAR a : {x, y}; b : {y, x};\nASSIGN next(a) := a; next(b) := b;",
    )
    .unwrap_err();
    assert!(e.message.contains("conflicting"), "{e}");
}

#[test]
fn var_to_var_comparisons_in_specs() {
    let deck = r#"
VAR rp : 0..3;
    wp : 0..3;
IVAR adv : boolean;
ASSIGN
  init(rp) := 0;
  init(wp) := 0;
  next(rp) := rp;
  next(wp) := case
    adv : (wp + 1) mod 4;
    TRUE : wp;
  esac;
DEFINE same := rp = wp;
"#;
    assert!(check(deck, "rp = wp"));
    assert!(check(deck, "AG (same & adv -> AX !same)"));
    assert!(!check(deck, "AG same"));
}

#[test]
fn auto_reorder_during_compile_keeps_earlier_models_alive() {
    // Compile's auto-reorder checkpoint collects against the root table.
    // A caller keeping an earlier model alive on a shared manager needs
    // no registration at all: the model's owned handles are its pins.
    use covest_bdd::{ReorderConfig, ReorderMode};

    let deck =
        "VAR c : 0..5;\nASSIGN init(c) := 0;\nnext(c) := case c < 5 : c + 1; TRUE : 0; esac;";
    let bdd = BddManager::new();
    bdd.set_reorder_config(ReorderConfig {
        mode: ReorderMode::Auto,
        auto_threshold: 8, // fire inside every compile
        ..Default::default()
    });
    let a = compile(&bdd, deck).expect("first model compiles");
    let reach_before = a.fsm.reachable_count();
    let b = compile(&bdd, deck).expect("second model compiles");
    // Model `a`'s handles still denote the same machine.
    assert!(a.fsm.is_total());
    assert_eq!(a.fsm.reachable_count(), reach_before);
    assert_eq!(b.fsm.reachable_count(), reach_before);
}
