//! Differential validation of the deck compiler against a concrete-value
//! interpreter: for every (state, input) assignment of a small deck, the
//! successor state computed by direct expression evaluation must match
//! the compiled transition relation, and the initial predicate must match
//! the evaluated init constraints.

use std::collections::HashMap;

use covest_bdd::BddManager;
use covest_smv::{compile, parse_module, BinOp, Expr, Module, VarType};

/// A concrete value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Val {
    B(bool),
    I(i64),
}

/// Evaluates an expression under a concrete environment.
fn eval(module: &Module, env: &HashMap<String, Val>, e: &Expr) -> Val {
    match e {
        Expr::Bool(b) => Val::B(*b),
        Expr::Int(i) => Val::I(*i),
        Expr::Name(n) => {
            if let Some(v) = env.get(n) {
                *v
            } else if let Some(def) = module.define(n) {
                eval(module, env, &def.expr)
            } else {
                // Enumeration literal.
                for d in &module.vars {
                    if let VarType::Enum(lits) = &d.ty {
                        if let Some(i) = lits.iter().position(|l| l == n) {
                            return Val::I(i as i64);
                        }
                    }
                }
                panic!("unknown name {n}")
            }
        }
        Expr::Not(a) => match eval(module, env, a) {
            Val::B(b) => Val::B(!b),
            v => panic!("! on {v:?}"),
        },
        Expr::Bin(op, a, b) => {
            let va = eval(module, env, a);
            let vb = eval(module, env, b);
            match (op, va, vb) {
                (BinOp::And, Val::B(x), Val::B(y)) => Val::B(x && y),
                (BinOp::Or, Val::B(x), Val::B(y)) => Val::B(x || y),
                (BinOp::Implies, Val::B(x), Val::B(y)) => Val::B(!x || y),
                (BinOp::Iff, Val::B(x), Val::B(y)) => Val::B(x == y),
                (BinOp::Xor, Val::B(x), Val::B(y)) => Val::B(x != y),
                (BinOp::Eq, Val::B(x), Val::B(y)) => Val::B(x == y),
                (BinOp::Ne, Val::B(x), Val::B(y)) => Val::B(x != y),
                (BinOp::Eq, Val::I(x), Val::I(y)) => Val::B(x == y),
                (BinOp::Ne, Val::I(x), Val::I(y)) => Val::B(x != y),
                (BinOp::Lt, Val::I(x), Val::I(y)) => Val::B(x < y),
                (BinOp::Le, Val::I(x), Val::I(y)) => Val::B(x <= y),
                (BinOp::Gt, Val::I(x), Val::I(y)) => Val::B(x > y),
                (BinOp::Ge, Val::I(x), Val::I(y)) => Val::B(x >= y),
                (BinOp::Add, Val::I(x), Val::I(y)) => Val::I(x + y),
                (BinOp::Sub, Val::I(x), Val::I(y)) => Val::I(x - y),
                (BinOp::Mod, Val::I(x), Val::I(y)) => Val::I(x.rem_euclid(y)),
                other => panic!("type error {other:?}"),
            }
        }
        Expr::Case(arms) => {
            for (g, v) in arms {
                if eval(module, env, g) == Val::B(true) {
                    return eval(module, env, v);
                }
            }
            panic!("non-exhaustive case at runtime")
        }
    }
}

/// Enumerates all type-correct environments of a module's variables.
fn environments(module: &Module) -> Vec<HashMap<String, Val>> {
    let mut envs = vec![HashMap::new()];
    for d in &module.vars {
        let values: Vec<Val> = match &d.ty {
            VarType::Boolean => vec![Val::B(false), Val::B(true)],
            VarType::Range(lo, hi) => (*lo..=*hi).map(Val::I).collect(),
            VarType::Enum(lits) => (0..lits.len() as i64).map(Val::I).collect(),
        };
        let mut next = Vec::with_capacity(envs.len() * values.len());
        for env in &envs {
            for v in &values {
                let mut e = env.clone();
                e.insert(d.name.clone(), *v);
                next.push(e);
            }
        }
        envs = next;
    }
    envs
}

/// Encodes a value into per-bit booleans for a declared variable.
fn encode_bits(module: &Module, name: &str, v: Val) -> Vec<(String, bool)> {
    let d = module.vars.iter().find(|d| d.name == name).expect("var");
    match (&d.ty, v) {
        (VarType::Boolean, Val::B(b)) => vec![(name.to_owned(), b)],
        (VarType::Range(lo, hi), Val::I(i)) => {
            let raw = (i - lo) as u64;
            let span = (hi - lo + 1) as u64;
            bits_of(name, raw, span)
        }
        (VarType::Enum(lits), Val::I(i)) => bits_of(name, i as u64, lits.len() as u64),
        other => panic!("bad encode {other:?}"),
    }
}

fn bits_of(name: &str, raw: u64, span: u64) -> Vec<(String, bool)> {
    let mut width = 1;
    while (1u64 << width) < span {
        width += 1;
    }
    (0..width)
        .map(|i| (format!("{name}.{i}"), (raw >> i) & 1 == 1))
        .collect()
}

/// Checks one deck exhaustively.
fn check_deck(src: &str) {
    let module = parse_module(src).expect("parses");
    let bdd = BddManager::new();
    let model = compile(&bdd, src).expect("compiles");
    let fsm = &model.fsm;
    let bit_index: HashMap<&str, usize> = fsm
        .state_bits()
        .iter()
        .enumerate()
        .map(|(i, b)| (b.name.as_str(), i))
        .collect();

    for env in environments(&module) {
        // Build the (current, expected-next) bit assignments.
        let mut cur_bits: Vec<(String, bool)> = Vec::new();
        for d in &module.vars {
            cur_bits.extend(encode_bits(&module, &d.name, env[&d.name]));
        }
        // Expected next values for assigned state variables.
        let mut next_bits: Vec<(String, bool)> = Vec::new();
        for a in &module.nexts {
            let v = eval(&module, &env, &a.expr);
            next_bits.extend(encode_bits(&module, &a.name, v));
        }
        // Restrict the transition relation by current and next bits; it
        // must be satisfiable (deterministic machines: exactly the free
        // input bits remain).
        let mut t = fsm.trans();
        for (name, val) in &cur_bits {
            let idx = bit_index[name.as_str()];
            t = t.cofactor(fsm.state_bits()[idx].current, *val);
        }
        for (name, val) in &next_bits {
            let idx = bit_index[name.as_str()];
            t = t.cofactor(fsm.state_bits()[idx].next, *val);
        }
        assert!(
            !t.is_false(),
            "interpreter successor rejected by compiled relation: env={env:?}"
        );
        // And flipping any single expected next bit must be rejected.
        for k in 0..next_bits.len() {
            let mut t2 = fsm.trans();
            for (name, val) in &cur_bits {
                let idx = bit_index[name.as_str()];
                t2 = t2.cofactor(fsm.state_bits()[idx].current, *val);
            }
            for (j, (name, val)) in next_bits.iter().enumerate() {
                let idx = bit_index[name.as_str()];
                let v = if j == k { !*val } else { *val };
                t2 = t2.cofactor(fsm.state_bits()[idx].next, v);
            }
            assert!(
                t2.is_false(),
                "compiled relation allows a wrong successor: env={env:?} bit={k}"
            );
        }
        // Init agreement: evaluate init constraints on this env.
        let mut expected_init = true;
        for a in &module.inits {
            let v = eval(&module, &env, &a.expr);
            expected_init &= env[&a.name] == v;
        }
        let mut i = fsm.init().clone();
        for (name, val) in &cur_bits {
            let idx = bit_index[name.as_str()];
            i = i.cofactor(fsm.state_bits()[idx].current, *val);
        }
        assert_eq!(!i.is_false(), expected_init, "init mismatch: env={env:?}");
    }
}

#[test]
fn counter_deck_matches_interpreter() {
    check_deck(
        r#"
VAR count : 0..5;
IVAR stall : boolean; reset : boolean;
ASSIGN
  init(count) := 0;
  next(count) := case
    reset : 0;
    stall : count;
    count < 5 : count + 1;
    TRUE : 0;
  esac;
"#,
    );
}

#[test]
fn enum_and_define_deck_matches_interpreter() {
    check_deck(
        r#"
VAR state : {idle, busy, done};
    t : boolean;
IVAR go : boolean;
DEFINE working := state = busy;
ASSIGN
  init(state) := idle;
  next(state) := case
    state = idle & go : busy;
    working : done;
    state = done : idle;
    TRUE : state;
  esac;
  init(t) := FALSE;
  next(t) := t xor go;
"#,
    );
}

#[test]
fn arithmetic_deck_matches_interpreter() {
    check_deck(
        r#"
VAR p : 0..3;
    n : -2..2;
IVAR step : boolean;
ASSIGN
  init(p) := 3;
  next(p) := case step : (p + 1) mod 4; TRUE : p; esac;
  init(n) := 0;
  next(n) := case
    step & n < 2 : n + 1;
    step : -2;
    TRUE : n;
  esac;
"#,
    );
}

#[test]
fn pointer_pair_deck_matches_interpreter() {
    check_deck(
        r#"
VAR rp : 0..3; wp : 0..3;
IVAR rd : boolean; wr : boolean;
DEFINE same := rp = wp;
ASSIGN
  init(rp) := 0;
  init(wp) := 0;
  next(rp) := case rd & !same : (rp + 1) mod 4; TRUE : rp; esac;
  next(wp) := case wr : (wp + 1) mod 4; TRUE : wp; esac;
"#,
    );
}
