//! Compilation of a parsed [`Module`] to a [`SymbolicFsm`].
//!
//! Booleans lower directly to BDDs. Integer-valued expressions are
//! evaluated as *value partitions*: a list of `(value, condition)` pairs
//! where the conditions are disjoint BDDs covering the state space. This
//! keeps arithmetic exact (including negative ranges and `mod`) at the
//! model sizes typical for property verification, and range-overflow in
//! assignments is detected statically: if an assignment can produce an
//! out-of-range value under a satisfiable condition, compilation fails
//! rather than silently wrapping.

use std::collections::HashMap;

use covest_bdd::{BddManager, Func};
use covest_fsm::{FsmBuilder, ImageConfig, NumericSignal, StateBit, SymbolicFsm};

use crate::ast::{BinOp, Expr, Module, VarDecl, VarType};
use crate::error::ModelError;

/// A compiled value: boolean function or integer value partition.
#[derive(Debug, Clone)]
enum Value {
    Bool(Func),
    /// Pairs `(value, condition)`; conditions are pairwise disjoint and
    /// cover `TRUE` (a total partition).
    Int(Vec<(i64, Func)>),
}

/// Per-variable compile-time info.
#[derive(Debug, Clone)]
struct VarInfo {
    decl: VarDecl,
    /// Bit handles (bool vars use exactly one). IVARs compile to free
    /// state bits, so every handle is a state bit.
    bits: Vec<BitHandle>,
    /// Minimum value (offset) for int-typed vars.
    offset: i64,
    /// Number of values (range size); 2 for booleans.
    span: i64,
}

#[derive(Debug, Clone)]
enum BitHandle {
    State(StateBit),
}

impl BitHandle {
    fn current(&self, bdd: &BddManager) -> Func {
        match self {
            BitHandle::State(s) => bdd.var(s.current),
        }
    }
}

fn bits_needed(span: i64) -> usize {
    debug_assert!(span >= 1);
    let mut n = 1usize;
    while (1i64 << n) < span {
        n += 1;
    }
    n
}

/// Number of state bits a declaration of type `ty` compiles to.
pub fn decl_bit_width(ty: &VarType) -> usize {
    match ty {
        VarType::Boolean => 1,
        VarType::Range(lo, hi) => bits_needed(hi - lo + 1),
        VarType::Enum(lits) => bits_needed(lits.len() as i64),
    }
}

/// The bit-level state names `decl` expands to, in bit order — exactly
/// the names [`compile_module_with`] registers on the machine (booleans
/// keep their bare name; multi-bit variables become `{name}.{i}`).
///
/// This is the single naming convention shared by the compiler, the
/// name-keyed BDD export format, and the static cone analysis in
/// `covest-analyze`.
pub fn decl_bit_names(decl: &VarDecl) -> Vec<String> {
    let nbits = decl_bit_width(&decl.ty);
    (0..nbits)
        .map(|i| {
            if nbits == 1 && matches!(decl.ty, VarType::Boolean) {
                decl.name.clone()
            } else {
                format!("{}.{i}", decl.name)
            }
        })
        .collect()
}

struct Compiler<'a> {
    module: &'a Module,
    vars: HashMap<String, VarInfo>,
    literals: HashMap<String, i64>,
    define_cache: HashMap<String, Value>,
    define_stack: Vec<String>,
    /// States whose variable encodings are all valid; impossible
    /// conditions outside this set are ignored by range and
    /// exhaustiveness checks.
    valid: Func,
}

impl<'a> Compiler<'a> {
    fn lookup_define(&self, name: &str) -> Option<&Expr> {
        self.module.define(name).map(|d| &d.expr)
    }

    fn eval(&mut self, bdd: &BddManager, e: &Expr) -> Result<Value, ModelError> {
        match e {
            Expr::Bool(b) => Ok(Value::Bool(bdd.constant(*b))),
            Expr::Int(v) => Ok(Value::Int(vec![(*v, bdd.constant(true))])),
            Expr::Name(n) => self.eval_name(bdd, n),
            Expr::Not(a) => match self.eval(bdd, a)? {
                Value::Bool(r) => Ok(Value::Bool(r.not())),
                Value::Int(_) => Err(ModelError::nowhere(format!(
                    "`!` applied to integer expression `{a}`"
                ))),
            },
            Expr::Bin(op, a, b) => self.eval_bin(bdd, *op, a, b),
            Expr::Case(arms) => self.eval_case(bdd, arms),
        }
    }

    fn eval_name(&mut self, bdd: &BddManager, n: &str) -> Result<Value, ModelError> {
        if let Some(info) = self.vars.get(n).cloned() {
            return Ok(match info.decl.ty {
                VarType::Boolean => Value::Bool(info.bits[0].current(bdd)),
                VarType::Range(..) | VarType::Enum(_) => {
                    let mut pairs = Vec::with_capacity(info.span as usize);
                    for raw in 0..info.span {
                        let mut cond = bdd.constant(true);
                        for (i, bit) in info.bits.iter().enumerate() {
                            let b = bit.current(bdd);
                            let want = (raw >> i) & 1 == 1;
                            let lit = if want { b } else { b.not() };
                            cond = cond.and(&lit);
                        }
                        pairs.push((raw + info.offset, cond));
                    }
                    Value::Int(pairs)
                }
            });
        }
        if self.lookup_define(n).is_some() {
            if let Some(v) = self.define_cache.get(n) {
                return Ok(v.clone());
            }
            if self.define_stack.iter().any(|d| d == n) {
                return Err(ModelError::nowhere(format!(
                    "cyclic DEFINE involving `{n}`"
                )));
            }
            self.define_stack.push(n.to_owned());
            let expr = self.lookup_define(n).expect("checked above").clone();
            let v = self.eval(bdd, &expr)?;
            self.define_stack.pop();
            self.define_cache.insert(n.to_owned(), v.clone());
            return Ok(v);
        }
        if let Some(&v) = self.literals.get(n) {
            return Ok(Value::Int(vec![(v, bdd.constant(true))]));
        }
        Err(ModelError::nowhere(format!("unknown name `{n}`")))
    }

    fn eval_bin(
        &mut self,
        bdd: &BddManager,
        op: BinOp,
        a: &Expr,
        b: &Expr,
    ) -> Result<Value, ModelError> {
        let va = self.eval(bdd, a)?;
        let vb = self.eval(bdd, b)?;
        match op {
            BinOp::And | BinOp::Or | BinOp::Implies | BinOp::Iff | BinOp::Xor => {
                let (ra, rb) = match (va, vb) {
                    (Value::Bool(x), Value::Bool(y)) => (x, y),
                    _ => {
                        return Err(ModelError::nowhere(format!(
                            "boolean operator `{op}` applied to integer operand in `{a} {op} {b}`"
                        )))
                    }
                };
                Ok(Value::Bool(match op {
                    BinOp::And => ra.and(&rb),
                    BinOp::Or => ra.or(&rb),
                    BinOp::Implies => ra.implies(&rb),
                    BinOp::Iff => ra.iff(&rb),
                    BinOp::Xor => ra.xor(&rb),
                    _ => unreachable!(),
                }))
            }
            BinOp::Eq | BinOp::Ne => match (va, vb) {
                // Equality works on both kinds.
                (Value::Bool(x), Value::Bool(y)) => {
                    let e = x.iff(&y);
                    Ok(Value::Bool(if op == BinOp::Eq { e } else { e.not() }))
                }
                (Value::Int(pa), Value::Int(pb)) => {
                    let r = int_cmp(bdd, &pa, &pb, |x, y| x == y);
                    Ok(Value::Bool(if op == BinOp::Eq { r } else { r.not() }))
                }
                _ => Err(ModelError::nowhere(format!(
                    "type mismatch in comparison `{a} {op} {b}`"
                ))),
            },
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => match (va, vb) {
                (Value::Int(pa), Value::Int(pb)) => {
                    let r = match op {
                        BinOp::Lt => int_cmp(bdd, &pa, &pb, |x, y| x < y),
                        BinOp::Le => int_cmp(bdd, &pa, &pb, |x, y| x <= y),
                        BinOp::Gt => int_cmp(bdd, &pa, &pb, |x, y| x > y),
                        _ => int_cmp(bdd, &pa, &pb, |x, y| x >= y),
                    };
                    Ok(Value::Bool(r))
                }
                _ => Err(ModelError::nowhere(format!(
                    "ordering comparison on boolean operand in `{a} {op} {b}`"
                ))),
            },
            BinOp::Add | BinOp::Sub | BinOp::Mod => match (va, vb) {
                (Value::Int(pa), Value::Int(pb)) => {
                    let f: fn(i64, i64) -> Result<i64, ModelError> = match op {
                        BinOp::Add => |x, y| Ok(x + y),
                        BinOp::Sub => |x, y| Ok(x - y),
                        _ => |x, y| {
                            if y <= 0 {
                                Err(ModelError::nowhere(format!(
                                    "`mod` by non-positive constant {y}"
                                )))
                            } else {
                                Ok(x.rem_euclid(y))
                            }
                        },
                    };
                    int_arith(bdd, &pa, &pb, f).map(Value::Int)
                }
                _ => Err(ModelError::nowhere(format!(
                    "arithmetic on boolean operand in `{a} {op} {b}`"
                ))),
            },
        }
    }

    fn eval_case(&mut self, bdd: &BddManager, arms: &[(Expr, Expr)]) -> Result<Value, ModelError> {
        // Evaluate guards first; arm i fires when its guard holds and no
        // earlier guard does.
        let mut fire = Vec::with_capacity(arms.len());
        let mut taken = bdd.constant(false);
        for (g, _) in arms {
            let gv = match self.eval(bdd, g)? {
                Value::Bool(r) => r,
                Value::Int(_) => {
                    return Err(ModelError::nowhere(format!(
                        "case guard `{g}` is not boolean"
                    )))
                }
            };
            fire.push(gv.and(&taken.not()));
            taken = taken.or(&gv);
        }
        let covered_all = self.valid.implies(&taken);
        if !covered_all.is_true() {
            return Err(ModelError::nowhere(
                "case expression is not exhaustive (add a `TRUE :` arm)",
            ));
        }
        // Merge arm values.
        let first = self.eval(bdd, &arms[0].1)?;
        match first {
            Value::Bool(_) => {
                let mut acc = bdd.constant(false);
                for ((_, e), cond) in arms.iter().zip(&fire) {
                    let v = match self.eval(bdd, e)? {
                        Value::Bool(r) => r,
                        Value::Int(_) => {
                            return Err(ModelError::nowhere(
                                "case arms mix boolean and integer values",
                            ))
                        }
                    };
                    acc = acc.or(&cond.and(&v));
                }
                Ok(Value::Bool(acc))
            }
            Value::Int(_) => {
                let mut merged: HashMap<i64, Func> = HashMap::new();
                for ((_, e), cond) in arms.iter().zip(&fire) {
                    let pairs = match self.eval(bdd, e)? {
                        Value::Int(p) => p,
                        Value::Bool(_) => {
                            return Err(ModelError::nowhere(
                                "case arms mix boolean and integer values",
                            ))
                        }
                    };
                    for (v, c) in pairs {
                        let both = cond.and(&c);
                        if !both.is_false() {
                            match merged.entry(v) {
                                std::collections::hash_map::Entry::Occupied(mut e) => {
                                    let u = e.get().or(&both);
                                    e.insert(u);
                                }
                                std::collections::hash_map::Entry::Vacant(e) => {
                                    e.insert(both);
                                }
                            }
                        }
                    }
                }
                let mut out: Vec<(i64, Func)> = merged.into_iter().collect();
                out.sort_by_key(|(v, _)| *v);
                Ok(Value::Int(out))
            }
        }
    }
}

/// Pointwise comparison of two partitions.
fn int_cmp(
    bdd: &BddManager,
    pa: &[(i64, Func)],
    pb: &[(i64, Func)],
    rel: impl Fn(i64, i64) -> bool,
) -> Func {
    let mut acc = bdd.constant(false);
    for (va, ca) in pa {
        for (vb, cb) in pb {
            if rel(*va, *vb) {
                acc = acc.or(&ca.and(cb));
            }
        }
    }
    acc
}

/// Pointwise arithmetic on two partitions.
fn int_arith(
    _bdd: &BddManager,
    pa: &[(i64, Func)],
    pb: &[(i64, Func)],
    f: impl Fn(i64, i64) -> Result<i64, ModelError>,
) -> Result<Vec<(i64, Func)>, ModelError> {
    let mut merged: HashMap<i64, Func> = HashMap::new();
    for (va, ca) in pa {
        for (vb, cb) in pb {
            let both = ca.and(cb);
            if both.is_false() {
                continue;
            }
            let v = f(*va, *vb)?;
            match merged.entry(v) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    let u = e.get().or(&both);
                    e.insert(u);
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(both);
                }
            }
        }
    }
    let mut out: Vec<(i64, Func)> = merged.into_iter().collect();
    out.sort_by_key(|(v, _)| *v);
    Ok(out)
}

/// The result of compiling a module.
#[derive(Debug)]
pub struct CompiledModel {
    /// The symbolic machine.
    pub fsm: SymbolicFsm,
    /// Parsed SPEC properties.
    pub specs: Vec<covest_ctl::Formula>,
    /// Parsed FAIRNESS constraints (propositional).
    pub fairness: Vec<covest_ctl::PropExpr>,
    /// Observed-signal names from the OBSERVED section.
    pub observed: Vec<String>,
}

/// Compiles a parsed module on the given manager with the default
/// (partitioned) image configuration.
///
/// # Errors
///
/// Returns [`ModelError`] for type errors, non-exhaustive cases, range
/// overflows, unknown names, missing `next()` assignments, or SPEC /
/// FAIRNESS bodies that fail to parse.
pub fn compile_module(bdd: &BddManager, module: &Module) -> Result<CompiledModel, ModelError> {
    compile_module_with(bdd, module, ImageConfig::default())
}

/// Compiles a parsed module with an explicit image configuration.
///
/// The compiler emits one transition part per state bit (plus one per
/// validity invariant on free input encodings) and never conjoins them
/// into a monolithic relation itself — the machine's image engine
/// (see [`covest_fsm::ImageEngine`]) clusters the parts and builds the
/// monolith lazily only when [`covest_fsm::ImageMethod::Monolithic`] is
/// in use.
///
/// # Errors
///
/// See [`compile_module`].
pub fn compile_module_with(
    bdd: &BddManager,
    module: &Module,
    image: ImageConfig,
) -> Result<CompiledModel, ModelError> {
    let _span = covest_telemetry::span("compile");
    // Duplicate checks + literal table.
    let mut literals: HashMap<String, i64> = HashMap::new();
    let mut seen: HashMap<&str, ()> = HashMap::new();
    for d in &module.vars {
        if seen.insert(&d.name, ()).is_some() {
            return Err(ModelError::nowhere(format!(
                "duplicate variable `{}`",
                d.name
            )));
        }
        if let VarType::Enum(lits) = &d.ty {
            for (i, l) in lits.iter().enumerate() {
                if let Some(&prev) = literals.get(l) {
                    if prev != i as i64 {
                        return Err(ModelError::nowhere(format!(
                            "enumeration literal `{l}` used with conflicting values"
                        )));
                    }
                } else {
                    literals.insert(l.clone(), i as i64);
                }
            }
        }
    }

    let mut builder = FsmBuilder::new(bdd, "main").with_image_config(image);
    let mut vars: HashMap<String, VarInfo> = HashMap::new();
    for d in &module.vars {
        let (offset, span) = match &d.ty {
            VarType::Boolean => (0, 2),
            VarType::Range(lo, hi) => (*lo, hi - lo + 1),
            VarType::Enum(lits) => (0, lits.len() as i64),
        };
        let bit_names = decl_bit_names(d);
        let mut bits = Vec::with_capacity(bit_names.len());
        for bit_name in bit_names {
            if d.input {
                // Inputs compile to *free* state bits (unconstrained next
                // value), matching original SMV: the input valuation is
                // part of the state, so properties may mention inputs.
                let sb = builder.add_free_bit(bit_name);
                bits.push(BitHandle::State(sb));
            } else {
                let sb = builder.add_state_bit(bit_name);
                bits.push(BitHandle::State(sb));
            }
        }
        vars.insert(
            d.name.clone(),
            VarInfo {
                decl: d.clone(),
                bits,
                offset,
                span,
            },
        );
    }

    // Invalid encodings of ranged variables must never occur: exclude
    // them from the initial states, and — because inputs are *free* bits
    // whose next value is otherwise unconstrained — also forbid them in
    // the next-state rank of the transition relation. State variables
    // with exact next-value assignments cannot produce invalid codes.
    let mut invalid_codes = bdd.constant(false);
    for d in &module.vars {
        let info = vars[&d.name].clone();
        let code_count = 1i64 << info.bits.len();
        let mut invalid_cur = bdd.constant(false);
        let mut invalid_next = bdd.constant(false);
        for raw in info.span..code_count {
            let mut cond_cur = bdd.constant(true);
            let mut cond_next = bdd.constant(true);
            for (i, bit) in info.bits.iter().enumerate() {
                let BitHandle::State(sb) = bit;
                let want = (raw >> i) & 1 == 1;
                cond_cur = cond_cur.and(&bdd.literal(sb.current, want));
                cond_next = cond_next.and(&bdd.literal(sb.next, want));
            }
            invalid_cur = invalid_cur.or(&cond_cur);
            invalid_next = invalid_next.or(&cond_next);
        }
        invalid_codes = invalid_codes.or(&invalid_cur);
        if d.input && !invalid_next.is_false() {
            builder.add_trans_constraint(invalid_next.not());
        }
    }
    let valid = invalid_codes.not();

    let mut compiler = Compiler {
        module,
        vars,
        literals,
        define_cache: HashMap::new(),
        define_stack: Vec::new(),
        valid: valid.clone(),
    };

    // Register signals for properties: numeric signals for int vars,
    // boolean signals are registered by the builder already (but only
    // bit-level names); add whole-variable signals.
    for d in &module.vars {
        let info = compiler.vars[&d.name].clone();
        match &d.ty {
            VarType::Boolean => {
                let f = info.bits[0].current(bdd);
                builder.add_signal(d.name.clone(), f);
            }
            VarType::Range(lo, _) => {
                let bit_fns: Vec<Func> = info.bits.iter().map(|b| b.current(bdd)).collect();
                let mut sig = NumericSignal::unsigned(bit_fns);
                sig.offset = *lo;
                builder.add_numeric_signal(d.name.clone(), sig);
            }
            VarType::Enum(lits) => {
                let bit_fns: Vec<Func> = info.bits.iter().map(|b| b.current(bdd)).collect();
                let mut sig = NumericSignal::unsigned(bit_fns);
                for (i, l) in lits.iter().enumerate() {
                    sig.literals.insert(l.clone(), i as i64);
                }
                builder.add_numeric_signal(d.name.clone(), sig);
            }
        }
    }

    // init(x) constraints.
    let mut init = valid;
    for a in &module.inits {
        let name = &a.name;
        let info = compiler
            .vars
            .get(name)
            .cloned()
            .ok_or_else(|| ModelError::nowhere(format!("init of unknown variable `{name}`")))?;
        if info.decl.input {
            return Err(ModelError::nowhere(format!(
                "`{name}` is an input; inputs cannot be assigned"
            )));
        }
        let v = compiler.eval(bdd, &a.expr)?;
        let constraint = assign_constraint(bdd, &mut compiler, name, &info, &v, false)?;
        init = init.and(&constraint);
    }
    builder.set_init(init);

    // next(x) assignments.
    for a in &module.nexts {
        let name = &a.name;
        let info = compiler
            .vars
            .get(name)
            .cloned()
            .ok_or_else(|| ModelError::nowhere(format!("next of unknown variable `{name}`")))?;
        if info.decl.input {
            return Err(ModelError::nowhere(format!(
                "`{name}` is an input; inputs cannot be assigned"
            )));
        }
        let v = compiler.eval(bdd, &a.expr)?;
        set_next_bits(bdd, &mut builder, &mut compiler, name, &info, &v)?;
    }

    // Every state variable must have a next() assignment.
    for d in &module.vars {
        if !d.input && !module.nexts.iter().any(|a| a.name == d.name) {
            return Err(ModelError::nowhere(format!(
                "state variable `{}` has no next() assignment",
                d.name
            )));
        }
    }

    // DEFINEs become named signals.
    for def in &module.defines {
        let name = &def.name;
        match compiler.eval(bdd, &Expr::Name(name.clone()))? {
            Value::Bool(r) => {
                builder.add_signal(name.clone(), r);
            }
            Value::Int(pairs) => {
                let min = pairs.iter().map(|(v, _)| *v).min().unwrap_or(0);
                let max = pairs.iter().map(|(v, _)| *v).max().unwrap_or(0);
                let width = bits_needed(max - min + 1);
                let mut bit_fns = vec![bdd.constant(false); width];
                for (v, c) in &pairs {
                    let raw = v - min;
                    for (i, bit) in bit_fns.iter_mut().enumerate() {
                        if (raw >> i) & 1 == 1 {
                            *bit = bit.or(c);
                        }
                    }
                }
                let mut sig = NumericSignal::unsigned(bit_fns);
                sig.offset = min;
                builder.add_numeric_signal(name.clone(), sig);
            }
        }
    }

    let fsm = builder
        .build()
        .map_err(|e| ModelError::nowhere(e.to_string()))?;

    // Parse SPEC and FAIRNESS bodies.
    let mut specs = Vec::with_capacity(module.specs.len());
    for s in &module.specs {
        let text = &s.text;
        let f = covest_ctl::parse_formula(text)
            .map_err(|e| ModelError::nowhere(format!("SPEC `{text}`: {e}")))?;
        specs.push(f);
    }
    let mut fairness = Vec::with_capacity(module.fairness.len());
    for s in &module.fairness {
        let text = &s.text;
        let ast = covest_ctl::parse_ast(text)
            .map_err(|e| ModelError::nowhere(format!("FAIRNESS `{text}`: {e}")))?;
        match covest_ctl::classify(&ast) {
            Ok(covest_ctl::Formula::Prop(p)) => fairness.push(p),
            _ => {
                return Err(ModelError::nowhere(format!(
                    "FAIRNESS `{text}` must be propositional"
                )))
            }
        }
    }

    // Validate observed names.
    for o in &module.observed {
        if !fsm.signals().contains(&o.name) {
            return Err(ModelError::nowhere(format!(
                "OBSERVED signal `{}` is not defined",
                o.name
            )));
        }
    }

    // Model elaboration can balloon the table on a bad declaration order;
    // give auto-reordering a safe point before the model is handed out.
    // The checkpoint's live set is the root table, so this model — and
    // any other handle the caller holds on a shared manager — survives
    // without registration.
    bdd.maybe_reduce_heap();

    Ok(CompiledModel {
        fsm,
        specs,
        fairness,
        observed: module.observed.iter().map(|o| o.name.clone()).collect(),
    })
}

/// Builds the predicate `var == value` (for init) or installs next-state
/// bit functions (for next); shared range checking.
fn assign_constraint(
    bdd: &BddManager,
    _compiler: &mut Compiler<'_>,
    name: &str,
    info: &VarInfo,
    v: &Value,
    _next: bool,
) -> Result<Func, ModelError> {
    match (&info.decl.ty, v) {
        (VarType::Boolean, Value::Bool(r)) => Ok(info.bits[0].current(bdd).iff(r)),
        (VarType::Boolean, Value::Int(_)) => Err(ModelError::nowhere(format!(
            "integer assigned to boolean `{name}`"
        ))),
        (_, Value::Bool(_)) => Err(ModelError::nowhere(format!(
            "boolean assigned to integer `{name}`"
        ))),
        (_, Value::Int(pairs)) => {
            check_range(&_compiler.valid, name, info, pairs)?;
            let mut acc = bdd.constant(false);
            for (val, cond) in pairs {
                let raw = val - info.offset;
                let mut eq = bdd.constant(true);
                for (i, bit) in info.bits.iter().enumerate() {
                    let b = bit.current(bdd);
                    let want = (raw >> i) & 1 == 1;
                    let lit = if want { b } else { b.not() };
                    eq = eq.and(&lit);
                }
                acc = acc.or(&cond.and(&eq));
            }
            Ok(acc)
        }
    }
}

fn set_next_bits(
    bdd: &BddManager,
    builder: &mut FsmBuilder,
    _compiler: &mut Compiler<'_>,
    name: &str,
    info: &VarInfo,
    v: &Value,
) -> Result<(), ModelError> {
    match (&info.decl.ty, v) {
        (VarType::Boolean, Value::Bool(r)) => {
            builder.set_next(name, r.clone());
            Ok(())
        }
        (VarType::Boolean, Value::Int(_)) => Err(ModelError::nowhere(format!(
            "integer assigned to boolean `{name}`"
        ))),
        (_, Value::Bool(_)) => Err(ModelError::nowhere(format!(
            "boolean assigned to integer `{name}`"
        ))),
        (_, Value::Int(pairs)) => {
            check_range(&_compiler.valid, name, info, pairs)?;
            let width = info.bits.len();
            let mut bit_fns = vec![bdd.constant(false); width];
            for (val, cond) in pairs {
                let raw = val - info.offset;
                for (i, bit) in bit_fns.iter_mut().enumerate() {
                    if (raw >> i) & 1 == 1 {
                        *bit = bit.or(cond);
                    }
                }
            }
            for (i, f) in bit_fns.into_iter().enumerate() {
                builder.set_next(&format!("{name}.{i}"), f);
            }
            Ok(())
        }
    }
}

fn check_range(
    valid: &Func,
    name: &str,
    info: &VarInfo,
    pairs: &[(i64, Func)],
) -> Result<(), ModelError> {
    for (val, cond) in pairs {
        let val = *val;
        let possible = cond.and(valid);
        if (val < info.offset || val >= info.offset + info.span) && !possible.is_false() {
            return Err(ModelError::nowhere(format!(
                "assignment to `{name}` can produce out-of-range value {val} \
                 (range {}..{})",
                info.offset,
                info.offset + info.span - 1
            )));
        }
    }
    Ok(())
}
