//! Compilation of a parsed [`Module`] to a [`SymbolicFsm`].
//!
//! Booleans lower directly to BDDs. Integer-valued expressions are
//! evaluated as *value partitions*: a list of `(value, condition)` pairs
//! where the conditions are disjoint BDDs covering the state space. This
//! keeps arithmetic exact (including negative ranges and `mod`) at the
//! model sizes typical for property verification, and range-overflow in
//! assignments is detected statically: if an assignment can produce an
//! out-of-range value under a satisfiable condition, compilation fails
//! rather than silently wrapping.

use std::collections::HashMap;

use covest_bdd::{Bdd, Ref};
use covest_fsm::{FsmBuilder, ImageConfig, NumericSignal, StateBit, SymbolicFsm};

use crate::ast::{BinOp, Expr, Module, VarDecl, VarType};
use crate::error::ModelError;

/// A compiled value: boolean function or integer value partition.
#[derive(Debug, Clone)]
enum Value {
    Bool(Ref),
    /// Pairs `(value, condition)`; conditions are pairwise disjoint and
    /// cover `TRUE` (a total partition).
    Int(Vec<(i64, Ref)>),
}

/// Per-variable compile-time info.
#[derive(Debug, Clone)]
struct VarInfo {
    decl: VarDecl,
    /// Bit handles (bool vars use exactly one). IVARs compile to free
    /// state bits, so every handle is a state bit.
    bits: Vec<BitHandle>,
    /// Minimum value (offset) for int-typed vars.
    offset: i64,
    /// Number of values (range size); 2 for booleans.
    span: i64,
}

#[derive(Debug, Clone)]
enum BitHandle {
    State(StateBit),
}

impl BitHandle {
    fn current(&self, bdd: &mut Bdd) -> Ref {
        match self {
            BitHandle::State(s) => bdd.var(s.current),
        }
    }
}

fn bits_needed(span: i64) -> usize {
    debug_assert!(span >= 1);
    let mut n = 1usize;
    while (1i64 << n) < span {
        n += 1;
    }
    n
}

struct Compiler<'a> {
    module: &'a Module,
    vars: HashMap<String, VarInfo>,
    literals: HashMap<String, i64>,
    define_cache: HashMap<String, Value>,
    define_stack: Vec<String>,
    /// States whose variable encodings are all valid; impossible
    /// conditions outside this set are ignored by range and
    /// exhaustiveness checks.
    valid: Ref,
}

impl<'a> Compiler<'a> {
    fn lookup_define(&self, name: &str) -> Option<&Expr> {
        self.module
            .defines
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, e)| e)
    }

    fn eval(&mut self, bdd: &mut Bdd, e: &Expr) -> Result<Value, ModelError> {
        match e {
            Expr::Bool(b) => Ok(Value::Bool(bdd.constant(*b))),
            Expr::Int(v) => Ok(Value::Int(vec![(*v, Ref::TRUE)])),
            Expr::Name(n) => self.eval_name(bdd, n),
            Expr::Not(a) => match self.eval(bdd, a)? {
                Value::Bool(r) => Ok(Value::Bool(bdd.not(r))),
                Value::Int(_) => Err(ModelError::nowhere(format!(
                    "`!` applied to integer expression `{a}`"
                ))),
            },
            Expr::Bin(op, a, b) => self.eval_bin(bdd, *op, a, b),
            Expr::Case(arms) => self.eval_case(bdd, arms),
        }
    }

    fn eval_name(&mut self, bdd: &mut Bdd, n: &str) -> Result<Value, ModelError> {
        if let Some(info) = self.vars.get(n).cloned() {
            return Ok(match info.decl.ty {
                VarType::Boolean => Value::Bool(info.bits[0].current(bdd)),
                VarType::Range(..) | VarType::Enum(_) => {
                    let mut pairs = Vec::with_capacity(info.span as usize);
                    for raw in 0..info.span {
                        let mut cond = Ref::TRUE;
                        for (i, bit) in info.bits.iter().enumerate() {
                            let b = bit.current(bdd);
                            let want = (raw >> i) & 1 == 1;
                            let lit = if want { b } else { bdd.not(b) };
                            cond = bdd.and(cond, lit);
                        }
                        pairs.push((raw + info.offset, cond));
                    }
                    Value::Int(pairs)
                }
            });
        }
        if self.lookup_define(n).is_some() {
            if let Some(v) = self.define_cache.get(n) {
                return Ok(v.clone());
            }
            if self.define_stack.iter().any(|d| d == n) {
                return Err(ModelError::nowhere(format!(
                    "cyclic DEFINE involving `{n}`"
                )));
            }
            self.define_stack.push(n.to_owned());
            let expr = self.lookup_define(n).expect("checked above").clone();
            let v = self.eval(bdd, &expr)?;
            self.define_stack.pop();
            self.define_cache.insert(n.to_owned(), v.clone());
            return Ok(v);
        }
        if let Some(&v) = self.literals.get(n) {
            return Ok(Value::Int(vec![(v, Ref::TRUE)]));
        }
        Err(ModelError::nowhere(format!("unknown name `{n}`")))
    }

    fn eval_bin(
        &mut self,
        bdd: &mut Bdd,
        op: BinOp,
        a: &Expr,
        b: &Expr,
    ) -> Result<Value, ModelError> {
        let va = self.eval(bdd, a)?;
        let vb = self.eval(bdd, b)?;
        match op {
            BinOp::And | BinOp::Or | BinOp::Implies | BinOp::Iff | BinOp::Xor => {
                let (ra, rb) = match (va, vb) {
                    (Value::Bool(x), Value::Bool(y)) => (x, y),
                    _ => {
                        return Err(ModelError::nowhere(format!(
                            "boolean operator `{op}` applied to integer operand in `{a} {op} {b}`"
                        )))
                    }
                };
                Ok(Value::Bool(match op {
                    BinOp::And => bdd.and(ra, rb),
                    BinOp::Or => bdd.or(ra, rb),
                    BinOp::Implies => bdd.implies(ra, rb),
                    BinOp::Iff => bdd.iff(ra, rb),
                    BinOp::Xor => bdd.xor(ra, rb),
                    _ => unreachable!(),
                }))
            }
            BinOp::Eq | BinOp::Ne => match (va, vb) {
                // Equality works on both kinds.
                (Value::Bool(x), Value::Bool(y)) => {
                    let e = bdd.iff(x, y);
                    Ok(Value::Bool(if op == BinOp::Eq { e } else { bdd.not(e) }))
                }
                (Value::Int(pa), Value::Int(pb)) => {
                    let r = int_cmp(bdd, &pa, &pb, |x, y| x == y);
                    Ok(Value::Bool(if op == BinOp::Eq { r } else { bdd.not(r) }))
                }
                _ => Err(ModelError::nowhere(format!(
                    "type mismatch in comparison `{a} {op} {b}`"
                ))),
            },
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => match (va, vb) {
                (Value::Int(pa), Value::Int(pb)) => {
                    let r = match op {
                        BinOp::Lt => int_cmp(bdd, &pa, &pb, |x, y| x < y),
                        BinOp::Le => int_cmp(bdd, &pa, &pb, |x, y| x <= y),
                        BinOp::Gt => int_cmp(bdd, &pa, &pb, |x, y| x > y),
                        _ => int_cmp(bdd, &pa, &pb, |x, y| x >= y),
                    };
                    Ok(Value::Bool(r))
                }
                _ => Err(ModelError::nowhere(format!(
                    "ordering comparison on boolean operand in `{a} {op} {b}`"
                ))),
            },
            BinOp::Add | BinOp::Sub | BinOp::Mod => match (va, vb) {
                (Value::Int(pa), Value::Int(pb)) => {
                    let f: fn(i64, i64) -> Result<i64, ModelError> = match op {
                        BinOp::Add => |x, y| Ok(x + y),
                        BinOp::Sub => |x, y| Ok(x - y),
                        _ => |x, y| {
                            if y <= 0 {
                                Err(ModelError::nowhere(format!(
                                    "`mod` by non-positive constant {y}"
                                )))
                            } else {
                                Ok(x.rem_euclid(y))
                            }
                        },
                    };
                    int_arith(bdd, &pa, &pb, f).map(Value::Int)
                }
                _ => Err(ModelError::nowhere(format!(
                    "arithmetic on boolean operand in `{a} {op} {b}`"
                ))),
            },
        }
    }

    fn eval_case(&mut self, bdd: &mut Bdd, arms: &[(Expr, Expr)]) -> Result<Value, ModelError> {
        // Evaluate guards first; arm i fires when its guard holds and no
        // earlier guard does.
        let mut fire = Vec::with_capacity(arms.len());
        let mut taken = Ref::FALSE;
        for (g, _) in arms {
            let gv = match self.eval(bdd, g)? {
                Value::Bool(r) => r,
                Value::Int(_) => {
                    return Err(ModelError::nowhere(format!(
                        "case guard `{g}` is not boolean"
                    )))
                }
            };
            let nt = bdd.not(taken);
            fire.push(bdd.and(gv, nt));
            taken = bdd.or(taken, gv);
        }
        let covered_all = bdd.implies(self.valid, taken);
        if !covered_all.is_true() {
            return Err(ModelError::nowhere(
                "case expression is not exhaustive (add a `TRUE :` arm)",
            ));
        }
        // Merge arm values.
        let first = self.eval(bdd, &arms[0].1)?;
        match first {
            Value::Bool(_) => {
                let mut acc = Ref::FALSE;
                for ((_, e), &cond) in arms.iter().zip(&fire) {
                    let v = match self.eval(bdd, e)? {
                        Value::Bool(r) => r,
                        Value::Int(_) => {
                            return Err(ModelError::nowhere(
                                "case arms mix boolean and integer values",
                            ))
                        }
                    };
                    let both = bdd.and(cond, v);
                    acc = bdd.or(acc, both);
                }
                Ok(Value::Bool(acc))
            }
            Value::Int(_) => {
                let mut merged: HashMap<i64, Ref> = HashMap::new();
                for ((_, e), &cond) in arms.iter().zip(&fire) {
                    let pairs = match self.eval(bdd, e)? {
                        Value::Int(p) => p,
                        Value::Bool(_) => {
                            return Err(ModelError::nowhere(
                                "case arms mix boolean and integer values",
                            ))
                        }
                    };
                    for (v, c) in pairs {
                        let both = bdd.and(cond, c);
                        if !both.is_false() {
                            let entry = merged.entry(v).or_insert(Ref::FALSE);
                            *entry = bdd.or(*entry, both);
                        }
                    }
                }
                let mut out: Vec<(i64, Ref)> = merged.into_iter().collect();
                out.sort_by_key(|(v, _)| *v);
                Ok(Value::Int(out))
            }
        }
    }
}

/// Pointwise comparison of two partitions.
fn int_cmp(
    bdd: &mut Bdd,
    pa: &[(i64, Ref)],
    pb: &[(i64, Ref)],
    rel: impl Fn(i64, i64) -> bool,
) -> Ref {
    let mut acc = Ref::FALSE;
    for &(va, ca) in pa {
        for &(vb, cb) in pb {
            if rel(va, vb) {
                let both = bdd.and(ca, cb);
                acc = bdd.or(acc, both);
            }
        }
    }
    acc
}

/// Pointwise arithmetic on two partitions.
fn int_arith(
    bdd: &mut Bdd,
    pa: &[(i64, Ref)],
    pb: &[(i64, Ref)],
    f: impl Fn(i64, i64) -> Result<i64, ModelError>,
) -> Result<Vec<(i64, Ref)>, ModelError> {
    let mut merged: HashMap<i64, Ref> = HashMap::new();
    for &(va, ca) in pa {
        for &(vb, cb) in pb {
            let both = bdd.and(ca, cb);
            if both.is_false() {
                continue;
            }
            let v = f(va, vb)?;
            let entry = merged.entry(v).or_insert(Ref::FALSE);
            *entry = bdd.or(*entry, both);
        }
    }
    let mut out: Vec<(i64, Ref)> = merged.into_iter().collect();
    out.sort_by_key(|(v, _)| *v);
    Ok(out)
}

/// The result of compiling a module.
#[derive(Debug)]
pub struct CompiledModel {
    /// The symbolic machine.
    pub fsm: SymbolicFsm,
    /// Parsed SPEC properties.
    pub specs: Vec<covest_ctl::Formula>,
    /// Parsed FAIRNESS constraints (propositional).
    pub fairness: Vec<covest_ctl::PropExpr>,
    /// Observed-signal names from the OBSERVED section.
    pub observed: Vec<String>,
}

/// Compiles a parsed module on the given manager with the default
/// (partitioned) image configuration.
///
/// # Errors
///
/// Returns [`ModelError`] for type errors, non-exhaustive cases, range
/// overflows, unknown names, missing `next()` assignments, or SPEC /
/// FAIRNESS bodies that fail to parse.
pub fn compile_module(bdd: &mut Bdd, module: &Module) -> Result<CompiledModel, ModelError> {
    compile_module_with(bdd, module, ImageConfig::default())
}

/// Compiles a parsed module with an explicit image configuration.
///
/// The compiler emits one transition part per state bit (plus one per
/// validity invariant on free input encodings) and never conjoins them
/// into a monolithic relation itself — the machine's [`ImageEngine`]
/// (see [`covest_fsm::ImageEngine`]) clusters the parts and builds the
/// monolith lazily only when [`covest_fsm::ImageMethod::Monolithic`] is
/// in use.
///
/// # Errors
///
/// See [`compile_module`].
pub fn compile_module_with(
    bdd: &mut Bdd,
    module: &Module,
    image: ImageConfig,
) -> Result<CompiledModel, ModelError> {
    // Duplicate checks + literal table.
    let mut literals: HashMap<String, i64> = HashMap::new();
    let mut seen: HashMap<&str, ()> = HashMap::new();
    for d in &module.vars {
        if seen.insert(&d.name, ()).is_some() {
            return Err(ModelError::nowhere(format!(
                "duplicate variable `{}`",
                d.name
            )));
        }
        if let VarType::Enum(lits) = &d.ty {
            for (i, l) in lits.iter().enumerate() {
                if let Some(&prev) = literals.get(l) {
                    if prev != i as i64 {
                        return Err(ModelError::nowhere(format!(
                            "enumeration literal `{l}` used with conflicting values"
                        )));
                    }
                } else {
                    literals.insert(l.clone(), i as i64);
                }
            }
        }
    }

    let mut builder = FsmBuilder::new("main").with_image_config(image);
    let mut vars: HashMap<String, VarInfo> = HashMap::new();
    for d in &module.vars {
        let (offset, span) = match &d.ty {
            VarType::Boolean => (0, 2),
            VarType::Range(lo, hi) => (*lo, hi - lo + 1),
            VarType::Enum(lits) => (0, lits.len() as i64),
        };
        let nbits = match d.ty {
            VarType::Boolean => 1,
            _ => bits_needed(span),
        };
        let mut bits = Vec::with_capacity(nbits);
        for i in 0..nbits {
            let bit_name = if nbits == 1 && matches!(d.ty, VarType::Boolean) {
                d.name.clone()
            } else {
                format!("{}.{i}", d.name)
            };
            if d.input {
                // Inputs compile to *free* state bits (unconstrained next
                // value), matching original SMV: the input valuation is
                // part of the state, so properties may mention inputs.
                let sb = builder.add_free_bit(bdd, bit_name);
                bits.push(BitHandle::State(sb));
            } else {
                let sb = builder.add_state_bit(bdd, bit_name);
                bits.push(BitHandle::State(sb));
            }
        }
        vars.insert(
            d.name.clone(),
            VarInfo {
                decl: d.clone(),
                bits,
                offset,
                span,
            },
        );
    }

    // Invalid encodings of ranged variables must never occur: exclude
    // them from the initial states, and — because inputs are *free* bits
    // whose next value is otherwise unconstrained — also forbid them in
    // the next-state rank of the transition relation. State variables
    // with exact next-value assignments cannot produce invalid codes.
    let mut invalid_codes = Ref::FALSE;
    for d in &module.vars {
        let info = vars[&d.name].clone();
        let code_count = 1i64 << info.bits.len();
        let mut invalid_cur = Ref::FALSE;
        let mut invalid_next = Ref::FALSE;
        for raw in info.span..code_count {
            let mut cond_cur = Ref::TRUE;
            let mut cond_next = Ref::TRUE;
            for (i, bit) in info.bits.iter().enumerate() {
                let BitHandle::State(sb) = bit;
                let want = (raw >> i) & 1 == 1;
                let bc = bdd.literal(sb.current, want);
                cond_cur = bdd.and(cond_cur, bc);
                let bn = bdd.literal(sb.next, want);
                cond_next = bdd.and(cond_next, bn);
            }
            invalid_cur = bdd.or(invalid_cur, cond_cur);
            invalid_next = bdd.or(invalid_next, cond_next);
        }
        invalid_codes = bdd.or(invalid_codes, invalid_cur);
        if d.input && !invalid_next.is_false() {
            let valid_next = bdd.not(invalid_next);
            builder.add_trans_constraint(valid_next);
        }
    }
    let valid = bdd.not(invalid_codes);

    let mut compiler = Compiler {
        module,
        vars,
        literals,
        define_cache: HashMap::new(),
        define_stack: Vec::new(),
        valid,
    };

    // Register signals for properties: numeric signals for int vars,
    // boolean signals are registered by the builder already (but only
    // bit-level names); add whole-variable signals.
    for d in &module.vars {
        let info = compiler.vars[&d.name].clone();
        match &d.ty {
            VarType::Boolean => {
                let f = info.bits[0].current(bdd);
                builder.add_signal(d.name.clone(), f);
            }
            VarType::Range(lo, _) => {
                let bit_fns: Vec<Ref> = info.bits.iter().map(|b| b.current(bdd)).collect();
                let mut sig = NumericSignal::unsigned(bit_fns);
                sig.offset = *lo;
                builder.add_numeric_signal(d.name.clone(), sig);
            }
            VarType::Enum(lits) => {
                let bit_fns: Vec<Ref> = info.bits.iter().map(|b| b.current(bdd)).collect();
                let mut sig = NumericSignal::unsigned(bit_fns);
                for (i, l) in lits.iter().enumerate() {
                    sig.literals.insert(l.clone(), i as i64);
                }
                builder.add_numeric_signal(d.name.clone(), sig);
            }
        }
    }

    // init(x) constraints.
    let mut init = valid;
    for (name, expr) in &module.inits {
        let info = compiler
            .vars
            .get(name)
            .cloned()
            .ok_or_else(|| ModelError::nowhere(format!("init of unknown variable `{name}`")))?;
        if info.decl.input {
            return Err(ModelError::nowhere(format!(
                "`{name}` is an input; inputs cannot be assigned"
            )));
        }
        let v = compiler.eval(bdd, expr)?;
        let constraint = assign_constraint(bdd, &mut compiler, name, &info, &v, false)?;
        init = bdd.and(init, constraint);
    }
    builder.set_init(init);

    // next(x) assignments.
    for (name, expr) in &module.nexts {
        let info = compiler
            .vars
            .get(name)
            .cloned()
            .ok_or_else(|| ModelError::nowhere(format!("next of unknown variable `{name}`")))?;
        if info.decl.input {
            return Err(ModelError::nowhere(format!(
                "`{name}` is an input; inputs cannot be assigned"
            )));
        }
        let v = compiler.eval(bdd, expr)?;
        set_next_bits(bdd, &mut builder, &mut compiler, name, &info, &v)?;
    }

    // Every state variable must have a next() assignment.
    for d in &module.vars {
        if !d.input && !module.nexts.iter().any(|(n, _)| n == &d.name) {
            return Err(ModelError::nowhere(format!(
                "state variable `{}` has no next() assignment",
                d.name
            )));
        }
    }

    // DEFINEs become named signals.
    for (name, expr) in &module.defines {
        match compiler.eval(bdd, &Expr::Name(name.clone()))? {
            Value::Bool(r) => {
                builder.add_signal(name.clone(), r);
            }
            Value::Int(pairs) => {
                let min = pairs.iter().map(|(v, _)| *v).min().unwrap_or(0);
                let max = pairs.iter().map(|(v, _)| *v).max().unwrap_or(0);
                let width = bits_needed(max - min + 1);
                let mut bit_fns = vec![Ref::FALSE; width];
                for &(v, c) in &pairs {
                    let raw = v - min;
                    for (i, bit) in bit_fns.iter_mut().enumerate() {
                        if (raw >> i) & 1 == 1 {
                            *bit = bdd.or(*bit, c);
                        }
                    }
                }
                let mut sig = NumericSignal::unsigned(bit_fns);
                sig.offset = min;
                builder.add_numeric_signal(name.clone(), sig);
            }
        }
        let _ = expr;
    }

    let fsm = builder
        .build(bdd)
        .map_err(|e| ModelError::nowhere(e.to_string()))?;

    // Parse SPEC and FAIRNESS bodies.
    let mut specs = Vec::with_capacity(module.specs.len());
    for s in &module.specs {
        let f = covest_ctl::parse_formula(s)
            .map_err(|e| ModelError::nowhere(format!("SPEC `{s}`: {e}")))?;
        specs.push(f);
    }
    let mut fairness = Vec::with_capacity(module.fairness.len());
    for s in &module.fairness {
        let ast = covest_ctl::parse_ast(s)
            .map_err(|e| ModelError::nowhere(format!("FAIRNESS `{s}`: {e}")))?;
        match covest_ctl::classify(&ast) {
            Ok(covest_ctl::Formula::Prop(p)) => fairness.push(p),
            _ => {
                return Err(ModelError::nowhere(format!(
                    "FAIRNESS `{s}` must be propositional"
                )))
            }
        }
    }

    // Validate observed names.
    for o in &module.observed {
        if !fsm.signals().contains(o) {
            return Err(ModelError::nowhere(format!(
                "OBSERVED signal `{o}` is not defined"
            )));
        }
    }

    // Model elaboration can balloon the table on a bad declaration order;
    // give auto-reordering a safe point before the model is handed out.
    // The checkpoint collects against this model's refs plus anything the
    // caller registered with `Bdd::protect` — callers holding other
    // handles on a shared manager (e.g. a previously compiled model) must
    // protect them when compiling in auto-reorder mode.
    bdd.maybe_reduce_heap(&fsm.protected_refs());

    Ok(CompiledModel {
        fsm,
        specs,
        fairness,
        observed: module.observed.clone(),
    })
}

/// Builds the predicate `var == value` (for init) or installs next-state
/// bit functions (for next); shared range checking.
fn assign_constraint(
    bdd: &mut Bdd,
    _compiler: &mut Compiler<'_>,
    name: &str,
    info: &VarInfo,
    v: &Value,
    _next: bool,
) -> Result<Ref, ModelError> {
    match (&info.decl.ty, v) {
        (VarType::Boolean, Value::Bool(r)) => {
            let cur = info.bits[0].current(bdd);
            Ok(bdd.iff(cur, *r))
        }
        (VarType::Boolean, Value::Int(_)) => Err(ModelError::nowhere(format!(
            "integer assigned to boolean `{name}`"
        ))),
        (_, Value::Bool(_)) => Err(ModelError::nowhere(format!(
            "boolean assigned to integer `{name}`"
        ))),
        (_, Value::Int(pairs)) => {
            check_range(bdd, _compiler.valid, name, info, pairs)?;
            let mut acc = Ref::FALSE;
            for &(val, cond) in pairs {
                let raw = val - info.offset;
                let mut eq = Ref::TRUE;
                for (i, bit) in info.bits.iter().enumerate() {
                    let b = bit.current(bdd);
                    let want = (raw >> i) & 1 == 1;
                    let lit = if want { b } else { bdd.not(b) };
                    eq = bdd.and(eq, lit);
                }
                let both = bdd.and(cond, eq);
                acc = bdd.or(acc, both);
            }
            Ok(acc)
        }
    }
}

fn set_next_bits(
    bdd: &mut Bdd,
    builder: &mut FsmBuilder,
    _compiler: &mut Compiler<'_>,
    name: &str,
    info: &VarInfo,
    v: &Value,
) -> Result<(), ModelError> {
    match (&info.decl.ty, v) {
        (VarType::Boolean, Value::Bool(r)) => {
            builder.set_next(bdd, name, *r);
            Ok(())
        }
        (VarType::Boolean, Value::Int(_)) => Err(ModelError::nowhere(format!(
            "integer assigned to boolean `{name}`"
        ))),
        (_, Value::Bool(_)) => Err(ModelError::nowhere(format!(
            "boolean assigned to integer `{name}`"
        ))),
        (_, Value::Int(pairs)) => {
            check_range(bdd, _compiler.valid, name, info, pairs)?;
            let width = info.bits.len();
            let mut bit_fns = vec![Ref::FALSE; width];
            for &(val, cond) in pairs {
                let raw = val - info.offset;
                for (i, bit) in bit_fns.iter_mut().enumerate() {
                    if (raw >> i) & 1 == 1 {
                        *bit = bdd.or(*bit, cond);
                    }
                }
            }
            for (i, f) in bit_fns.into_iter().enumerate() {
                builder.set_next(bdd, &format!("{name}.{i}"), f);
            }
            Ok(())
        }
    }
}

fn check_range(
    bdd: &mut Bdd,
    valid: Ref,
    name: &str,
    info: &VarInfo,
    pairs: &[(i64, Ref)],
) -> Result<(), ModelError> {
    for &(val, cond) in pairs {
        let possible = bdd.and(cond, valid);
        if (val < info.offset || val >= info.offset + info.span) && !possible.is_false() {
            return Err(ModelError::nowhere(format!(
                "assignment to `{name}` can produce out-of-range value {val} \
                 (range {}..{})",
                info.offset,
                info.offset + info.span - 1
            )));
        }
    }
    Ok(())
}
