//! # covest-smv
//!
//! An SMV-dialect modeling language for the `covest` workspace. The
//! DAC'99 coverage estimator was "implemented on top of SMV"; this crate
//! lets models and property suites be written the way the paper's users
//! wrote them, then compiles them to [`covest_fsm::SymbolicFsm`] machines
//! by bit-blasting.
//!
//! Supported deck sections:
//!
//! - `MODULE main` (optional header)
//! - `VAR x : boolean; y : 0..7; z : {idle, busy};` — state variables
//! - `IVAR i : boolean;` — primary inputs
//! - `ASSIGN init(x) := …; next(x) := case … esac;` — deterministic
//!   next-state functions with exhaustive `case` expressions
//! - `DEFINE full := count = 7;` — macros, exported as named signals
//! - `SPEC <ACTL property>;` — properties in the acceptable subset
//! - `FAIRNESS <proposition>;` — fairness constraints (Section 4.3)
//! - `OBSERVED count, full;` — observed signals for coverage (extension)
//!
//! # Example
//!
//! ```
//! use covest_bdd::BddManager;
//! use covest_smv::compile;
//!
//! let deck = r#"
//! MODULE main
//! VAR count : 0..4;
//! IVAR stall : boolean;
//! ASSIGN
//!   init(count) := 0;
//!   next(count) := case
//!     stall : count;
//!     count < 4 : count + 1;
//!     TRUE : 0;
//!   esac;
//! SPEC AG (!stall & count < 4 -> AX count = count);
//! OBSERVED count;
//! "#;
//! let mgr = BddManager::new();
//! let model = compile(&mgr, deck)?;
//! assert_eq!(model.specs.len(), 1);
//! assert!(model.fsm.is_total());
//! # Ok::<(), covest_smv::ModelError>(())
//! ```

mod ast;
mod compile;
mod error;
mod lex;
mod parse;

pub use ast::{Assign, BinOp, Define, Expr, Module, ObservedDecl, SpecDecl, VarDecl, VarType};
pub use compile::{
    compile_module, compile_module_with, decl_bit_names, decl_bit_width, CompiledModel,
};
pub use error::ModelError;
pub use lex::{lex, TokKind, Token};
pub use parse::parse_module;

// Re-exported so downstream consumers (e.g. the CLI) can pick the image
// method without depending on covest-fsm directly.
pub use covest_fsm::{ImageConfig, ImageMethod, SimplifyConfig};

use covest_bdd::BddManager;

/// Parses and compiles a model deck in one step with the default
/// (partitioned) image configuration.
///
/// # Errors
///
/// Returns [`ModelError`] for lexical, syntactic, type, or range errors.
pub fn compile(bdd: &BddManager, src: &str) -> Result<CompiledModel, ModelError> {
    let module = parse_module(src)?;
    compile_module(bdd, &module)
}

/// Parses and compiles a model deck with an explicit image configuration.
///
/// # Errors
///
/// See [`compile`].
pub fn compile_with(
    bdd: &BddManager,
    src: &str,
    image: ImageConfig,
) -> Result<CompiledModel, ModelError> {
    let module = parse_module(src)?;
    compile_module_with(bdd, &module, image)
}
