//! Parser for the modeling language.

use crate::ast::{Assign, BinOp, Define, Expr, Module, ObservedDecl, SpecDecl, VarDecl, VarType};
use crate::error::ModelError;
use crate::lex::{lex, TokKind, Token};

const SECTIONS: &[&str] = &[
    "MODULE", "VAR", "IVAR", "ASSIGN", "DEFINE", "SPEC", "FAIRNESS", "OBSERVED",
];

struct Parser {
    toks: Vec<Token>,
    idx: usize,
}

impl Parser {
    fn peek(&self) -> &TokKind {
        &self.toks[self.idx].kind
    }

    fn peek_tok(&self) -> &Token {
        &self.toks[self.idx]
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.idx].clone();
        if self.idx < self.toks.len() - 1 {
            self.idx += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> ModelError {
        let t = self.peek_tok();
        ModelError::new(t.line, t.column, message)
    }

    fn expect(&mut self, kind: &TokKind, what: &str) -> Result<(), ModelError> {
        if self.peek() == kind {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {what}")))
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, ModelError> {
        match self.peek().clone() {
            TokKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            _ => Err(self.err(format!("expected {what}"))),
        }
    }

    fn at_section(&self) -> bool {
        matches!(self.peek(), TokKind::Ident(s) if SECTIONS.contains(&s.as_str()))
            || matches!(self.peek(), TokKind::Eof)
    }

    fn parse_module(&mut self) -> Result<Module, ModelError> {
        let mut m = Module::default();
        // Optional MODULE header.
        if matches!(self.peek(), TokKind::Ident(s) if s == "MODULE") {
            self.bump();
            let name = self.expect_ident("module name")?;
            if name != "main" {
                return Err(self.err("only `MODULE main` is supported"));
            }
        }
        loop {
            match self.peek().clone() {
                TokKind::Eof => break,
                TokKind::Ident(sec) if sec == "VAR" || sec == "IVAR" => {
                    self.bump();
                    let input = sec == "IVAR";
                    while !self.at_section() {
                        let decl = self.parse_var_decl(input)?;
                        m.vars.push(decl);
                    }
                }
                TokKind::Ident(sec) if sec == "ASSIGN" => {
                    self.bump();
                    while !self.at_section() {
                        self.parse_assign(&mut m)?;
                    }
                }
                TokKind::Ident(sec) if sec == "DEFINE" => {
                    self.bump();
                    while !self.at_section() {
                        let line = self.peek_tok().line;
                        let name = self.expect_ident("DEFINE name")?;
                        self.expect(&TokKind::Assign, "`:=`")?;
                        let expr = self.parse_expr()?;
                        self.expect(&TokKind::Semi, "`;`")?;
                        m.defines.push(Define { name, expr, line });
                    }
                }
                TokKind::Ident(sec) if sec == "SPEC" => {
                    let line = self.peek_tok().line;
                    self.bump();
                    let text = self.capture_until_semi()?;
                    m.specs.push(SpecDecl { text, line });
                }
                TokKind::Ident(sec) if sec == "FAIRNESS" => {
                    let line = self.peek_tok().line;
                    self.bump();
                    let text = self.capture_until_semi()?;
                    m.fairness.push(SpecDecl { text, line });
                }
                TokKind::Ident(sec) if sec == "OBSERVED" => {
                    self.bump();
                    loop {
                        let line = self.peek_tok().line;
                        let name = self.expect_ident("signal name")?;
                        m.observed.push(ObservedDecl { name, line });
                        if self.peek() == &TokKind::Comma {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.expect(&TokKind::Semi, "`;`")?;
                }
                _ => return Err(self.err("expected a section keyword")),
            }
        }
        Ok(m)
    }

    fn parse_var_decl(&mut self, input: bool) -> Result<VarDecl, ModelError> {
        let line = self.peek_tok().line;
        let name = self.expect_ident("variable name")?;
        self.expect(&TokKind::Colon, "`:`")?;
        let ty = match self.peek().clone() {
            TokKind::Ident(s) if s == "boolean" => {
                self.bump();
                VarType::Boolean
            }
            TokKind::Int(lo) => {
                self.bump();
                self.expect(&TokKind::DotDot, "`..`")?;
                let hi = match self.bump().kind {
                    TokKind::Int(h) => h,
                    _ => return Err(self.err("expected range upper bound")),
                };
                if hi < lo {
                    return Err(self.err(format!("empty range {lo}..{hi}")));
                }
                VarType::Range(lo, hi)
            }
            TokKind::Minus => {
                self.bump();
                let lo = match self.bump().kind {
                    TokKind::Int(l) => -l,
                    _ => return Err(self.err("expected range lower bound")),
                };
                self.expect(&TokKind::DotDot, "`..`")?;
                let neg = if self.peek() == &TokKind::Minus {
                    self.bump();
                    true
                } else {
                    false
                };
                let hi = match self.bump().kind {
                    TokKind::Int(h) => {
                        if neg {
                            -h
                        } else {
                            h
                        }
                    }
                    _ => return Err(self.err("expected range upper bound")),
                };
                if hi < lo {
                    return Err(self.err(format!("empty range {lo}..{hi}")));
                }
                VarType::Range(lo, hi)
            }
            TokKind::LBrace => {
                self.bump();
                let mut lits = Vec::new();
                loop {
                    lits.push(self.expect_ident("enumeration literal")?);
                    match self.bump().kind {
                        TokKind::Comma => continue,
                        TokKind::RBrace => break,
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
                VarType::Enum(lits)
            }
            _ => return Err(self.err("expected a type")),
        };
        self.expect(&TokKind::Semi, "`;`")?;
        Ok(VarDecl {
            name,
            ty,
            input,
            line,
        })
    }

    fn parse_assign(&mut self, m: &mut Module) -> Result<(), ModelError> {
        let line = self.peek_tok().line;
        let kw = self.expect_ident("`init` or `next`")?;
        if kw != "init" && kw != "next" {
            return Err(self.err("expected `init(...)` or `next(...)`"));
        }
        self.expect(&TokKind::LParen, "`(`")?;
        let name = self.expect_ident("variable name")?;
        self.expect(&TokKind::RParen, "`)`")?;
        self.expect(&TokKind::Assign, "`:=`")?;
        let expr = self.parse_expr()?;
        self.expect(&TokKind::Semi, "`;`")?;
        let assign = Assign { name, expr, line };
        if kw == "init" {
            m.inits.push(assign);
        } else {
            m.nexts.push(assign);
        }
        Ok(())
    }

    /// Re-serializes tokens up to the terminating `;` (for SPEC/FAIRNESS
    /// bodies handed to the CTL parser).
    fn capture_until_semi(&mut self) -> Result<String, ModelError> {
        let mut parts = Vec::new();
        loop {
            match self.peek().clone() {
                TokKind::Semi => {
                    self.bump();
                    break;
                }
                TokKind::Eof => return Err(self.err("unterminated SPEC/FAIRNESS (missing `;`)")),
                kind => {
                    self.bump();
                    parts.push(tok_text(&kind));
                }
            }
        }
        if parts.is_empty() {
            return Err(self.err("empty SPEC/FAIRNESS body"));
        }
        Ok(parts.join(" "))
    }

    // Expression grammar, loosest binding first.
    fn parse_expr(&mut self) -> Result<Expr, ModelError> {
        self.parse_iff()
    }

    fn parse_iff(&mut self) -> Result<Expr, ModelError> {
        let mut lhs = self.parse_implies()?;
        while self.peek() == &TokKind::DArrow {
            self.bump();
            let rhs = self.parse_implies()?;
            lhs = Expr::bin(BinOp::Iff, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_implies(&mut self) -> Result<Expr, ModelError> {
        let lhs = self.parse_or()?;
        if self.peek() == &TokKind::Arrow {
            self.bump();
            let rhs = self.parse_implies()?;
            Ok(Expr::bin(BinOp::Implies, lhs, rhs))
        } else {
            Ok(lhs)
        }
    }

    fn parse_or(&mut self) -> Result<Expr, ModelError> {
        let mut lhs = self.parse_and()?;
        loop {
            match self.peek().clone() {
                TokKind::Pipe => {
                    self.bump();
                    let rhs = self.parse_and()?;
                    lhs = Expr::bin(BinOp::Or, lhs, rhs);
                }
                TokKind::Ident(s) if s == "xor" => {
                    self.bump();
                    let rhs = self.parse_and()?;
                    lhs = Expr::bin(BinOp::Xor, lhs, rhs);
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn parse_and(&mut self) -> Result<Expr, ModelError> {
        let mut lhs = self.parse_cmp()?;
        while self.peek() == &TokKind::Amp {
            self.bump();
            let rhs = self.parse_cmp()?;
            lhs = Expr::bin(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_cmp(&mut self) -> Result<Expr, ModelError> {
        let lhs = self.parse_sum()?;
        let op = match self.peek() {
            TokKind::Eq => Some(BinOp::Eq),
            TokKind::Ne => Some(BinOp::Ne),
            TokKind::Lt => Some(BinOp::Lt),
            TokKind::Le => Some(BinOp::Le),
            TokKind::Gt => Some(BinOp::Gt),
            TokKind::Ge => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.parse_sum()?;
            Ok(Expr::bin(op, lhs, rhs))
        } else {
            Ok(lhs)
        }
    }

    fn parse_sum(&mut self) -> Result<Expr, ModelError> {
        let mut lhs = self.parse_term()?;
        loop {
            match self.peek() {
                TokKind::Plus => {
                    self.bump();
                    let rhs = self.parse_term()?;
                    lhs = Expr::bin(BinOp::Add, lhs, rhs);
                }
                TokKind::Minus => {
                    self.bump();
                    let rhs = self.parse_term()?;
                    lhs = Expr::bin(BinOp::Sub, lhs, rhs);
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn parse_term(&mut self) -> Result<Expr, ModelError> {
        let mut lhs = self.parse_unary()?;
        while matches!(self.peek(), TokKind::Ident(s) if s == "mod") {
            self.bump();
            let rhs = self.parse_unary()?;
            lhs = Expr::bin(BinOp::Mod, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, ModelError> {
        match self.peek().clone() {
            TokKind::Bang => {
                self.bump();
                let e = self.parse_unary()?;
                Ok(e.not())
            }
            TokKind::Minus => {
                self.bump();
                match self.bump().kind {
                    TokKind::Int(v) => Ok(Expr::Int(-v)),
                    _ => Err(self.err("expected integer after unary `-`")),
                }
            }
            _ => self.parse_primary(),
        }
    }

    fn parse_primary(&mut self) -> Result<Expr, ModelError> {
        match self.peek().clone() {
            TokKind::LParen => {
                self.bump();
                let e = self.parse_expr()?;
                self.expect(&TokKind::RParen, "`)`")?;
                Ok(e)
            }
            TokKind::Int(v) => {
                self.bump();
                Ok(Expr::Int(v))
            }
            TokKind::Ident(s) if s == "TRUE" => {
                self.bump();
                Ok(Expr::Bool(true))
            }
            TokKind::Ident(s) if s == "FALSE" => {
                self.bump();
                Ok(Expr::Bool(false))
            }
            TokKind::Ident(s) if s == "case" => {
                self.bump();
                let mut arms = Vec::new();
                loop {
                    if matches!(self.peek(), TokKind::Ident(e) if e == "esac") {
                        self.bump();
                        break;
                    }
                    let guard = self.parse_expr()?;
                    self.expect(&TokKind::Colon, "`:`")?;
                    let value = self.parse_expr()?;
                    self.expect(&TokKind::Semi, "`;`")?;
                    arms.push((guard, value));
                }
                if arms.is_empty() {
                    return Err(self.err("empty case expression"));
                }
                Ok(Expr::Case(arms))
            }
            TokKind::Ident(s) => {
                self.bump();
                Ok(Expr::Name(s))
            }
            _ => Err(self.err("expected an expression")),
        }
    }
}

fn tok_text(kind: &TokKind) -> String {
    match kind {
        TokKind::Ident(s) => s.clone(),
        TokKind::Int(v) => v.to_string(),
        TokKind::LParen => "(".into(),
        TokKind::RParen => ")".into(),
        TokKind::LBrace => "{".into(),
        TokKind::RBrace => "}".into(),
        TokKind::LBracket => "[".into(),
        TokKind::RBracket => "]".into(),
        TokKind::Colon => ":".into(),
        TokKind::Semi => ";".into(),
        TokKind::Comma => ",".into(),
        TokKind::DotDot => "..".into(),
        TokKind::Assign => ":=".into(),
        TokKind::Bang => "!".into(),
        TokKind::Amp => "&".into(),
        TokKind::Pipe => "|".into(),
        TokKind::Arrow => "->".into(),
        TokKind::DArrow => "<->".into(),
        TokKind::Eq => "=".into(),
        TokKind::Ne => "!=".into(),
        TokKind::Lt => "<".into(),
        TokKind::Le => "<=".into(),
        TokKind::Gt => ">".into(),
        TokKind::Ge => ">=".into(),
        TokKind::Plus => "+".into(),
        TokKind::Minus => "-".into(),
        TokKind::Eof => String::new(),
    }
}

/// Parses a model deck into a [`Module`].
///
/// # Errors
///
/// Returns [`ModelError`] with a source position on malformed input.
pub fn parse_module(src: &str) -> Result<Module, ModelError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, idx: 0 };
    p.parse_module()
}

#[cfg(test)]
mod tests {
    use super::*;

    const DECK: &str = r#"
MODULE main
VAR
  x : boolean;
  count : 0..7;
  state : {idle, busy, done};
IVAR
  stall : boolean;
ASSIGN
  init(x) := FALSE;
  next(x) := !x;
  init(count) := 0;
  next(count) := case
    stall : count;
    count < 7 : count + 1;
    TRUE : 0;
  esac;
DEFINE
  full := count = 7;
SPEC AG (stall -> AX x);
FAIRNESS !stall;
OBSERVED count, x;
"#;

    #[test]
    fn parses_full_deck() {
        let m = parse_module(DECK).expect("parses");
        assert_eq!(m.vars.len(), 4);
        assert_eq!(m.vars[1].ty, VarType::Range(0, 7));
        assert!(matches!(m.vars[2].ty, VarType::Enum(ref l) if l.len() == 3));
        assert!(m.vars[3].input);
        assert_eq!(m.inits.len(), 2);
        assert_eq!(m.nexts.len(), 2);
        assert_eq!(m.defines.len(), 1);
        assert_eq!(m.specs.len(), 1);
        assert_eq!(m.specs[0].text, "AG ( stall -> AX x )");
        assert_eq!(m.fairness.len(), 1);
        assert_eq!(m.fairness[0].text, "! stall");
        let observed: Vec<&str> = m.observed.iter().map(|o| o.name.as_str()).collect();
        assert_eq!(observed, vec!["count", "x"]);
    }

    #[test]
    fn declarations_carry_source_lines() {
        let m = parse_module(DECK).expect("parses");
        assert_eq!(m.vars[0].line, 4); // `x : boolean;`
        assert_eq!(m.vars[3].line, 8); // `stall : boolean;` under IVAR
        assert_eq!(m.inits[0].line, 10);
        assert_eq!(m.nexts[1].line, 13);
        assert_eq!(m.defines[0].line, 19);
        assert_eq!(m.specs[0].line, 20);
        assert_eq!(m.fairness[0].line, 21);
        assert_eq!(m.observed[0].line, 22);
    }

    #[test]
    fn case_expression_parses() {
        let m = parse_module(DECK).expect("parses");
        let next_count = &m.nexts[1].expr;
        match next_count {
            Expr::Case(arms) => assert_eq!(arms.len(), 3),
            other => panic!("expected case, got {other}"),
        }
    }

    #[test]
    fn spec_text_reparses_with_ctl_parser() {
        let m = parse_module(DECK).expect("parses");
        let f = covest_ctl::parse_formula(&m.specs[0].text).expect("ctl parses");
        assert_eq!(f.to_string(), "AG (stall -> AX x)");
    }

    #[test]
    fn negative_ranges() {
        let m = parse_module("VAR t : -2..3;").expect("parses");
        assert_eq!(m.vars[0].ty, VarType::Range(-2, 3));
    }

    #[test]
    fn errors_carry_positions() {
        let e = parse_module("VAR x boolean;").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("expected `:`"), "{e}");
        assert!(parse_module("ASSIGN foo(x) := 1;").is_err());
        assert!(parse_module("VAR x : 5..2;").is_err());
        assert!(parse_module("SPEC AG x").is_err()); // missing semicolon
        assert!(parse_module("MODULE other VAR x : boolean;").is_err());
    }

    #[test]
    fn operator_precedence() {
        let m = parse_module("DEFINE d := a + 1 < b & c;").expect("parses");
        let e = &m.defines[0].expr;
        // Parses as ((a+1) < b) & c.
        assert_eq!(e.to_string(), "(((a + 1) < b) & c)");
    }
}
