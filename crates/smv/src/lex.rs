//! Lexer for the modeling language.

use crate::error::ModelError;

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind/payload.
    pub kind: TokKind,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub column: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokKind {
    Ident(String),
    Int(i64),
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Colon,
    Semi,
    Comma,
    DotDot,
    Assign, // :=
    Bang,
    Amp,
    Pipe,
    Arrow,  // ->
    DArrow, // <->
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Plus,
    Minus,
    Eof,
}

/// Tokenizes a deck. `--` starts a comment to end of line.
pub fn lex(src: &str) -> Result<Vec<Token>, ModelError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut col = 1usize;
    macro_rules! push {
        ($kind:expr, $len:expr) => {{
            out.push(Token {
                kind: $kind,
                line,
                column: col,
            });
            i += $len;
            col += $len;
        }};
    }
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            c if c.is_ascii_whitespace() => {
                i += 1;
                col += 1;
            }
            b'-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'(' => push!(TokKind::LParen, 1),
            b')' => push!(TokKind::RParen, 1),
            b'{' => push!(TokKind::LBrace, 1),
            b'}' => push!(TokKind::RBrace, 1),
            b'[' => push!(TokKind::LBracket, 1),
            b']' => push!(TokKind::RBracket, 1),
            b';' => push!(TokKind::Semi, 1),
            b',' => push!(TokKind::Comma, 1),
            b'+' => push!(TokKind::Plus, 1),
            b'&' => push!(TokKind::Amp, 1),
            b'|' => push!(TokKind::Pipe, 1),
            b'=' => push!(TokKind::Eq, 1),
            b':' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push!(TokKind::Assign, 2)
                } else {
                    push!(TokKind::Colon, 1)
                }
            }
            b'.' => {
                if bytes.get(i + 1) == Some(&b'.') {
                    push!(TokKind::DotDot, 2)
                } else {
                    return Err(ModelError::new(line, col, "unexpected '.'"));
                }
            }
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push!(TokKind::Ne, 2)
                } else {
                    push!(TokKind::Bang, 1)
                }
            }
            b'<' => match bytes.get(i + 1) {
                Some(b'=') => push!(TokKind::Le, 2),
                Some(b'-') if bytes.get(i + 2) == Some(&b'>') => push!(TokKind::DArrow, 3),
                _ => push!(TokKind::Lt, 1),
            },
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push!(TokKind::Ge, 2)
                } else {
                    push!(TokKind::Gt, 1)
                }
            }
            b'-' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    push!(TokKind::Arrow, 2)
                } else {
                    push!(TokKind::Minus, 1)
                }
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &src[start..i];
                let v: i64 = text.parse().map_err(|_| {
                    ModelError::new(line, col, format!("integer `{text}` out of range"))
                })?;
                out.push(Token {
                    kind: TokKind::Int(v),
                    line,
                    column: col,
                });
                col += i - start;
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'.')
                {
                    // Stop before `..` (range syntax), which also uses dots.
                    if bytes[i] == b'.' && bytes.get(i + 1) == Some(&b'.') {
                        break;
                    }
                    i += 1;
                }
                let text = src[start..i].to_owned();
                out.push(Token {
                    kind: TokKind::Ident(text),
                    line,
                    column: col,
                });
                col += i - start;
            }
            other => {
                return Err(ModelError::new(
                    line,
                    col,
                    format!("unexpected character {:?}", other as char),
                ))
            }
        }
    }
    out.push(Token {
        kind: TokKind::Eof,
        line,
        column: col,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        lex(src).expect(src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_declarations() {
        let ks = kinds("VAR x : 0..7;");
        assert_eq!(
            ks,
            vec![
                TokKind::Ident("VAR".into()),
                TokKind::Ident("x".into()),
                TokKind::Colon,
                TokKind::Int(0),
                TokKind::DotDot,
                TokKind::Int(7),
                TokKind::Semi,
                TokKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_assignment_and_operators() {
        let ks = kinds("next(x) := !a & b -> c <-> d != 2;");
        assert!(ks.contains(&TokKind::Assign));
        assert!(ks.contains(&TokKind::Bang));
        assert!(ks.contains(&TokKind::Arrow));
        assert!(ks.contains(&TokKind::DArrow));
        assert!(ks.contains(&TokKind::Ne));
    }

    #[test]
    fn comments_are_skipped() {
        let ks = kinds("a -- the rest is gone ; := x\nb");
        assert_eq!(
            ks,
            vec![
                TokKind::Ident("a".into()),
                TokKind::Ident("b".into()),
                TokKind::Eof
            ]
        );
    }

    #[test]
    fn positions_are_tracked() {
        let toks = lex("x\n  y").expect("lexes");
        assert_eq!((toks[0].line, toks[0].column), (1, 1));
        assert_eq!((toks[1].line, toks[1].column), (2, 3));
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("a $ b").is_err());
        assert!(lex("a . b").is_err());
    }
}
