//! Abstract syntax of the `covest` modeling language (an SMV dialect).

use std::fmt;

/// A declared variable type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VarType {
    /// `boolean`
    Boolean,
    /// `lo..hi` (inclusive integer range)
    Range(i64, i64),
    /// `{lit0, lit1, …}` enumeration
    Enum(Vec<String>),
}

impl fmt::Display for VarType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VarType::Boolean => f.write_str("boolean"),
            VarType::Range(lo, hi) => write!(f, "{lo}..{hi}"),
            VarType::Enum(lits) => {
                f.write_str("{")?;
                for (i, l) in lits.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    f.write_str(l)?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Binary operators of the expression language.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `&`
    And,
    /// `|`
    Or,
    /// `->`
    Implies,
    /// `<->`
    Iff,
    /// `xor`
    Xor,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `mod`
    Mod,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::And => "&",
            BinOp::Or => "|",
            BinOp::Implies => "->",
            BinOp::Iff => "<->",
            BinOp::Xor => "xor",
            BinOp::Eq => "=",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mod => "mod",
        };
        f.write_str(s)
    }
}

/// An expression of the modeling language.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// `TRUE` / `FALSE`
    Bool(bool),
    /// Integer literal.
    Int(i64),
    /// Variable, DEFINE, or enumeration literal (resolved by the type
    /// checker).
    Name(String),
    /// `!e`
    Not(Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// `case g1 : e1; …; esac` — first true guard wins.
    Case(Vec<(Expr, Expr)>),
}

impl Expr {
    /// `!self` (consuming constructor).
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        Expr::Not(Box::new(self))
    }

    /// Binary-op constructor.
    pub fn bin(op: BinOp, a: Expr, b: Expr) -> Self {
        Expr::Bin(op, Box::new(a), Box::new(b))
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Bool(true) => f.write_str("TRUE"),
            Expr::Bool(false) => f.write_str("FALSE"),
            Expr::Int(i) => write!(f, "{i}"),
            Expr::Name(n) => f.write_str(n),
            Expr::Not(e) => write!(f, "!({e})"),
            Expr::Bin(op, a, b) => write!(f, "({a} {op} {b})"),
            Expr::Case(arms) => {
                f.write_str("case ")?;
                for (g, e) in arms {
                    write!(f, "{g} : {e}; ")?;
                }
                f.write_str("esac")
            }
        }
    }
}

/// One variable declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarDecl {
    /// Variable name.
    pub name: String,
    /// Declared type.
    pub ty: VarType,
    /// `true` for `IVAR` (primary input), `false` for `VAR` (state).
    pub input: bool,
    /// 1-based source line of the declaration (0 when synthesized).
    pub line: usize,
}

/// One `init(x) := e` or `next(x) := e` assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assign {
    /// Assigned variable name.
    pub name: String,
    /// Right-hand side.
    pub expr: Expr,
    /// 1-based source line of the assignment (0 when synthesized).
    pub line: usize,
}

/// One `DEFINE name := e` macro.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Define {
    /// Macro name.
    pub name: String,
    /// Body expression.
    pub expr: Expr,
    /// 1-based source line of the definition (0 when synthesized).
    pub line: usize,
}

/// One `SPEC` or `FAIRNESS` declaration: the body is kept as re-serialized
/// token text and parsed downstream by the CTL parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecDecl {
    /// Re-serialized body text.
    pub text: String,
    /// 1-based source line of the declaration (0 when synthesized).
    pub line: usize,
}

/// One name from an `OBSERVED` list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObservedDecl {
    /// Observed-signal name.
    pub name: String,
    /// 1-based source line of the name (0 when synthesized).
    pub line: usize,
}

/// A parsed module (we support a single `MODULE main`).
#[derive(Debug, Clone, Default)]
pub struct Module {
    /// Declared variables, in order.
    pub vars: Vec<VarDecl>,
    /// `init(x) := e` assignments.
    pub inits: Vec<Assign>,
    /// `next(x) := e` assignments.
    pub nexts: Vec<Assign>,
    /// `DEFINE name := e` macros, in order.
    pub defines: Vec<Define>,
    /// `SPEC <actl>` properties (raw text, parsed downstream).
    pub specs: Vec<SpecDecl>,
    /// `FAIRNESS <prop>` constraints (raw text).
    pub fairness: Vec<SpecDecl>,
    /// `OBSERVED a, b` observed-signal names.
    pub observed: Vec<ObservedDecl>,
}

impl Module {
    /// The declaration of `name`, if it is a variable.
    pub fn var(&self, name: &str) -> Option<&VarDecl> {
        self.vars.iter().find(|d| d.name == name)
    }

    /// The `DEFINE` binding of `name`, if there is one.
    pub fn define(&self, name: &str) -> Option<&Define> {
        self.defines.iter().find(|d| d.name == name)
    }
}
