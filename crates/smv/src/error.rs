//! Errors for parsing and compiling model decks.

use std::error::Error;
use std::fmt;

/// Error with a line/column position in the source deck.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelError {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub column: usize,
    /// What went wrong.
    pub message: String,
}

impl ModelError {
    pub(crate) fn new(line: usize, column: usize, message: impl Into<String>) -> Self {
        ModelError {
            line,
            column,
            message: message.into(),
        }
    }

    pub(crate) fn nowhere(message: impl Into<String>) -> Self {
        ModelError {
            line: 0,
            column: 0,
            message: message.into(),
        }
    }
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "model error: {}", self.message)
        } else {
            write!(
                f,
                "model error at {}:{}: {}",
                self.line, self.column, self.message
            )
        }
    }
}

impl Error for ModelError {}
