//! Property-based round-trip: any acceptable-subset formula printed via
//! `Display` must re-parse to an equal formula.

use covest_ctl::{parse_formula, CmpOp, Formula, PropExpr};
use proptest::prelude::*;

fn arb_prop() -> impl Strategy<Value = PropExpr> {
    let leaf = prop_oneof![
        Just(PropExpr::Const(true)),
        Just(PropExpr::Const(false)),
        "[a-z][a-z0-9_]{0,6}".prop_map(PropExpr::atom),
        (
            "[a-z][a-z0-9_]{0,6}",
            -8i64..8,
            prop_oneof![
                Just(CmpOp::Eq),
                Just(CmpOp::Ne),
                Just(CmpOp::Lt),
                Just(CmpOp::Le),
                Just(CmpOp::Gt),
                Just(CmpOp::Ge),
            ]
        )
            .prop_map(|(v, c, op)| PropExpr::cmp_int(v, op, c)),
        ("[a-z][a-z0-9_]{0,6}", "[a-z][a-z0-9_]{0,6}").prop_map(|(a, b)| PropExpr::cmp_sym(
            a,
            CmpOp::Eq,
            b
        )),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(PropExpr::not),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            (inner.clone(), inner).prop_map(|(a, b)| a.implies(b)),
        ]
    })
}

fn arb_formula() -> impl Strategy<Value = Formula> {
    let leaf = arb_prop().prop_map(Formula::Prop);
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (arb_prop(), inner.clone()).prop_map(|(b, f)| Formula::implies(b, f)),
            inner.clone().prop_map(Formula::ax),
            inner.clone().prop_map(Formula::ag),
            inner.clone().prop_map(Formula::af),
            (inner.clone(), inner.clone()).prop_map(|(f, g)| Formula::au(f, g)),
            (inner.clone(), inner).prop_map(|(f, g)| f.and(g)),
        ]
    })
}

/// Keywords the grammar reserves; random identifiers may collide.
fn mentions_keyword(f: &Formula) -> bool {
    const KEYWORDS: &[&str] = &[
        "a", "e", "u", "ax", "ag", "af", "ex", "eg", "ef", "true", "false",
    ];
    f.signals().iter().any(|s| {
        KEYWORDS.contains(&s.to_lowercase().as_str()) && s.len() <= 2
            || matches!(
                s.to_uppercase().as_str(),
                "AX" | "AG" | "AF" | "EX" | "EG" | "EF" | "A" | "E" | "U" | "TRUE" | "FALSE"
            )
    })
}

/// Folds temporal nodes whose operands are all propositional into the
/// propositional layer, mirroring what the parser's classifier does:
/// `Formula::Implies(b, Prop c)` and `(Prop a) ∧ (Prop b)` print the
/// same as their propositional counterparts, so round-tripping is
/// identity only up to this fold (the grammar is ambiguous there; the
/// classifier prefers the propositional reading).
fn canon(f: &Formula) -> Formula {
    match f {
        Formula::Prop(p) => Formula::Prop(p.clone()),
        Formula::Implies(b, g) => match canon(g) {
            Formula::Prop(c) => Formula::Prop(b.clone().implies(c)),
            g => Formula::implies(b.clone(), g),
        },
        Formula::Ax(g) => Formula::ax(canon(g)),
        Formula::Ag(g) => Formula::ag(canon(g)),
        Formula::Af(g) => Formula::af(canon(g)),
        Formula::Au(g, h) => Formula::au(canon(g), canon(h)),
        Formula::And(g, h) => match (canon(g), canon(h)) {
            (Formula::Prop(a), Formula::Prop(b)) => Formula::Prop(a.and(b)),
            (a, b) => a.and(b),
        },
    }
}

proptest! {
    #[test]
    fn display_then_parse_is_identity_up_to_propositional_fold(f in arb_formula()) {
        prop_assume!(!mentions_keyword(&f));
        let text = f.to_string();
        let back = parse_formula(&text)
            .unwrap_or_else(|e| panic!("re-parse of `{text}` failed: {e}"));
        prop_assert_eq!(canon(&f), canon(&back));
    }

    #[test]
    fn normalize_is_idempotent(f in arb_formula()) {
        let n1 = f.normalize();
        let n2 = n1.normalize();
        prop_assert_eq!(n1, n2);
    }

    #[test]
    fn prime_then_signals_preserved(f in arb_prop()) {
        // Priming a signal never adds or removes names.
        let names = f.signals();
        for n in &names {
            let primed = f.prime_signal(n);
            prop_assert_eq!(primed.signals(), names.clone());
        }
    }
}
