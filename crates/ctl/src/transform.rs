//! The observability transformation `φ` of Definition 5.
//!
//! Given an acceptable-ACTL formula `f` and an observed signal `q`, the
//! transformation introduces a semantically identical copy `q'` of `q` and
//! rewrites `f` so that coverage obligations attach only to the intended
//! occurrences:
//!
//! ```text
//! φ(b)          = b[q ↦ q']
//! φ(b → f)      = b → φ(f)                 (antecedent left unprimed)
//! φ(AX f)       = AX φ(f)
//! φ(AG f)       = AG φ(f)
//! φ(A[f U g])   = A[φ(f) U g] ∧ A[(f ∧ ¬g) U φ(g)]
//! φ(f ∧ g)      = φ(f) ∧ φ(g)
//! ```
//!
//! The output is a *general* [`Ctl`] formula: the Until case leaves the
//! acceptable subset (it negates a temporal formula), which is fine — the
//! transformed formula is only evaluated semantically, by the reference
//! (Definition 3) coverage implementation and by correctness tests. The
//! symbolic algorithm of Table 1 never materializes it.

use crate::ast::Formula;
use crate::general::Ctl;

/// Applies the observability transformation `φ` for observed signal `q`.
///
/// `AF` sugar is normalized to `A[TRUE U ·]` first, matching the paper's
/// remark that `AF` needs no separate treatment.
///
/// # Examples
///
/// ```
/// use covest_ctl::{observability_transform, parse_formula};
/// let f = parse_formula("A[p1 U q]")?;
/// let t = observability_transform(&f, "q");
/// assert_eq!(t.to_string(), "(A[p1 U q] & A[(p1 & !(q)) U q'])");
/// # Ok::<(), covest_ctl::CtlError>(())
/// ```
pub fn observability_transform(f: &Formula, q: &str) -> Ctl {
    transform(&f.normalize(), q)
}

fn transform(f: &Formula, q: &str) -> Ctl {
    match f {
        Formula::Prop(b) => Ctl::Prop(b.prime_signal(q)),
        Formula::Implies(b, g) => {
            Ctl::Implies(Box::new(Ctl::Prop(b.clone())), Box::new(transform(g, q)))
        }
        Formula::Ax(g) => Ctl::Ax(Box::new(transform(g, q))),
        Formula::Ag(g) => Ctl::Ag(Box::new(transform(g, q))),
        Formula::Af(_) => unreachable!("normalize() removes AF"),
        Formula::Au(g, h) => {
            let left = Ctl::Au(Box::new(transform(g, q)), Box::new(Ctl::from(h.as_ref())));
            let guard = Ctl::And(
                Box::new(Ctl::from(g.as_ref())),
                Box::new(Ctl::Not(Box::new(Ctl::from(h.as_ref())))),
            );
            let right = Ctl::Au(Box::new(guard), Box::new(transform(h, q)));
            Ctl::And(Box::new(left), Box::new(right))
        }
        Formula::And(g, h) => Ctl::And(Box::new(transform(g, q)), Box::new(transform(h, q))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_formula;

    fn t(src: &str, q: &str) -> String {
        observability_transform(&parse_formula(src).expect(src), q).to_string()
    }

    #[test]
    fn propositional_occurrences_primed() {
        assert_eq!(t("q", "q"), "q'");
        assert_eq!(t("q & p", "q"), "(q' & p)");
    }

    #[test]
    fn implication_antecedent_unprimed() {
        // q in the antecedent stays unprimed: only the consequent carries
        // coverage obligations.
        assert_eq!(t("q -> AX q", "q"), "(q -> AX q')");
    }

    #[test]
    fn ax_ag_commute() {
        assert_eq!(t("AG AX q", "q"), "AG AX q'");
    }

    #[test]
    fn until_splits_into_two_conjuncts() {
        assert_eq!(t("A[q U p]", "q"), "(A[q' U p] & A[(q & !(p)) U p])");
        assert_eq!(t("A[p U q]", "q"), "(A[p U q] & A[(p & !(q)) U q'])");
    }

    #[test]
    fn af_normalizes_through_until_rule() {
        assert_eq!(t("AF q", "q"), "(A[TRUE U q] & A[(TRUE & !(q)) U q'])");
    }

    #[test]
    fn conjunction_distributes() {
        assert_eq!(t("AG q & AX q", "q"), "(AG q' & AX q')");
    }

    #[test]
    fn untouched_when_signal_absent() {
        // Transformation of a formula not mentioning q only changes the
        // Until syntactic shape, never introduces primes.
        let s = t("AG (p1 -> AX p2)", "q");
        assert!(!s.contains('\''), "{s}");
    }

    #[test]
    fn nested_until_pipeline_shape() {
        let s = t("AG (p1 -> A[p2 U A[p3 U p4]])", "p4");
        // Outer until splits, inner until splits inside the right conjunct.
        assert!(s.contains("p4'"), "{s}");
        assert!(s.matches("A[").count() >= 4, "{s}");
    }
}
