//! A recursive-descent parser for CTL properties.
//!
//! The parser accepts general CTL syntax (including constructs outside the
//! acceptable ACTL subset, such as `EX` or temporal disjunction) and a
//! separate classification pass ([`classify`]) converts the parse tree into
//! the paper's [`Formula`] subset, reporting a precise [`SubsetError`] when
//! the property falls outside it.

use crate::ast::{CmpOp, CmpRhs, Formula, PropExpr, SignalRef};
use crate::error::{CtlError, ParseFormulaError, SubsetError};

/// A general CTL parse tree (superset of the acceptable subset).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ast {
    /// Constant.
    Const(bool),
    /// Named signal.
    Atom(String),
    /// Comparison atom.
    Cmp(String, CmpOp, CmpRhs),
    /// Negation.
    Not(Box<Ast>),
    /// Conjunction.
    And(Box<Ast>, Box<Ast>),
    /// Disjunction.
    Or(Box<Ast>, Box<Ast>),
    /// Implication.
    Implies(Box<Ast>, Box<Ast>),
    /// Biconditional.
    Iff(Box<Ast>, Box<Ast>),
    /// `AX`.
    Ax(Box<Ast>),
    /// `AG`.
    Ag(Box<Ast>),
    /// `AF`.
    Af(Box<Ast>),
    /// `A[_ U _]`.
    Au(Box<Ast>, Box<Ast>),
    /// `EX` (parsed, always rejected by classification).
    Ex(Box<Ast>),
    /// `EG` (parsed, always rejected by classification).
    Eg(Box<Ast>),
    /// `EF` (parsed, always rejected by classification).
    Ef(Box<Ast>),
    /// `E[_ U _]` (parsed, always rejected by classification).
    Eu(Box<Ast>, Box<Ast>),
}

impl Ast {
    fn is_propositional(&self) -> bool {
        match self {
            Ast::Const(_) | Ast::Atom(_) | Ast::Cmp(..) => true,
            Ast::Not(a) => a.is_propositional(),
            Ast::And(a, b) | Ast::Or(a, b) | Ast::Implies(a, b) | Ast::Iff(a, b) => {
                a.is_propositional() && b.is_propositional()
            }
            Ast::Ax(_)
            | Ast::Ag(_)
            | Ast::Af(_)
            | Ast::Au(..)
            | Ast::Ex(_)
            | Ast::Eg(_)
            | Ast::Ef(_)
            | Ast::Eu(..) => false,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    LParen,
    RParen,
    LBracket,
    RBracket,
    Bang,
    Amp,
    Pipe,
    Arrow,
    DArrow,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
        }
    }

    fn tokens(mut self) -> Result<Vec<(usize, Tok)>, ParseFormulaError> {
        let mut out = Vec::new();
        loop {
            while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
                self.pos += 1;
            }
            if self.pos >= self.bytes.len() {
                break;
            }
            let start = self.pos;
            let c = self.bytes[self.pos];
            let tok = match c {
                b'(' => {
                    self.pos += 1;
                    Tok::LParen
                }
                b')' => {
                    self.pos += 1;
                    Tok::RParen
                }
                b'[' => {
                    self.pos += 1;
                    Tok::LBracket
                }
                b']' => {
                    self.pos += 1;
                    Tok::RBracket
                }
                b'&' => {
                    self.pos += 1;
                    Tok::Amp
                }
                b'|' => {
                    self.pos += 1;
                    Tok::Pipe
                }
                b'=' => {
                    self.pos += 1;
                    Tok::Eq
                }
                b'!' => {
                    self.pos += 1;
                    if self.peek() == Some(b'=') {
                        self.pos += 1;
                        Tok::Ne
                    } else {
                        Tok::Bang
                    }
                }
                b'<' => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'=') => {
                            self.pos += 1;
                            Tok::Le
                        }
                        Some(b'-') if self.peek_at(1) == Some(b'>') => {
                            self.pos += 2;
                            Tok::DArrow
                        }
                        _ => Tok::Lt,
                    }
                }
                b'>' => {
                    self.pos += 1;
                    if self.peek() == Some(b'=') {
                        self.pos += 1;
                        Tok::Ge
                    } else {
                        Tok::Gt
                    }
                }
                b'-' => {
                    if self.peek_at(1) == Some(b'>') {
                        self.pos += 2;
                        Tok::Arrow
                    } else if self.peek_at(1).is_some_and(|d| d.is_ascii_digit()) {
                        self.pos += 1;
                        let n = self.lex_int(start)?;
                        Tok::Int(-n)
                    } else {
                        return Err(ParseFormulaError {
                            position: start,
                            message: "unexpected '-'".to_owned(),
                        });
                    }
                }
                b'0'..=b'9' => Tok::Int(self.lex_int(start)?),
                c if c.is_ascii_alphabetic() || c == b'_' => {
                    while self.pos < self.bytes.len()
                        && (self.bytes[self.pos].is_ascii_alphanumeric()
                            || self.bytes[self.pos] == b'_'
                            || self.bytes[self.pos] == b'.')
                    {
                        self.pos += 1;
                    }
                    Tok::Ident(self.src[start..self.pos].to_owned())
                }
                other => {
                    return Err(ParseFormulaError {
                        position: start,
                        message: format!("unexpected character {:?}", other as char),
                    })
                }
            };
            out.push((start, tok));
        }
        Ok(out)
    }

    fn lex_int(&mut self, start: usize) -> Result<i64, ParseFormulaError> {
        let digits_start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        self.src[digits_start..self.pos]
            .parse()
            .map_err(|_| ParseFormulaError {
                position: start,
                message: "integer literal out of range".to_owned(),
            })
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.bytes.get(self.pos + off).copied()
    }
}

struct Parser {
    toks: Vec<(usize, Tok)>,
    idx: usize,
    input_len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.idx).map(|(_, t)| t)
    }

    fn pos(&self) -> usize {
        self.toks
            .get(self.idx)
            .map(|(p, _)| *p)
            .unwrap_or(self.input_len)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.idx).map(|(_, t)| t.clone());
        self.idx += 1;
        t
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<(), ParseFormulaError> {
        if self.peek() == Some(want) {
            self.idx += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {what}")))
        }
    }

    fn err(&self, message: String) -> ParseFormulaError {
        ParseFormulaError {
            position: self.pos(),
            message,
        }
    }

    // Grammar (loosest binding first):
    //   iff     := implies ( '<->' implies )*
    //   implies := or ( '->' implies )?          (right assoc)
    //   or      := and ( '|' and )*
    //   and     := unary ( '&' unary )*
    //   unary   := '!' unary | temporal | primary
    //   temporal:= ('AX'|'AG'|'AF'|'EX'|'EG'|'EF') unary
    //            | ('A'|'E') '[' iff 'U' iff ']'
    //   primary := '(' iff ')' | const | ident (cmp)? | int? (only via cmp rhs)
    fn parse_iff(&mut self) -> Result<Ast, ParseFormulaError> {
        let mut lhs = self.parse_implies()?;
        while self.peek() == Some(&Tok::DArrow) {
            self.idx += 1;
            let rhs = self.parse_implies()?;
            lhs = Ast::Iff(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_implies(&mut self) -> Result<Ast, ParseFormulaError> {
        let lhs = self.parse_or()?;
        if self.peek() == Some(&Tok::Arrow) {
            self.idx += 1;
            let rhs = self.parse_implies()?;
            Ok(Ast::Implies(Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn parse_or(&mut self) -> Result<Ast, ParseFormulaError> {
        let mut lhs = self.parse_and()?;
        while self.peek() == Some(&Tok::Pipe) {
            self.idx += 1;
            let rhs = self.parse_and()?;
            lhs = Ast::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Ast, ParseFormulaError> {
        let mut lhs = self.parse_unary()?;
        while self.peek() == Some(&Tok::Amp) {
            self.idx += 1;
            let rhs = self.parse_unary()?;
            lhs = Ast::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Ast, ParseFormulaError> {
        match self.peek() {
            Some(Tok::Bang) => {
                self.idx += 1;
                let inner = self.parse_unary()?;
                Ok(Ast::Not(Box::new(inner)))
            }
            Some(Tok::Ident(name)) => {
                let name = name.clone();
                match name.as_str() {
                    "AX" | "AG" | "AF" | "EX" | "EG" | "EF" => {
                        self.idx += 1;
                        let inner = self.parse_unary()?;
                        let b = Box::new(inner);
                        Ok(match name.as_str() {
                            "AX" => Ast::Ax(b),
                            "AG" => Ast::Ag(b),
                            "AF" => Ast::Af(b),
                            "EX" => Ast::Ex(b),
                            "EG" => Ast::Eg(b),
                            _ => Ast::Ef(b),
                        })
                    }
                    "A" | "E" => {
                        self.idx += 1;
                        self.expect(&Tok::LBracket, "'[' after path quantifier")?;
                        let f = self.parse_iff()?;
                        match self.bump() {
                            Some(Tok::Ident(u)) if u == "U" => {}
                            _ => return Err(self.err("expected 'U' in until".to_owned())),
                        }
                        let g = self.parse_iff()?;
                        self.expect(&Tok::RBracket, "']' closing until")?;
                        Ok(if name == "A" {
                            Ast::Au(Box::new(f), Box::new(g))
                        } else {
                            Ast::Eu(Box::new(f), Box::new(g))
                        })
                    }
                    _ => self.parse_primary(),
                }
            }
            _ => self.parse_primary(),
        }
    }

    fn parse_primary(&mut self) -> Result<Ast, ParseFormulaError> {
        match self.bump() {
            Some(Tok::LParen) => {
                let inner = self.parse_iff()?;
                self.expect(&Tok::RParen, "')'")?;
                Ok(inner)
            }
            Some(Tok::Ident(name)) => match name.as_str() {
                "TRUE" | "true" => Ok(Ast::Const(true)),
                "FALSE" | "false" => Ok(Ast::Const(false)),
                _ => {
                    // Possible comparison.
                    let op = match self.peek() {
                        Some(Tok::Eq) => Some(CmpOp::Eq),
                        Some(Tok::Ne) => Some(CmpOp::Ne),
                        Some(Tok::Lt) => Some(CmpOp::Lt),
                        Some(Tok::Le) => Some(CmpOp::Le),
                        Some(Tok::Gt) => Some(CmpOp::Gt),
                        Some(Tok::Ge) => Some(CmpOp::Ge),
                        _ => None,
                    };
                    if let Some(op) = op {
                        self.idx += 1;
                        let rhs = match self.bump() {
                            Some(Tok::Int(i)) => CmpRhs::Int(i),
                            Some(Tok::Ident(s)) => CmpRhs::Sym(SignalRef::new(s)),
                            _ => {
                                return Err(self.err(
                                    "expected integer or identifier after comparison".to_owned(),
                                ))
                            }
                        };
                        Ok(Ast::Cmp(name, op, rhs))
                    } else {
                        Ok(Ast::Atom(name))
                    }
                }
            },
            Some(_) => Err(self.err("unexpected token".to_owned())),
            None => Err(self.err("unexpected end of input".to_owned())),
        }
    }
}

/// Parses a general CTL parse tree from text.
///
/// # Errors
///
/// Returns [`ParseFormulaError`] on malformed input.
pub fn parse_ast(src: &str) -> Result<Ast, ParseFormulaError> {
    let toks = Lexer::new(src).tokens()?;
    let mut p = Parser {
        toks,
        idx: 0,
        input_len: src.len(),
    };
    let ast = p.parse_iff()?;
    if p.idx != p.toks.len() {
        return Err(p.err("trailing input after formula".to_owned()));
    }
    Ok(ast)
}

fn to_prop(ast: &Ast) -> Result<PropExpr, SubsetError> {
    match ast {
        Ast::Const(c) => Ok(PropExpr::Const(*c)),
        Ast::Atom(n) => Ok(PropExpr::Atom(SignalRef::new(n.clone()))),
        Ast::Cmp(lhs, op, rhs) => Ok(PropExpr::Cmp {
            lhs: SignalRef::new(lhs.clone()),
            op: *op,
            rhs: rhs.clone(),
        }),
        Ast::Not(a) => Ok(PropExpr::Not(Box::new(to_prop(a)?))),
        Ast::And(a, b) => Ok(PropExpr::And(Box::new(to_prop(a)?), Box::new(to_prop(b)?))),
        Ast::Or(a, b) => Ok(PropExpr::Or(Box::new(to_prop(a)?), Box::new(to_prop(b)?))),
        Ast::Implies(a, b) => Ok(PropExpr::Implies(
            Box::new(to_prop(a)?),
            Box::new(to_prop(b)?),
        )),
        Ast::Iff(a, b) => Ok(PropExpr::Iff(Box::new(to_prop(a)?), Box::new(to_prop(b)?))),
        other => Err(SubsetError {
            construct: format!("{other:?}"),
            reason: "temporal operator where a propositional formula is required".to_owned(),
        }),
    }
}

/// Converts a parse tree into the paper's acceptable ACTL subset.
///
/// # Errors
///
/// Returns [`SubsetError`] for constructs outside the subset: existential
/// path quantifiers, negation/disjunction/biconditional over temporal
/// operands, or temporal antecedents of implications.
pub fn classify(ast: &Ast) -> Result<Formula, SubsetError> {
    if ast.is_propositional() {
        return Ok(Formula::Prop(to_prop(ast)?));
    }
    match ast {
        Ast::Implies(a, b) => {
            if !a.is_propositional() {
                return Err(SubsetError {
                    construct: "f -> g".to_owned(),
                    reason: "implication antecedent must be propositional in the subset".to_owned(),
                });
            }
            Ok(Formula::Implies(to_prop(a)?, Box::new(classify(b)?)))
        }
        Ast::Ax(a) => Ok(Formula::Ax(Box::new(classify(a)?))),
        Ast::Ag(a) => Ok(Formula::Ag(Box::new(classify(a)?))),
        Ast::Af(a) => Ok(Formula::Af(Box::new(classify(a)?))),
        Ast::Au(a, b) => Ok(Formula::Au(Box::new(classify(a)?), Box::new(classify(b)?))),
        Ast::And(a, b) => Ok(Formula::And(Box::new(classify(a)?), Box::new(classify(b)?))),
        Ast::Or(_, _) => Err(SubsetError {
            construct: "f | g".to_owned(),
            reason: "disjunction of temporal formulas is not in the acceptable subset".to_owned(),
        }),
        Ast::Not(_) => Err(SubsetError {
            construct: "!f".to_owned(),
            reason: "negation of a temporal formula is not in the acceptable subset".to_owned(),
        }),
        Ast::Iff(_, _) => Err(SubsetError {
            construct: "f <-> g".to_owned(),
            reason: "biconditional over temporal formulas is not in the acceptable subset"
                .to_owned(),
        }),
        Ast::Ex(_) | Ast::Eg(_) | Ast::Ef(_) | Ast::Eu(..) => Err(SubsetError {
            construct: "E...".to_owned(),
            reason: "existential path quantifiers are not universal (ACTL) formulas".to_owned(),
        }),
        Ast::Const(_) | Ast::Atom(_) | Ast::Cmp(..) => unreachable!("handled as propositional"),
    }
}

/// Parses a property in the paper's acceptable ACTL subset.
///
/// # Errors
///
/// Returns [`CtlError::Parse`] on malformed syntax and [`CtlError::Subset`]
/// when the formula is valid CTL but not in the acceptable subset.
///
/// # Examples
///
/// ```
/// use covest_ctl::parse_formula;
/// let f = parse_formula("AG (p1 -> AX AX q)")?;
/// assert_eq!(f.to_string(), "AG (p1 -> AX AX q)");
/// # Ok::<(), covest_ctl::CtlError>(())
/// ```
pub fn parse_formula(src: &str) -> Result<Formula, CtlError> {
    let ast = parse_ast(src)?;
    Ok(classify(&ast)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_intro_formula() {
        let f = parse_formula("AG (!stall & !reset & count = 3 & count < 5 -> AX count = 4)")
            .expect("acceptable");
        let s = f.to_string();
        assert!(s.starts_with("AG "));
        assert!(s.contains("count < 5"));
    }

    #[test]
    fn parses_until_and_nested_until() {
        let f = parse_formula("AG (p1 -> A[p2 U A[p3 U p4]])").expect("acceptable");
        assert_eq!(f.to_string(), "AG (p1 -> A[p2 U A[p3 U p4]])");
    }

    #[test]
    fn parses_af_sugar() {
        let f = parse_formula("AF done").expect("acceptable");
        assert_eq!(f.normalize().to_string(), "A[TRUE U done]");
    }

    #[test]
    fn conjunction_of_temporal_ok() {
        let f = parse_formula("AG p & AX q").expect("acceptable");
        assert!(matches!(f, Formula::And(..)));
    }

    #[test]
    fn rejects_temporal_disjunction() {
        let e = parse_formula("AG p | AX q").unwrap_err();
        assert!(matches!(e, CtlError::Subset(_)), "{e}");
    }

    #[test]
    fn rejects_existential() {
        let e = parse_formula("EF p").unwrap_err();
        assert!(matches!(e, CtlError::Subset(_)));
        let e = parse_formula("E[p U q]").unwrap_err();
        assert!(matches!(e, CtlError::Subset(_)));
    }

    #[test]
    fn rejects_temporal_negation_and_antecedent() {
        assert!(matches!(
            parse_formula("!AX p").unwrap_err(),
            CtlError::Subset(_)
        ));
        assert!(matches!(
            parse_formula("AX p -> q").unwrap_err(),
            CtlError::Subset(_)
        ));
    }

    #[test]
    fn propositional_connectives_all_allowed() {
        let f = parse_formula("(a | !b) & (c <-> d) -> AX (e != 2)").expect("acceptable");
        assert!(matches!(f, Formula::Implies(..)));
    }

    #[test]
    fn reports_parse_errors_with_position() {
        let e = parse_ast("AG (p ->").unwrap_err();
        assert!(e.position >= 7, "{e:?}");
        assert!(parse_ast("p $ q").is_err());
        assert!(parse_ast("A[p q]").is_err());
        assert!(parse_ast("p q").is_err());
    }

    #[test]
    fn negative_integers_in_comparisons() {
        let f = parse_formula("x >= -3").expect("acceptable");
        assert_eq!(f.to_string(), "x >= -3");
    }

    #[test]
    fn display_parse_roundtrip() {
        let cases = [
            "AG (p1 -> AX AX q)",
            "A[p1 U q]",
            "AG (!stall -> A[busy U done])",
            "(AG p & AX q)",
            "AG ((a & b) -> AX c)",
        ];
        for src in cases {
            let f = parse_formula(src).expect(src);
            let re = parse_formula(&f.to_string()).expect("roundtrip");
            assert_eq!(f, re, "{src}");
        }
    }
}
