//! Abstract syntax for the acceptable ACTL subset of the DAC'99 paper.
//!
//! The paper (Section 2.1) restricts coverage estimation to the grammar
//!
//! ```text
//! f ::= b | b → f | AX f | AG f | A[f U g] | f ∧ g        (+ AF f sugar)
//! ```
//!
//! where `b` ranges over propositional formulas. [`PropExpr`] is the
//! propositional layer; [`Formula`] is the temporal layer.

use std::fmt;

/// A reference to a named model signal, with the *primed* marker used by
/// the observability transformation (Definition 5): `q'` is a copy of the
/// observed signal `q` that carries coverage obligations.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SignalRef {
    /// Signal name as written in the model/property.
    pub name: String,
    /// Whether this occurrence was primed by the observability transform.
    pub primed: bool,
}

impl SignalRef {
    /// An unprimed reference to `name`.
    pub fn new(name: impl Into<String>) -> Self {
        SignalRef {
            name: name.into(),
            primed: false,
        }
    }

    /// A primed reference to `name` (used only by the transformation).
    pub fn primed(name: impl Into<String>) -> Self {
        SignalRef {
            name: name.into(),
            primed: true,
        }
    }
}

impl fmt::Display for SignalRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.primed {
            write!(f, "{}'", self.name)
        } else {
            write!(f, "{}", self.name)
        }
    }
}

/// Comparison operators usable in propositional atoms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Evaluates the comparison on concrete integers.
    pub fn eval(self, lhs: i64, rhs: i64) -> bool {
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// Right-hand side of a comparison.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CmpRhs {
    /// Integer literal.
    Int(i64),
    /// Symbolic name: either another variable or an enumeration literal;
    /// which one is resolved against the model at lowering time.
    Sym(SignalRef),
}

impl fmt::Display for CmpRhs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CmpRhs::Int(i) => write!(f, "{i}"),
            CmpRhs::Sym(s) => write!(f, "{s}"),
        }
    }
}

/// A propositional (state) formula.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PropExpr {
    /// Constant `TRUE` / `FALSE`.
    Const(bool),
    /// A boolean signal.
    Atom(SignalRef),
    /// A comparison such as `count < 5` or `rp = wp`.
    Cmp {
        /// Left-hand variable.
        lhs: SignalRef,
        /// Comparison operator.
        op: CmpOp,
        /// Right-hand side.
        rhs: CmpRhs,
    },
    /// Negation.
    Not(Box<PropExpr>),
    /// Conjunction.
    And(Box<PropExpr>, Box<PropExpr>),
    /// Disjunction.
    Or(Box<PropExpr>, Box<PropExpr>),
    /// Implication.
    Implies(Box<PropExpr>, Box<PropExpr>),
    /// Biconditional.
    Iff(Box<PropExpr>, Box<PropExpr>),
}

impl PropExpr {
    /// Convenience constructor for a boolean atom.
    pub fn atom(name: impl Into<String>) -> Self {
        PropExpr::Atom(SignalRef::new(name))
    }

    /// Convenience constructor for `lhs op value`.
    pub fn cmp_int(lhs: impl Into<String>, op: CmpOp, value: i64) -> Self {
        PropExpr::Cmp {
            lhs: SignalRef::new(lhs),
            op,
            rhs: CmpRhs::Int(value),
        }
    }

    /// Convenience constructor for `lhs op rhs` with a symbolic rhs.
    pub fn cmp_sym(lhs: impl Into<String>, op: CmpOp, rhs: impl Into<String>) -> Self {
        PropExpr::Cmp {
            lhs: SignalRef::new(lhs),
            op,
            rhs: CmpRhs::Sym(SignalRef::new(rhs)),
        }
    }

    /// Negation (consuming constructor).
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        PropExpr::Not(Box::new(self))
    }

    /// Conjunction (consuming constructor).
    pub fn and(self, other: PropExpr) -> Self {
        PropExpr::And(Box::new(self), Box::new(other))
    }

    /// Disjunction (consuming constructor).
    pub fn or(self, other: PropExpr) -> Self {
        PropExpr::Or(Box::new(self), Box::new(other))
    }

    /// Implication (consuming constructor).
    pub fn implies(self, other: PropExpr) -> Self {
        PropExpr::Implies(Box::new(self), Box::new(other))
    }

    /// Returns `true` if the expression mentions signal `name` (primed or
    /// unprimed, as atom, comparison lhs, or symbolic rhs).
    pub fn mentions(&self, name: &str) -> bool {
        match self {
            PropExpr::Const(_) => false,
            PropExpr::Atom(s) => s.name == name,
            PropExpr::Cmp { lhs, rhs, .. } => {
                lhs.name == name || matches!(rhs, CmpRhs::Sym(s) if s.name == name)
            }
            PropExpr::Not(a) => a.mentions(name),
            PropExpr::And(a, b)
            | PropExpr::Or(a, b)
            | PropExpr::Implies(a, b)
            | PropExpr::Iff(a, b) => a.mentions(name) || b.mentions(name),
        }
    }

    /// Returns a copy with every occurrence of signal `name` marked primed
    /// (the substitution `q ↦ q'` of Definition 5).
    pub fn prime_signal(&self, name: &str) -> PropExpr {
        let prime = |s: &SignalRef| -> SignalRef {
            if s.name == name {
                SignalRef {
                    name: s.name.clone(),
                    primed: true,
                }
            } else {
                s.clone()
            }
        };
        match self {
            PropExpr::Const(c) => PropExpr::Const(*c),
            PropExpr::Atom(s) => PropExpr::Atom(prime(s)),
            PropExpr::Cmp { lhs, op, rhs } => PropExpr::Cmp {
                lhs: prime(lhs),
                op: *op,
                rhs: match rhs {
                    CmpRhs::Int(i) => CmpRhs::Int(*i),
                    CmpRhs::Sym(s) => CmpRhs::Sym(prime(s)),
                },
            },
            PropExpr::Not(a) => PropExpr::Not(Box::new(a.prime_signal(name))),
            PropExpr::And(a, b) => PropExpr::And(
                Box::new(a.prime_signal(name)),
                Box::new(b.prime_signal(name)),
            ),
            PropExpr::Or(a, b) => PropExpr::Or(
                Box::new(a.prime_signal(name)),
                Box::new(b.prime_signal(name)),
            ),
            PropExpr::Implies(a, b) => PropExpr::Implies(
                Box::new(a.prime_signal(name)),
                Box::new(b.prime_signal(name)),
            ),
            PropExpr::Iff(a, b) => PropExpr::Iff(
                Box::new(a.prime_signal(name)),
                Box::new(b.prime_signal(name)),
            ),
        }
    }

    /// All signal names mentioned in the expression, in first-occurrence order.
    pub fn signals(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_signals(&mut out);
        out
    }

    fn collect_signals(&self, out: &mut Vec<String>) {
        let mut push = |n: &str| {
            if !out.iter().any(|x| x == n) {
                out.push(n.to_owned());
            }
        };
        match self {
            PropExpr::Const(_) => {}
            PropExpr::Atom(s) => push(&s.name),
            PropExpr::Cmp { lhs, rhs, .. } => {
                push(&lhs.name);
                if let CmpRhs::Sym(s) = rhs {
                    push(&s.name);
                }
            }
            PropExpr::Not(a) => a.collect_signals(out),
            PropExpr::And(a, b)
            | PropExpr::Or(a, b)
            | PropExpr::Implies(a, b)
            | PropExpr::Iff(a, b) => {
                a.collect_signals(out);
                b.collect_signals(out);
            }
        }
    }
}

impl fmt::Display for PropExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropExpr::Const(true) => f.write_str("TRUE"),
            PropExpr::Const(false) => f.write_str("FALSE"),
            PropExpr::Atom(s) => write!(f, "{s}"),
            PropExpr::Cmp { lhs, op, rhs } => write!(f, "{lhs} {op} {rhs}"),
            PropExpr::Not(a) => write!(f, "!({a})"),
            PropExpr::And(a, b) => write!(f, "({a} & {b})"),
            PropExpr::Or(a, b) => write!(f, "({a} | {b})"),
            PropExpr::Implies(a, b) => write!(f, "({a} -> {b})"),
            PropExpr::Iff(a, b) => write!(f, "({a} <-> {b})"),
        }
    }
}

/// A temporal formula in the paper's acceptable ACTL subset.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Formula {
    /// A propositional formula `b`.
    Prop(PropExpr),
    /// `b → f` with propositional antecedent.
    Implies(PropExpr, Box<Formula>),
    /// `AX f`.
    Ax(Box<Formula>),
    /// `AG f`.
    Ag(Box<Formula>),
    /// `AF f` — sugar for `A[TRUE U f]`, removed by [`Formula::normalize`].
    Af(Box<Formula>),
    /// `A[f U g]`.
    Au(Box<Formula>, Box<Formula>),
    /// Conjunction of temporal formulas.
    And(Box<Formula>, Box<Formula>),
}

impl Formula {
    /// Lifts a propositional expression.
    pub fn prop(p: PropExpr) -> Self {
        Formula::Prop(p)
    }

    /// `b → f`.
    pub fn implies(b: PropExpr, f: Formula) -> Self {
        Formula::Implies(b, Box::new(f))
    }

    /// `AX f`.
    pub fn ax(f: Formula) -> Self {
        Formula::Ax(Box::new(f))
    }

    /// `AG f`.
    pub fn ag(f: Formula) -> Self {
        Formula::Ag(Box::new(f))
    }

    /// `AF f`.
    pub fn af(f: Formula) -> Self {
        Formula::Af(Box::new(f))
    }

    /// `A[f U g]`.
    pub fn au(f: Formula, g: Formula) -> Self {
        Formula::Au(Box::new(f), Box::new(g))
    }

    /// Conjunction (consuming constructor).
    pub fn and(self, other: Formula) -> Self {
        Formula::And(Box::new(self), Box::new(other))
    }

    /// Removes `AF` sugar: `AF f ⇒ A[TRUE U f]` (paper, Section 2.1).
    pub fn normalize(&self) -> Formula {
        match self {
            Formula::Prop(p) => Formula::Prop(p.clone()),
            Formula::Implies(b, f) => Formula::Implies(b.clone(), Box::new(f.normalize())),
            Formula::Ax(f) => Formula::Ax(Box::new(f.normalize())),
            Formula::Ag(f) => Formula::Ag(Box::new(f.normalize())),
            Formula::Af(f) => Formula::Au(
                Box::new(Formula::Prop(PropExpr::Const(true))),
                Box::new(f.normalize()),
            ),
            Formula::Au(f, g) => Formula::Au(Box::new(f.normalize()), Box::new(g.normalize())),
            Formula::And(f, g) => Formula::And(Box::new(f.normalize()), Box::new(g.normalize())),
        }
    }

    /// Returns `true` if the formula mentions signal `name` anywhere.
    pub fn mentions(&self, name: &str) -> bool {
        match self {
            Formula::Prop(p) => p.mentions(name),
            Formula::Implies(b, f) => b.mentions(name) || f.mentions(name),
            Formula::Ax(f) | Formula::Ag(f) | Formula::Af(f) => f.mentions(name),
            Formula::Au(f, g) | Formula::And(f, g) => f.mentions(name) || g.mentions(name),
        }
    }

    /// All signal names mentioned, in first-occurrence order.
    pub fn signals(&self) -> Vec<String> {
        fn go(f: &Formula, out: &mut Vec<String>) {
            let push_all = |p: &PropExpr, out: &mut Vec<String>| {
                for s in p.signals() {
                    if !out.contains(&s) {
                        out.push(s);
                    }
                }
            };
            match f {
                Formula::Prop(p) => push_all(p, out),
                Formula::Implies(b, g) => {
                    push_all(b, out);
                    go(g, out);
                }
                Formula::Ax(g) | Formula::Ag(g) | Formula::Af(g) => go(g, out),
                Formula::Au(g, h) | Formula::And(g, h) => {
                    go(g, out);
                    go(h, out);
                }
            }
        }
        let mut out = Vec::new();
        go(self, &mut out);
        out
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::Prop(p) => write!(f, "{p}"),
            Formula::Implies(b, g) => write!(f, "({b} -> {g})"),
            Formula::Ax(g) => write!(f, "AX {g}"),
            Formula::Ag(g) => write!(f, "AG {g}"),
            Formula::Af(g) => write!(f, "AF {g}"),
            Formula::Au(g, h) => write!(f, "A[{g} U {h}]"),
            Formula::And(g, h) => write!(f, "({g} & {h})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_roundtrips_simple_shapes() {
        let f = Formula::ag(Formula::implies(
            PropExpr::atom("p1"),
            Formula::ax(Formula::ax(Formula::prop(PropExpr::atom("q")))),
        ));
        assert_eq!(f.to_string(), "AG (p1 -> AX AX q)");
    }

    #[test]
    fn normalize_removes_af() {
        let f = Formula::af(Formula::prop(PropExpr::atom("q")));
        let n = f.normalize();
        assert_eq!(n.to_string(), "A[TRUE U q]");
    }

    #[test]
    fn mentions_and_signals() {
        let f = Formula::ag(Formula::implies(
            PropExpr::atom("stall")
                .not()
                .and(PropExpr::cmp_int("count", CmpOp::Lt, 5)),
            Formula::ax(Formula::prop(PropExpr::cmp_int("count", CmpOp::Eq, 3))),
        ));
        assert!(f.mentions("count"));
        assert!(f.mentions("stall"));
        assert!(!f.mentions("reset"));
        assert_eq!(f.signals(), vec!["stall".to_owned(), "count".to_owned()]);
    }

    #[test]
    fn prime_signal_marks_only_target() {
        let p = PropExpr::atom("q").and(PropExpr::atom("p"));
        let primed = p.prime_signal("q");
        assert_eq!(primed.to_string(), "(q' & p)");
    }

    #[test]
    fn prime_signal_in_comparisons() {
        let p = PropExpr::cmp_sym("count", CmpOp::Eq, "count_prev");
        assert_eq!(p.prime_signal("count").to_string(), "count' = count_prev");
        assert_eq!(
            p.prime_signal("count_prev").to_string(),
            "count = count_prev'"
        );
    }

    #[test]
    fn cmp_op_eval() {
        assert!(CmpOp::Lt.eval(1, 2));
        assert!(CmpOp::Le.eval(2, 2));
        assert!(CmpOp::Ge.eval(2, 2));
        assert!(CmpOp::Gt.eval(3, 2));
        assert!(CmpOp::Eq.eval(2, 2));
        assert!(CmpOp::Ne.eval(1, 2));
        assert!(!CmpOp::Lt.eval(2, 2));
    }
}
