//! Error types for parsing and subset validation.

use std::error::Error;
use std::fmt;

/// Error produced when parsing a CTL property string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFormulaError {
    /// Byte offset of the offending token in the input.
    pub position: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl fmt::Display for ParseFormulaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl Error for ParseFormulaError {}

/// Error produced when a syntactically valid CTL formula falls outside the
/// acceptable ACTL subset of the DAC'99 paper (Section 2.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubsetError {
    /// Which construct was rejected.
    pub construct: String,
    /// Why it is outside the subset.
    pub reason: String,
}

impl fmt::Display for SubsetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "formula outside the acceptable ACTL subset: {} ({})",
            self.construct, self.reason
        )
    }
}

impl Error for SubsetError {}

/// Combined error for [`crate::parse_formula`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CtlError {
    /// Lexing/parsing failed.
    Parse(ParseFormulaError),
    /// Parsed fine but is not in the acceptable subset.
    Subset(SubsetError),
}

impl fmt::Display for CtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtlError::Parse(e) => write!(f, "{e}"),
            CtlError::Subset(e) => write!(f, "{e}"),
        }
    }
}

impl Error for CtlError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CtlError::Parse(e) => Some(e),
            CtlError::Subset(e) => Some(e),
        }
    }
}

impl From<ParseFormulaError> for CtlError {
    fn from(e: ParseFormulaError) -> Self {
        CtlError::Parse(e)
    }
}

impl From<SubsetError> for CtlError {
    fn from(e: SubsetError) -> Self {
        CtlError::Subset(e)
    }
}
