//! # covest-ctl
//!
//! CTL property syntax for the `covest` workspace — the property layer of
//! the DAC'99 paper *"Coverage Estimation for Symbolic Model Checking"*.
//!
//! Three layers:
//!
//! - [`PropExpr`]: propositional state formulas over named signals, with
//!   integer comparisons (`count < 5`) for enum/range variables;
//! - [`Formula`]: the paper's *acceptable ACTL subset*
//!   (`b | b→f | AX f | AG f | A[f U g] | f ∧ g`, plus `AF` sugar), the
//!   only shape the coverage algorithm accepts;
//! - [`Ctl`]: general CTL, used internally by the model checker and as the
//!   codomain of the observability transformation.
//!
//! Plus:
//!
//! - [`parse_formula`]: text → [`Formula`], rejecting out-of-subset
//!   properties with a precise [`SubsetError`];
//! - [`observability_transform`]: Definition 5's rewriting `φ`, which
//!   makes coverage attribution intuitive for implications and Until.
//!
//! # Example
//!
//! ```
//! use covest_ctl::{parse_formula, observability_transform};
//!
//! // The paper's Figure 2 example: an eventuality property.
//! let f = parse_formula("A[p1 U q]")?;
//! // Under the raw Definition 3 this property covers nothing; the
//! // transformation splits it so the first q-state is covered:
//! let t = observability_transform(&f, "q");
//! assert_eq!(t.to_string(), "(A[p1 U q] & A[(p1 & !(q)) U q'])");
//! # Ok::<(), covest_ctl::CtlError>(())
//! ```

mod ast;
mod error;
mod general;
mod parse;
mod transform;

pub use ast::{CmpOp, CmpRhs, Formula, PropExpr, SignalRef};
pub use error::{CtlError, ParseFormulaError, SubsetError};
pub use general::Ctl;
pub use parse::{classify, parse_ast, parse_formula, Ast};
pub use transform::observability_transform;
