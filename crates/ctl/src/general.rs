//! General CTL (both path quantifiers, arbitrary boolean structure).
//!
//! The acceptable ACTL subset ([`Formula`]) is what users write and what
//! the coverage algorithm recurses over. The *general* [`Ctl`] type is what
//! the model checker evaluates: it is closed under negation, which the
//! checker needs for universal/existential dualities, and it can represent
//! the output of the observability transformation (which falls outside the
//! subset, e.g. `A[(f ∧ ¬g) U φ(g)]` negates a temporal formula).

use std::fmt;

use crate::ast::{Formula, PropExpr};

/// A general CTL formula.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Ctl {
    /// Propositional formula.
    Prop(PropExpr),
    /// Negation.
    Not(Box<Ctl>),
    /// Conjunction.
    And(Box<Ctl>, Box<Ctl>),
    /// Disjunction.
    Or(Box<Ctl>, Box<Ctl>),
    /// Implication.
    Implies(Box<Ctl>, Box<Ctl>),
    /// On all next states.
    Ax(Box<Ctl>),
    /// On some next state.
    Ex(Box<Ctl>),
    /// On all paths, globally.
    Ag(Box<Ctl>),
    /// On some path, globally.
    Eg(Box<Ctl>),
    /// On all paths, eventually.
    Af(Box<Ctl>),
    /// On some path, eventually.
    Ef(Box<Ctl>),
    /// On all paths, until.
    Au(Box<Ctl>, Box<Ctl>),
    /// On some path, until.
    Eu(Box<Ctl>, Box<Ctl>),
}

impl Ctl {
    /// Lifts a propositional expression.
    pub fn prop(p: PropExpr) -> Self {
        Ctl::Prop(p)
    }

    /// Negation (consuming constructor).
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        Ctl::Not(Box::new(self))
    }

    /// Conjunction (consuming constructor).
    pub fn and(self, other: Ctl) -> Self {
        Ctl::And(Box::new(self), Box::new(other))
    }

    /// Disjunction (consuming constructor).
    pub fn or(self, other: Ctl) -> Self {
        Ctl::Or(Box::new(self), Box::new(other))
    }

    /// `AX` (consuming constructor).
    pub fn ax(self) -> Self {
        Ctl::Ax(Box::new(self))
    }

    /// `AG` (consuming constructor).
    pub fn ag(self) -> Self {
        Ctl::Ag(Box::new(self))
    }

    /// `A[self U other]` (consuming constructor).
    pub fn au(self, other: Ctl) -> Self {
        Ctl::Au(Box::new(self), Box::new(other))
    }
}

impl From<&Formula> for Ctl {
    fn from(f: &Formula) -> Self {
        match f {
            Formula::Prop(p) => Ctl::Prop(p.clone()),
            Formula::Implies(b, g) => Ctl::Implies(
                Box::new(Ctl::Prop(b.clone())),
                Box::new(Ctl::from(g.as_ref())),
            ),
            Formula::Ax(g) => Ctl::Ax(Box::new(Ctl::from(g.as_ref()))),
            Formula::Ag(g) => Ctl::Ag(Box::new(Ctl::from(g.as_ref()))),
            Formula::Af(g) => Ctl::Af(Box::new(Ctl::from(g.as_ref()))),
            Formula::Au(g, h) => Ctl::Au(
                Box::new(Ctl::from(g.as_ref())),
                Box::new(Ctl::from(h.as_ref())),
            ),
            Formula::And(g, h) => Ctl::And(
                Box::new(Ctl::from(g.as_ref())),
                Box::new(Ctl::from(h.as_ref())),
            ),
        }
    }
}

impl From<Formula> for Ctl {
    fn from(f: Formula) -> Self {
        Ctl::from(&f)
    }
}

impl fmt::Display for Ctl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ctl::Prop(p) => write!(f, "{p}"),
            Ctl::Not(a) => write!(f, "!({a})"),
            Ctl::And(a, b) => write!(f, "({a} & {b})"),
            Ctl::Or(a, b) => write!(f, "({a} | {b})"),
            Ctl::Implies(a, b) => write!(f, "({a} -> {b})"),
            Ctl::Ax(a) => write!(f, "AX {a}"),
            Ctl::Ex(a) => write!(f, "EX {a}"),
            Ctl::Ag(a) => write!(f, "AG {a}"),
            Ctl::Eg(a) => write!(f, "EG {a}"),
            Ctl::Af(a) => write!(f, "AF {a}"),
            Ctl::Ef(a) => write!(f, "EF {a}"),
            Ctl::Au(a, b) => write!(f, "A[{a} U {b}]"),
            Ctl::Eu(a, b) => write!(f, "E[{a} U {b}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::PropExpr;

    #[test]
    fn formula_embeds_into_ctl() {
        let f = Formula::ag(Formula::implies(
            PropExpr::atom("p"),
            Formula::ax(Formula::prop(PropExpr::atom("q"))),
        ));
        let c = Ctl::from(&f);
        assert_eq!(c.to_string(), "AG (p -> AX q)");
    }

    #[test]
    fn af_embeds_as_af() {
        let f = Formula::af(Formula::prop(PropExpr::atom("q")));
        assert_eq!(Ctl::from(&f).to_string(), "AF q");
    }

    #[test]
    fn builders_compose() {
        let c = Ctl::prop(PropExpr::atom("a"))
            .and(Ctl::prop(PropExpr::atom("b")).not())
            .ag();
        assert_eq!(c.to_string(), "AG (a & !(b))");
    }
}
