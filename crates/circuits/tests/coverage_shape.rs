//! The Section-5 experiments: coverage percentages for each circuit and
//! property-suite stage must reproduce the *shape* of the paper's
//! Table 2 and its narrative (exact values differ because the circuits
//! are rebuilt from prose descriptions of proprietary designs).

use covest_bdd::BddManager;
use covest_circuits::{circular_queue, counter, pipeline, priority_buffer};
use covest_core::{CoverageEstimator, CoverageOptions};

#[test]
fn priority_buffer_hi_is_fully_covered() {
    let bdd = BddManager::new();
    let model = priority_buffer::build(&bdd, 4, false).expect("compiles");
    let est = CoverageEstimator::new(&model.fsm);
    let a = est
        .analyze(
            "hi_cnt",
            &priority_buffer::hi_suite(4),
            &CoverageOptions::default(),
        )
        .expect("analyzes");
    assert!(a.all_hold());
    assert_eq!(a.percent(), 100.0, "paper: hi-pri 100.00%");
}

#[test]
fn priority_buffer_lo_has_the_missing_case_hole() {
    let bdd = BddManager::new();
    let model = priority_buffer::build(&bdd, 4, false).expect("compiles");
    let est = CoverageEstimator::new(&model.fsm);
    let initial = est
        .analyze(
            "lo_cnt",
            &priority_buffer::lo_suite_initial(4),
            &CoverageOptions::default(),
        )
        .expect("analyzes");
    assert!(initial.all_hold());
    assert!(
        initial.percent() > 85.0 && initial.percent() < 100.0,
        "paper: lo-pri 99.98% — high but not complete; got {:.2}%",
        initial.percent()
    );
    // Adding the missing case closes the hole.
    let mut props = priority_buffer::lo_suite_initial(4);
    props.push(priority_buffer::lo_missing_case());
    let full = est
        .analyze("lo_cnt", &props, &CoverageOptions::default())
        .expect("analyzes");
    assert!(full.all_hold());
    assert_eq!(full.percent(), 100.0);
}

#[test]
fn priority_buffer_bug_discovery_story() {
    // The paper's punchline: the hole-closing property *fails* on the
    // real design, revealing a bug that had escaped model checking.
    let bdd = BddManager::new();
    let buggy = priority_buffer::build(&bdd, 4, true).expect("compiles");
    let est = CoverageEstimator::new(&buggy.fsm);
    // The initial suite passes on the buggy design (the bug escaped).
    let initial = est
        .analyze(
            "lo_cnt",
            &priority_buffer::lo_suite_initial(4),
            &CoverageOptions::default(),
        )
        .expect("analyzes");
    assert!(initial.all_hold(), "the bug escapes the initial suite");
    assert!(initial.percent() < 100.0, "but coverage exposes a hole");
    // The new property fails, catching the bug.
    let mut props = vec![priority_buffer::lo_missing_case()];
    let catching = est
        .analyze("lo_cnt", &props, &CoverageOptions::default())
        .expect("analyzes");
    assert!(!catching.all_hold(), "the added property catches the bug");
    props.clear();
}

#[test]
fn circular_queue_wrap_stages() {
    let bdd = BddManager::new();
    let model = circular_queue::build(&bdd, 4).expect("compiles");
    let est = CoverageEstimator::new(&model.fsm);
    let opts = CoverageOptions::default();

    let s1 = circular_queue::wrap_suite_initial();
    let a1 = est.analyze("wrap", &s1, &opts).expect("analyzes");
    assert!(a1.all_hold());
    assert!(
        a1.percent() > 40.0 && a1.percent() < 75.0,
        "paper: wrap 60.08% initially; got {:.2}%",
        a1.percent()
    );

    let mut s2 = s1.clone();
    s2.extend(circular_queue::wrap_suite_additional());
    let a2 = est.analyze("wrap", &s2, &opts).expect("analyzes");
    assert!(a2.all_hold());
    assert!(
        a2.percent() > a1.percent() && a2.percent() < 100.0,
        "paper: three more properties still short of 100%; got {:.2}%",
        a2.percent()
    );

    let mut s3 = s2.clone();
    s3.extend(circular_queue::wrap_suite_final());
    let a3 = est.analyze("wrap", &s3, &opts).expect("analyzes");
    assert!(a3.all_hold());
    assert_eq!(
        a3.percent(),
        100.0,
        "paper: the stall-wraparound property reaches 100%"
    );
}

#[test]
fn circular_queue_stall_hole_is_the_last_one() {
    // The uncovered states after the +3 stage are exactly the
    // missed-wrap states the paper's trace inspection identified.
    let bdd = BddManager::new();
    let model = circular_queue::build(&bdd, 4).expect("compiles");
    let est = CoverageEstimator::new(&model.fsm);
    let mut suite = circular_queue::wrap_suite_initial();
    suite.extend(circular_queue::wrap_suite_additional());
    let a = est
        .analyze("wrap", &suite, &CoverageOptions::default())
        .expect("analyzes");
    let holes = est.uncovered_states(&a, 1000);
    assert!(!holes.is_empty());
    for state in holes {
        let missed = state
            .iter()
            .find(|(n, _)| n == "missed_wrap")
            .map(|(_, v)| *v)
            .expect("bit exists");
        assert!(
            missed,
            "every remaining hole is a stall-masked wraparound state: {state:?}"
        );
    }
}

#[test]
fn circular_queue_full_empty_complete() {
    let bdd = BddManager::new();
    let model = circular_queue::build(&bdd, 4).expect("compiles");
    let est = CoverageEstimator::new(&model.fsm);
    for (sig, suite) in [
        ("full", circular_queue::full_suite()),
        ("empty", circular_queue::empty_suite()),
    ] {
        let a = est
            .analyze(sig, &suite, &CoverageOptions::default())
            .expect("analyzes");
        assert!(a.all_hold());
        assert_eq!(a.percent(), 100.0, "paper: {sig} 100% with 2 properties");
        assert_eq!(a.properties.len(), 2);
    }
}

#[test]
fn pipeline_out_stages() {
    let bdd = BddManager::new();
    let model = pipeline::build(&bdd, 4).expect("compiles");
    let est = CoverageEstimator::new(&model.fsm);
    let opts = CoverageOptions {
        fairness: vec![pipeline::fairness()],
        ..Default::default()
    };
    let initial = est
        .analyze("out", &pipeline::out_suite_initial(4), &opts)
        .expect("analyzes");
    assert!(initial.all_hold());
    assert_eq!(initial.properties.len(), 8, "paper: 8 properties");
    assert!(
        initial.percent() > 50.0 && initial.percent() < 90.0,
        "paper: output 74.36% initially; got {:.2}%",
        initial.percent()
    );
    let mut props = pipeline::out_suite_initial(4);
    props.extend(pipeline::out_suite_hold());
    let full = est.analyze("out", &props, &opts).expect("analyzes");
    assert!(full.all_hold());
    assert_eq!(
        full.percent(),
        100.0,
        "paper: retention properties close the 3-cycle hold hole"
    );
}

#[test]
fn pipeline_holes_are_hold_or_stall_states() {
    let bdd = BddManager::new();
    let model = pipeline::build(&bdd, 4).expect("compiles");
    let est = CoverageEstimator::new(&model.fsm);
    let opts = CoverageOptions {
        fairness: vec![pipeline::fairness()],
        ..Default::default()
    };
    let a = est
        .analyze("out", &pipeline::out_suite_initial(4), &opts)
        .expect("analyzes");
    let traces = est.traces_to_uncovered(&a, 5);
    assert!(!traces.is_empty(), "traces guide the user to the holes");
}

#[test]
fn counter_motivating_example() {
    let bdd = BddManager::new();
    let model = counter::build(&bdd).expect("compiles");
    let est = CoverageEstimator::new(&model.fsm);
    let initial = est
        .analyze(
            "count",
            &counter::increment_properties(),
            &CoverageOptions::default(),
        )
        .expect("analyzes");
    assert!(initial.all_hold());
    assert!(
        initial.percent() < 100.0,
        "the intro's point: the increment property alone is not complete"
    );
    let mut props = counter::increment_properties();
    props.extend(counter::completing_properties());
    let full = est
        .analyze("count", &props, &CoverageOptions::default())
        .expect("analyzes");
    assert!(full.all_hold());
    assert_eq!(full.percent(), 100.0);
}
