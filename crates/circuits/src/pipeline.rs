//! Circuit 3: the instruction-decode pipeline.
//!
//! "A pipeline in the instruction decode stage of the processor. The
//! width of the pipeline datapath was abstracted to a single bit.
//! Properties were verified on this signal to check the correct staging
//! of data through the pipeline, rather than the actual data
//! transformations. These properties generally took the form that an
//! input to the pipeline will eventually appear at the output given
//! certain fairness conditions on the stalls."
//!
//! The paper's narrative: initial coverage for the output signal was
//! ~74%; "the biggest hole … was that we ignored the fact that the
//! pipeline output retains its value for 3 cycles while data is being
//! processed by a state machine connected to the end of the pipeline."
//!
//! We model a `stages`-deep shift pipeline with a 1-bit datapath, a
//! stall input, and a post-processing state machine that freezes the
//! pipe and holds the output for 3 cycles whenever new data reaches it.
//! [`out_suite_initial`] reproduces the hole; [`out_suite_hold`] closes
//! it. Eventuality properties use the Until operator in nested form, as
//! the paper highlights, and need the `!stall` fairness constraint.

use covest_bdd::BddManager;
use covest_ctl::{parse_formula, Formula, PropExpr};
use covest_smv::{compile, CompiledModel, ModelError};

/// Generates the pipeline deck with `stages` data stages (≥ 2).
pub fn deck(stages: usize) -> String {
    assert!(stages >= 2, "need at least 2 stages");
    let mut vars = String::new();
    for i in 1..=stages {
        vars.push_str(&format!("  d{i} : boolean;\n"));
    }
    let mut assigns = String::new();
    for i in 1..=stages {
        let src = if i == 1 {
            "din".to_owned()
        } else {
            format!("d{}", i - 1)
        };
        assigns.push_str(&format!(
            "  init(d{i}) := FALSE;\n  next(d{i}) := case adv : {src}; TRUE : d{i}; esac;\n"
        ));
    }
    let last = stages;
    format!(
        r#"
MODULE main
-- Decode pipeline: 1-bit datapath, stall input, and a post-processing
-- state machine that holds the output for 3 cycles (hold = 2, 1, 0).
VAR
{vars}  out  : boolean;
  hold : 0..2;
IVAR
  din   : boolean;
  stall : boolean;
DEFINE
  adv := !stall & hold = 0;
  processing := hold > 0;
ASSIGN
{assigns}  init(out) := FALSE;
  next(out) := case
    adv : d{last};
    TRUE : out;
  esac;
  init(hold) := 0;
  next(hold) := case
    hold > 0 : hold - 1;
    adv : 2;
    TRUE : 0;
  esac;
FAIRNESS !stall;
OBSERVED out;
"#
    )
}

/// [`deck`] plus a `stages`-deep debug shift register recording the
/// output history — the kind of observability logic real decks carry
/// and cone-of-influence reduction exists to prune. No property or
/// observed signal reads the `dbg*` chain, so a cone-reduced compile
/// drops all of it; each register carries a `covest-lint` allow pragma
/// so the sized decks still lint clean under `--strict`.
pub fn deck_sized(stages: usize) -> String {
    let mut vars = String::new();
    let mut pragmas = String::new();
    let mut assigns = String::new();
    for i in 1..=stages {
        vars.push_str(&format!("  dbg{i} : boolean;\n"));
        pragmas.push_str(&format!("-- covest-lint: allow(dead-var, dbg{i})\n"));
        let src = if i == 1 {
            "out".to_owned()
        } else {
            format!("dbg{}", i - 1)
        };
        assigns.push_str(&format!(
            "  init(dbg{i}) := FALSE;\n  next(dbg{i}) := {src};\n"
        ));
    }
    let tail = format!(
        "-- Debug shift register: records the last {stages} output values.\n\
         {pragmas}VAR\n{vars}ASSIGN\n{assigns}OBSERVED out;\n"
    );
    deck(stages).replace("OBSERVED out;\n", &tail)
}

/// Compiles the pipeline.
///
/// # Errors
///
/// Propagates [`ModelError`] (the generated decks always compile).
pub fn build(bdd: &BddManager, stages: usize) -> Result<CompiledModel, ModelError> {
    compile(bdd, &deck(stages))
}

fn f(s: &str) -> Formula {
    parse_formula(s).expect("suite formulas are in the subset")
}

/// The fairness constraint the eventuality properties need.
pub fn fairness() -> PropExpr {
    PropExpr::atom("stall").not()
}

/// The initial eight-property suite for `out` (~74% in the paper):
/// transfer into the output register, staging eventualities (including
/// the paper's nested-Until shape), and polarity checks — but nothing
/// about the 3-cycle hold.
pub fn out_suite_initial(stages: usize) -> Vec<Formula> {
    let last = stages;
    vec![
        // Transfer of both polarities into the output register.
        f(&format!(
            "AG ((adv & d{last} -> AX out) & (adv & !d{last} -> AX !out))"
        )),
        // The value at the last stage eventually appears at the output.
        f(&format!("AG (d{last} -> A[d{last} U out])")),
        f(&format!("AG (adv & !d{last} -> AX !out)")),
        // Nested-Until staging eventuality, as in the paper's Section 5.
        f(&format!(
            "AG (d{} -> A[d{} U A[d{last} U out]])",
            last - 1,
            last - 1
        )),
        // Eventualities from the pipe entrance.
        f("AG (d1 -> AF out)"),
        f("AF hold = 0"),
        // Output is eventually produced at all.
        f("AG (adv & din -> AF out)"),
        // Retention during the *first* processing cycle, and only for an
        // asserted output — the suite's author remembered one hold cycle
        // but not that there are three (nor the deasserted polarity).
        f("AG (hold = 2 & out -> AX out)"),
    ]
}

/// The hold-retention properties closing the paper's "biggest hole":
/// while the post-processing machine runs (`hold > 0`) and while the
/// pipe is stalled, the output must retain its value.
pub fn out_suite_hold() -> Vec<Formula> {
    vec![
        f("AG ((processing & out -> AX out) & (processing & !out -> AX !out))"),
        f("AG ((stall & hold = 0 & out -> AX out) & (stall & hold = 0 & !out -> AX !out))"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use covest_mc::ModelChecker;

    #[test]
    fn pipeline_semantics_sane() {
        let bdd = BddManager::new();
        let model = build(&bdd, 4).expect("compiles");
        assert_eq!(model.fairness.len(), 1);
        let mut mc = ModelChecker::new(&model.fsm);
        for fair in &model.fairness {
            mc.add_fairness(fair).expect("lowers");
        }
        for p in ["AG (adv & d4 -> AX out)", "AG (adv -> AX hold = 2)"] {
            let formula = parse_formula(p).expect(p);
            assert!(mc.holds(&formula.into()).expect("checks"), "{p}");
        }
    }

    #[test]
    fn suites_verify_under_fairness() {
        let bdd = BddManager::new();
        let model = build(&bdd, 4).expect("compiles");
        let mut mc = ModelChecker::new(&model.fsm);
        mc.add_fairness(&fairness()).expect("lowers");
        for p in out_suite_initial(4).into_iter().chain(out_suite_hold()) {
            let text = p.to_string();
            assert!(mc.holds(&p.into()).expect("checks"), "{text}");
        }
    }

    #[test]
    fn eventuality_fails_without_fairness() {
        let bdd = BddManager::new();
        let model = build(&bdd, 4).expect("compiles");
        let mut mc = ModelChecker::new(&model.fsm);
        let p = parse_formula("AG (d1 -> AF out)").expect("subset");
        assert!(
            !mc.holds(&p.into()).expect("checks"),
            "an always-stalled path defeats the eventuality without fairness"
        );
    }
}
