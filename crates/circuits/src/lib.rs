//! # covest-circuits
//!
//! The example circuits of the DAC'99 paper, rebuilt from their prose
//! descriptions, together with the property suites (including their
//! deliberate coverage holes) that drive the paper's Section 5
//! experiments:
//!
//! - [`counter`]: the introduction's modulo-5 counter with `stall` /
//!   `reset` inputs;
//! - [`toys`]: the explicit state graphs of Figures 1–3;
//! - [`priority_buffer`]: Circuit 1 — hi/lo priority entry counts as
//!   observed signals, a nearly-complete `lo_cnt` suite, and an
//!   injectable bug caught by the hole-closing property;
//! - [`circular_queue`]: Circuit 2 — wrap bit / full / empty observed
//!   signals, with the staged `wrap` suites (≈60% → more → 100%);
//! - [`pipeline`]: Circuit 3 — nested-Until eventuality properties under
//!   a `!stall` fairness constraint, with the 3-cycle output-hold hole.
//!
//! Every circuit is a generated SMV deck compiled through `covest-smv`,
//! so the models are also usable as plain-text fixtures.

pub mod circular_queue;
pub mod counter;
pub mod pipeline;
pub mod priority_buffer;
pub mod toys;
