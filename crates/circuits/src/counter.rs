//! The paper's introductory example: a modulo-5 counter with `stall` and
//! `reset` inputs, and the CTL property
//!
//! ```text
//! AG (!stall & !reset & count = C & count < 5 -> AX count = C+1)
//! ```
//!
//! The paper uses this circuit to motivate the metric: the property only
//! pins the counter's value in the *successors* of states satisfying the
//! antecedent, so it cannot claim 100% coverage by itself.

use covest_bdd::BddManager;
use covest_ctl::{parse_formula, Formula};
use covest_smv::{compile, CompiledModel, ModelError};

/// The modulo-5 counter deck (the paper's instance): exactly
/// [`deck_sized`]`(5)`.
pub fn deck() -> String {
    deck_sized(5)
}

/// A sized counter deck: counts `0..=max`, wrapping to 0, with the same
/// `stall`/`reset` inputs as the paper's modulo-5 instance. The state
/// space grows with `max` (⌈log2(max+1)⌉ state bits), giving the
/// benchmark suite a width axis for size-vs-time curves.
pub fn deck_sized(max: u32) -> String {
    format!(
        r#"
MODULE main
VAR count : 0..{max};
IVAR stall : boolean;
     reset : boolean;
ASSIGN
  init(count) := 0;
  next(count) := case
    reset : 0;
    stall : count;
    count < {max} : count + 1;
    TRUE : 0;
  esac;
OBSERVED count;
"#
    )
}

/// Compiles the counter.
///
/// # Errors
///
/// Propagates [`ModelError`] (the bundled deck always compiles).
pub fn build(bdd: &BddManager) -> Result<CompiledModel, ModelError> {
    compile(bdd, &deck())
}

/// The increment properties from the paper's introduction, one per
/// counter value `C < 5`.
pub fn increment_properties() -> Vec<Formula> {
    (0..5)
        .map(|c| {
            parse_formula(&format!(
                "AG (!stall & !reset & count = {c} & count < 5 -> AX count = {})",
                c + 1
            ))
            .expect("in subset")
        })
        .collect()
}

/// The increment properties for a sized counter deck
/// ([`deck_sized`]`(max)`), one per counter value `C < max`.
pub fn increment_properties_sized(max: u32) -> Vec<Formula> {
    (0..max)
        .map(|c| {
            parse_formula(&format!(
                "AG (!stall & !reset & count = {c} & count < {max} -> AX count = {})",
                c + 1
            ))
            .expect("in subset")
        })
        .collect()
}

/// Compiles a sized counter deck.
///
/// # Errors
///
/// Propagates [`ModelError`] (generated decks always compile).
pub fn build_sized(bdd: &BddManager, max: u32) -> Result<CompiledModel, ModelError> {
    compile(bdd, &deck_sized(max))
}

/// The additional properties needed for full coverage of `count`:
/// wrap, stall-hold, and reset cases.
pub fn completing_properties() -> Vec<Formula> {
    let mut props = vec![
        parse_formula("AG (!stall & !reset & count = 5 -> AX count = 0)").expect("in subset"),
        parse_formula("AG (reset -> AX count = 0)").expect("in subset"),
    ];
    for c in 0..=5 {
        props.push(
            parse_formula(&format!(
                "AG (stall & !reset & count = {c} -> AX count = {c})"
            ))
            .expect("in subset"),
        );
    }
    props
}

#[cfg(test)]
mod tests {
    use super::*;
    use covest_core::{CoverageEstimator, CoverageOptions};
    use covest_mc::ModelChecker;

    #[test]
    fn deck_is_the_sized_deck_at_five() {
        // `deck()` must stay byte-identical to the historical literal:
        // the checked-in `models/counter.smv` and the CI deck-sync gate
        // both depend on it.
        let literal = "\nMODULE main\nVAR count : 0..5;\nIVAR stall : boolean;\n     reset : boolean;\nASSIGN\n  init(count) := 0;\n  next(count) := case\n    reset : 0;\n    stall : count;\n    count < 5 : count + 1;\n    TRUE : 0;\n  esac;\nOBSERVED count;\n";
        assert_eq!(deck(), literal);
    }

    #[test]
    fn sized_counter_counts_and_covers() {
        let bdd = BddManager::new();
        let model = build_sized(&bdd, 9).expect("compiles");
        let mut mc = ModelChecker::new(&model.fsm);
        let props = increment_properties_sized(9);
        assert_eq!(props.len(), 9);
        for p in props.clone() {
            assert!(mc.holds(&p.into()).expect("checks"));
        }
        // Same shape as the paper's instance: the increment suite alone
        // holds but is incomplete.
        let est = CoverageEstimator::new(&model.fsm);
        let a = est
            .analyze("count", &props, &CoverageOptions::default())
            .expect("analyzes");
        assert!(a.all_hold());
        assert!(a.percent() > 0.0 && a.percent() < 100.0);
    }

    #[test]
    fn counter_counts_modulo_5() {
        let bdd = BddManager::new();
        let model = build(&bdd).expect("compiles");
        let mut mc = ModelChecker::new(&model.fsm);
        for p in increment_properties() {
            assert!(mc.holds(&p.into()).expect("checks"));
        }
        for p in completing_properties() {
            assert!(mc.holds(&p.into()).expect("checks"));
        }
    }

    #[test]
    fn increment_properties_alone_are_incomplete() {
        let bdd = BddManager::new();
        let model = build(&bdd).expect("compiles");
        let est = CoverageEstimator::new(&model.fsm);
        let a = est
            .analyze(
                "count",
                &increment_properties(),
                &CoverageOptions::default(),
            )
            .expect("analyzes");
        assert!(a.all_hold());
        assert!(
            a.percent() > 0.0 && a.percent() < 100.0,
            "the paper's point: this suite is incomplete, got {:.2}%",
            a.percent()
        );
    }

    #[test]
    fn completed_suite_reaches_full_coverage() {
        let bdd = BddManager::new();
        let model = build(&bdd).expect("compiles");
        let est = CoverageEstimator::new(&model.fsm);
        let mut props = increment_properties();
        props.extend(completing_properties());
        let a = est
            .analyze("count", &props, &CoverageOptions::default())
            .expect("analyzes");
        assert!(a.all_hold());
        assert_eq!(a.percent(), 100.0);
    }
}
