//! The paper's introductory example: a modulo-5 counter with `stall` and
//! `reset` inputs, and the CTL property
//!
//! ```text
//! AG (!stall & !reset & count = C & count < 5 -> AX count = C+1)
//! ```
//!
//! The paper uses this circuit to motivate the metric: the property only
//! pins the counter's value in the *successors* of states satisfying the
//! antecedent, so it cannot claim 100% coverage by itself.

use covest_bdd::BddManager;
use covest_ctl::{parse_formula, Formula};
use covest_smv::{compile, CompiledModel, ModelError};

/// The modulo-5 counter deck.
pub fn deck() -> String {
    r#"
MODULE main
VAR count : 0..5;
IVAR stall : boolean;
     reset : boolean;
ASSIGN
  init(count) := 0;
  next(count) := case
    reset : 0;
    stall : count;
    count < 5 : count + 1;
    TRUE : 0;
  esac;
OBSERVED count;
"#
    .to_owned()
}

/// Compiles the counter.
///
/// # Errors
///
/// Propagates [`ModelError`] (the bundled deck always compiles).
pub fn build(bdd: &BddManager) -> Result<CompiledModel, ModelError> {
    compile(bdd, &deck())
}

/// The increment properties from the paper's introduction, one per
/// counter value `C < 5`.
pub fn increment_properties() -> Vec<Formula> {
    (0..5)
        .map(|c| {
            parse_formula(&format!(
                "AG (!stall & !reset & count = {c} & count < 5 -> AX count = {})",
                c + 1
            ))
            .expect("in subset")
        })
        .collect()
}

/// The additional properties needed for full coverage of `count`:
/// wrap, stall-hold, and reset cases.
pub fn completing_properties() -> Vec<Formula> {
    let mut props = vec![
        parse_formula("AG (!stall & !reset & count = 5 -> AX count = 0)").expect("in subset"),
        parse_formula("AG (reset -> AX count = 0)").expect("in subset"),
    ];
    for c in 0..=5 {
        props.push(
            parse_formula(&format!(
                "AG (stall & !reset & count = {c} -> AX count = {c})"
            ))
            .expect("in subset"),
        );
    }
    props
}

#[cfg(test)]
mod tests {
    use super::*;
    use covest_core::{CoverageEstimator, CoverageOptions};
    use covest_mc::ModelChecker;

    #[test]
    fn counter_counts_modulo_5() {
        let bdd = BddManager::new();
        let model = build(&bdd).expect("compiles");
        let mut mc = ModelChecker::new(&model.fsm);
        for p in increment_properties() {
            assert!(mc.holds(&p.into()).expect("checks"));
        }
        for p in completing_properties() {
            assert!(mc.holds(&p.into()).expect("checks"));
        }
    }

    #[test]
    fn increment_properties_alone_are_incomplete() {
        let bdd = BddManager::new();
        let model = build(&bdd).expect("compiles");
        let est = CoverageEstimator::new(&model.fsm);
        let a = est
            .analyze(
                "count",
                &increment_properties(),
                &CoverageOptions::default(),
            )
            .expect("analyzes");
        assert!(a.all_hold());
        assert!(
            a.percent() > 0.0 && a.percent() < 100.0,
            "the paper's point: this suite is incomplete, got {:.2}%",
            a.percent()
        );
    }

    #[test]
    fn completed_suite_reaches_full_coverage() {
        let bdd = BddManager::new();
        let model = build(&bdd).expect("compiles");
        let est = CoverageEstimator::new(&model.fsm);
        let mut props = increment_properties();
        props.extend(completing_properties());
        let a = est
            .analyze("count", &props, &CoverageOptions::default())
            .expect("analyzes");
        assert!(a.all_hold());
        assert_eq!(a.percent(), 100.0);
    }
}
