//! The explicit state-transition graphs of the paper's Figures 1–3.

use covest_fsm::Stg;

/// Figure 1: covered state for `AG (p1 -> AX AX q)`.
///
/// An initial `p1` state branches into two paths; the states exactly two
/// steps away carry `q` and are the *covered* states. A further `q`
/// state exists elsewhere but is not demanded by the property, hence not
/// covered.
pub fn figure1() -> Stg {
    let mut stg = Stg::new("figure1");
    stg.add_states(7);
    stg.add_path(&[0, 1, 2]); // branch A: 2 steps to q-state 2
    stg.add_path(&[0, 3, 4]); // branch B: 2 steps to q-state 4
    stg.add_edge(2, 5);
    stg.add_edge(4, 5);
    stg.add_edge(5, 6);
    stg.add_edge(6, 5);
    stg.mark_initial(0);
    stg.label(0, "p1");
    stg.label(2, "q");
    stg.label(4, "q");
    stg.label(6, "q"); // incidental q, not covered
    stg
}

/// The covered state ids of Figure 1 for `AG (p1 -> AX AX q)` observing
/// `q`.
pub const FIGURE1_COVERED: &[usize] = &[2, 4];

/// Figure 2: computing covered states for `A[p1 U q]`.
///
/// A chain of `p1` states leads to the first `q` state. As drawn in the
/// paper, `p1` also holds in that first `q` state — which is why the
/// *untransformed* Definition 3 assigns this property **zero** coverage
/// (flipping `q` there leaves the property satisfied via `p1`), while
/// the observability-transformed formula covers exactly the first `q`
/// state.
pub fn figure2() -> Stg {
    let mut stg = Stg::new("figure2");
    stg.add_states(6);
    stg.add_path(&[0, 1, 2, 3, 4, 5]);
    stg.add_edge(5, 5);
    stg.mark_initial(0);
    for s in 0..5 {
        stg.label(s, "p1");
    }
    stg.label(4, "q");
    stg.label(5, "q");
    stg
}

/// The covered state id of Figure 2 for `A[p1 U q]` observing `q`, under
/// the observability transformation.
pub const FIGURE2_COVERED: &[usize] = &[4];

/// Figure 3: the state labelling used by `traverse` / `firstreached` for
/// `A[f1 U f2]`.
///
/// A branching graph: from the start state, paths run through `f1`
/// states until their first `f2` state. `traverse` marks the `f1`
/// prefix; `firstreached` marks the first `f2` state of each path.
pub fn figure3() -> Stg {
    let mut stg = Stg::new("figure3");
    stg.add_states(9);
    // Branch A: 0 → 1 → 2 → 3(f2)
    stg.add_path(&[0, 1, 2, 3]);
    // Branch B: 0 → 4 → 5(f2)
    stg.add_path(&[0, 4, 5]);
    // Branch C: 1 → 6 → 7(f2)
    stg.add_path(&[1, 6, 7]);
    // Beyond-first f2 continues to 8 (also f2, but not first-reached).
    stg.add_edge(3, 8);
    stg.add_edge(5, 8);
    stg.add_edge(7, 8);
    stg.add_edge(8, 8);
    stg.mark_initial(0);
    for s in [0, 1, 2, 4, 6] {
        stg.label(s, "f1");
    }
    for s in [3, 5, 7, 8] {
        stg.label(s, "f2");
    }
    stg
}

/// `traverse(S0, f1, f2)` states of Figure 3.
pub const FIGURE3_TRAVERSE: &[usize] = &[0, 1, 2, 4, 6];
/// `firstreached(S0, f2)` states of Figure 3.
pub const FIGURE3_FIRSTREACHED: &[usize] = &[3, 5, 7];

#[cfg(test)]
mod tests {
    use super::*;
    use covest_bdd::{BddManager, Func};
    use covest_core::CoveredSets;
    use covest_ctl::parse_formula;

    fn states_fn(
        bdd: &BddManager,
        stg: &Stg,
        fsm: &covest_fsm::SymbolicFsm,
        ids: &[usize],
    ) -> Func {
        let mut acc = bdd.constant(false);
        for &s in ids {
            acc = acc.or(&stg.state_fn(fsm, s));
        }
        acc
    }

    #[test]
    fn figure1_covered_states() {
        let bdd = BddManager::new();
        let stg = figure1();
        let fsm = stg.compile(&bdd).expect("compiles");
        let mut cs = CoveredSets::new(&fsm, "q").expect("q exists");
        let prop = parse_formula("AG (p1 -> AX AX q)").expect("subset");
        assert!(cs.verify(&prop).expect("verifies"));
        let covered = cs.covered_from_init(&prop).expect("covered");
        let expect = states_fn(&bdd, &stg, &fsm, FIGURE1_COVERED);
        assert_eq!(covered, expect);
    }

    #[test]
    fn figure2_covered_states() {
        let bdd = BddManager::new();
        let stg = figure2();
        let fsm = stg.compile(&bdd).expect("compiles");
        let mut cs = CoveredSets::new(&fsm, "q").expect("q exists");
        let prop = parse_formula("A[p1 U q]").expect("subset");
        assert!(cs.verify(&prop).expect("verifies"));
        let covered = cs.covered_from_init(&prop).expect("covered");
        let expect = states_fn(&bdd, &stg, &fsm, FIGURE2_COVERED);
        assert_eq!(covered, expect);
    }

    #[test]
    fn figure3_traverse_and_firstreached() {
        let bdd = BddManager::new();
        let stg = figure3();
        let fsm = stg.compile(&bdd).expect("compiles");
        let mut cs = CoveredSets::new(&fsm, "f2").expect("f2 exists");
        let f1 = parse_formula("f1").expect("subset");
        let f2 = parse_formula("f2").expect("subset");
        let trav = cs.traverse(fsm.init(), &f1, &f2).expect("traverse");
        let expect_t = states_fn(&bdd, &stg, &fsm, FIGURE3_TRAVERSE);
        assert_eq!(trav, expect_t);
        let first = cs.firstreached(fsm.init(), &f2).expect("firstreached");
        let expect_f = states_fn(&bdd, &stg, &fsm, FIGURE3_FIRSTREACHED);
        assert_eq!(first, expect_f);
    }
}
