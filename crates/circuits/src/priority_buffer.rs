//! Circuit 1: the priority buffer.
//!
//! "A priority buffer which schedules and stores incoming entries
//! according to their priorities (high or low). … Given the number of
//! entries already in the buffer and the number of incoming entries, the
//! properties specify the correct number of entries in the buffer at the
//! next clock. … High and low priority entries are checked by different
//! properties, and their counts are considered as the observed signals."
//!
//! The paper's narrative for this circuit: the verified property set
//! *looked* complete, but coverage estimation exposed a missing case —
//! "when the buffer is empty and low priority entries are incoming, the
//! entries should be stored". Writing that property and re-running the
//! model checker **failed, revealing a real bug in the design**. We
//! reproduce the story with [`deck`]'s `bug` flag: the buggy variant
//! drops low-priority entries arriving at an empty buffer.

use covest_bdd::BddManager;
use covest_ctl::{parse_formula, Formula};
use covest_smv::{compile, CompiledModel, ModelError};

/// Maximum number of entries arriving per cycle (per priority class).
pub const MAX_INCOMING: i64 = 2;

/// Generates the priority-buffer deck.
///
/// `capacity` is the number of buffer slots (≥ 2). With `bug` set, the
/// storage logic drops low-priority entries when the buffer is empty and
/// no high-priority entry arrives in the same cycle — the defect the
/// paper's coverage hole exposed.
pub fn deck(capacity: i64, bug: bool) -> String {
    assert!(capacity >= 2, "capacity must be at least 2");
    let n = capacity;
    let buggy_arm = if bug {
        "\n    hi_cnt = 0 & lo_cnt = 0 & in_hi = 0 : 0;  -- BUG: drops entries\n"
    } else {
        "\n"
    };
    format!(
        r#"
MODULE main
-- Priority buffer: stores incoming entries by priority class.
VAR
  hi_cnt : 0..{n};
  lo_cnt : 0..{n};
  -- Status register: how many low-priority entries were accepted in the
  -- previous cycle (an acknowledge output of the real design). No
  -- property or observed signal reads it, and that is intentional.
  -- covest-lint: allow(dead-var, lo_accepted)
  lo_accepted : 0..{MAX_INCOMING};
IVAR
  in_hi : 0..{MAX_INCOMING};
  in_lo : 0..{MAX_INCOMING};
  deq   : boolean;
DEFINE
  total := hi_cnt + lo_cnt;
  free_slots := case
    total >= {n} : 0;
    TRUE : {n} - total;
  esac;
  stored_hi := case
    in_hi <= free_slots : in_hi;
    TRUE : free_slots;
  esac;
  free_after_hi := free_slots - stored_hi;
  stored_lo := case{buggy_arm}    in_lo <= free_after_hi : in_lo;
    TRUE : free_after_hi;
  esac;
  hi_deq := deq & hi_cnt > 0;
  lo_deq := deq & hi_cnt = 0 & lo_cnt > 0;
ASSIGN
  init(hi_cnt) := 0;
  init(lo_cnt) := 0;
  next(hi_cnt) := case
    hi_deq : hi_cnt + stored_hi - 1;
    TRUE   : hi_cnt + stored_hi;
  esac;
  next(lo_cnt) := case
    lo_deq : lo_cnt + stored_lo - 1;
    TRUE   : lo_cnt + stored_lo;
  esac;
  init(lo_accepted) := 0;
  next(lo_accepted) := stored_lo;
OBSERVED hi_cnt, lo_cnt;
"#
    )
}

/// Compiles the buffer.
///
/// # Errors
///
/// Propagates [`ModelError`] (the generated decks always compile).
pub fn build(bdd: &BddManager, capacity: i64, bug: bool) -> Result<CompiledModel, ModelError> {
    compile(bdd, &deck(capacity, bug))
}

fn conj(parts: Vec<String>) -> Formula {
    let joined = parts.join(" & ");
    parse_formula(&format!("AG ({joined})")).expect("suite formulas are in the subset")
}

/// The five-property suite for observed signal `hi_cnt` (achieves 100%).
pub fn hi_suite(capacity: i64) -> Vec<Formula> {
    let n = capacity;
    let mut props = Vec::new();
    // P1: no dequeue — stored high entries accumulate exactly.
    let mut cases = Vec::new();
    for b in 0..=n {
        for i in 0..=MAX_INCOMING {
            let expect = (b + i).min(n); // lo_cnt=anything: clamp via free
            let _ = expect;
            // Antecedent pins hi_cnt, in_hi, and requires room for all of
            // them regardless of lo_cnt via total.
            cases.push(format!(
                "(!deq & hi_cnt = {b} & in_hi = {i} & total <= {} -> AX hi_cnt = {})",
                n - i,
                b + i
            ));
        }
    }
    props.push(conj(cases));
    // P2: no dequeue, buffer already full — count holds (per value).
    let mut cases = Vec::new();
    for b in 0..=n {
        cases.push(format!(
            "(!deq & total = {n} & hi_cnt = {b} -> AX hi_cnt = {b})"
        ));
    }
    props.push(conj(cases));
    // P3: dequeue with high entries present and no incoming.
    let mut cases = Vec::new();
    for b in 1..=n {
        cases.push(format!(
            "(deq & hi_cnt = {b} & in_hi = 0 -> AX hi_cnt = {})",
            b - 1
        ));
    }
    props.push(conj(cases));
    // P4: dequeue with incoming high entries.
    let mut cases = Vec::new();
    for b in 1..=n {
        for i in 1..=MAX_INCOMING {
            cases.push(format!(
                "(deq & hi_cnt = {b} & in_hi = {i} & total <= {} -> AX hi_cnt = {})",
                n - i,
                b + i - 1
            ));
        }
    }
    props.push(conj(cases));
    // P5: empty buffer, high entries incoming — they are stored.
    let mut cases = Vec::new();
    for i in 0..=MAX_INCOMING {
        cases.push(format!(
            "(hi_cnt = 0 & lo_cnt = 0 & in_hi = {i} & !deq -> AX hi_cnt = {i})"
        ));
    }
    props.push(conj(cases));
    props
}

/// The initial five-property suite for `lo_cnt` — the paper's suite with
/// the **missing case**: it never checks an empty buffer receiving only
/// low-priority entries, leaving a coverage hole just below 100%.
pub fn lo_suite_initial(capacity: i64) -> Vec<Formula> {
    let n = capacity;
    let mut props = Vec::new();
    // P1: no dequeue, low entries already present — they accumulate.
    // (Note: this antecedent requires lo_cnt >= 1, which is exactly the
    // paper's missing case — nobody checked the empty buffer.)
    let mut cases = Vec::new();
    for b in 1..=n {
        for i in 0..=MAX_INCOMING {
            cases.push(format!(
                "(!deq & lo_cnt = {b} & in_lo = {i} & in_hi = 0 & total <= {} \
                 -> AX lo_cnt = {})",
                n - i,
                b + i
            ));
        }
    }
    props.push(conj(cases));
    // P2: full buffer holds (per value).
    let mut cases = Vec::new();
    for b in 0..=n {
        cases.push(format!(
            "(!deq & total = {n} & lo_cnt = {b} -> AX lo_cnt = {b})"
        ));
    }
    props.push(conj(cases));
    // P3: dequeue serves high first — low count unchanged.
    let mut cases = Vec::new();
    for b in 0..=n {
        cases.push(format!(
            "(deq & hi_cnt > 0 & lo_cnt = {b} & in_lo = 0 -> AX lo_cnt = {b})"
        ));
    }
    props.push(conj(cases));
    // P4: dequeue of a low entry when no high entries.
    let mut cases = Vec::new();
    for b in 1..=n {
        cases.push(format!(
            "(deq & hi_cnt = 0 & in_hi = 0 & lo_cnt = {b} & in_lo = 0 -> AX lo_cnt = {})",
            b - 1
        ));
    }
    props.push(conj(cases));
    // P5: incoming low entries with high entries present.
    let mut cases = Vec::new();
    for b in 0..=n {
        for i in 1..=MAX_INCOMING {
            cases.push(format!(
                "(!deq & hi_cnt > 0 & lo_cnt = {b} & in_lo = {i} & in_hi = 0 & total <= {} \
                 -> AX lo_cnt = {})",
                n - i,
                b + i
            ));
        }
    }
    props.push(conj(cases));
    props
}

/// The property closing the hole: an **empty** buffer receiving only
/// low-priority entries must store them. On the buggy design this
/// property fails — the paper's "escaped bug" moment.
pub fn lo_missing_case() -> Formula {
    let mut cases = Vec::new();
    for i in 1..=MAX_INCOMING {
        cases.push(format!(
            "(hi_cnt = 0 & lo_cnt = 0 & in_hi = 0 & in_lo = {i} & !deq -> AX lo_cnt = {i})"
        ));
    }
    conj(cases)
}

#[cfg(test)]
mod tests {
    use super::*;
    use covest_mc::ModelChecker;

    #[test]
    fn buffer_semantics_sane() {
        let bdd = BddManager::new();
        let model = build(&bdd, 4, false).expect("compiles");
        let mut mc = ModelChecker::new(&model.fsm);
        // Occupancy never exceeds capacity.
        let inv = parse_formula("AG total <= 4").expect("subset");
        assert!(mc.holds(&inv.into()).expect("checks"));
        // Storing two high entries from empty.
        let p = parse_formula("AG (hi_cnt = 0 & lo_cnt = 0 & in_hi = 2 & !deq -> AX hi_cnt = 2)")
            .expect("subset");
        assert!(mc.holds(&p.into()).expect("checks"));
    }

    #[test]
    fn bug_drops_low_entries_into_empty_buffer() {
        let bdd = BddManager::new();
        let model = build(&bdd, 4, true).expect("compiles");
        let mut mc = ModelChecker::new(&model.fsm);
        let missing = lo_missing_case();
        assert!(
            !mc.holds(&missing.into()).expect("checks"),
            "the missing-case property must fail on the buggy design"
        );
        // But on the fixed design it holds.
        let bdd2 = BddManager::new();
        let fixed = build(&bdd2, 4, false).expect("compiles");
        let mut mc2 = ModelChecker::new(&fixed.fsm);
        assert!(mc2.holds(&lo_missing_case().into()).expect("checks"));
    }
}
