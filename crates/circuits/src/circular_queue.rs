//! Circuit 2: the circular queue.
//!
//! "A circular queue controlled by a read pointer, a write pointer and a
//! wrap bit that toggles whenever either pointer wraps around the queue.
//! It also has stall, clear and reset signals as inputs."
//!
//! The paper's narrative: `full` and `empty` reached 100% coverage with
//! two properties each, but the initial five-property suite for the
//! `wrap` bit reached only ~60%. Three additional properties still did
//! not close the hole; tracing inputs to the remaining uncovered states
//! revealed that **the wrap bit was never checked when `stall` was
//! asserted while the write pointer wraps** — a classic missed corner
//! case. One further property brought coverage to 100%.
//!
//! [`wrap_suite_initial`], [`wrap_suite_additional`] and
//! [`wrap_suite_final`] reproduce the three stages.

use covest_bdd::BddManager;
use covest_ctl::{parse_formula, Formula};
use covest_smv::{compile, CompiledModel, ModelError};

/// Generates the circular-queue deck with `depth` slots (≥ 2).
pub fn deck(depth: i64) -> String {
    assert!(depth >= 2, "depth must be at least 2");
    let d = depth;
    let last = d - 1;
    format!(
        r#"
MODULE main
-- Circular queue: read/write pointers plus a wrap parity bit.
VAR
  rp   : 0..{last};
  wp   : 0..{last};
  wrap : boolean;
  -- Status register: a write-pointer wraparound was requested while the
  -- queue was stalled last cycle (the corner case of the paper's hole).
  missed_wrap : boolean;
IVAR
  rd    : boolean;
  wr    : boolean;
  stall : boolean;
  clear : boolean;
  reset : boolean;
DEFINE
  ptr_eq   := rp = wp;
  full     := ptr_eq & wrap;
  empty    := ptr_eq & !wrap;
  active   := !stall & !clear & !reset;
  do_write := wr & !full & active;
  do_read  := rd & !empty & active;
  wp_wraps := do_write & wp = {last};
  rp_wraps := do_read & rp = {last};
ASSIGN
  init(rp) := 0;
  init(wp) := 0;
  init(wrap) := FALSE;
  next(wp) := case
    reset | clear : 0;
    do_write : (wp + 1) mod {d};
    TRUE : wp;
  esac;
  next(rp) := case
    reset | clear : 0;
    do_read : (rp + 1) mod {d};
    TRUE : rp;
  esac;
  next(wrap) := case
    reset | clear : FALSE;
    wp_wraps & rp_wraps : wrap;
    wp_wraps | rp_wraps : !wrap;
    TRUE : wrap;
  esac;
  init(missed_wrap) := FALSE;
  next(missed_wrap) := stall & wr & wp = {last} & !reset & !clear;
OBSERVED wrap, full, empty;
"#
    )
}

/// Compiles the queue.
///
/// # Errors
///
/// Propagates [`ModelError`] (the generated decks always compile).
pub fn build(bdd: &BddManager, depth: i64) -> Result<CompiledModel, ModelError> {
    compile(bdd, &deck(depth))
}

fn f(s: &str) -> Formula {
    parse_formula(s).expect("suite formulas are in the subset")
}

/// The initial five-property suite for `wrap` (≈60% coverage, as in the
/// paper): reset/clear behaviour, both toggle directions, and the
/// idle-hold case — but nothing about stalls.
pub fn wrap_suite_initial() -> Vec<Formula> {
    vec![
        f("AG (reset -> AX !wrap)"),
        f("AG (!reset & clear -> AX !wrap)"),
        f("AG ((wp_wraps & !rp_wraps & !wrap -> AX wrap) & (wp_wraps & !rp_wraps & wrap -> AX !wrap))"),
        f("AG ((rp_wraps & !wp_wraps & !wrap -> AX wrap) & (rp_wraps & !wp_wraps & wrap -> AX !wrap))"),
        f("AG (active & !wr & !rd & !wrap -> AX !wrap)"),
    ]
}

/// The three additional properties (still short of 100%): holds with
/// `wrap` set, writes to a full queue, reads from an empty queue, and
/// simultaneous wraps.
pub fn wrap_suite_additional() -> Vec<Formula> {
    vec![
        f("AG (active & !wr & !rd & wrap -> AX wrap)"),
        f("AG ((active & wr & full & !rd & wrap -> AX wrap) & (active & rd & empty & !wr & !wrap -> AX !wrap))"),
        f("AG ((wp_wraps & rp_wraps & wrap -> AX wrap) & (wp_wraps & rp_wraps & !wrap -> AX !wrap))"),
    ]
}

/// The final property closing the hole the paper describes: with `stall`
/// asserted the wrap bit must hold — **including** the cycle where the
/// write pointer would have wrapped.
pub fn wrap_suite_final() -> Vec<Formula> {
    vec![f(
        "AG ((stall & !clear & !reset & wrap -> AX wrap) & (stall & !clear & !reset & !wrap -> AX !wrap))",
    )]
}

/// Extra hold properties needed beyond the paper's narrative to reach
/// exactly 100% on our rebuilt queue: non-wrapping writes/reads hold the
/// bit too (the paper's suites covered these among the initial five).
pub fn wrap_suite_nonwrapping(depth: i64) -> Vec<Formula> {
    let last = depth - 1;
    vec![
        f(&format!(
            "AG ((active & do_write & wp < {last} & !rp_wraps & wrap -> AX wrap) & \
             (active & do_write & wp < {last} & !rp_wraps & !wrap -> AX !wrap))"
        )),
        f(&format!(
            "AG ((active & do_read & rp < {last} & !wp_wraps & wrap -> AX wrap) & \
             (active & do_read & rp < {last} & !wp_wraps & !wrap -> AX !wrap))"
        )),
    ]
}

/// The two-property suite for `full` (100% in the paper).
pub fn full_suite() -> Vec<Formula> {
    vec![
        f("AG (ptr_eq & wrap -> full)"),
        f("AG (!ptr_eq -> !full) & AG (ptr_eq & !wrap -> !full)"),
    ]
}

/// The two-property suite for `empty` (100% in the paper).
pub fn empty_suite() -> Vec<Formula> {
    vec![
        f("AG (ptr_eq & !wrap -> empty)"),
        f("AG (!ptr_eq -> !empty) & AG (ptr_eq & wrap -> !empty)"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use covest_mc::ModelChecker;

    #[test]
    fn queue_semantics_sane() {
        let bdd = BddManager::new();
        let model = build(&bdd, 4).expect("compiles");
        let mut mc = ModelChecker::new(&model.fsm);
        for p in [
            "AG (reset -> AX empty)",
            "AG (empty -> !full)",
            "AG (do_write & wp = 1 -> AX wp = 2)",
            "AG (wp_wraps & !rp_wraps & !wrap -> AX wrap)",
        ] {
            let formula = parse_formula(p).expect(p);
            assert!(mc.holds(&formula.into()).expect("checks"), "{p}");
        }
    }

    #[test]
    fn wrap_suites_verify() {
        let bdd = BddManager::new();
        let model = build(&bdd, 4).expect("compiles");
        let mut mc = ModelChecker::new(&model.fsm);
        for p in wrap_suite_initial()
            .into_iter()
            .chain(wrap_suite_additional())
            .chain(wrap_suite_final())
        {
            let text = p.to_string();
            assert!(mc.holds(&p.into()).expect("checks"), "{text}");
        }
    }

    #[test]
    fn full_empty_suites_verify() {
        let bdd = BddManager::new();
        let model = build(&bdd, 4).expect("compiles");
        let mut mc = ModelChecker::new(&model.fsm);
        for p in full_suite().into_iter().chain(empty_suite()) {
            let text = p.to_string();
            assert!(mc.holds(&p.into()).expect("checks"), "{text}");
        }
    }
}
