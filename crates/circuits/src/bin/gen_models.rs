//! Regenerates the SMV decks under `models/` from the circuit generators,
//! so the CLI integration tests and the checked-in fixtures stay in sync
//! with `covest-circuits`.
//!
//! Usage: `cargo run -p covest-circuits --bin gen-models [DIR] [--size N]`
//! (DIR defaults to `models/` relative to the workspace root).
//!
//! Without `--size`, writes the four fixed decks the test suite pins.
//! With `--size N`, writes *only* the sized scaling decks instead —
//! `counter_m{N}.smv` (counts `0..=N`) and `pipeline_d{N}.smv` (N stages)
//! — giving benchmarks a size axis without disturbing the checked-in
//! fixtures or the CI deck-sync gate.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::exit;

use covest_circuits::{counter, pipeline, priority_buffer};
use covest_ctl::Formula;

fn with_specs(mut deck: String, specs: &[Formula]) -> String {
    for spec in specs {
        writeln!(deck, "SPEC {spec};").expect("write to string");
    }
    deck
}

fn usage() -> ! {
    eprintln!("usage: gen-models [DIR] [--size N]");
    exit(2);
}

fn main() {
    let mut dir: Option<PathBuf> = None;
    let mut size: Option<u32> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--size" {
            let n = args.next().unwrap_or_else(|| usage());
            size = Some(n.parse().unwrap_or_else(|_| usage()));
        } else if dir.is_none() {
            dir = Some(PathBuf::from(arg));
        } else {
            usage();
        }
    }
    let dir = dir.unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../models"));
    std::fs::create_dir_all(&dir).expect("create models dir");

    let decks: Vec<(String, String)> = match size {
        Some(n) => {
            if n == 0 {
                usage();
            }
            sized_decks(n)
        }
        None => default_decks(),
    };

    for (name, deck) in decks {
        let path = dir.join(name);
        std::fs::write(&path, deck).expect("write deck");
        println!("wrote {}", path.display());
    }
}

/// The four fixed decks the checked-in `models/` directory pins.
fn default_decks() -> Vec<(String, String)> {
    let counter_deck = with_specs(counter::deck(), &counter::increment_properties());

    let capacity = 4;
    let mut buffer_suite = priority_buffer::lo_suite_initial(capacity);
    buffer_suite.push(priority_buffer::lo_missing_case());
    buffer_suite.extend(priority_buffer::hi_suite(capacity));
    let buffer_deck = with_specs(priority_buffer::deck(capacity, false), &buffer_suite);
    let buggy_deck = with_specs(priority_buffer::deck(capacity, true), &buffer_suite);

    let stages = 4;
    let mut pipeline_suite = pipeline::out_suite_initial(stages);
    pipeline_suite.extend(pipeline::out_suite_hold());
    let pipeline_deck = with_specs(pipeline::deck(stages), &pipeline_suite);

    vec![
        ("counter.smv".to_owned(), counter_deck),
        ("priority_buffer.smv".to_owned(), buffer_deck),
        ("priority_buffer_buggy.smv".to_owned(), buggy_deck),
        ("pipeline.smv".to_owned(), pipeline_deck),
    ]
}

/// The sized scaling decks for a given size `n`: a counter counting
/// `0..=n` and an `n`-stage pipeline, each with its property suite.
fn sized_decks(n: u32) -> Vec<(String, String)> {
    let counter_deck = with_specs(
        counter::deck_sized(n),
        &counter::increment_properties_sized(n),
    );

    let stages = n as usize;
    let mut pipeline_suite = pipeline::out_suite_initial(stages);
    pipeline_suite.extend(pipeline::out_suite_hold());
    // The sized pipeline carries the debug chain: a cone-prunable tail
    // that gives the COI benchmark something real to cut away.
    let pipeline_deck = with_specs(pipeline::deck_sized(stages), &pipeline_suite);

    vec![
        (format!("counter_m{n}.smv"), counter_deck),
        (format!("pipeline_d{n}.smv"), pipeline_deck),
    ]
}
