//! Regenerates the SMV decks under `models/` from the circuit generators,
//! so the CLI integration tests and the checked-in fixtures stay in sync
//! with `covest-circuits`.
//!
//! Usage: `cargo run -p covest-circuits --bin gen-models [DIR]`
//! (DIR defaults to `models/` relative to the workspace root).

use std::fmt::Write as _;
use std::path::PathBuf;

use covest_circuits::{counter, pipeline, priority_buffer};
use covest_ctl::Formula;

fn with_specs(mut deck: String, specs: &[Formula]) -> String {
    for spec in specs {
        writeln!(deck, "SPEC {spec};").expect("write to string");
    }
    deck
}

fn main() {
    let dir = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../models"));
    std::fs::create_dir_all(&dir).expect("create models dir");

    let counter_deck = with_specs(counter::deck(), &counter::increment_properties());

    let capacity = 4;
    let mut buffer_suite = priority_buffer::lo_suite_initial(capacity);
    buffer_suite.push(priority_buffer::lo_missing_case());
    buffer_suite.extend(priority_buffer::hi_suite(capacity));
    let buffer_deck = with_specs(priority_buffer::deck(capacity, false), &buffer_suite);
    let buggy_deck = with_specs(priority_buffer::deck(capacity, true), &buffer_suite);

    let stages = 4;
    let mut pipeline_suite = pipeline::out_suite_initial(stages);
    pipeline_suite.extend(pipeline::out_suite_hold());
    let pipeline_deck = with_specs(pipeline::deck(stages), &pipeline_suite);

    for (name, deck) in [
        ("counter.smv", &counter_deck),
        ("priority_buffer.smv", &buffer_deck),
        ("priority_buffer_buggy.smv", &buggy_deck),
        ("pipeline.smv", &pipeline_deck),
    ] {
        let path = dir.join(name);
        std::fs::write(&path, deck).expect("write deck");
        println!("wrote {}", path.display());
    }
}
