//! Property tests pinned to the packed-arena core's table machinery:
//! unique-table rehash and GC rebuild must preserve hash-consing
//! canonicity (the *same* `Ref`, not just a logically equal function),
//! and the lossy direct-mapped compute caches must never change results
//! — checked against a `HashMap`-memoized truth-table oracle and via
//! cache-clear-every-k cross-runs, which also exercise the caches'
//! lazy-allocation and drop-on-clear paths.

use std::collections::HashMap;

use covest_bdd::{BddManager, Func, VarId};
use proptest::prelude::*;

const NVARS: usize = 5;

/// A tiny expression language used to generate random Boolean programs.
#[derive(Debug, Clone)]
enum Expr {
    Const(bool),
    Var(usize),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
    Ite(Box<Expr>, Box<Expr>, Box<Expr>),
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        any::<bool>().prop_map(Expr::Const),
        (0..NVARS).prop_map(Expr::Var),
    ];
    leaf.prop_recursive(4, 48, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner).prop_map(|(a, b, c)| Expr::Ite(
                Box::new(a),
                Box::new(b),
                Box::new(c)
            )),
        ]
    })
}

fn build(mgr: &BddManager, vars: &[VarId], e: &Expr) -> Func {
    match e {
        Expr::Const(c) => mgr.constant(*c),
        Expr::Var(i) => mgr.var(vars[*i]),
        Expr::Not(a) => build(mgr, vars, a).not(),
        Expr::And(a, b) => build(mgr, vars, a).and(&build(mgr, vars, b)),
        Expr::Or(a, b) => build(mgr, vars, a).or(&build(mgr, vars, b)),
        Expr::Xor(a, b) => build(mgr, vars, a).xor(&build(mgr, vars, b)),
        Expr::Ite(a, b, c) => build(mgr, vars, a).ite(&build(mgr, vars, b), &build(mgr, vars, c)),
    }
}

/// The function's full truth table: bit `i` is its value under the
/// assignment whose variable `v` reads bit `v` of `i`.
fn truth_table(f: &Func, vars: &[VarId]) -> u32 {
    let mut tt = 0u32;
    for bits in 0..(1u32 << NVARS) {
        let lookup = |v: VarId| {
            let pos = vars.iter().position(|&w| w == v).expect("known var");
            bits >> pos & 1 == 1
        };
        if f.eval(&lookup) {
            tt |= 1 << bits;
        }
    }
    tt
}

/// `HashMap`-memoized reference semantics: the truth table of every
/// distinct subexpression is computed exactly once and never evicted —
/// the behaviour the lossy direct-mapped caches must be indistinguishable
/// from.
fn oracle_tt(e: &Expr, memo: &mut HashMap<*const Expr, u32>) -> u32 {
    let key = e as *const Expr;
    if let Some(&tt) = memo.get(&key) {
        return tt;
    }
    let tt = match e {
        Expr::Const(c) => {
            if *c {
                u32::MAX
            } else {
                0
            }
        }
        Expr::Var(i) => {
            let mut tt = 0u32;
            for bits in 0..(1u32 << NVARS) {
                if bits >> *i & 1 == 1 {
                    tt |= 1 << bits;
                }
            }
            tt
        }
        Expr::Not(a) => !oracle_tt(a, memo),
        Expr::And(a, b) => oracle_tt(a, memo) & oracle_tt(b, memo),
        Expr::Or(a, b) => oracle_tt(a, memo) | oracle_tt(b, memo),
        Expr::Xor(a, b) => oracle_tt(a, memo) ^ oracle_tt(b, memo),
        Expr::Ite(a, b, c) => {
            let s = oracle_tt(a, memo);
            s & oracle_tt(b, memo) | !s & oracle_tt(c, memo)
        }
    };
    memo.insert(key, tt);
    tt
}

/// Grows the manager's per-level unique tables well past their initial
/// capacity by hash-consing many distinct functions over the same
/// variables, forcing at least one rehash at every level `junk` minterms
/// touch. Returns the junk so callers control when it is dropped.
fn force_rehash(mgr: &BddManager, vars: &[VarId], salt: u32) -> Vec<Func> {
    let mut junk = Vec::new();
    for bits in 0..(1u32 << NVARS) {
        let mut cube = mgr.constant(true);
        for (i, &v) in vars.iter().enumerate() {
            let phase = (bits ^ salt) >> i & 1 == 1;
            cube = cube.and(&mgr.literal(v, phase));
        }
        // Accumulated disjunction prefixes create interior nodes at
        // every level, not just cube chains.
        let prev = junk.last().cloned().unwrap_or_else(|| mgr.constant(false));
        junk.push(prev.or(&cube));
    }
    junk
}

proptest! {
    /// Rebuilding an expression after the unique tables have been grown
    /// (rehashed) yields the *identical* node — hash-consing survives
    /// slot migration — and its semantics still match the memo oracle.
    #[test]
    fn rehash_preserves_canonicity(e in arb_expr()) {
        let mgr = BddManager::new();
        let vars = mgr.new_vars(NVARS);
        let before = build(&mgr, &vars, &e);
        let junk = force_rehash(&mgr, &vars, 0b10110);
        let after = build(&mgr, &vars, &e);
        prop_assert!(before == after, "rehash broke hash-consing");
        drop(junk);
        let mut memo = HashMap::new();
        prop_assert_eq!(truth_table(&after, &vars), oracle_tt(&e, &mut memo));
    }

    /// A garbage collection (which rebuilds every unique table from the
    /// mark bits and clears all caches) preserves canonicity for
    /// surviving functions: the rebuilt expression is pointer-identical
    /// and semantically unchanged.
    #[test]
    fn gc_rebuild_preserves_canonicity(e in arb_expr()) {
        let mgr = BddManager::new();
        let vars = mgr.new_vars(NVARS);
        let f = build(&mgr, &vars, &e);
        let tt_before = truth_table(&f, &vars);
        drop(force_rehash(&mgr, &vars, 0b01101));
        mgr.gc();
        let rebuilt = build(&mgr, &vars, &e);
        prop_assert!(f == rebuilt, "GC rebuild broke hash-consing");
        prop_assert_eq!(truth_table(&f, &vars), tt_before);
    }

    /// The direct-mapped caches are lossy (an insert may evict an
    /// unrelated live entry), so two managers running the same program —
    /// one clearing every cache every `k` operations, one never — must
    /// still agree with each other and with the never-evicting
    /// `HashMap`-memo oracle on every subexpression.
    #[test]
    fn cache_eviction_never_changes_results(
        exprs in proptest::collection::vec(arb_expr(), 1..6),
        k in 1usize..5,
    ) {
        let plain = BddManager::new();
        let plain_vars = plain.new_vars(NVARS);
        let churned = BddManager::new();
        let churned_vars = churned.new_vars(NVARS);
        let mut memo = HashMap::new();
        for (i, e) in exprs.iter().enumerate() {
            let expect = oracle_tt(e, &mut memo);
            let p = build(&plain, &plain_vars, e);
            if i % k == k - 1 {
                churned.clear_caches();
            }
            let c = build(&churned, &churned_vars, e);
            prop_assert_eq!(truth_table(&p, &plain_vars), expect);
            prop_assert_eq!(truth_table(&c, &churned_vars), expect);
        }
    }
}
