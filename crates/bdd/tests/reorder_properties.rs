//! Property-based tests for dynamic reordering: `reduce_heap` must
//! preserve semantics (evaluation, canonicity, satisfying-assignment
//! counts), never separate grouped variable pairs, and interoperate with
//! garbage collection — all through the rootless RAII API, where the live
//! set is exactly the `Func` handles still in scope.

use std::collections::HashMap;

use covest_bdd::{BddManager, Func, ReorderConfig, ReorderMode, VarId};
use proptest::prelude::*;

const NVARS: usize = 6;

/// A tiny expression language used to generate random Boolean functions.
#[derive(Debug, Clone)]
enum Expr {
    Const(bool),
    Var(usize),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        any::<bool>().prop_map(Expr::Const),
        (0..NVARS).prop_map(Expr::Var),
    ];
    leaf.prop_recursive(5, 64, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
        ]
    })
}

fn build(mgr: &BddManager, vars: &[VarId], e: &Expr) -> Func {
    match e {
        Expr::Const(c) => mgr.constant(*c),
        Expr::Var(i) => mgr.var(vars[*i]),
        Expr::Not(a) => build(mgr, vars, a).not(),
        Expr::And(a, b) => build(mgr, vars, a).and(&build(mgr, vars, b)),
        Expr::Or(a, b) => build(mgr, vars, a).or(&build(mgr, vars, b)),
        Expr::Xor(a, b) => build(mgr, vars, a).xor(&build(mgr, vars, b)),
    }
}

fn truth_table(f: &Func) -> Vec<bool> {
    (0..(1u32 << NVARS))
        .map(|bits| f.eval(&|v| bits >> v.index() & 1 == 1))
        .collect()
}

proptest! {
    /// Sifting changes only the shape: evaluation, exact counts and the
    /// float count all stay identical for every live handle.
    #[test]
    fn reduce_heap_preserves_semantics(e1 in arb_expr(), e2 in arb_expr()) {
        let mgr = BddManager::new();
        let vars = mgr.new_vars(NVARS);
        let f1 = build(&mgr, &vars, &e1);
        let f2 = build(&mgr, &vars, &e2);
        let tt1 = truth_table(&f1);
        let tt2 = truth_table(&f2);
        let count1 = f1.sat_count_exact(&vars);
        let count2 = f2.sat_count_exact(&vars);
        let float1 = f1.sat_count_over(&vars);

        let stats = mgr.reduce_heap();
        prop_assert!(stats.after <= stats.before);

        prop_assert_eq!(truth_table(&f1), tt1);
        prop_assert_eq!(truth_table(&f2), tt2);
        prop_assert_eq!(f1.sat_count_exact(&vars), count1);
        prop_assert_eq!(f2.sat_count_exact(&vars), count2);
        // Counting is a sum of dyadic rationals, so it is not just close
        // but bit-identical under any order.
        prop_assert_eq!(f1.sat_count_over(&vars).to_bits(), float1.to_bits());
    }

    /// Canonicity survives reordering: rebuilding a function after a sift
    /// yields an equal handle.
    #[test]
    fn canonicity_after_reorder(e in arb_expr()) {
        let mgr = BddManager::new();
        let vars = mgr.new_vars(NVARS);
        let f = build(&mgr, &vars, &e);
        mgr.reduce_heap();
        let again = build(&mgr, &vars, &e);
        prop_assert_eq!(f, again);
    }

    /// `reduce_heap` collects like gc: dropped garbage is reclaimed while
    /// live handles survive with identical semantics; with no live handle
    /// at all, the call is a no-op.
    #[test]
    fn reduce_heap_collects_dropped_garbage(e1 in arb_expr(), e2 in arb_expr()) {
        let mgr = BddManager::new();
        let vars = mgr.new_vars(NVARS);
        let rooted = build(&mgr, &vars, &e1);
        let tt = truth_table(&rooted);
        let live_with_garbage = {
            let _garbage = build(&mgr, &vars, &e2);
            mgr.live_nodes()
        };
        mgr.reduce_heap();
        prop_assert!(mgr.live_nodes() <= live_with_garbage);
        prop_assert_eq!(truth_table(&rooted), tt.clone());

        // With no handle in scope, sifting has no live set: no-op.
        let mgr2 = BddManager::new();
        let vars2 = mgr2.new_vars(NVARS);
        {
            let _f1 = build(&mgr2, &vars2, &e1);
        }
        let order_before = mgr2.current_order();
        mgr2.reduce_heap();
        prop_assert_eq!(mgr2.current_order(), order_before);

        // Handles in scope are the live set — no registration needed.
        let f1 = build(&mgr2, &vars2, &e1);
        let f2 = build(&mgr2, &vars2, &e2);
        let tt2 = truth_table(&f2);
        mgr2.reduce_heap();
        prop_assert_eq!(truth_table(&f1), tt);
        prop_assert_eq!(truth_table(&f2), tt2);
    }

    /// Quantification and substitution agree with a pre-reorder oracle
    /// after sifting (the memo layers must not leak stale entries).
    #[test]
    fn operations_after_reorder_match_oracle(e in arb_expr(), idx in 0..NVARS) {
        let mgr = BddManager::new();
        let vars = mgr.new_vars(NVARS);
        let f = build(&mgr, &vars, &e);
        let v = vars[idx];
        let ex_before = f.exists(&[v]);
        let tt = truth_table(&ex_before);
        mgr.reduce_heap();
        let ex_after = f.exists(&[v]);
        prop_assert_eq!(&ex_before, &ex_after);
        prop_assert_eq!(truth_table(&ex_after), tt);
    }

    /// Grouped pairs are never separated, whatever the function demands.
    #[test]
    fn grouped_pairs_stay_adjacent(e in arb_expr()) {
        let mgr = BddManager::new();
        let vars = mgr.new_vars(NVARS);
        for pair in vars.chunks(2) {
            mgr.group_vars(pair);
        }
        let _f = build(&mgr, &vars, &e);
        mgr.reduce_heap();
        for pair in vars.chunks(2) {
            prop_assert_eq!(
                mgr.level_of(pair[1]),
                mgr.level_of(pair[0]) + 1,
                "pair {:?} separated", pair
            );
            prop_assert_eq!(mgr.group_of(pair[0]), Some(pair.to_vec()));
        }
    }

    /// GC after reorder reclaims the sift garbage without disturbing live
    /// handles; reorder after GC works on the compacted table.
    #[test]
    fn gc_and_reorder_interleave(e1 in arb_expr(), e2 in arb_expr()) {
        let mgr = BddManager::new();
        let vars = mgr.new_vars(NVARS);
        let keep = build(&mgr, &vars, &e1);
        let tt = truth_table(&keep);
        {
            let _garbage = build(&mgr, &vars, &e2);
        }

        mgr.reduce_heap();
        let freed = mgr.gc();
        let live_after_gc = mgr.live_nodes();
        prop_assert_eq!(truth_table(&keep), tt.clone());

        let stats = mgr.reduce_heap();
        prop_assert_eq!(stats.before + 2, live_after_gc,
            "after gc, the live table is exactly the rooted set plus terminals");
        mgr.gc();
        prop_assert_eq!(truth_table(&keep), tt);
        let _ = freed;
    }
}

#[test]
fn sat_counts_are_bit_identical_across_random_orders() {
    // Deterministic spot-check on a function with an irregular count.
    let mgr = BddManager::new();
    let vars = mgr.new_vars(NVARS);
    let mut f = mgr.constant(false);
    for i in 0..NVARS {
        let a = mgr.var(vars[i]);
        let b = mgr.var(vars[(i * 2 + 1) % NVARS]);
        f = f.or(&a.and(&b));
    }
    let count = f.sat_count_over(&vars);
    for rotation in 1..NVARS {
        let order: Vec<VarId> = (0..NVARS).map(|i| vars[(i + rotation) % NVARS]).collect();
        mgr.set_order(&order);
        assert_eq!(mgr.current_order(), order);
        assert_eq!(f.sat_count_over(&vars).to_bits(), count.to_bits());
    }
}

#[test]
fn reorder_modes_gate_reduce_heap() {
    let mgr = BddManager::new();
    let vars = mgr.new_vars(4);
    let badly_ordered = {
        let c = mgr.var(vars[0]).and(&mgr.var(vars[2]));
        let g = mgr.var(vars[1]).and(&mgr.var(vars[3]));
        c.or(&g)
    };
    mgr.set_reorder_config(ReorderConfig {
        mode: ReorderMode::Off,
        ..Default::default()
    });
    let order = mgr.current_order();
    assert_eq!(mgr.reduce_heap().swaps, 0);
    assert_eq!(mgr.current_order(), order);

    mgr.set_reorder_config(ReorderConfig {
        mode: ReorderMode::Sift,
        ..Default::default()
    });
    let stats = mgr.reduce_heap();
    assert!(stats.after <= stats.before);
    let _ = badly_ordered;
}

#[test]
fn minterm_enumeration_consistent_after_reorder() {
    let mgr = BddManager::new();
    let vars = mgr.new_vars(NVARS);
    let f = {
        let c = mgr.var(vars[0]).xor(&mgr.var(vars[3]));
        c.or(&mgr.var(vars[5]))
    };
    let collect = |f: &Func| -> Vec<Vec<(VarId, bool)>> {
        let mut v: Vec<_> = f.minterms_over(&vars).collect();
        v.sort();
        v
    };
    let before = collect(&f);
    mgr.reduce_heap();
    assert_eq!(collect(&f), before);
    let lookups: Vec<HashMap<VarId, bool>> =
        before.iter().map(|m| m.iter().copied().collect()).collect();
    for lookup in &lookups {
        assert!(f.eval(&|v| lookup[&v]));
    }
}
