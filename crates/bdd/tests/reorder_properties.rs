//! Property-based tests for dynamic reordering: `reduce_heap` must
//! preserve semantics (evaluation, canonicity, satisfying-assignment
//! counts), never separate grouped variable pairs, and interoperate with
//! garbage collection.

use std::collections::HashMap;

use covest_bdd::{Bdd, Ref, ReorderConfig, ReorderMode, VarId};
use proptest::prelude::*;

const NVARS: usize = 6;

/// A tiny expression language used to generate random Boolean functions.
#[derive(Debug, Clone)]
enum Expr {
    Const(bool),
    Var(usize),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        any::<bool>().prop_map(Expr::Const),
        (0..NVARS).prop_map(Expr::Var),
    ];
    leaf.prop_recursive(5, 64, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
        ]
    })
}

fn build(bdd: &mut Bdd, vars: &[VarId], e: &Expr) -> Ref {
    match e {
        Expr::Const(c) => bdd.constant(*c),
        Expr::Var(i) => bdd.var(vars[*i]),
        Expr::Not(a) => {
            let fa = build(bdd, vars, a);
            bdd.not(fa)
        }
        Expr::And(a, b) => {
            let fa = build(bdd, vars, a);
            let fb = build(bdd, vars, b);
            bdd.and(fa, fb)
        }
        Expr::Or(a, b) => {
            let fa = build(bdd, vars, a);
            let fb = build(bdd, vars, b);
            bdd.or(fa, fb)
        }
        Expr::Xor(a, b) => {
            let fa = build(bdd, vars, a);
            let fb = build(bdd, vars, b);
            bdd.xor(fa, fb)
        }
    }
}

fn truth_table(bdd: &Bdd, f: Ref) -> Vec<bool> {
    (0..(1u32 << NVARS))
        .map(|bits| bdd.eval(f, &|v| bits >> v.index() & 1 == 1))
        .collect()
}

proptest! {
    /// Sifting changes only the shape: evaluation, exact counts and the
    /// float count all stay identical for every root.
    #[test]
    fn reduce_heap_preserves_semantics(e1 in arb_expr(), e2 in arb_expr()) {
        let mut bdd = Bdd::new();
        let vars = bdd.new_vars(NVARS);
        let f1 = build(&mut bdd, &vars, &e1);
        let f2 = build(&mut bdd, &vars, &e2);
        let tt1 = truth_table(&bdd, f1);
        let tt2 = truth_table(&bdd, f2);
        let count1 = bdd.sat_count_exact(f1, &vars);
        let count2 = bdd.sat_count_exact(f2, &vars);
        let float1 = bdd.sat_count_over(f1, &vars);

        let stats = bdd.reduce_heap(&[f1, f2]);
        prop_assert!(stats.after <= stats.before);

        prop_assert_eq!(truth_table(&bdd, f1), tt1);
        prop_assert_eq!(truth_table(&bdd, f2), tt2);
        prop_assert_eq!(bdd.sat_count_exact(f1, &vars), count1);
        prop_assert_eq!(bdd.sat_count_exact(f2, &vars), count2);
        // Counting is a sum of dyadic rationals, so it is not just close
        // but bit-identical under any order.
        prop_assert_eq!(bdd.sat_count_over(f1, &vars).to_bits(), float1.to_bits());
    }

    /// Canonicity survives reordering: rebuilding a function after a sift
    /// yields the same handle.
    #[test]
    fn canonicity_after_reorder(e in arb_expr()) {
        let mut bdd = Bdd::new();
        let vars = bdd.new_vars(NVARS);
        let f = build(&mut bdd, &vars, &e);
        bdd.reduce_heap(&[f]);
        let again = build(&mut bdd, &vars, &e);
        prop_assert_eq!(f, again);
    }

    /// `reduce_heap` has gc's contract: unrooted garbage is reclaimed
    /// while rooted handles survive with identical semantics. With empty
    /// roots the protected registry is the live set; with nothing
    /// protected either, the call is a no-op.
    #[test]
    fn reduce_heap_has_gc_contract(e1 in arb_expr(), e2 in arb_expr()) {
        let mut bdd = Bdd::new();
        let vars = bdd.new_vars(NVARS);
        let rooted = build(&mut bdd, &vars, &e1);
        let tt = truth_table(&bdd, rooted);
        let garbage = build(&mut bdd, &vars, &e2);
        let live_with_garbage = bdd.live_nodes();
        bdd.reduce_heap(&[rooted]);
        prop_assert!(bdd.live_nodes() <= live_with_garbage);
        prop_assert_eq!(truth_table(&bdd, rooted), tt.clone());

        // Rootless call falls back to the protected registry.
        let mut bdd2 = Bdd::new();
        let vars2 = bdd2.new_vars(NVARS);
        let f1 = build(&mut bdd2, &vars2, &e1);
        let f2 = build(&mut bdd2, &vars2, &e2);
        let tt2 = truth_table(&bdd2, f2);
        let order_before = bdd2.current_order();
        bdd2.reduce_heap(&[]); // nothing protected: must be a no-op
        prop_assert_eq!(bdd2.current_order(), order_before);
        bdd2.protect(f1);
        bdd2.protect(f2);
        bdd2.reduce_heap(&[]);
        bdd2.unprotect(f1);
        bdd2.unprotect(f2);
        prop_assert_eq!(truth_table(&bdd2, f1), tt);
        prop_assert_eq!(truth_table(&bdd2, f2), tt2);
        let _ = garbage;
    }

    /// Quantification and substitution agree with a pre-reorder oracle
    /// after sifting (the memo layers must not leak stale entries).
    #[test]
    fn operations_after_reorder_match_oracle(e in arb_expr(), idx in 0..NVARS) {
        let mut bdd = Bdd::new();
        let vars = bdd.new_vars(NVARS);
        let f = build(&mut bdd, &vars, &e);
        let v = vars[idx];
        let ex_before = bdd.exists(f, &[v]);
        let tt = truth_table(&bdd, ex_before);
        bdd.reduce_heap(&[f, ex_before]);
        let ex_after = bdd.exists(f, &[v]);
        prop_assert_eq!(ex_before, ex_after);
        prop_assert_eq!(truth_table(&bdd, ex_after), tt);
    }

    /// Grouped pairs are never separated, whatever the function demands.
    #[test]
    fn grouped_pairs_stay_adjacent(e in arb_expr()) {
        let mut bdd = Bdd::new();
        let vars = bdd.new_vars(NVARS);
        for pair in vars.chunks(2) {
            bdd.group_vars(pair);
        }
        let f = build(&mut bdd, &vars, &e);
        bdd.reduce_heap(&[f]);
        for pair in vars.chunks(2) {
            prop_assert_eq!(
                bdd.level_of(pair[1]),
                bdd.level_of(pair[0]) + 1,
                "pair {:?} separated", pair
            );
            prop_assert_eq!(bdd.group_of(pair[0]), Some(pair.to_vec()));
        }
    }

    /// GC after reorder reclaims the sift garbage without disturbing the
    /// roots; reorder after GC works on the compacted table.
    #[test]
    fn gc_and_reorder_interleave(e1 in arb_expr(), e2 in arb_expr()) {
        let mut bdd = Bdd::new();
        let vars = bdd.new_vars(NVARS);
        let keep = build(&mut bdd, &vars, &e1);
        let tt = truth_table(&bdd, keep);
        let _garbage = build(&mut bdd, &vars, &e2);

        bdd.reduce_heap(&[keep]);
        let freed = bdd.gc(&[keep]);
        let live_after_gc = bdd.live_nodes();
        prop_assert_eq!(truth_table(&bdd, keep), tt.clone());

        let stats = bdd.reduce_heap(&[keep]);
        prop_assert_eq!(stats.before + 2, live_after_gc,
            "after gc, the live table is exactly the rooted set plus terminals");
        bdd.gc(&[keep]);
        prop_assert_eq!(truth_table(&bdd, keep), tt);
        let _ = freed;
    }
}

#[test]
fn sat_counts_are_bit_identical_across_random_orders() {
    // Deterministic spot-check on a function with an irregular count.
    let mut bdd = Bdd::new();
    let vars = bdd.new_vars(NVARS);
    let mut f = Ref::FALSE;
    for i in 0..NVARS {
        let a = bdd.var(vars[i]);
        let b = bdd.var(vars[(i * 2 + 1) % NVARS]);
        let c = bdd.and(a, b);
        f = bdd.or(f, c);
    }
    let count = bdd.sat_count_over(f, &vars);
    for rotation in 1..NVARS {
        let order: Vec<VarId> = (0..NVARS).map(|i| vars[(i + rotation) % NVARS]).collect();
        bdd.set_order(&[f], &order);
        assert_eq!(bdd.current_order(), order);
        assert_eq!(bdd.sat_count_over(f, &vars).to_bits(), count.to_bits());
    }
}

#[test]
fn reorder_modes_gate_reduce_heap() {
    let mut bdd = Bdd::new();
    let vars = bdd.new_vars(4);
    let badly_ordered = {
        let a = bdd.var(vars[0]);
        let b = bdd.var(vars[2]);
        let c = bdd.and(a, b);
        let d = bdd.var(vars[1]);
        let e = bdd.var(vars[3]);
        let g = bdd.and(d, e);
        bdd.or(c, g)
    };
    bdd.set_reorder_config(ReorderConfig {
        mode: ReorderMode::Off,
        ..Default::default()
    });
    let order = bdd.current_order();
    assert_eq!(bdd.reduce_heap(&[badly_ordered]).swaps, 0);
    assert_eq!(bdd.current_order(), order);

    bdd.set_reorder_config(ReorderConfig {
        mode: ReorderMode::Sift,
        ..Default::default()
    });
    let stats = bdd.reduce_heap(&[badly_ordered]);
    assert!(stats.after <= stats.before);
}

#[test]
fn minterm_enumeration_consistent_after_reorder() {
    let mut bdd = Bdd::new();
    let vars = bdd.new_vars(NVARS);
    let f = {
        let a = bdd.var(vars[0]);
        let b = bdd.var(vars[3]);
        let c = bdd.xor(a, b);
        let d = bdd.var(vars[5]);
        bdd.or(c, d)
    };
    let collect = |bdd: &Bdd| -> Vec<Vec<(VarId, bool)>> {
        let mut v: Vec<_> = bdd.minterms_over(f, &vars).collect();
        v.sort();
        v
    };
    let before = collect(&bdd);
    bdd.reduce_heap(&[f]);
    assert_eq!(collect(&bdd), before);
    let lookups: Vec<HashMap<VarId, bool>> =
        before.iter().map(|m| m.iter().copied().collect()).collect();
    for lookup in &lookups {
        assert!(bdd.eval(f, &|v| lookup[&v]));
    }
}
