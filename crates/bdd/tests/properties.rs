//! Property-based tests for the ROBDD engine: canonicity, Boolean-algebra
//! laws, quantifier dualities, and counting consistency against a
//! truth-table oracle on small variable universes.

use std::collections::HashMap;

use covest_bdd::{BddManager, Func, VarId};
use proptest::prelude::*;

const NVARS: usize = 5;

/// A tiny expression language used to generate random Boolean functions.
#[derive(Debug, Clone)]
enum Expr {
    Const(bool),
    Var(usize),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
    Ite(Box<Expr>, Box<Expr>, Box<Expr>),
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        any::<bool>().prop_map(Expr::Const),
        (0..NVARS).prop_map(Expr::Var),
    ];
    leaf.prop_recursive(4, 48, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner).prop_map(|(a, b, c)| Expr::Ite(
                Box::new(a),
                Box::new(b),
                Box::new(c)
            )),
        ]
    })
}

fn build(mgr: &BddManager, vars: &[VarId], e: &Expr) -> Func {
    match e {
        Expr::Const(c) => mgr.constant(*c),
        Expr::Var(i) => mgr.var(vars[*i]),
        Expr::Not(a) => build(mgr, vars, a).not(),
        Expr::And(a, b) => build(mgr, vars, a).and(&build(mgr, vars, b)),
        Expr::Or(a, b) => build(mgr, vars, a).or(&build(mgr, vars, b)),
        Expr::Xor(a, b) => build(mgr, vars, a).xor(&build(mgr, vars, b)),
        Expr::Ite(a, b, c) => build(mgr, vars, a).ite(&build(mgr, vars, b), &build(mgr, vars, c)),
    }
}

fn eval_expr(e: &Expr, assignment: &[bool]) -> bool {
    match e {
        Expr::Const(c) => *c,
        Expr::Var(i) => assignment[*i],
        Expr::Not(a) => !eval_expr(a, assignment),
        Expr::And(a, b) => eval_expr(a, assignment) && eval_expr(b, assignment),
        Expr::Or(a, b) => eval_expr(a, assignment) || eval_expr(b, assignment),
        Expr::Xor(a, b) => eval_expr(a, assignment) ^ eval_expr(b, assignment),
        Expr::Ite(a, b, c) => {
            if eval_expr(a, assignment) {
                eval_expr(b, assignment)
            } else {
                eval_expr(c, assignment)
            }
        }
    }
}

fn assignments() -> impl Iterator<Item = Vec<bool>> {
    (0..(1u32 << NVARS)).map(|bits| (0..NVARS).map(|i| bits & (1 << i) != 0).collect())
}

proptest! {
    /// The BDD agrees with direct expression evaluation on every input.
    #[test]
    fn bdd_matches_truth_table(e in arb_expr()) {
        let mgr = BddManager::new();
        let vars = mgr.new_vars(NVARS);
        let f = build(&mgr, &vars, &e);
        for a in assignments() {
            let expect = eval_expr(&e, &a);
            let got = f.eval(&|v| a[v.index()]);
            prop_assert_eq!(expect, got, "assignment {:?}", a);
        }
    }

    /// Canonicity: semantically equal functions get equal handles.
    #[test]
    fn canonicity(e1 in arb_expr(), e2 in arb_expr()) {
        let mgr = BddManager::new();
        let vars = mgr.new_vars(NVARS);
        let f1 = build(&mgr, &vars, &e1);
        let f2 = build(&mgr, &vars, &e2);
        let semantically_equal = assignments()
            .all(|a| eval_expr(&e1, &a) == eval_expr(&e2, &a));
        prop_assert_eq!(semantically_equal, f1 == f2);
    }

    /// Exact model count matches the truth-table count.
    #[test]
    fn sat_count_matches_truth_table(e in arb_expr()) {
        let mgr = BddManager::new();
        let vars = mgr.new_vars(NVARS);
        let f = build(&mgr, &vars, &e);
        let expect = assignments().filter(|a| eval_expr(&e, a)).count() as u128;
        prop_assert_eq!(f.sat_count_exact(&vars), expect);
        let float = f.sat_count_over(&vars);
        prop_assert!((float - expect as f64).abs() < 1e-9);
    }

    /// Minterm enumeration yields exactly the satisfying assignments.
    #[test]
    fn minterms_match_truth_table(e in arb_expr()) {
        let mgr = BddManager::new();
        let vars = mgr.new_vars(NVARS);
        let f = build(&mgr, &vars, &e);
        let mut got: Vec<Vec<bool>> = f
            .minterms_over(&vars)
            .map(|m| {
                let lookup: HashMap<VarId, bool> = m.into_iter().collect();
                vars.iter().map(|v| lookup[v]).collect()
            })
            .collect();
        got.sort();
        got.dedup();
        let mut expect: Vec<Vec<bool>> =
            assignments().filter(|a| eval_expr(&e, a)).collect();
        expect.sort();
        prop_assert_eq!(got, expect);
    }

    /// ∃x.f is the disjunction of cofactors; ∀x.f the conjunction.
    #[test]
    fn quantification_is_cofactor_combination(e in arb_expr(), idx in 0..NVARS) {
        let mgr = BddManager::new();
        let vars = mgr.new_vars(NVARS);
        let f = build(&mgr, &vars, &e);
        let v = vars[idx];
        let f0 = f.cofactor(v, false);
        let f1 = f.cofactor(v, true);
        prop_assert_eq!(f.exists(&[v]), f0.or(&f1));
        prop_assert_eq!(f.forall(&[v]), f0.and(&f1));
    }

    /// Fused and_exists equals conjunction followed by quantification.
    #[test]
    fn and_exists_equals_two_step(e1 in arb_expr(), e2 in arb_expr(), mask in 0u32..(1 << NVARS)) {
        let mgr = BddManager::new();
        let vars = mgr.new_vars(NVARS);
        let f = build(&mgr, &vars, &e1);
        let g = build(&mgr, &vars, &e2);
        let qs: Vec<VarId> = vars
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, &v)| v)
            .collect();
        let fused = f.and_exists(&g, &qs);
        let two_step = f.and(&g).exists(&qs);
        prop_assert_eq!(fused, two_step);
    }

    /// Renaming to fresh variables then back is the identity.
    #[test]
    fn rename_roundtrip(e in arb_expr()) {
        let mgr = BddManager::new();
        let vars = mgr.new_vars(NVARS);
        let fresh = mgr.new_vars(NVARS);
        let f = build(&mgr, &vars, &e);
        let forward: Vec<(VarId, VarId)> =
            vars.iter().copied().zip(fresh.iter().copied()).collect();
        let backward: Vec<(VarId, VarId)> =
            fresh.iter().copied().zip(vars.iter().copied()).collect();
        let back = f.rename(&forward).rename(&backward);
        prop_assert_eq!(back, f);
    }

    /// GC (rootless: live handles pin themselves) preserves the function
    /// and rebuilding anything still produces canonical results.
    #[test]
    fn gc_preserves_live_handles(e in arb_expr()) {
        let mgr = BddManager::new();
        let vars = mgr.new_vars(NVARS);
        let f = build(&mgr, &vars, &e);
        mgr.gc();
        let f2 = build(&mgr, &vars, &e);
        prop_assert_eq!(&f2, &f);
        for a in assignments().take(8) {
            prop_assert_eq!(f.eval(&|v| a[v.index()]), eval_expr(&e, &a));
        }
    }

    /// Cube enumeration rebuilds the original function.
    #[test]
    fn cubes_rebuild_function(e in arb_expr()) {
        let mgr = BddManager::new();
        let vars = mgr.new_vars(NVARS);
        let f = build(&mgr, &vars, &e);
        let mut rebuilt = mgr.constant(false);
        for cube in f.cubes() {
            let mut c = mgr.constant(true);
            for (v, val) in cube {
                c = c.and(&mgr.literal(v, val));
            }
            rebuilt = rebuilt.or(&c);
        }
        prop_assert_eq!(rebuilt, f);
    }
}
