//! Property-based tests for the ROBDD engine: canonicity, Boolean-algebra
//! laws, quantifier dualities, and counting consistency against a
//! truth-table oracle on small variable universes.

use std::collections::HashMap;

use covest_bdd::{Bdd, Ref, VarId};
use proptest::prelude::*;

const NVARS: usize = 5;

/// A tiny expression language used to generate random Boolean functions.
#[derive(Debug, Clone)]
enum Expr {
    Const(bool),
    Var(usize),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
    Ite(Box<Expr>, Box<Expr>, Box<Expr>),
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        any::<bool>().prop_map(Expr::Const),
        (0..NVARS).prop_map(Expr::Var),
    ];
    leaf.prop_recursive(4, 48, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner).prop_map(|(a, b, c)| Expr::Ite(
                Box::new(a),
                Box::new(b),
                Box::new(c)
            )),
        ]
    })
}

fn build(bdd: &mut Bdd, vars: &[VarId], e: &Expr) -> Ref {
    match e {
        Expr::Const(c) => bdd.constant(*c),
        Expr::Var(i) => bdd.var(vars[*i]),
        Expr::Not(a) => {
            let fa = build(bdd, vars, a);
            bdd.not(fa)
        }
        Expr::And(a, b) => {
            let fa = build(bdd, vars, a);
            let fb = build(bdd, vars, b);
            bdd.and(fa, fb)
        }
        Expr::Or(a, b) => {
            let fa = build(bdd, vars, a);
            let fb = build(bdd, vars, b);
            bdd.or(fa, fb)
        }
        Expr::Xor(a, b) => {
            let fa = build(bdd, vars, a);
            let fb = build(bdd, vars, b);
            bdd.xor(fa, fb)
        }
        Expr::Ite(a, b, c) => {
            let fa = build(bdd, vars, a);
            let fb = build(bdd, vars, b);
            let fc = build(bdd, vars, c);
            bdd.ite(fa, fb, fc)
        }
    }
}

fn eval_expr(e: &Expr, assignment: &[bool]) -> bool {
    match e {
        Expr::Const(c) => *c,
        Expr::Var(i) => assignment[*i],
        Expr::Not(a) => !eval_expr(a, assignment),
        Expr::And(a, b) => eval_expr(a, assignment) && eval_expr(b, assignment),
        Expr::Or(a, b) => eval_expr(a, assignment) || eval_expr(b, assignment),
        Expr::Xor(a, b) => eval_expr(a, assignment) ^ eval_expr(b, assignment),
        Expr::Ite(a, b, c) => {
            if eval_expr(a, assignment) {
                eval_expr(b, assignment)
            } else {
                eval_expr(c, assignment)
            }
        }
    }
}

fn assignments() -> impl Iterator<Item = Vec<bool>> {
    (0..(1u32 << NVARS)).map(|bits| (0..NVARS).map(|i| bits & (1 << i) != 0).collect())
}

proptest! {
    /// The BDD agrees with direct expression evaluation on every input.
    #[test]
    fn bdd_matches_truth_table(e in arb_expr()) {
        let mut bdd = Bdd::new();
        let vars = bdd.new_vars(NVARS);
        let f = build(&mut bdd, &vars, &e);
        for a in assignments() {
            let expect = eval_expr(&e, &a);
            let got = bdd.eval(f, &|v| a[v.index()]);
            prop_assert_eq!(expect, got, "assignment {:?}", a);
        }
    }

    /// Canonicity: semantically equal functions get identical Refs.
    #[test]
    fn canonicity(e1 in arb_expr(), e2 in arb_expr()) {
        let mut bdd = Bdd::new();
        let vars = bdd.new_vars(NVARS);
        let f1 = build(&mut bdd, &vars, &e1);
        let f2 = build(&mut bdd, &vars, &e2);
        let semantically_equal = assignments()
            .all(|a| eval_expr(&e1, &a) == eval_expr(&e2, &a));
        prop_assert_eq!(semantically_equal, f1 == f2);
    }

    /// Exact model count matches the truth-table count.
    #[test]
    fn sat_count_matches_truth_table(e in arb_expr()) {
        let mut bdd = Bdd::new();
        let vars = bdd.new_vars(NVARS);
        let f = build(&mut bdd, &vars, &e);
        let expect = assignments().filter(|a| eval_expr(&e, a)).count() as u128;
        prop_assert_eq!(bdd.sat_count_exact(f, &vars), expect);
        let float = bdd.sat_count_over(f, &vars);
        prop_assert!((float - expect as f64).abs() < 1e-9);
    }

    /// Minterm enumeration yields exactly the satisfying assignments.
    #[test]
    fn minterms_match_truth_table(e in arb_expr()) {
        let mut bdd = Bdd::new();
        let vars = bdd.new_vars(NVARS);
        let f = build(&mut bdd, &vars, &e);
        let mut got: Vec<Vec<bool>> = bdd
            .minterms_over(f, &vars)
            .map(|m| {
                let lookup: HashMap<VarId, bool> = m.into_iter().collect();
                vars.iter().map(|v| lookup[v]).collect()
            })
            .collect();
        got.sort();
        got.dedup();
        let mut expect: Vec<Vec<bool>> =
            assignments().filter(|a| eval_expr(&e, a)).collect();
        expect.sort();
        prop_assert_eq!(got, expect);
    }

    /// ∃x.f is the disjunction of cofactors; ∀x.f the conjunction.
    #[test]
    fn quantification_is_cofactor_combination(e in arb_expr(), idx in 0..NVARS) {
        let mut bdd = Bdd::new();
        let vars = bdd.new_vars(NVARS);
        let f = build(&mut bdd, &vars, &e);
        let v = vars[idx];
        let f0 = bdd.restrict(f, v, false);
        let f1 = bdd.restrict(f, v, true);
        let ex = bdd.exists(f, &[v]);
        let ex_expect = bdd.or(f0, f1);
        prop_assert_eq!(ex, ex_expect);
        let fa = bdd.forall(f, &[v]);
        let fa_expect = bdd.and(f0, f1);
        prop_assert_eq!(fa, fa_expect);
    }

    /// Fused and_exists equals conjunction followed by quantification.
    #[test]
    fn and_exists_equals_two_step(e1 in arb_expr(), e2 in arb_expr(), mask in 0u32..(1 << NVARS)) {
        let mut bdd = Bdd::new();
        let vars = bdd.new_vars(NVARS);
        let f = build(&mut bdd, &vars, &e1);
        let g = build(&mut bdd, &vars, &e2);
        let qs: Vec<VarId> = vars
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, &v)| v)
            .collect();
        let fused = bdd.and_exists(f, g, &qs);
        let conj = bdd.and(f, g);
        let two_step = bdd.exists(conj, &qs);
        prop_assert_eq!(fused, two_step);
    }

    /// Renaming to fresh variables then back is the identity.
    #[test]
    fn rename_roundtrip(e in arb_expr()) {
        let mut bdd = Bdd::new();
        let vars = bdd.new_vars(NVARS);
        let fresh = bdd.new_vars(NVARS);
        let f = build(&mut bdd, &vars, &e);
        let forward: Vec<(VarId, VarId)> =
            vars.iter().copied().zip(fresh.iter().copied()).collect();
        let backward: Vec<(VarId, VarId)> =
            fresh.iter().copied().zip(vars.iter().copied()).collect();
        let there = bdd.rename(f, &forward);
        let back = bdd.rename(there, &backward);
        prop_assert_eq!(back, f);
    }

    /// GC with the function as root preserves it and rebuilding anything
    /// still produces canonical results.
    #[test]
    fn gc_preserves_roots(e in arb_expr()) {
        let mut bdd = Bdd::new();
        let vars = bdd.new_vars(NVARS);
        let f = build(&mut bdd, &vars, &e);
        bdd.gc(&[f]);
        let f2 = build(&mut bdd, &vars, &e);
        prop_assert_eq!(f, f2);
        for a in assignments().take(8) {
            prop_assert_eq!(bdd.eval(f, &|v| a[v.index()]), eval_expr(&e, &a));
        }
    }

    /// Cube enumeration rebuilds the original function.
    #[test]
    fn cubes_rebuild_function(e in arb_expr()) {
        let mut bdd = Bdd::new();
        let vars = bdd.new_vars(NVARS);
        let f = build(&mut bdd, &vars, &e);
        let cubes: Vec<_> = bdd.cubes(f).collect();
        let mut rebuilt = Ref::FALSE;
        for cube in cubes {
            let mut c = Ref::TRUE;
            for (v, val) in cube {
                let lit = bdd.literal(v, val);
                c = bdd.and(c, lit);
            }
            rebuilt = bdd.or(rebuilt, c);
        }
        prop_assert_eq!(rebuilt, f);
    }
}
