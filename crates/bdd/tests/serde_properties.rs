//! Property-based tests for the name-keyed BDD export/import layer.
//!
//! The contract under test is *semantic round-trip identity keyed by
//! variable name*: a function exported with [`Func::export_bdd`] and
//! imported with [`BddManager::import_bdd`] into another manager must
//! agree with the original on **every** assignment (matching variables
//! by name, never by index or level) and have the same satisfying-
//! assignment count — even when the target manager created its
//! variables in a *permuted* order, and even when forced `gc()` /
//! `reduce_heap()` calls land mid-sequence on either side. These are
//! exactly the conditions of the parallel coverage engine, where worker
//! managers compile decks independently and sift on their own schedule.

use covest_bdd::{BddDump, BddManager, Func, VarId};
use proptest::prelude::*;

const NVARS: usize = 5;

/// A tiny expression language used to generate random Boolean functions.
#[derive(Debug, Clone)]
enum Expr {
    Const(bool),
    Var(usize),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        any::<bool>().prop_map(Expr::Const),
        (0..NVARS).prop_map(Expr::Var),
    ];
    leaf.prop_recursive(4, 40, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
        ]
    })
}

/// A permutation of `0..NVARS` derived from a free index vector.
fn arb_perm() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0..NVARS, NVARS..NVARS + 1).prop_map(|picks| {
        let mut pool: Vec<usize> = (0..NVARS).collect();
        picks
            .into_iter()
            .map(|p| pool.remove(p % pool.len()))
            .collect()
    })
}

fn var_name(i: usize) -> String {
    format!("n{i}")
}

/// Fresh manager with `NVARS` named variables created in `perm` order.
fn manager_with_order(perm: &[usize]) -> BddManager {
    let mgr = BddManager::new();
    for &i in perm {
        mgr.new_named_var(var_name(i));
    }
    mgr
}

fn build(mgr: &BddManager, e: &Expr) -> Func {
    match e {
        Expr::Const(c) => mgr.constant(*c),
        Expr::Var(i) => mgr.var(mgr.var_by_name(&var_name(*i)).expect("named var")),
        Expr::Not(a) => build(mgr, a).not(),
        Expr::And(a, b) => build(mgr, a).and(&build(mgr, b)),
        Expr::Or(a, b) => build(mgr, a).or(&build(mgr, b)),
        Expr::Xor(a, b) => build(mgr, a).xor(&build(mgr, b)),
    }
}

/// Truth table indexed by *name*: bit `i` of the assignment drives the
/// variable named `n{i}`, wherever it lives in the manager.
fn truth_table(mgr: &BddManager, f: &Func) -> Vec<bool> {
    (0..1u32 << NVARS)
        .map(|bits| {
            f.eval(&|v: VarId| {
                let name = mgr.var_name(v).expect("all vars named");
                let idx: usize = name[1..].parse().expect("n<i> name");
                bits >> idx & 1 == 1
            })
        })
        .collect()
}

fn universe(mgr: &BddManager) -> Vec<VarId> {
    (0..NVARS)
        .map(|i| mgr.var_by_name(&var_name(i)).expect("named var"))
        .collect()
}

proptest! {

    /// Export → import into a manager with a permuted variable order:
    /// same truth table by name, same sat count.
    #[test]
    fn round_trip_into_permuted_order(fe in arb_expr(), perm in arb_perm()) {
        let src = manager_with_order(&(0..NVARS).collect::<Vec<_>>());
        let f = build(&src, &fe);
        let dump = f.export_bdd().expect("export");

        let dst = manager_with_order(&perm);
        let g = dst.import_bdd(&dump).expect("import");
        prop_assert_eq!(truth_table(&src, &f), truth_table(&dst, &g));
        prop_assert_eq!(
            f.sat_count_exact(&universe(&src)),
            g.sat_count_exact(&universe(&dst))
        );
    }

    /// Round trip with forced mid-sequence collections and reorderings on
    /// both managers: export, mutate the source (gc + sift), import,
    /// mutate the target (sift + gc), re-import from a re-export of the
    /// imported copy, and require all three truth tables to agree.
    #[test]
    fn round_trip_survives_gc_and_reorder_on_both_sides(
        fe in arb_expr(),
        ge in arb_expr(),
        perm in arb_perm(),
    ) {
        let src = manager_with_order(&(0..NVARS).collect::<Vec<_>>());
        let f = build(&src, &fe);
        let truth = truth_table(&src, &f);
        let dump = f.export_bdd().expect("export");

        // The dump must be independent of the source manager's fate:
        // throw garbage at it, collect, and sift (shuffling every level).
        let junk = build(&src, &ge).xor(&f);
        drop(junk);
        src.gc();
        src.reduce_heap();
        prop_assert_eq!(&truth_table(&src, &f), &truth, "source handle broken");

        let dst = manager_with_order(&perm);
        // Pre-existing work on the target, so import lands mid-life.
        let resident = build(&dst, &ge);
        let g = dst.import_bdd(&dump).expect("import");
        prop_assert_eq!(&truth_table(&dst, &g), &truth);

        // Reorder + collect on the target; the imported handle must pin
        // itself like any native Func.
        dst.reduce_heap();
        dst.gc();
        prop_assert_eq!(&truth_table(&dst, &g), &truth, "imported handle broken");
        prop_assert_eq!(&truth_table(&dst, &resident), &truth_table(&dst, &resident));

        // Second hop: re-export from the (reordered) target and import
        // back into the source — whose order also changed since export.
        let dump2 = g.export_bdd().expect("re-export");
        let h = src.import_bdd(&dump2).expect("re-import");
        prop_assert_eq!(&truth_table(&src, &h), &truth);
        // Canonicity: on the shared source manager, the round-tripped
        // function is literally the original handle's function.
        prop_assert_eq!(&h, &f);
    }

    /// Multi-root export/import preserves each root and their relations.
    #[test]
    fn multi_root_round_trip(fe in arb_expr(), ge in arb_expr(), perm in arb_perm()) {
        let src = manager_with_order(&(0..NVARS).collect::<Vec<_>>());
        let f = build(&src, &fe);
        let g = build(&src, &ge);
        let conj = f.and(&g);
        let dump = src.export_bdds(&[&f, &g, &conj]).expect("export");
        prop_assert_eq!(dump.num_roots(), 3);

        let dst = manager_with_order(&perm);
        let out = dst.import_bdds(&dump).expect("import");
        prop_assert_eq!(&truth_table(&dst, &out[0]), &truth_table(&src, &f));
        prop_assert_eq!(&truth_table(&dst, &out[1]), &truth_table(&src, &g));
        // The conjunction relation survives the transfer (canonicity on
        // the target makes this literal handle equality).
        prop_assert_eq!(&out[2], &out[0].and(&out[1]));
    }

    /// The text rendering is a faithful encoding: parse(to_text(d)) == d,
    /// and importing the parsed dump matches importing the original.
    #[test]
    fn text_encoding_round_trips(fe in arb_expr(), perm in arb_perm()) {
        let src = manager_with_order(&(0..NVARS).collect::<Vec<_>>());
        let f = build(&src, &fe);
        let dump = f.export_bdd().expect("export");
        let parsed = BddDump::from_text(&dump.to_text()).expect("parse");
        prop_assert_eq!(&parsed, &dump);

        let dst = manager_with_order(&perm);
        let a = dst.import_bdd(&dump).expect("import");
        let b = dst.import_bdd(&parsed).expect("import parsed");
        prop_assert_eq!(&a, &b);
    }
}
