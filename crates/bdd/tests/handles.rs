//! Leak/aliveness suite for the RAII handle API: the external-root table
//! must track `Func` ownership exactly.
//!
//! - *Leak freedom*: after every handle produced by a random operation
//!   sequence is dropped, a rootless `gc()` returns `live_nodes()` to the
//!   terminal-only baseline and the root table to empty — no operation
//!   leaks a root slot.
//! - *Aliveness*: handles survive forced `reduce_heap()` / `gc()` calls
//!   injected mid-sequence with unchanged semantics (eval parity against
//!   a truth-table fingerprint taken at construction time).

use covest_bdd::{BddManager, Func, ReorderConfig, ReorderMode, VarId};
use proptest::prelude::*;

const NVARS: usize = 5;

/// One step of a random handle workout.
#[derive(Debug, Clone)]
enum Op {
    /// Push a fresh literal (variable `i`, possibly negated).
    Lit(usize, bool),
    /// Combine the two newest handles (0=and, 1=or, 2=xor, 3=iff).
    Combine(u8),
    /// Negate the newest handle.
    Not,
    /// Quantify variable `i` out of the newest handle (existential?).
    Quant(usize, bool),
    /// Clone the handle at (index modulo len) onto the stack top.
    Dup(usize),
    /// Drop the handle at (index modulo len).
    Pop(usize),
    /// Force a full sift (mode Sift, no live-size threshold).
    ReduceHeap,
    /// Force a rootless collection.
    Gc,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        ((0..NVARS), any::<bool>()).prop_map(|(i, pos)| Op::Lit(i, pos)),
        (0u8..4).prop_map(Op::Combine),
        Just(Op::Not),
        ((0..NVARS), any::<bool>()).prop_map(|(i, ex)| Op::Quant(i, ex)),
        (0usize..16).prop_map(Op::Dup),
        (0usize..16).prop_map(Op::Pop),
        Just(Op::ReduceHeap),
        Just(Op::Gc),
    ]
}

fn fingerprint(f: &Func) -> Vec<bool> {
    (0..(1u32 << NVARS))
        .map(|bits| f.eval(&|v| bits >> v.index() & 1 == 1))
        .collect()
}

/// Runs the op sequence, checking eval parity across every forced
/// `reduce_heap`/`gc`; every handle it created is dropped by return.
fn run_ops(mgr: &BddManager, vars: &[VarId], ops: &[Op]) -> Result<(), String> {
    // The live working set: handles paired with their truth tables.
    let mut stack: Vec<(Func, Vec<bool>)> = Vec::new();
    for op in ops {
        match op {
            Op::Lit(i, pos) => {
                let f = mgr.literal(vars[*i], *pos);
                let fp = fingerprint(&f);
                stack.push((f, fp));
            }
            Op::Combine(kind) => {
                if stack.len() >= 2 {
                    let (b, _) = stack.pop().expect("len checked");
                    let (a, _) = stack.pop().expect("len checked");
                    let f = match kind {
                        0 => a.and(&b),
                        1 => a.or(&b),
                        2 => a.xor(&b),
                        _ => a.iff(&b),
                    };
                    let fp = fingerprint(&f);
                    stack.push((f, fp));
                }
            }
            Op::Not => {
                if let Some((f, _)) = stack.pop() {
                    let g = f.not();
                    let fp = fingerprint(&g);
                    stack.push((g, fp));
                }
            }
            Op::Quant(i, existential) => {
                if let Some((f, _)) = stack.pop() {
                    let g = if *existential {
                        f.exists(&[vars[*i]])
                    } else {
                        f.forall(&[vars[*i]])
                    };
                    let fp = fingerprint(&g);
                    stack.push((g, fp));
                }
            }
            Op::Dup(i) => {
                if !stack.is_empty() {
                    let entry = stack[i % stack.len()].clone();
                    stack.push(entry);
                }
            }
            Op::Pop(i) => {
                if !stack.is_empty() {
                    let idx = i % stack.len();
                    stack.remove(idx);
                }
            }
            Op::ReduceHeap => {
                mgr.reduce_heap();
            }
            Op::Gc => {
                mgr.gc();
            }
        }
        // Aliveness: every live handle still evaluates identically, even
        // right after a forced reorder or collection.
        if matches!(op, Op::ReduceHeap | Op::Gc) {
            for (f, fp) in &stack {
                prop_assert_eq!(&fingerprint(f), fp, "handle changed semantics at {:?}", op);
            }
        }
    }
    // Final parity sweep over whatever survived the sequence.
    for (f, fp) in &stack {
        prop_assert_eq!(&fingerprint(f), fp);
    }
    Ok(())
}

proptest! {
    /// Random op sequences never leak: dropping every handle returns the
    /// node table to the terminal-only baseline and the root table to
    /// empty.
    #[test]
    fn drops_return_to_terminal_baseline(ops in proptest::collection::vec(arb_op(), 1..60)) {
        let mgr = BddManager::new();
        let vars = mgr.new_vars(NVARS);
        run_ops(&mgr, &vars, &ops)?;
        // Everything is out of scope now.
        prop_assert_eq!(mgr.live_roots(), 0, "an operation leaked a root slot");
        mgr.gc();
        prop_assert_eq!(mgr.live_nodes(), 2, "terminal-only baseline after full drop");
    }

    /// The same sequences under aggressive automatic reordering (threshold
    /// low enough to fire constantly) keep every handle alive and exact.
    #[test]
    fn auto_reorder_mid_sequence_preserves_handles(
        ops in proptest::collection::vec(arb_op(), 1..40)
    ) {
        let mgr = BddManager::new();
        mgr.set_reorder_config(ReorderConfig {
            mode: ReorderMode::Auto,
            auto_threshold: 8,
            ..Default::default()
        });
        let vars = mgr.new_vars(NVARS);
        run_ops(&mgr, &vars, &ops)?;
        // Auto checkpoints may fire inside run_ops via maybe_reduce_heap.
        mgr.maybe_reduce_heap();
        prop_assert_eq!(mgr.live_roots(), 0);
        mgr.gc();
        prop_assert_eq!(mgr.live_nodes(), 2);
    }
}

#[test]
fn clone_heavy_workload_keeps_slot_count_bounded() {
    // Ten thousand clones of one handle must stay O(1) per clone/drop and
    // occupy exactly one root slot.
    let mgr = BddManager::new();
    let vars = mgr.new_vars(4);
    let f = mgr.var(vars[0]).and(&mgr.var(vars[1]));
    let clones: Vec<Func> = (0..10_000).map(|_| f.clone()).collect();
    assert_eq!(mgr.live_roots(), 1);
    drop(clones);
    assert_eq!(mgr.live_roots(), 1);
    drop(f);
    assert_eq!(mgr.live_roots(), 0);
    mgr.gc();
    assert_eq!(mgr.live_nodes(), 2);
}

#[test]
fn many_distinct_roots_allocate_and_recycle_slots() {
    let mgr = BddManager::new();
    let vars = mgr.new_vars(10);
    // Tens of thousands of live roots: handle drop must stay O(1); this
    // is the workload the old `Vec`-scan `unprotect` made quadratic.
    let mut handles = Vec::new();
    for round in 0..20_000 {
        let v = vars[round % vars.len()];
        handles.push(mgr.literal(v, round % 2 == 0));
    }
    assert_eq!(mgr.live_roots(), 20_000);
    handles.truncate(10);
    assert_eq!(mgr.live_roots(), 10);
    mgr.gc();
    for (i, h) in handles.iter().enumerate() {
        assert_eq!(h.eval(&|v| v == vars[i % vars.len()]), i % 2 == 0);
    }
}
