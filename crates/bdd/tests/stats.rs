//! Engine-counter behavior: accumulation, determinism, and the
//! `reset_stats`/`gc` interaction with the peak-live high-water mark.

use covest_bdd::{BddManager, BddStats, ReorderConfig, ReorderMode};

/// A few dozen nodes of work: a conjunction ladder, a quantification,
/// a fused product, and both simplification operators.
fn workload(mgr: &BddManager) -> covest_bdd::Func {
    let vars: Vec<_> = (0..8).map(|i| mgr.new_named_var(format!("v{i}"))).collect();
    let lits: Vec<_> = vars.iter().map(|&v| mgr.var(v)).collect();
    let conj = mgr.and_many(&lits);
    let parity = lits.iter().fold(mgr.constant(false), |acc, l| acc.xor(l));
    let mix = conj.or(&parity);
    let q = mix.exists(&vars[0..2]);
    let ae = mix.and_exists(&parity, &vars[2..4]);
    let care = lits[0].or(&lits[5]);
    let r1 = mix.restrict(&care);
    let c1 = mix.constrain(&care);
    drop((q, ae, r1, c1));
    // Return a non-constant function: a constant would hold no root slot,
    // and rootless managers skip sifting entirely.
    mix
}

#[test]
fn counters_accumulate_under_work() {
    let mgr = BddManager::new();
    let keep = workload(&mgr);
    let stats = mgr.stats();
    assert!(stats.unique_misses > 0, "nodes were allocated");
    assert_eq!(
        stats.unique_misses, stats.unique_insertions,
        "every miss inserts exactly once"
    );
    assert!(stats.ite_misses > 0);
    assert!(
        stats.ite_hits > 0,
        "shared subgraphs hit the computed table"
    );
    assert!(stats.quant_misses > 0);
    assert!(stats.pair_misses > 0);
    assert!(stats.restrict_misses > 0);
    assert!(stats.constrain_misses > 0);
    assert!(stats.peak_live_nodes >= mgr.live_nodes() as u64);
    drop(keep);
}

#[test]
fn identical_runs_produce_identical_counters() {
    let run = || {
        let mgr = BddManager::new();
        let keep = workload(&mgr);
        mgr.reduce_heap();
        drop(keep);
        mgr.gc();
        mgr.stats()
    };
    assert_eq!(run(), run());
}

#[test]
fn gc_does_not_lower_the_peak_high_water_mark() {
    let mgr = BddManager::new();
    let keep = workload(&mgr);
    let peak_before = mgr.stats().peak_live_nodes;
    assert!(peak_before > 2);
    // Drop everything and force a collection: the live count plummets,
    // the high-water mark must not move.
    drop(keep);
    let freed = mgr.gc();
    assert!(freed > 0, "the workload left something to collect");
    let stats = mgr.stats();
    assert_eq!(mgr.live_nodes(), 2, "only terminals survive");
    assert_eq!(
        stats.peak_live_nodes, peak_before,
        "gc must not zero or lower the peak-live high-water mark"
    );
    assert_eq!(stats.gc_runs, 1);
    assert_eq!(stats.gc_nodes_reclaimed, freed as u64);
}

#[test]
fn reset_restarts_peak_at_current_live_not_zero() {
    let mgr = BddManager::new();
    let keep = workload(&mgr);
    let live = mgr.live_nodes() as u64;
    mgr.reset_stats();
    let stats = mgr.stats();
    assert_eq!(
        stats,
        BddStats {
            peak_live_nodes: live,
            ..Default::default()
        },
        "reset zeroes every counter but restarts the peak at the current live count"
    );
    // The mark keeps rising from there on new allocations.
    let extra = workload(&mgr);
    assert!(mgr.stats().peak_live_nodes >= live);
    drop((keep, extra));
}

#[test]
fn reorder_counters_record_sifting_activity() {
    let mgr = BddManager::new();
    mgr.set_reorder_config(ReorderConfig {
        mode: ReorderMode::Sift,
        ..Default::default()
    });
    let keep = workload(&mgr);
    let report = mgr.reduce_heap();
    let stats = mgr.stats();
    assert_eq!(stats.reorder_invocations, 1);
    assert_eq!(stats.reorder_swaps, report.swaps as u64);
    assert_eq!(stats.reorder_size_before, report.before as u64);
    assert_eq!(stats.reorder_size_after, report.after as u64);
    drop(keep);
}

#[test]
fn reorder_off_mode_records_nothing() {
    let mgr = BddManager::new();
    mgr.set_reorder_config(ReorderConfig {
        mode: ReorderMode::Off,
        ..Default::default()
    });
    let keep = workload(&mgr);
    mgr.reduce_heap();
    assert_eq!(mgr.stats().reorder_invocations, 0);
    drop(keep);
}

#[test]
fn pairs_expose_every_field_in_fixed_order() {
    let mgr = BddManager::new();
    let keep = workload(&mgr);
    let stats = mgr.stats();
    let pairs = stats.pairs();
    assert_eq!(pairs.len(), 20);
    assert_eq!(pairs[0], ("bdd_unique_hits", stats.unique_hits));
    assert_eq!(pairs[19], ("bdd_peak_live_nodes", stats.peak_live_nodes));
    assert!(pairs.iter().all(|(name, _)| name.starts_with("bdd_")));
    drop(keep);
}
