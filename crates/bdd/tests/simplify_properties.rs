//! Property-based tests for the Coudert–Madre simplification operators.
//!
//! The contract under test is the *simplification identity*
//! `simplify(f, c) ∧ c ≡ f ∧ c` for both `constrain` and `restrict`,
//! plus the structural guarantees that distinguish them (`restrict`
//! never grows a BDD and never leaves `f`'s support; `constrain(f, true)
//! = f`). Every law is also exercised across forced mid-sequence `gc()`
//! and `reduce_heap()` calls: both operators are memoized in
//! manager-owned tables keyed by raw node indices *and* are sensitive to
//! the variable order, so a memo entry surviving a collection or a sift
//! would be exactly the stale-cache bug class PR 3 fixed for
//! quantification.

use std::collections::HashSet;

use covest_bdd::{BddManager, Func, VarId};
use proptest::prelude::*;

const NVARS: usize = 5;

/// A tiny expression language used to generate random Boolean functions.
#[derive(Debug, Clone)]
enum Expr {
    Const(bool),
    Var(usize),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        any::<bool>().prop_map(Expr::Const),
        (0..NVARS).prop_map(Expr::Var),
    ];
    leaf.prop_recursive(4, 40, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
        ]
    })
}

fn build(mgr: &BddManager, vars: &[VarId], e: &Expr) -> Func {
    match e {
        Expr::Const(c) => mgr.constant(*c),
        Expr::Var(i) => mgr.var(vars[*i]),
        Expr::Not(a) => build(mgr, vars, a).not(),
        Expr::And(a, b) => build(mgr, vars, a).and(&build(mgr, vars, b)),
        Expr::Or(a, b) => build(mgr, vars, a).or(&build(mgr, vars, b)),
        Expr::Xor(a, b) => build(mgr, vars, a).xor(&build(mgr, vars, b)),
    }
}

fn truth_table(f: &Func) -> Vec<bool> {
    (0..1u32 << NVARS)
        .map(|bits| f.eval(&|v| bits >> v.index() & 1 == 1))
        .collect()
}

/// Checks both simplification identities plus the structural guarantees,
/// returning the pair `(constrain(f, c), restrict(f, c))` for reuse.
/// (The vendored proptest's assertion macros early-return `Err(String)`,
/// hence the error type.)
fn assert_laws(mgr: &BddManager, f: &Func, c: &Func) -> Result<(Func, Func), String> {
    let fc = f.and(c);
    let con = f.constrain(c);
    let res = f.restrict(c);
    prop_assert_eq!(&con.and(c), &fc, "constrain identity violated");
    prop_assert_eq!(&res.and(c), &fc, "restrict identity violated");
    // constrain/restrict by the trivial care set are identities.
    prop_assert_eq!(&f.constrain(&mgr.constant(true)), f);
    prop_assert_eq!(&f.restrict(&mgr.constant(true)), f);
    // restrict is size-safe and support-safe.
    prop_assert!(
        res.node_count() <= f.node_count(),
        "restrict grew the BDD: {} -> {}",
        f.node_count(),
        res.node_count()
    );
    let fsup: HashSet<VarId> = f.support().into_iter().collect();
    prop_assert!(
        res.support().iter().all(|v| fsup.contains(v)),
        "restrict left f's support: {:?} ⊄ {:?}",
        res.support(),
        f.support()
    );
    Ok((con, res))
}

proptest! {
    /// The cofactor identities, straight.
    #[test]
    fn simplification_identities(fe in arb_expr(), ce in arb_expr()) {
        let mgr = BddManager::new();
        let vars = mgr.new_vars(NVARS);
        let f = build(&mgr, &vars, &fe);
        let c = build(&mgr, &vars, &ce);
        assert_laws(&mgr, &f, &c)?;
    }

    /// Both operators agree with `f` pointwise on every care point.
    #[test]
    fn simplified_functions_match_f_on_care_points(fe in arb_expr(), ce in arb_expr()) {
        let mgr = BddManager::new();
        let vars = mgr.new_vars(NVARS);
        let f = build(&mgr, &vars, &fe);
        let c = build(&mgr, &vars, &ce);
        let (con, res) = assert_laws(&mgr, &f, &c)?;
        for bits in 0..1u32 << NVARS {
            let assign = |v: VarId| bits >> v.index() & 1 == 1;
            if !c.eval(&assign) {
                continue;
            }
            prop_assert_eq!(f.eval(&assign), con.eval(&assign), "constrain at {:05b}", bits);
            prop_assert_eq!(f.eval(&assign), res.eval(&assign), "restrict at {:05b}", bits);
        }
    }

    /// The PR-3 bug class: memoized results must not survive collections
    /// or reorderings. The laws are checked, a gc and a sift are forced
    /// (recycling slots and changing the variable order — which changes
    /// what constrain/restrict should even compute), then checked again
    /// on the surviving handles, then once more after another collection
    /// round-trip with extra garbage thrown in.
    #[test]
    fn laws_hold_across_forced_gc_and_reorder(fe in arb_expr(), ce in arb_expr()) {
        let mgr = BddManager::new();
        let vars = mgr.new_vars(NVARS);
        let f = build(&mgr, &vars, &fe);
        let c = build(&mgr, &vars, &ce);
        let truth_f = truth_table(&f);

        // Round 1: populate the memo tables.
        let (con1, res1) = assert_laws(&mgr, &f, &c)?;
        let truth_con1 = truth_table(&con1);
        drop((con1, res1)); // their nodes become garbage

        // Collection recycles slots; a stale memo entry would now dangle.
        mgr.gc();
        let (con2, _res2) = assert_laws(&mgr, &f, &c)?;
        // Same manager state, same order: the recomputed constrain must
        // agree with the pre-gc one semantically.
        prop_assert_eq!(&truth_table(&con2), &truth_con1);

        // Sifting changes the variable order (and collects): results may
        // legitimately differ now, but the laws must still hold and the
        // input handles must still denote the same functions.
        mgr.reduce_heap();
        prop_assert_eq!(&truth_table(&f), &truth_f, "handle broken by reorder");
        assert_laws(&mgr, &f, &c)?;

        // One more round with fresh garbage between the calls.
        let junk = f.xor(&c).or(&f.not());
        drop(junk);
        mgr.gc();
        assert_laws(&mgr, &f, &c)?;
    }
}
