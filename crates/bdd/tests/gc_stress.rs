//! Garbage-collection stress: interleave heavy BDD construction with
//! rootless collections and verify that live handles survive intact and
//! that the table stops growing.
//!
//! Under the RAII API the "protected working set" is simply the set of
//! `Func` values still in scope — there is no roots list to maintain.

use covest_bdd::{BddManager, Func, VarId};
use rand::{rngs::StdRng, Rng, SeedableRng};

fn random_function(mgr: &BddManager, vars: &[VarId], rng: &mut StdRng) -> Func {
    let mut f = mgr.constant(false);
    for _ in 0..rng.gen_range(2..8) {
        let mut cube = mgr.constant(true);
        for &v in vars {
            match rng.gen_range(0..3) {
                0 => cube = cube.and(&mgr.var(v)),
                1 => cube = cube.and(&mgr.nvar(v)),
                _ => {}
            }
        }
        f = f.or(&cube);
    }
    f
}

fn fingerprint(f: &Func, assignments: &[Vec<bool>]) -> Vec<bool> {
    assignments
        .iter()
        .map(|a| f.eval(&|v| a[v.index()]))
        .collect()
}

#[test]
fn gc_keeps_live_handles_and_bounds_memory() {
    let mut rng = StdRng::seed_from_u64(0xDEAD);
    let mgr = BddManager::new();
    let vars = mgr.new_vars(10);
    // Live working set with truth-table fingerprints; everything else
    // becomes garbage the moment its handle drops.
    let mut kept: Vec<(Func, Vec<bool>)> = Vec::new();
    let assignments: Vec<Vec<bool>> = (0..64)
        .map(|i| (0..10).map(|b| (i >> b) & 1 == 1).collect())
        .collect();

    let mut high_water = 0usize;
    for round in 0..30 {
        // Allocate garbage plus one keeper.
        for _ in 0..20 {
            let _ = random_function(&mgr, &vars, &mut rng);
        }
        let keep = random_function(&mgr, &vars, &mut rng);
        let fp = fingerprint(&keep, &assignments);
        kept.push((keep, fp));
        if kept.len() > 5 {
            kept.remove(0); // dropping the handle releases its root
        }
        mgr.gc();
        // Every live function still evaluates identically.
        for (f, fp) in &kept {
            assert_eq!(&fingerprint(f, &assignments), fp, "round {round}");
        }
        high_water = high_water.max(mgr.table_size());
    }
    // The table must not have grown without bound: with ≤ 5 live
    // functions of ≤ 8 cubes over 10 vars, a few thousand slots suffice.
    assert!(
        high_water < 50_000,
        "table grew to {high_water} slots despite GC"
    );
}

#[test]
fn gc_and_reorder_stress_keeps_live_handles() {
    // Same shape as the GC stress above, but every round also sifts: the
    // live working set must survive arbitrary interleavings of reordering
    // (which moves and rewrites nodes in place) and collection (which
    // frees the sift garbage).
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let mgr = BddManager::new();
    let vars = mgr.new_vars(10);
    let mut kept: Vec<(Func, Vec<bool>)> = Vec::new();
    let assignments: Vec<Vec<bool>> = (0..64)
        .map(|i| (0..10).map(|b| (i >> b) & 1 == 1).collect())
        .collect();

    let mut high_water = 0usize;
    for round in 0..20 {
        for _ in 0..10 {
            let _ = random_function(&mgr, &vars, &mut rng);
        }
        let keep = random_function(&mgr, &vars, &mut rng);
        let fp = fingerprint(&keep, &assignments);
        kept.push((keep, fp));
        if kept.len() > 5 {
            kept.remove(0);
        }
        // Alternate the order of collection and sifting across rounds.
        if round % 2 == 0 {
            mgr.gc();
            let stats = mgr.reduce_heap();
            assert!(stats.after <= stats.before, "round {round}");
        } else {
            mgr.reduce_heap();
            mgr.gc();
        }
        for (f, fp) in &kept {
            assert_eq!(&fingerprint(f, &assignments), fp, "round {round}");
        }
        high_water = high_water.max(mgr.table_size());
    }
    assert!(
        high_water < 50_000,
        "table grew to {high_water} slots despite GC + reordering"
    );
}

#[test]
fn gc_idempotent_and_canonical_after_collection() {
    let mgr = BddManager::new();
    let vars = mgr.new_vars(6);
    let lits: Vec<Func> = vars.iter().map(|&v| mgr.var(v)).collect();
    let keep = lits[0].and(&lits[1]).or(&lits[2].xor(&lits[3]));
    {
        let _garbage = mgr.and_many(&lits);
    }
    drop(lits);
    let freed1 = mgr.gc();
    let freed2 = mgr.gc();
    assert!(freed1 > 0);
    assert_eq!(freed2, 0, "second collection finds nothing");
    // Rebuilding an equal function yields an equal handle (canonicity
    // across collections).
    let again = {
        let a = mgr.var(vars[0]).and(&mgr.var(vars[1]));
        let b = mgr.var(vars[2]).xor(&mgr.var(vars[3]));
        a.or(&b)
    };
    assert_eq!(again, keep);
}
