//! Garbage-collection stress: interleave heavy BDD construction with
//! collections and verify that protected functions survive intact and
//! that the table stops growing.

use covest_bdd::{Bdd, Ref, VarId};
use rand::{rngs::StdRng, Rng, SeedableRng};

fn random_function(bdd: &mut Bdd, vars: &[VarId], rng: &mut StdRng) -> Ref {
    let mut f = Ref::FALSE;
    for _ in 0..rng.gen_range(2..8) {
        let mut cube = Ref::TRUE;
        for &v in vars {
            match rng.gen_range(0..3) {
                0 => {
                    let l = bdd.var(v);
                    cube = bdd.and(cube, l);
                }
                1 => {
                    let l = bdd.nvar(v);
                    cube = bdd.and(cube, l);
                }
                _ => {}
            }
        }
        f = bdd.or(f, cube);
    }
    f
}

#[test]
fn gc_keeps_protected_functions_and_bounds_memory() {
    let mut rng = StdRng::seed_from_u64(0xDEAD);
    let mut bdd = Bdd::new();
    let vars = bdd.new_vars(10);
    // Protected working set with truth-table fingerprints.
    let mut protected: Vec<(Ref, Vec<bool>)> = Vec::new();
    let assignments: Vec<Vec<bool>> = (0..64)
        .map(|i| (0..10).map(|b| (i >> b) & 1 == 1).collect())
        .collect();
    let fingerprint = |bdd: &Bdd, f: Ref| -> Vec<bool> {
        assignments
            .iter()
            .map(|a| bdd.eval(f, &|v| a[v.index()]))
            .collect()
    };

    let mut high_water = 0usize;
    for round in 0..30 {
        // Allocate garbage plus one keeper.
        for _ in 0..20 {
            let _ = random_function(&mut bdd, &vars, &mut rng);
        }
        let keep = random_function(&mut bdd, &vars, &mut rng);
        let fp = fingerprint(&bdd, keep);
        protected.push((keep, fp));
        if protected.len() > 5 {
            protected.remove(0);
        }
        let roots: Vec<Ref> = protected.iter().map(|(r, _)| *r).collect();
        let freed = bdd.gc(&roots);
        let _ = freed;
        // Every protected function still evaluates identically.
        for (f, fp) in &protected {
            assert_eq!(&fingerprint(&bdd, *f), fp, "round {round}");
        }
        high_water = high_water.max(bdd.table_size());
    }
    // The table must not have grown without bound: with ≤ 5 protected
    // functions of ≤ 8 cubes over 10 vars, a few thousand slots suffice.
    assert!(
        high_water < 50_000,
        "table grew to {high_water} slots despite GC"
    );
}

#[test]
fn gc_and_reorder_stress_keeps_protected_functions() {
    // Same shape as the GC stress above, but every round also sifts: the
    // protected working set must survive arbitrary interleavings of
    // reordering (which moves and rewrites nodes in place) and collection
    // (which frees the sift garbage).
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let mut bdd = Bdd::new();
    let vars = bdd.new_vars(10);
    let mut protected: Vec<(Ref, Vec<bool>)> = Vec::new();
    let assignments: Vec<Vec<bool>> = (0..64)
        .map(|i| (0..10).map(|b| (i >> b) & 1 == 1).collect())
        .collect();
    let fingerprint = |bdd: &Bdd, f: Ref| -> Vec<bool> {
        assignments
            .iter()
            .map(|a| bdd.eval(f, &|v| a[v.index()]))
            .collect()
    };

    let mut high_water = 0usize;
    for round in 0..20 {
        for _ in 0..10 {
            let _ = random_function(&mut bdd, &vars, &mut rng);
        }
        let keep = random_function(&mut bdd, &vars, &mut rng);
        let fp = fingerprint(&bdd, keep);
        protected.push((keep, fp));
        if protected.len() > 5 {
            protected.remove(0);
        }
        let roots: Vec<Ref> = protected.iter().map(|(r, _)| *r).collect();
        // Alternate the order of collection and sifting across rounds.
        if round % 2 == 0 {
            bdd.gc(&roots);
            let stats = bdd.reduce_heap(&roots);
            assert!(stats.after <= stats.before, "round {round}");
        } else {
            bdd.reduce_heap(&roots);
            bdd.gc(&roots);
        }
        for (f, fp) in &protected {
            assert_eq!(&fingerprint(&bdd, *f), fp, "round {round}");
        }
        high_water = high_water.max(bdd.table_size());
    }
    assert!(
        high_water < 50_000,
        "table grew to {high_water} slots despite GC + reordering"
    );
}

#[test]
fn gc_idempotent_and_canonical_after_collection() {
    let mut bdd = Bdd::new();
    let vars = bdd.new_vars(6);
    let lits: Vec<Ref> = vars.iter().map(|&v| bdd.var(v)).collect();
    let keep = {
        let a = bdd.and(lits[0], lits[1]);
        let b = bdd.xor(lits[2], lits[3]);
        bdd.or(a, b)
    };
    let _garbage = bdd.and_many(lits.clone());
    let freed1 = bdd.gc(&[keep]);
    let freed2 = bdd.gc(&[keep]);
    assert!(freed1 > 0);
    assert_eq!(freed2, 0, "second collection finds nothing");
    // Rebuilding an equal function yields the identical Ref (canonicity
    // across collections).
    let again = {
        let a = bdd.and(lits[0], lits[1]);
        let b = bdd.xor(lits[2], lits[3]);
        bdd.or(a, b)
    };
    assert_eq!(again, keep);
}
