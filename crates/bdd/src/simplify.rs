//! Don't-care simplification: the Coudert–Madre generalized cofactors
//! `constrain` and `restrict`.
//!
//! Both operations *simplify `f` modulo a care set `c`*: the result
//! agrees with `f` everywhere `c` holds and is unconstrained elsewhere,
//! so the identity
//!
//! ```text
//! simplify(f, c) ∧ c  ≡  f ∧ c
//! ```
//!
//! holds for either operation. That freedom is what makes unreachable
//! states (or any other don't-care region) free to exploit: a fixpoint
//! iterate, a BFS frontier, or a transition cluster can be replaced by
//! its simplified form wherever downstream consumers only observe the
//! result inside the care region.
//!
//! - [`Inner::constrain`] is the classic generalized cofactor `f↓c`: at a
//!   node where one care branch is empty it *jumps* into the live branch.
//!   It enjoys the strong image property
//!   `image(f ∧ c) = image(constrain(f, c))` but, because the jump
//!   substitutes subgraphs of `c` into the result, it can pull variables
//!   of `c` into the support and **grow** the BDD.
//! - [`Inner::restrict`] is the sibling-substitution variant: when the
//!   care set's top variable sits above `f`'s it is existentially
//!   quantified out of `c` instead of being branched on, so the support
//!   of the result stays within `f`'s support. On top of that, the
//!   implementation is *size-safe* the way CUDD's `Cudd_bddRestrict` is:
//!   if the recursion still produced a bigger BDD than `f`, plain `f` is
//!   returned — `restrict` never grows anything.
//!
//! Results are memoized in manager-owned direct-mapped caches keyed by
//! `(f, c)` that persist across calls — a reachability care set is
//! applied to every fixpoint iterate, so hits across top-level calls are
//! the common case. Being fixed-size and lossy, the caches also bound
//! their own growth: call sites like the frontier-simplified BFS key
//! entries by a care set that changes every iteration, and those
//! one-shot entries simply age out by overwrite (the old `HashMap`
//! tables needed an explicit flood guard for this). Both operations
//! depend on the variable order, and the cached `Ref`s dangle once
//! slots are recycled, so the caches are dropped by
//! [`Inner::clear_caches`] — i.e. on every gc, reordering, and explicit
//! cache clear (the same contract as the quantification caches).

use crate::manager::Inner;
use crate::node::Ref;

impl Inner {
    /// Coudert–Madre generalized cofactor (`constrain`, also written
    /// `f↓c`): agrees with `f` on `c`; off `c`, takes the value of `f` at
    /// the "nearest" care point under the current variable order.
    ///
    /// Satisfies `constrain(f, c) ∧ c = f ∧ c` and `constrain(f, true) =
    /// f`. `constrain(f, false)` is conventionally `false`. May grow the
    /// BDD and pull `c`'s variables into the support; use
    /// [`Inner::restrict`] when size-safety matters more than the image
    /// property.
    pub fn constrain(&mut self, f: Ref, c: Ref) -> Ref {
        if c.is_true() {
            return f;
        }
        if c.is_false() {
            return Ref::FALSE;
        }
        if f.is_const() {
            return f;
        }
        self.constrain_rec(f, c)
    }

    fn constrain_rec(&mut self, f: Ref, c: Ref) -> Ref {
        if c.is_true() || f.is_const() {
            return f;
        }
        if f == c {
            return Ref::TRUE;
        }
        if let Some(r) = self.constrain_cache.lookup(f, c) {
            self.stats.constrain_hits += 1;
            return r;
        }
        self.stats.constrain_misses += 1;
        let top = self.level(f).min(self.level(c));
        let var = self.var_at_level(top);
        let (f0, f1) = self.cofactors_at(f, top);
        let (c0, c1) = self.cofactors_at(c, top);
        let r = if c0.is_false() {
            // No care point below var=0: jump into the var=1 branch.
            self.constrain_rec(f1, c1)
        } else if c1.is_false() {
            self.constrain_rec(f0, c0)
        } else {
            let lo = self.constrain_rec(f0, c0);
            let hi = self.constrain_rec(f1, c1);
            self.mk(var.0, lo, hi)
        };
        self.constrain_cache.insert(f, c, r);
        r
    }

    /// Coudert–Madre `restrict` (sibling substitution), size-safe:
    /// simplifies `f` modulo the care set `c` without ever leaving `f`'s
    /// support or growing the BDD.
    ///
    /// Satisfies `restrict(f, c) ∧ c = f ∧ c`, `restrict(f, true) = f`,
    /// `support(restrict(f, c)) ⊆ support(f)`, and
    /// `node_count(restrict(f, c)) ≤ node_count(f)` (if the recursion
    /// produces something bigger, `f` itself is returned). An empty care
    /// set carries no information; `restrict(f, false) = f`.
    pub fn restrict(&mut self, f: Ref, c: Ref) -> Ref {
        if c.is_const() || f.is_const() {
            return f;
        }
        let r = self.restrict_rec(f, c);
        if r == f {
            return f;
        }
        // The size guard that makes restrict safe to sprinkle anywhere:
        // never hand back a bigger BDD than the input.
        if self.node_count(r) > self.node_count(f) {
            // Overwrite the cache with the guarded answer — `f` is itself
            // a valid restriction (it agrees with `f` on `c`, trivially,
            // within `f`'s support and size), and the `r == f` fast path
            // above then makes repeated calls O(1) instead of paying the
            // two node-count traversals again.
            self.restrict_cache.insert(f, c, f);
            f
        } else {
            r
        }
    }

    fn restrict_rec(&mut self, f: Ref, c: Ref) -> Ref {
        if c.is_true() || f.is_const() {
            return f;
        }
        if f == c {
            return Ref::TRUE;
        }
        if let Some(r) = self.restrict_cache.lookup(f, c) {
            self.stats.restrict_hits += 1;
            return r;
        }
        self.stats.restrict_misses += 1;
        let flevel = self.level(f);
        let clevel = self.level(c);
        let r = if clevel < flevel {
            // c branches on a variable f never mentions: drop it from the
            // care set (∃var. c) instead of branching — this is what keeps
            // the result's support inside f's.
            let (c0, c1) = self.children(c);
            let cq = self.or(c0, c1);
            self.restrict_rec(f, cq)
        } else {
            let var = self.node(f).var;
            let (f0, f1) = self.cofactors_at(f, flevel);
            let (c0, c1) = self.cofactors_at(c, flevel);
            if c0.is_false() {
                // var=0 is entirely don't-care: substitute the sibling.
                self.restrict_rec(f1, c1)
            } else if c1.is_false() {
                self.restrict_rec(f0, c0)
            } else {
                let lo = self.restrict_rec(f0, c0);
                let hi = self.restrict_rec(f1, c1);
                self.mk(var, lo, hi)
            }
        };
        self.restrict_cache.insert(f, c, r);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::VarId;

    fn eval_all(b: &Inner, f: Ref, nvars: usize) -> Vec<bool> {
        (0..1u32 << nvars)
            .map(|bits| b.eval(f, &|v: VarId| bits >> v.index() & 1 == 1))
            .collect()
    }

    /// A small fixture: f = (x0 ∧ x1) ∨ x2, c = x0 ⊕ x2.
    fn fixture() -> (Inner, Vec<VarId>, Ref, Ref) {
        let mut b = Inner::new();
        let vars = b.new_vars(3);
        let lits: Vec<Ref> = vars.iter().map(|&v| b.var(v)).collect();
        let conj = b.and(lits[0], lits[1]);
        let f = b.or(conj, lits[2]);
        let c = b.xor(lits[0], lits[2]);
        (b, vars, f, c)
    }

    #[test]
    fn constrain_agrees_on_care_set() {
        let (mut b, _, f, c) = fixture();
        let g = b.constrain(f, c);
        let gc = b.and(g, c);
        let fc = b.and(f, c);
        assert_eq!(gc, fc);
    }

    #[test]
    fn restrict_agrees_on_care_set() {
        let (mut b, _, f, c) = fixture();
        let g = b.restrict(f, c);
        let gc = b.and(g, c);
        let fc = b.and(f, c);
        assert_eq!(gc, fc);
    }

    #[test]
    fn trivial_care_sets() {
        let (mut b, _, f, _) = fixture();
        assert_eq!(b.constrain(f, Ref::TRUE), f);
        assert_eq!(b.restrict(f, Ref::TRUE), f);
        assert_eq!(b.constrain(f, Ref::FALSE), Ref::FALSE);
        assert_eq!(b.restrict(f, Ref::FALSE), f);
        assert_eq!(b.constrain(f, f), Ref::TRUE);
        // The false-care convention applies to constant f too.
        assert_eq!(b.constrain(Ref::TRUE, Ref::FALSE), Ref::FALSE);
        assert_eq!(b.restrict(Ref::TRUE, Ref::FALSE), Ref::TRUE);
    }

    #[test]
    fn constrain_is_exact_on_single_care_point() {
        // With c a full minterm, constrain collapses f to the constant
        // f takes at that point.
        let (mut b, vars, f, _) = fixture();
        for bits in 0..1u32 << 3 {
            let cube: Vec<Ref> = vars
                .iter()
                .enumerate()
                .map(|(i, &v)| b.literal(v, bits >> i & 1 == 1))
                .collect();
            let c = b.and_many(cube);
            let g = b.constrain(f, c);
            let expect = b.eval(f, &|v: VarId| bits >> v.index() & 1 == 1);
            assert!(g.is_const());
            assert_eq!(g.is_true(), expect, "care point {bits:03b}");
        }
    }

    #[test]
    fn restrict_stays_in_support_and_never_grows() {
        let (mut b, vars, f, _) = fixture();
        // A care set dragging in an extra variable x3.
        let x3 = b.new_var();
        let l3 = b.var(x3);
        let nf2 = b.nvar(vars[2]);
        let c = b.and(l3, nf2);
        let g = b.restrict(f, c);
        let sup = b.support(g);
        assert!(
            sup.iter().all(|v| b.support(f).contains(v)),
            "restrict leaked care-set variables into the support"
        );
        assert!(b.node_count(g) <= b.node_count(f));
        // The identity still holds.
        let gc = b.and(g, c);
        let fc = b.and(f, c);
        assert_eq!(gc, fc);
    }

    #[test]
    fn memo_caches_persist_across_calls_and_clear() {
        let (mut b, _, f, c) = fixture();
        let g1 = b.constrain(f, c);
        let r1 = b.restrict(f, c);
        assert!(b.constrain_cache.occupied() > 0);
        assert!(b.restrict_cache.occupied() > 0);
        let misses = (b.stats.constrain_misses, b.stats.restrict_misses);
        // Hits across top-level calls return identical results without
        // recomputation (the cross-call miss counters stand still).
        assert_eq!(b.constrain(f, c), g1);
        assert_eq!(b.restrict(f, c), r1);
        assert_eq!((b.stats.constrain_misses, b.stats.restrict_misses), misses);
        b.clear_caches();
        assert_eq!(b.constrain_cache.occupied(), 0);
        assert_eq!(b.restrict_cache.occupied(), 0);
        // Recomputation from a cold cache agrees.
        assert_eq!(b.constrain(f, c), g1);
        assert_eq!(b.restrict(f, c), r1);
    }

    #[test]
    fn simplified_functions_match_oracle_on_care_points() {
        let (mut b, _, f, c) = fixture();
        let truth_f = eval_all(&b, f, 3);
        let truth_c = eval_all(&b, c, 3);
        let g = b.constrain(f, c);
        let r = b.restrict(f, c);
        for (i, (&tf, &tc)) in truth_f.iter().zip(&truth_c).enumerate() {
            if !tc {
                continue;
            }
            let bits = i as u32;
            let assign = |v: VarId| bits >> v.index() & 1 == 1;
            assert_eq!(b.eval(g, &assign), tf, "constrain differs at {bits:03b}");
            assert_eq!(b.eval(r, &assign), tf, "restrict differs at {bits:03b}");
        }
    }
}
