//! The raw-speed table layer: open-addressing unique tables and
//! direct-mapped compute caches.
//!
//! # Unique tables
//!
//! [`UniqueTable`] hash-conses the nodes of one variable (the manager
//! keeps one per level, so dynamic reordering can relink a whole level
//! without touching the rest). A table is a power-of-two array of bare
//! `u32` arena slots — four bytes per entry, no boxed keys — probed
//! linearly from a multiplicative (Fibonacci) hash of the `(lo, hi)`
//! cofactor pair. The node key itself is read straight out of the arena
//! during the probe, so the table never duplicates it. Growth doubles
//! the array at 3/4 load; removal (reordering reclaims nodes eagerly)
//! uses backward-shift deletion so probe chains never accumulate
//! tombstones; GC clears and rebuilds each table from the marked arena.
//!
//! # Compute caches
//!
//! The memo tables behind `ite`, quantification, the fused relational
//! product, `compose` and the Coudert–Madre operators are *caches*, not
//! maps: fixed-size, power-of-two, direct-mapped, lossy. A colliding
//! insert simply overwrites the previous entry. That is sound because
//! every memoized operation is a pure function of its operands — losing
//! an entry can only cost a recomputation, and the recomputation
//! rebuilds the very same nodes through the unique table, so results
//! (and even slot assignment) are bit-identical to an engine with
//! unbounded memos. Per-call-scoped memos (quantification masks differ
//! between calls) are handled with a generation tag instead of a wipe:
//! each top-level call bumps the tag, so entries from earlier calls can
//! never match. `clear_caches` still hard-clears everything, preserving
//! the contract that gc / reordering leave no stale `Ref` observable.

use crate::node::{PackedNode, Ref};

/// Sentinel for an empty table or cache slot. Arena slots can never
/// reach it: the allocator asserts the arena stays below `FREE_VAR`.
const EMPTY: u32 = u32::MAX;

/// Fibonacci hashing constant (2^64 / golden ratio, odd).
const FIB: u64 = 0x9E37_79B9_7F4A_7C15;

#[inline]
fn hash_pair(lo: Ref, hi: Ref) -> u64 {
    (((lo.0 as u64) << 32) | hi.0 as u64).wrapping_mul(FIB)
}

/// Mixes three operand words into well-distributed high bits.
#[inline]
fn hash_triple(a: u32, b: u32, c: u32) -> u64 {
    let h = (((a as u64) << 32) | b as u64).wrapping_mul(FIB);
    (h ^ c as u64).wrapping_mul(FIB)
}

// ---- unique table ------------------------------------------------------

/// Open-addressing hash-consing table for the nodes of one variable.
#[derive(Debug, Clone)]
pub(crate) struct UniqueTable {
    /// Power-of-two array of arena slots (`EMPTY` = vacant).
    slots: Box<[u32]>,
    /// Occupied entries.
    len: usize,
    /// `64 - log2(slots.len())`: maps a 64-bit hash to an index.
    shift: u32,
}

impl UniqueTable {
    const INITIAL_CAP: usize = 16;

    pub fn new() -> Self {
        UniqueTable {
            slots: vec![EMPTY; Self::INITIAL_CAP].into_boxed_slice(),
            len: 0,
            shift: 64 - Self::INITIAL_CAP.trailing_zeros(),
        }
    }

    /// Number of nodes tabled (== live nodes labelled with this
    /// variable) — the level-size metric sifting sorts by.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Slot-array capacity — the cost of a full scan or memset, which
    /// can exceed `len` arbitrarily since removal never shrinks.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Heap footprint of the slot array in bytes.
    pub fn bytes(&self) -> usize {
        self.slots.len() * std::mem::size_of::<u32>()
    }

    #[inline]
    fn home(&self, lo: Ref, hi: Ref) -> usize {
        (hash_pair(lo, hi) >> self.shift) as usize
    }

    /// Ensures one more entry fits below the 3/4 load threshold.
    /// Callers invoke this *before* [`UniqueTable::probe`], so a vacant
    /// position returned by the probe stays valid for
    /// [`UniqueTable::fill`].
    pub fn reserve(&mut self, nodes: &[PackedNode]) {
        if (self.len + 1) * 4 >= self.slots.len() * 3 {
            self.grow(nodes);
        }
    }

    fn grow(&mut self, nodes: &[PackedNode]) {
        let new_cap = self.slots.len() * 2;
        let mut new = vec![EMPTY; new_cap].into_boxed_slice();
        let shift = 64 - new_cap.trailing_zeros();
        let mask = new_cap - 1;
        for &s in self.slots.iter() {
            if s == EMPTY {
                continue;
            }
            let n = &nodes[s as usize];
            let mut i = (hash_pair(n.lo, n.hi) >> shift) as usize;
            while new[i] != EMPTY {
                i = (i + 1) & mask;
            }
            new[i] = s;
        }
        self.slots = new;
        self.shift = shift;
    }

    /// Looks up the node with cofactors `(lo, hi)`: `Ok` with its `Ref`
    /// on a hit, `Err` with the vacant probe position on a miss (pass it
    /// to [`UniqueTable::fill`] after allocating, provided no other
    /// table mutation intervened).
    #[inline]
    pub fn probe(&self, nodes: &[PackedNode], lo: Ref, hi: Ref) -> Result<Ref, usize> {
        let mask = self.slots.len() - 1;
        let mut i = self.home(lo, hi);
        loop {
            let s = self.slots[i];
            if s == EMPTY {
                return Err(i);
            }
            let n = &nodes[s as usize];
            if n.lo == lo && n.hi == hi {
                return Ok(Ref(s));
            }
            i = (i + 1) & mask;
        }
    }

    /// Writes a freshly allocated arena slot into the vacant position a
    /// preceding [`UniqueTable::probe`] miss returned.
    #[inline]
    pub fn fill(&mut self, pos: usize, slot: u32) {
        debug_assert_eq!(self.slots[pos], EMPTY, "fill of an occupied position");
        self.slots[pos] = slot;
        self.len += 1;
    }

    /// Inserts a node known not to be present (GC rebuild path).
    pub fn insert_fresh(&mut self, nodes: &[PackedNode], slot: u32) {
        self.reserve(nodes);
        let n = &nodes[slot as usize];
        match self.probe(nodes, n.lo, n.hi) {
            Err(pos) => self.fill(pos, slot),
            Ok(_) => debug_assert!(false, "insert_fresh found a duplicate node"),
        }
    }

    /// Removes the node with cofactors `(lo, hi)` using backward-shift
    /// deletion (no tombstones: every displaced entry on the probe chain
    /// is moved back toward its home slot). Returns whether it was
    /// present.
    pub fn remove(&mut self, nodes: &[PackedNode], lo: Ref, hi: Ref) -> bool {
        let mask = self.slots.len() - 1;
        let mut i = self.home(lo, hi);
        loop {
            let s = self.slots[i];
            if s == EMPTY {
                return false;
            }
            let n = &nodes[s as usize];
            if n.lo == lo && n.hi == hi {
                break;
            }
            i = (i + 1) & mask;
        }
        self.len -= 1;
        // Backward shift: slide later chain members into the hole when
        // doing so moves them no earlier than their home position.
        let mut hole = i;
        let mut j = i;
        loop {
            j = (j + 1) & mask;
            let s = self.slots[j];
            if s == EMPTY {
                break;
            }
            let n = &nodes[s as usize];
            let home = self.home(n.lo, n.hi);
            if (j.wrapping_sub(home) & mask) >= (j.wrapping_sub(hole) & mask) {
                self.slots[hole] = s;
                hole = j;
            }
        }
        self.slots[hole] = EMPTY;
        true
    }

    /// Empties the table, keeping its capacity (GC rebuild path).
    pub fn clear(&mut self) {
        self.slots.fill(EMPTY);
        self.len = 0;
    }

    /// Replaces the whole table with exactly the `kept` arena slots
    /// (which must be distinct, absent duplicates of each other, and
    /// intact in `nodes`), keeping the current capacity: one memset
    /// plus `kept` reinsertions, no allocation. This is the batch
    /// unlink path of the reordering swap — when most of a level moves
    /// at once it beats per-node backward-shift deletion, whose cost is
    /// a probe chain walk per removal.
    pub fn rebuild(&mut self, nodes: &[PackedNode], kept: &[u32]) {
        self.slots.fill(EMPTY);
        self.len = kept.len();
        if kept.is_empty() {
            return;
        }
        let mask = self.slots.len() - 1;
        for &s in kept {
            let n = &nodes[s as usize];
            let mut i = (hash_pair(n.lo, n.hi) >> self.shift) as usize;
            while self.slots[i] != EMPTY {
                i = (i + 1) & mask;
            }
            self.slots[i] = s;
        }
    }

    /// Right-sizes the slot array to the current occupancy when it is
    /// at least 4x oversized. `remove` and `rebuild` never shrink
    /// capacity, so a level that peaked early would otherwise tax every
    /// later full-table scan (each reorder swap walks the whole array)
    /// at its peak footprint forever. Called once per reordering, after
    /// the swaps settle — not per swap, where the allocation churn
    /// would outweigh the scan savings.
    pub fn compact(&mut self, nodes: &[PackedNode]) {
        let cap = (self.len * 4 / 3 + 1)
            .next_power_of_two()
            .max(Self::INITIAL_CAP);
        if cap * 4 > self.slots.len() {
            return;
        }
        let old = std::mem::replace(&mut self.slots, vec![EMPTY; cap].into_boxed_slice());
        self.shift = 64 - cap.trailing_zeros();
        let mask = cap - 1;
        for &s in old.iter() {
            if s == EMPTY {
                continue;
            }
            let n = &nodes[s as usize];
            let mut i = (hash_pair(n.lo, n.hi) >> self.shift) as usize;
            while self.slots[i] != EMPTY {
                i = (i + 1) & mask;
            }
            self.slots[i] = s;
        }
    }

    /// All tabled nodes, in slot order (deterministic).
    pub fn iter_refs(&self) -> impl Iterator<Item = Ref> + '_ {
        self.slots.iter().filter(|&&s| s != EMPTY).map(|&s| Ref(s))
    }
}

// ---- direct-mapped compute caches --------------------------------------

const ITE_BITS: u32 = 16;
const UNARY_BITS: u32 = 15;
const PAIR_BITS: u32 = 15;
const BIN_BITS: u32 = 14;

/// Direct-mapped cache for the ternary `ite` operator (16 bytes/entry).
/// Persistent across calls; cleared by `clear_caches` only.
#[derive(Debug, Clone)]
pub(crate) struct IteCache {
    slots: Box<[IteEntry]>,
}

#[derive(Debug, Clone, Copy)]
struct IteEntry {
    f: u32,
    g: u32,
    h: u32,
    r: u32,
}

impl IteCache {
    /// Starts unallocated: the slot array materializes on the first
    /// insert, so a manager that never computes an `ite` (or just got
    /// its caches cleared) costs no cache memory. This keeps fresh
    /// managers — e.g. the parallel engine's per-task managers — cheap
    /// to create.
    pub fn new() -> Self {
        IteCache {
            slots: Box::new([]),
        }
    }

    #[inline]
    fn index(f: Ref, g: Ref, h: Ref) -> usize {
        (hash_triple(f.0, g.0, h.0) >> (64 - ITE_BITS)) as usize
    }

    #[inline]
    pub fn lookup(&self, f: Ref, g: Ref, h: Ref) -> Option<Ref> {
        if self.slots.is_empty() {
            return None;
        }
        let e = &self.slots[Self::index(f, g, h)];
        (e.f == f.0 && e.g == g.0 && e.h == h.0).then_some(Ref(e.r))
    }

    #[inline]
    pub fn insert(&mut self, f: Ref, g: Ref, h: Ref, r: Ref) {
        if self.slots.is_empty() {
            let empty = IteEntry {
                f: EMPTY,
                g: EMPTY,
                h: EMPTY,
                r: EMPTY,
            };
            self.slots = vec![empty; 1 << ITE_BITS].into_boxed_slice();
        }
        self.slots[Self::index(f, g, h)] = IteEntry {
            f: f.0,
            g: g.0,
            h: h.0,
            r: r.0,
        };
    }

    /// Releases the slot array entirely (cheaper than a multi-megabyte
    /// memset, and gc/reorder — the only callers — want the memory back
    /// anyway).
    pub fn clear(&mut self) {
        self.slots = Box::new([]);
    }

    /// Occupied entries (test/diagnostic use; O(capacity)).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn occupied(&self) -> usize {
        self.slots.iter().filter(|e| e.f != EMPTY).count()
    }

    pub fn bytes(&self) -> usize {
        self.slots.len() * std::mem::size_of::<IteEntry>()
    }
}

/// Direct-mapped, generation-tagged cache for unary traversals keyed by
/// one `Ref` (quantification, cofactor-by-literal, compose). Each
/// top-level call gets a fresh tag from [`UnaryCache::begin`], so
/// entries written under a different mask / substitution can never
/// match — the tag replaces the per-call `HashMap::clear`.
#[derive(Debug, Clone)]
pub(crate) struct UnaryCache {
    slots: Box<[UnaryEntry]>,
    tag: u64,
}

#[derive(Debug, Clone, Copy)]
struct UnaryEntry {
    /// Generation tag (0 = never written; live tags start at 1).
    tag: u64,
    key: u32,
    r: u32,
}

impl UnaryCache {
    /// Starts unallocated; see [`IteCache::new`].
    pub fn new() -> Self {
        UnaryCache {
            slots: Box::new([]),
            tag: 0,
        }
    }

    /// Starts a new top-level operation; only entries written under the
    /// returned tag will hit.
    pub fn begin(&mut self) -> u64 {
        self.tag += 1;
        self.tag
    }

    #[inline]
    fn index(key: Ref) -> usize {
        ((key.0 as u64).wrapping_mul(FIB) >> (64 - UNARY_BITS)) as usize
    }

    #[inline]
    pub fn lookup(&self, tag: u64, key: Ref) -> Option<Ref> {
        if self.slots.is_empty() {
            return None;
        }
        let e = &self.slots[Self::index(key)];
        (e.tag == tag && e.key == key.0).then_some(Ref(e.r))
    }

    #[inline]
    pub fn insert(&mut self, tag: u64, key: Ref, r: Ref) {
        if self.slots.is_empty() {
            self.slots = vec![
                UnaryEntry {
                    tag: 0,
                    key: EMPTY,
                    r: EMPTY
                };
                1 << UNARY_BITS
            ]
            .into_boxed_slice();
        }
        self.slots[Self::index(key)] = UnaryEntry {
            tag,
            key: key.0,
            r: r.0,
        };
    }

    /// Releases the slot array. The tag counter keeps running, so stale
    /// entries can never be hit even across a clear-and-reallocate
    /// cycle (freshly allocated slots carry tag 0, which `begin` never
    /// returns).
    pub fn clear(&mut self) {
        self.slots = Box::new([]);
    }

    /// Entries ever written since the last clear (test/diagnostic use).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn occupied(&self) -> usize {
        self.slots.iter().filter(|e| e.tag != 0).count()
    }

    pub fn bytes(&self) -> usize {
        self.slots.len() * std::mem::size_of::<UnaryEntry>()
    }
}

/// Direct-mapped, generation-tagged cache keyed by an ordered `Ref`
/// pair: the fused relational product's memo (the quantified-variable
/// mask changes per call, hence the tag).
#[derive(Debug, Clone)]
pub(crate) struct PairCache {
    slots: Box<[PairEntry]>,
    tag: u64,
}

#[derive(Debug, Clone, Copy)]
struct PairEntry {
    tag: u64,
    a: u32,
    b: u32,
    r: u32,
}

impl PairCache {
    /// Starts unallocated; see [`IteCache::new`].
    pub fn new() -> Self {
        PairCache {
            slots: Box::new([]),
            tag: 0,
        }
    }

    /// Starts a new top-level operation (see [`UnaryCache::begin`]).
    pub fn begin(&mut self) -> u64 {
        self.tag += 1;
        self.tag
    }

    #[inline]
    fn index(a: Ref, b: Ref) -> usize {
        (hash_pair(a, b) >> (64 - PAIR_BITS)) as usize
    }

    #[inline]
    pub fn lookup(&self, tag: u64, a: Ref, b: Ref) -> Option<Ref> {
        if self.slots.is_empty() {
            return None;
        }
        let e = &self.slots[Self::index(a, b)];
        (e.tag == tag && e.a == a.0 && e.b == b.0).then_some(Ref(e.r))
    }

    #[inline]
    pub fn insert(&mut self, tag: u64, a: Ref, b: Ref, r: Ref) {
        if self.slots.is_empty() {
            self.slots = vec![
                PairEntry {
                    tag: 0,
                    a: EMPTY,
                    b: EMPTY,
                    r: EMPTY
                };
                1 << PAIR_BITS
            ]
            .into_boxed_slice();
        }
        self.slots[Self::index(a, b)] = PairEntry {
            tag,
            a: a.0,
            b: b.0,
            r: r.0,
        };
    }

    /// Releases the slot array; see [`UnaryCache::clear`] for why stale
    /// tags stay unhittable.
    pub fn clear(&mut self) {
        self.slots = Box::new([]);
    }

    /// Entries ever written since the last clear (test/diagnostic use).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn occupied(&self) -> usize {
        self.slots.iter().filter(|e| e.tag != 0).count()
    }

    pub fn bytes(&self) -> usize {
        self.slots.len() * std::mem::size_of::<PairEntry>()
    }
}

/// Direct-mapped cache keyed by an `(f, care)` pair, persistent across
/// calls: the Coudert–Madre `constrain`/`restrict` memos, where a fixed
/// reachable care set is applied to every fixpoint iterate and
/// cross-call hits are the common case. Being fixed-size it also
/// subsumes the old flood guard: one-shot care sets simply age out by
/// overwrite instead of growing the table for the life of the process.
#[derive(Debug, Clone)]
pub(crate) struct BinCache {
    slots: Box<[BinEntry]>,
}

#[derive(Debug, Clone, Copy)]
struct BinEntry {
    a: u32,
    b: u32,
    r: u32,
}

impl BinCache {
    /// Starts unallocated; see [`IteCache::new`].
    pub fn new() -> Self {
        BinCache {
            slots: Box::new([]),
        }
    }

    #[inline]
    fn index(a: Ref, b: Ref) -> usize {
        (hash_pair(a, b) >> (64 - BIN_BITS)) as usize
    }

    #[inline]
    pub fn lookup(&self, a: Ref, b: Ref) -> Option<Ref> {
        if self.slots.is_empty() {
            return None;
        }
        let e = &self.slots[Self::index(a, b)];
        (e.a == a.0 && e.b == b.0).then_some(Ref(e.r))
    }

    #[inline]
    pub fn insert(&mut self, a: Ref, b: Ref, r: Ref) {
        if self.slots.is_empty() {
            let empty = BinEntry {
                a: EMPTY,
                b: EMPTY,
                r: EMPTY,
            };
            self.slots = vec![empty; 1 << BIN_BITS].into_boxed_slice();
        }
        self.slots[Self::index(a, b)] = BinEntry {
            a: a.0,
            b: b.0,
            r: r.0,
        };
    }

    /// Releases the slot array; see [`IteCache::clear`].
    pub fn clear(&mut self) {
        self.slots = Box::new([]);
    }

    /// Occupied entries (test/diagnostic use; O(capacity)).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn occupied(&self) -> usize {
        self.slots.iter().filter(|e| e.a != EMPTY).count()
    }

    pub fn bytes(&self) -> usize {
        self.slots.len() * std::mem::size_of::<BinEntry>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NIL_SLOT;

    /// Builds a fake arena whose node `i` has cofactors `(keys[i].0,
    /// keys[i].1)` — enough for the table to compare keys.
    fn arena(keys: &[(u32, u32)]) -> Vec<PackedNode> {
        keys.iter()
            .map(|&(lo, hi)| PackedNode {
                var: 0,
                lo: Ref(lo),
                hi: Ref(hi),
                aux: NIL_SLOT,
            })
            .collect()
    }

    #[test]
    fn unique_table_inserts_probes_and_grows() {
        // 100 distinct keys force several doublings past the initial 16.
        let keys: Vec<(u32, u32)> = (0..100).map(|i| (i, i + 1)).collect();
        let nodes = arena(&keys);
        let mut t = UniqueTable::new();
        for (i, &(lo, hi)) in keys.iter().enumerate() {
            t.reserve(&nodes);
            match t.probe(&nodes, Ref(lo), Ref(hi)) {
                Err(pos) => t.fill(pos, i as u32),
                Ok(_) => panic!("fresh key already present"),
            }
        }
        assert_eq!(t.len(), 100);
        for (i, &(lo, hi)) in keys.iter().enumerate() {
            assert_eq!(t.probe(&nodes, Ref(lo), Ref(hi)), Ok(Ref(i as u32)));
        }
        assert!(t.probe(&nodes, Ref(500), Ref(501)).is_err());
    }

    #[test]
    fn unique_table_remove_keeps_chains_probeable() {
        let keys: Vec<(u32, u32)> = (0..64).map(|i| (i * 7, i * 7 + 3)).collect();
        let nodes = arena(&keys);
        let mut t = UniqueTable::new();
        for (i, &(lo, hi)) in keys.iter().enumerate() {
            t.reserve(&nodes);
            let pos = t.probe(&nodes, Ref(lo), Ref(hi)).unwrap_err();
            t.fill(pos, i as u32);
        }
        // Remove every third key; every survivor must stay findable
        // (backward-shift deletion leaves no broken probe chains).
        for (i, &(lo, hi)) in keys.iter().enumerate() {
            if i % 3 == 0 {
                assert!(t.remove(&nodes, Ref(lo), Ref(hi)));
                assert!(!t.remove(&nodes, Ref(lo), Ref(hi)), "double remove");
            }
        }
        for (i, &(lo, hi)) in keys.iter().enumerate() {
            let got = t.probe(&nodes, Ref(lo), Ref(hi)).ok();
            if i % 3 == 0 {
                assert_eq!(got, None);
            } else {
                assert_eq!(got, Some(Ref(i as u32)));
            }
        }
        assert_eq!(t.len(), 64 - 22);
    }

    #[test]
    fn ite_cache_is_lossy_but_exact() {
        let mut c = IteCache::new();
        assert_eq!(c.lookup(Ref(2), Ref(3), Ref(4)), None);
        c.insert(Ref(2), Ref(3), Ref(4), Ref(9));
        assert_eq!(c.lookup(Ref(2), Ref(3), Ref(4)), Some(Ref(9)));
        // A different key never aliases to a wrong answer.
        assert_eq!(c.lookup(Ref(2), Ref(3), Ref(5)), None);
        assert_eq!(c.occupied(), 1);
        c.clear();
        assert_eq!(c.occupied(), 0);
        assert_eq!(c.lookup(Ref(2), Ref(3), Ref(4)), None);
    }

    #[test]
    fn unary_cache_generations_do_not_leak() {
        let mut c = UnaryCache::new();
        let t1 = c.begin();
        c.insert(t1, Ref(7), Ref(11));
        assert_eq!(c.lookup(t1, Ref(7)), Some(Ref(11)));
        let t2 = c.begin();
        // Same key, new generation: the old entry must not match.
        assert_eq!(c.lookup(t2, Ref(7)), None);
        c.insert(t2, Ref(7), Ref(13));
        assert_eq!(c.lookup(t2, Ref(7)), Some(Ref(13)));
        assert!(c.occupied() > 0);
        c.clear();
        assert_eq!(c.occupied(), 0);
        let t3 = c.begin();
        assert_eq!(c.lookup(t3, Ref(7)), None);
    }

    #[test]
    fn pair_cache_generations_do_not_leak() {
        let mut c = PairCache::new();
        let t1 = c.begin();
        c.insert(t1, Ref(3), Ref(5), Ref(8));
        assert_eq!(c.lookup(t1, Ref(3), Ref(5)), Some(Ref(8)));
        let t2 = c.begin();
        assert_eq!(c.lookup(t2, Ref(3), Ref(5)), None);
        c.clear();
        assert_eq!(c.occupied(), 0);
    }

    #[test]
    fn bin_cache_overwrites_on_collision() {
        let mut c = BinCache::new();
        c.insert(Ref(3), Ref(5), Ref(8));
        assert_eq!(c.lookup(Ref(3), Ref(5)), Some(Ref(8)));
        // Same slot, different key: lossy overwrite, never a wrong hit.
        c.insert(Ref(3), Ref(5), Ref(9));
        assert_eq!(c.lookup(Ref(3), Ref(5)), Some(Ref(9)));
        c.clear();
        assert_eq!(c.lookup(Ref(3), Ref(5)), None);
    }
}
