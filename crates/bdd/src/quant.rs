//! Quantification: `exists`, `forall`, the fused relational product
//! `and_exists`, and the multi-operand, schedule-driven
//! conjoin-and-quantify used by partitioned image computation.

use crate::manager::Inner;
use crate::node::{Ref, VarId};

/// An early-quantification schedule for a fixed operand sequence
/// (Burch–Clarke–Long): each quantified variable is eliminated at the
/// *last* operand whose support contains it — i.e. the earliest point in
/// the left-to-right conjunction where its support ends.
///
/// Build once with [`crate::BddManager::quant_schedule`] and replay with
/// [`crate::BddManager::and_exists_schedule`]; the schedule depends only on the
/// operands' supports, so it stays valid across garbage collection and
/// dynamic reordering as long as the operand `Ref`s themselves do.
#[derive(Debug, Clone, Default)]
pub struct QuantSchedule {
    /// Variables appearing in no operand: quantified out of the seed
    /// before the first conjunction (identity unless the seed uses them).
    pub(crate) pre: Vec<VarId>,
    /// `at[i]`: variables whose last occurrence is operand `i`, eliminated
    /// while conjoining that operand.
    pub(crate) at: Vec<Vec<VarId>>,
}

impl QuantSchedule {
    /// Number of operands the schedule was built for.
    pub fn len(&self) -> usize {
        self.at.len()
    }

    /// `true` if the schedule covers no operands.
    pub fn is_empty(&self) -> bool {
        self.at.is_empty()
    }
}

impl Inner {
    /// Existential quantification `∃ vars. f`.
    ///
    /// # Examples
    ///
    /// ```
    /// use covest_bdd::BddManager;
    /// let mgr = BddManager::new();
    /// let x = mgr.new_var();
    /// let y = mgr.new_var();
    /// let f = mgr.var(x).and(&mgr.var(y));
    /// assert_eq!(f.exists(&[x]), mgr.var(y));
    /// ```
    pub fn exists(&mut self, f: Ref, vars: &[VarId]) -> Ref {
        let mask = self.take_mask(vars);
        let tag = self.quant_cache.begin();
        let r = self.quant_rec(f, &mask, true, tag);
        self.mask_scratch = mask;
        r
    }

    /// Universal quantification `∀ vars. f`.
    pub fn forall(&mut self, f: Ref, vars: &[VarId]) -> Ref {
        let mask = self.take_mask(vars);
        let tag = self.quant_cache.begin();
        let r = self.quant_rec(f, &mask, false, tag);
        self.mask_scratch = mask;
        r
    }

    /// Fills and returns the manager-owned variable mask (moved out so the
    /// recursion can borrow `self` mutably); callers hand it back by
    /// storing it into `mask_scratch`, preserving its capacity for the
    /// next quantification instead of allocating per call.
    fn take_mask(&mut self, vars: &[VarId]) -> Vec<bool> {
        let mut mask = std::mem::take(&mut self.mask_scratch);
        mask.clear();
        mask.resize(self.num_vars(), false);
        for &v in vars {
            mask[v.index()] = true;
        }
        mask
    }

    /// `tag` scopes the cache entries to one top-level call: the mask
    /// differs between calls, so a fresh generation (not a wipe) keeps
    /// earlier calls' entries from matching.
    fn quant_rec(&mut self, f: Ref, mask: &[bool], existential: bool, tag: u64) -> Ref {
        if f.is_const() {
            return f;
        }
        if let Some(r) = self.quant_cache.lookup(tag, f) {
            self.stats.quant_hits += 1;
            return r;
        }
        self.stats.quant_misses += 1;
        let n = self.node(f);
        let lo = self.quant_rec(n.lo, mask, existential, tag);
        let hi = self.quant_rec(n.hi, mask, existential, tag);
        let r = if mask[n.var as usize] {
            if existential {
                self.or(lo, hi)
            } else {
                self.and(lo, hi)
            }
        } else {
            self.mk(n.var, lo, hi)
        };
        self.quant_cache.insert(tag, f, r);
        r
    }

    /// Fused relational product `∃ vars. (f ∧ g)`.
    ///
    /// Computing the conjunction and the quantification in one pass avoids
    /// building the (often much larger) intermediate `f ∧ g`; this is the
    /// workhorse of symbolic image/preimage computation.
    pub fn and_exists(&mut self, f: Ref, g: Ref, vars: &[VarId]) -> Ref {
        let mask = self.take_mask(vars);
        let tag = self.pair_cache.begin();
        let r = self.and_exists_rec(f, g, &mask, tag);
        self.mask_scratch = mask;
        r
    }

    fn and_exists_rec(&mut self, f: Ref, g: Ref, mask: &[bool], tag: u64) -> Ref {
        if f.is_false() || g.is_false() {
            return Ref::FALSE;
        }
        if f.is_true() && g.is_true() {
            return Ref::TRUE;
        }
        // Normalize operand order: ∧ is commutative.
        let (f, g) = if f <= g { (f, g) } else { (g, f) };
        if let Some(r) = self.pair_cache.lookup(tag, f, g) {
            self.stats.pair_hits += 1;
            return r;
        }
        self.stats.pair_misses += 1;
        let top = self.level(f).min(self.level(g));
        let var = self.var_at_level(top);
        let (f0, f1) = self.cofactors_at(f, top);
        let (g0, g1) = self.cofactors_at(g, top);
        let r = if mask[var.index()] {
            let lo = self.and_exists_rec(f0, g0, mask, tag);
            if lo.is_true() {
                // Early termination: ∨ with true.
                self.pair_cache.insert(tag, f, g, Ref::TRUE);
                return Ref::TRUE;
            }
            let hi = self.and_exists_rec(f1, g1, mask, tag);
            self.or(lo, hi)
        } else {
            let lo = self.and_exists_rec(f0, g0, mask, tag);
            let hi = self.and_exists_rec(f1, g1, mask, tag);
            self.mk(var.0, lo, hi)
        };
        self.pair_cache.insert(tag, f, g, r);
        r
    }

    /// Builds the early-quantification schedule for eliminating `vars`
    /// from the conjunction of `operands` (in the given order): each
    /// variable is assigned to the last operand whose support contains it.
    #[cfg_attr(not(test), allow(dead_code))] // exercised by in-crate tests
    pub fn quant_schedule(&self, operands: &[Ref], vars: &[VarId]) -> QuantSchedule {
        self.quant_schedule_many(operands, &[vars]).pop().unwrap()
    }

    /// Builds several schedules over the same operand sequence — one per
    /// variable list — computing each operand's support only once.
    pub fn quant_schedule_many(
        &self,
        operands: &[Ref],
        var_lists: &[&[VarId]],
    ) -> Vec<QuantSchedule> {
        let supports: Vec<std::collections::HashSet<VarId>> = operands
            .iter()
            .map(|&f| self.support(f).into_iter().collect())
            .collect();
        var_lists
            .iter()
            .map(|vars| {
                let mut pre = Vec::new();
                let mut at = vec![Vec::new(); operands.len()];
                for &v in *vars {
                    match (0..operands.len())
                        .rev()
                        .find(|&i| supports[i].contains(&v))
                    {
                        Some(i) => at[i].push(v),
                        None => pre.push(v),
                    }
                }
                QuantSchedule { pre, at }
            })
            .collect()
    }

    /// Schedule-driven relational product `∃ vars. (seed ∧ ⋀ operands)`,
    /// where `schedule` was built by [`crate::BddManager::quant_schedule`] over the same
    /// `operands` and `vars`.
    ///
    /// The conjunction is folded left to right and each variable is
    /// quantified out at the operand where its support ends, so the
    /// intermediate products never carry variables that later operands no
    /// longer mention — the standard partitioned-transition-relation
    /// optimization. The `seed` (typically a state set) is conjoined
    /// before the first operand and may mention any of the variables.
    ///
    /// # Panics
    ///
    /// Panics if `schedule.len() != operands.len()`.
    pub fn and_exists_schedule(
        &mut self,
        seed: Ref,
        operands: &[Ref],
        schedule: &QuantSchedule,
    ) -> Ref {
        assert_eq!(
            schedule.len(),
            operands.len(),
            "schedule built for a different operand sequence"
        );
        let mut acc = seed;
        if !schedule.pre.is_empty() {
            acc = self.exists(acc, &schedule.pre);
        }
        for (&f, vars) in operands.iter().zip(&schedule.at) {
            acc = if vars.is_empty() {
                self.and(acc, f)
            } else {
                self.and_exists(acc, f, vars)
            };
            if acc.is_false() {
                return Ref::FALSE;
            }
        }
        acc
    }

    /// Multi-operand fused relational product `∃ vars. ⋀ operands`,
    /// eliminating each variable at the earliest operand where its
    /// support ends.
    ///
    /// Convenience wrapper building the schedule on the fly; callers with
    /// a fixed operand sequence (e.g. a clustered transition relation)
    /// should build the schedule once with [`crate::BddManager::quant_schedule`] and
    /// replay it with [`crate::BddManager::and_exists_schedule`].
    #[cfg_attr(not(test), allow(dead_code))] // exercised by in-crate tests
    pub fn and_exists_multi(&mut self, operands: &[Ref], vars: &[VarId]) -> Ref {
        let schedule = self.quant_schedule(operands, vars);
        self.and_exists_schedule(Ref::TRUE, operands, &schedule)
    }

    /// Shannon cofactor by a literal: `f` with `var` fixed to `value`.
    ///
    /// (The care-set generalized cofactors live in `simplify.rs` as
    /// [`Inner::constrain`] and [`Inner::restrict`].)
    pub fn cofactor(&mut self, f: Ref, var: VarId, value: bool) -> Ref {
        let tag = self.quant_cache.begin();
        self.cofactor_rec(f, var, value, tag)
    }

    fn cofactor_rec(&mut self, f: Ref, var: VarId, value: bool, tag: u64) -> Ref {
        if f.is_const() {
            return f;
        }
        let flevel = self.level(f);
        let vlevel = self.level_of(var);
        if flevel > vlevel {
            return f; // var cannot appear below its level
        }
        if let Some(r) = self.quant_cache.lookup(tag, f) {
            self.stats.quant_hits += 1;
            return r;
        }
        self.stats.quant_misses += 1;
        let n = self.node(f);
        let r = if n.var == var.0 {
            if value {
                n.hi
            } else {
                n.lo
            }
        } else {
            let lo = self.cofactor_rec(n.lo, var, value, tag);
            let hi = self.cofactor_rec(n.hi, var, value, tag);
            self.mk(n.var, lo, hi)
        };
        self.quant_cache.insert(tag, f, r);
        r
    }

    /// Cofactors `f` by a partial assignment given as literals.
    pub fn cofactor_cube(&mut self, f: Ref, literals: &[(VarId, bool)]) -> Ref {
        let mut cur = f;
        for &(v, val) in literals {
            cur = self.cofactor(cur, v, val);
        }
        cur
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exists_removes_var_from_support() {
        let mut b = Inner::new();
        let x = b.new_var();
        let y = b.new_var();
        let fx = b.var(x);
        let fy = b.var(y);
        let f = b.xor(fx, fy);
        let ex = b.exists(f, &[x]);
        assert!(ex.is_true()); // for any y some x makes x^y true
        let fa = b.forall(f, &[x]);
        assert!(fa.is_false());
    }

    #[test]
    fn exists_forall_duality() {
        let mut b = Inner::new();
        let vars = b.new_vars(4);
        let lits: Vec<Ref> = vars.iter().map(|&v| b.var(v)).collect();
        let c0 = b.and(lits[0], lits[1]);
        let c1 = b.xor(lits[2], lits[3]);
        let f = b.or(c0, c1);
        // ∃x.f == ¬∀x.¬f
        let ex = b.exists(f, &[vars[1], vars[2]]);
        let nf = b.not(f);
        let fa = b.forall(nf, &[vars[1], vars[2]]);
        let nfa = b.not(fa);
        assert_eq!(ex, nfa);
    }

    #[test]
    fn and_exists_matches_two_step() {
        let mut b = Inner::new();
        let vars = b.new_vars(6);
        let lits: Vec<Ref> = vars.iter().map(|&v| b.var(v)).collect();
        let t0 = b.iff(lits[0], lits[3]);
        let t1 = b.iff(lits[1], lits[4]);
        let part = b.and(t0, t1);
        let t2 = b.xor(lits[2], lits[5]);
        let f = b.and(part, t2);
        let g = b.and(lits[0], lits[2]);
        let quantified = [vars[0], vars[1], vars[2]];
        let fused = b.and_exists(f, g, &quantified);
        let conj = b.and(f, g);
        let two_step = b.exists(conj, &quantified);
        assert_eq!(fused, two_step);
    }

    #[test]
    fn and_exists_multi_matches_monolithic() {
        let mut b = Inner::new();
        let vars = b.new_vars(8);
        let lits: Vec<Ref> = vars.iter().map(|&v| b.var(v)).collect();
        // Three "clusters" with staggered supports plus a state set.
        let t0 = b.iff(lits[4], lits[0]);
        let t1 = {
            let x = b.xor(lits[0], lits[1]);
            b.iff(lits[5], x)
        };
        let t2 = {
            let x = b.and(lits[1], lits[2]);
            b.iff(lits[6], x)
        };
        let set = b.or(lits[0], lits[2]);
        let quantified = [vars[0], vars[1], vars[2], vars[3]];
        let operands = [set, t0, t1, t2];
        let fused = b.and_exists_multi(&operands, &quantified);
        let mono = b.and_many(operands);
        let two_step = b.exists(mono, &quantified);
        assert_eq!(fused, two_step);
    }

    #[test]
    fn schedule_eliminates_at_last_occurrence() {
        let mut b = Inner::new();
        let vars = b.new_vars(6);
        let lits: Vec<Ref> = vars.iter().map(|&v| b.var(v)).collect();
        let t0 = b.and(lits[0], lits[1]);
        let t1 = b.or(lits[1], lits[2]);
        let sched = b.quant_schedule(&[t0, t1], &[vars[0], vars[1], vars[3]]);
        // var 0 ends at operand 0, var 1 at operand 1, var 3 nowhere.
        assert_eq!(sched.at[0], vec![vars[0]]);
        assert_eq!(sched.at[1], vec![vars[1]]);
        assert_eq!(sched.pre, vec![vars[3]]);
    }

    #[test]
    fn schedule_replay_matches_monolithic_with_seed() {
        let mut b = Inner::new();
        let vars = b.new_vars(6);
        let lits: Vec<Ref> = vars.iter().map(|&v| b.var(v)).collect();
        let t0 = b.iff(lits[3], lits[0]);
        let t1 = {
            let x = b.xor(lits[1], lits[0]);
            b.iff(lits[4], x)
        };
        let seed = b.and(lits[0], lits[2]);
        let quantified = [vars[0], vars[1], vars[2], vars[5]];
        let sched = b.quant_schedule(&[t0, t1], &quantified);
        let fused = b.and_exists_schedule(seed, &[t0, t1], &sched);
        let conj = {
            let c = b.and(seed, t0);
            b.and(c, t1)
        };
        let mono = b.exists(conj, &quantified);
        assert_eq!(fused, mono);
    }

    #[test]
    fn and_exists_multi_empty_operands() {
        let mut b = Inner::new();
        let x = b.new_var();
        assert!(b.and_exists_multi(&[], &[x]).is_true());
    }

    #[test]
    fn cofactor_is_shannon_cofactor() {
        let mut b = Inner::new();
        let x = b.new_var();
        let y = b.new_var();
        let fx = b.var(x);
        let fy = b.var(y);
        let f = b.ite(fx, fy, Ref::FALSE);
        assert_eq!(b.cofactor(f, x, true), fy);
        assert_eq!(b.cofactor(f, x, false), Ref::FALSE);
    }

    #[test]
    fn cofactor_cube_applies_all_literals() {
        let mut b = Inner::new();
        let vars = b.new_vars(3);
        let lits: Vec<Ref> = vars.iter().map(|&v| b.var(v)).collect();
        let c = b.and(lits[0], lits[1]);
        let f = b.or(c, lits[2]);
        let g = b.cofactor_cube(f, &[(vars[0], true), (vars[2], false)]);
        assert_eq!(g, lits[1]);
    }

    #[test]
    fn quantifying_absent_var_is_identity() {
        let mut b = Inner::new();
        let x = b.new_var();
        let y = b.new_var();
        let fx = b.var(x);
        let ex = b.exists(fx, &[y]);
        assert_eq!(ex, fx);
    }
}
