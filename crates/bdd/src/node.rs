//! Node and reference types for the BDD manager.

use std::fmt;

/// Identifier of a BDD variable.
///
/// Variables are created by [`crate::BddManager::new_var`] and are identified by a
/// dense index. The *order* in which variables appear along BDD paths is a
/// separate notion (the variable's *level*); the manager maintains the
/// `var -> level` map so that variable identity is stable even if the order
/// changes.
///
/// # Examples
///
/// ```
/// use covest_bdd::BddManager;
/// let mgr = BddManager::new();
/// let x = mgr.new_var();
/// assert_eq!(x.index(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub(crate) u32);

impl VarId {
    /// Creates a variable id from a raw index.
    ///
    /// Only meaningful for indices of variables already created on the
    /// manager that the id will be used with.
    pub fn from_index(index: usize) -> Self {
        VarId(index as u32)
    }

    /// The dense index of this variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A crate-private reference to a BDD node.
///
/// `Ref`s are plain indices: they are `Copy`, cheap to store, and only
/// meaningful together with the engine that produced them. The two
/// constants [`Ref::FALSE`] and [`Ref::TRUE`] refer to the terminal nodes
/// and are valid for every engine.
///
/// `Ref` is **not** part of the public API: external code holds rooted
/// [`crate::Func`] handles instead, whose validity across GC/reordering
/// is guaranteed by the manager's external-root table. Because the engine
/// hash-conses nodes, two `Ref`s obtained from the same engine are equal
/// **iff** they denote the same Boolean function (canonicity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ref(pub(crate) u32);

impl Ref {
    /// The constant-false terminal.
    pub const FALSE: Ref = Ref(0);
    /// The constant-true terminal.
    pub const TRUE: Ref = Ref(1);

    /// Returns `true` if this is one of the two terminal nodes.
    pub fn is_const(self) -> bool {
        self.0 <= 1
    }

    /// Returns `true` if this is the constant-true terminal.
    pub fn is_true(self) -> bool {
        self == Ref::TRUE
    }

    /// Returns `true` if this is the constant-false terminal.
    pub fn is_false(self) -> bool {
        self == Ref::FALSE
    }

    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Ref {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Ref::FALSE => write!(f, "⊥"),
            Ref::TRUE => write!(f, "⊤"),
            Ref(i) => write!(f, "@{i}"),
        }
    }
}

/// Internal decision node: `if var then hi else lo`.
///
/// This is the *view* type handed to traversals ([`crate::manager::Inner::node`]);
/// the arena itself stores [`PackedNode`]s, which add the `aux` word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct Node {
    pub var: u32,
    pub lo: Ref,
    pub hi: Ref,
}

/// One 16-byte arena entry: a decision node plus the `aux` word.
///
/// `aux` is overloaded by slot state: on a live node it is the GC mark
/// (zero outside a collection), on a free slot it is the next-free link
/// of the intrusive free list (the slot itself is flagged by
/// `var == FREE_VAR`). Packing nodes this way keeps four entries per
/// 64-byte cache line and lets every table index nodes by bare `u32`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PackedNode {
    pub var: u32,
    pub lo: Ref,
    pub hi: Ref,
    pub aux: u32,
}

// The whole point of the packed arena: exactly 16 bytes per node.
const _: () = assert!(std::mem::size_of::<PackedNode>() == 16);

/// Sentinel variable index used by terminal nodes (level = +infinity).
pub(crate) const TERMINAL_VAR: u32 = u32::MAX;

/// Sentinel variable index marking a free (recycled) arena slot; the
/// slot's `aux` field holds the next free slot (or [`NIL_SLOT`]).
pub(crate) const FREE_VAR: u32 = u32::MAX - 1;

/// Null link for the intrusive free list threaded through `aux`.
pub(crate) const NIL_SLOT: u32 = u32::MAX;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_refs_are_const() {
        assert!(Ref::FALSE.is_const());
        assert!(Ref::TRUE.is_const());
        assert!(Ref::TRUE.is_true());
        assert!(Ref::FALSE.is_false());
        assert!(!Ref::TRUE.is_false());
        assert!(!Ref(7).is_const());
    }

    #[test]
    fn var_id_roundtrip() {
        let v = VarId::from_index(42);
        assert_eq!(v.index(), 42);
        assert_eq!(v.to_string(), "v42");
    }

    #[test]
    fn ref_display() {
        assert_eq!(Ref::FALSE.to_string(), "⊥");
        assert_eq!(Ref::TRUE.to_string(), "⊤");
        assert_eq!(Ref(9).to_string(), "@9");
    }
}
