//! Graphviz DOT export for visual debugging of BDDs.

use std::collections::HashSet;
use std::fmt::Write as _;

use crate::manager::Inner;
use crate::node::{Ref, VarId};

impl Inner {
    /// Renders the graph of `roots` in Graphviz DOT format.
    ///
    /// Solid edges are `hi` (variable true), dashed edges are `lo`.
    /// Named variables (see [`Inner::set_var_name`]) are used as labels.
    pub fn to_dot(&self, roots: &[(&str, Ref)]) -> String {
        let mut out = String::from("digraph bdd {\n  rankdir=TB;\n");
        out.push_str("  node [shape=circle];\n");
        out.push_str("  f0 [label=\"0\", shape=box];\n");
        out.push_str("  f1 [label=\"1\", shape=box];\n");
        let mut seen: HashSet<Ref> = HashSet::new();
        let mut stack: Vec<Ref> = Vec::new();
        for (name, r) in roots {
            let _ = writeln!(
                out,
                "  root_{n} [label=\"{n}\", shape=plaintext];\n  root_{n} -> {};",
                Self::dot_id(*r),
                n = sanitize(name),
            );
            stack.push(*r);
        }
        while let Some(r) = stack.pop() {
            if r.is_const() || !seen.insert(r) {
                continue;
            }
            let n = self.node(r);
            let label = self
                .var_name(VarId(n.var))
                .map(str::to_owned)
                .unwrap_or_else(|| format!("v{}", n.var));
            let _ = writeln!(out, "  n{} [label=\"{label}\"];", r.0);
            let _ = writeln!(out, "  n{} -> {} [style=dashed];", r.0, Self::dot_id(n.lo));
            let _ = writeln!(out, "  n{} -> {};", r.0, Self::dot_id(n.hi));
            stack.push(n.lo);
            stack.push(n.hi);
        }
        out.push_str("}\n");
        out
    }

    fn dot_id(r: Ref) -> String {
        match r {
            Ref::FALSE => "f0".to_owned(),
            Ref::TRUE => "f1".to_owned(),
            Ref(i) => format!("n{i}"),
        }
    }
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_alphanumeric() { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let mut b = Inner::new();
        let x = b.new_named_var("x");
        let y = b.new_var();
        let fx = b.var(x);
        let fy = b.var(y);
        let f = b.and(fx, fy);
        let dot = b.to_dot(&[("f", f)]);
        assert!(dot.contains("digraph bdd"));
        assert!(dot.contains("label=\"x\""));
        assert!(dot.contains("label=\"v1\""));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("root_f"));
        // Two decision nodes for x ∧ y.
        assert_eq!(dot.matches("label=\"x\"").count(), 1);
    }

    #[test]
    fn dot_of_constant() {
        let b = Inner::new();
        let dot = b.to_dot(&[("t", Ref::TRUE)]);
        assert!(dot.contains("root_t -> f1"));
    }
}
