//! The internal BDD engine: packed node arena, open-addressing unique
//! tables, direct-mapped compute caches, external-root table and core
//! operations.
//!
//! [`Inner`] is the crate-private substrate behind the public
//! [`crate::BddManager`] / [`crate::Func`] handle API. It works in terms
//! of raw [`Ref`] indices; nothing outside this crate ever sees a `Ref`.
//!
//! Nodes live in one contiguous arena of 16-byte [`PackedNode`] entries
//! indexed by `u32`. Free slots are threaded into an intrusive free list
//! through their `aux` word (flagged by `var == FREE_VAR`); on live
//! nodes `aux` carries the GC mark. Hash-consing goes through one
//! open-addressing [`UniqueTable`] per variable, and all operation memos
//! are fixed-size direct-mapped caches (see `table.rs` for why lossiness
//! is sound).

use crate::node::{Node, PackedNode, Ref, VarId, FREE_VAR, NIL_SLOT, TERMINAL_VAR};
use crate::table::{BinCache, IteCache, PairCache, UnaryCache, UniqueTable};

/// One slot of the external-root table: a pinned node handle plus the
/// number of live [`crate::Func`] clones pointing at it.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ExtSlot {
    pub(crate) r: Ref,
    pub(crate) rc: u32,
}

/// The BDD engine state shared behind a [`crate::BddManager`].
///
/// All nodes live in a single arena; functions are denoted by [`Ref`]
/// handles. Nodes are hash-consed through a unique table, so structural
/// equality of `Ref`s coincides with semantic equality of the Boolean
/// functions they denote.
///
/// External ownership is tracked by the *root table* (`ext`): every live
/// [`crate::Func`] owns one reference count on one slot. Garbage
/// collection and dynamic reordering treat the root table as the complete
/// external live set — there is no caller-supplied roots parameter on the
/// public API.
#[derive(Debug, Clone)]
pub(crate) struct Inner {
    /// The packed node arena; slots 0 and 1 are the terminals.
    pub(crate) nodes: Vec<PackedNode>,
    /// Level-organized unique table: `unique[var]` hash-conses the nodes
    /// labelled `var`, keyed by their `(lo, hi)` cofactors. Keeping one
    /// subtable per variable lets dynamic reordering move a whole level
    /// without touching the rest of the table.
    pub(crate) unique: Vec<UniqueTable>,
    pub(crate) ite_cache: IteCache,
    pub(crate) var2level: Vec<u32>,
    pub(crate) level2var: Vec<u32>,
    var_names: Vec<Option<String>>,
    /// Head of the intrusive free list threaded through the `aux` words
    /// of freed arena slots (`NIL_SLOT` when empty).
    pub(crate) free_head: u32,
    /// Free-list length, kept so `live_nodes` stays O(1).
    pub(crate) free_len: u32,
    /// Variable groups kept adjacent by reordering (e.g. a state bit's
    /// current/next pair); see [`Inner::group_vars`].
    pub(crate) groups: Vec<Vec<u32>>,
    /// `var_group[var]` is the index into `groups`, if the variable is
    /// grouped.
    pub(crate) var_group: Vec<Option<u32>>,
    pub(crate) reorder: crate::reorder::ReorderConfig,
    /// Live-node count that triggers the next automatic reordering.
    pub(crate) next_auto_threshold: usize,
    /// External-root table: slab of `(Ref, refcount)` slots owned by
    /// [`crate::Func`] handles. Slot allocation/release is O(1) via the
    /// free list, regardless of how many roots are live.
    pub(crate) ext: Vec<ExtSlot>,
    pub(crate) ext_free: Vec<u32>,
    // Generation-tagged caches shared by the unary traversals
    // (quantification, cofactor, compose) and the fused relational
    // product; a tag bump replaces the old per-call memo clear.
    pub(crate) quant_cache: UnaryCache,
    pub(crate) pair_cache: PairCache,
    pub(crate) mask_scratch: Vec<bool>,
    /// Var-indexed substitution scratch for `compose`/`vector_compose`
    /// (`NIL_REF` = identity), reused across calls.
    pub(crate) subst_scratch: Vec<Ref>,
    // Persistent caches for the Coudert–Madre simplification operators
    // (see `simplify.rs`). Keyed by `(f, care)`, valid only for the
    // current variable order and node slots, hence dropped by
    // `clear_caches` like every other memo.
    pub(crate) constrain_cache: BinCache,
    pub(crate) restrict_cache: BinCache,
    /// Deterministic engine counters (see [`crate::BddStats`]); bumped
    /// inline on the hot paths, snapshot via [`Inner::stats`].
    pub(crate) stats: crate::stats::BddStats,
}

impl Default for Inner {
    fn default() -> Self {
        Self::new()
    }
}

impl Inner {
    /// Creates an empty engine with no variables.
    pub fn new() -> Self {
        let terminal = PackedNode {
            var: TERMINAL_VAR,
            lo: Ref::FALSE,
            hi: Ref::TRUE,
            aux: 0,
        };
        Inner {
            // Slots 0 and 1 are the terminals; their node contents are
            // sentinels and never looked up through the unique table.
            nodes: vec![terminal, terminal],
            unique: Vec::new(),
            ite_cache: IteCache::new(),
            var2level: Vec::new(),
            level2var: Vec::new(),
            var_names: Vec::new(),
            free_head: NIL_SLOT,
            free_len: 0,
            groups: Vec::new(),
            var_group: Vec::new(),
            reorder: crate::reorder::ReorderConfig::default(),
            next_auto_threshold: crate::reorder::ReorderConfig::default().auto_threshold,
            ext: Vec::new(),
            ext_free: Vec::new(),
            quant_cache: UnaryCache::new(),
            pair_cache: PairCache::new(),
            mask_scratch: Vec::new(),
            subst_scratch: Vec::new(),
            constrain_cache: BinCache::new(),
            restrict_cache: BinCache::new(),
            stats: crate::stats::BddStats {
                // The two terminals exist from birth: the high-water mark
                // starts at the initial live-node count, not at zero.
                peak_live_nodes: 2,
                ..Default::default()
            },
        }
    }

    /// Snapshot of the deterministic engine counters.
    pub fn stats(&self) -> crate::stats::BddStats {
        self.stats
    }

    /// Zeroes the engine counters. The `peak_live_nodes` high-water mark
    /// restarts at the *current* live-node count — the nodes alive right
    /// now were allocated, so a fresh measurement window still starts
    /// from them, never from zero.
    pub fn reset_stats(&mut self) {
        self.stats = crate::stats::BddStats {
            peak_live_nodes: self.live_nodes() as u64,
            ..Default::default()
        };
    }

    // ---- external-root table ------------------------------------------

    /// Registers `r` in the root table with refcount 1 and returns its
    /// slot. O(1): reuses a free slot or appends.
    pub(crate) fn ext_alloc(&mut self, r: Ref) -> u32 {
        debug_assert!(!r.is_const(), "terminals are never rooted");
        match self.ext_free.pop() {
            Some(slot) => {
                self.ext[slot as usize] = ExtSlot { r, rc: 1 };
                slot
            }
            None => {
                let slot = self.ext.len() as u32;
                self.ext.push(ExtSlot { r, rc: 1 });
                slot
            }
        }
    }

    /// Adds one reference to a root slot (a [`crate::Func`] clone).
    pub(crate) fn ext_inc(&mut self, slot: u32) {
        self.ext[slot as usize].rc += 1;
    }

    /// Drops one reference from a root slot; the slot is recycled when the
    /// count reaches zero. O(1) — no scan over the live roots.
    pub(crate) fn ext_dec(&mut self, slot: u32) {
        let s = &mut self.ext[slot as usize];
        debug_assert!(s.rc > 0, "root table refcount underflow");
        s.rc -= 1;
        if s.rc == 0 {
            self.ext_free.push(slot);
        }
    }

    /// The node a root slot pins.
    pub(crate) fn ext_ref(&self, slot: u32) -> Ref {
        debug_assert!(self.ext[slot as usize].rc > 0, "read of a dead root slot");
        self.ext[slot as usize].r
    }

    /// Number of live root-table slots (distinct pinned handles; clones of
    /// one handle share a slot).
    pub(crate) fn ext_live(&self) -> usize {
        self.ext.len() - self.ext_free.len()
    }

    /// Appends every externally rooted `Ref` (one per live slot) to `out`.
    pub(crate) fn ext_roots_into(&self, out: &mut Vec<Ref>) {
        out.extend(
            self.ext
                .iter()
                .filter(|s| s.rc > 0 && !s.r.is_const())
                .map(|s| s.r),
        );
    }

    // ---- variables ----------------------------------------------------

    /// Creates a fresh variable, ordered after all existing variables.
    pub fn new_var(&mut self) -> VarId {
        let id = self.var2level.len() as u32;
        self.var2level.push(id);
        self.level2var.push(id);
        self.var_names.push(None);
        self.unique.push(UniqueTable::new());
        self.var_group.push(None);
        VarId(id)
    }

    /// Creates `n` fresh variables, ordered after all existing variables.
    pub fn new_vars(&mut self, n: usize) -> Vec<VarId> {
        (0..n).map(|_| self.new_var()).collect()
    }

    /// Creates a fresh named variable (the name shows up in DOT dumps and
    /// debugging output).
    pub fn new_named_var(&mut self, name: impl Into<String>) -> VarId {
        let v = self.new_var();
        self.var_names[v.index()] = Some(name.into());
        v
    }

    /// Assigns a debug name to a variable.
    pub fn set_var_name(&mut self, var: VarId, name: impl Into<String>) {
        self.var_names[var.index()] = Some(name.into());
    }

    /// Returns the debug name of `var`, if one was assigned.
    pub fn var_name(&self, var: VarId) -> Option<&str> {
        self.var_names[var.index()].as_deref()
    }

    /// Number of variables created on this engine.
    pub fn num_vars(&self) -> usize {
        self.var2level.len()
    }

    /// Total number of allocated (live or freed-but-unreused) node slots,
    /// including the two terminals. This is the "BDD nodes" statistic
    /// reported in the paper's Table 2.
    pub fn table_size(&self) -> usize {
        self.nodes.len()
    }

    /// Number of live nodes (allocated slots minus the free list).
    pub fn live_nodes(&self) -> usize {
        self.nodes.len() - self.free_len as usize
    }

    /// Engine memory footprint in bytes: the packed node arena plus
    /// every unique table and compute cache. Used as the peak-RSS proxy
    /// in benchmark reports — it tracks exactly the structures this
    /// module owns, independent of allocator behavior.
    pub fn arena_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<PackedNode>()
            + self.unique.iter().map(UniqueTable::bytes).sum::<usize>()
            + self.ite_cache.bytes()
            + self.quant_cache.bytes()
            + self.pair_cache.bytes()
            + self.constrain_cache.bytes()
            + self.restrict_cache.bytes()
    }

    /// The level (position in the variable order, `0` = topmost) of `var`.
    pub fn level_of(&self, var: VarId) -> u32 {
        self.var2level[var.index()]
    }

    /// The variable sitting at `level` in the current order.
    pub fn var_at_level(&self, level: u32) -> VarId {
        VarId(self.level2var[level as usize])
    }

    #[inline]
    pub(crate) fn node(&self, r: Ref) -> Node {
        let p = self.nodes[r.index()];
        debug_assert_ne!(p.var, FREE_VAR, "read of a freed node slot");
        Node {
            var: p.var,
            lo: p.lo,
            hi: p.hi,
        }
    }

    /// Pops a free slot (or appends) and writes the node; free-list
    /// links live in the `aux` words of the freed slots themselves.
    #[inline]
    pub(crate) fn alloc_node(&mut self, var: u32, lo: Ref, hi: Ref) -> Ref {
        let entry = PackedNode {
            var,
            lo,
            hi,
            aux: 0,
        };
        if self.free_head != NIL_SLOT {
            let slot = self.free_head;
            self.free_head = self.nodes[slot as usize].aux;
            self.free_len -= 1;
            self.nodes[slot as usize] = entry;
            Ref(slot)
        } else {
            let slot = self.nodes.len() as u32;
            assert!(slot < FREE_VAR, "BDD arena exhausted the u32 slot space");
            self.nodes.push(entry);
            Ref(slot)
        }
    }

    /// Returns a slot to the free list (flagged by `var == FREE_VAR`,
    /// next link in `aux`). The caller must already have unlinked the
    /// node from its unique table.
    #[inline]
    pub(crate) fn free_node(&mut self, slot: u32) {
        let n = &mut self.nodes[slot as usize];
        debug_assert_ne!(n.var, FREE_VAR, "double free of an arena slot");
        n.var = FREE_VAR;
        n.aux = self.free_head;
        self.free_head = slot;
        self.free_len += 1;
    }

    /// Level of the topmost variable of `r`; terminals get `u32::MAX`.
    #[inline]
    pub(crate) fn level(&self, r: Ref) -> u32 {
        if r.is_const() {
            u32::MAX
        } else {
            self.var2level[self.nodes[r.index()].var as usize]
        }
    }

    /// The variable labelling the root node of `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is a terminal.
    pub fn root_var(&self, r: Ref) -> VarId {
        assert!(!r.is_const(), "terminals have no root variable");
        VarId(self.nodes[r.index()].var)
    }

    /// The `(lo, hi)` cofactors of the root node of `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is a terminal.
    pub fn children(&self, r: Ref) -> (Ref, Ref) {
        assert!(!r.is_const(), "terminals have no children");
        let n = self.nodes[r.index()];
        (n.lo, n.hi)
    }

    /// Hash-consed node constructor; maintains the ROBDD invariants.
    pub(crate) fn mk(&mut self, var: u32, lo: Ref, hi: Ref) -> Ref {
        if lo == hi {
            return lo;
        }
        debug_assert!(
            self.var2level[var as usize] < self.level(lo)
                && self.var2level[var as usize] < self.level(hi),
            "ordering violation in mk"
        );
        // Reserve before probing so a vacant probe position stays valid
        // for the fill below (allocation never touches the table).
        self.unique[var as usize].reserve(&self.nodes);
        match self.unique[var as usize].probe(&self.nodes, lo, hi) {
            Ok(r) => {
                self.stats.unique_hits += 1;
                r
            }
            Err(pos) => {
                self.stats.unique_misses += 1;
                let r = self.alloc_node(var, lo, hi);
                self.unique[var as usize].fill(pos, r.0);
                self.stats.unique_insertions += 1;
                self.stats.peak_live_nodes =
                    self.stats.peak_live_nodes.max(self.live_nodes() as u64);
                r
            }
        }
    }

    /// The function that is true exactly when `var` is true.
    pub fn var(&mut self, var: VarId) -> Ref {
        self.mk(var.0, Ref::FALSE, Ref::TRUE)
    }

    /// The function that is true exactly when `var` is false.
    pub fn nvar(&mut self, var: VarId) -> Ref {
        self.mk(var.0, Ref::TRUE, Ref::FALSE)
    }

    /// A literal: `var` if `positive`, `!var` otherwise.
    #[cfg_attr(not(test), allow(dead_code))] // exercised by in-crate tests
    pub fn literal(&mut self, var: VarId, positive: bool) -> Ref {
        if positive {
            self.var(var)
        } else {
            self.nvar(var)
        }
    }

    /// The constant function for `value`.
    #[cfg_attr(not(test), allow(dead_code))] // exercised by in-crate tests
    pub fn constant(&self, value: bool) -> Ref {
        if value {
            Ref::TRUE
        } else {
            Ref::FALSE
        }
    }

    /// If-then-else: `ite(f, g, h) = (f ∧ g) ∨ (¬f ∧ h)`.
    ///
    /// This is the single primitive from which all binary connectives are
    /// derived; results are memoized in the engine-wide cache.
    pub fn ite(&mut self, f: Ref, g: Ref, h: Ref) -> Ref {
        // Terminal cases.
        if f.is_true() {
            return g;
        }
        if f.is_false() {
            return h;
        }
        if g == h {
            return g;
        }
        if g.is_true() && h.is_false() {
            return f;
        }
        if let Some(r) = self.ite_cache.lookup(f, g, h) {
            self.stats.ite_hits += 1;
            return r;
        }
        self.stats.ite_misses += 1;
        let top = self.level(f).min(self.level(g)).min(self.level(h));
        let var = self.level2var[top as usize];
        let (f0, f1) = self.cofactors_at(f, top);
        let (g0, g1) = self.cofactors_at(g, top);
        let (h0, h1) = self.cofactors_at(h, top);
        let lo = self.ite(f0, g0, h0);
        let hi = self.ite(f1, g1, h1);
        let r = self.mk(var, lo, hi);
        self.ite_cache.insert(f, g, h, r);
        r
    }

    /// Shannon cofactors of `r` with respect to the variable at `level`
    /// (which must be at or above `r`'s root level).
    #[inline]
    pub(crate) fn cofactors_at(&self, r: Ref, level: u32) -> (Ref, Ref) {
        if self.level(r) == level {
            let n = self.nodes[r.index()];
            (n.lo, n.hi)
        } else {
            (r, r)
        }
    }

    /// Logical negation.
    pub fn not(&mut self, f: Ref) -> Ref {
        self.ite(f, Ref::FALSE, Ref::TRUE)
    }

    /// Logical conjunction.
    pub fn and(&mut self, f: Ref, g: Ref) -> Ref {
        self.ite(f, g, Ref::FALSE)
    }

    /// Logical disjunction.
    pub fn or(&mut self, f: Ref, g: Ref) -> Ref {
        self.ite(f, Ref::TRUE, g)
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: Ref, g: Ref) -> Ref {
        let ng = self.not(g);
        self.ite(f, ng, g)
    }

    /// Biconditional (xnor).
    pub fn iff(&mut self, f: Ref, g: Ref) -> Ref {
        let ng = self.not(g);
        self.ite(f, g, ng)
    }

    /// Implication `f → g`.
    pub fn implies(&mut self, f: Ref, g: Ref) -> Ref {
        self.ite(f, g, Ref::TRUE)
    }

    /// Difference `f ∧ ¬g`.
    pub fn diff(&mut self, f: Ref, g: Ref) -> Ref {
        let ng = self.not(g);
        self.and(f, ng)
    }

    /// Conjunction of many operands (true for the empty list).
    pub fn and_many<I: IntoIterator<Item = Ref>>(&mut self, fs: I) -> Ref {
        let mut acc = Ref::TRUE;
        for f in fs {
            acc = self.and(acc, f);
            if acc.is_false() {
                break;
            }
        }
        acc
    }

    /// Disjunction of many operands (false for the empty list).
    pub fn or_many<I: IntoIterator<Item = Ref>>(&mut self, fs: I) -> Ref {
        let mut acc = Ref::FALSE;
        for f in fs {
            acc = self.or(acc, f);
            if acc.is_true() {
                break;
            }
        }
        acc
    }

    /// Returns `true` if `f → g` is a tautology (set inclusion).
    pub fn leq(&mut self, f: Ref, g: Ref) -> bool {
        self.implies(f, g).is_true()
    }

    /// Evaluates `f` under a total assignment.
    #[cfg_attr(not(test), allow(dead_code))] // exercised by in-crate tests
    pub fn eval(&self, f: Ref, assignment: &dyn Fn(VarId) -> bool) -> bool {
        let mut cur = f;
        while !cur.is_const() {
            let n = self.nodes[cur.index()];
            cur = if assignment(VarId(n.var)) { n.hi } else { n.lo };
        }
        cur.is_true()
    }

    /// Number of distinct decision nodes reachable from `f` (excluding
    /// terminals). This per-function size is the usual "BDD size" metric.
    pub fn node_count(&self, f: Ref) -> usize {
        self.node_count_many(std::slice::from_ref(&f))
    }

    /// Number of distinct decision nodes reachable from any of `roots`.
    pub fn node_count_many(&self, roots: &[Ref]) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack: Vec<Ref> = roots.to_vec();
        let mut count = 0usize;
        while let Some(r) = stack.pop() {
            if r.is_const() || !seen.insert(r) {
                continue;
            }
            count += 1;
            let n = self.nodes[r.index()];
            stack.push(n.lo);
            stack.push(n.hi);
        }
        count
    }

    /// The set of variables appearing in `f`, sorted by index.
    pub fn support(&self, f: Ref) -> Vec<VarId> {
        let mut seen = std::collections::HashSet::new();
        let mut vars = std::collections::BTreeSet::new();
        let mut stack = vec![f];
        while let Some(r) = stack.pop() {
            if r.is_const() || !seen.insert(r) {
                continue;
            }
            let n = self.nodes[r.index()];
            vars.insert(n.var);
            stack.push(n.lo);
            stack.push(n.hi);
        }
        vars.into_iter().map(VarId).collect()
    }

    /// Garbage-collects every node not reachable from the external-root
    /// table or the `extra` refs (internal pins used by tests and the
    /// reordering machinery).
    ///
    /// Marks live nodes through their `aux` words, sweeps the arena
    /// (dead slots join the intrusive free list), and rebuilds every
    /// unique table from the survivors — a clear-and-reinsert pass is
    /// cheaper and leaves shorter probe chains than per-node
    /// backward-shift removals when many nodes die at once. All
    /// operation caches are dropped: their cached `Ref`s would otherwise
    /// dangle into recycled slots.
    ///
    /// Returns the number of freed node slots.
    pub fn gc(&mut self, extra: &[Ref]) -> usize {
        let mut stack: Vec<Ref> = extra.to_vec();
        self.ext_roots_into(&mut stack);
        while let Some(r) = stack.pop() {
            if r.is_const() {
                continue;
            }
            let n = &mut self.nodes[r.index()];
            if n.aux != 0 {
                continue;
            }
            n.aux = 1;
            let (lo, hi) = (n.lo, n.hi);
            stack.push(lo);
            stack.push(hi);
        }
        for table in &mut self.unique {
            table.clear();
        }
        let mut freed = 0usize;
        for i in 2..self.nodes.len() {
            let n = self.nodes[i];
            if n.var == FREE_VAR {
                continue; // already on the free list
            }
            if n.aux != 0 {
                self.nodes[i].aux = 0;
                self.unique[n.var as usize].insert_fresh(&self.nodes, i as u32);
            } else {
                self.free_node(i as u32);
                freed += 1;
            }
        }
        self.clear_caches();
        self.stats.gc_runs += 1;
        self.stats.gc_nodes_reclaimed += freed as u64;
        // Deliberately no peak_live_nodes update: a collection shrinks
        // the live set but the high-water mark records how big the
        // manager ever got (see `reset_stats` for the one reset point).
        freed
    }

    /// Drops all memoization caches, including the generation-tagged
    /// quantification caches and the simplification caches — after a
    /// reorder shuffles levels (or a collection recycles slots), a stale
    /// memoized `Ref` must never be observable. `constrain`/`restrict`
    /// results additionally *depend* on the variable order, so surviving
    /// a reorder would be wrong even without slot recycling.
    pub fn clear_caches(&mut self) {
        self.ite_cache.clear();
        self.quant_cache.clear();
        self.pair_cache.clear();
        self.constrain_cache.clear();
        self.restrict_cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Inner, Ref, Ref, Ref) {
        let mut b = Inner::new();
        let x = b.new_var();
        let y = b.new_var();
        let z = b.new_var();
        let (fx, fy, fz) = (b.var(x), b.var(y), b.var(z));
        (b, fx, fy, fz)
    }

    #[test]
    fn constants() {
        let b = Inner::new();
        assert!(b.constant(true).is_true());
        assert!(b.constant(false).is_false());
    }

    #[test]
    fn var_and_negation_are_distinct() {
        let mut b = Inner::new();
        let x = b.new_var();
        let fx = b.var(x);
        let nfx = b.not(fx);
        assert_ne!(fx, nfx);
        let back = b.not(nfx);
        assert_eq!(fx, back);
    }

    #[test]
    fn and_or_basic_identities() {
        let (mut b, fx, fy, _) = setup();
        assert_eq!(b.and(fx, Ref::TRUE), fx);
        assert_eq!(b.and(fx, Ref::FALSE), Ref::FALSE);
        assert_eq!(b.or(fx, Ref::FALSE), fx);
        assert_eq!(b.or(fx, Ref::TRUE), Ref::TRUE);
        let a1 = b.and(fx, fy);
        let a2 = b.and(fy, fx);
        assert_eq!(a1, a2);
    }

    #[test]
    fn de_morgan() {
        let (mut b, fx, fy, _) = setup();
        let land = b.and(fx, fy);
        let n1 = b.not(land);
        let nx = b.not(fx);
        let ny = b.not(fy);
        let n2 = b.or(nx, ny);
        assert_eq!(n1, n2);
    }

    #[test]
    fn xor_iff_duality() {
        let (mut b, fx, fy, _) = setup();
        let x1 = b.xor(fx, fy);
        let i1 = b.iff(fx, fy);
        let ni1 = b.not(i1);
        assert_eq!(x1, ni1);
    }

    #[test]
    fn ite_is_shannon_expansion() {
        let (mut b, fx, fy, fz) = setup();
        let f = b.ite(fx, fy, fz);
        // f = (x ∧ y) ∨ (¬x ∧ z)
        let xy = b.and(fx, fy);
        let nx = b.not(fx);
        let nxz = b.and(nx, fz);
        let expect = b.or(xy, nxz);
        assert_eq!(f, expect);
    }

    #[test]
    fn leq_checks_inclusion() {
        let (mut b, fx, fy, _) = setup();
        let conj = b.and(fx, fy);
        assert!(b.leq(conj, fx));
        assert!(!b.leq(fx, conj));
    }

    #[test]
    fn eval_follows_assignment() {
        let (mut b, fx, fy, _) = setup();
        let f = b.and(fx, fy);
        assert!(b.eval(f, &|v| v.index() <= 1));
        assert!(!b.eval(f, &|v| v.index() == 0));
    }

    #[test]
    fn node_count_of_conjunction_chain() {
        let mut b = Inner::new();
        let vars = b.new_vars(8);
        let lits: Vec<Ref> = vars.iter().map(|&v| b.var(v)).collect();
        let f = b.and_many(lits);
        assert_eq!(b.node_count(f), 8);
    }

    #[test]
    fn support_reports_used_vars() {
        let (mut b, fx, _, fz) = setup();
        let f = b.and(fx, fz);
        let s = b.support(f);
        assert_eq!(s, vec![VarId(0), VarId(2)]);
    }

    #[test]
    fn gc_frees_dead_nodes_and_keeps_roots() {
        let mut b = Inner::new();
        let vars = b.new_vars(6);
        let lits: Vec<Ref> = vars.iter().map(|&v| b.var(v)).collect();
        let keep = b.and(lits[0], lits[1]);
        let _dead = b.and_many(lits.clone());
        let live_before = b.live_nodes();
        let freed = b.gc(&[keep]);
        assert!(freed > 0);
        assert_eq!(b.live_nodes(), live_before - freed);
        // The kept function still evaluates correctly.
        assert!(b.eval(keep, &|v| v.index() < 2));
        // Rebuilding the same function (from fresh literals — the old
        // literal refs above may have been collected) reuses the live
        // nodes: hash-consing returns the identical root.
        let l0 = b.var(vars[0]);
        let l1 = b.var(vars[1]);
        let again = b.and(l0, l1);
        assert_eq!(again, keep);
    }

    #[test]
    fn gc_then_alloc_reuses_slots() {
        let mut b = Inner::new();
        let vars = b.new_vars(4);
        let lits: Vec<Ref> = vars.iter().map(|&v| b.var(v)).collect();
        let dead = b.and_many(lits.clone());
        let size_before = b.table_size();
        b.gc(&[lits[0], lits[1], lits[2], lits[3]]);
        // Build something new; table should not grow past its previous size
        // until the free list is exhausted.
        let _f = b.or(lits[0], lits[1]);
        assert!(b.table_size() <= size_before);
        let _ = dead; // dead ref must not be dereferenced after gc
    }

    #[test]
    fn gc_treats_root_table_as_live() {
        let mut b = Inner::new();
        let vars = b.new_vars(4);
        let lits: Vec<Ref> = vars.iter().map(|&v| b.var(v)).collect();
        let keep = b.and(lits[0], lits[1]);
        let slot = b.ext_alloc(keep);
        let _dead = b.and(lits[2], lits[3]);
        b.gc(&[]);
        assert!(b.eval(keep, &|v| v.index() < 2));
        // Releasing the slot makes the node collectable.
        b.ext_dec(slot);
        b.gc(&[]);
        assert_eq!(b.live_nodes(), 2, "only terminals survive");
    }

    #[test]
    fn ext_slots_are_recycled_in_o1() {
        let mut b = Inner::new();
        let x = b.new_var();
        let fx = b.var(x);
        let s0 = b.ext_alloc(fx);
        let s1 = b.ext_alloc(fx);
        assert_ne!(s0, s1, "clones of distinct handles get distinct slots");
        b.ext_inc(s0);
        b.ext_dec(s0);
        assert_eq!(b.ext_live(), 2);
        b.ext_dec(s0);
        assert_eq!(b.ext_live(), 1);
        // The freed slot is reused by the next registration.
        let s2 = b.ext_alloc(fx);
        assert_eq!(s2, s0);
    }

    #[test]
    fn gc_clears_quantification_scratch() {
        let mut b = Inner::new();
        let vars = b.new_vars(3);
        let lits: Vec<Ref> = vars.iter().map(|&v| b.var(v)).collect();
        let f = b.and(lits[0], lits[1]);
        let _e = b.exists(f, &[vars[0]]);
        let _ae = b.and_exists(f, lits[2], &[vars[1]]);
        let _co = b.constrain(f, lits[2]);
        let _re = b.restrict(f, lits[2]);
        assert!(b.quant_cache.occupied() > 0 || b.pair_cache.occupied() > 0);
        assert!(b.constrain_cache.occupied() > 0 && b.restrict_cache.occupied() > 0);
        b.gc(&[f]);
        assert_eq!(b.quant_cache.occupied(), 0);
        assert_eq!(b.pair_cache.occupied(), 0);
        assert_eq!(b.constrain_cache.occupied(), 0);
        assert_eq!(b.restrict_cache.occupied(), 0);
        b.clear_caches();
        assert_eq!(b.ite_cache.occupied(), 0);
    }

    #[test]
    fn free_list_is_intrusive_and_o1() {
        let mut b = Inner::new();
        let vars = b.new_vars(4);
        let lits: Vec<Ref> = vars.iter().map(|&v| b.var(v)).collect();
        let dead = b.and_many(lits.clone());
        let size_before = b.table_size();
        let freed = b.gc(&lits);
        assert!(freed > 0);
        assert_eq!(b.live_nodes(), size_before - freed);
        // Freed slots are flagged and chained through their aux words.
        let mut chained = 0usize;
        let mut cursor = b.free_head;
        while cursor != crate::node::NIL_SLOT {
            assert_eq!(b.nodes[cursor as usize].var, crate::node::FREE_VAR);
            cursor = b.nodes[cursor as usize].aux;
            chained += 1;
        }
        assert_eq!(chained, freed);
        assert_eq!(chained, b.free_len as usize);
        // Reallocation reuses the chained slots before growing the arena.
        let again = b.and(lits[0], lits[1]);
        assert!(b.table_size() <= size_before);
        let _ = (dead, again);
    }

    #[test]
    fn and_many_or_many_empty() {
        let mut b = Inner::new();
        assert!(b.and_many([]).is_true());
        assert!(b.or_many([]).is_false());
    }

    #[test]
    fn named_vars() {
        let mut b = Inner::new();
        let v = b.new_named_var("clk");
        assert_eq!(b.var_name(v), Some("clk"));
        let w = b.new_var();
        assert_eq!(b.var_name(w), None);
        b.set_var_name(w, "rst");
        assert_eq!(b.var_name(w), Some("rst"));
    }
}
