//! The BDD manager: node store, unique table and core operations.

use std::collections::HashMap;

use crate::node::{Node, Ref, VarId, TERMINAL_VAR};

/// A manager for reduced ordered binary decision diagrams (ROBDDs).
///
/// All nodes live in a single arena owned by the manager; functions are
/// denoted by [`Ref`] handles. Nodes are hash-consed through a unique
/// table, so structural equality of `Ref`s coincides with semantic
/// equality of the Boolean functions they denote.
///
/// The manager is the substrate for every symbolic computation in the
/// `covest` workspace (transition relations, reachability, model checking
/// and the coverage-estimation fixpoints of the DAC'99 algorithm).
///
/// # Examples
///
/// ```
/// use covest_bdd::Bdd;
///
/// let mut bdd = Bdd::new();
/// let x = bdd.new_var();
/// let y = bdd.new_var();
/// let fx = bdd.var(x);
/// let fy = bdd.var(y);
/// let conj = bdd.and(fx, fy);
/// let conj2 = bdd.and(fy, fx);
/// assert_eq!(conj, conj2); // canonicity
/// ```
#[derive(Debug, Clone)]
pub struct Bdd {
    pub(crate) nodes: Vec<Node>,
    /// Level-organized unique table: `unique[var]` hash-conses the nodes
    /// labelled `var`, keyed by their `(lo, hi)` cofactors. Keeping one
    /// subtable per variable lets dynamic reordering move a whole level
    /// without touching the rest of the table.
    pub(crate) unique: Vec<HashMap<(Ref, Ref), Ref>>,
    pub(crate) ite_cache: HashMap<(Ref, Ref, Ref), Ref>,
    pub(crate) var2level: Vec<u32>,
    pub(crate) level2var: Vec<u32>,
    var_names: Vec<Option<String>>,
    pub(crate) free: Vec<u32>,
    /// Variable groups kept adjacent by reordering (e.g. a state bit's
    /// current/next pair); see [`Bdd::group_vars`].
    pub(crate) groups: Vec<Vec<u32>>,
    /// `var_group[var]` is the index into `groups`, if the variable is
    /// grouped.
    pub(crate) var_group: Vec<Option<u32>>,
    pub(crate) reorder: crate::reorder::ReorderConfig,
    /// Live-node count that triggers the next automatic reordering.
    pub(crate) next_auto_threshold: usize,
    /// Externally protected handles (see [`Bdd::protect`]): always treated
    /// as additional roots by [`Bdd::gc`] and [`Bdd::reduce_heap`].
    pub(crate) protected: Vec<Ref>,
    // Manager-owned scratch buffers reused across quantification calls so
    // `exists`/`forall`/`and_exists` do not allocate per invocation.
    pub(crate) quant_memo: HashMap<Ref, Ref>,
    pub(crate) pair_memo: HashMap<(Ref, Ref), Ref>,
    pub(crate) mask_scratch: Vec<bool>,
}

impl Default for Bdd {
    fn default() -> Self {
        Self::new()
    }
}

impl Bdd {
    /// Creates an empty manager with no variables.
    pub fn new() -> Self {
        let terminal = Node {
            var: TERMINAL_VAR,
            lo: Ref::FALSE,
            hi: Ref::TRUE,
        };
        Bdd {
            // Slots 0 and 1 are the terminals; their node contents are
            // sentinels and never looked up through the unique table.
            nodes: vec![terminal, terminal],
            unique: Vec::new(),
            ite_cache: HashMap::new(),
            var2level: Vec::new(),
            level2var: Vec::new(),
            var_names: Vec::new(),
            free: Vec::new(),
            groups: Vec::new(),
            var_group: Vec::new(),
            reorder: crate::reorder::ReorderConfig::default(),
            next_auto_threshold: crate::reorder::ReorderConfig::default().auto_threshold,
            quant_memo: HashMap::new(),
            pair_memo: HashMap::new(),
            mask_scratch: Vec::new(),
            protected: Vec::new(),
        }
    }

    /// Registers `r` as an external root: [`Bdd::gc`] and
    /// [`Bdd::reduce_heap`] treat it as live in addition to their explicit
    /// `roots` until a matching [`Bdd::unprotect`]. Protection is a
    /// multiset — protecting a handle twice requires unprotecting it
    /// twice. Use this when handles must survive a collection point whose
    /// caller cannot name them (e.g. results accumulated across calls
    /// that internally trigger automatic reordering).
    pub fn protect(&mut self, r: Ref) {
        if !r.is_const() {
            self.protected.push(r);
        }
    }

    /// Removes one protection entry for `r` (no-op if none exists).
    pub fn unprotect(&mut self, r: Ref) {
        if let Some(pos) = self.protected.iter().rposition(|&p| p == r) {
            self.protected.swap_remove(pos);
        }
    }

    /// The currently protected handles (with multiplicity).
    pub fn protected(&self) -> &[Ref] {
        &self.protected
    }

    /// Creates a fresh variable, ordered after all existing variables.
    pub fn new_var(&mut self) -> VarId {
        let id = self.var2level.len() as u32;
        self.var2level.push(id);
        self.level2var.push(id);
        self.var_names.push(None);
        self.unique.push(HashMap::new());
        self.var_group.push(None);
        VarId(id)
    }

    /// Creates `n` fresh variables, ordered after all existing variables.
    pub fn new_vars(&mut self, n: usize) -> Vec<VarId> {
        (0..n).map(|_| self.new_var()).collect()
    }

    /// Creates a fresh named variable (the name shows up in DOT dumps and
    /// debugging output).
    pub fn new_named_var(&mut self, name: impl Into<String>) -> VarId {
        let v = self.new_var();
        self.var_names[v.index()] = Some(name.into());
        v
    }

    /// Assigns a debug name to a variable.
    pub fn set_var_name(&mut self, var: VarId, name: impl Into<String>) {
        self.var_names[var.index()] = Some(name.into());
    }

    /// Returns the debug name of `var`, if one was assigned.
    pub fn var_name(&self, var: VarId) -> Option<&str> {
        self.var_names[var.index()].as_deref()
    }

    /// Number of variables created on this manager.
    pub fn num_vars(&self) -> usize {
        self.var2level.len()
    }

    /// Total number of allocated (live or freed-but-unreused) node slots,
    /// including the two terminals. This is the "BDD nodes" statistic
    /// reported in the paper's Table 2.
    pub fn table_size(&self) -> usize {
        self.nodes.len()
    }

    /// Number of live nodes (allocated slots minus the free list).
    pub fn live_nodes(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    /// The level (position in the variable order, `0` = topmost) of `var`.
    pub fn level_of(&self, var: VarId) -> u32 {
        self.var2level[var.index()]
    }

    /// The variable sitting at `level` in the current order.
    pub fn var_at_level(&self, level: u32) -> VarId {
        VarId(self.level2var[level as usize])
    }

    #[inline]
    pub(crate) fn node(&self, r: Ref) -> Node {
        self.nodes[r.index()]
    }

    /// Level of the topmost variable of `r`; terminals get `u32::MAX`.
    #[inline]
    pub(crate) fn level(&self, r: Ref) -> u32 {
        if r.is_const() {
            u32::MAX
        } else {
            self.var2level[self.nodes[r.index()].var as usize]
        }
    }

    /// The variable labelling the root node of `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is a terminal.
    pub fn root_var(&self, r: Ref) -> VarId {
        assert!(!r.is_const(), "terminals have no root variable");
        VarId(self.nodes[r.index()].var)
    }

    /// The `(lo, hi)` cofactors of the root node of `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is a terminal.
    pub fn children(&self, r: Ref) -> (Ref, Ref) {
        assert!(!r.is_const(), "terminals have no children");
        let n = self.nodes[r.index()];
        (n.lo, n.hi)
    }

    /// Hash-consed node constructor; maintains the ROBDD invariants.
    pub(crate) fn mk(&mut self, var: u32, lo: Ref, hi: Ref) -> Ref {
        if lo == hi {
            return lo;
        }
        debug_assert!(
            self.var2level[var as usize] < self.level(lo)
                && self.var2level[var as usize] < self.level(hi),
            "ordering violation in mk"
        );
        if let Some(&r) = self.unique[var as usize].get(&(lo, hi)) {
            return r;
        }
        let node = Node { var, lo, hi };
        let r = if let Some(slot) = self.free.pop() {
            self.nodes[slot as usize] = node;
            Ref(slot)
        } else {
            let slot = self.nodes.len() as u32;
            self.nodes.push(node);
            Ref(slot)
        };
        self.unique[var as usize].insert((lo, hi), r);
        r
    }

    /// The function that is true exactly when `var` is true.
    pub fn var(&mut self, var: VarId) -> Ref {
        self.mk(var.0, Ref::FALSE, Ref::TRUE)
    }

    /// The function that is true exactly when `var` is false.
    pub fn nvar(&mut self, var: VarId) -> Ref {
        self.mk(var.0, Ref::TRUE, Ref::FALSE)
    }

    /// A literal: `var` if `positive`, `!var` otherwise.
    pub fn literal(&mut self, var: VarId, positive: bool) -> Ref {
        if positive {
            self.var(var)
        } else {
            self.nvar(var)
        }
    }

    /// The constant function for `value`.
    pub fn constant(&self, value: bool) -> Ref {
        if value {
            Ref::TRUE
        } else {
            Ref::FALSE
        }
    }

    /// If-then-else: `ite(f, g, h) = (f ∧ g) ∨ (¬f ∧ h)`.
    ///
    /// This is the single primitive from which all binary connectives are
    /// derived; results are memoized in the manager-wide cache.
    pub fn ite(&mut self, f: Ref, g: Ref, h: Ref) -> Ref {
        // Terminal cases.
        if f.is_true() {
            return g;
        }
        if f.is_false() {
            return h;
        }
        if g == h {
            return g;
        }
        if g.is_true() && h.is_false() {
            return f;
        }
        if let Some(&r) = self.ite_cache.get(&(f, g, h)) {
            return r;
        }
        let top = self.level(f).min(self.level(g)).min(self.level(h));
        let var = self.level2var[top as usize];
        let (f0, f1) = self.cofactors_at(f, top);
        let (g0, g1) = self.cofactors_at(g, top);
        let (h0, h1) = self.cofactors_at(h, top);
        let lo = self.ite(f0, g0, h0);
        let hi = self.ite(f1, g1, h1);
        let r = self.mk(var, lo, hi);
        self.ite_cache.insert((f, g, h), r);
        r
    }

    /// Shannon cofactors of `r` with respect to the variable at `level`
    /// (which must be at or above `r`'s root level).
    #[inline]
    pub(crate) fn cofactors_at(&self, r: Ref, level: u32) -> (Ref, Ref) {
        if self.level(r) == level {
            let n = self.nodes[r.index()];
            (n.lo, n.hi)
        } else {
            (r, r)
        }
    }

    /// Logical negation.
    pub fn not(&mut self, f: Ref) -> Ref {
        self.ite(f, Ref::FALSE, Ref::TRUE)
    }

    /// Logical conjunction.
    pub fn and(&mut self, f: Ref, g: Ref) -> Ref {
        self.ite(f, g, Ref::FALSE)
    }

    /// Logical disjunction.
    pub fn or(&mut self, f: Ref, g: Ref) -> Ref {
        self.ite(f, Ref::TRUE, g)
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: Ref, g: Ref) -> Ref {
        let ng = self.not(g);
        self.ite(f, ng, g)
    }

    /// Biconditional (xnor).
    pub fn iff(&mut self, f: Ref, g: Ref) -> Ref {
        let ng = self.not(g);
        self.ite(f, g, ng)
    }

    /// Implication `f → g`.
    pub fn implies(&mut self, f: Ref, g: Ref) -> Ref {
        self.ite(f, g, Ref::TRUE)
    }

    /// Difference `f ∧ ¬g`.
    pub fn diff(&mut self, f: Ref, g: Ref) -> Ref {
        let ng = self.not(g);
        self.and(f, ng)
    }

    /// Conjunction of many operands (true for the empty list).
    pub fn and_many<I: IntoIterator<Item = Ref>>(&mut self, fs: I) -> Ref {
        let mut acc = Ref::TRUE;
        for f in fs {
            acc = self.and(acc, f);
            if acc.is_false() {
                break;
            }
        }
        acc
    }

    /// Disjunction of many operands (false for the empty list).
    pub fn or_many<I: IntoIterator<Item = Ref>>(&mut self, fs: I) -> Ref {
        let mut acc = Ref::FALSE;
        for f in fs {
            acc = self.or(acc, f);
            if acc.is_true() {
                break;
            }
        }
        acc
    }

    /// Returns `true` if `f → g` is a tautology (set inclusion).
    pub fn leq(&mut self, f: Ref, g: Ref) -> bool {
        self.implies(f, g).is_true()
    }

    /// Evaluates `f` under a total assignment.
    pub fn eval(&self, f: Ref, assignment: &dyn Fn(VarId) -> bool) -> bool {
        let mut cur = f;
        while !cur.is_const() {
            let n = self.nodes[cur.index()];
            cur = if assignment(VarId(n.var)) { n.hi } else { n.lo };
        }
        cur.is_true()
    }

    /// Number of distinct decision nodes reachable from `f` (excluding
    /// terminals). This per-function size is the usual "BDD size" metric.
    pub fn node_count(&self, f: Ref) -> usize {
        self.node_count_many(std::slice::from_ref(&f))
    }

    /// Number of distinct decision nodes reachable from any of `roots`.
    pub fn node_count_many(&self, roots: &[Ref]) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack: Vec<Ref> = roots.to_vec();
        let mut count = 0usize;
        while let Some(r) = stack.pop() {
            if r.is_const() || !seen.insert(r) {
                continue;
            }
            count += 1;
            let n = self.nodes[r.index()];
            stack.push(n.lo);
            stack.push(n.hi);
        }
        count
    }

    /// The set of variables appearing in `f`, sorted by index.
    pub fn support(&self, f: Ref) -> Vec<VarId> {
        let mut seen = std::collections::HashSet::new();
        let mut vars = std::collections::BTreeSet::new();
        let mut stack = vec![f];
        while let Some(r) = stack.pop() {
            if r.is_const() || !seen.insert(r) {
                continue;
            }
            let n = self.nodes[r.index()];
            vars.insert(n.var);
            stack.push(n.lo);
            stack.push(n.hi);
        }
        vars.into_iter().map(VarId).collect()
    }

    /// Garbage-collects every node not reachable from `roots`.
    ///
    /// All operation caches are dropped and dead slots are recycled.
    /// Any `Ref` not transitively protected by `roots` becomes invalid;
    /// the caller is responsible for keeping only protected handles.
    ///
    /// Returns the number of freed node slots.
    pub fn gc(&mut self, roots: &[Ref]) -> usize {
        let mut marked = vec![false; self.nodes.len()];
        marked[0] = true;
        marked[1] = true;
        let mut stack: Vec<Ref> = roots.to_vec();
        stack.extend_from_slice(&self.protected);
        while let Some(r) = stack.pop() {
            if marked[r.index()] {
                continue;
            }
            marked[r.index()] = true;
            let n = self.nodes[r.index()];
            stack.push(n.lo);
            stack.push(n.hi);
        }
        let already_free: std::collections::HashSet<u32> = self.free.iter().copied().collect();
        let mut freed = 0usize;
        for (i, m) in marked.iter().enumerate().skip(2) {
            if !*m && !already_free.contains(&(i as u32)) {
                let node = self.nodes[i];
                self.unique[node.var as usize].remove(&(node.lo, node.hi));
                self.free.push(i as u32);
                freed += 1;
            }
        }
        self.ite_cache.clear();
        freed
    }

    /// Drops all memoization caches (useful to bound memory between
    /// unrelated computations without invalidating any `Ref`).
    pub fn clear_caches(&mut self) {
        self.ite_cache.clear();
        self.quant_memo.clear();
        self.pair_memo.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Bdd, Ref, Ref, Ref) {
        let mut b = Bdd::new();
        let x = b.new_var();
        let y = b.new_var();
        let z = b.new_var();
        let (fx, fy, fz) = (b.var(x), b.var(y), b.var(z));
        (b, fx, fy, fz)
    }

    #[test]
    fn constants() {
        let b = Bdd::new();
        assert!(b.constant(true).is_true());
        assert!(b.constant(false).is_false());
    }

    #[test]
    fn var_and_negation_are_distinct() {
        let mut b = Bdd::new();
        let x = b.new_var();
        let fx = b.var(x);
        let nfx = b.not(fx);
        assert_ne!(fx, nfx);
        let back = b.not(nfx);
        assert_eq!(fx, back);
    }

    #[test]
    fn and_or_basic_identities() {
        let (mut b, fx, fy, _) = setup();
        assert_eq!(b.and(fx, Ref::TRUE), fx);
        assert_eq!(b.and(fx, Ref::FALSE), Ref::FALSE);
        assert_eq!(b.or(fx, Ref::FALSE), fx);
        assert_eq!(b.or(fx, Ref::TRUE), Ref::TRUE);
        let a1 = b.and(fx, fy);
        let a2 = b.and(fy, fx);
        assert_eq!(a1, a2);
    }

    #[test]
    fn de_morgan() {
        let (mut b, fx, fy, _) = setup();
        let land = b.and(fx, fy);
        let n1 = b.not(land);
        let nx = b.not(fx);
        let ny = b.not(fy);
        let n2 = b.or(nx, ny);
        assert_eq!(n1, n2);
    }

    #[test]
    fn xor_iff_duality() {
        let (mut b, fx, fy, _) = setup();
        let x1 = b.xor(fx, fy);
        let i1 = b.iff(fx, fy);
        let ni1 = b.not(i1);
        assert_eq!(x1, ni1);
    }

    #[test]
    fn ite_is_shannon_expansion() {
        let (mut b, fx, fy, fz) = setup();
        let f = b.ite(fx, fy, fz);
        // f = (x ∧ y) ∨ (¬x ∧ z)
        let xy = b.and(fx, fy);
        let nx = b.not(fx);
        let nxz = b.and(nx, fz);
        let expect = b.or(xy, nxz);
        assert_eq!(f, expect);
    }

    #[test]
    fn leq_checks_inclusion() {
        let (mut b, fx, fy, _) = setup();
        let conj = b.and(fx, fy);
        assert!(b.leq(conj, fx));
        assert!(!b.leq(fx, conj));
    }

    #[test]
    fn eval_follows_assignment() {
        let (mut b, fx, fy, _) = setup();
        let f = b.and(fx, fy);
        assert!(b.eval(f, &|v| v.index() <= 1));
        assert!(!b.eval(f, &|v| v.index() == 0));
    }

    #[test]
    fn node_count_of_conjunction_chain() {
        let mut b = Bdd::new();
        let vars = b.new_vars(8);
        let lits: Vec<Ref> = vars.iter().map(|&v| b.var(v)).collect();
        let f = b.and_many(lits);
        assert_eq!(b.node_count(f), 8);
    }

    #[test]
    fn support_reports_used_vars() {
        let (mut b, fx, _, fz) = setup();
        let f = b.and(fx, fz);
        let s = b.support(f);
        assert_eq!(s, vec![VarId(0), VarId(2)]);
    }

    #[test]
    fn gc_frees_dead_nodes_and_keeps_roots() {
        let mut b = Bdd::new();
        let vars = b.new_vars(6);
        let lits: Vec<Ref> = vars.iter().map(|&v| b.var(v)).collect();
        let keep = b.and(lits[0], lits[1]);
        let _dead = b.and_many(lits.clone());
        let live_before = b.live_nodes();
        let freed = b.gc(&[keep]);
        assert!(freed > 0);
        assert_eq!(b.live_nodes(), live_before - freed);
        // The kept function still evaluates correctly.
        assert!(b.eval(keep, &|v| v.index() < 2));
        // Rebuilding the same function reuses the live nodes.
        let again = b.and(lits[0], lits[1]);
        assert_eq!(again, keep);
    }

    #[test]
    fn gc_then_alloc_reuses_slots() {
        let mut b = Bdd::new();
        let vars = b.new_vars(4);
        let lits: Vec<Ref> = vars.iter().map(|&v| b.var(v)).collect();
        let dead = b.and_many(lits.clone());
        let size_before = b.table_size();
        b.gc(&[lits[0], lits[1], lits[2], lits[3]]);
        // Build something new; table should not grow past its previous size
        // until the free list is exhausted.
        let _f = b.or(lits[0], lits[1]);
        assert!(b.table_size() <= size_before);
        let _ = dead; // dead ref must not be dereferenced after gc
    }

    #[test]
    fn and_many_or_many_empty() {
        let mut b = Bdd::new();
        assert!(b.and_many([]).is_true());
        assert!(b.or_many([]).is_false());
    }

    #[test]
    fn named_vars() {
        let mut b = Bdd::new();
        let v = b.new_named_var("clk");
        assert_eq!(b.var_name(v), Some("clk"));
        let w = b.new_var();
        assert_eq!(b.var_name(w), None);
        b.set_var_name(w, "rst");
        assert_eq!(b.var_name(w), Some("rst"));
    }
}
