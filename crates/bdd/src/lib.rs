//! # covest-bdd
//!
//! A from-scratch reduced ordered binary decision diagram (ROBDD) engine:
//! the symbolic substrate for the `covest` workspace, which reproduces
//! *"Coverage Estimation for Symbolic Model Checking"* (Hoskote, Kam, Ho,
//! Zhao — DAC 1999).
//!
//! The engine provides everything a symbolic model checker and the DAC'99
//! coverage estimator need:
//!
//! - hash-consed nodes with a unique table ([`Bdd`]), so equal functions
//!   have equal [`Ref`]s (canonicity);
//! - memoized if-then-else ([`Bdd::ite`]) and all derived connectives;
//! - quantification ([`Bdd::exists`], [`Bdd::forall`]) and the fused
//!   relational product ([`Bdd::and_exists`]) used for image computation;
//! - substitution and renaming ([`Bdd::compose`], [`Bdd::vector_compose`],
//!   [`Bdd::rename`], [`Bdd::swap`]) for next-state/current-state moves and
//!   for the paper's *dual FSM* construction;
//! - model counting ([`Bdd::sat_count_over`], [`Bdd::sat_count_exact`]) for
//!   coverage percentages, plus cube/minterm enumeration for reporting
//!   uncovered states;
//! - mark-and-sweep garbage collection ([`Bdd::gc`]) and DOT export;
//! - dynamic variable reordering ([`Bdd::reduce_heap`]): Rudell-style
//!   sifting over a level-organized unique table, with variable groups
//!   ([`Bdd::group_vars`]) that keep each state bit's (current, next)
//!   pair adjacent, and automatic triggering ([`ReorderConfig`]).
//!
//! # Example
//!
//! ```
//! use covest_bdd::{Bdd, Ref};
//!
//! let mut bdd = Bdd::new();
//! let x = bdd.new_named_var("x");
//! let y = bdd.new_named_var("y");
//! let fx = bdd.var(x);
//! let fy = bdd.var(y);
//! let f = bdd.implies(fx, fy);
//! // "x → y" has three satisfying assignments over {x, y}.
//! assert_eq!(bdd.sat_count_exact(f, &[x, y]), 3);
//! // Quantifying x away yields the constant true.
//! assert_eq!(bdd.exists(f, &[x]), Ref::TRUE);
//! ```

mod count;
mod dot;
mod manager;
mod node;
mod quant;
mod reorder;
mod subst;

pub use count::{Cubes, Minterms};
pub use manager::Bdd;
pub use node::{Ref, VarId};
pub use quant::QuantSchedule;
pub use reorder::{ReorderConfig, ReorderMode, ReorderStats};
