//! # covest-bdd
//!
//! A from-scratch reduced ordered binary decision diagram (ROBDD) engine:
//! the symbolic substrate for the `covest` workspace, which reproduces
//! *"Coverage Estimation for Symbolic Model Checking"* (Hoskote, Kam, Ho,
//! Zhao — DAC 1999).
//!
//! The public API is ownership-based: a [`BddManager`] is a cheaply
//! clonable shared handle to one engine, and every Boolean function is an
//! owned [`Func`] handle that pins itself in the manager's external-root
//! table. Garbage collection ([`BddManager::gc`]) and dynamic variable
//! reordering ([`BddManager::reduce_heap`]) therefore take **no roots
//! argument**: live handles are the live set, and they survive any
//! collection or reordering with unchanged meaning. Raw node indices are
//! a crate-private implementation detail.
//!
//! The engine provides everything a symbolic model checker and the DAC'99
//! coverage estimator need:
//!
//! - hash-consed nodes with a level-organized unique table, so equal
//!   functions are equal [`Func`]s (canonicity);
//! - memoized if-then-else ([`Func::ite`]) and all derived connectives,
//!   with `&f & &g` style operator sugar;
//! - quantification ([`Func::exists`], [`Func::forall`]), the fused
//!   relational product ([`Func::and_exists`]) and schedule-driven
//!   multi-operand products ([`BddManager::and_exists_schedule`]) used
//!   for partitioned image computation;
//! - don't-care simplification ([`Func::constrain`], [`Func::restrict`]):
//!   the Coudert–Madre generalized cofactors, memoized across calls, used
//!   to shrink iterates and transition clusters modulo a care set (e.g.
//!   the reachable states) with zero effect on results inside it;
//! - substitution and renaming ([`Func::compose`],
//!   [`Func::vector_compose`], [`Func::rename`], [`Func::swap_vars`])
//!   for next-state/current-state moves and the paper's *dual FSM*
//!   construction;
//! - model counting ([`Func::sat_count_over`], [`Func::sat_count_exact`])
//!   for coverage percentages, plus cube/minterm enumeration for
//!   reporting uncovered states;
//! - name-keyed serialization ([`Func::export_bdd`],
//!   [`BddManager::import_bdd`]): a compact levelized node-dump format
//!   ([`BddDump`]) that moves functions between managers — the bridge the
//!   parallel coverage engine uses to hand precomputed sets to worker
//!   threads, since managers are deliberately not `Send`;
//! - rootless mark-and-sweep garbage collection and DOT export;
//! - dynamic variable reordering ([`BddManager::reduce_heap`]):
//!   Rudell-style sifting over the level-organized unique table, with
//!   variable groups ([`BddManager::group_vars`]) that keep each state
//!   bit's (current, next) pair adjacent, and automatic triggering
//!   ([`ReorderConfig`]).
//!
//! # Example
//!
//! ```
//! use covest_bdd::BddManager;
//!
//! let mgr = BddManager::new();
//! let x = mgr.new_named_var("x");
//! let y = mgr.new_named_var("y");
//! let f = mgr.var(x).implies(&mgr.var(y));
//! // "x → y" has three satisfying assignments over {x, y}.
//! assert_eq!(f.sat_count_exact(&[x, y]), 3);
//! // Quantifying x away yields the constant true.
//! assert!(f.exists(&[x]).is_true());
//! // Dropping handles releases their roots; gc takes no arguments.
//! drop(f);
//! mgr.gc();
//! assert_eq!(mgr.live_nodes(), 2); // only the terminals remain
//! ```

mod count;
mod dot;
mod handle;
mod manager;
mod node;
mod quant;
mod reorder;
mod serde;
mod simplify;
mod stats;
mod subst;
mod table;

pub use handle::{BddManager, Cubes, Func, Minterms};
pub use node::VarId;
pub use quant::QuantSchedule;
pub use reorder::{ReorderConfig, ReorderMode, ReorderStats};
pub use serde::{BddDump, SerdeError};
pub use stats::BddStats;
