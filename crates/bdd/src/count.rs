//! Model counting and satisfying-assignment extraction.

use std::collections::HashMap;

use crate::manager::Inner;
use crate::node::{Ref, VarId};

impl Inner {
    /// Fraction of assignments (over all variables) satisfying `f`,
    /// in `[0, 1]`. Independent of how many variables exist because each
    /// skipped level halves both branches equally.
    pub fn density(&self, f: Ref) -> f64 {
        let mut memo: HashMap<Ref, f64> = HashMap::new();
        self.density_rec(f, &mut memo)
    }

    fn density_rec(&self, f: Ref, memo: &mut HashMap<Ref, f64>) -> f64 {
        if f.is_true() {
            return 1.0;
        }
        if f.is_false() {
            return 0.0;
        }
        if let Some(&d) = memo.get(&f) {
            return d;
        }
        let n = self.node(f);
        let d = 0.5 * (self.density_rec(n.lo, memo) + self.density_rec(n.hi, memo));
        memo.insert(f, d);
        d
    }

    /// Number of satisfying assignments of `f` over the variable universe
    /// `vars`, as a floating-point value.
    ///
    /// This is the statistic used to compute coverage percentages: the
    /// number of states in a symbolic state set.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if the support of `f` is not contained in
    /// `vars` (the count would be meaningless).
    pub fn sat_count_over(&self, f: Ref, vars: &[VarId]) -> f64 {
        debug_assert!(
            {
                let sup = self.support(f);
                let set: std::collections::HashSet<VarId> = vars.iter().copied().collect();
                sup.iter().all(|v| set.contains(v))
            },
            "support of f must be within the counting universe"
        );
        self.density(f) * 2f64.powi(vars.len() as i32)
    }

    /// Exact number of satisfying assignments of `f` over `vars`, when the
    /// universe has at most 127 variables.
    ///
    /// # Panics
    ///
    /// Panics if `vars.len() > 127`; in debug builds also panics when the
    /// support of `f` is not contained in `vars`.
    pub fn sat_count_exact(&self, f: Ref, vars: &[VarId]) -> u128 {
        assert!(vars.len() <= 127, "exact counting limited to 127 variables");
        debug_assert!(
            {
                let sup = self.support(f);
                let set: std::collections::HashSet<VarId> = vars.iter().copied().collect();
                sup.iter().all(|v| set.contains(v))
            },
            "support of f must be within the counting universe"
        );
        // Order the universe by level so path-skipping math is simple.
        let mut levels: Vec<u32> = vars.iter().map(|&v| self.level_of(v)).collect();
        levels.sort_unstable();
        let mut memo: HashMap<Ref, u128> = HashMap::new();
        let total_levels = levels.len();
        let count = self.exact_rec(f, &levels, &mut memo);
        // exact_rec counts assignments over levels *below* the root of f;
        // scale by the levels above the root.
        let above = levels.iter().take_while(|&&l| l < self.level(f)).count();
        let _ = total_levels;
        count << above
    }

    /// Counts assignments over the suffix of `levels` at or below `f`'s level.
    fn exact_rec(&self, f: Ref, levels: &[u32], memo: &mut HashMap<Ref, u128>) -> u128 {
        let remaining = levels.iter().skip_while(|&&l| l < self.level(f)).count() as u32;
        if f.is_false() {
            return 0;
        }
        if f.is_true() {
            return 1u128 << remaining;
        }
        if let Some(&c) = memo.get(&f) {
            return c;
        }
        let n = self.node(f);
        let clo = self.exact_rec(n.lo, levels, memo);
        let chi = self.exact_rec(n.hi, levels, memo);
        // Children counts cover levels strictly below each child's root;
        // scale them up to "levels strictly below f's root".
        let below_f: Vec<u32> = levels
            .iter()
            .copied()
            .filter(|&l| l > self.level(f))
            .collect();
        let scale = |child: Ref, c: u128| -> u128 {
            let skipped = below_f
                .iter()
                .take_while(|&&l| l < self.level(child))
                .count();
            c << skipped
        };
        let total = scale(n.lo, clo) + scale(n.hi, chi);
        memo.insert(f, total);
        total
    }

    /// Returns one satisfying assignment of `f` over `vars` (the
    /// lexicographically smallest w.r.t. the variable order, lows first),
    /// or `None` if `f` is unsatisfiable.
    pub fn pick_minterm(&self, f: Ref, vars: &[VarId]) -> Option<Vec<(VarId, bool)>> {
        if f.is_false() {
            return None;
        }
        let mut assignment: HashMap<VarId, bool> = HashMap::new();
        let mut cur = f;
        while !cur.is_const() {
            let n = self.node(cur);
            if !n.lo.is_false() {
                assignment.insert(VarId(n.var), false);
                cur = n.lo;
            } else {
                assignment.insert(VarId(n.var), true);
                cur = n.hi;
            }
        }
        Some(
            vars.iter()
                .map(|&v| (v, assignment.get(&v).copied().unwrap_or(false)))
                .collect(),
        )
    }

    /// Iterates over the satisfying *cubes* of `f`: partial assignments
    /// labelling each root-to-`TRUE` path. Variables absent from a cube
    /// are unconstrained.
    #[cfg_attr(not(test), allow(dead_code))] // exercised by in-crate tests
    pub fn cubes(&self, f: Ref) -> Cubes<'_> {
        Cubes {
            bdd: self,
            stack: if f.is_false() {
                vec![]
            } else {
                vec![(f, Vec::new())]
            },
        }
    }

    /// Iterates over the full minterms of `f` with respect to the variable
    /// universe `vars` (each item is aligned with `vars`).
    ///
    /// # Panics
    ///
    /// In debug builds, panics if the support of `f` is not contained in
    /// `vars`.
    #[cfg_attr(not(test), allow(dead_code))] // exercised by in-crate tests
    pub fn minterms_over<'a>(&'a self, f: Ref, vars: &'a [VarId]) -> Minterms<'a> {
        debug_assert!(
            {
                let sup = self.support(f);
                let set: std::collections::HashSet<VarId> = vars.iter().copied().collect();
                sup.iter().all(|v| set.contains(v))
            },
            "support of f must be within the minterm universe"
        );
        let mut ordered: Vec<VarId> = vars.to_vec();
        ordered.sort_by_key(|&v| self.level_of(v));
        Minterms {
            bdd: self,
            vars: ordered,
            out_order: vars,
            stack: if f.is_false() {
                vec![]
            } else {
                vec![(f, 0, Vec::new())]
            },
        }
    }
}

/// Iterator over satisfying cubes; see [`Inner::cubes`].
#[derive(Debug)]
pub struct Cubes<'a> {
    bdd: &'a Inner,
    stack: Vec<(Ref, Vec<(VarId, bool)>)>,
}

impl Iterator for Cubes<'_> {
    type Item = Vec<(VarId, bool)>;

    fn next(&mut self) -> Option<Self::Item> {
        while let Some((r, path)) = self.stack.pop() {
            if r.is_true() {
                return Some(path);
            }
            if r.is_false() {
                continue;
            }
            let n = self.bdd.node(r);
            let v = VarId(n.var);
            if !n.hi.is_false() {
                let mut p = path.clone();
                p.push((v, true));
                self.stack.push((n.hi, p));
            }
            if !n.lo.is_false() {
                let mut p = path;
                p.push((v, false));
                self.stack.push((n.lo, p));
            }
        }
        None
    }
}

/// Iterator over full minterms; see [`Inner::minterms_over`].
#[derive(Debug)]
pub struct Minterms<'a> {
    bdd: &'a Inner,
    /// Universe ordered by level.
    vars: Vec<VarId>,
    /// Universe in caller order, used for the output layout.
    out_order: &'a [VarId],
    /// (node, index into `vars`, values chosen so far — parallel to `vars`).
    stack: Vec<(Ref, usize, Vec<bool>)>,
}

impl Iterator for Minterms<'_> {
    type Item = Vec<(VarId, bool)>;

    fn next(&mut self) -> Option<Self::Item> {
        while let Some((r, idx, values)) = self.stack.pop() {
            if r.is_false() {
                continue;
            }
            if idx == self.vars.len() {
                debug_assert!(r.is_true());
                let map: HashMap<VarId, bool> = self
                    .vars
                    .iter()
                    .copied()
                    .zip(values.iter().copied())
                    .collect();
                return Some(self.out_order.iter().map(|&v| (v, map[&v])).collect());
            }
            let v = self.vars[idx];
            let node_level = self.bdd.level(r);
            let var_level = self.bdd.level_of(v);
            if !r.is_const() && node_level == var_level {
                let n = self.bdd.node(r);
                let mut hi_values = values.clone();
                hi_values.push(true);
                self.stack.push((n.hi, idx + 1, hi_values));
                let mut lo_values = values;
                lo_values.push(false);
                self.stack.push((n.lo, idx + 1, lo_values));
            } else {
                // Variable unconstrained at this point: branch on it.
                let mut hi_values = values.clone();
                hi_values.push(true);
                self.stack.push((r, idx + 1, hi_values));
                let mut lo_values = values;
                lo_values.push(false);
                self.stack.push((r, idx + 1, lo_values));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_of_single_var_is_half() {
        let mut b = Inner::new();
        let x = b.new_var();
        let fx = b.var(x);
        assert_eq!(b.density(fx), 0.5);
        assert_eq!(b.density(Ref::TRUE), 1.0);
        assert_eq!(b.density(Ref::FALSE), 0.0);
    }

    #[test]
    fn sat_count_over_universe() {
        let mut b = Inner::new();
        let vars = b.new_vars(4);
        let lits: Vec<Ref> = vars.iter().map(|&v| b.var(v)).collect();
        let f = b.and(lits[0], lits[1]);
        assert_eq!(b.sat_count_over(f, &vars), 4.0); // 2 free vars
        assert_eq!(b.sat_count_exact(f, &vars), 4);
    }

    #[test]
    fn exact_count_matches_float_on_random_functions() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let mut b = Inner::new();
            let vars = b.new_vars(6);
            let mut f = Ref::FALSE;
            for _ in 0..6 {
                let mut cube = Ref::TRUE;
                for &v in &vars {
                    match rng.gen_range(0..3) {
                        0 => {
                            let l = b.var(v);
                            cube = b.and(cube, l);
                        }
                        1 => {
                            let l = b.nvar(v);
                            cube = b.and(cube, l);
                        }
                        _ => {}
                    }
                }
                f = b.or(f, cube);
            }
            let exact = b.sat_count_exact(f, &vars) as f64;
            let float = b.sat_count_over(f, &vars);
            assert!((exact - float).abs() < 1e-6, "exact={exact} float={float}");
        }
    }

    #[test]
    fn pick_minterm_satisfies() {
        let mut b = Inner::new();
        let vars = b.new_vars(3);
        let l0 = b.nvar(vars[0]);
        let l2 = b.var(vars[2]);
        let f = b.and(l0, l2);
        let m = b.pick_minterm(f, &vars).expect("satisfiable");
        let lookup: HashMap<VarId, bool> = m.into_iter().collect();
        assert!(b.eval(f, &|v| lookup[&v]));
        assert!(b.pick_minterm(Ref::FALSE, &vars).is_none());
    }

    #[test]
    fn cubes_cover_function() {
        let mut b = Inner::new();
        let vars = b.new_vars(3);
        let l0 = b.var(vars[0]);
        let l1 = b.var(vars[1]);
        let l2 = b.var(vars[2]);
        let c01 = b.and(l0, l1);
        let f = b.or(c01, l2);
        let cubes: Vec<_> = b.cubes(f).collect();
        let mut rebuilt = Ref::FALSE;
        for cube in cubes {
            let mut c = Ref::TRUE;
            for (v, val) in cube {
                let lit = b.literal(v, val);
                c = b.and(c, lit);
            }
            rebuilt = b.or(rebuilt, c);
        }
        assert_eq!(rebuilt, f);
    }

    #[test]
    fn minterms_enumerate_exact_count() {
        let mut b = Inner::new();
        let vars = b.new_vars(4);
        let l0 = b.var(vars[0]);
        let l3 = b.nvar(vars[3]);
        let f = b.or(l0, l3);
        let count = b.minterms_over(f, &vars).count() as u128;
        assert_eq!(count, b.sat_count_exact(f, &vars));
        for m in b.minterms_over(f, &vars) {
            let lookup: HashMap<VarId, bool> = m.into_iter().collect();
            assert!(b.eval(f, &|v| lookup[&v]));
        }
    }

    #[test]
    fn minterms_of_true_enumerate_universe() {
        let mut b = Inner::new();
        let vars = b.new_vars(3);
        assert_eq!(b.minterms_over(Ref::TRUE, &vars).count(), 8);
        assert_eq!(b.minterms_over(Ref::FALSE, &vars).count(), 0);
    }
}
