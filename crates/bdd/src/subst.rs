//! Substitution: functional composition and variable renaming.
//!
//! The substitution map is a manager-owned scratch vector indexed by
//! variable (`NIL_REF` = identity), and the per-call memo is the shared
//! generation-tagged unary cache — no allocation, no hashing of boxed
//! keys, one array read per node visit.

use crate::manager::Inner;
use crate::node::{Ref, VarId};

/// Identity marker in the substitution scratch vector. Never a valid
/// node: the arena allocator keeps slots below `FREE_VAR < u32::MAX`.
const NIL_REF: Ref = Ref(u32::MAX);

impl Inner {
    /// Functional composition: `f` with `var` replaced by the function `g`.
    ///
    /// # Examples
    ///
    /// ```
    /// use covest_bdd::BddManager;
    /// let mgr = BddManager::new();
    /// let x = mgr.new_var();
    /// let y = mgr.new_var();
    /// let ny = mgr.var(y).not();
    /// // x composed with ¬y is ¬y
    /// assert_eq!(mgr.var(x).compose(x, &ny), ny);
    /// ```
    pub fn compose(&mut self, f: Ref, var: VarId, g: Ref) -> Ref {
        self.vector_compose(f, &[(var, g)])
    }

    /// Simultaneous functional composition: every variable in `map` is
    /// replaced by the associated function, all at once.
    ///
    /// Simultaneity matters: `vector_compose(f, {x ↦ y, y ↦ x})` swaps the
    /// two variables, whereas two sequential [`Inner::compose`] calls would
    /// collapse them.
    pub fn vector_compose(&mut self, f: Ref, map: &[(VarId, Ref)]) -> Ref {
        // Move the scratch vector out so the recursion can borrow `self`
        // mutably; hand it back afterwards to keep its capacity.
        let mut subst = std::mem::take(&mut self.subst_scratch);
        subst.clear();
        subst.resize(self.num_vars(), NIL_REF);
        for &(v, g) in map {
            subst[v.index()] = g;
        }
        let tag = self.quant_cache.begin();
        let r = self.compose_rec(f, &subst, tag);
        self.subst_scratch = subst;
        r
    }

    fn compose_rec(&mut self, f: Ref, subst: &[Ref], tag: u64) -> Ref {
        if f.is_const() {
            return f;
        }
        if let Some(r) = self.quant_cache.lookup(tag, f) {
            return r;
        }
        let n = self.node(f);
        let lo = self.compose_rec(n.lo, subst, tag);
        let hi = self.compose_rec(n.hi, subst, tag);
        let selector = match subst[n.var as usize] {
            NIL_REF => self.var(VarId(n.var)),
            g => g,
        };
        // ITE keeps the result canonical even when the substituted
        // function's support lies above the current level.
        let r = self.ite(selector, hi, lo);
        self.quant_cache.insert(tag, f, r);
        r
    }

    /// Renames variables according to `pairs`, interpreted as a
    /// simultaneous swap-free mapping `from → to`.
    ///
    /// Used to move a function between the current-state and next-state
    /// variable ranks of a transition system.
    pub fn rename(&mut self, f: Ref, pairs: &[(VarId, VarId)]) -> Ref {
        let map: Vec<(VarId, Ref)> = pairs
            .iter()
            .map(|&(from, to)| {
                let tref = self.var(to);
                (from, tref)
            })
            .collect();
        self.vector_compose(f, &map)
    }

    /// Swaps each pair of variables in both directions simultaneously
    /// (`a ↔ b` for every `(a, b)` in `pairs`).
    pub fn swap(&mut self, f: Ref, pairs: &[(VarId, VarId)]) -> Ref {
        let mut map: Vec<(VarId, Ref)> = Vec::with_capacity(pairs.len() * 2);
        for &(a, bv) in pairs {
            let fa = self.var(a);
            let fb = self.var(bv);
            map.push((a, fb));
            map.push((bv, fa));
        }
        self.vector_compose(f, &map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compose_with_constant_is_cofactor() {
        let mut b = Inner::new();
        let x = b.new_var();
        let y = b.new_var();
        let fx = b.var(x);
        let fy = b.var(y);
        let f = b.and(fx, fy);
        let via_compose = b.compose(f, x, Ref::TRUE);
        let via_cofactor = b.cofactor(f, x, true);
        assert_eq!(via_compose, via_cofactor);
        assert_eq!(via_compose, fy);
    }

    #[test]
    fn vector_compose_is_simultaneous() {
        let mut b = Inner::new();
        let x = b.new_var();
        let y = b.new_var();
        let fx = b.var(x);
        let fy = b.var(y);
        let nx = b.not(fx);
        let f = b.and(fx, fy); // x ∧ y
        let g = b.vector_compose(f, &[(x, fy), (y, nx)]);
        // Simultaneous: y ∧ ¬x.
        let expect = {
            let t = b.not(fx);
            b.and(fy, t)
        };
        assert_eq!(g, expect);
    }

    #[test]
    fn rename_moves_support() {
        let mut b = Inner::new();
        let x = b.new_var();
        let y = b.new_var();
        let z = b.new_var();
        let fx = b.var(x);
        let fy = b.var(y);
        let f = b.and(fx, fy);
        let g = b.rename(f, &[(x, z)]);
        let support = b.support(g);
        assert_eq!(support, vec![y, z]);
    }

    #[test]
    fn swap_is_involution() {
        let mut b = Inner::new();
        let x = b.new_var();
        let y = b.new_var();
        let z = b.new_var();
        let fx = b.var(x);
        let fy = b.var(y);
        let fz = b.var(z);
        let fxy = b.xor(fx, fy);
        let f = b.or(fxy, fz);
        let g = b.swap(f, &[(x, y)]);
        let h = b.swap(g, &[(x, y)]);
        assert_eq!(f, h);
    }

    #[test]
    fn rename_against_reversed_order() {
        // Renaming to a variable *above* the source in the order must
        // still produce a canonical result.
        let mut b = Inner::new();
        let a = b.new_var(); // level 0
        let c = b.new_var(); // level 1
        let fc = b.var(c);
        let fa = b.var(a);
        let renamed = b.rename(fc, &[(c, a)]);
        assert_eq!(renamed, fa);
    }
}
