//! Deterministic per-manager engine counters.
//!
//! Every hot path of the engine — the hash-consing constructor, the
//! memo tables, garbage collection, dynamic reordering — bumps a plain
//! `u64` on the manager as it works. The counters are a pure function of
//! the operations performed (never of wall-clock, allocation addresses,
//! or thread scheduling), so two identical runs produce identical
//! counters — the workspace's stats-determinism suite locks this in.
//! Maintenance is a field increment on paths that already touch the
//! manager, cheap enough to stay on unconditionally.

/// A snapshot of one manager's engine counters, returned by
/// [`crate::BddManager::stats`].
///
/// The `peak_live_nodes` high-water mark is maintained on node
/// *allocation* and is deliberately **not** lowered by garbage
/// collection — it answers "how big did this manager ever get", which a
/// collection does not change. [`crate::BddManager::reset_stats`] resets
/// it to the *current* live-node count (never to zero: the nodes that
/// exist at reset time have well and truly been allocated).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BddStats {
    /// Unique-table lookups that found an existing node.
    pub unique_hits: u64,
    /// Unique-table lookups that missed (each one allocates).
    pub unique_misses: u64,
    /// Nodes inserted into the unique table (equals `unique_misses`;
    /// kept separate so the invariant is checkable from outside).
    pub unique_insertions: u64,
    /// `ite` computed-table hits.
    pub ite_hits: u64,
    /// `ite` computed-table misses.
    pub ite_misses: u64,
    /// Quantification memo hits (`exists`/`forall`/`cofactor`).
    pub quant_hits: u64,
    /// Quantification memo misses.
    pub quant_misses: u64,
    /// Fused relational-product (`and_exists`) memo hits.
    pub pair_hits: u64,
    /// Fused relational-product memo misses.
    pub pair_misses: u64,
    /// `constrain` memo hits.
    pub constrain_hits: u64,
    /// `constrain` memo misses.
    pub constrain_misses: u64,
    /// `restrict` memo hits.
    pub restrict_hits: u64,
    /// `restrict` memo misses.
    pub restrict_misses: u64,
    /// Garbage collections run.
    pub gc_runs: u64,
    /// Node slots reclaimed across all collections.
    pub gc_nodes_reclaimed: u64,
    /// Sifting passes actually performed (excludes `ReorderMode::Off`
    /// and empty-manager early returns).
    pub reorder_invocations: u64,
    /// Adjacent-level swaps performed across all sifting passes.
    pub reorder_swaps: u64,
    /// Sum of live-node counts entering each sifting pass.
    pub reorder_size_before: u64,
    /// Sum of live-node counts leaving each sifting pass.
    pub reorder_size_after: u64,
    /// High-water mark of the live-node count (see type docs for the
    /// gc/reset semantics).
    pub peak_live_nodes: u64,
}

impl BddStats {
    /// The counters as `(name, value)` pairs in a fixed, documented
    /// order — the bridge into name-keyed telemetry accumulators without
    /// making this crate depend on one.
    pub fn pairs(&self) -> [(&'static str, u64); 20] {
        [
            ("bdd_unique_hits", self.unique_hits),
            ("bdd_unique_misses", self.unique_misses),
            ("bdd_unique_insertions", self.unique_insertions),
            ("bdd_ite_hits", self.ite_hits),
            ("bdd_ite_misses", self.ite_misses),
            ("bdd_quant_hits", self.quant_hits),
            ("bdd_quant_misses", self.quant_misses),
            ("bdd_pair_hits", self.pair_hits),
            ("bdd_pair_misses", self.pair_misses),
            ("bdd_constrain_hits", self.constrain_hits),
            ("bdd_constrain_misses", self.constrain_misses),
            ("bdd_restrict_hits", self.restrict_hits),
            ("bdd_restrict_misses", self.restrict_misses),
            ("bdd_gc_runs", self.gc_runs),
            ("bdd_gc_nodes_reclaimed", self.gc_nodes_reclaimed),
            ("bdd_reorder_invocations", self.reorder_invocations),
            ("bdd_reorder_swaps", self.reorder_swaps),
            ("bdd_reorder_size_before", self.reorder_size_before),
            ("bdd_reorder_size_after", self.reorder_size_after),
            ("bdd_peak_live_nodes", self.peak_live_nodes),
        ]
    }
}
