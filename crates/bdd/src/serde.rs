//! BDD export/import: a compact, levelized, **name-keyed** node-dump
//! format ([`BddDump`]) that moves functions between managers.
//!
//! The raison d'être is the parallel coverage engine: a [`crate::Func`]
//! lives on one manager behind an `Rc<RefCell<…>>` and is deliberately
//! not `Send`, so cross-thread reuse of a computed set (the reachable
//! states, a care set, the transition clusters) goes through an explicit
//! serialization step. A dump is plain owned data — `Send + Sync`, no
//! references into any manager — and can also be rendered to and parsed
//! from a line-oriented text form for file interchange.
//!
//! Two properties make the format safe across engine boundaries:
//!
//! - **Name keying.** Nodes reference variables by *name*, never by
//!   [`crate::VarId`] index or level. Importing resolves each name
//!   against the target manager (creating missing named variables at the
//!   end of its order), so a function round-trips correctly into a
//!   manager whose variables were created in a different order — or have
//!   been shuffled by dynamic reordering since.
//! - **Levelized, children-first node order.** Nodes are listed bottom-up
//!   (deepest level of the *source* order first); every child reference
//!   points strictly backwards. Import therefore rebuilds each node with
//!   one `ite(var, hi, lo)` over already-imported children, which is
//!   correct under **any** target variable order — the target engine
//!   re-normalizes the graph to its own order as it goes.
//!
//! A dump holds no handles, so exporting then mutating the source
//! manager (more operations, `gc()`, `reduce_heap()`) cannot invalidate
//! it; importing yields fresh owned [`crate::Func`] handles that pin
//! themselves like any other. The round-trip property tests interleave
//! forced collections and reorderings on both sides.

use std::collections::HashMap;

use crate::handle::{BddManager, Func};
use crate::manager::Inner;
use crate::node::Ref;

/// Magic first line of the text rendering (see [`BddDump::to_text`]).
const TEXT_HEADER: &str = "covest-bdd-dump v1";

/// Packed child/root reference inside a dump: `0` is the false terminal,
/// `1` the true terminal, and `n + 2` the `n`-th entry of
/// [`BddDump::nodes`].
type PackedRef = u32;

const PACKED_FALSE: PackedRef = 0;
const PACKED_TRUE: PackedRef = 1;

#[inline]
fn pack(r: Ref, index_of: &HashMap<Ref, u32>) -> PackedRef {
    match r {
        Ref::FALSE => PACKED_FALSE,
        Ref::TRUE => PACKED_TRUE,
        _ => index_of[&r] + 2,
    }
}

/// One exported decision node: `if vars[var] then hi else lo`, with the
/// children given as packed references to earlier entries (or terminals).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct DumpNode {
    var: u32,
    lo: PackedRef,
    hi: PackedRef,
}

/// A serialized multi-rooted BDD: shared nodes are dumped once, in
/// levelized bottom-up order, referencing variables by name.
///
/// Produced by [`Func::export_bdd`] / [`BddManager::export_bdds`];
/// consumed by [`BddManager::import_bdd`] / [`BddManager::import_bdds`].
/// Plain data — `Clone + Send + Sync`, independent of every manager.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BddDump {
    /// Names of the support variables, listed in the source manager's
    /// level order (topmost first) at export time. The order is
    /// informational: import keys strictly on the names.
    vars: Vec<String>,
    /// The decision nodes, bottom-up: children strictly precede parents.
    nodes: Vec<DumpNode>,
    /// The exported roots (packed references), in export order.
    roots: Vec<PackedRef>,
}

impl BddDump {
    /// Number of exported roots.
    pub fn num_roots(&self) -> usize {
        self.roots.len()
    }

    /// Number of shared decision nodes in the dump (terminals excluded).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The support variable names, in the source manager's level order at
    /// export time (topmost first).
    pub fn var_names(&self) -> &[String] {
        &self.vars
    }

    /// Renders the dump in the line-oriented text format:
    ///
    /// ```text
    /// covest-bdd-dump v1
    /// vars <count>
    /// <one name per line>
    /// nodes <count>
    /// <var-index> <lo> <hi>      (packed refs: 0=⊥, 1=⊤, n+2=node n)
    /// roots <count>
    /// <one packed ref per line>
    /// ```
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{TEXT_HEADER}");
        let _ = writeln!(out, "vars {}", self.vars.len());
        for v in &self.vars {
            let _ = writeln!(out, "{v}");
        }
        let _ = writeln!(out, "nodes {}", self.nodes.len());
        for n in &self.nodes {
            let _ = writeln!(out, "{} {} {}", n.var, n.lo, n.hi);
        }
        let _ = writeln!(out, "roots {}", self.roots.len());
        for r in &self.roots {
            let _ = writeln!(out, "{r}");
        }
        out
    }

    /// Parses the text format produced by [`BddDump::to_text`],
    /// validating the structural invariants (children-first references,
    /// in-range variable indices).
    ///
    /// # Errors
    ///
    /// [`SerdeError::Malformed`] on any syntactic or structural defect.
    pub fn from_text(text: &str) -> Result<BddDump, SerdeError> {
        let mut lines = text.lines();
        let bad = |what: &str| SerdeError::Malformed(what.to_owned());
        if lines.next() != Some(TEXT_HEADER) {
            return Err(bad("missing header line"));
        }
        fn section_count<'a>(
            lines: &mut impl Iterator<Item = &'a str>,
            keyword: &str,
        ) -> Result<usize, SerdeError> {
            let line = lines
                .next()
                .ok_or_else(|| SerdeError::Malformed(format!("missing `{keyword}` section")))?;
            line.strip_prefix(keyword)
                .and_then(|rest| rest.trim().parse().ok())
                .ok_or_else(|| SerdeError::Malformed(format!("bad `{keyword}` count line")))
        }
        let nvars = section_count(&mut lines, "vars")?;
        let mut vars = Vec::with_capacity(nvars);
        for _ in 0..nvars {
            let name = lines.next().ok_or_else(|| bad("truncated vars section"))?;
            if name.is_empty() {
                return Err(bad("empty variable name"));
            }
            vars.push(name.to_owned());
        }
        let nnodes = section_count(&mut lines, "nodes")?;
        let mut nodes = Vec::with_capacity(nnodes);
        for i in 0..nnodes {
            let line = lines.next().ok_or_else(|| bad("truncated nodes section"))?;
            let mut fields = line.split_ascii_whitespace();
            let mut field = || -> Result<u32, SerdeError> {
                fields
                    .next()
                    .and_then(|f| f.parse().ok())
                    .ok_or_else(|| SerdeError::Malformed(format!("bad node line `{line}`")))
            };
            let (var, lo, hi) = (field()?, field()?, field()?);
            if fields.next().is_some() {
                return Err(SerdeError::Malformed(format!(
                    "trailing fields on node line `{line}`"
                )));
            }
            nodes.push(DumpNode { var, lo, hi });
            let _ = i;
        }
        let nroots = section_count(&mut lines, "roots")?;
        let mut roots = Vec::with_capacity(nroots);
        for _ in 0..nroots {
            let line = lines.next().ok_or_else(|| bad("truncated roots section"))?;
            roots.push(
                line.trim()
                    .parse()
                    .map_err(|_| SerdeError::Malformed(format!("bad root line `{line}`")))?,
            );
        }
        let dump = BddDump { vars, nodes, roots };
        dump.validate()?;
        Ok(dump)
    }

    /// Checks the structural invariants: every variable index names a
    /// dumped variable, every child reference points strictly backwards
    /// (children-first), and every root is in range.
    fn validate(&self) -> Result<(), SerdeError> {
        for (i, n) in self.nodes.iter().enumerate() {
            if n.var as usize >= self.vars.len() {
                return Err(SerdeError::Malformed(format!(
                    "node {i} references variable index {} of {}",
                    n.var,
                    self.vars.len()
                )));
            }
            for child in [n.lo, n.hi] {
                if child >= i as PackedRef + 2 {
                    return Err(SerdeError::Malformed(format!(
                        "node {i} references child {child} at or above itself \
                         (children must precede parents)"
                    )));
                }
            }
            if n.lo == n.hi {
                return Err(SerdeError::Malformed(format!(
                    "node {i} is redundant (equal children) — not a reduced BDD"
                )));
            }
        }
        for (i, &r) in self.roots.iter().enumerate() {
            if r >= self.nodes.len() as PackedRef + 2 {
                return Err(SerdeError::Malformed(format!(
                    "root {i} references missing node {r}"
                )));
            }
        }
        Ok(())
    }
}

/// Errors from BDD export/import.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SerdeError {
    /// Export found a support variable with no assigned name; the format
    /// is name-keyed, so every support variable must be named (see
    /// [`BddManager::set_var_name`]).
    UnnamedVar(usize),
    /// [`BddManager::import_bdd`] was handed a dump with a root count
    /// other than one.
    RootCount(usize),
    /// A structurally invalid dump (bad text, dangling references,
    /// forward child references, redundant nodes).
    Malformed(String),
}

impl std::fmt::Display for SerdeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SerdeError::UnnamedVar(idx) => write!(
                f,
                "cannot export: support variable v{idx} has no name \
                 (the dump format is keyed by variable name)"
            ),
            SerdeError::RootCount(n) => {
                write!(f, "import_bdd expects a single-root dump, found {n} roots")
            }
            SerdeError::Malformed(why) => write!(f, "malformed BDD dump: {why}"),
        }
    }
}

impl std::error::Error for SerdeError {}

/// Exports the BDDs rooted at `roots` from `inner` as a shared dump.
///
/// The traversal is read-only; the produced dump holds no references
/// into the engine. Nodes are emitted children-first and then levelized
/// (stable-sorted by source level, deepest first) — a child's level is
/// strictly greater than its parent's, so levelizing preserves the
/// children-first invariant.
pub(crate) fn export_dump(inner: &Inner, roots: &[Ref]) -> Result<BddDump, SerdeError> {
    // Post-order DFS: children land in `order` before their parents.
    let mut order: Vec<Ref> = Vec::new();
    let mut seen: HashMap<Ref, bool> = HashMap::new(); // false = open, true = emitted
    for &root in roots {
        if root.is_const() {
            continue;
        }
        let mut stack = vec![(root, false)];
        while let Some((r, expanded)) = stack.pop() {
            if r.is_const() {
                continue;
            }
            if expanded {
                if let Some(emitted) = seen.get_mut(&r) {
                    if !*emitted {
                        *emitted = true;
                        order.push(r);
                    }
                }
                continue;
            }
            if seen.contains_key(&r) {
                continue;
            }
            seen.insert(r, false);
            let n = inner.node(r);
            stack.push((r, true));
            stack.push((n.lo, false));
            stack.push((n.hi, false));
        }
    }
    // Levelize: deepest source level first. Stable, so the children-first
    // property of the post-order survives within equal levels too.
    order.sort_by_key(|&r| std::cmp::Reverse(inner.level(r)));

    // Support variables in source level order, keyed by name.
    let mut var_dump_idx: HashMap<u32, u32> = HashMap::new();
    let mut support: Vec<u32> = order.iter().map(|&r| inner.node(r).var).collect();
    support.sort_by_key(|&v| std::cmp::Reverse(inner.var2level[v as usize]));
    support.dedup();
    support.reverse(); // topmost level first
    let mut vars = Vec::with_capacity(support.len());
    for v in support {
        let name = inner
            .var_name(crate::node::VarId(v))
            .ok_or(SerdeError::UnnamedVar(v as usize))?;
        var_dump_idx.insert(v, vars.len() as u32);
        vars.push(name.to_owned());
    }

    let index_of: HashMap<Ref, u32> = order
        .iter()
        .enumerate()
        .map(|(i, &r)| (r, i as u32))
        .collect();
    let nodes = order
        .iter()
        .map(|&r| {
            let n = inner.node(r);
            DumpNode {
                var: var_dump_idx[&n.var],
                lo: pack(n.lo, &index_of),
                hi: pack(n.hi, &index_of),
            }
        })
        .collect();
    let roots = roots.iter().map(|&r| pack(r, &index_of)).collect();
    Ok(BddDump { vars, nodes, roots })
}

impl BddManager {
    /// Looks up a variable of this manager by its assigned name.
    ///
    /// Linear in the number of variables; import resolves each dump
    /// variable once, so this is never on a hot path.
    pub fn var_by_name(&self, name: &str) -> Option<crate::VarId> {
        self.with_inner(|inner| {
            (0..inner.num_vars())
                .map(crate::VarId::from_index)
                .find(|&v| inner.var_name(v) == Some(name))
        })
    }

    /// Exports several functions of this manager into one shared
    /// [`BddDump`] (common subgraphs are dumped once). The dump is keyed
    /// by variable *name* and holds no references into the manager.
    ///
    /// # Errors
    ///
    /// [`SerdeError::UnnamedVar`] if any support variable has no name.
    ///
    /// # Panics
    ///
    /// Panics if a function belongs to a different manager.
    pub fn export_bdds(&self, funcs: &[&Func]) -> Result<BddDump, SerdeError> {
        let raws = self.raw_refs(funcs);
        self.with_inner(|inner| export_dump(inner, &raws))
    }

    /// Imports a single-root dump, returning the rebuilt function as an
    /// owned handle on this manager.
    ///
    /// Dump variables are resolved by name against this manager's
    /// variables; names with no match get a fresh named variable at the
    /// end of the order. The rebuild goes node by node, children first,
    /// through [`Func::ite`], so it is correct under any variable order —
    /// including orders produced by dynamic reordering on either side.
    ///
    /// # Errors
    ///
    /// [`SerdeError::RootCount`] unless the dump has exactly one root;
    /// [`SerdeError::Malformed`] on structural defects.
    pub fn import_bdd(&self, dump: &BddDump) -> Result<Func, SerdeError> {
        if dump.roots.len() != 1 {
            return Err(SerdeError::RootCount(dump.roots.len()));
        }
        Ok(self.import_bdds(dump)?.pop().expect("one root"))
    }

    /// Imports every root of a dump, in export order. See
    /// [`BddManager::import_bdd`] for the name-resolution and ordering
    /// contract.
    ///
    /// # Errors
    ///
    /// [`SerdeError::Malformed`] on structural defects.
    pub fn import_bdds(&self, dump: &BddDump) -> Result<Vec<Func>, SerdeError> {
        dump.validate()?;
        let vars: Vec<crate::VarId> = dump
            .vars
            .iter()
            .map(|name| {
                self.var_by_name(name)
                    .unwrap_or_else(|| self.new_named_var(name.clone()))
            })
            .collect();
        // Rebuild bottom-up. Each entry is an owned handle, so the
        // intermediate graph survives any interleaved gc/reordering.
        let mut built: Vec<Func> = Vec::with_capacity(dump.nodes.len());
        let resolve = |built: &[Func], packed: PackedRef| -> Func {
            match packed {
                PACKED_FALSE => self.constant(false),
                PACKED_TRUE => self.constant(true),
                n => built[(n - 2) as usize].clone(),
            }
        };
        for n in &dump.nodes {
            let lo = resolve(&built, n.lo);
            let hi = resolve(&built, n.hi);
            built.push(self.var(vars[n.var as usize]).ite(&hi, &lo));
        }
        Ok(dump.roots.iter().map(|&r| resolve(&built, r)).collect())
    }
}

impl Func {
    /// Exports this function as a name-keyed [`BddDump`] — the inverse of
    /// [`BddManager::import_bdd`]. The dump is plain `Send + Sync` data:
    /// it survives (and never blocks) any later operation, collection or
    /// reordering on the source manager.
    ///
    /// # Errors
    ///
    /// [`SerdeError::UnnamedVar`] if any support variable has no name.
    pub fn export_bdd(&self) -> Result<BddDump, SerdeError> {
        self.manager().export_bdds(&[self])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn majority(mgr: &BddManager) -> Func {
        let x = mgr.new_named_var("x");
        let y = mgr.new_named_var("y");
        let z = mgr.new_named_var("z");
        let (fx, fy, fz) = (mgr.var(x), mgr.var(y), mgr.var(z));
        fx.and(&fy).or(&fy.and(&fz)).or(&fz.and(&fx))
    }

    #[test]
    fn round_trip_same_manager_is_identity() {
        let mgr = BddManager::new();
        let f = majority(&mgr);
        let dump = f.export_bdd().expect("exports");
        assert_eq!(dump.num_roots(), 1);
        let g = mgr.import_bdd(&dump).expect("imports");
        assert_eq!(f, g, "canonicity makes the round trip literal equality");
    }

    #[test]
    fn round_trip_into_reversed_order() {
        let mgr = BddManager::new();
        let f = majority(&mgr);
        let dump = f.export_bdd().expect("exports");

        let target = BddManager::new();
        // Create the variables in the opposite order.
        for name in ["z", "y", "x"] {
            target.new_named_var(name);
        }
        let g = target.import_bdd(&dump).expect("imports");
        // Same truth table, var by name.
        for bits in 0..8u32 {
            let assign_src = |v: crate::VarId| bits >> v.index() & 1 == 1;
            let expect = f.eval(&assign_src);
            let got = g.eval(&|v: crate::VarId| {
                let name = target.var_name(v).expect("named");
                let idx = ["x", "y", "z"].iter().position(|&n| n == name).unwrap();
                bits >> idx & 1 == 1
            });
            assert_eq!(expect, got, "divergence at assignment {bits:03b}");
        }
    }

    #[test]
    fn import_creates_missing_variables() {
        let mgr = BddManager::new();
        let f = majority(&mgr);
        let dump = f.export_bdd().expect("exports");
        let target = BddManager::new();
        assert_eq!(target.num_vars(), 0);
        let g = target.import_bdd(&dump).expect("imports");
        assert_eq!(target.num_vars(), 3);
        assert_eq!(g.support().len(), 3);
        assert_eq!(target.var_by_name("y").map(|v| v.index()), Some(1));
    }

    #[test]
    fn constants_export_with_no_nodes() {
        let mgr = BddManager::new();
        let t = mgr.constant(true);
        let dump = t.export_bdd().expect("exports");
        assert_eq!(dump.num_nodes(), 0);
        let target = BddManager::new();
        assert!(target.import_bdd(&dump).expect("imports").is_true());
    }

    #[test]
    fn multi_root_dump_shares_nodes() {
        let mgr = BddManager::new();
        let f = majority(&mgr);
        // The hi-cofactor of the root is a literal subgraph of `f`, so a
        // joint dump must share every one of its nodes.
        let (_, hi) = f.children();
        let dump = mgr.export_bdds(&[&f, &hi]).expect("exports");
        assert_eq!(dump.num_roots(), 2);
        assert_eq!(dump.num_nodes(), f.node_count());
        let target = BddManager::new();
        let out = target.import_bdds(&dump).expect("imports");
        assert_eq!(out.len(), 2);
        assert_eq!(out[1], out[0].children().1);
    }

    #[test]
    fn unnamed_vars_are_rejected() {
        let mgr = BddManager::new();
        let v = mgr.new_var(); // no name
        let f = mgr.var(v);
        assert!(matches!(f.export_bdd(), Err(SerdeError::UnnamedVar(0))));
    }

    #[test]
    fn import_bdd_rejects_multi_root() {
        let mgr = BddManager::new();
        let f = majority(&mgr);
        let dump = mgr.export_bdds(&[&f, &f.not()]).expect("exports");
        assert!(matches!(
            mgr.import_bdd(&dump),
            Err(SerdeError::RootCount(2))
        ));
    }

    #[test]
    fn text_round_trip() {
        let mgr = BddManager::new();
        let f = majority(&mgr);
        let dump = f.export_bdd().expect("exports");
        let text = dump.to_text();
        let back = BddDump::from_text(&text).expect("parses");
        assert_eq!(dump, back);
        // A hand-checkable shape: header, sections in order.
        assert!(text.starts_with(TEXT_HEADER));
        assert!(text.contains("\nvars 3\n"));
    }

    #[test]
    fn malformed_text_is_rejected() {
        for text in [
            "",
            "not-a-dump",
            "covest-bdd-dump v1\nvars 1\nx\nnodes 1\n0 2 2\nroots 1\n2\n", // forward/self ref
            "covest-bdd-dump v1\nvars 1\nx\nnodes 1\n5 0 1\nroots 1\n2\n", // bad var index
            "covest-bdd-dump v1\nvars 1\nx\nnodes 1\n0 0 0\nroots 1\n2\n", // redundant node
            "covest-bdd-dump v1\nvars 1\nx\nnodes 0\nroots 1\n7\n",        // dangling root
            "covest-bdd-dump v1\nvars 1\nx\nnodes 1\n0 0 1 9\nroots 1\n2\n", // trailing field
        ] {
            assert!(
                BddDump::from_text(text).is_err(),
                "accepted malformed dump: {text:?}"
            );
        }
    }

    #[test]
    fn dump_survives_source_gc_and_reorder() {
        let mgr = BddManager::new();
        let f = majority(&mgr);
        let dump = f.export_bdd().expect("exports");
        drop(f);
        mgr.gc();
        mgr.reduce_heap();
        let target = BddManager::new();
        let g = target.import_bdd(&dump).expect("imports");
        let vars: Vec<_> = ["x", "y", "z"]
            .iter()
            .map(|n| target.var_by_name(n).unwrap())
            .collect();
        // Majority of three has exactly four satisfying assignments.
        assert_eq!(g.sat_count_exact(&vars), 4);
    }
}
